bin/corpus.ml: Array Glql_graph Glql_util
