bin/experiments.mli:
