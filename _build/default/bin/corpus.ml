(* Shared graph corpora for the experiments: the classic WL benchmark
   pairs, each annotated with its ground truth. *)

module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Product = Glql_graph.Product
module Cfi = Glql_graph.Cfi

let unlabel g =
  Graph.with_labels g (Array.make (Graph.n_vertices g) [| 1.0 |])

type pair = {
  pair_name : string;
  left : Graph.t;
  right : Graph.t;
  isomorphic : bool;
}

(* Triangular prism = C3 x K2: 3-regular on 6 vertices, like K3,3. *)
let prism k = unlabel (Product.cartesian (Generators.cycle k) (Generators.complete 2))

let c6_vs_2c3 () =
  let c6, c33 = Generators.hexagon_vs_two_triangles () in
  { pair_name = "C6 vs C3+C3"; left = c6; right = c33; isomorphic = false }

let decalin_vs_bicyclopentyl () =
  {
    pair_name = "decalin vs bicyclopentyl";
    left = Generators.decalin ();
    right = Generators.bicyclopentyl ();
    isomorphic = false;
  }

let k33_vs_prism () =
  {
    pair_name = "K3,3 vs prism";
    left = Generators.complete_bipartite 3 3;
    right = prism 3;
    isomorphic = false;
  }

let petersen_vs_5prism () =
  {
    pair_name = "Petersen vs C5xK2";
    left = Generators.petersen ();
    right = prism 5;
    isomorphic = false;
  }

let rook_vs_shrikhande () =
  {
    pair_name = "rook 4x4 vs Shrikhande";
    left = Generators.rook_4x4 ();
    right = Generators.shrikhande ();
    isomorphic = false;
  }

let cfi_k3 () =
  let a, b = Cfi.pair (Generators.complete 3) in
  { pair_name = "CFI(K3) untwisted vs twisted"; left = a; right = b; isomorphic = false }

let cfi_k4 () =
  let a, b = Cfi.pair (Generators.complete 4) in
  { pair_name = "CFI(K4) untwisted vs twisted"; left = a; right = b; isomorphic = false }

let shuffled_petersen seed =
  let rng = Glql_util.Rng.create seed in
  let g = Generators.petersen () in
  { pair_name = "Petersen vs shuffled copy"; left = g; right = Graph.shuffle rng g; isomorphic = true }

let p4_vs_star3 () =
  {
    pair_name = "P4 vs star3";
    left = Generators.path 4;
    right = unlabel (Generators.star 3);
    isomorphic = false;
  }

(* The standard benchmark pair list (CFI(K4) excluded: it is only used by
   the hierarchy experiment, where 3-FWL cost is expected). *)
let standard_pairs () =
  [
    shuffled_petersen 2024;
    p4_vs_star3 ();
    c6_vs_2c3 ();
    decalin_vs_bicyclopentyl ();
    k33_vs_prism ();
    petersen_vs_5prism ();
    rook_vs_shrikhande ();
    cfi_k3 ();
  ]

(* A mixed corpus of individual graphs for partition-level experiments. *)
let partition_corpus () =
  [
    Generators.cycle 6;
    Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3);
    Generators.path 6;
    unlabel (Generators.star 5);
    Generators.cycle 7;
    Generators.petersen ();
    prism 5;
    Generators.complete_bipartite 3 3;
    prism 3;
    Generators.decalin ();
    Generators.bicyclopentyl ();
    unlabel (Generators.grid 2 3);
  ]
