(* Experiment harness: one sub-command per reproduced claim of the paper
   (see DESIGN.md section 3). `experiments.exe all` regenerates every
   table recorded in EXPERIMENTS.md; `--fast` trims the slowest cells
   (the 3-FWL run on CFI(K4)). *)

module Rng = Glql_util.Rng
module Tbl = Glql_util.Tbl
module Sig_hash = Glql_util.Sig_hash
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Iso = Glql_graph.Iso
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module Tree = Glql_hom.Tree
module Count = Glql_hom.Count
module Gml = Glql_logic.Gml
module Expr = Glql_gel.Expr
module B = Glql_gel.Builder
module Agg = Glql_gel.Agg
module Compile_gnn = Glql_gel.Compile_gnn
module Compile_gml = Glql_gel.Compile_gml
module Normal_form = Glql_gel.Normal_form
module Wl_sim = Glql_gel.Wl_sim
module Views = Glql_gel.Views
module Model = Glql_gnn.Model
module Dataset = Glql_learning.Dataset
module Erm = Glql_learning.Erm
module Separation = Glql_core.Separation
module Audit = Glql_core.Audit

let yn = Tbl.fmt_bool

let header title claim =
  Printf.printf "\n== %s ==\n%s\n\n" title claim

(* ---------------------------------------------------------------------- *)
(* E1: rho(GNN 101) = rho(colour refinement)  (slide 26)                   *)
(* ---------------------------------------------------------------------- *)

(* Family of random-weight GNN 101 graph embeddings, matched to the label
   dimension and size of a given pair. *)
let gnn101_family seed ~in_dim ~n_members ~depth =
  let rng = Rng.create seed in
  Separation.
    {
      gf_name = "GNN101";
      members =
        List.init n_members (fun _ ->
            let spec = Compile_gnn.random_gnn101 rng ~in_dim ~width:8 ~depth ~out_dim:8 in
            fun g -> Compile_gnn.gnn101_graph_forward spec g);
    }

let e1 ~fast:_ =
  header "E1: random-weight GNN 101 vs colour refinement"
    "Claim (slide 26): rho(GNNs 101) = rho(color refinement). On every pair,\n\
     a family of random-weight GNN 101 models separates the graphs iff\n\
     colour refinement does.";
  let t = ref (Tbl.create ~headers:[ "pair"; "isomorphic"; "CR separates"; "GNN101 separates"; "agree" ]) in
  List.iter
    (fun (p : Corpus.pair) ->
      let depth = max 5 (Graph.n_vertices p.Corpus.left / 4) in
      let family =
        gnn101_family 101 ~in_dim:(Graph.label_dim p.Corpus.left) ~n_members:5 ~depth
      in
      let cr_sep = not (Cr.equivalent_graphs p.Corpus.left p.Corpus.right) in
      let gnn_sep = Separation.separates_graphs ~decimals:9 family p.Corpus.left p.Corpus.right in
      t :=
        Tbl.add_row !t
          [ p.Corpus.pair_name; yn p.Corpus.isomorphic; yn cr_sep; yn gnn_sep; yn (cr_sep = gnn_sep) ])
    (Corpus.standard_pairs ());
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E2: CR-equivalence = equal tree homomorphism counts  (slide 27)         *)
(* ---------------------------------------------------------------------- *)

let e2 ~fast =
  let max_tree = if fast then 6 else 8 in
  header "E2: tree homomorphism counts characterise colour refinement"
    (Printf.sprintf
       "Claim (slide 27, Dell-Grohe-Rattan): G and H are CR-equivalent iff\n\
        hom(T,G) = hom(T,H) for all trees T. Checked for all %d trees with at\n\
        most %d vertices."
       (List.length (Tree.all_free_trees_up_to max_tree))
       max_tree);
  let trees = Tree.all_free_trees_up_to max_tree in
  let t =
    ref (Tbl.create ~headers:[ "pair"; "CR equivalent"; "tree homs equal"; "agree" ])
  in
  List.iter
    (fun (p : Corpus.pair) ->
      let cr_eq = Cr.equivalent_graphs p.Corpus.left p.Corpus.right in
      let hom_eq = Count.equal_profiles trees p.Corpus.left p.Corpus.right in
      t := Tbl.add_row !t [ p.Corpus.pair_name; yn cr_eq; yn hom_eq; yn (cr_eq = hom_eq) ])
    (Corpus.standard_pairs ());
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E3: rho(CR) = rho(MPNN(Omega,sum)) at the vertex level  (slides 51-52)  *)
(* ---------------------------------------------------------------------- *)

let e3 ~fast:_ =
  header "E3: the MPNN language matches colour refinement on vertices"
    "Claim (slides 51-52): rho(color refinement) = rho(MPNN(Omega,Theta)) with\n\
     sum aggregation. The vertex partition induced by random CR-simulating\n\
     MPNN expressions equals the exact CR vertex partition on the corpus.";
  let corpus = Corpus.partition_corpus () in
  let max_n = List.fold_left (fun acc g -> max acc (Graph.n_vertices g)) 0 corpus in
  let cr_part = Cr.vertex_partition corpus in
  let family =
    Separation.
      {
        vf_name = "MPNN-lang";
        vmembers =
          List.init 3 (fun i ->
              let rng = Rng.create (300 + i) in
              let e = Wl_sim.cr_expr rng ~label_dim:1 ~rounds:max_n ~dim:8 in
              fun g -> Expr.eval_vertexwise g e);
      }
  in
  let mpnn_part = Separation.vertex_partition ~decimals:9 family corpus in
  let verdicts = Separation.compare_partitions ~name_p:"CR" ~name_q:"MPNN(Omega,sum)" cr_part mpnn_part in
  let t = ref (Tbl.create ~headers:[ "claim"; "holds"; "detail" ]) in
  List.iter
    (fun (v : Separation.verdict) -> t := Tbl.add_row !t [ v.claim; yn v.holds; v.detail ])
    verdicts;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E4: the Weisfeiler-Leman hierarchy is strict  (slide 65)                *)
(* ---------------------------------------------------------------------- *)

let e4 ~fast =
  header "E4: strict WL hierarchy on CFI-style pairs"
    "Claim (slide 65): rho(CR) >= rho(1-WL) > rho(2-WL) > rho(3-WL) > ... >\n\
     rho(iso). Each row is a non-isomorphic pair; 'equiv' = the algorithm\n\
     cannot tell the two graphs apart. The staircase of 'yes' entries\n\
     moving right is the strictness of the hierarchy.";
  let pairs =
    [ Corpus.c6_vs_2c3 (); Corpus.k33_vs_prism (); Corpus.rook_vs_shrikhande (); Corpus.cfi_k3 () ]
    @ (if fast then [] else [ Corpus.cfi_k4 () ])
  in
  let t =
    ref
      (Tbl.create
         ~headers:[ "pair"; "n"; "CR equiv"; "2-FWL equiv"; "3-FWL equiv"; "isomorphic" ])
  in
  List.iter
    (fun (p : Corpus.pair) ->
      let g = p.Corpus.left and h = p.Corpus.right in
      let n = Graph.n_vertices g in
      let cr = Cr.equivalent_graphs g h in
      let f2 = Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore g h in
      let f3 =
        (* 3-FWL on 40-vertex CFI(K4) is the one expensive cell (~10 s). *)
        Kwl.equivalent_graphs ~k:3 ~variant:Kwl.Folklore g h
      in
      let iso = Iso.are_isomorphic g h in
      t :=
        Tbl.add_row !t
          [ p.Corpus.pair_name; string_of_int n; yn cr; yn f2; yn f3; yn iso ])
    pairs;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E5: rho(2-WL) = rho(GEL3)  (slide 66)                                   *)
(* ---------------------------------------------------------------------- *)

let e5 ~fast:_ =
  header "E5: GEL^3 expressions match folklore 2-WL"
    "Claim (slide 66): rho(k-WL) = rho(GEL^{k+1}(Omega,Theta)), here k = 2.\n\
     Random 2-FWL-simulating GEL^3 expressions separate a pair iff exact\n\
     folklore 2-WL does.";
  let t =
    ref (Tbl.create ~headers:[ "pair"; "2-FWL separates"; "GEL3 separates"; "agree" ])
  in
  (* Graph signature of a pair-level GEL^3 expression: the multiset of its
     (rounded) values over V^2 — the graph colour of slide 65, avoiding
     readout-sum collisions. *)
  let multiset_sig e g =
    let table = Expr.eval g e in
    Array.to_list table.Expr.tdata
    |> List.map (fun v -> Sig_hash.of_float_vector ~decimals:9 v)
    |> List.sort compare
    |> Sig_hash.of_string_list
  in
  List.iter
    (fun (p : Corpus.pair) ->
      let g = p.Corpus.left and h = p.Corpus.right in
      let rounds = 3 in
      let members =
        List.init 2 (fun i ->
            let rng = Rng.create (500 + i) in
            Wl_sim.fwl2_expr rng ~label_dim:(Graph.label_dim g) ~rounds ~dim:6)
      in
      let wl_sep = not (Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore g h) in
      let gel_sep = List.exists (fun e -> multiset_sig e g <> multiset_sig e h) members in
      t := Tbl.add_row !t [ p.Corpus.pair_name; yn wl_sep; yn gel_sep; yn (wl_sep = gel_sep) ])
    (Corpus.standard_pairs ());
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E6: graded modal logic compiles into MPNN  (slide 54)                   *)
(* ---------------------------------------------------------------------- *)

let e6 ~fast =
  let n_formulas = if fast then 10 else 40 in
  header "E6: graded modal logic is MPNN-expressible"
    "Claim (slide 54, Barcelo et al.): every graded-modal-logic unary query\n\
     is expressible by an MPNN. Random formulas are compiled to MPNN\n\
     expressions (truncated-ReLU arithmetic) and checked against the logic\n\
     evaluator on random labelled graphs; agreement must be 100%.";
  let t =
    ref
      (Tbl.create
         ~headers:[ "modal depth"; "#formulas"; "#graphs"; "vertex agreements"; "rate" ])
  in
  let rng = Rng.create 606 in
  List.iter
    (fun depth ->
      let agree = ref 0 and total = ref 0 in
      for _ = 1 to n_formulas do
        let phi = Gml.random rng ~n_props:3 ~target_depth:depth ~max_count:3 in
        let g, _ = Generators.sbm rng ~sizes:[| 4; 4; 4 |] ~p_in:0.5 ~p_out:0.2 ~labelled:true in
        let direct = Gml.eval phi g in
        let compiled = Compile_gml.eval_compiled phi g in
        Array.iteri
          (fun v b ->
            incr total;
            if b = compiled.(v) then incr agree)
          direct
      done;
      t :=
        Tbl.add_row !t
          [
            string_of_int depth;
            string_of_int n_formulas;
            string_of_int n_formulas;
            Printf.sprintf "%d/%d" !agree !total;
            Printf.sprintf "%.1f%%" (100.0 *. float_of_int !agree /. float_of_int !total);
          ])
    [ 1; 2; 3; 4 ];
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E7: normal forms of MPNN expressions  (slide 55)                        *)
(* ---------------------------------------------------------------------- *)

let e7 ~fast:_ =
  header "E7: every MPNN(Omega,sum) expression has an equivalent normal form"
    "Claim (slide 55, Geerts-Steegmans-Van den Bussche): sum-aggregation MPNN\n\
     expressions can be rewritten into the layered normal form\n\
     phi(t)(x1) = F(t)(phi(t-1)(x1), agg(phi(t-1)(x2) | E)). 'deviation' is\n\
     the largest |original - normal form| over all vertices of the corpus.";
  let rng = Rng.create 707 in
  let g = Corpus.unlabel (Generators.petersen ()) in
  let g2 = Generators.decalin () in
  let cases =
    [
      ( "GNN101 depth 1",
        Compile_gnn.gnn101_vertex_expr (Compile_gnn.random_gnn101 rng ~in_dim:1 ~width:4 ~depth:1 ~out_dim:4) );
      ( "GNN101 depth 3",
        Compile_gnn.gnn101_vertex_expr (Compile_gnn.random_gnn101 rng ~in_dim:1 ~width:4 ~depth:3 ~out_dim:4) );
      ( "GIN depth 2",
        Compile_gnn.gin_vertex_expr (Compile_gnn.random_gin rng ~in_dim:1 ~width:4 ~depth:2) );
      ( "GCN depth 2",
        Compile_gnn.gcn_vertex_expr (Compile_gnn.random_gcn rng ~in_dim:1 ~width:4 ~depth:2) );
      ("two-walk count", B.two_walks ~x:B.x1 ~y:B.x2);
    ]
  in
  let t =
    ref
      (Tbl.create
         ~headers:
           [ "expression"; "dag nodes"; "agg depth"; "nf layers"; "nf width"; "deviation" ])
  in
  List.iter
    (fun (name, e) ->
      match Normal_form.of_vertex_expr e with
      | nf ->
          let dev = Float.max (Normal_form.max_deviation nf e g) (Normal_form.max_deviation nf e g2) in
          t :=
            Tbl.add_row !t
              [
                name;
                string_of_int (Expr.n_nodes e);
                string_of_int (Expr.agg_depth e);
                string_of_int (Normal_form.n_layers nf);
                string_of_int (Normal_form.feature_dim nf);
                Printf.sprintf "%.2e" dev;
              ]
      | exception Normal_form.Unsupported msg ->
          t := Tbl.add_row !t [ name; "-"; "-"; "-"; "-"; "unsupported: " ^ msg ])
    cases;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E8: sum vs mean vs max aggregation  (slide 69)                          *)
(* ---------------------------------------------------------------------- *)

let e8 ~fast:_ =
  header "E8: aggregation functions differ in separation power"
    "Claim (slide 69, Rosenbluth et al.): sum, mean and max MPNNs have\n\
     incomparable separation power in general; with nonlinear messages, sum\n\
     subsumes the classic counterexamples. Rows are embedding schemes, each\n\
     a one-round readout; columns are graph pairs.";
  (* Pair 1: C3 vs C6 — regular graphs of different size. *)
  let c3 = Generators.cycle 3 and c6 = Generators.cycle 6 in
  (* Pair 2: stars whose leaf-label multisets are {0,2} vs {1,1}: equal
     sums, different maxima; nonlinearity rescues sum. *)
  let star_with leaves =
    let n = Array.length leaves + 1 in
    let g = Corpus.unlabel (Generators.star (Array.length leaves)) in
    Graph.with_labels g
      (Array.init n (fun v -> if v = 0 then [| 0.0 |] else [| leaves.(v - 1) |]))
  in
  let s02 = star_with [| 0.0; 2.0 |] and s11 = star_with [| 1.0; 1.0 |] in
  let scheme ~agg ~nonlinear =
    (* Graph embedding: the scheme's own aggregator is used both for the
       neighbourhood step and the global readout, as in a homogeneous
       sum-/mean-/max-MPNN. *)
    fun g ->
      let msg = B.lab 0 B.x2 in
      let msg = if nonlinear then B.sigmoid msg else msg in
      let e =
        B.agg_global (agg 1) ~x:B.x1 (B.agg_neighbors (agg 1) ~x:B.x1 ~y:B.x2 msg)
      in
      Expr.eval_closed g e
  in
  let schemes =
    [
      ("sum, linear message", scheme ~agg:Agg.sum ~nonlinear:false);
      ("mean, linear message", scheme ~agg:Agg.mean ~nonlinear:false);
      ("max, linear message", scheme ~agg:Agg.max ~nonlinear:false);
      ("sum, sigmoid message", scheme ~agg:Agg.sum ~nonlinear:true);
    ]
  in
  let sep f g h = Sig_hash.of_float_vector ~decimals:6 (f g) <> Sig_hash.of_float_vector ~decimals:6 (f h) in
  let t =
    ref
      (Tbl.create ~headers:[ "scheme"; "C3 vs C6 separated"; "star{0,2} vs star{1,1} separated" ])
  in
  List.iter
    (fun (name, f) -> t := Tbl.add_row !t [ name; yn (sep f c3 c6); yn (sep f s02 s11) ])
    schemes;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E9: approximation is bounded by separation power  (slides 30-31)        *)
(* ---------------------------------------------------------------------- *)

let e9 ~fast =
  let epochs = if fast then 120 else 300 in
  header "E9: GNNs approximate exactly the CR-bounded targets"
    "Claim (slides 30-31): on a compact corpus, GNN 101 can approximate any\n\
     continuous embedding whose separation power is bounded by colour\n\
     refinement — and only those. The two-walk count is CR-bounded and is\n\
     learnt to low error; the triangle count is not CR-bounded and training\n\
     stalls near the baseline (predicting the mean, rel. MSE = 1).";
  let rng = Rng.create 909 in
  let run generator target target_name =
    let raw = Dataset.regression_corpus rng ~n_graphs:40 ~generator ~target ~target_name in
    (* Normalise targets for stable training; report relative MSE. *)
    let mean = Array.fold_left ( +. ) 0.0 raw.Dataset.rg_targets /. 40.0 in
    let var =
      Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 raw.Dataset.rg_targets /. 40.0
    in
    let sd = sqrt (Float.max 1e-9 var) in
    let ds =
      { raw with Dataset.rg_targets = Array.map (fun x -> (x -. mean) /. sd) raw.Dataset.rg_targets }
    in
    let train_indices, test_indices = Erm.split rng ~n:40 ~train_fraction:0.75 in
    let model =
      Model.create ~readout:Model.RSum
        ~head:
          (Glql_nn.Mlp.create rng ~sizes:[ 8; 8; 1 ] ~act:Glql_nn.Activation.Relu
             ~out_act:Glql_nn.Activation.Identity)
        (List.init 2 (fun i ->
             Glql_gnn.Layer.gnn101 rng ~din:(if i = 0 then 1 else 8) ~dout:8
               ~act:Glql_nn.Activation.Tanh))
    in
    let h = Erm.train_graph_regressor ~epochs ~lr:0.01 model ds ~train_indices ~test_indices in
    (target_name, h.Erm.train_metric, h.Erm.test_metric)
  in
  let rows =
    [
      run (Dataset.er_generator ~n:8) Dataset.two_walk_count
        "two-walk count on G(n,p) (CR-bounded)";
      (* Random cubic graphs are pairwise CR-equivalent, so a CR-bounded
         hypothesis class must predict one constant — relative MSE ~ 1. *)
      run (Dataset.regular_generator ~n:12 ~d:3) Dataset.triangle_count
        "triangle count on random cubic (not CR-bounded)";
    ]
  in
  let t =
    ref (Tbl.create ~headers:[ "target"; "train rel. MSE"; "test rel. MSE"; "learnable" ])
  in
  List.iter
    (fun (name, tr, te) ->
      t :=
        Tbl.add_row !t
          [ name; Printf.sprintf "%.3f" tr; Printf.sprintf "%.3f" te; yn (tr < 0.2) ])
    rows;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E10: the ERM pipeline on all three embedding kinds  (slides 7-9, 19)    *)
(* ---------------------------------------------------------------------- *)

let e10 ~fast =
  header "E10: empirical risk minimisation on the three embedding kinds"
    "Claim (slides 7-9, 16-19): graph learning = ERM over invariant graph /\n\
     vertex / 2-vertex embeddings. Accuracy well above chance on all three\n\
     synthetic tasks shows the full pipeline (datasets, models, losses,\n\
     optimiser) works end to end.";
  let rng = Rng.create 1010 in
  let rows = ref [] in
  (* Graph classification: molecules. *)
  (let ds = Dataset.molecules rng ~n_graphs:(if fast then 40 else 120) ~n_atoms:9 ~n_atom_types:3 in
   let n = Array.length ds.Dataset.graphs in
   let train_indices, test_indices = Erm.split rng ~n ~train_fraction:0.7 in
   let model = Model.gin_classifier rng ~in_dim:ds.Dataset.gc_in_dim ~width:12 ~depth:2 ~n_classes:2 in
   let h =
     Erm.train_graph_classifier ~epochs:(if fast then 30 else 80) ~lr:0.01 model ds ~train_indices
       ~test_indices
   in
   let base =
     let pos = Array.fold_left ( + ) 0 ds.Dataset.gc_labels in
     Float.max (float_of_int pos /. float_of_int n) (1.0 -. (float_of_int pos /. float_of_int n))
   in
   rows :=
     ( "molecule activity (graph)",
       "GIN + sum readout",
       h.Erm.train_metric,
       h.Erm.test_metric,
       base )
     :: !rows);
  (* Node classification: citation. *)
  (let ds =
     Dataset.citation rng ~n_per_class:(if fast then 20 else 40) ~n_classes:3 ~feature_noise:0.4
       ~train_fraction:0.3
   in
   let model = Model.gcn_node_classifier rng ~in_dim:ds.Dataset.nc_in_dim ~width:16 ~depth:2 ~n_classes:3 in
   let h = Erm.train_node_classifier ~epochs:(if fast then 60 else 150) ~lr:0.02 model ds in
   rows :=
     ("paper topic (vertex)", "GCN", h.Erm.train_metric, h.Erm.test_metric, 1.0 /. 3.0) :: !rows);
  (* Link prediction: on featureless graphs a vertex-embedding MPNN gives
     the same vector to every same-degree vertex, so the 2-vertex task
     needs genuinely 2-vertex features. We compute them with GEL
     expressions (common neighbours — a GEL^3 view, edge indicator, the
     two degrees) and learn a head on top: the view-embedding pattern of
     slide 72. *)
  (let ds =
     Dataset.links rng ~n_per_class:(if fast then 15 else 25) ~n_classes:2
       ~n_pairs:(if fast then 150 else 400) ~train_fraction:0.7
   in
   let g = ds.Dataset.lp_graph in
   let cn = Expr.eval g (B.common_neighbors ()) in
   let deg = Expr.eval_vertexwise g (B.degree ~x:B.x1 ~y:B.x2) in
   let features =
     Array.map
       (fun (u, v) ->
         let c = (Expr.table_get cn [| 0; u; v |]).(0) in
         let e = if Graph.has_edge g u v then 1.0 else 0.0 in
         [| c; e; deg.(u).(0); deg.(v).(0); c /. (1.0 +. sqrt (deg.(u).(0) *. deg.(v).(0))) |])
       ds.Dataset.pairs
   in
   let head =
     Glql_nn.Mlp.create rng ~sizes:[ 5; 8; 1 ] ~act:Glql_nn.Activation.Tanh
       ~out_act:Glql_nn.Activation.Identity
   in
   let h =
     Erm.train_feature_classifier ~epochs:(if fast then 150 else 400) ~lr:0.05 head
       ~features ~targets:ds.Dataset.lp_targets ~mask:ds.Dataset.lp_train_mask
   in
   let pos = Array.fold_left ( +. ) 0.0 ds.Dataset.lp_targets in
   let n = float_of_int (Array.length ds.Dataset.lp_targets) in
   let base = Float.max (pos /. n) (1.0 -. (pos /. n)) in
   rows :=
     ( "will-connect (2-vertex)",
       "GEL pair features + MLP",
       h.Erm.train_metric,
       h.Erm.test_metric,
       base )
     :: !rows);
  let t =
    ref
      (Tbl.create
         ~headers:[ "task"; "hypothesis class"; "train acc"; "test acc"; "majority baseline" ])
  in
  List.iter
    (fun (task, cls, tr, te, base) ->
      t :=
        Tbl.add_row !t
          [ task; cls; Printf.sprintf "%.3f" tr; Printf.sprintf "%.3f" te; Printf.sprintf "%.3f" base ])
    (List.rev !rows);
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E11: the expressivity audit  (slides 35, 63, 67)                        *)
(* ---------------------------------------------------------------------- *)

let e11 ~fast:_ =
  header "E11: casting architectures in the language bounds their power"
    "Claim (slides 35, 63, 67): to bound a method's expressive power, cast it\n\
     as a language expression and read off the fragment. 'consistent' checks\n\
     the bound empirically: on the rook/Shrikhande pair (2-FWL-equivalent,\n\
     hence also CR-equivalent) no audited method may separate; on C6 vs 2C3\n\
     (CR-equivalent only) exactly the >MPNN methods may separate.";
  let rng = Rng.create 1111 in
  let entries = Audit.standard_entries rng ~in_dim:1 in
  let rook = Generators.rook_4x4 () and shri = Generators.shrikhande () in
  let c6 = Generators.cycle 6 in
  let c33 = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  let t =
    ref
      (Tbl.create
         ~headers:
           [
             "architecture"; "fragment"; "WL upper bound"; "agg depth";
             "consistent on rook/Shrikhande"; "separates C6 vs 2C3";
           ])
  in
  List.iter
    (fun (e : Audit.entry) ->
      t :=
        Tbl.add_row !t
          [
            e.Audit.architecture;
            Expr.fragment_name e.Audit.fragment;
            Audit.bound_name e.Audit.bound;
            string_of_int e.Audit.agg_depth;
            yn (Audit.consistent_on_pair e rook shri);
            yn (not (Audit.consistent_on_pair e c6 c33));
          ])
    entries;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E12: three variables buy triangles  (slide 60)                          *)
(* ---------------------------------------------------------------------- *)

let e12 ~fast:_ =
  header "E12: GEL^3 counts triangles; MPNN provably cannot"
    "Claim (slide 60): the GEL^3 expression sum_{x1,x2,x3} E(x1,x2) E(x2,x3)\n\
     E(x3,x1) / 6 computes the triangle count — an embedding outside MPNN's\n\
     reach, because C6 and C3+C3 are CR-equivalent yet have 0 vs 2 triangles.";
  let tc = B.triangle_count () in
  let graphs =
    [
      ("C6", Generators.cycle 6);
      ("C3+C3", Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3));
      ("K4", Corpus.unlabel (Generators.complete 4));
      ("Petersen", Generators.petersen ());
      ("rook 4x4", Generators.rook_4x4 ());
      ("Shrikhande", Generators.shrikhande ());
    ]
  in
  let t = ref (Tbl.create ~headers:[ "graph"; "GEL3 expression"; "brute force"; "agree" ]) in
  List.iter
    (fun (name, g) ->
      let a = (Expr.eval_closed g tc).(0) in
      let b = Count.triangles g in
      t := Tbl.add_row !t [ name; Tbl.fmt_float a; Tbl.fmt_float b; yn (a = b) ])
    graphs;
  Tbl.print !t;
  let c6 = Generators.cycle 6 in
  let c33 = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  Printf.printf
    "\nC6 and C3+C3 CR-equivalent: %s; triangle counts %g vs %g => no MPNN computes triangles.\n"
    (yn (Cr.equivalent_graphs c6 c33))
    (Count.triangles c6) (Count.triangles c33)

(* ---------------------------------------------------------------------- *)
(* E13: hom-count views lift MPNN power  (slide 72)                        *)
(* ---------------------------------------------------------------------- *)

let e13 ~fast:_ =
  header "E13: F-MPNN views (local hom-count features) lift separation power"
    "Claim (slide 72, Barcelo et al. NeurIPS 2021): augmenting labels with\n\
     rooted homomorphism counts of fixed patterns strictly increases MPNN\n\
     separation power. Columns: CR-equivalence before and after the view.";
  let cases =
    [
      ("C6 vs C3+C3", "triangle", [ Views.triangle_pattern () ], Corpus.c6_vs_2c3 ());
      ( "decalin vs bicyclopentyl",
        "C5 cycle",
        [ Views.cycle_pattern 5 ],
        Corpus.decalin_vs_bicyclopentyl () );
      ("rook vs Shrikhande", "K4 clique", [ Views.clique_pattern 4 ], Corpus.rook_vs_shrikhande ());
    ]
  in
  let t =
    ref
      (Tbl.create
         ~headers:[ "pair"; "view patterns"; "CR equiv (plain)"; "CR equiv (with view)" ])
  in
  List.iter
    (fun (name, pname, patterns, (p : Corpus.pair)) ->
      let plain = Cr.equivalent_graphs p.Corpus.left p.Corpus.right in
      let viewed = Views.cr_equivalent_with_view patterns p.Corpus.left p.Corpus.right in
      t := Tbl.add_row !t [ name; pname; yn plain; yn viewed ])
    cases;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E14: the finer hierarchy between MPNN and 2-WL  (slide 71)              *)
(* ---------------------------------------------------------------------- *)

let e14 ~fast:_ =
  header "E14: subgraph GNNs and IGNs populate the gap between CR and 2-WL"
    "Claim (slide 71): methods like ID-aware, reconstruction and nested GNNs,\n\
     and order-2 (invariant) graph networks, form a finer hierarchy between\n\
     MPNN/CR power and 2-WL. 'fooled' = cannot tell the pair apart.\n\
     Expected: subgraph ensembles break every CR-equivalent pair yet stay\n\
     fooled by the 2-FWL-equivalent rook/Shrikhande pair; linear 2-IGNs and\n\
     *set*-based 2-GNNs track colour refinement (the weakness that motivated\n\
     ordered-subgraph aggregation, slide 71); matrix-product networks (PPGN)\n\
     additionally capture spectral separations. Two more measured findings:\n\
     radius-2 nested GNNs miss CFI(K3) (the twist is invisible inside small\n\
     balls), and random-weight PPGN at float precision misses it too — its\n\
     first distinguishing invariant is a degree-9 walk moment that 16 composed\n\
     tanh stages attenuate below machine epsilon, a concrete instance of the\n\
     quantitative-approximation question of slide 70.";
  let module Policy = Glql_subgraph.Policy in
  let module Ensemble = Glql_subgraph.Ensemble in
  let module Ign = Glql_gnn.Ign in
  let pairs =
    [
      Corpus.c6_vs_2c3 (); Corpus.decalin_vs_bicyclopentyl (); Corpus.k33_vs_prism ();
      Corpus.petersen_vs_5prism (); Corpus.rook_vs_shrikhande (); Corpus.cfi_k3 ();
    ]
  in
  let family_fooled members g h =
    not
      (List.exists
         (fun f ->
           Sig_hash.of_float_vector ~decimals:9 (f g) <> Sig_hash.of_float_vector ~decimals:9 (f h))
         members)
  in
  let t =
    ref
      (Tbl.create
         ~headers:
           [
             "pair"; "CR"; "id-aware"; "reconstr."; "nested r2"; "2-GNN set"; "2-IGN"; "PPGN";
             "2-FWL";
           ])
  in
  List.iter
    (fun (p : Corpus.pair) ->
      let g = p.Corpus.left and h = p.Corpus.right in
      let ld = Graph.label_dim g in
      let ign_members =
        List.init 3 (fun i ->
            let m = Ign.random (Rng.create (1400 + i)) ~label_dim:ld ~width:6 ~depth:3 ~out_dim:6 in
            Ign.graph_embedding m)
      in
      let ppgn_members =
        List.init 3 (fun i ->
            let m = Ign.random_ppgn (Rng.create (1450 + i)) ~label_dim:ld ~width:6 ~depth:3 ~out_dim:6 in
            Ign.ppgn_graph_embedding m)
      in
      t :=
        Tbl.add_row !t
          [
            p.Corpus.pair_name;
            yn (Cr.equivalent_graphs g h);
            yn (Ensemble.equivalent Policy.Mark g h);
            yn (Ensemble.equivalent Policy.Delete g h);
            yn (Ensemble.equivalent (Policy.Ego 2) g h);
            yn (Glql_subgraph.Kset.equivalent g h);
            yn (family_fooled ign_members g h);
            yn (family_fooled ppgn_members g h);
            yn (Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore g h);
          ])
    pairs;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E15: zero-one law for GNN graph classifiers  (slide 73)                 *)
(* ---------------------------------------------------------------------- *)

let e15 ~fast =
  header "E15: GNN outputs concentrate on Erdos-Renyi graphs"
    "Claim (slide 73, Adam-Day et al.): graph classifiers built from GNNs with\n\
     mean aggregation obey a zero-one law on G(n, 1/2) — as n grows, the\n\
     output converges to a constant, so the standard deviation across sampled\n\
     graphs must vanish.";
  let rng = Rng.create 1500 in
  let spec = Compile_gnn.random_gnn101 rng ~in_dim:1 ~width:8 ~depth:2 ~out_dim:1 in
  let samples = if fast then 15 else 30 in
  (* Mean-readout + sigmoid classifier on top of the GNN 101 features. *)
  let classify g =
    let h = Compile_gnn.gnn101_vertex_forward spec g in
    let n = Glql_tensor.Mat.rows h in
    let pooled = Glql_tensor.Vec.zeros (Glql_tensor.Mat.cols h) in
    for i = 0 to n - 1 do
      Glql_tensor.Vec.add_inplace ~into:pooled (Glql_tensor.Mat.row h i)
    done;
    let pooled = Glql_tensor.Vec.scale (1.0 /. float_of_int (max 1 n)) pooled in
    let z = (Glql_tensor.Vec.add (Glql_tensor.Mat.vec_mul pooled spec.Compile_gnn.readout_w) spec.Compile_gnn.readout_b).(0) in
    1.0 /. (1.0 +. exp (-.z))
  in
  let t = ref (Tbl.create ~headers:[ "n"; "#samples"; "mean output"; "std across graphs" ]) in
  List.iter
    (fun n ->
      let data_rng = Rng.create (1600 + n) in
      let outputs =
        Array.init samples (fun _ -> classify (Generators.erdos_renyi data_rng ~n ~p:0.5))
      in
      let mean = Array.fold_left ( +. ) 0.0 outputs /. float_of_int samples in
      let var =
        Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 outputs /. float_of_int samples
      in
      t :=
        Tbl.add_row !t
          [ string_of_int n; string_of_int samples; Printf.sprintf "%.4f" mean;
            Printf.sprintf "%.2e" (sqrt var) ])
    (if fast then [ 8; 16; 32; 64 ] else [ 8; 16; 32; 64; 128 ]);
  Tbl.print !t;
  print_endline "\nThe standard deviation shrinks with n: the classifier's verdict on large";
  print_endline "random graphs is asymptotically deterministic.";
  ignore samples

(* ---------------------------------------------------------------------- *)
(* E16: learnability = consistency with the CR partition  (slides 28/31)   *)
(* ---------------------------------------------------------------------- *)

let e16 ~fast =
  header "E16: a GNN fits a labelling iff it is constant on CR classes"
    "Claim (slides 28 and 31; WL-meets-VC): the functions realisable by an\n\
     MPNN-bounded hypothesis class are exactly those factoring through\n\
     rho(CR), so a labelling of a corpus can be fitted perfectly iff it is\n\
     constant on colour-refinement classes. C6 and C3+C3 share a class, so\n\
     any labelling splitting them caps training accuracy at 7/8.";
  let rng = Rng.create 1700 in
  let corpus =
    [|
      Generators.cycle 6;
      Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3);
      Generators.path 6;
      Corpus.unlabel (Generators.star 5);
      Generators.cycle 7;
      Generators.complete_bipartite 3 3;
      Corpus.unlabel (Generators.grid 2 3);
      Generators.petersen ();
    |]
  in
  let cr_part = Cr.graph_partition (Array.to_list corpus) in
  let consistent_labels = [| 1; 1; 0; 0; 1; 0; 1; 0 |] in
  let inconsistent_labels = [| 1; 0; 0; 0; 1; 0; 1; 0 |] in
  let train labels =
    let ds =
      Dataset.
        {
          gc_name = "vc";
          graphs = corpus;
          gc_labels = labels;
          gc_n_classes = 2;
          gc_in_dim = 1;
        }
    in
    let model = Model.gin_classifier (Rng.copy rng) ~in_dim:1 ~width:32 ~depth:3 ~n_classes:2 in
    let indices = List.init 8 (fun i -> i) in
    ignore fast;
    let h =
      Erm.train_graph_classifier ~epochs:800 ~lr:0.02 model ds ~train_indices:indices
        ~test_indices:[]
    in
    h.Erm.train_metric
  in
  let is_consistent labels =
    let ok = ref true in
    for i = 0 to 7 do
      for j = 0 to 7 do
        if Glql_wl.Partition.same_class cr_part i j && labels.(i) <> labels.(j) then ok := false
      done
    done;
    !ok
  in
  let t =
    ref
      (Tbl.create
         ~headers:
           [ "labelling"; "consistent with rho(CR)"; "train accuracy"; "perfect fit" ])
  in
  List.iter
    (fun (name, labels) ->
      let acc = train labels in
      t :=
        Tbl.add_row !t
          [ name; yn (is_consistent labels); Printf.sprintf "%.3f" acc; yn (acc >= 0.999) ])
    [ ("CR-consistent", consistent_labels); ("splits C6 from C3+C3", inconsistent_labels) ];
  Tbl.print !t;
  Printf.printf "\ncorpus has %d CR classes over 8 graphs (C6 and C3+C3 coincide).\n"
    (Glql_wl.Partition.n_classes cr_part)

(* ---------------------------------------------------------------------- *)
(* E17: relational embeddings  (slide 74)                                  *)
(* ---------------------------------------------------------------------- *)

let e17 ~fast =
  header "E17: Weisfeiler-Leman goes relational"
    "Claim (slide 74, Barcelo et al. LoG 2022): on multi-relational graphs\n\
     the story repeats — rho(R-GNN) = rho(relational 1-WL), where the\n\
     refinement keeps one neighbour multiset per relation type. Part 1:\n\
     edge types matter (a pair with the same untyped union graph separated\n\
     only relationally). Part 2: the partition induced by random-weight\n\
     R-GCN models equals the exact relational-CR partition on a corpus.";
  let module Rgraph = Glql_relational.Rgraph in
  let module Rwl = Glql_relational.Rwl in
  (* Part 1: C4 with alternating vs blocked edge types. *)
  let labels = Array.make 4 [| 1.0 |] in
  let alternating =
    Rgraph.create ~n:4 ~n_relations:2
      ~edges:[ (0, 0, 1); (1, 1, 2); (0, 2, 3); (1, 3, 0) ]
      ~labels
  in
  let blocked =
    Rgraph.create ~n:4 ~n_relations:2
      ~edges:[ (0, 0, 1); (0, 1, 2); (1, 2, 3); (1, 3, 0) ]
      ~labels
  in
  let t1 =
    Tbl.create ~headers:[ "pair"; "union graphs CR equiv"; "relational CR equiv" ]
  in
  let t1 =
    Tbl.add_row t1
      [
        "C4 alternating vs blocked types";
        yn (Cr.equivalent_graphs (Rgraph.union_graph alternating) (Rgraph.union_graph blocked));
        yn (Rwl.equivalent_graphs alternating blocked);
      ]
  in
  Tbl.print t1;
  print_newline ();
  (* Part 2: partitions on a random typed corpus. *)
  let n_graphs = if fast then 8 else 14 in
  let corpus =
    List.init n_graphs (fun i -> Rgraph.random (Rng.create (1770 + i)) ~n:8 ~n_relations:2 ~p:0.45)
  in
  let rcr_sigs =
    List.map Rwl.graph_signature (Rwl.run_joint corpus) |> Array.of_list
  in
  let rcr_part = Glql_wl.Partition.group ~n:n_graphs (fun i -> rcr_sigs.(i)) in
  let members =
    List.init 3 (fun i ->
        Rwl.random_model (Rng.create (1800 + i)) ~label_dim:1 ~n_relations:2 ~width:8 ~depth:6
          ~out_dim:8)
  in
  let model_sigs =
    Array.of_list
      (List.map
         (fun g ->
           members
           |> List.map (fun m -> Sig_hash.of_float_vector ~decimals:9 (Rwl.graph_embedding m g))
           |> Sig_hash.of_string_list)
         corpus)
  in
  let model_part = Glql_wl.Partition.group ~n:n_graphs (fun i -> model_sigs.(i)) in
  let verdicts =
    Separation.compare_partitions ~name_p:"relational CR" ~name_q:"random R-GNNs" rcr_part
      model_part
  in
  let t2 = ref (Tbl.create ~headers:[ "claim"; "holds"; "detail" ]) in
  List.iter
    (fun (v : Separation.verdict) -> t2 := Tbl.add_row !t2 [ v.claim; yn v.holds; v.detail ])
    verdicts;
  Tbl.print !t2

(* ---------------------------------------------------------------------- *)
(* E18: graph homomorphism convolution  (slide 30, footnote 6)             *)
(* ---------------------------------------------------------------------- *)

(* All labelled trees with at most 3 vertices over [n_types] atom types,
   deduplicated up to label-preserving isomorphism. *)
let labelled_tree_patterns n_types =
  let k1 = List.init n_types (fun t -> ([ t ], Generators.path 1)) in
  let p2 =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a <= b then Some ([ a; b ], Generators.path 2) else None)
          (List.init n_types Fun.id))
      (List.init n_types Fun.id)
  in
  let p3 =
    List.concat_map
      (fun m ->
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b -> if a <= b then Some ([ a; m; b ], Generators.path 3) else None)
              (List.init n_types Fun.id))
          (List.init n_types Fun.id))
      (List.init n_types Fun.id)
  in
  (* Attach the type lists as one-hot labels; P3's vertex order is
     end-middle-end in [Generators.path 3] (0-1-2), matching [a; m; b]. *)
  List.map
    (fun (types, g) ->
      Graph.with_one_hot_labels g (Array.of_list types) ~n_colors:n_types)
    (k1 @ p2 @ p3)

let e18 ~fast =
  header "E18: homomorphism counts as features (graph homomorphism convolution)"
    "Claim (slide 30, Nguyen-Maehara ICML 2020): the approximation power of\n\
     GNNs has an alternative proof via homomorphism counts — profiles of\n\
     label-compatible tree homomorphism counts are features as powerful as\n\
     message passing. A linear-ish model on the hom profile should match the\n\
     trained GIN of E10 on the molecule task.";
  let rng = Rng.create 1818 in
  let n_graphs = if fast then 60 else 120 in
  let ds = Dataset.molecules rng ~n_graphs ~n_atoms:9 ~n_atom_types:3 in
  let n = Array.length ds.Dataset.graphs in
  let train, test = Erm.split rng ~n ~train_fraction:0.7 in
  (* GIN baseline. *)
  let gin = Model.gin_classifier rng ~in_dim:3 ~width:16 ~depth:2 ~n_classes:2 in
  let gin_h =
    Erm.train_graph_classifier ~epochs:(if fast then 40 else 80) ~lr:0.01 gin ds
      ~train_indices:train ~test_indices:test
  in
  (* Hom-profile model: label-compatible tree hom counts, log-compressed. *)
  let patterns = labelled_tree_patterns 3 in
  let compatible pattern pv gv_label =
    let pl = Graph.label pattern pv in
    Array.for_all2 (fun a b -> a = b) pl gv_label
  in
  let features =
    Array.map
      (fun g ->
        Array.of_list
          (List.map
             (fun p ->
               let cnt =
                 Count.hom ~compatible:(fun pv gv -> compatible p pv (Graph.label g gv)) p g
               in
               log (1.0 +. cnt))
             patterns))
      ds.Dataset.graphs
  in
  let mask = Array.make n false in
  List.iter (fun i -> mask.(i) <- true) train;
  let head =
    Glql_nn.Mlp.create rng
      ~sizes:[ List.length patterns; 16; 1 ]
      ~act:Glql_nn.Activation.Tanh ~out_act:Glql_nn.Activation.Identity
  in
  let targets = Array.map float_of_int ds.Dataset.gc_labels in
  let hom_h =
    Erm.train_feature_classifier ~epochs:(if fast then 200 else 400) ~lr:0.03 head ~features
      ~targets ~mask
  in
  let t =
    ref
      (Tbl.create
         ~headers:[ "hypothesis class"; "#features/params"; "train acc"; "test acc" ])
  in
  t :=
    Tbl.add_row !t
      [
        "GIN (message passing)"; "learned"; Printf.sprintf "%.3f" gin_h.Erm.train_metric;
        Printf.sprintf "%.3f" gin_h.Erm.test_metric;
      ];
  t :=
    Tbl.add_row !t
      [
        "hom profile + MLP";
        Printf.sprintf "%d labelled trees <= 3 vertices" (List.length patterns);
        Printf.sprintf "%.3f" hom_h.Erm.train_metric;
        Printf.sprintf "%.3f" hom_h.Erm.test_metric;
      ];
  Tbl.print !t

(* ---------------------------------------------------------------------- *)
(* E19: MPNN queries on the CR-quotient (compressed instance)              *)
(* ---------------------------------------------------------------------- *)

let e19 ~fast:_ =
  header "E19: evaluating MPNN-bounded queries on the colour-refinement quotient"
    "The database reading of rho(MPNN) = rho(CR): the stable CR colouring is\n\
     an equitable partition, so any MPNN evaluates identically on the\n\
     quotient graph (colour classes + neighbour-count matrix + class sizes)\n\
     — query answering on a compressed instance. 'deviation' compares a\n\
     random GNN 101's graph embedding computed on the full graph vs on the\n\
     quotient; 'ratio' = n / #classes is the compression factor.";
  let module Quotient = Glql_wl.Quotient in
  let module Vec = Glql_tensor.Vec in
  let module Mat = Glql_tensor.Mat in
  let rng = Rng.create 1900 in
  let graphs =
    [
      ("C100", Generators.cycle 100);
      ("star 50", Corpus.unlabel (Generators.star 50));
      ("rook 4x4", Generators.rook_4x4 ());
      ("grid 6x6", Corpus.unlabel (Generators.grid 6 6));
      ("petersen + C5", Graph.disjoint_union (Generators.petersen ()) (Generators.cycle 5));
      ("G(24, .3)", Corpus.unlabel (Generators.erdos_renyi (Rng.create 9) ~n:24 ~p:0.3));
    ]
  in
  let t =
    ref
      (Tbl.create
         ~headers:[ "graph"; "n"; "#CR classes"; "compression"; "embedding deviation" ])
  in
  List.iter
    (fun (name, g) ->
      let spec = Compile_gnn.random_gnn101 rng ~in_dim:1 ~width:8 ~depth:3 ~out_dim:6 in
      let full = Compile_gnn.gnn101_graph_forward spec g in
      let q = Quotient.of_graph g in
      let layers = Array.of_list spec.Compile_gnn.layers in
      let per_class =
        Quotient.propagate q
          ~init:(fun l -> l)
          ~update:(fun round self agg ->
            let l = layers.(round) in
            Glql_nn.Activation.apply_vec l.Compile_gnn.act
              (Vec.add
                 (Vec.add (Mat.vec_mul self l.Compile_gnn.w1) (Mat.vec_mul agg l.Compile_gnn.w2))
                 l.Compile_gnn.b))
          ~rounds:(Array.length layers)
      in
      let pooled = Quotient.weighted_sum q per_class in
      let compressed =
        Glql_nn.Activation.apply_vec spec.Compile_gnn.readout_act
          (Vec.add (Mat.vec_mul pooled spec.Compile_gnn.readout_w) spec.Compile_gnn.readout_b)
      in
      t :=
        Tbl.add_row !t
          [
            name;
            string_of_int (Graph.n_vertices g);
            string_of_int q.Quotient.n_classes;
            Printf.sprintf "%.1fx" (Quotient.compression_ratio g q);
            Printf.sprintf "%.2e" (Vec.linf_dist full compressed);
          ])
    graphs;
  Tbl.print !t

(* ---------------------------------------------------------------------- *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7);
    ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13);
    ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let fast = List.mem "--fast" args in
  let wanted = List.filter (fun a -> a <> "--fast" && a <> Sys.argv.(0)) args in
  let wanted = if wanted = [] || List.mem "all" wanted then List.map fst experiments else wanted in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ~fast
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s, all)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    wanted
