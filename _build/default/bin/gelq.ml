(* gelq — run GEL queries against graphs from the command line.

     dune exec bin/gelq.exe -- '<expression>' [graph]

   where [graph] is one of: petersen (default), cycle<N>, path<N>,
   complete<N>, star<N>, rook, shrikhande, decalin, bicyclopentyl,
   two-triangles, grid<R>x<C>.

   Examples:

     gelq 'agg_sum{x2}([1] | E(x1,x2))'                        # degrees
     gelq 'agg_sum{x1,x2,x3}(product(E(x1,x2), product(E(x2,x3), E(x3,x1))) | [1])' rook
     gelq 'agg_max{x2}(agg_count{x1}([1] | E(x2,x1)) | E(x1,x2))' path7 *)

module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Expr = Glql_gel.Expr
module Parser = Glql_gel.Parser
module Vec = Glql_tensor.Vec

let parse_sized name ~prefix =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

let graph_of_name name =
  match name with
  | "petersen" -> Generators.petersen ()
  | "rook" -> Generators.rook_4x4 ()
  | "shrikhande" -> Generators.shrikhande ()
  | "decalin" -> Generators.decalin ()
  | "bicyclopentyl" -> Generators.bicyclopentyl ()
  | "two-triangles" ->
      Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3)
  | _ -> (
      match
        ( parse_sized name ~prefix:"cycle",
          parse_sized name ~prefix:"path",
          parse_sized name ~prefix:"complete",
          parse_sized name ~prefix:"star" )
      with
      | Some n, _, _, _ -> Generators.cycle n
      | _, Some n, _, _ -> Generators.path n
      | _, _, Some n, _ -> Generators.complete n
      | _, _, _, Some n ->
          let g = Generators.star n in
          Graph.with_labels g (Array.make (Graph.n_vertices g) [| 1.0 |])
      | _ -> (
          match String.index_opt name 'x' with
          | Some i when String.length name > 4 && String.sub name 0 4 = "grid" -> (
              match
                ( int_of_string_opt (String.sub name 4 (i - 4)),
                  int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) )
              with
              | Some r, Some c -> Generators.grid r c
              | _ -> failwith ("unknown graph " ^ name))
          | _ -> failwith ("unknown graph " ^ name)))

let () =
  match Array.to_list Sys.argv with
  | _ :: query :: rest ->
      let graph_name = match rest with g :: _ -> g | [] -> "petersen" in
      let g = graph_of_name graph_name in
      let e =
        try Parser.parse query with
        | Parser.Parse_error msg ->
            Printf.eprintf "parse error: %s\n" msg;
            exit 1
        | Expr.Type_error msg ->
            Printf.eprintf "type error: %s\n" msg;
            exit 1
      in
      Printf.printf "query    : %s\n" (Expr.to_string e);
      Printf.printf "fragment : %s | dimension %d | free variables [%s]\n"
        (Expr.fragment_name (Expr.fragment e))
        (Expr.dim e)
        (String.concat "; " (List.map (Printf.sprintf "x%d") (Expr.free_vars e)));
      Printf.printf "graph    : %s (%d vertices, %d edges)\n\n" graph_name (Graph.n_vertices g)
        (Graph.n_edges g);
      let table = Expr.eval g e in
      (match table.Expr.tvars with
      | [] -> Printf.printf "value = %s\n" (Vec.to_string table.Expr.tdata.(0))
      | [ _ ] ->
          Array.iteri
            (fun v value -> Printf.printf "v%-3d -> %s\n" v (Vec.to_string value))
            table.Expr.tdata
      | vars ->
          let n = Graph.n_vertices g in
          Array.iteri
            (fun idx value ->
              let tuple = ref [] in
              let rest = ref idx in
              for _ = 1 to List.length vars do
                tuple := (!rest mod n) :: !tuple;
                rest := !rest / n
              done;
              (* Print only nonzero entries for readability on big tables. *)
              if Array.exists (fun x -> x <> 0.0) value then
                Printf.printf "(%s) -> %s\n"
                  (String.concat ", " (List.map string_of_int !tuple))
                  (Vec.to_string value))
            table.Expr.tdata)
  | _ ->
      prerr_endline "usage: gelq '<expression>' [graph]";
      prerr_endline "  e.g. gelq 'agg_sum{x2}([1] | E(x1,x2))' petersen";
      exit 1
