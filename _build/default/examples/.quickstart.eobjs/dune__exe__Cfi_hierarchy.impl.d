examples/cfi_hierarchy.ml: Array Glql_graph Glql_util Glql_wl List Printf Sys
