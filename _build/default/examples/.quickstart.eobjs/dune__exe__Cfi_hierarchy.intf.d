examples/cfi_hierarchy.mli:
