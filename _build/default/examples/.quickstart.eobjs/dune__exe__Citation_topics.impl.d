examples/citation_topics.ml: Array Glql_gnn Glql_graph Glql_learning Glql_nn Glql_util Printf
