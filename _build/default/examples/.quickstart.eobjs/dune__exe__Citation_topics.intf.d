examples/citation_topics.mli:
