examples/expressivity_audit.ml: Array Glql_core Glql_gel Glql_graph Glql_tensor Glql_util Glql_wl List Printf
