examples/expressivity_audit.mli:
