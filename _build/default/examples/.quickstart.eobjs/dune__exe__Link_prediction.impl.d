examples/link_prediction.ml: Array Float Glql_gel Glql_graph Glql_learning Glql_nn Glql_util Printf
