examples/link_prediction.mli:
