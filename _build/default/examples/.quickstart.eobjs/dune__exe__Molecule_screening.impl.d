examples/molecule_screening.ml: Array Glql_gnn Glql_graph Glql_learning Glql_logic Glql_tensor Glql_util Glql_wl List Printf
