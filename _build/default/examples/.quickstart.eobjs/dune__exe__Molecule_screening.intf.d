examples/molecule_screening.mli:
