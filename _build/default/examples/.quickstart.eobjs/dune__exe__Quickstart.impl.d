examples/quickstart.ml: Array Float Glql_gel Glql_graph Glql_tensor Glql_util Glql_wl List Printf String
