examples/quickstart.mli:
