(* A guided tour of the Cai-Furer-Immerman construction and the strictness
   of the Weisfeiler-Leman hierarchy (slide 65).

     dune exec examples/cfi_hierarchy.exe            # fast (CFI(K3) only)
     dune exec examples/cfi_hierarchy.exe -- --full  # adds CFI(K4), ~15 s *)

module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Cfi = Glql_graph.Cfi
module Iso = Glql_graph.Iso
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module Tbl = Glql_util.Tbl

let describe base_name base =
  let c = Cfi.build base in
  let g = Cfi.graph c in
  Printf.printf "CFI(%s): base has %d vertices / %d edges; gadget graph has %d vertices\n"
    base_name (Graph.n_vertices base) (Graph.n_edges base) (Graph.n_vertices g);
  let untwisted, twisted = Cfi.pair base in
  Printf.printf "  untwisted vs one-twist isomorphic? %b\n" (Iso.are_isomorphic untwisted twisted);
  let double = Cfi.graph (Cfi.build ~twisted:[ 0; 1 ] base) in
  Printf.printf "  two twists isomorphic to untwisted? %b (twists cancel in pairs)\n"
    (Iso.are_isomorphic untwisted double);
  (untwisted, twisted)

let () =
  let full = Array.exists (fun a -> a = "--full") Sys.argv in
  print_endline "The CFI construction turns any connected base graph into a pair of";
  print_endline "non-isomorphic gadget graphs that low-dimensional WL cannot tell apart.";
  print_newline ();

  let k3 = Generators.complete 3 in
  let a3, b3 = describe "K3" k3 in
  print_newline ();

  let rows = ref [] in
  let verdicts name g h =
    rows :=
      (name,
       Cr.equivalent_graphs g h,
       Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore g h,
       Kwl.equivalent_graphs ~k:3 ~variant:Kwl.Folklore g h)
      :: !rows
  in
  verdicts "CFI(K3)  [tw 2]" a3 b3;
  if full then begin
    let k4 = Generators.complete 4 in
    let a4, b4 = describe "K4" k4 in
    print_newline ();
    print_endline "running 3-FWL on 40-vertex graphs (64,000 triples each)...";
    verdicts "CFI(K4)  [tw 3]" a4 b4
  end;

  let t = ref (Tbl.create ~headers:[ "pair"; "CR fooled"; "2-FWL fooled"; "3-FWL fooled" ]) in
  List.iter
    (fun (name, cr, f2, f3) ->
      t := Tbl.add_row !t [ name; Tbl.fmt_bool cr; Tbl.fmt_bool f2; Tbl.fmt_bool f3 ])
    (List.rev !rows);
  Tbl.print !t;
  print_newline ();
  print_endline "Higher base treewidth pushes the fooling threshold up the hierarchy:";
  print_endline "tw-2 bases fool CR only; tw-3 bases fool 2-FWL as well (slide 65).";
  if not full then print_endline "(re-run with --full to add the CFI(K4) row)"
