(* Vertex embeddings for topic prediction in a citation network (slide 8's
   Cora story on a synthetic stand-in): semi-supervised node
   classification with a GCN.

     dune exec examples/citation_topics.exe *)

module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Model = Glql_gnn.Model
module Dataset = Glql_learning.Dataset
module Erm = Glql_learning.Erm

let () =
  let rng = Rng.create 2025 in
  let ds =
    Dataset.citation rng ~n_per_class:40 ~n_classes:3 ~feature_noise:0.45 ~train_fraction:0.25
  in
  let n = Graph.n_vertices ds.Dataset.graph in
  let n_train = Array.fold_left (fun a b -> if b then a + 1 else a) 0 ds.Dataset.train_mask in
  Printf.printf "citation network: %d papers, %d edges, %d topics, %d labelled (%.0f%%)\n"
    n (Graph.n_edges ds.Dataset.graph) ds.Dataset.nc_n_classes n_train
    (100.0 *. float_of_int n_train /. float_of_int n);
  Printf.printf "features: noisy topic indicator (45%% noise) + random word coordinates\n\n";

  (* Feature-only baseline: an MLP ignoring the graph (depth-0 'GNN'). *)
  let baseline =
    Model.create
      ~head:
        (Glql_nn.Mlp.create rng ~sizes:[ ds.Dataset.nc_in_dim; 16; 3 ]
           ~act:Glql_nn.Activation.Relu ~out_act:Glql_nn.Activation.Identity)
      []
  in
  let hb = Erm.train_node_classifier ~epochs:150 ~lr:0.02 baseline ds in
  Printf.printf "feature-only MLP : train %.3f  test %.3f\n" hb.Erm.train_metric hb.Erm.test_metric;

  (* GCN: message passing pools topic evidence from citations. *)
  let gcn = Model.gcn_node_classifier rng ~in_dim:ds.Dataset.nc_in_dim ~width:24 ~depth:2 ~n_classes:3 in
  let hg = Erm.train_node_classifier ~epochs:150 ~lr:0.02 gcn ds in
  Printf.printf "2-layer GCN      : train %.3f  test %.3f\n\n" hg.Erm.train_metric hg.Erm.test_metric;
  Printf.printf "message passing beats the feature-only baseline by %.1f accuracy points.\n"
    (100.0 *. (hg.Erm.test_metric -. hb.Erm.test_metric))
