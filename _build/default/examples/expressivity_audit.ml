(* The paper's recipe (slide 35) as a tool: "a new embedding method just
   needs to be cast in the embedding language to know a bound on its
   expressive power."

   We define a *custom* architecture — a degree-normalised max-aggregation
   network with a quirky gating nonlinearity — cast it in GEL, read off
   its fragment and WL bound, and validate the bound on the classic pairs.

     dune exec examples/expressivity_audit.exe *)

module Rng = Glql_util.Rng
module Tbl = Glql_util.Tbl
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Cr = Glql_wl.Color_refinement
module Expr = Glql_gel.Expr
module Func = Glql_gel.Func
module B = Glql_gel.Builder
module Audit = Glql_core.Audit

(* A made-up architecture: h'(x) = swish(W1 h(x) + W2 (max_{y~x} h(y) / (1 + deg(x)))). *)
let custom_layer rng ~din ~dout (prev_x, prev_y) ~x ~y =
  let swish = Func.scalar "swish" (fun v -> v /. (1.0 +. exp (-.v))) in
  let swish_d d =
    Func.custom ~name:"swish" ~in_dims:[ d ] ~out_dim:d (fun args ->
        match args with
        | [ v ] -> Array.map (fun t -> (swish.Func.apply [ [| t |] ]).(0)) v
        | _ -> assert false)
  in
  let step ~self ~other ~sv ~ov =
    let maxed = B.max_neighbors ~x:sv ~y:ov other in
    let inv_deg =
      Expr.Apply
        (Func.scalar "inv1p" (fun d -> 1.0 /. (1.0 +. d)), [ B.degree ~x:sv ~y:ov ])
    in
    let gated = Expr.Apply (Func.scale_by din, [ maxed; inv_deg ]) in
    let w1 = Glql_tensor.Mat.glorot rng din dout in
    let w2 = Glql_tensor.Mat.glorot rng din dout in
    Expr.Apply
      (swish_d dout, [ Expr.Apply (Func.linear_multi [ w1; w2 ] (Glql_tensor.Vec.zeros dout), [ self; gated ]) ])
  in
  (step ~self:prev_x ~other:prev_y ~sv:x ~ov:y, step ~self:prev_y ~other:prev_x ~sv:y ~ov:x)

let custom_network rng ~depth =
  let x = B.x1 and y = B.x2 in
  let rec go d pair = if d = 0 then fst pair else go (d - 1) (custom_layer rng ~din:4 ~dout:4 pair ~x ~y) in
  let init v = Expr.Apply (Func.linear (Glql_tensor.Mat.glorot rng 1 4) (Glql_tensor.Vec.zeros 4), [ B.labels ~dim:1 v ]) in
  go depth (init x, init y)

let () =
  let rng = Rng.create 7 in
  let expr = custom_network rng ~depth:3 in
  let entry = Audit.audit ~architecture:"swish-gated max-GNN" expr in
  Printf.printf "architecture : %s\n" entry.Audit.architecture;
  Printf.printf "fragment     : %s\n" (Expr.fragment_name entry.Audit.fragment);
  Printf.printf "WL bound     : %s\n" (Audit.bound_name entry.Audit.bound);
  Printf.printf "agg depth    : %d rounds, %d DAG nodes\n\n" entry.Audit.agg_depth entry.Audit.n_nodes;

  (* The bound predicts: the method cannot separate CR-equivalent pairs. *)
  let pairs =
    [
      ("C6 vs C3+C3", Generators.cycle 6,
       Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3));
      ("rook vs Shrikhande", Generators.rook_4x4 (), Generators.shrikhande ());
      ("P4 vs star3", Generators.path 4,
       Graph.with_labels (Generators.star 3) (Array.make 4 [| 1.0 |]));
    ]
  in
  let table = ref (Tbl.create ~headers:[ "pair"; "CR equivalent"; "method separates"; "bound respected" ]) in
  List.iter
    (fun (name, g, h) ->
      let cr_eq = Cr.equivalent_graphs g h in
      let separates = not (Audit.consistent_on_pair entry g h) in
      (* Sound bound: separation implies CR separation. *)
      let respected = (not separates) || not cr_eq in
      table :=
        Tbl.add_row !table
          [ name; Tbl.fmt_bool cr_eq; Tbl.fmt_bool separates; Tbl.fmt_bool respected ])
    pairs;
  Tbl.print !table;
  print_newline ();
  print_endline
    "The audit took one compilation — no bespoke proof needed (slide 35's recipe)."
