(* 2-vertex embeddings for link prediction (slide 9): on a featureless
   graph, any vertex-embedding MPNN assigns same-degree-profile vertices
   the same vector, so the pair task needs genuinely 2-vertex features.
   We compute them with GEL expressions — a common-neighbour count (a
   GEL^3 view), the edge indicator and the endpoint degrees — and learn a
   small head on top: the view-embedding pattern of slide 72.

     dune exec examples/link_prediction.exe *)

module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Expr = Glql_gel.Expr
module B = Glql_gel.Builder
module Dataset = Glql_learning.Dataset
module Erm = Glql_learning.Erm
module Mlp = Glql_nn.Mlp
module Activation = Glql_nn.Activation

let () =
  let rng = Rng.create 31337 in
  let ds = Dataset.links rng ~n_per_class:30 ~n_classes:2 ~n_pairs:500 ~train_fraction:0.7 in
  let g = ds.Dataset.lp_graph in
  Printf.printf "social graph: %d people, %d ties; %d candidate pairs\n"
    (Graph.n_vertices g) (Graph.n_edges g) (Array.length ds.Dataset.pairs);
  Printf.printf "target: will the pair connect (same community)?\n\n";

  (* GEL-defined pair features. *)
  let cn_expr = B.common_neighbors () in
  Printf.printf "common-neighbour feature: %s\n" (Expr.to_string cn_expr);
  Printf.printf "  fragment %s — inherently more than a pair of vertex embeddings\n\n"
    (Expr.fragment_name (Expr.fragment cn_expr));
  let cn = Expr.eval g cn_expr in
  let deg = Expr.eval_vertexwise g (B.degree ~x:B.x1 ~y:B.x2) in
  let features =
    Array.map
      (fun (u, v) ->
        let c = (Expr.table_get cn [| 0; u; v |]).(0) in
        let e = if Graph.has_edge g u v then 1.0 else 0.0 in
        [| c; e; deg.(u).(0); deg.(v).(0); c /. (1.0 +. sqrt (deg.(u).(0) *. deg.(v).(0))) |])
      ds.Dataset.pairs
  in

  let head = Mlp.create rng ~sizes:[ 5; 12; 1 ] ~act:Activation.Tanh ~out_act:Activation.Identity in
  let history =
    Erm.train_feature_classifier ~epochs:400 ~lr:0.05 head ~features
      ~targets:ds.Dataset.lp_targets ~mask:ds.Dataset.lp_train_mask
  in
  let pos = Array.fold_left ( +. ) 0.0 ds.Dataset.lp_targets in
  let baseline =
    let n = float_of_int (Array.length ds.Dataset.lp_targets) in
    Float.max (pos /. n) (1.0 -. (pos /. n))
  in
  Printf.printf "train accuracy %.3f | test accuracy %.3f | majority baseline %.3f\n"
    history.Erm.train_metric history.Erm.test_metric baseline
