(* Graph embeddings for molecular screening (slide 7's antibiotic story on
   a synthetic stand-in): train a GIN classifier on molecule-like graphs
   whose "activity" is a graded-modal-logic property of the atom types,
   then verify two theory-facts on the trained model:

   - invariance: a molecule and a random re-drawing of it get identical
     predictions;
   - the MPNN ceiling: two CR-equivalent skeletons get identical
     embeddings no matter how the model is trained.

     dune exec examples/molecule_screening.exe *)

module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Cr = Glql_wl.Color_refinement
module Model = Glql_gnn.Model
module Dataset = Glql_learning.Dataset
module Erm = Glql_learning.Erm
module Vec = Glql_tensor.Vec
module Gml = Glql_logic.Gml

let () =
  let rng = Rng.create 1234 in
  Printf.printf "activity property (GML, slide 54): %s\n\n"
    (Gml.to_string Dataset.activity_property);
  let ds = Dataset.molecules rng ~n_graphs:120 ~n_atoms:9 ~n_atom_types:3 in
  let n = Array.length ds.Dataset.graphs in
  let positives = Array.fold_left ( + ) 0 ds.Dataset.gc_labels in
  Printf.printf "dataset: %d molecules, %d active (%.0f%%)\n" n positives
    (100.0 *. float_of_int positives /. float_of_int n);

  let train, test = Erm.split rng ~n ~train_fraction:0.7 in
  let model = Model.gin_classifier rng ~in_dim:3 ~width:16 ~depth:2 ~n_classes:2 in
  let history =
    Erm.train_graph_classifier ~epochs:80 ~lr:0.01 model ds ~train_indices:train
      ~test_indices:test
  in
  Printf.printf "after ERM (%d epochs): train accuracy %.3f, test accuracy %.3f\n\n"
    (List.length history.Erm.losses) history.Erm.train_metric history.Erm.test_metric;

  (* Invariance: shuffle a molecule's vertex order. *)
  let g = ds.Dataset.graphs.(0) in
  let g' = Graph.shuffle (Rng.create 55) g in
  let e = Model.graph_embedding model g and e' = Model.graph_embedding model g' in
  Printf.printf "invariance check: |f(G) - f(pi(G))| = %g (must be ~0, slide 11)\n"
    (Vec.linf_dist e e');

  (* The CR ceiling: decalin vs bicyclopentyl with uniform atom types. *)
  let pad3 g =
    Graph.with_labels g (Array.make (Graph.n_vertices g) [| 1.0; 0.0; 0.0 |])
  in
  let d = pad3 (Generators.decalin ()) and b = pad3 (Generators.bicyclopentyl ()) in
  Printf.printf "decalin vs bicyclopentyl CR-equivalent: %b\n" (Cr.equivalent_graphs d b);
  Printf.printf "trained GIN embeddings differ by %g (must be ~0: the MPNN ceiling, slide 26)\n"
    (Vec.linf_dist (Model.graph_embedding model d) (Model.graph_embedding model b))
