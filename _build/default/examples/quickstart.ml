(* Quickstart: the public API in five minutes.

   Build a labelled graph, run colour refinement, write a GEL expression
   and evaluate it, compile a GNN into the language, and compare
   separation powers — the paper's pipeline end to end.

     dune exec examples/quickstart.exe *)

module Graph = Glql_graph.Graph
module Cr = Glql_wl.Color_refinement
module Expr = Glql_gel.Expr
module B = Glql_gel.Builder
module Compile_gnn = Glql_gel.Compile_gnn

let () =
  (* 1. A labelled graph G = (V, E, L) — slide 6. *)
  let g =
    Graph.with_one_hot_labels
      (Graph.unlabelled ~n:5 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (0, 2) ])
      [| 0; 1; 0; 1; 0 |] ~n_colors:2
  in
  Printf.printf "graph: %s\n\n" (Graph.to_string g);

  (* 2. Colour refinement — slide 50. *)
  let result = Cr.run g in
  (match Cr.stable_colors result with
  | [ colors ] ->
      Printf.printf "colour refinement stabilised after %d rounds; vertex colours: %s\n\n"
        (Cr.rounds result)
        (String.concat " " (Array.to_list (Array.map string_of_int colors)))
  | _ -> assert false);

  (* 3. A GEL expression: the degree of x1 as agg_sum_{x2}(1 | E(x1,x2)),
     slide 45. *)
  let deg = B.degree ~x:B.x1 ~y:B.x2 in
  Printf.printf "expression  %s\n" (Expr.to_string deg);
  Printf.printf "fragment    %s (dimension %d, %d free variable)\n"
    (Expr.fragment_name (Expr.fragment deg))
    (Expr.dim deg)
    (List.length (Expr.free_vars deg));
  let degrees = Expr.eval_vertexwise g deg in
  Printf.printf "degrees     %s\n\n"
    (String.concat " " (Array.to_list (Array.map (fun v -> string_of_int (int_of_float v.(0))) degrees)));

  (* 4. Triangle counting needs three variables — slide 60. *)
  let tri = B.triangle_count () in
  Printf.printf "triangles   %g   (expression lives in %s, beyond MPNN reach)\n\n"
    (Expr.eval_closed g tri).(0)
    (Expr.fragment_name (Expr.fragment tri));

  (* 5. A random-weight GNN 101 compiled into the language — slides 13/48. *)
  let rng = Glql_util.Rng.create 2024 in
  let spec = Compile_gnn.random_gnn101 rng ~in_dim:2 ~width:4 ~depth:2 ~out_dim:3 in
  let expr = Compile_gnn.gnn101_vertex_expr spec in
  Printf.printf "a 2-layer GNN 101 compiles to a %s expression with %d DAG nodes\n"
    (Expr.fragment_name (Expr.fragment expr))
    (Expr.n_nodes expr);
  let from_expr = Expr.eval_vertexwise g expr in
  let from_tensor = Compile_gnn.gnn101_vertex_forward spec g in
  let max_diff = ref 0.0 in
  Array.iteri
    (fun v row ->
      max_diff :=
        Float.max !max_diff
          (Glql_tensor.Vec.linf_dist row (Glql_tensor.Mat.row from_tensor v)))
    from_expr;
  Printf.printf "language evaluation vs tensor forward: max |diff| = %g\n" !max_diff
