lib/core/audit.ml: Array Glql_gel Glql_graph Glql_util List Printf
