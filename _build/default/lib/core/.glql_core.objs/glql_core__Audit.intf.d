lib/core/audit.mli: Glql_gel Glql_graph Glql_util
