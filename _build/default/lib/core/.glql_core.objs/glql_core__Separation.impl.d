lib/core/separation.ml: Array Glql_graph Glql_tensor Glql_util Glql_wl List Printf
