lib/core/separation.mli: Glql_graph Glql_tensor Glql_wl
