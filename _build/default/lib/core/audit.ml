(* The expressivity audit of slides 34-35 and 63: cast an architecture in
   the embedding language, read off the fragment, and conclude the WL
   upper bound — "a new embedding method just needs to be cast in the
   embedding language to know a bound on its expressive power".

   The audit also runs an empirical consistency check: on a corpus of
   WL-equivalent pairs, a sound bound means the (random-weight) method
   never separates a pair its bound cannot separate. *)

module Graph = Glql_graph.Graph
module Expr = Glql_gel.Expr

type bound = B_cr | B_kwl of int

let bound_name = function
  | B_cr -> "colour refinement (1-WL)"
  | B_kwl k -> Printf.sprintf "%d-FWL" k

(* The fragment-to-bound reading of slides 52/66: MPNN expressions are
   bounded by colour refinement; GEL^{k+1} expressions by k-FWL. *)
let bound_of_fragment = function
  | Expr.Frag_mpnn -> B_cr
  | Expr.Frag_gel k -> B_kwl (max 1 (k - 1))

type entry = {
  architecture : string;
  expr : Expr.t;
  fragment : Expr.fragment;
  bound : bound;
  n_nodes : int;
  agg_depth : int;
}

let audit ~architecture expr =
  let fragment = Expr.fragment expr in
  {
    architecture;
    expr;
    fragment;
    bound = bound_of_fragment fragment;
    n_nodes = Expr.n_nodes expr;
    agg_depth = Expr.agg_depth expr;
  }

(* Build the standard audit table over all compiled architectures. *)
let standard_entries rng ~in_dim =
  let module C = Glql_gel.Compile_gnn in
  let module B = Glql_gel.Builder in
  [
    audit ~architecture:"GNN 101"
      (C.gnn101_vertex_expr (C.random_gnn101 rng ~in_dim ~width:4 ~depth:2 ~out_dim:4));
    audit ~architecture:"GCN" (C.gcn_vertex_expr (C.random_gcn rng ~in_dim ~width:4 ~depth:2));
    audit ~architecture:"GIN" (C.gin_vertex_expr (C.random_gin rng ~in_dim ~width:4 ~depth:2));
    audit ~architecture:"GraphSAGE-mean"
      (C.sage_vertex_expr (C.random_sage rng ~in_dim ~width:4 ~depth:2 ~agg:C.Sage_mean));
    audit ~architecture:"GraphSAGE-max"
      (C.sage_vertex_expr (C.random_sage rng ~in_dim ~width:4 ~depth:2 ~agg:C.Sage_max));
    audit ~architecture:"GAT" (C.gat_vertex_expr (C.random_gat rng ~in_dim ~width:4 ~depth:2));
    audit ~architecture:"2-FWL GNN (GEL3)"
      (Glql_gel.Wl_sim.fwl2_expr rng ~label_dim:in_dim ~rounds:2 ~dim:4);
    audit ~architecture:"triangle counter (GEL3)" (B.triangles_at_x1 ());
  ]

(* Soundness check of a bound on a pair known to be equivalent under that
   bound: the compiled expression must give equal value multisets. *)
let consistent_on_pair entry g h =
  let values g =
    match Expr.free_vars entry.expr with
    | [] -> [ Glql_util.Sig_hash.of_float_vector (Expr.eval_closed g entry.expr) ]
    | [ _ ] ->
        Expr.eval_vertexwise g entry.expr
        |> Array.to_list
        |> List.map (fun v -> Glql_util.Sig_hash.of_float_vector ~decimals:5 v)
        |> List.sort compare
    | _ ->
        let t = Expr.eval g entry.expr in
        Array.to_list t.Expr.tdata
        |> List.map (fun v -> Glql_util.Sig_hash.of_float_vector ~decimals:5 v)
        |> List.sort compare
  in
  values g = values h
