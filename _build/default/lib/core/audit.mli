(** Expressivity audit (slides 34-35, 63): cast an architecture in the
    embedding language, read off the fragment, conclude a WL upper bound,
    and check the bound empirically on WL-equivalent pairs. *)

module Graph = Glql_graph.Graph
module Expr = Glql_gel.Expr

type bound = B_cr | B_kwl of int

val bound_name : bound -> string

(** MPNN fragment -> colour refinement; GEL^{k+1} -> k-FWL (slides 52, 66). *)
val bound_of_fragment : Expr.fragment -> bound

type entry = {
  architecture : string;
  expr : Expr.t;
  fragment : Expr.fragment;
  bound : bound;
  n_nodes : int;
  agg_depth : int;
}

val audit : architecture:string -> Expr.t -> entry

(** One entry per implemented architecture (random weights). *)
val standard_entries : Glql_util.Rng.t -> in_dim:int -> entry list

(** Equal (rounded) value multisets on the two graphs — required when the
    pair is equivalent under the entry's bound. *)
val consistent_on_pair : entry -> Graph.t -> Graph.t -> bool
