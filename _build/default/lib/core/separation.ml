(* The separation-power toolkit (slides 24-25).

   rho(F), restricted to a finite corpus, is a partition: two items are in
   the same class iff no embedding of the (sampled) family F separates
   them.  Embedding values are rounded before interning so numerical noise
   does not create spurious separations; comparing rho's is comparing
   partitions by refinement. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Partition = Glql_wl.Partition
module Sig_hash = Glql_util.Sig_hash

(* A sampled hypothesis family of graph embeddings: finitely many draws
   from the (infinite) weight-parameterised class. *)
type graph_family = { gf_name : string; members : (Graph.t -> Vec.t) list }

(* A family of vertex embeddings: each member maps a graph to one vector
   per vertex. *)
type vertex_family = { vf_name : string; vmembers : (Graph.t -> Vec.t array) list }

let rounded ?(decimals = 6) v = Sig_hash.of_float_vector ~decimals v

(* Partition of a graph corpus induced by the family: items i, j together
   iff every member maps graphs i and j to (rounded-)equal vectors. *)
let graph_partition ?decimals family corpus =
  let graphs = Array.of_list corpus in
  let signatures =
    Array.map
      (fun g ->
        family.members
        |> List.map (fun xi -> rounded ?decimals (xi g))
        |> Sig_hash.of_string_list)
      graphs
  in
  Partition.group ~n:(Array.length graphs) (fun i -> signatures.(i))

(* Partition of all (graph, vertex) items (graph-major order). *)
let vertex_partition ?decimals family corpus =
  let graphs = Array.of_list corpus in
  let per_graph =
    Array.map
      (fun g ->
        let member_values = List.map (fun xi -> xi g) family.vmembers in
        Array.init (Graph.n_vertices g) (fun v ->
            member_values
            |> List.map (fun values -> rounded ?decimals values.(v))
            |> Sig_hash.of_string_list))
      graphs
  in
  let all = Array.concat (Array.to_list per_graph) in
  Partition.group ~n:(Array.length all) (fun i -> all.(i))

(* Does the family separate the two graphs? *)
let separates_graphs ?decimals family g h =
  List.exists (fun xi -> rounded ?decimals (xi g) <> rounded ?decimals (xi h)) family.members

type verdict = { claim : string; holds : bool; detail : string }

(* Compare two corpus partitions for the rho-subset relations of
   slide 25: p separates at least q (rho(p) subset of rho(q)), etc. *)
let compare_partitions ~name_p ~name_q p q =
  let fmt b = if b then "yes" else "no" in
  [
    {
      claim = Printf.sprintf "rho(%s) = rho(%s)" name_p name_q;
      holds = Partition.equal p q;
      detail =
        Printf.sprintf "%d vs %d classes, p refines q: %s, q refines p: %s"
          (Partition.n_classes p) (Partition.n_classes q)
          (fmt (Partition.refines p q))
          (fmt (Partition.refines q p));
    };
  ]
