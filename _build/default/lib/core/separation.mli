(** Separation power rho(F) on finite corpora (slides 24-25): partitions
    induced by sampled embedding families, and the refinement comparisons
    that order embedding methods by expressive power. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Partition = Glql_wl.Partition

type graph_family = { gf_name : string; members : (Graph.t -> Vec.t) list }

type vertex_family = { vf_name : string; vmembers : (Graph.t -> Vec.t array) list }

(** Partition of a corpus by joint (rounded) values of all members. *)
val graph_partition : ?decimals:int -> graph_family -> Graph.t list -> Partition.t

(** Partition of all (graph, vertex) items, graph-major order. *)
val vertex_partition : ?decimals:int -> vertex_family -> Graph.t list -> Partition.t

(** Does some member tell the two graphs apart? *)
val separates_graphs : ?decimals:int -> graph_family -> Graph.t -> Graph.t -> bool

type verdict = { claim : string; holds : bool; detail : string }

(** Equality/refinement report between two partitions of one corpus. *)
val compare_partitions :
  name_p:string -> name_q:string -> Partition.t -> Partition.t -> verdict list
