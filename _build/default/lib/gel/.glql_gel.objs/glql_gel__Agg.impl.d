lib/gel/agg.ml: Float Glql_tensor List Printf
