lib/gel/agg.mli: Glql_tensor
