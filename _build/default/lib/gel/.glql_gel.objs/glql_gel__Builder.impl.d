lib/gel/builder.ml: Agg Expr Func Glql_nn Glql_tensor List
