lib/gel/builder.mli: Agg Expr Func Glql_tensor
