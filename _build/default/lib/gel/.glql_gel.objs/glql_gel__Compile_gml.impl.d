lib/gel/compile_gml.ml: Array Builder Expr Func Glql_graph Glql_logic Glql_tensor List
