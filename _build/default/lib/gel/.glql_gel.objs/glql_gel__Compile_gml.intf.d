lib/gel/compile_gml.mli: Expr Glql_graph Glql_logic
