lib/gel/compile_gnn.ml: Agg Array Builder Expr Func Glql_gnn Glql_graph Glql_nn Glql_tensor List
