lib/gel/compile_gnn.mli: Expr Glql_graph Glql_nn Glql_tensor Glql_util
