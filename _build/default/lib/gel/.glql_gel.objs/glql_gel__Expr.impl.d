lib/gel/expr.ml: Agg Array Func Glql_graph Glql_tensor Hashtbl List Printf String
