lib/gel/expr.mli: Agg Func Glql_graph Glql_tensor
