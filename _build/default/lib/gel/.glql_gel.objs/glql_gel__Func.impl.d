lib/gel/func.ml: Array Glql_nn Glql_tensor List Option Printf String
