lib/gel/func.mli: Glql_nn Glql_tensor
