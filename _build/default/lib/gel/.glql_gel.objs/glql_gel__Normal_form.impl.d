lib/gel/normal_form.ml: Agg Array Builder Expr Float Func Glql_graph Glql_tensor Hashtbl List Mat Printf
