lib/gel/normal_form.mli: Expr Glql_graph Glql_tensor
