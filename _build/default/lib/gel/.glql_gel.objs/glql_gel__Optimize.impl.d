lib/gel/optimize.ml: Agg Expr Func Glql_util Hashtbl List Printf String
