lib/gel/optimize.mli: Expr
