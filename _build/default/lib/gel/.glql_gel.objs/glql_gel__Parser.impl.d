lib/gel/parser.ml: Agg Array Expr Func Glql_nn List Printf String
