lib/gel/parser.mli: Expr
