lib/gel/views.ml: Array Glql_graph Glql_hom Glql_tensor Glql_wl List Printf
