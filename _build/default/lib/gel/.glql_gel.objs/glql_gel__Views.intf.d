lib/gel/views.mli: Glql_graph
