lib/gel/wl_sim.ml: Agg Array Builder Expr Func Glql_nn Glql_tensor Hashtbl
