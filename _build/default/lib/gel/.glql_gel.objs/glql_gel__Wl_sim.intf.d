lib/gel/wl_sim.mli: Expr Func Glql_util
