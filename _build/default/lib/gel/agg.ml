(* The aggregation collection Theta (slides 45-46, 61): functions from
   bags of vectors in R^d to R^{d'}.  The bag is passed as a list; the
   empty bag must be meaningful (mean/max return the zero vector, the
   convention also used by the tensor-level GNNs). *)

module Vec = Glql_tensor.Vec

type t = {
  name : string;
  in_dim : int;
  out_dim : int;
  apply : Vec.t list -> Vec.t;
}

let apply t bag =
  List.iter
    (fun v ->
      if Vec.dim v <> t.in_dim then
        invalid_arg (Printf.sprintf "Agg.%s: element dim %d, expected %d" t.name (Vec.dim v) t.in_dim))
    bag;
  let out = t.apply bag in
  if Vec.dim out <> t.out_dim then
    failwith (Printf.sprintf "Agg.%s: produced dim %d, declared %d" t.name (Vec.dim out) t.out_dim);
  out

let sum d =
  {
    name = "sum";
    in_dim = d;
    out_dim = d;
    apply =
      (fun bag ->
        let out = Vec.zeros d in
        List.iter (fun v -> Vec.add_inplace ~into:out v) bag;
        out);
  }

let mean d =
  {
    name = "mean";
    in_dim = d;
    out_dim = d;
    apply =
      (fun bag ->
        match bag with
        | [] -> Vec.zeros d
        | _ ->
            let out = Vec.zeros d in
            List.iter (fun v -> Vec.add_inplace ~into:out v) bag;
            Vec.scale (1.0 /. float_of_int (List.length bag)) out);
  }

let max d =
  {
    name = "max";
    in_dim = d;
    out_dim = d;
    apply =
      (fun bag ->
        match bag with
        | [] -> Vec.zeros d
        | first :: rest -> List.fold_left (Vec.map2 Float.max) (Vec.copy first) rest);
  }

let min d =
  {
    name = "min";
    in_dim = d;
    out_dim = d;
    apply =
      (fun bag ->
        match bag with
        | [] -> Vec.zeros d
        | first :: rest -> List.fold_left (Vec.map2 Float.min) (Vec.copy first) rest);
  }

(* Cardinality of the bag, ignoring the values. *)
let count d =
  {
    name = "count";
    in_dim = d;
    out_dim = 1;
    apply = (fun bag -> [| float_of_int (List.length bag) |]);
  }

let custom ~name ~in_dim ~out_dim f = { name; in_dim; out_dim; apply = f }
