(** The aggregation collection Theta (slides 45-46, 61): functions from
    bags of vectors to vectors. Empty bags yield the zero vector (or 0 for
    [count]). *)

module Vec = Glql_tensor.Vec

type t = {
  name : string;
  in_dim : int;
  out_dim : int;
  apply : Vec.t list -> Vec.t;
}

(** Apply with dimension checks. *)
val apply : t -> Vec.t list -> Vec.t

val sum : int -> t
val mean : int -> t
val max : int -> t
val min : int -> t

(** Bag cardinality (output dim 1). *)
val count : int -> t

val custom : name:string -> in_dim:int -> out_dim:int -> (Vec.t list -> Vec.t) -> t
