(* Convenience combinators for writing GEL(Omega, Theta) expressions, plus
   the standard example expressions of the tutorial (degree, triangle
   counting in GEL^3, walk counts...). *)

module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Activation = Glql_nn.Activation

let x1 = 1
let x2 = 2
let x3 = 3

let lab j x = Expr.Lab (j, x)

(* All label components of a vertex as one vector (the usual nu_G(v)). *)
let labels ~dim x =
  Expr.Apply (Func.concat (List.init dim (fun _ -> 1)), List.init dim (fun j -> lab j x))

let edge x y = Expr.Edge (x, y)

let eq x y = Expr.Cmp (Expr.Ceq, x, y)

let neq x y = Expr.Cmp (Expr.Cneq, x, y)

let const v = Expr.Const v

let const1 c = Expr.Const [| c |]

let apply f args = Expr.Apply (f, args)

let concat exprs = Expr.Apply (Func.concat (List.map Expr.dim exprs), exprs)

let relu e = Expr.Apply (Func.activation Activation.Relu (Expr.dim e), [ e ])

let sigmoid e = Expr.Apply (Func.activation Activation.Sigmoid (Expr.dim e), [ e ])

let trunc_relu e = Expr.Apply (Func.activation Activation.Trunc_relu (Expr.dim e), [ e ])

let linear w b e = Expr.Apply (Func.linear w b, [ e ])

let mul a b =
  let d = Expr.dim a in
  if Expr.dim b <> d then invalid_arg "Builder.mul: dim mismatch";
  Expr.Apply (Func.product d, [ a; b ])

let add a b =
  let d = Expr.dim a in
  if Expr.dim b <> d then invalid_arg "Builder.add: dim mismatch";
  Expr.Apply (Func.add d, [ a; b ])

let scale c e = Expr.Apply (Func.scale c (Expr.dim e), [ e ])

(* Neighbourhood aggregation guarded by the edge relation (slide 45):
   aggregate [value] over [y] ranging over the neighbours of [x]. *)
let agg_neighbors th ~x ~y value = Expr.Agg (th, [ y ], value, edge x y)

(* Global aggregation over all vertices (slide 46). *)
let agg_global th ~x value = Expr.Agg (th, [ x ], value, const1 1.0)

(* Unguarded aggregation over several variables (full GEL, slide 61). *)
let agg_all th ~ys value = Expr.Agg (th, ys, value, const1 1.0)

let sum_neighbors ~x ~y value = agg_neighbors (Agg.sum (Expr.dim value)) ~x ~y value

let mean_neighbors ~x ~y value = agg_neighbors (Agg.mean (Expr.dim value)) ~x ~y value

let max_neighbors ~x ~y value = agg_neighbors (Agg.max (Expr.dim value)) ~x ~y value

let readout_sum ~x value = agg_global (Agg.sum (Expr.dim value)) ~x value

(* --- standard expressions ---------------------------------------------- *)

(* deg(x) = agg_sum_y(1 | E(x, y)). *)
let degree ~x ~y = sum_neighbors ~x ~y (const1 1.0)

(* Number of walks of length 2 leaving x. *)
let two_walks ~x ~y = sum_neighbors ~x ~y (degree ~x:y ~y:x)

(* Triangles through x1 — needs three variables, slide 60's example:
   sum over x2, x3 of E(x1,x2) * E(x2,x3) * E(x3,x1). Each vertex pair of
   a triangle at x1 is counted once per orientation, so divide by 2. *)
let triangles_at_x1 () =
  let product3 =
    mul (edge x1 x2) (mul (edge x2 x3) (edge x3 x1))
  in
  scale 0.5 (agg_all (Agg.sum 1) ~ys:[ x2; x3 ] product3)

(* Total triangle count of the graph, a closed GEL^3 expression. Every
   triangle is counted once per ordered vertex triple (6 ways). *)
let triangle_count () =
  let product3 = mul (edge x1 x2) (mul (edge x2 x3) (edge x3 x1)) in
  scale (1.0 /. 6.0) (agg_all (Agg.sum 1) ~ys:[ x1; x2; x3 ] product3)

(* Number of common neighbours of x1 and x2 (a 2-vertex embedding used by
   link prediction). *)
let common_neighbors () =
  agg_all (Agg.sum 1) ~ys:[ x3 ] (mul (edge x1 x3) (edge x2 x3))
