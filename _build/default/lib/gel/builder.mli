(** Combinators for writing GEL(Omega, Theta) expressions, plus the
    tutorial's standard examples (degree, triangle counting in GEL^3,
    common neighbours). *)

module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat

(** The paper's variable names. *)
val x1 : Expr.var

val x2 : Expr.var
val x3 : Expr.var

val lab : int -> Expr.var -> Expr.t

(** All [dim] label components concatenated — nu_G(x). *)
val labels : dim:int -> Expr.var -> Expr.t

val edge : Expr.var -> Expr.var -> Expr.t
val eq : Expr.var -> Expr.var -> Expr.t
val neq : Expr.var -> Expr.var -> Expr.t
val const : Vec.t -> Expr.t
val const1 : float -> Expr.t
val apply : Func.t -> Expr.t list -> Expr.t

(** Concatenate expressions (dims inferred). *)
val concat : Expr.t list -> Expr.t

val relu : Expr.t -> Expr.t
val sigmoid : Expr.t -> Expr.t
val trunc_relu : Expr.t -> Expr.t
val linear : Mat.t -> Vec.t -> Expr.t -> Expr.t

(** Pointwise product / sum / scaling. *)
val mul : Expr.t -> Expr.t -> Expr.t

val add : Expr.t -> Expr.t -> Expr.t
val scale : float -> Expr.t -> Expr.t

(** Aggregate [value] over [y] in the neighbourhood of [x] (slide 45). *)
val agg_neighbors : Agg.t -> x:Expr.var -> y:Expr.var -> Expr.t -> Expr.t

(** Global aggregation over all vertices (slide 46). *)
val agg_global : Agg.t -> x:Expr.var -> Expr.t -> Expr.t

(** Unguarded aggregation over several variables (slide 61). *)
val agg_all : Agg.t -> ys:Expr.var list -> Expr.t -> Expr.t

val sum_neighbors : x:Expr.var -> y:Expr.var -> Expr.t -> Expr.t
val mean_neighbors : x:Expr.var -> y:Expr.var -> Expr.t -> Expr.t
val max_neighbors : x:Expr.var -> y:Expr.var -> Expr.t -> Expr.t
val readout_sum : x:Expr.var -> Expr.t -> Expr.t

(** [deg(x)]. *)
val degree : x:Expr.var -> y:Expr.var -> Expr.t

(** Walks of length 2 from [x]. *)
val two_walks : x:Expr.var -> y:Expr.var -> Expr.t

(** Triangles through [x1]: slide 60's three-variable example. *)
val triangles_at_x1 : unit -> Expr.t

(** Closed GEL^3 expression computing the graph's triangle count. *)
val triangle_count : unit -> Expr.t

(** Common-neighbour count of [x1] and [x2] (2-vertex embedding). *)
val common_neighbors : unit -> Expr.t
