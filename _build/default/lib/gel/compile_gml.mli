(** Graded modal logic to MPNN(Omega, Theta) compiler (slide 54, after
    Barcelo et al.): linear combinations + sum aggregation + truncated
    ReLU compute GML exactly on Boolean labels. *)

module Gml = Glql_logic.Gml
module Graph = Glql_graph.Graph

(** The compiled dimension-1 MPNN expression with free variable x1. *)
val compile : Gml.t -> Expr.t

(** Per-vertex truth table of the compiled expression ([>= 0.5] = true). *)
val eval_compiled : Gml.t -> Graph.t -> bool array

(** Exact agreement of compiler and logic evaluator on a graph. *)
val agrees : Gml.t -> Graph.t -> bool
