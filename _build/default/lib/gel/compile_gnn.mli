(** Casting GNN architectures as MPNN(Omega, Theta) expressions
    (slides 40, 48, 63). Each architecture has an explicit weight spec,
    a compiled expression, and a tensor-level reference forward; the two
    agree numerically, which is what "architecture X is an MPNN" means. *)

module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Graph = Glql_graph.Graph
module Activation = Glql_nn.Activation
module Mlp = Glql_nn.Mlp

(** {1 GNN 101 (slide 13)} *)

type gnn101_layer = { w1 : Mat.t; w2 : Mat.t; b : Vec.t; act : Activation.t }

type gnn101 = {
  in_dim : int;
  layers : gnn101_layer list;
  readout_w : Mat.t;
  readout_b : Vec.t;
  readout_act : Activation.t;
}

val random_gnn101 :
  Glql_util.Rng.t -> in_dim:int -> width:int -> depth:int -> out_dim:int -> gnn101

(** Vertex embedding expression with free variable x1. *)
val gnn101_vertex_expr : gnn101 -> Expr.t

(** Closed graph-embedding expression with the slide-14 readout. *)
val gnn101_graph_expr : gnn101 -> Expr.t

(** Tensor reference forward (one row per vertex). *)
val gnn101_vertex_forward : gnn101 -> Graph.t -> Mat.t

val gnn101_graph_forward : gnn101 -> Graph.t -> Vec.t

(** {1 GIN} *)

type gin_layer = { eps : float; mlp : Mlp.t }

type gin = { gin_in_dim : int; gin_layers : gin_layer list }

val random_gin : Glql_util.Rng.t -> in_dim:int -> width:int -> depth:int -> gin
val gin_vertex_expr : gin -> Expr.t
val gin_vertex_forward : gin -> Graph.t -> Mat.t

(** {1 GCN (Kipf-Welling normalisation, slide 38)} *)

type gcn_layer = { gw : Mat.t; gact : Activation.t }

type gcn = { gcn_in_dim : int; gcn_layers : gcn_layer list }

val random_gcn : Glql_util.Rng.t -> in_dim:int -> width:int -> depth:int -> gcn
val gcn_vertex_expr : gcn -> Expr.t
val gcn_vertex_forward : gcn -> Graph.t -> Mat.t

(** {1 GraphSAGE} *)

type sage_layer = { wself : Mat.t; wnb : Mat.t; sb : Vec.t; sact : Activation.t }

type sage_agg = Sage_sum | Sage_mean | Sage_max

type sage = { sage_in_dim : int; sage_agg : sage_agg; sage_layers : sage_layer list }

val random_sage :
  Glql_util.Rng.t -> in_dim:int -> width:int -> depth:int -> agg:sage_agg -> sage

val sage_vertex_expr : sage -> Expr.t
val sage_vertex_forward : sage -> Graph.t -> Mat.t

(** {1 GAT: softmax attention as a quotient of two aggregations} *)

type gat_layer = { gat_w : Mat.t; a_src : Vec.t; a_dst : Vec.t }

type gat = { gat_in_dim : int; gat_layers : gat_layer list }

val random_gat : Glql_util.Rng.t -> in_dim:int -> width:int -> depth:int -> gat
val gat_vertex_expr : gat -> Expr.t
val gat_vertex_forward : gat -> Graph.t -> Mat.t
