(* The graph embedding language GEL(Omega, Theta) (slides 57-62) and its
   guarded two-variable fragment MPNN(Omega, Theta) (slides 42-47).

   Expressions denote p-vertex embeddings xi_phi : G -> (V^p -> R^d) where
   p is the number of free variables and d the expression's dimension.
   Evaluation is database-style: every subexpression is materialised
   bottom-up as a table V^p -> R^d (the "calculus with aggregates" reading
   of slide 47), with a fast path for edge-guarded aggregation that walks
   adjacency lists only.

   Expressions produced by the compilers are DAGs (layers share their
   predecessor), so every analysis and the evaluator memoise on physical
   identity. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph

type var = int

type cmp = Ceq | Cneq

type t =
  | Lab of int * var            (* lab_j(x_i), dimension 1 (slide 43) *)
  | Edge of var * var           (* E(x_i, x_j) as a 0/1 value (slide 59) *)
  | Cmp of cmp * var * var      (* 1[x_i op x_j] (slide 59) *)
  | Const of Vec.t              (* constant vector, no free variables *)
  | Apply of Func.t * t list    (* F(phi_1, ..., phi_l) (slides 44, 60) *)
  | Agg of Agg.t * var list * t * t
      (* Agg (theta, ys, value, guard) = agg_theta_ys(value | guard):
         aggregate the value over assignments of ys where the guard is
         nonzero (slides 45-46, 61). *)

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(* Physical-identity memo tables: expressions are DAGs and [Hashtbl.hash]
   is depth-bounded, so this is O(1) per node and sound for (==). *)
module Memo = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let check_var x = if x < 1 then type_error "variable x%d: variables are numbered from 1" x

let sorted_union a b = List.sort_uniq compare (a @ b)

(* --- static analysis --------------------------------------------------- *)

let free_vars_memoized () =
  let memo = Memo.create 64 in
  let rec go e =
    match Memo.find_opt memo e with
    | Some fv -> fv
    | None ->
        let fv =
          match e with
          | Lab (_, x) ->
              check_var x;
              [ x ]
          | Edge (x, y) | Cmp (_, x, y) ->
              check_var x;
              check_var y;
              List.sort_uniq compare [ x; y ]
          | Const _ -> []
          | Apply (_, args) -> List.fold_left (fun acc a -> sorted_union acc (go a)) [] args
          | Agg (_, ys, value, guard) ->
              List.iter check_var ys;
              if List.length (List.sort_uniq compare ys) <> List.length ys then
                type_error "aggregation binds a variable twice";
              if ys = [] then type_error "aggregation must bind at least one variable";
              let inner = sorted_union (go value) (go guard) in
              List.filter (fun v -> not (List.mem v ys)) inner
        in
        Memo.add memo e fv;
        fv
  in
  go

let free_vars = free_vars_memoized ()

let all_vars e =
  let memo = Memo.create 64 in
  let rec go e =
    match Memo.find_opt memo e with
    | Some vs -> vs
    | None ->
        let vs =
          match e with
          | Lab (_, x) -> [ x ]
          | Edge (x, y) | Cmp (_, x, y) -> List.sort_uniq compare [ x; y ]
          | Const _ -> []
          | Apply (_, args) -> List.fold_left (fun acc a -> sorted_union acc (go a)) [] args
          | Agg (_, ys, value, guard) ->
              sorted_union (List.sort_uniq compare ys) (sorted_union (go value) (go guard))
        in
        Memo.add memo e vs;
        vs
  in
  go e

(* Number of distinct variables: the k of GEL^k (slide 62). *)
let width e = List.length (all_vars e)

let dim_memoized () =
  let memo = Memo.create 64 in
  let rec go e =
    match Memo.find_opt memo e with
    | Some d -> d
    | None ->
        let d =
          match e with
          | Lab _ | Edge _ | Cmp _ -> 1
          | Const v -> Vec.dim v
          | Apply (f, args) ->
              let got = List.map go args in
              if got <> f.Func.in_dims then
                type_error "Apply %s: argument dims [%s] do not match signature [%s]"
                  f.Func.name
                  (String.concat ";" (List.map string_of_int got))
                  (String.concat ";" (List.map string_of_int f.Func.in_dims));
              f.Func.out_dim
          | Agg (th, _, value, guard) ->
              let dv = go value in
              let _dg = go guard in
              if dv <> th.Agg.in_dim then
                type_error "Agg %s: value dim %d does not match aggregator dim %d" th.Agg.name dv
                  th.Agg.in_dim;
              th.Agg.out_dim
        in
        Memo.add memo e d;
        d
  in
  go

(* Dimension of an expression (slide 42); raises [Type_error] if the
   expression is ill-formed. Globally memoized (physical identity). *)
let dim = dim_memoized ()

(* Maximum nesting depth of aggregations — the number of message-passing
   rounds an MPNN expression performs. *)
let agg_depth e =
  let memo = Memo.create 64 in
  let rec go e =
    match Memo.find_opt memo e with
    | Some d -> d
    | None ->
        let d =
          match e with
          | Lab _ | Edge _ | Cmp _ | Const _ -> 0
          | Apply (_, args) -> List.fold_left (fun acc a -> max acc (go a)) 0 args
          | Agg (_, _, value, guard) -> 1 + max (go value) (go guard)
        in
        Memo.add memo e d;
        d
  in
  go e

(* Count of expression DAG nodes (shared nodes counted once). *)
let n_nodes e =
  let memo = Memo.create 64 in
  let count = ref 0 in
  let rec go e =
    if not (Memo.mem memo e) then begin
      Memo.add memo e ();
      incr count;
      match e with
      | Lab _ | Edge _ | Cmp _ | Const _ -> ()
      | Apply (_, args) -> List.iter go args
      | Agg (_, _, value, guard) ->
          go value;
          go guard
    end
  in
  go e;
  !count

(* Is the expression in the guarded MPNN fragment (slides 42-47, 62)?
   Width at most 2; [Edge]/[Cmp] atoms appear only as aggregation guards;
   every aggregation either binds one variable guarded by an edge atom
   between the bound and the free variable (neighbourhood aggregation) or
   is a global readout over a closed guard. *)
let is_mpnn e =
  let memo = Memo.create 64 in
  let rec check e =
    match Memo.find_opt memo e with
    | Some b -> b
    | None ->
        let b =
          match e with
          | Lab _ | Const _ -> true
          | Edge _ | Cmp _ -> false
          | Apply (_, args) -> List.for_all check args
          | Agg (_, [ y ], value, Edge (a, b)) ->
              a <> b
              && (a = y || b = y)
              && check value
              && List.for_all (fun v -> v = a || v = b) (free_vars value)
          | Agg (_, [ y ], value, guard) ->
              (* Global readout: closed guard (e.g. a nonzero constant). *)
              free_vars guard = [] && check guard && check value
              && List.for_all (fun v -> v = y) (free_vars value)
          | Agg _ -> false
        in
        Memo.add memo e b;
        b
  in
  width e <= 2 && check e

type fragment = Frag_mpnn | Frag_gel of int

let fragment e = if is_mpnn e then Frag_mpnn else Frag_gel (width e)

let fragment_name = function
  | Frag_mpnn -> "MPNN"
  | Frag_gel k -> Printf.sprintf "GEL%d" k

(* --- pretty printing ---------------------------------------------------- *)

let rec to_string e =
  match e with
  | Lab (j, x) -> Printf.sprintf "lab%d(x%d)" j x
  | Edge (x, y) -> Printf.sprintf "E(x%d,x%d)" x y
  | Cmp (Ceq, x, y) -> Printf.sprintf "1[x%d=x%d]" x y
  | Cmp (Cneq, x, y) -> Printf.sprintf "1[x%d!=x%d]" x y
  | Const v -> Vec.to_string v
  | Apply (f, args) ->
      Printf.sprintf "%s(%s)" f.Func.name (String.concat ", " (List.map to_string args))
  | Agg (th, ys, value, guard) ->
      Printf.sprintf "agg_%s{%s}(%s | %s)" th.Agg.name
        (String.concat "," (List.map (Printf.sprintf "x%d") ys))
        (to_string value) (to_string guard)

(* --- evaluation --------------------------------------------------------- *)

type table = {
  tvars : var list;  (* sorted ascending *)
  tn : int;          (* number of graph vertices *)
  tdim : int;
  tdata : Vec.t array;  (* length tn^|tvars|, row-major in tvars order *)
}

let table_size n vars =
  List.fold_left (fun acc _ -> acc * n) 1 vars

let table_index t (env : int array) =
  List.fold_left (fun acc v -> (acc * t.tn) + env.(v)) 0 t.tvars

let table_get t env = t.tdata.(table_index t env)

let nonzero v = Array.exists (fun x -> x <> 0.0) v

(* Enumerate assignments of [vars] into [env], calling [k] on each. *)
let rec enumerate n vars env k =
  match vars with
  | [] -> k ()
  | v :: rest ->
      for w = 0 to n - 1 do
        env.(v) <- w;
        enumerate n rest env k
      done

let eval g e =
  let n = Graph.n_vertices g in
  let memo = Memo.create 64 in
  let max_var = List.fold_left max 0 (all_vars e) in
  let env = Array.make (max_var + 2) 0 in
  let rec go e =
    match Memo.find_opt memo e with
    | Some t -> t
    | None ->
        let t = compute e in
        Memo.add memo e t;
        t
  and compute e =
    let d = dim e in
    let fv = free_vars e in
    match e with
    | Const v -> { tvars = []; tn = n; tdim = d; tdata = [| v |] }
    | Lab (j, x) ->
        let data =
          Array.init n (fun v ->
              let l = Graph.label g v in
              if j < 0 || j >= Vec.dim l then
                type_error "lab%d: graph has label dimension %d" j (Vec.dim l);
              [| l.(j) |])
        in
        { tvars = [ x ]; tn = n; tdim = 1; tdata = data }
    | Edge (x, y) ->
        if x = y then
          (* E(x, x) is false on simple graphs. *)
          { tvars = [ x ]; tn = n; tdim = 1; tdata = Array.init n (fun _ -> [| 0.0 |]) }
        else begin
          let t = { tvars = fv; tn = n; tdim = 1; tdata = Array.make (table_size n fv) [||] } in
          enumerate n fv env (fun () ->
              t.tdata.(table_index t env) <-
                [| (if Graph.has_edge g env.(x) env.(y) then 1.0 else 0.0) |]);
          t
        end
    | Cmp (op, x, y) ->
        if x = y then begin
          let v = match op with Ceq -> 1.0 | Cneq -> 0.0 in
          { tvars = [ x ]; tn = n; tdim = 1; tdata = Array.init n (fun _ -> [| v |]) }
        end
        else begin
          let t = { tvars = fv; tn = n; tdim = 1; tdata = Array.make (table_size n fv) [||] } in
          enumerate n fv env (fun () ->
              let same = env.(x) = env.(y) in
              let b = match op with Ceq -> same | Cneq -> not same in
              t.tdata.(table_index t env) <- [| (if b then 1.0 else 0.0) |]);
          t
        end
    | Apply (f, args) ->
        let arg_tables = List.map go args in
        let t = { tvars = fv; tn = n; tdim = d; tdata = Array.make (table_size n fv) [||] } in
        enumerate n fv env (fun () ->
            let inputs = List.map (fun at -> table_get at env) arg_tables in
            t.tdata.(table_index t env) <- f.Func.apply inputs);
        t
    | Agg (th, ys, value, guard) ->
        let vt = go value and gt = go guard in
        let t = { tvars = fv; tn = n; tdim = d; tdata = Array.make (table_size n fv) [||] } in
        (* Fast path: single bound variable guarded by an adjacency atom
           with a free other endpoint — iterate neighbours only. *)
        let fast =
          match (ys, guard) with
          | [ y ], Edge (a, b) when a <> b && (a = y || b = y) ->
              let other = if a = y then b else a in
              if List.mem other fv then Some (y, other) else None
          | _ -> None
        in
        (match fast with
        | Some (y, other) ->
            enumerate n fv env (fun () ->
                let bag = ref [] in
                Array.iter
                  (fun w ->
                    env.(y) <- w;
                    bag := table_get vt env :: !bag)
                  (Graph.neighbors g env.(other));
                t.tdata.(table_index t env) <- th.Agg.apply (List.rev !bag));
            t
        | None ->
            enumerate n fv env (fun () ->
                let bag = ref [] in
                enumerate n ys env (fun () ->
                    if nonzero (table_get gt env) then bag := table_get vt env :: !bag);
                t.tdata.(table_index t env) <- th.Agg.apply (List.rev !bag));
            t)
  in
  go e

(* Value on a p-tuple of vertices, components in sorted free-variable
   order. *)
let eval_tuple g e tuple =
  let t = eval g e in
  if Array.length tuple <> List.length t.tvars then
    invalid_arg "Expr.eval_tuple: tuple length does not match free variables";
  let max_var = List.fold_left max 0 (1 :: t.tvars) in
  let env = Array.make (max_var + 1) 0 in
  List.iteri (fun i v -> env.(v) <- tuple.(i)) t.tvars;
  table_get t env

(* Value of a closed expression (graph embedding, slide 46). *)
let eval_closed g e =
  match free_vars e with
  | [] -> (eval g e).tdata.(0)
  | fv ->
      invalid_arg
        (Printf.sprintf "Expr.eval_closed: expression has free variables [%s]"
           (String.concat ";" (List.map string_of_int fv)))

(* Per-vertex values of a 1-free-variable expression. *)
let eval_vertexwise g e =
  match free_vars e with
  | [ _ ] -> Array.map Vec.copy (eval g e).tdata
  | _ -> invalid_arg "Expr.eval_vertexwise: expression must have exactly one free variable"
