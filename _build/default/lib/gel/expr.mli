(** The graph embedding language GEL(Omega, Theta) (slides 57-62) and its
    guarded fragment MPNN(Omega, Theta) (slides 42-47).

    An expression with [p] free variables and dimension [d] denotes an
    invariant p-vertex embedding [xi : G -> (V^p -> R^d)]. Evaluation is
    database-style bottom-up materialisation of one table per
    subexpression. Expressions may share subterms (DAGs); all analyses and
    the evaluator memoise on physical identity, so build shared structure
    with [let] bindings for efficiency. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph

type var = int

type cmp = Ceq | Cneq

type t =
  | Lab of int * var        (** [lab_j(x_i)], dimension 1 (slide 43). *)
  | Edge of var * var       (** [E(x_i, x_j)] as a 0/1 value (slide 59). *)
  | Cmp of cmp * var * var  (** [1\[x_i op x_j\]] (slide 59). *)
  | Const of Vec.t          (** Constant vector, no free variables. *)
  | Apply of Func.t * t list  (** [F(phi_1, ..., phi_l)] (slides 44, 60). *)
  | Agg of Agg.t * var list * t * t
      (** [Agg (theta, ys, value, guard)]: aggregate [value] over
          assignments of [ys] where [guard] is nonzero (slides 45-46, 61). *)

exception Type_error of string

(** Sorted free variables; [p = length (free_vars e)]. *)
val free_vars : t -> var list

(** All variables, free and bound. *)
val all_vars : t -> var list

(** Number of distinct variables — the k of GEL^k (slide 62). *)
val width : t -> int

(** Output dimension; raises {!Type_error} on ill-formed expressions. *)
val dim : t -> int

(** Maximum aggregation nesting depth (message-passing rounds). *)
val agg_depth : t -> int

(** Number of distinct DAG nodes. *)
val n_nodes : t -> int

(** Membership in the guarded MPNN fragment (slide 62: GGEL2 = MPNN). *)
val is_mpnn : t -> bool

type fragment = Frag_mpnn | Frag_gel of int

(** Smallest fragment of this implementation containing the expression. *)
val fragment : t -> fragment

val fragment_name : fragment -> string

val to_string : t -> string

(** Materialised table of a (sub)expression: values over V^p. *)
type table = {
  tvars : var list;
  tn : int;
  tdim : int;
  tdata : Vec.t array;
}

(** Row-major index of an assignment (array indexed by variable). *)
val table_index : table -> int array -> int

val table_get : table -> int array -> Vec.t

(** Evaluate on a graph, materialising the table over its free variables. *)
val eval : Graph.t -> t -> table

(** Value on a p-tuple (components in sorted free-variable order). *)
val eval_tuple : Graph.t -> t -> int array -> Vec.t

(** Value of a closed expression — a graph embedding (slide 46). *)
val eval_closed : Graph.t -> t -> Vec.t

(** Per-vertex values of a single-free-variable expression. *)
val eval_vertexwise : Graph.t -> t -> Vec.t array
