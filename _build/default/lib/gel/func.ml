(* The function collection Omega of the embedding languages MPNN(Omega,
   Theta) and GEL(Omega, Theta) (slides 44 and 60).

   A function object carries its arity/dimension signature so expressions
   can be dimension-checked statically, plus the float implementation used
   by the evaluator.  The constructors below cover everything the paper
   needs: concatenation, linear combinations, non-linear activations,
   pointwise products (slide 60's f_x), MLPs (slide 53's "mlp-closed"
   richness condition) and a few scalar utilities. *)

module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Mlp = Glql_nn.Mlp
module Activation = Glql_nn.Activation

(* Symbolic tag used by the normal-form rewriter (slide 55): aggregation
   can be pushed through these combinators symbolically. [K_opaque]
   functions evaluate fine but block the rewriter. *)
type kind =
  | K_concat
  | K_linear of Mat.t * Vec.t
  | K_linear_multi of Mat.t list * Vec.t
  | K_activation of Activation.t
  | K_product
  | K_add
  | K_scale of float
  | K_scale_by          (* (vector, scalar) |-> scalar * vector *)
  | K_mlp of Mlp.t
  | K_proj of int
  | K_opaque

type t = {
  name : string;
  in_dims : int list;
  out_dim : int;
  kind : kind;
  apply : Vec.t list -> Vec.t;
}

let check_dims t args =
  let got = List.map Vec.dim args in
  if got <> t.in_dims then
    invalid_arg
      (Printf.sprintf "Func.%s: expected dims [%s], got [%s]" t.name
         (String.concat ";" (List.map string_of_int t.in_dims))
         (String.concat ";" (List.map string_of_int got)))

let apply t args =
  check_dims t args;
  let out = t.apply args in
  if Vec.dim out <> t.out_dim then
    failwith (Printf.sprintf "Func.%s: produced dim %d, declared %d" t.name (Vec.dim out) t.out_dim);
  out

(* Concatenation of any number of inputs. *)
let concat in_dims =
  {
    name = "concat";
    in_dims;
    kind = K_concat;
    out_dim = List.fold_left ( + ) 0 in_dims;
    apply = (fun args -> Vec.concat args);
  }

(* x |-> x W + b  (row-vector convention of slide 13). *)
let linear ?name w b =
  let din = Mat.rows w and dout = Mat.cols w in
  if Vec.dim b <> dout then invalid_arg "Func.linear: bias dim mismatch";
  {
    name = Option.value name ~default:"linear";
    in_dims = [ din ];
    kind = K_linear (w, b);
    out_dim = dout;
    apply =
      (function
      | [ x ] -> Vec.add (Mat.vec_mul x w) b
      | _ -> assert false);
  }

(* (x1, ..., xk) |-> x1 W1 + ... + xk Wk + b : the multi-input affine maps
   GNN layer updates are made of. *)
let linear_multi ?name ws b =
  let dout = Vec.dim b in
  List.iter (fun w -> if Mat.cols w <> dout then invalid_arg "Func.linear_multi: out dims differ") ws;
  {
    name = Option.value name ~default:"linear-multi";
    in_dims = List.map Mat.rows ws;
    kind = K_linear_multi (ws, b);
    out_dim = dout;
    apply =
      (fun args ->
        let out = Vec.copy b in
        List.iter2 (fun x w -> Vec.add_inplace ~into:out (Mat.vec_mul x w)) args ws;
        out);
  }

(* Pointwise activation of a d-dimensional input. *)
let activation act d =
  {
    name = Activation.name act;
    in_dims = [ d ];
    kind = K_activation act;
    out_dim = d;
    apply = (function [ x ] -> Activation.apply_vec act x | _ -> assert false);
  }

(* Pointwise (Hadamard) product of two d-dimensional inputs; for d = 1
   this is slide 60's multiplication f_x. *)
let product d =
  {
    name = "product";
    in_dims = [ d; d ];
    kind = K_product;
    out_dim = d;
    apply = (function [ a; b ] -> Vec.mul a b | _ -> assert false);
  }

(* Sum of two d-dimensional inputs. *)
let add d =
  {
    name = "add";
    in_dims = [ d; d ];
    kind = K_add;
    out_dim = d;
    apply = (function [ a; b ] -> Vec.add a b | _ -> assert false);
  }

(* Scale by a constant. *)
let scale c d =
  {
    name = Printf.sprintf "scale(%g)" c;
    in_dims = [ d ];
    kind = K_scale c;
    out_dim = d;
    apply = (function [ a ] -> Vec.scale c a | _ -> assert false);
  }

(* A fixed multilayer perceptron as an Omega member (slide 53). *)
let mlp ?name m =
  {
    name = Option.value name ~default:"mlp";
    in_dims = [ Mlp.in_dim m ];
    kind = K_mlp m;
    out_dim = Mlp.out_dim m;
    apply = (function [ x ] -> Mlp.apply_vec m x | _ -> assert false);
  }

(* Arbitrary scalar function lifted to Omega. *)
let scalar name f =
  {
    name;
    in_dims = [ 1 ];
    kind = K_opaque;
    out_dim = 1;
    apply = (function [ x ] -> [| f x.(0) |] | _ -> assert false);
  }

(* Arbitrary binary scalar function. *)
let scalar2 name f =
  {
    name;
    in_dims = [ 1; 1 ];
    kind = K_opaque;
    out_dim = 1;
    apply = (function [ a; b ] -> [| f a.(0) b.(0) |] | _ -> assert false);
  }

(* Custom function with explicit signature. *)
let custom ?(kind = K_opaque) ~name ~in_dims ~out_dim f =
  { name; in_dims; out_dim; kind; apply = f }

(* (vector, scalar) |-> scalar * vector; used when pushing a sum through a
   value that does not depend on the aggregated variable (slide 55). *)
let scale_by d =
  {
    name = "scale-by";
    in_dims = [ d; 1 ];
    kind = K_scale_by;
    out_dim = d;
    apply = (function [ v; s ] -> Vec.scale s.(0) v | _ -> assert false);
  }

(* (vector, scalar) |-> vector / scalar, with 0/0 = 0 (safe division used
   by mean-from-sum and attention normalisation). *)
let divide_by d =
  {
    name = "divide-by";
    in_dims = [ d; 1 ];
    kind = K_opaque;
    out_dim = d;
    apply =
      (function
      | [ v; s ] -> if s.(0) = 0.0 then Vec.zeros d else Vec.scale (1.0 /. s.(0)) v
      | _ -> assert false);
  }

(* Projection to one coordinate. *)
let proj d j =
  if j < 0 || j >= d then invalid_arg "Func.proj: index out of range";
  {
    name = Printf.sprintf "proj%d" j;
    in_dims = [ d ];
    kind = K_proj j;
    out_dim = 1;
    apply = (function [ x ] -> [| x.(j) |] | _ -> assert false);
  }
