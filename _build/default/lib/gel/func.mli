(** The function collection Omega of MPNN(Omega, Theta) and
    GEL(Omega, Theta) (slides 44, 60): dimension-signed float functions
    used in expression nodes [Apply (f, args)]. *)

module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Mlp = Glql_nn.Mlp
module Activation = Glql_nn.Activation

(** Symbolic tag of a function, letting the normal-form rewriter (slide 55)
    push sum-aggregation through combinators. [K_opaque] blocks it. *)
type kind =
  | K_concat
  | K_linear of Mat.t * Vec.t
  | K_linear_multi of Mat.t list * Vec.t
  | K_activation of Activation.t
  | K_product
  | K_add
  | K_scale of float
  | K_scale_by
  | K_mlp of Mlp.t
  | K_proj of int
  | K_opaque

type t = {
  name : string;
  in_dims : int list;
  out_dim : int;
  kind : kind;
  apply : Vec.t list -> Vec.t;
}

(** Apply with dimension checking on inputs and output. *)
val apply : t -> Vec.t list -> Vec.t

(** Concatenation of inputs with the given dimensions. *)
val concat : int list -> t

(** [x |-> x W + b] (row-vector convention). *)
val linear : ?name:string -> Mat.t -> Vec.t -> t

(** [(x1..xk) |-> x1 W1 + ... + xk Wk + b]. *)
val linear_multi : ?name:string -> Mat.t list -> Vec.t -> t

(** Pointwise activation on a d-dimensional input. *)
val activation : Activation.t -> int -> t

(** Pointwise product (slide 60's multiplication for d = 1). *)
val product : int -> t

val add : int -> t
val scale : float -> int -> t

(** A fixed MLP as an Omega member (slide 53's mlp-closure). *)
val mlp : ?name:string -> Mlp.t -> t

(** Lift a scalar function. *)
val scalar : string -> (float -> float) -> t

(** Lift a binary scalar function. *)
val scalar2 : string -> (float -> float -> float) -> t

val custom :
  ?kind:kind -> name:string -> in_dims:int list -> out_dim:int -> (Vec.t list -> Vec.t) -> t

(** [(v, s) |-> s * v] — scalar rescaling of a d-dimensional vector. *)
val scale_by : int -> t

(** [(v, s) |-> v / s] with [0/0 = 0]. *)
val divide_by : int -> t

(** Projection to coordinate [j] of a d-dimensional input. *)
val proj : int -> int -> t
