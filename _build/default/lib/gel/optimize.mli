(** A small query optimiser for GEL expressions: semantics-preserving
    constant folding and hash-consing (maximal structural sharing), so the
    memoising evaluator computes each distinct table once. *)

(** Fold graph-independent subexpressions and unit rewrites. *)
val constant_fold : Expr.t -> Expr.t

(** Collapse structurally equal subexpressions into shared nodes. Payload
    functions/aggregators are compared by physical identity. *)
val share : Expr.t -> Expr.t

(** [share] after [constant_fold]. *)
val optimize : Expr.t -> Expr.t
