(** Concrete surface syntax for GEL(Omega, Theta) expressions.

    The grammar covers the standard fragment — label/edge/indicator atoms,
    constant vectors, the named aggregators (sum/mean/max/min/count),
    concat/product/add/scale and the named activations — and round-trips
    with {!Expr.to_string} on that fragment. Weight-carrying functions
    (linear maps, MLPs) have no literal syntax and are not parseable. *)

exception Parse_error of string

(** Parse an expression; raises {!Parse_error} on syntax errors and
    {!Expr.Type_error} on dimension errors. *)
val parse : string -> Expr.t
