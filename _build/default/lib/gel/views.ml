(* Embedding methods as views (slide 72, after Barcelo et al.,
   "GNNs with Local Graph Parameters", NeurIPS 2021).

   An F-MPNN first embeds the graph with a *fixed* complex embedding — here
   rooted homomorphism counts of a pattern family — and then runs a simple
   learnable embedding (an ordinary MPNN) over the materialised view.  The
   view strictly increases separation power: e.g. triangle-count features
   separate pairs that colour refinement cannot. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Count = Glql_hom.Count

type pattern = { pname : string; pgraph : Graph.t; proot : int }

(* Standard pattern family: rooted triangles and rooted cycles. *)
let triangle_pattern () =
  { pname = "triangle"; pgraph = Glql_graph.Generators.complete 3; proot = 0 }

let cycle_pattern k =
  { pname = Printf.sprintf "C%d" k; pgraph = Glql_graph.Generators.cycle k; proot = 0 }

let path_pattern k =
  { pname = Printf.sprintf "P%d" k; pgraph = Glql_graph.Generators.path k; proot = 0 }

let clique_pattern k =
  { pname = Printf.sprintf "K%d" k; pgraph = Glql_graph.Generators.complete k; proot = 0 }

(* Materialise the view: append, per vertex, hom(P^r, G, root -> v) for
   each pattern to the vertex labels. *)
let augment patterns g =
  let n = Graph.n_vertices g in
  let columns =
    List.map (fun p -> Count.rooted_hom_vector_any p.pgraph ~root:p.proot g) patterns
  in
  let labels =
    Array.init n (fun v ->
        Vec.concat (Graph.label g v :: List.map (fun col -> [| col.(v) |]) columns))
  in
  Graph.with_labels g labels

(* Separation power of the view composed with colour refinement: CR on the
   augmented graph — the coarsest thing any F-MPNN distinguishes. *)
let cr_equivalent_with_view patterns g h =
  Glql_wl.Color_refinement.equivalent_graphs (augment patterns g) (augment patterns h)
