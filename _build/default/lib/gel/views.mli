(** Embedding methods as views (slide 72): augment vertex labels with
    rooted homomorphism counts of fixed patterns, then run ordinary MPNNs
    on the materialised view (F-MPNNs). *)

module Graph = Glql_graph.Graph

type pattern = { pname : string; pgraph : Graph.t; proot : int }

val triangle_pattern : unit -> pattern
val cycle_pattern : int -> pattern
val path_pattern : int -> pattern
val clique_pattern : int -> pattern

(** Append per-vertex rooted hom counts of each pattern to the labels. *)
val augment : pattern list -> Graph.t -> Graph.t

(** Colour-refinement equivalence after the view — the separation power
    ceiling of F-MPNNs over these patterns. *)
val cr_equivalent_with_view : pattern list -> Graph.t -> Graph.t -> bool
