(* Weisfeiler-Leman simulating expressions with random weights.

   The equality directions of the theorems on slides 52 and 66
   (rho(CR) = rho(MPNN), rho(k-WL) = rho(GEL^{k+1})) are witnessed by
   expressions that *simulate* the refinement: random continuous "hash"
   updates make colour collisions measure-zero, so the partition induced
   by the expression's values matches the algorithm's partition on any
   finite corpus (with probability 1 over the weights).

   - [cr_expr] iterates h(x) -> hash(h(x), sum_{y~x} psi(h(y))): the
     MPNN-language simulation of colour refinement (slide 52).
   - [fwl2_expr] iterates pair colours
     c(x1,x2) -> hash(c(x1,x2), sum_{x3} pair(c(x1,x3), c(x3,x2))):
     the GEL^3 simulation of folklore 2-WL (slide 66). It uses exactly
     three variables, reusing them across rounds. *)

module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Activation = Glql_nn.Activation
module B = Builder

(* A random "hash" in Omega: sigmoid of a random affine map. On any fixed
   finite input set it is injective with probability 1. *)
let hash_fn rng ~in_dim ~out_dim =
  (* tanh of a random affine map, scaled so the map is not contractive:
     a contractive hash shrinks colour differences geometrically with the
     number of rounds until they fall below rounding, losing separations
     the exact refinement makes (observed with small-scale sigmoids). *)
  let w = Mat.gaussian rng in_dim out_dim ~stddev:(3.0 /. sqrt (float_of_int in_dim)) in
  let b = Vec.gaussian rng out_dim ~stddev:0.5 in
  Func.custom ~name:"hash" ~in_dims:[ in_dim ] ~out_dim (fun args ->
      match args with
      | [ x ] -> Activation.apply_vec Activation.Tanh (Vec.add (Mat.vec_mul x w) b)
      | _ -> assert false)

(* Colour-refinement simulation in the MPNN fragment. *)
let cr_expr rng ~label_dim ~rounds ~dim =
  let x = B.x1 and y = B.x2 in
  let init_f = hash_fn rng ~in_dim:label_dim ~out_dim:dim in
  let init v = Expr.Apply (init_f, [ B.labels ~dim:label_dim v ]) in
  let rec go t (prev_x, prev_y) =
    if t = 0 then prev_x
    else begin
      let msg = hash_fn rng ~in_dim:dim ~out_dim:dim in
      let upd = hash_fn rng ~in_dim:(2 * dim) ~out_dim:dim in
      let step ~self ~other ~sv ~ov =
        let summed = B.sum_neighbors ~x:sv ~y:ov (Expr.Apply (msg, [ other ])) in
        Expr.Apply (upd, [ B.concat [ self; summed ] ])
      in
      go (t - 1)
        ( step ~self:prev_x ~other:prev_y ~sv:x ~ov:y,
          step ~self:prev_y ~other:prev_x ~sv:y ~ov:x )
    end
  in
  go rounds (init x, init y)

(* Graph-level version: sum-readout of a final hash. *)
let cr_graph_expr rng ~label_dim ~rounds ~dim =
  let v = cr_expr rng ~label_dim ~rounds ~dim in
  let final = hash_fn rng ~in_dim:dim ~out_dim:dim in
  B.readout_sum ~x:B.x1 (Expr.Apply (final, [ v ]))

(* Folklore 2-WL simulation in GEL^3: three variables x1, x2, x3 are
   reused across rounds; the pair colour c_t(a, b) is memoised per
   (round, variable pair) so the expression is a compact DAG, and each
   round's hash functions are shared across variable renamings. *)
let fwl2_expr rng ~label_dim ~rounds ~dim =
  let atom_f = hash_fn rng ~in_dim:((2 * label_dim) + 2) ~out_dim:dim in
  let round_fs =
    Array.init rounds (fun _ ->
        (hash_fn rng ~in_dim:(2 * dim) ~out_dim:dim, hash_fn rng ~in_dim:(2 * dim) ~out_dim:dim))
  in
  let memo = Hashtbl.create 64 in
  let other a b = B.x1 + B.x2 + B.x3 - a - b in
  let rec c t a b =
    match Hashtbl.find_opt memo (t, a, b) with
    | Some e -> e
    | None ->
        let e =
          if t = 0 then
            Expr.Apply
              ( atom_f,
                [
                  B.concat
                    [ B.labels ~dim:label_dim a; B.labels ~dim:label_dim b; B.edge a b; B.eq a b ];
                ] )
          else begin
            let pair_f, upd_f = round_fs.(t - 1) in
            let via = other a b in
            let mixed = Expr.Apply (pair_f, [ B.concat [ c (t - 1) a via; c (t - 1) via b ] ]) in
            let summed = B.agg_all (Agg.sum dim) ~ys:[ via ] mixed in
            Expr.Apply (upd_f, [ B.concat [ c (t - 1) a b; summed ] ])
          end
        in
        Hashtbl.add memo (t, a, b) e;
        e
  in
  c rounds B.x1 B.x2

(* Graph-level 2-FWL simulation: readout over both free variables. *)
let fwl2_graph_expr rng ~label_dim ~rounds ~dim =
  let c = fwl2_expr rng ~label_dim ~rounds ~dim in
  let final = hash_fn rng ~in_dim:dim ~out_dim:dim in
  B.agg_all (Agg.sum dim) ~ys:[ B.x1; B.x2 ] (Expr.Apply (final, [ c ]))
