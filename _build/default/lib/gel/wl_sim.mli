(** Random-weight expressions simulating Weisfeiler-Leman refinements:
    the constructive halves of rho(CR) = rho(MPNN) (slide 52) and
    rho(k-WL) = rho(GEL^{k+1}) (slide 66) for k = 1, 2. *)

(** Random injective-almost-surely "hash" (sigmoid of random affine). *)
val hash_fn : Glql_util.Rng.t -> in_dim:int -> out_dim:int -> Func.t

(** MPNN-fragment expression simulating [rounds] steps of colour
    refinement; free variable x1, output dimension [dim]. *)
val cr_expr : Glql_util.Rng.t -> label_dim:int -> rounds:int -> dim:int -> Expr.t

(** Closed graph-level colour-refinement simulation (sum readout). *)
val cr_graph_expr : Glql_util.Rng.t -> label_dim:int -> rounds:int -> dim:int -> Expr.t

(** GEL^3 expression simulating [rounds] steps of folklore 2-WL on the
    pair (x1, x2). *)
val fwl2_expr : Glql_util.Rng.t -> label_dim:int -> rounds:int -> dim:int -> Expr.t

(** Closed graph-level 2-FWL simulation. *)
val fwl2_graph_expr : Glql_util.Rng.t -> label_dim:int -> rounds:int -> dim:int -> Expr.t
