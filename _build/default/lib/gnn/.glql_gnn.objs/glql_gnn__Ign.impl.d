lib/gnn/ign.ml: Array Glql_graph Glql_nn Glql_tensor Glql_util List
