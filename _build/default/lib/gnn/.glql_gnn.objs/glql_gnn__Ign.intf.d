lib/gnn/ign.mli: Glql_graph Glql_tensor Glql_util
