lib/gnn/layer.ml: Array Glql_graph Glql_nn Glql_tensor Propagate
