lib/gnn/layer.mli: Glql_graph Glql_nn Glql_tensor Glql_util
