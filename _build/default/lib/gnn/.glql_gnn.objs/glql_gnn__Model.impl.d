lib/gnn/model.ml: Array Glql_graph Glql_nn Glql_tensor Layer List
