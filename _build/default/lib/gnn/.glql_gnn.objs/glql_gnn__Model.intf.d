lib/gnn/model.mli: Glql_graph Glql_nn Glql_tensor Glql_util Layer
