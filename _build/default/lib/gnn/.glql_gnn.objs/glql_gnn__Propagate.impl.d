lib/gnn/propagate.ml: Array Glql_graph Glql_tensor
