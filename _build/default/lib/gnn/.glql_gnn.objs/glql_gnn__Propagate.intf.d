lib/gnn/propagate.mli: Glql_graph Glql_tensor
