(* 2-IGNs — invariant graph networks of order 2 (named on slides 34/63;
   Maron et al., ICLR 2019).

   Features live on vertex *pairs*: a channel is an n x n matrix. The
   space of permutation-equivariant linear maps R^{n^2} -> R^{n^2} has
   dimension 15 (one basis operation per partition of the four index
   positions); a layer applies a learnable mixture of the 15 basis
   operations per channel pair, adds the 2 equivariant biases (all
   entries / diagonal only) and a pointwise nonlinearity. The invariant
   readout space R^{n^2} -> R is 2-dimensional (total sum and trace).

   The input encoding of a labelled graph uses channel 0 for the
   adjacency matrix and one diagonal channel per label dimension.
   Sums are normalised by n so values stay comparable across sizes.

   2-IGNs sit between colour refinement and folklore 2-WL in separation
   power — the audit experiment E14 measures exactly where. This module
   is forward-only: the experiments sample random-weight families. *)

module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Rng = Glql_util.Rng
module Activation = Glql_nn.Activation

let n_basis = 15

(* Apply basis operation [b] (0-based) to one channel. All sums are
   normalised by n. *)
let basis_op b x =
  let n = Mat.rows x in
  let inv_n = 1.0 /. float_of_int (max 1 n) in
  let row_sum = Array.init n (fun i ->
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. Mat.get x i k
      done;
      !acc *. inv_n)
  in
  let col_sum = Array.init n (fun j ->
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. Mat.get x k j
      done;
      !acc *. inv_n)
  in
  let total = Array.fold_left ( +. ) 0.0 row_sum *. inv_n in
  let trace =
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      acc := !acc +. Mat.get x k k
    done;
    !acc *. inv_n
  in
  Mat.init n n (fun i j ->
      let diag = if i = j then 1.0 else 0.0 in
      match b with
      | 0 -> Mat.get x i j
      | 1 -> Mat.get x j i
      | 2 -> diag *. Mat.get x i i
      | 3 -> row_sum.(i)
      | 4 -> col_sum.(i)
      | 5 -> row_sum.(j)
      | 6 -> col_sum.(j)
      | 7 -> diag *. row_sum.(i)
      | 8 -> diag *. col_sum.(i)
      | 9 -> Mat.get x i i
      | 10 -> Mat.get x j j
      | 11 -> diag *. total
      | 12 -> total
      | 13 -> trace
      | 14 -> diag *. trace
      | _ -> invalid_arg "Ign.basis_op: basis index out of range")

type layer = {
  weights : float array array array;  (* [basis].[in_channel].[out_channel] *)
  bias_all : float array;             (* per out channel *)
  bias_diag : float array;
  act : Activation.t;
}

type t = { layers : layer list; final_mlp_w : Mat.t; final_mlp_b : Vec.t }

let random_layer rng ~din ~dout ~act =
  let scale = 1.0 /. sqrt (float_of_int (n_basis * din)) in
  {
    weights =
      Array.init n_basis (fun _ ->
          Array.init din (fun _ -> Array.init dout (fun _ -> scale *. Rng.gaussian rng)));
    bias_all = Array.init dout (fun _ -> 0.1 *. Rng.gaussian rng);
    bias_diag = Array.init dout (fun _ -> 0.1 *. Rng.gaussian rng);
    act;
  }

let random rng ~label_dim ~width ~depth ~out_dim =
  let din0 = 1 + label_dim in
  let layers =
    List.init depth (fun i ->
        random_layer rng ~din:(if i = 0 then din0 else width) ~dout:width ~act:Activation.Tanh)
  in
  (* Invariant readout gives 2 features (sum, trace) per channel. *)
  { layers; final_mlp_w = Mat.glorot rng (2 * width) out_dim; final_mlp_b = Vec.zeros out_dim }

(* Input tensor: channel 0 = adjacency, channel 1+c = diagonal one-hot of
   label component c. *)
let encode g =
  let n = Graph.n_vertices g in
  let d = Graph.label_dim g in
  let adj = Mat.init n n (fun i j -> if Graph.has_edge g i j then 1.0 else 0.0) in
  let channels =
    adj
    :: List.init d (fun c ->
           Mat.init n n (fun i j -> if i = j then (Graph.label g i).(c) else 0.0))
  in
  Array.of_list channels

let layer_forward layer channels =
  let n = Mat.rows channels.(0) in
  let din = Array.length channels in
  let dout = Array.length layer.bias_all in
  (* Precompute the 15 basis images of each input channel. *)
  let images = Array.init n_basis (fun b -> Array.map (basis_op b) channels) in
  Array.init dout (fun oc ->
      let out = Mat.create n n layer.bias_all.(oc) in
      for i = 0 to n - 1 do
        Mat.set out i i (Mat.get out i i +. layer.bias_diag.(oc))
      done;
      for b = 0 to n_basis - 1 do
        for ic = 0 to din - 1 do
          let w = layer.weights.(b).(ic).(oc) in
          if w <> 0.0 then Mat.axpy_inplace ~into:out w images.(b).(ic)
        done
      done;
      Activation.apply_mat layer.act out)

(* --- PPGN: provably powerful graph networks --------------------------------

   Adding channel-wise *matrix products* to the 2-IGN toolbox lifts the
   power from colour refinement to folklore 2-WL (Maron et al., NeurIPS
   2019): a block computes P = mlp1(X) * mlp2(X) per channel (normalised
   by n) and re-mixes [X; P] with a third entrywise MLP. The MLPs act on
   the channel vector of each pair (i, j) independently — that
   nonlinearity is what makes the multiset-of-products hash injective
   enough to simulate the 2-FWL refinement with random weights. *)

module Mlp = Glql_nn.Mlp

type ppgn_block = { mlp1 : Mlp.t; mlp2 : Mlp.t; mlp_skip : Mlp.t }

type ppgn = { blocks : ppgn_block list; pfinal_w : Mat.t; pfinal_b : Vec.t }

let random_ppgn rng ~label_dim ~width ~depth ~out_dim =
  (* Channels: adjacency, identity, row- and column-broadcast labels. *)
  let din0 = 2 + (2 * label_dim) in
  let entry_mlp din dout =
    let m =
      Mlp.create rng ~sizes:[ din; 2 * dout; dout ] ~act:Activation.Tanh ~out_act:Activation.Tanh
    in
    (* [Mlp.create] zeroes the biases, which would make every entry map an
       odd function; compositions of odd maps cancel systematically on
       bipartite-type signals, losing separations. Randomise them. *)
    List.iter
      (fun (p : Glql_nn.Param.t) ->
        if Mat.rows p.Glql_nn.Param.data = 1 then
          for j = 0 to Mat.cols p.Glql_nn.Param.data - 1 do
            Mat.set p.Glql_nn.Param.data 0 j (0.3 *. Rng.gaussian rng)
          done)
      (Mlp.params m);
    m
  in
  let blocks =
    List.init depth (fun i ->
        let din = if i = 0 then din0 else width in
        {
          mlp1 = entry_mlp din width;
          mlp2 = entry_mlp din width;
          mlp_skip = entry_mlp (din + width) width;
        })
  in
  { blocks; pfinal_w = Mat.glorot rng (2 * width) out_dim; pfinal_b = Vec.zeros out_dim }

(* Apply an MLP to the channel vector of every (i, j) entry. *)
let entrywise mlp channels =
  let n = Mat.rows channels.(0) in
  let din = Array.length channels in
  let dout = Mlp.out_dim mlp in
  let out = Array.init dout (fun _ -> Mat.zeros n n) in
  let input = Array.make din 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for c = 0 to din - 1 do
        input.(c) <- Mat.get channels.(c) i j
      done;
      let v = Mlp.apply_vec mlp input in
      for c = 0 to dout - 1 do
        Mat.set out.(c) i j v.(c)
      done
    done
  done;
  out

let ppgn_block_forward block channels =
  let n = Mat.rows channels.(0) in
  (* Normalise products by sqrt(n) only: with tanh-bounded factors this
     keeps entries O(sqrt n) while attenuating high-degree walk signals
     as little as possible (1/n per block would push the first CFI-
     distinguishing moment, a degree-9 trace, below float resolution). *)
  let inv = 1.0 /. sqrt (float_of_int (max 1 n)) in
  let m1 = entrywise block.mlp1 channels in
  let m2 = entrywise block.mlp2 channels in
  let prods = Array.init (Array.length m1) (fun c -> Mat.scale inv (Mat.mul m1.(c) m2.(c))) in
  let combined = Array.append channels prods in
  entrywise block.mlp_skip combined

(* PPGN input mirrors the 2-FWL atomic type of each pair (i, j):
   adjacency, the equality pattern (identity channel) and the labels of
   *both* endpoints, broadcast across rows and columns. The broadcasts
   are equivariant images of the diagonal label channels (basis ops 9/10),
   so this stays within the model family — it just spares the network one
   product step. *)
let encode_ppgn g =
  let n = Graph.n_vertices g in
  let d = Graph.label_dim g in
  let adj = Mat.init n n (fun i j -> if Graph.has_edge g i j then 1.0 else 0.0) in
  let id = Mat.identity n in
  let row_labels =
    List.init d (fun c -> Mat.init n n (fun i _ -> (Graph.label g i).(c)))
  in
  let col_labels =
    List.init d (fun c -> Mat.init n n (fun _ j -> (Graph.label g j).(c)))
  in
  Array.of_list (adj :: id :: (row_labels @ col_labels))

let ppgn_graph_embedding t g =
  let channels = ref (encode_ppgn g) in
  List.iter (fun block -> channels := ppgn_block_forward block !channels) t.blocks;
  let n = Graph.n_vertices g in
  let inv_n2 = 1.0 /. float_of_int (max 1 (n * n)) in
  let inv_n = 1.0 /. float_of_int (max 1 n) in
  let feats =
    Array.concat
      (Array.to_list
         (Array.map
            (fun x ->
              let sum = ref 0.0 and trace = ref 0.0 in
              for i = 0 to n - 1 do
                trace := !trace +. Mat.get x i i;
                for j = 0 to n - 1 do
                  sum := !sum +. Mat.get x i j
                done
              done;
              [| !sum *. inv_n2; !trace *. inv_n |])
            !channels))
  in
  Vec.add (Mat.vec_mul feats t.pfinal_w) t.pfinal_b

let graph_embedding t g =
  let channels = ref (encode g) in
  List.iter (fun layer -> channels := layer_forward layer !channels) t.layers;
  let n = Graph.n_vertices g in
  let inv_n2 = 1.0 /. float_of_int (max 1 (n * n)) in
  let inv_n = 1.0 /. float_of_int (max 1 n) in
  let feats =
    Array.concat
      (Array.to_list
         (Array.map
            (fun x ->
              let sum = ref 0.0 and trace = ref 0.0 in
              for i = 0 to n - 1 do
                trace := !trace +. Mat.get x i i;
                for j = 0 to n - 1 do
                  sum := !sum +. Mat.get x i j
                done
              done;
              [| !sum *. inv_n2; !trace *. inv_n |])
            !channels))
  in
  Vec.add (Mat.vec_mul feats t.final_mlp_w) t.final_mlp_b
