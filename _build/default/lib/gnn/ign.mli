(** 2-IGNs — order-2 invariant graph networks (slides 34/63): features on
    vertex pairs, layers built from the 15-dimensional basis of
    permutation-equivariant linear maps on R^(n x n), invariant (sum,
    trace) readout. Forward-only; used for separation-power experiments
    with random weights. *)

module Graph = Glql_graph.Graph
module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat

(** Number of equivariant basis operations (15). *)
val n_basis : int

(** Apply one basis operation (0-based index) to a channel matrix; sums
    are normalised by n. *)
val basis_op : int -> Mat.t -> Mat.t

type t

(** Random-weight 2-IGN: input channels = adjacency + one diagonal channel
    per label dimension. *)
val random :
  Glql_util.Rng.t -> label_dim:int -> width:int -> depth:int -> out_dim:int -> t

(** Input tensor encoding of a graph (channel array of n x n matrices). *)
val encode : Graph.t -> Mat.t array

(** Invariant graph embedding. *)
val graph_embedding : t -> Graph.t -> Vec.t

(** {1 PPGN} Channel-wise matrix products lift 2-IGN from colour-refinement
    power to folklore 2-WL (Maron et al., NeurIPS 2019). *)

type ppgn

val random_ppgn :
  Glql_util.Rng.t -> label_dim:int -> width:int -> depth:int -> out_dim:int -> ppgn

val ppgn_graph_embedding : ppgn -> Graph.t -> Vec.t
