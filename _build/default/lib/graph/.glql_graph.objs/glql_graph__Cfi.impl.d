lib/graph/cfi.ml: Array Graph List
