lib/graph/cfi.mli: Graph
