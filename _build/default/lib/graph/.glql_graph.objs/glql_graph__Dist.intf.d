lib/graph/dist.mli: Graph
