lib/graph/generators.ml: Array Glql_util Graph Hashtbl List
