lib/graph/generators.mli: Glql_util Graph
