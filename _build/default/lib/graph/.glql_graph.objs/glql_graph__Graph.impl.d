lib/graph/graph.ml: Array Glql_tensor Glql_util Hashtbl List Option Printf String
