lib/graph/graph.mli: Glql_tensor Glql_util
