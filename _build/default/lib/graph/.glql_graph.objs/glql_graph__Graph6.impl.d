lib/graph/graph6.ml: Array Buffer Char Graph List String
