lib/graph/iso.ml: Array Glql_tensor Glql_util Graph Hashtbl List Option
