lib/graph/iso.mli: Graph
