lib/graph/product.ml: Array Glql_tensor Graph List
