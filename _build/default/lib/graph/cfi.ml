(* Cai-Fürer-Immerman construction (slide 65's witness family).

   Given a connected base graph B and a set T of "twisted" base edges, the
   CFI graph CFI(B, T) consists of, for every base vertex v of degree d:

     - a middle vertex  m_{v,S}  for every even-cardinality subset S of the
       edges incident to v (2^{d-1} of them), and
     - two edge-port vertices  a_{v,e,0} and a_{v,e,1}  for every incident
       edge e,

   with m_{v,S} adjacent to a_{v,e,1} when e is in S and to a_{v,e,0}
   otherwise.  For every base edge e = {u, v}, ports are joined straight
   (a_{u,e,i} -- a_{v,e,i}) when e is untwisted and crossed when e is in T.

   Vertices carry one-hot labels identifying their colour class: one class
   per base vertex (its middles) and one per incident pair (v, e) (its two
   ports).  Classic facts reproduced by experiment E4:

     - CFI(B, T) and CFI(B, T') are isomorphic iff |T| and |T'| have the
       same parity, so a single twist yields a non-isomorphic companion;
     - distinguishing the twisted from the untwisted graph requires
       Weisfeiler-Leman dimension that grows with the treewidth of B. *)

type vertex_kind =
  | Middle of int * int list  (* base vertex, even incident-edge subset *)
  | Port of int * int * int   (* base vertex, base-edge index, bit *)

type t = {
  graph : Graph.t;
  base : Graph.t;
  twisted : int list;               (* indices into [base_edges] *)
  base_edges : (int * int) array;
  kinds : vertex_kind array;
}

let even_subsets edges =
  (* All subsets of [edges] of even cardinality, as sorted lists. *)
  let rec go = function
    | [] -> [ [] ]
    | e :: rest ->
        let subs = go rest in
        subs @ List.map (fun s -> e :: s) subs
  in
  List.filter (fun s -> List.length s mod 2 = 0) (go edges)

let build ?(twisted = []) base =
  if not (Graph.is_connected base) then invalid_arg "Cfi.build: base must be connected";
  let base_edges = Array.of_list (Graph.edges base) in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length base_edges then invalid_arg "Cfi.build: bad twisted index")
    twisted;
  let nb = Graph.n_vertices base in
  (* Incident edge indices per base vertex. *)
  let incident = Array.make nb [] in
  Array.iteri
    (fun ei (u, v) ->
      incident.(u) <- ei :: incident.(u);
      incident.(v) <- ei :: incident.(v))
    base_edges;
  Array.iteri (fun v l -> incident.(v) <- List.sort compare l) incident;
  (* Allocate vertices. *)
  let kinds = ref [] in
  let next = ref 0 in
  let fresh kind =
    kinds := kind :: !kinds;
    let id = !next in
    incr next;
    id
  in
  let middle_ids = Array.make nb [] in
  (* port_ids.(v) is an assoc list: edge index -> (id of bit 0, id of bit 1). *)
  let port_ids = Array.make nb [] in
  for v = 0 to nb - 1 do
    List.iter
      (fun s -> middle_ids.(v) <- (s, fresh (Middle (v, s))) :: middle_ids.(v))
      (even_subsets incident.(v));
    List.iter
      (fun ei ->
        let p0 = fresh (Port (v, ei, 0)) in
        let p1 = fresh (Port (v, ei, 1)) in
        port_ids.(v) <- (ei, (p0, p1)) :: port_ids.(v))
      incident.(v)
  done;
  let port v ei bit =
    let p0, p1 = List.assoc ei port_ids.(v) in
    if bit = 0 then p0 else p1
  in
  let edges = ref [] in
  (* Gadget-internal edges. *)
  for v = 0 to nb - 1 do
    List.iter
      (fun (s, mid) ->
        List.iter
          (fun ei ->
            let bit = if List.mem ei s then 1 else 0 in
            edges := (mid, port v ei bit) :: !edges)
          incident.(v))
      middle_ids.(v)
  done;
  (* Cross-gadget connections per base edge, straight or crossed. *)
  Array.iteri
    (fun ei (u, v) ->
      let cross = List.mem ei twisted in
      if cross then begin
        edges := (port u ei 0, port v ei 1) :: !edges;
        edges := (port u ei 1, port v ei 0) :: !edges
      end
      else begin
        edges := (port u ei 0, port v ei 0) :: !edges;
        edges := (port u ei 1, port v ei 1) :: !edges
      end)
    base_edges;
  let n = !next in
  let kinds = Array.of_list (List.rev !kinds) in
  (* Colour classes: base-vertex id for middles; nb + 2*edge + side for
     ports, where side says which endpoint of the base edge the port
     belongs to (ports of one class are the interchangeable pair). *)
  let n_colors = nb + (2 * Array.length base_edges) in
  let colors =
    Array.map
      (fun kind ->
        match kind with
        | Middle (v, _) -> v
        | Port (v, ei, _) ->
            let u, w = base_edges.(ei) in
            let side = if v = u then 0 else if v = w then 1 else assert false in
            nb + (2 * ei) + side)
      kinds
  in
  let graph =
    Graph.with_one_hot_labels
      (Graph.unlabelled ~n ~edges:!edges)
      colors ~n_colors
  in
  { graph; base; twisted; base_edges; kinds }

let graph t = t.graph

let base t = t.base

let twisted t = t.twisted

let base_edges t = t.base_edges

let kind t v = t.kinds.(v)

(* The canonical experiment pair: untwisted vs one-edge-twisted. *)
let pair base =
  let plain = build base in
  let twisted = build ~twisted:[ 0 ] base in
  (plain.graph, twisted.graph)

let n_vertices_for_base base =
  let nb = Graph.n_vertices base in
  let middles = ref 0 in
  for v = 0 to nb - 1 do
    middles := !middles + (1 lsl max 0 (Graph.degree base v - 1))
  done;
  !middles + (4 * Graph.n_edges base)
