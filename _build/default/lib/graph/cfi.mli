(** Cai-Fürer-Immerman graphs: for a connected base graph [B] and a set of
    twisted base edges, a labelled graph such that twisting an odd number of
    edges yields a non-isomorphic companion that low-dimensional
    Weisfeiler-Leman cannot distinguish (slide 65). *)

type vertex_kind =
  | Middle of int * int list
      (** [Middle (v, s)]: gadget-interior vertex of base vertex [v] for the
          even incident-edge subset [s] (edge indices). *)
  | Port of int * int * int
      (** [Port (v, e, bit)]: port of base vertex [v] on base edge [e]. *)

type t

(** [build ?twisted base] constructs CFI(base, twisted) where [twisted]
    lists indices into [Graph.edges base]. Raises if [base] is not
    connected. *)
val build : ?twisted:int list -> Graph.t -> t

(** The resulting labelled graph. *)
val graph : t -> Graph.t

(** The base graph the construction was applied to. *)
val base : t -> Graph.t

(** Indices of the twisted base edges. *)
val twisted : t -> int list

(** The base edge list, in index order. *)
val base_edges : t -> (int * int) array

(** What CFI vertex [v] encodes. *)
val kind : t -> int -> vertex_kind

(** [(untwisted, one-twist)] — the canonical non-isomorphic pair. *)
val pair : Graph.t -> Graph.t * Graph.t

(** Size of the CFI graph for a base, without building it. *)
val n_vertices_for_base : Graph.t -> int
