(* Breadth-first distances, eccentricities and ego networks. Nested /
   subgraph GNNs (slide 71) run message passing inside radius-r ego nets;
   distance encodings are a classic symmetry-breaking feature. *)

let bfs g source =
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if dist.(u) = -1 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
      (Graph.neighbors g v)
  done;
  dist

let eccentricity g v =
  Array.fold_left max 0 (bfs g v)

let diameter g =
  let d = ref 0 in
  for v = 0 to Graph.n_vertices g - 1 do
    d := max !d (eccentricity g v)
  done;
  !d

(* Vertices within distance [radius] of [center], sorted; always contains
   the centre itself. *)
let ball g ~center ~radius =
  let dist = bfs g center in
  let members = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if dist.(v) >= 0 && dist.(v) <= radius then members := v :: !members
  done;
  Array.of_list !members

(* Ego network: the subgraph induced by the radius-[radius] ball, with the
   centre renumbered to its position in the sorted member list. Returns
   the subgraph and the centre's new index. *)
let ego_net g ~center ~radius =
  let members = ball g ~center ~radius in
  let sub = Graph.induced_subgraph g members in
  let center_index = ref 0 in
  Array.iteri (fun i v -> if v = center then center_index := i) members;
  (sub, !center_index)
