(** Breadth-first distances and ego networks (the substrate of nested /
    subgraph GNNs, slide 71). *)

(** BFS distances from a source; unreachable vertices get [-1]. *)
val bfs : Graph.t -> int -> int array

val eccentricity : Graph.t -> int -> int

(** Maximum eccentricity over the graph (0 for the empty graph). *)
val diameter : Graph.t -> int

(** Sorted vertices within the given distance of the centre. *)
val ball : Graph.t -> center:int -> radius:int -> int array

(** Induced radius-[radius] ego network and the centre's index in it. *)
val ego_net : Graph.t -> center:int -> radius:int -> Graph.t * int
