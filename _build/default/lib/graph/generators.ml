(* Generators for the graph families used throughout the experiments:
   classic parametric families, the strongly-regular Rook/Shrikhande pair
   (the standard 2-FWL-hard instance), and random models. *)

module Rng = Glql_util.Rng

let path n = Graph.unlabelled ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.unlabelled ~n ~edges:((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.unlabelled ~n ~edges:!edges

let star n =
  (* One centre (vertex 0) with [n] leaves. *)
  Graph.unlabelled ~n:(n + 1) ~edges:(List.init n (fun i -> (0, i + 1)))

let complete_bipartite a b =
  let edges = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      edges := (i, a + j) :: !edges
    done
  done;
  Graph.unlabelled ~n:(a + b) ~edges:!edges

let grid rows cols =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.unlabelled ~n:(rows * cols) ~edges:!edges

let petersen () =
  (* Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5. *)
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  Graph.unlabelled ~n:10 ~edges:(outer @ inner @ spokes)

(* 4x4 rook's graph: vertices Z4 x Z4, edges between cells sharing a row or
   a column. Strongly regular with parameters (16, 6, 2, 2). *)
let rook_4x4 () =
  let id r c = (r * 4) + c in
  let edges = ref [] in
  for r = 0 to 3 do
    for c = 0 to 3 do
      for c' = c + 1 to 3 do
        edges := (id r c, id r c') :: !edges
      done;
      for r' = r + 1 to 3 do
        edges := (id r c, id r' c) :: !edges
      done
    done
  done;
  Graph.unlabelled ~n:16 ~edges:!edges

(* Shrikhande graph: vertices Z4 x Z4, (a,b) ~ (c,d) iff (a-c, b-d) is one
   of +-(1,0), +-(0,1), +-(1,1). Also SRG(16, 6, 2, 2), non-isomorphic to
   the rook's graph; the classic pair that colour refinement and 2-FWL
   cannot tell apart but 3-FWL can. *)
let shrikhande () =
  let id a b = (a * 4) + b in
  let deltas = [ (1, 0); (3, 0); (0, 1); (0, 3); (1, 1); (3, 3) ] in
  let edges = ref [] in
  for a = 0 to 3 do
    for b = 0 to 3 do
      List.iter
        (fun (da, db) ->
          let a' = (a + da) mod 4 and b' = (b + db) mod 4 in
          let u = id a b and v = id a' b' in
          if u < v then edges := (u, v) :: !edges)
        deltas
    done
  done;
  Graph.unlabelled ~n:16 ~edges:!edges

(* The folklore colour-refinement-equivalent pair: one hexagon vs two
   triangles (equal degree sequences, equal CR colourings, different
   triangle counts). *)
let hexagon_vs_two_triangles () =
  (cycle 6, Graph.disjoint_union (cycle 3) (cycle 3))

(* Decalin vs bicyclopentyl skeletons (two fused/linked rings on 10
   vertices): the standard chemistry example of CR-equivalent molecules. *)
let decalin () =
  Graph.unlabelled ~n:10
    ~edges:
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (0, 6); (6, 7); (7, 8); (8, 9); (9, 5) ]

let bicyclopentyl () =
  Graph.unlabelled ~n:10
    ~edges:
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (5, 6); (6, 7); (7, 8); (8, 9); (9, 5); (0, 5) ]

let erdos_renyi rng ~n ~p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng < p then edges := (u, v) :: !edges
    done
  done;
  Graph.unlabelled ~n ~edges:!edges

let random_tree rng ~n =
  (* Uniform attachment tree: vertex i attaches to a uniform earlier vertex. *)
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (Rng.int rng v, v) :: !edges
  done;
  Graph.unlabelled ~n ~edges:!edges

(* Random d-regular graph by the pairing model with retries; raises after
   too many failed attempts (n * d must be even). *)
let random_regular rng ~n ~d =
  if n * d mod 2 <> 0 then invalid_arg "Generators.random_regular: n*d must be even";
  if d >= n then invalid_arg "Generators.random_regular: d >= n";
  let attempt () =
    let stubs = Array.make (n * d) 0 in
    for i = 0 to (n * d) - 1 do
      stubs.(i) <- i / d
    done;
    Rng.shuffle rng stubs;
    let seen = Hashtbl.create (n * d) in
    let edges = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        edges := key :: !edges
      end;
      i := !i + 2
    done;
    if !ok then Some (Graph.unlabelled ~n ~edges:!edges) else None
  in
  let rec go tries =
    if tries = 0 then failwith "Generators.random_regular: too many rejections"
    else match attempt () with Some g -> g | None -> go (tries - 1)
  in
  go 1000

(* Stochastic block model: [sizes.(i)] vertices in block i, edge probability
   [p_in] within a block and [p_out] across. Vertices get the block id as a
   one-hot label unless [labelled] is false. *)
let sbm rng ~sizes ~p_in ~p_out ~labelled =
  let n = Array.fold_left ( + ) 0 sizes in
  let block = Array.make n 0 in
  let idx = ref 0 in
  Array.iteri
    (fun b size ->
      for _ = 1 to size do
        block.(!idx) <- b;
        incr idx
      done)
    sizes;
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = if block.(u) = block.(v) then p_in else p_out in
      if Rng.float rng < p then edges := (u, v) :: !edges
    done
  done;
  let g = Graph.unlabelled ~n ~edges:!edges in
  let g = if labelled then Graph.with_one_hot_labels g block ~n_colors:(Array.length sizes) else g in
  (g, block)

(* Random molecule-like graph: a random tree backbone over [n] atoms with a
   few extra ring-closing edges, and atom types drawn from a small alphabet
   one-hot encoded as labels. Returns the graph and the atom types. *)
let molecule rng ~n ~n_atom_types ~ring_edges =
  let tree = random_tree rng ~n in
  let extra = ref [] in
  let attempts = ref 0 in
  while List.length !extra < ring_edges && !attempts < 50 * ring_edges do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Graph.has_edge tree u v) && not (List.mem (min u v, max u v) !extra)
    then extra := (min u v, max u v) :: !extra
  done;
  let g = Graph.create ~n ~edges:(Graph.edges tree @ !extra) ~labels:(Array.make n [| 1.0 |]) in
  let atoms = Array.init n (fun _ -> Rng.int rng n_atom_types) in
  (Graph.with_one_hot_labels g atoms ~n_colors:n_atom_types, atoms)

(* Circulant graph C_n(S): i ~ i+s (mod n) for each s in S. *)
let circulant n offsets =
  let edges = ref [] in
  for i = 0 to n - 1 do
    List.iter
      (fun s ->
        let j = (i + s) mod n in
        if i <> j then edges := (min i j, max i j) :: !edges)
      offsets
  done;
  Graph.unlabelled ~n ~edges:!edges
