(** Graph families used throughout the experiments: classic parametric
    graphs, the strongly-regular Rook/Shrikhande pair, the folklore
    colour-refinement-equivalent pairs, and random models. *)

(** Path on [n] vertices. *)
val path : int -> Graph.t

(** Cycle C_n, [n >= 3]. *)
val cycle : int -> Graph.t

(** Complete graph K_n. *)
val complete : int -> Graph.t

(** Star with [n] leaves (centre is vertex 0). *)
val star : int -> Graph.t

(** Complete bipartite K_{a,b}. *)
val complete_bipartite : int -> int -> Graph.t

(** [rows] x [cols] grid graph. *)
val grid : int -> int -> Graph.t

(** The Petersen graph. *)
val petersen : unit -> Graph.t

(** 4x4 rook's graph, SRG(16,6,2,2). *)
val rook_4x4 : unit -> Graph.t

(** Shrikhande graph, SRG(16,6,2,2); non-isomorphic to the rook's graph but
    2-FWL-equivalent to it. *)
val shrikhande : unit -> Graph.t

(** C_6 and C_3 + C_3: colour-refinement equivalent, non-isomorphic. *)
val hexagon_vs_two_triangles : unit -> Graph.t * Graph.t

(** Decalin carbon skeleton (two fused hexagon/pentagon rings). *)
val decalin : unit -> Graph.t

(** Bicyclopentyl carbon skeleton; CR-equivalent to decalin. *)
val bicyclopentyl : unit -> Graph.t

(** G(n, p) random graph. *)
val erdos_renyi : Glql_util.Rng.t -> n:int -> p:float -> Graph.t

(** Uniform-attachment random tree. *)
val random_tree : Glql_util.Rng.t -> n:int -> Graph.t

(** Random [d]-regular graph by the pairing model (raises after too many
    rejections; [n * d] must be even, [d < n]). *)
val random_regular : Glql_util.Rng.t -> n:int -> d:int -> Graph.t

(** Stochastic block model; returns the graph and the block assignment.
    With [labelled:true] blocks become one-hot labels. *)
val sbm :
  Glql_util.Rng.t ->
  sizes:int array ->
  p_in:float ->
  p_out:float ->
  labelled:bool ->
  Graph.t * int array

(** Random molecule-like graph: tree backbone plus [ring_edges] extra
    edges; atom types one-hot encoded. Returns graph and atom types. *)
val molecule :
  Glql_util.Rng.t -> n:int -> n_atom_types:int -> ring_edges:int -> Graph.t * int array

(** Circulant graph C_n(S). *)
val circulant : int -> int list -> Graph.t
