(* graph6 codec (McKay's format) for unlabelled graphs up to 62 vertices
   plus the long form up to 258047.  Lets corpora be exchanged with nauty
   and friends, and gives the test suite a round-trip property target. *)

let encode g =
  let n = Graph.n_vertices g in
  let buf = Buffer.create 64 in
  if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else if n <= 258047 then begin
    Buffer.add_char buf (Char.chr 126);
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end
  else invalid_arg "Graph6.encode: too many vertices";
  (* Upper triangle in column order, packed 6 bits per char. *)
  let bits = ref [] in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      bits := (if Graph.has_edge g u v then 1 else 0) :: !bits
    done
  done;
  let bits = Array.of_list (List.rev !bits) in
  let nbits = Array.length bits in
  let i = ref 0 in
  while !i < nbits do
    let chunk = ref 0 in
    for j = 0 to 5 do
      let b = if !i + j < nbits then bits.(!i + j) else 0 in
      chunk := (!chunk lsl 1) lor b
    done;
    Buffer.add_char buf (Char.chr (!chunk + 63));
    i := !i + 6
  done;
  Buffer.contents buf

let decode s =
  let len = String.length s in
  if len = 0 then invalid_arg "Graph6.decode: empty";
  let n, start =
    if s.[0] = Char.chr 126 then begin
      if len < 4 then invalid_arg "Graph6.decode: truncated header";
      let d i = Char.code s.[i] - 63 in
      (((d 1 lsl 12) lor (d 2 lsl 6) lor d 3), 4)
    end
    else (Char.code s.[0] - 63, 1)
  in
  if n < 0 then invalid_arg "Graph6.decode: bad vertex count";
  let nbits = n * (n - 1) / 2 in
  let bits = Array.make nbits 0 in
  for k = 0 to nbits - 1 do
    let char_idx = start + (k / 6) in
    if char_idx >= len then invalid_arg "Graph6.decode: truncated body";
    let c = Char.code s.[char_idx] - 63 in
    bits.(k) <- (c lsr (5 - (k mod 6))) land 1
  done;
  let edges = ref [] in
  let k = ref 0 in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      if bits.(!k) = 1 then edges := (u, v) :: !edges;
      incr k
    done
  done;
  Graph.unlabelled ~n ~edges:!edges
