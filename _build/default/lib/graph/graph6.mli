(** graph6 codec (nauty's text format) for unlabelled graphs. Labels are
    not represented; decoding yields the all-ones labelling. *)

val encode : Graph.t -> string
val decode : string -> Graph.t
