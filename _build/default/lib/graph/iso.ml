(* Exact graph-isomorphism testing by backtracking over colour classes.

   The invariance requirement of slide 11 and the E4 hierarchy experiment
   both need ground truth for "are G and H isomorphic?".  We use joint
   colour refinement as an invariant to (a) reject quickly and (b) order
   and prune the backtracking search.  The refinement here is a private,
   minimal variant; the fully-featured, history-producing colour refinement
   used by the experiments lives in [Glql_wl.Color_refinement]. *)

module Sig_hash = Glql_util.Sig_hash

(* One joint refinement pass over both graphs: colours are interned from
   structural signatures so they are comparable across the two graphs.
   Returns the stable colourings. *)
let joint_refine g h =
  let interner = Sig_hash.Interner.create () in
  let init gr =
    Array.init (Graph.n_vertices gr) (fun v ->
        Sig_hash.Interner.intern interner
          ("L" ^ Sig_hash.of_float_vector (Graph.label gr v)))
  in
  let cg = ref (init g) and ch = ref (init h) in
  let n_colors colors_g colors_h =
    let s = Hashtbl.create 64 in
    Array.iter (fun c -> Hashtbl.replace s c ()) colors_g;
    Array.iter (fun c -> Hashtbl.replace s c ()) colors_h;
    Hashtbl.length s
  in
  let refine gr colors =
    Array.init (Graph.n_vertices gr) (fun v ->
        let nb = Array.map (fun u -> colors.(u)) (Graph.neighbors gr v) in
        let key =
          string_of_int colors.(v) ^ "|" ^ Sig_hash.of_int_multiset nb
        in
        Sig_hash.Interner.intern interner key)
  in
  let continue_ = ref true in
  let count = ref (n_colors !cg !ch) in
  while !continue_ do
    let cg' = refine g !cg and ch' = refine h !ch in
    let count' = n_colors cg' ch' in
    cg := cg';
    ch := ch';
    if count' = !count then continue_ := false else count := count'
  done;
  (!cg, !ch)

let histogram colors =
  let h = Hashtbl.create 64 in
  Array.iter
    (fun c -> Hashtbl.replace h c (1 + Option.value ~default:0 (Hashtbl.find_opt h c)))
    colors;
  List.sort compare (Hashtbl.fold (fun c k acc -> (c, k) :: acc) h [])

(* Backtracking search for an isomorphism respecting the refined colours.
   Vertices of [g] are processed in order of ascending candidate count. *)
let search g h cg ch =
  let n = Graph.n_vertices g in
  let candidates =
    Array.init n (fun v ->
        let cs = ref [] in
        for w = Graph.n_vertices h - 1 downto 0 do
          if ch.(w) = cg.(v) then cs := w :: !cs
        done;
        Array.of_list !cs)
  in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (Array.length candidates.(a)) (Array.length candidates.(b)))
    order;
  let mapping = Array.make n (-1) in
  let used = Array.make (Graph.n_vertices h) false in
  let consistent v w =
    (* Check edges between v and already-mapped vertices. *)
    Array.for_all
      (fun u -> mapping.(u) = -1 || Graph.has_edge h w mapping.(u))
      (Graph.neighbors g v)
    &&
    (* Non-edges must map to non-edges: check all mapped vertices that are
       not neighbours of v. *)
    let ok = ref true in
    Array.iter
      (fun u ->
        if mapping.(u) <> -1 && not (Graph.has_edge g v u) && Graph.has_edge h w mapping.(u)
        then ok := false)
      (Array.init n (fun i -> i));
    !ok
  in
  let rec go idx =
    if idx = n then true
    else
      let v = order.(idx) in
      let found = ref false in
      let i = ref 0 in
      let cands = candidates.(v) in
      while (not !found) && !i < Array.length cands do
        let w = cands.(!i) in
        incr i;
        if (not used.(w)) && consistent v w then begin
          mapping.(v) <- w;
          used.(w) <- true;
          if go (idx + 1) then found := true
          else begin
            mapping.(v) <- -1;
            used.(w) <- false
          end
        end
      done;
      !found
  in
  if go 0 then Some (Array.copy mapping) else None

let find_isomorphism g h =
  if Graph.n_vertices g <> Graph.n_vertices h then None
  else if Graph.n_edges g <> Graph.n_edges h then None
  else if Graph.degree_histogram g <> Graph.degree_histogram h then None
  else
    let cg, ch = joint_refine g h in
    if histogram cg <> histogram ch then None else search g h cg ch

let are_isomorphic g h = Option.is_some (find_isomorphism g h)

let is_isomorphism g h perm =
  Array.length perm = Graph.n_vertices g
  && Graph.n_vertices g = Graph.n_vertices h
  &&
  let n = Graph.n_vertices g in
  let injective =
    let seen = Array.make n false in
    Array.for_all
      (fun w ->
        if w < 0 || w >= n || seen.(w) then false
        else begin
          seen.(w) <- true;
          true
        end)
      perm
  in
  injective
  &&
  let ok = ref true in
  for u = 0 to n - 1 do
    if not (Glql_tensor.Vec.equal_approx (Graph.label g u) (Graph.label h perm.(u))) then
      ok := false;
    for v = u + 1 to n - 1 do
      if Graph.has_edge g u v <> Graph.has_edge h perm.(u) perm.(v) then ok := false
    done
  done;
  !ok
