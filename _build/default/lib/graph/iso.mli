(** Exact isomorphism testing for labelled graphs, by colour-refinement
    pruned backtracking. Used as ground truth by the experiments
    (strongest separation power, slide 25). *)

(** A label-preserving isomorphism [g -> h] if one exists. *)
val find_isomorphism : Graph.t -> Graph.t -> int array option

val are_isomorphic : Graph.t -> Graph.t -> bool

(** Verify that [perm] is a label-preserving isomorphism from [g] to [h]. *)
val is_isomorphism : Graph.t -> Graph.t -> int array -> bool
