(* Graph products. The tutorial remarks (slide 65) that k-WL can be seen
   as colour refinement on a k-fold product of a graph; products are also
   handy pattern builders for tests. Labels of a product vertex are the
   concatenation of the factor labels. *)

module Vec = Glql_tensor.Vec

let product_labels g h =
  let ng = Graph.n_vertices g and nh = Graph.n_vertices h in
  Array.init (ng * nh) (fun k ->
      let u = k / nh and v = k mod nh in
      Vec.concat [ Graph.label g u; Graph.label h v ])

(* Tensor (categorical) product: (u,v) ~ (u',v') iff u~u' and v~v'. *)
let tensor g h =
  let nh = Graph.n_vertices h in
  let id u v = (u * nh) + v in
  let edges = ref [] in
  List.iter
    (fun (u, u') ->
      List.iter
        (fun (v, v') ->
          edges := (id u v, id u' v') :: (id u v', id u' v) :: !edges)
        (Graph.edges h))
    (Graph.edges g);
  Graph.create ~n:(Graph.n_vertices g * nh) ~edges:!edges ~labels:(product_labels g h)

(* Cartesian product: (u,v) ~ (u',v') iff (u = u' and v~v') or (v = v' and u~u'). *)
let cartesian g h =
  let ng = Graph.n_vertices g and nh = Graph.n_vertices h in
  let id u v = (u * nh) + v in
  let edges = ref [] in
  for u = 0 to ng - 1 do
    List.iter (fun (v, v') -> edges := (id u v, id u v') :: !edges) (Graph.edges h)
  done;
  for v = 0 to nh - 1 do
    List.iter (fun (u, u') -> edges := (id u v, id u' v) :: !edges) (Graph.edges g)
  done;
  Graph.create ~n:(ng * nh) ~edges:!edges ~labels:(product_labels g h)
