(** Tensor and Cartesian graph products; labels of a product vertex are the
    concatenated factor labels. *)

(** Categorical/tensor product: [(u,v) ~ (u',v')] iff [u~u'] and [v~v']. *)
val tensor : Graph.t -> Graph.t -> Graph.t

(** Cartesian product: edges move in exactly one coordinate. *)
val cartesian : Graph.t -> Graph.t -> Graph.t
