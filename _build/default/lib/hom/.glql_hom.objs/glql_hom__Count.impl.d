lib/hom/count.ml: Array Glql_graph List Tree
