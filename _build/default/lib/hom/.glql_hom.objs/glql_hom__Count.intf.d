lib/hom/count.mli: Glql_graph
