lib/hom/tree.ml: Array Glql_graph Hashtbl List String
