lib/hom/tree.mli: Glql_graph
