(* Enumeration of trees, used by experiment E2 (slide 27: two graphs are
   colour-refinement equivalent iff hom(T, G) = hom(T, H) for all trees T).

   Rooted trees are generated size by size; a rooted tree is a multiset of
   smaller rooted trees, generated in non-increasing (size, index) order so
   each multiset appears exactly once.  Free trees are obtained by
   deduplicating rooted trees under the centroid-rooted AHU canonical
   form. *)

module Graph = Glql_graph.Graph

type rooted = Node of rooted list

let rec size (Node children) = 1 + List.fold_left (fun acc c -> acc + size c) 0 children

let rec canon_rooted (Node children) =
  let parts = List.map canon_rooted children in
  "(" ^ String.concat "" (List.sort compare parts) ^ ")"

(* rooted_by_size.(n) lists all rooted trees with exactly n vertices. *)
let rooted_by_size =
  let cache = Hashtbl.create 16 in
  let rec trees n =
    match Hashtbl.find_opt cache n with
    | Some ts -> ts
    | None ->
        let result =
          if n = 1 then [| Node [] |]
          else begin
            (* Forests with [total] vertices whose trees are bounded by
               (size, index) <= (bound_size, bound_idx), non-increasing. *)
            let rec forests total bound_size bound_idx =
              if total = 0 then [ [] ]
              else begin
                let acc = ref [] in
                for s = min total bound_size downto 1 do
                  let ts = trees s in
                  let max_idx = if s = bound_size then bound_idx else Array.length ts - 1 in
                  for i = min max_idx (Array.length ts - 1) downto 0 do
                    List.iter
                      (fun rest -> acc := (ts.(i) :: rest) :: !acc)
                      (forests (total - s) s i)
                  done
                done;
                !acc
              end
            in
            forests (n - 1) (n - 1) max_int
            |> List.map (fun children -> Node children)
            |> Array.of_list
          end
        in
        Hashtbl.add cache n result;
        result
  in
  trees

let rooted_trees n =
  if n < 1 then invalid_arg "Tree.rooted_trees: n >= 1 required";
  Array.to_list (rooted_by_size n)

(* Convert a rooted tree to an unlabelled graph; vertex 0 is the root and
   children get consecutive ids in DFS order. *)
let to_graph root =
  let edges = ref [] in
  let next = ref 0 in
  let rec go parent (Node children) =
    let id = !next in
    incr next;
    (match parent with Some p -> edges := (p, id) :: !edges | None -> ());
    List.iter (go (Some id)) children
  in
  go None root;
  Graph.unlabelled ~n:!next ~edges:!edges

(* Centroid(s) of a tree graph: the one or two vertices minimising the
   maximum component size after removal. *)
let centroids g =
  let n = Graph.n_vertices g in
  if n = 0 then []
  else begin
    let subtree = Array.make n 1 in
    let order = ref [] in
    let parent = Array.make n (-1) in
    (* Iterative DFS from 0 recording a postorder. *)
    let visited = Array.make n false in
    let stack = ref [ 0 ] in
    visited.(0) <- true;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          order := v :: !order;
          Array.iter
            (fun u ->
              if not visited.(u) then begin
                visited.(u) <- true;
                parent.(u) <- v;
                stack := u :: !stack
              end)
            (Graph.neighbors g v)
    done;
    (* !order is reverse-postorder-ish (preorder reversed): children appear
       before parents when traversed in list order. *)
    List.iter
      (fun v -> if parent.(v) >= 0 then subtree.(parent.(v)) <- subtree.(parent.(v)) + subtree.(v))
      !order;
    let best = ref max_int in
    let who = ref [] in
    for v = 0 to n - 1 do
      let worst = ref (n - subtree.(v)) in
      Array.iter
        (fun u -> if parent.(u) = v then worst := max !worst subtree.(u))
        (Graph.neighbors g v);
      if !worst < !best then begin
        best := !worst;
        who := [ v ]
      end
      else if !worst = !best then who := v :: !who
    done;
    List.sort compare !who
  end

(* AHU canonical string of a tree graph rooted at [root]. *)
let canon_graph_rooted g root =
  let rec go v parent =
    let parts =
      Array.to_list (Graph.neighbors g v)
      |> List.filter (fun u -> u <> parent)
      |> List.map (fun u -> go u v)
    in
    "(" ^ String.concat "" (List.sort compare parts) ^ ")"
  in
  go root (-1)

(* Canonical form of a free tree: minimum AHU string over its centroids. *)
let canon_free g =
  match centroids g with
  | [] -> "()"
  | cs -> List.fold_left (fun acc c -> min acc (canon_graph_rooted g c)) "~" cs

let free_trees n =
  if n < 1 then invalid_arg "Tree.free_trees: n >= 1 required";
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun rt ->
      let g = to_graph rt in
      let key = canon_free g in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some g
      end)
    (rooted_trees n)

let all_free_trees_up_to n =
  List.concat_map free_trees (List.init n (fun i -> i + 1))

let is_tree g =
  Graph.n_vertices g > 0
  && Graph.is_connected g
  && Graph.n_edges g = Graph.n_vertices g - 1
