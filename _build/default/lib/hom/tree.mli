(** Tree enumeration for the homomorphism-count characterisation of colour
    refinement (slide 27). *)

module Graph = Glql_graph.Graph

(** Abstract rooted tree. *)
type rooted = Node of rooted list

val size : rooted -> int

(** Canonical (AHU) string of a rooted tree. *)
val canon_rooted : rooted -> string

(** All rooted trees with exactly [n] vertices, each exactly once.
    Counts: 1, 1, 2, 4, 9, 20, 48, 115, 286 for n = 1..9. *)
val rooted_trees : int -> rooted list

(** Convert to a graph; vertex 0 is the root. *)
val to_graph : rooted -> Graph.t

(** The one or two centroids of a tree graph. *)
val centroids : Graph.t -> int list

(** AHU canonical string of a tree graph rooted at a vertex. *)
val canon_graph_rooted : Graph.t -> int -> string

(** Canonical form of a free tree (minimum over centroid rootings). *)
val canon_free : Graph.t -> string

(** All free (unrooted) trees with exactly [n] vertices, as graphs.
    Counts: 1, 1, 1, 2, 3, 6, 11, 23, 47 for n = 1..9. *)
val free_trees : int -> Graph.t list

(** Free trees of every size from 1 to [n]. *)
val all_free_trees_up_to : int -> Graph.t list

(** Is the graph a (connected) tree? *)
val is_tree : Graph.t -> bool
