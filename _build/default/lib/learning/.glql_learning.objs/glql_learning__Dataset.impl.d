lib/learning/dataset.ml: Array Glql_graph Glql_hom Glql_logic Glql_tensor Glql_util List
