lib/learning/dataset.mli: Glql_graph Glql_logic Glql_util
