lib/learning/erm.ml: Array Dataset Float Glql_gnn Glql_nn Glql_tensor Glql_util List
