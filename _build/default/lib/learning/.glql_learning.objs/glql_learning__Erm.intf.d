lib/learning/erm.mli: Dataset Glql_gnn Glql_nn Glql_tensor Glql_util
