(* Synthetic datasets exercising the three embedding kinds of slides 7-9:

   - graph embeddings: molecule-like graphs with a chemical-flavoured
     activity target (slide 7's antibiotic example);
   - vertex embeddings: a citation-network stand-in built from a
     stochastic block model with noisy community features (slide 8);
   - 2-vertex embeddings: link prediction between community members
     (slide 9).

   The paper's real datasets motivate, not evaluate, so faithful
   substitutes are generators with controllable ground truth (DESIGN.md,
   substitution table). *)

module Rng = Glql_util.Rng
module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Gml = Glql_logic.Gml

type graph_classification = {
  gc_name : string;
  graphs : Graph.t array;
  gc_labels : int array;
  gc_n_classes : int;
  gc_in_dim : int;
}

type node_classification = {
  nc_name : string;
  graph : Graph.t;
  nc_labels : int array;
  train_mask : bool array;
  nc_n_classes : int;
  nc_in_dim : int;
}

type link_prediction = {
  lp_name : string;
  lp_graph : Graph.t;
  pairs : (int * int) array;
  lp_targets : float array;  (* 1.0 = will connect *)
  lp_train_mask : bool array;
  lp_in_dim : int;
}

(* The molecular activity target: a graded-modal-logic property of the
   atom types, i.e. something message passing can in principle learn
   exactly (slide 54). "Active" molecules contain an atom of type 0 with
   at least two neighbours of type 1. *)
let activity_property = Gml.And (Gml.Prop 0, Gml.Diamond (2, Gml.Prop 1))

let molecules rng ~n_graphs ~n_atoms ~n_atom_types =
  let graphs = ref [] in
  let labels = ref [] in
  for _ = 1 to n_graphs do
    let size = max 4 (n_atoms - 2 + Rng.int rng 5) in
    let g, _ = Generators.molecule rng ~n:size ~n_atom_types ~ring_edges:(1 + Rng.int rng 2) in
    let active = Array.exists (fun b -> b) (Gml.eval activity_property g) in
    graphs := g :: !graphs;
    labels := (if active then 1 else 0) :: !labels
  done;
  {
    gc_name = "molecules";
    graphs = Array.of_list (List.rev !graphs);
    gc_labels = Array.of_list (List.rev !labels);
    gc_n_classes = 2;
    gc_in_dim = n_atom_types;
  }

(* Citation stand-in: SBM communities = paper topics; features are the
   one-hot topic with label noise plus random "word" coordinates, so the
   model has to use both features and structure. *)
let citation rng ~n_per_class ~n_classes ~feature_noise ~train_fraction =
  let sizes = Array.make n_classes n_per_class in
  let g, blocks = Generators.sbm rng ~sizes ~p_in:0.20 ~p_out:0.03 ~labelled:false in
  let n = Graph.n_vertices g in
  let n_words = 4 in
  let labels =
    Array.init n (fun v ->
        let topic = Vec.zeros n_classes in
        (* Noisy topic indicator: with probability [feature_noise], a random
           topic is shown instead of the true one. *)
        let shown =
          if Rng.float rng < feature_noise then Rng.int rng n_classes else blocks.(v)
        in
        topic.(shown) <- 1.0;
        Vec.concat [ topic; Vec.init n_words (fun _ -> Rng.float rng) ])
  in
  let g = Graph.with_labels g labels in
  let train_mask = Array.init n (fun _ -> Rng.float rng < train_fraction) in
  {
    nc_name = "citation";
    graph = g;
    nc_labels = blocks;
    train_mask;
    nc_n_classes = n_classes;
    nc_in_dim = n_classes + n_words;
  }

(* Link prediction: pairs of vertices, target 1 when they live in the same
   community (the "will connect" ground truth of slide 9). *)
let links rng ~n_per_class ~n_classes ~n_pairs ~train_fraction =
  let sizes = Array.make n_classes n_per_class in
  let g, blocks = Generators.sbm rng ~sizes ~p_in:0.25 ~p_out:0.04 ~labelled:false in
  let n = Graph.n_vertices g in
  (* Structure-only features: constant 1, so prediction must come from the
     graph topology. *)
  let g = Graph.with_labels g (Array.make n [| 1.0 |]) in
  let pairs =
    Array.init n_pairs (fun _ ->
        let u = Rng.int rng n in
        let v = ref (Rng.int rng n) in
        while !v = u do
          v := Rng.int rng n
        done;
        (u, !v))
  in
  let targets = Array.map (fun (u, v) -> if blocks.(u) = blocks.(v) then 1.0 else 0.0) pairs in
  let train_mask = Array.init n_pairs (fun _ -> Rng.float rng < train_fraction) in
  {
    lp_name = "links";
    lp_graph = g;
    pairs;
    lp_targets = targets;
    lp_train_mask = train_mask;
    lp_in_dim = 1;
  }

(* Regression targets for the approximation experiment (E9, slides 30-31):
   a CR-bounded target (walks of length 2 = sum over v of deg(v)^2) and a
   CR-unbounded one (triangle count). *)
let two_walk_count g =
  let acc = ref 0.0 in
  for v = 0 to Graph.n_vertices g - 1 do
    let d = float_of_int (Graph.degree g v) in
    acc := !acc +. (d *. d)
  done;
  !acc

let triangle_count g = Glql_hom.Count.triangles g

type regression = {
  rg_name : string;
  rg_graphs : Graph.t array;
  rg_targets : float array;
  rg_in_dim : int;
}

let regression_corpus rng ~n_graphs ~generator ~target ~target_name =
  let graphs =
    Array.init n_graphs (fun _ ->
        let g = generator rng in
        Graph.with_labels g (Array.make (Graph.n_vertices g) [| 1.0 |]))
  in
  {
    rg_name = target_name;
    rg_graphs = graphs;
    rg_targets = Array.map target graphs;
    rg_in_dim = 1;
  }

(* Erdos-Renyi corpus with varying density: CR-visible statistics vary, so
   CR-bounded targets are learnable. *)
let er_generator ~n rng = Generators.erdos_renyi rng ~n ~p:(0.2 +. (0.3 *. Rng.float rng))

(* Random d-regular corpus: all graphs are CR-equivalent (same n, same
   degree everywhere, uniform labels), so *no* CR-bounded embedding can
   distinguish them — the negative control for approximation (E9). *)
let regular_generator ~n ~d rng = Generators.random_regular rng ~n ~d
