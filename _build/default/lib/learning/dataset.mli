(** Synthetic datasets for the three embedding kinds of slides 7-9 (see
    DESIGN.md for the substitution rationale). All generation is
    deterministic in the supplied RNG. *)

module Graph = Glql_graph.Graph
module Gml = Glql_logic.Gml

type graph_classification = {
  gc_name : string;
  graphs : Graph.t array;
  gc_labels : int array;
  gc_n_classes : int;
  gc_in_dim : int;
}

type node_classification = {
  nc_name : string;
  graph : Graph.t;
  nc_labels : int array;
  train_mask : bool array;
  nc_n_classes : int;
  nc_in_dim : int;
}

type link_prediction = {
  lp_name : string;
  lp_graph : Graph.t;
  pairs : (int * int) array;
  lp_targets : float array;
  lp_train_mask : bool array;
  lp_in_dim : int;
}

(** The GML property defining molecular "activity" (learnable by MPNNs
    per slide 54). *)
val activity_property : Gml.t

(** Molecule-like graph classification (slide 7). *)
val molecules :
  Glql_util.Rng.t -> n_graphs:int -> n_atoms:int -> n_atom_types:int -> graph_classification

(** Citation-network stand-in for node classification (slide 8). *)
val citation :
  Glql_util.Rng.t ->
  n_per_class:int ->
  n_classes:int ->
  feature_noise:float ->
  train_fraction:float ->
  node_classification

(** Link prediction between community members (slide 9). *)
val links :
  Glql_util.Rng.t ->
  n_per_class:int ->
  n_classes:int ->
  n_pairs:int ->
  train_fraction:float ->
  link_prediction

(** Sum over vertices of degree squared — a CR-bounded regression target. *)
val two_walk_count : Graph.t -> float

(** Triangle count — a CR-unbounded regression target. *)
val triangle_count : Graph.t -> float

type regression = {
  rg_name : string;
  rg_graphs : Graph.t array;
  rg_targets : float array;
  rg_in_dim : int;
}

(** Random-graph corpus with a scalar target (experiment E9). *)
val regression_corpus :
  Glql_util.Rng.t ->
  n_graphs:int ->
  generator:(Glql_util.Rng.t -> Graph.t) ->
  target:(Graph.t -> float) ->
  target_name:string ->
  regression

(** Erdos-Renyi generator with varying density (CR-visible variation). *)
val er_generator : n:int -> Glql_util.Rng.t -> Graph.t

(** Random d-regular generator: the resulting corpus is CR-homogeneous, so
    CR-bounded embeddings cannot separate its members. *)
val regular_generator : n:int -> d:int -> Glql_util.Rng.t -> Graph.t
