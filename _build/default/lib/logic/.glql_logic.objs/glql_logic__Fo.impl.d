lib/logic/fo.ml: Array Glql_graph List Printf
