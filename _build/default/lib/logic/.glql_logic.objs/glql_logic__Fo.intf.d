lib/logic/fo.mli: Glql_graph
