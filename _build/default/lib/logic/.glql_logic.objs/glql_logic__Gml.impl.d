lib/logic/gml.ml: Array Glql_graph Glql_util Printf
