lib/logic/gml.mli: Glql_graph Glql_util
