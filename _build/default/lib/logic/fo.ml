(* First-order logic with counting quantifiers over labelled graphs.

   This is the logic side of the correspondences in slides 51 and 66:
   guarded C2 matches colour refinement, and C^{k+1} (counting logic with
   k+1 variables) matches k-WL.  The evaluator enumerates assignments, so
   it is meant for the small graphs of the test corpora.

   Variables are numbered from 0. *)

module Graph = Glql_graph.Graph

type t =
  | True
  | Lab of int * int           (* Lab (j, x): label component j of x is >= 0.5 *)
  | Edge of int * int          (* Edge (x, y) *)
  | Eq of int * int            (* x = y *)
  | Not of t
  | And of t * t
  | Or of t * t
  | ExistsGeq of int * int * t (* ExistsGeq (k, x, phi): >= k witnesses for x *)

let exists x phi = ExistsGeq (1, x, phi)

let forall x phi = Not (ExistsGeq (1, x, Not phi))

let rec free_vars = function
  | True -> []
  | Lab (_, x) -> [ x ]
  | Edge (x, y) | Eq (x, y) -> if x = y then [ x ] else [ x; y ]
  | Not phi -> free_vars phi
  | And (a, b) | Or (a, b) -> List.sort_uniq compare (free_vars a @ free_vars b)
  | ExistsGeq (_, x, phi) -> List.filter (fun y -> y <> x) (free_vars phi)

let rec variables = function
  | True -> []
  | Lab (_, x) -> [ x ]
  | Edge (x, y) | Eq (x, y) -> List.sort_uniq compare [ x; y ]
  | Not phi -> variables phi
  | And (a, b) | Or (a, b) -> List.sort_uniq compare (variables a @ variables b)
  | ExistsGeq (_, x, phi) -> List.sort_uniq compare (x :: variables phi)

(* Width: number of distinct variables used (the k of C^k). *)
let width phi = List.length (variables phi)

let rec to_string = function
  | True -> "T"
  | Lab (j, x) -> Printf.sprintf "P%d(x%d)" j x
  | Edge (x, y) -> Printf.sprintf "E(x%d,x%d)" x y
  | Eq (x, y) -> Printf.sprintf "x%d=x%d" x y
  | Not phi -> "!" ^ to_string phi
  | And (a, b) -> "(" ^ to_string a ^ " & " ^ to_string b ^ ")"
  | Or (a, b) -> "(" ^ to_string a ^ " | " ^ to_string b ^ ")"
  | ExistsGeq (k, x, phi) -> Printf.sprintf "E>=%d x%d.%s" k x (to_string phi)

(* [eval phi g env] with [env] an assignment array indexed by variable.
   Unassigned variables may hold any value as long as they do not occur
   free. *)
let rec eval phi g (env : int array) =
  match phi with
  | True -> true
  | Lab (j, x) ->
      let l = Graph.label g env.(x) in
      j < Array.length l && l.(j) >= 0.5
  | Edge (x, y) -> Graph.has_edge g env.(x) env.(y)
  | Eq (x, y) -> env.(x) = env.(y)
  | Not phi -> not (eval phi g env)
  | And (a, b) -> eval a g env && eval b g env
  | Or (a, b) -> eval a g env || eval b g env
  | ExistsGeq (k, x, phi) ->
      let saved = env.(x) in
      let count = ref 0 in
      let v = ref 0 in
      let n = Graph.n_vertices g in
      while !count < k && !v < n do
        env.(x) <- !v;
        if eval phi g env then incr count;
        incr v
      done;
      env.(x) <- saved;
      !count >= k

(* Truth table of a unary query (one free variable [x]). *)
let eval_unary phi g ~x =
  let max_var =
    List.fold_left max x (variables phi)
  in
  let env = Array.make (max_var + 1) 0 in
  Array.init (Graph.n_vertices g) (fun v ->
      env.(x) <- v;
      eval phi g env)

(* Boolean (sentence) value. *)
let eval_sentence phi g =
  match free_vars phi with
  | [] ->
      if Graph.n_vertices g = 0 then invalid_arg "Fo.eval_sentence: empty graph";
      let max_var = List.fold_left max 0 (0 :: variables phi) in
      eval phi g (Array.make (max_var + 1) 0)
  | _ -> invalid_arg "Fo.eval_sentence: formula has free variables"
