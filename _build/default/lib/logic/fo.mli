(** First-order logic with counting quantifiers (the C^k of slides 51/66),
    evaluated by assignment enumeration on small graphs. *)

module Graph = Glql_graph.Graph

type t =
  | True
  | Lab of int * int  (** [Lab (j, x)]: label component [j] of [x] >= 0.5 *)
  | Edge of int * int
  | Eq of int * int
  | Not of t
  | And of t * t
  | Or of t * t
  | ExistsGeq of int * int * t
      (** [ExistsGeq (k, x, phi)]: at least [k] witnesses for [x]. *)

(** Ordinary existential/universal quantifiers, as counting sugar. *)
val exists : int -> t -> t

val forall : int -> t -> t

val free_vars : t -> int list

(** All variables occurring (free or bound). *)
val variables : t -> int list

(** Number of distinct variables — the [k] of C^k. *)
val width : t -> int

val to_string : t -> string

(** Evaluate under an assignment (indexed by variable number). *)
val eval : t -> Graph.t -> int array -> bool

(** Truth table of a unary query with free variable [x]. *)
val eval_unary : t -> Graph.t -> x:int -> bool array

(** Value of a sentence. Raises if free variables remain. *)
val eval_sentence : t -> Graph.t -> bool
