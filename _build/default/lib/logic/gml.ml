(* Graded modal logic (slide 54).

   Unary queries over labelled graphs:

     phi ::= p_j | true | not phi | phi and phi | phi or phi | <>_{>=k} phi

   where p_j holds at a vertex when the j-th label component is >= 0.5
   (labels are one-hot/boolean encodings, slide 6), and <>_{>=k} phi holds
   when at least k neighbours satisfy phi.  Barcelo et al.'s theorem says
   exactly these unary queries are MPNN-expressible; the compiler lives in
   [Glql_gel.Compile_gml] and experiment E6 checks it against this
   evaluator. *)

module Graph = Glql_graph.Graph
module Rng = Glql_util.Rng

type t =
  | Prop of int
  | Top
  | Not of t
  | And of t * t
  | Or of t * t
  | Diamond of int * t  (* Diamond (k, phi): at least k neighbours satisfy phi *)

let rec depth = function
  | Prop _ | Top -> 0
  | Not phi -> depth phi
  | And (a, b) | Or (a, b) -> max (depth a) (depth b)
  | Diamond (_, phi) -> 1 + depth phi

let rec size = function
  | Prop _ | Top -> 1
  | Not phi -> 1 + size phi
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Diamond (_, phi) -> 1 + size phi

let rec to_string = function
  | Prop j -> Printf.sprintf "p%d" j
  | Top -> "T"
  | Not phi -> "!" ^ to_string phi
  | And (a, b) -> "(" ^ to_string a ^ " & " ^ to_string b ^ ")"
  | Or (a, b) -> "(" ^ to_string a ^ " | " ^ to_string b ^ ")"
  | Diamond (k, phi) -> Printf.sprintf "<>%d %s" k (to_string phi)

(* Truth value of every vertex, bottom-up with per-subformula tables. *)
let eval phi g =
  let n = Graph.n_vertices g in
  let rec go = function
    | Top -> Array.make n true
    | Prop j ->
        Array.init n (fun v ->
            let l = Graph.label g v in
            j < Array.length l && l.(j) >= 0.5)
    | Not phi ->
        let t = go phi in
        Array.map not t
    | And (a, b) ->
        let ta = go a and tb = go b in
        Array.init n (fun v -> ta.(v) && tb.(v))
    | Or (a, b) ->
        let ta = go a and tb = go b in
        Array.init n (fun v -> ta.(v) || tb.(v))
    | Diamond (k, phi) ->
        let t = go phi in
        Array.init n (fun v ->
            let c = ref 0 in
            Array.iter (fun u -> if t.(u) then incr c) (Graph.neighbors g v);
            !c >= k)
  in
  go phi

let holds phi g v = (eval phi g).(v)

(* Random formula of the given modal depth over [n_props] propositions.
   Counting thresholds are drawn from [1, max_count]. *)
let random rng ~n_props ~target_depth ~max_count =
  let rec go d =
    if d = 0 then
      match Rng.int rng 2 with
      | 0 -> Prop (Rng.int rng (max 1 n_props))
      | _ -> Top
    else
      match Rng.int rng 5 with
      | 0 -> Not (go d)
      | 1 -> And (go d, go (Rng.int rng (d + 1)))
      | 2 -> Or (go d, go (Rng.int rng (d + 1)))
      | _ -> Diamond (1 + Rng.int rng max_count, go (d - 1))
  in
  (* Force the exact modal depth by wrapping if the draw fell short. *)
  let rec force phi =
    if depth phi >= target_depth then phi
    else force (Diamond (1, phi))
  in
  force (go target_depth)
