(** Graded modal logic (slide 54): the logic characterising the unary
    queries expressible by MPNNs (Barcelo et al., ICLR 2020). Proposition
    [p_j] holds where label component [j] is [>= 0.5]. *)

module Graph = Glql_graph.Graph

type t =
  | Prop of int
  | Top
  | Not of t
  | And of t * t
  | Or of t * t
  | Diamond of int * t
      (** [Diamond (k, phi)]: at least [k] neighbours satisfy [phi]. *)

(** Modal (Diamond-nesting) depth. *)
val depth : t -> int

(** Syntactic size. *)
val size : t -> int

val to_string : t -> string

(** Truth value at every vertex. *)
val eval : t -> Graph.t -> bool array

val holds : t -> Graph.t -> int -> bool

(** Random formula with exactly the given modal depth. *)
val random :
  Glql_util.Rng.t -> n_props:int -> target_depth:int -> max_count:int -> t
