lib/nn/activation.ml: Array Float Glql_tensor
