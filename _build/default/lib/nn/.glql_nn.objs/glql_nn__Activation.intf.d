lib/nn/activation.mli: Glql_tensor
