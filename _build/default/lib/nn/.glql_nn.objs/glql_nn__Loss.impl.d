lib/nn/loss.ml: Array Float Glql_tensor
