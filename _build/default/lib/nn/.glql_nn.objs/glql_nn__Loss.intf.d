lib/nn/loss.mli: Glql_tensor
