lib/nn/mlp.ml: Activation Array Glql_tensor List Param Printf
