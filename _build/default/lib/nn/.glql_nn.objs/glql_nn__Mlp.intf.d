lib/nn/mlp.mli: Activation Glql_tensor Glql_util Param
