lib/nn/optim.ml: Glql_tensor List Param
