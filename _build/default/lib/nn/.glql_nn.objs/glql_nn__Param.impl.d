lib/nn/param.ml: Glql_tensor
