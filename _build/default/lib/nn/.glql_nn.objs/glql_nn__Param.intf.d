lib/nn/param.mli: Glql_tensor
