(* Non-linear activation functions sigma : R -> R (slide 13) together with
   the derivatives needed for backpropagation.  [Trunc_relu] is the
   truncated ReLU min(max(x,0),1) used by the GML-to-MPNN compiler, where
   it computes exact Boolean logic on {0,1} values. *)

type t = Relu | Sigmoid | Tanh | Identity | Sign | Trunc_relu | Leaky_relu

let apply = function
  | Relu -> fun x -> Float.max 0.0 x
  | Sigmoid -> fun x -> 1.0 /. (1.0 +. exp (-.x))
  | Tanh -> tanh
  | Identity -> fun x -> x
  | Sign -> fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0
  | Trunc_relu -> fun x -> Float.min 1.0 (Float.max 0.0 x)
  | Leaky_relu -> fun x -> if x >= 0.0 then x else 0.01 *. x

(* Derivative as a function of the *pre-activation* input. Kinks and jumps
   use a subgradient (0 at the kink), which is the standard choice. *)
let derivative = function
  | Relu -> fun x -> if x > 0.0 then 1.0 else 0.0
  | Sigmoid ->
      fun x ->
        let s = 1.0 /. (1.0 +. exp (-.x)) in
        s *. (1.0 -. s)
  | Tanh ->
      fun x ->
        let t = tanh x in
        1.0 -. (t *. t)
  | Identity -> fun _ -> 1.0
  | Sign -> fun _ -> 0.0
  | Trunc_relu -> fun x -> if x > 0.0 && x < 1.0 then 1.0 else 0.0
  | Leaky_relu -> fun x -> if x >= 0.0 then 1.0 else 0.01

let name = function
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Identity -> "id"
  | Sign -> "sign"
  | Trunc_relu -> "trunc-relu"
  | Leaky_relu -> "leaky-relu"

let apply_vec act v = Array.map (apply act) v

let apply_mat act m = Glql_tensor.Mat.map (apply act) m
