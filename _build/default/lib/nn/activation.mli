(** Non-linear activations sigma : R -> R (slide 13) with derivatives for
    backpropagation. [Trunc_relu] = min(max(x,0),1), the activation the
    GML compiler uses for exact Boolean arithmetic. *)

type t = Relu | Sigmoid | Tanh | Identity | Sign | Trunc_relu | Leaky_relu

val apply : t -> float -> float

(** Derivative at the pre-activation input (subgradient 0 at kinks). *)
val derivative : t -> float -> float

val name : t -> string
val apply_vec : t -> Glql_tensor.Vec.t -> Glql_tensor.Vec.t
val apply_mat : t -> Glql_tensor.Mat.t -> Glql_tensor.Mat.t
