(* Loss functions L : Y^2 -> R (slide 18) with their gradients in the
   prediction argument. Each returns (mean loss over rows, dL/dpred). *)

module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec

(* Least squares (slide 18's example). *)
let mse ~pred ~target =
  if Mat.rows pred <> Mat.rows target || Mat.cols pred <> Mat.cols target then
    invalid_arg "Loss.mse: shape mismatch";
  let n = float_of_int (Mat.rows pred * Mat.cols pred) in
  let loss = ref 0.0 in
  let grad = Mat.zeros (Mat.rows pred) (Mat.cols pred) in
  for i = 0 to Mat.rows pred - 1 do
    for j = 0 to Mat.cols pred - 1 do
      let d = Mat.get pred i j -. Mat.get target i j in
      loss := !loss +. (d *. d);
      Mat.set grad i j (2.0 *. d /. n)
    done
  done;
  (!loss /. n, grad)

(* Cross entropy over logits with integer class labels. *)
let softmax_cross_entropy ~logits ~labels =
  let rows = Mat.rows logits in
  if Array.length labels <> rows then invalid_arg "Loss.softmax_cross_entropy: label count";
  let grad = Mat.zeros rows (Mat.cols logits) in
  let loss = ref 0.0 in
  let inv_n = 1.0 /. float_of_int (max 1 rows) in
  for i = 0 to rows - 1 do
    let p = Vec.softmax (Mat.row logits i) in
    let y = labels.(i) in
    if y < 0 || y >= Array.length p then invalid_arg "Loss.softmax_cross_entropy: bad label";
    loss := !loss -. log (Float.max 1e-12 p.(y));
    for j = 0 to Array.length p - 1 do
      let indicator = if j = y then 1.0 else 0.0 in
      Mat.set grad i j ((p.(j) -. indicator) *. inv_n)
    done
  done;
  (!loss *. inv_n, grad)

(* Binary cross entropy on a single logit column, targets in {0,1}. *)
let binary_cross_entropy ~logits ~targets =
  let rows = Mat.rows logits in
  if Mat.cols logits <> 1 then invalid_arg "Loss.binary_cross_entropy: need 1 column";
  if Array.length targets <> rows then invalid_arg "Loss.binary_cross_entropy: target count";
  let grad = Mat.zeros rows 1 in
  let loss = ref 0.0 in
  let inv_n = 1.0 /. float_of_int (max 1 rows) in
  for i = 0 to rows - 1 do
    let z = Mat.get logits i 0 in
    let p = 1.0 /. (1.0 +. exp (-.z)) in
    let y = targets.(i) in
    loss := !loss -. ((y *. log (Float.max 1e-12 p)) +. ((1.0 -. y) *. log (Float.max 1e-12 (1.0 -. p))));
    Mat.set grad i 0 ((p -. y) *. inv_n)
  done;
  (!loss *. inv_n, grad)

(* Classification accuracy of logits against integer labels. *)
let accuracy ~logits ~labels =
  let rows = Mat.rows logits in
  if rows = 0 then 0.0
  else begin
    let correct = ref 0 in
    for i = 0 to rows - 1 do
      if Vec.argmax (Mat.row logits i) = labels.(i) then incr correct
    done;
    float_of_int !correct /. float_of_int rows
  end
