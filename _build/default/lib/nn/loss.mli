(** Loss functions L : Y^2 -> R (slide 18) with gradients in the
    prediction argument. Each returns (mean loss, dL/dpred). *)

module Mat = Glql_tensor.Mat

(** Least squares. *)
val mse : pred:Mat.t -> target:Mat.t -> float * Mat.t

(** Softmax + cross entropy over logits, one integer label per row. *)
val softmax_cross_entropy : logits:Mat.t -> labels:int array -> float * Mat.t

(** Binary cross entropy on a single logit column; targets in {0,1}. *)
val binary_cross_entropy : logits:Mat.t -> targets:float array -> float * Mat.t

(** Argmax accuracy. *)
val accuracy : logits:Mat.t -> labels:int array -> float
