(* Gradient-descent optimizers (slide 20: "back propagation and gradient
   descent like methods"). [step] consumes the accumulated gradients and
   zeroes them. *)

module Mat = Glql_tensor.Mat

type t =
  | Sgd of { lr : float }
  | Adam of { lr : float; beta1 : float; beta2 : float; eps : float; mutable steps : int }

let sgd ~lr = Sgd { lr }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  Adam { lr; beta1; beta2; eps; steps = 0 }

let step t params =
  match t with
  | Sgd { lr } ->
      List.iter
        (fun (p : Param.t) ->
          Mat.axpy_inplace ~into:p.Param.data (-.lr) p.Param.grad;
          Param.zero_grad p)
        params
  | Adam a ->
      a.steps <- a.steps + 1;
      let t = float_of_int a.steps in
      let bc1 = 1.0 -. (a.beta1 ** t) in
      let bc2 = 1.0 -. (a.beta2 ** t) in
      List.iter
        (fun (p : Param.t) ->
          let m = p.Param.moment1 and v = p.Param.moment2 in
          for i = 0 to Mat.rows m - 1 do
            for j = 0 to Mat.cols m - 1 do
              let g = Mat.get p.Param.grad i j in
              let mi = (a.beta1 *. Mat.get m i j) +. ((1.0 -. a.beta1) *. g) in
              let vi = (a.beta2 *. Mat.get v i j) +. ((1.0 -. a.beta2) *. g *. g) in
              Mat.set m i j mi;
              Mat.set v i j vi;
              let mhat = mi /. bc1 and vhat = vi /. bc2 in
              Mat.set p.Param.data i j
                (Mat.get p.Param.data i j -. (a.lr *. mhat /. (sqrt vhat +. a.eps)))
            done
          done;
          Param.zero_grad p)
        params
