(** Gradient-descent optimizers (slide 20). [step] applies and then zeroes
    the accumulated gradients. *)

type t

val sgd : lr:float -> t
val adam : ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> unit -> t
val step : t -> Param.t list -> unit
