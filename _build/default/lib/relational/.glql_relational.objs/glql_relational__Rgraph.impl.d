lib/relational/rgraph.ml: Array Glql_graph Glql_tensor Glql_util List
