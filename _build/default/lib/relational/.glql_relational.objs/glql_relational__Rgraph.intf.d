lib/relational/rgraph.mli: Glql_graph Glql_tensor Glql_util
