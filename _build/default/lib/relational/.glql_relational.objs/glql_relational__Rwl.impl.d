lib/relational/rwl.ml: Array Buffer Glql_nn Glql_tensor Glql_util Hashtbl List Rgraph
