lib/relational/rwl.mli: Glql_tensor Glql_util Rgraph
