(* Multi-relational graphs (slide 74: "Relational embeddings. Initial work
   by considering multi-relation graphs and analyzing power").

   A relational graph is a vertex-labelled graph whose edges carry one of
   finitely many relation types; equivalently, a knowledge-graph-style
   structure with undirected typed edges. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph

type t = {
  n : int;
  n_relations : int;
  adj : int array array array;  (* adj.(r).(v) = sorted neighbours via relation r *)
  labels : Vec.t array;
  label_dim : int;
}

let n_vertices t = t.n

let n_relations t = t.n_relations

let neighbors t ~relation v =
  if relation < 0 || relation >= t.n_relations then invalid_arg "Rgraph.neighbors: bad relation";
  t.adj.(relation).(v)

let label t v = t.labels.(v)

let label_dim t = t.label_dim

let n_edges t =
  let acc = ref 0 in
  Array.iter (fun per_rel -> Array.iter (fun nb -> acc := !acc + Array.length nb) per_rel) t.adj;
  !acc / 2

let create ~n ~n_relations ~edges ~labels =
  if Array.length labels <> n then invalid_arg "Rgraph.create: |labels| <> n";
  let label_dim = if n = 0 then 0 else Vec.dim labels.(0) in
  Array.iter
    (fun l -> if Vec.dim l <> label_dim then invalid_arg "Rgraph.create: ragged labels")
    labels;
  let sets = Array.init n_relations (fun _ -> Array.make n []) in
  List.iter
    (fun (r, u, v) ->
      if r < 0 || r >= n_relations then invalid_arg "Rgraph.create: bad relation";
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Rgraph.create: vertex out of range";
      if u <> v then begin
        sets.(r).(u) <- v :: sets.(r).(u);
        sets.(r).(v) <- u :: sets.(r).(v)
      end)
    edges;
  let adj =
    Array.map
      (Array.map (fun l ->
           let a = Array.of_list (List.sort_uniq compare l) in
           a))
      sets
  in
  { n; n_relations; adj; labels = Array.map Vec.copy labels; label_dim }

(* View a plain graph as a single-relation structure. *)
let of_graph g =
  let n = Graph.n_vertices g in
  {
    n;
    n_relations = 1;
    adj = [| Array.init n (fun v -> Array.copy (Graph.neighbors g v)) |];
    labels = Array.init n (fun v -> Vec.copy (Graph.label g v));
    label_dim = Graph.label_dim g;
  }

(* Forget the relation types: the union graph. *)
let union_graph t =
  let edges = ref [] in
  for r = 0 to t.n_relations - 1 do
    for v = 0 to t.n - 1 do
      Array.iter (fun u -> if v < u then edges := (v, u) :: !edges) t.adj.(r).(v)
    done
  done;
  Graph.create ~n:t.n ~edges:!edges ~labels:t.labels

let edges t =
  let out = ref [] in
  for r = t.n_relations - 1 downto 0 do
    for v = t.n - 1 downto 0 do
      Array.iter (fun u -> if v < u then out := (r, v, u) :: !out) t.adj.(r).(v)
    done
  done;
  !out

let permute t perm =
  let labels = Array.make t.n [||] in
  for v = 0 to t.n - 1 do
    labels.(perm.(v)) <- t.labels.(v)
  done;
  create ~n:t.n ~n_relations:t.n_relations
    ~edges:(List.map (fun (r, u, v) -> (r, perm.(u), perm.(v))) (edges t))
    ~labels

let random rng ~n ~n_relations ~p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Glql_util.Rng.float rng < p then
        edges := (Glql_util.Rng.int rng n_relations, u, v) :: !edges
    done
  done;
  create ~n ~n_relations ~edges:!edges ~labels:(Array.make n [| 1.0 |])
