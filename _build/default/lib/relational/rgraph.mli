(** Multi-relational (edge-typed) graphs — the knowledge-graph setting of
    slide 74. Edges are undirected and carry a relation type in
    [0 .. n_relations - 1]. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph

type t

(** [create ~n ~n_relations ~edges ~labels] with edges given as
    [(relation, u, v)] triples; self-loops dropped, duplicates merged. *)
val create :
  n:int -> n_relations:int -> edges:(int * int * int) list -> labels:Vec.t array -> t

val n_vertices : t -> int
val n_relations : t -> int
val n_edges : t -> int

(** Sorted neighbours of [v] through [relation]. *)
val neighbors : t -> relation:int -> int -> int array

val label : t -> int -> Vec.t
val label_dim : t -> int

(** Single-relation view of a plain graph. *)
val of_graph : Graph.t -> t

(** Forget relation types. *)
val union_graph : t -> Graph.t

(** Typed edge list [(r, u, v)] with [u < v]. *)
val edges : t -> (int * int * int) list

(** Rename vertices along a permutation. *)
val permute : t -> int array -> t

(** Uniform random typed graph. *)
val random : Glql_util.Rng.t -> n:int -> n_relations:int -> p:float -> t
