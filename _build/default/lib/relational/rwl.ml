(* Relational colour refinement and relational GNNs (slide 74, after
   Barcelo-Galkin-Morris-Orth, "Weisfeiler and Leman Go Relational").

   Relational 1-WL refines a vertex colour with one neighbour-colour
   multiset *per relation type*; the theorem mirrored from the plain case
   says the separation power of R-GCN-style message passing equals this
   refinement — experiment E17 checks both directions on random-weight
   families. *)

module Sig_hash = Glql_util.Sig_hash
module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Activation = Glql_nn.Activation

(* Joint relational colour refinement over several graphs. *)
let run_joint graphs =
  (match graphs with
  | [] -> invalid_arg "Rwl.run_joint: empty"
  | g :: rest ->
      List.iter
        (fun h ->
          if Rgraph.n_relations h <> Rgraph.n_relations g then
            invalid_arg "Rwl.run_joint: relation counts differ")
        rest);
  let interner = Sig_hash.Interner.create () in
  let init g =
    Array.init (Rgraph.n_vertices g) (fun v ->
        Sig_hash.Interner.intern interner ("L" ^ Sig_hash.of_float_vector (Rgraph.label g v)))
  in
  let refine g colors =
    Array.init (Rgraph.n_vertices g) (fun v ->
        let buf = Buffer.create 32 in
        Buffer.add_string buf (string_of_int colors.(v));
        for r = 0 to Rgraph.n_relations g - 1 do
          let nb = Array.map (fun u -> colors.(u)) (Rgraph.neighbors g ~relation:r v) in
          Buffer.add_char buf '|';
          Buffer.add_string buf (Sig_hash.of_int_multiset nb)
        done;
        Sig_hash.Interner.intern interner (Buffer.contents buf))
  in
  let count colorings =
    let seen = Hashtbl.create 64 in
    List.iter (Array.iter (fun c -> Hashtbl.replace seen c ())) colorings;
    Hashtbl.length seen
  in
  let current = ref (List.map init graphs) in
  let c = ref (count !current) in
  let limit = List.fold_left (fun acc g -> acc + Rgraph.n_vertices g) 1 graphs in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < limit do
    let next = List.map2 refine graphs !current in
    let c' = count next in
    current := next;
    incr rounds;
    if c' = !c then continue_ := false else c := c'
  done;
  !current

let graph_signature colors = Sig_hash.of_int_multiset colors

let equivalent_graphs g h =
  match run_joint [ g; h ] with
  | [ cg; ch ] -> graph_signature cg = graph_signature ch
  | _ -> assert false

(* --- R-GCN-style random-weight models ---------------------------------- *)

type layer = { w_self : Mat.t; w_rel : Mat.t array; bias : Vec.t }

type model = { layers : layer list; readout_w : Mat.t }

let random_model rng ~label_dim ~n_relations ~width ~depth ~out_dim =
  let layer din =
    {
      w_self = Mat.gaussian rng din width ~stddev:(1.5 /. sqrt (float_of_int din));
      w_rel =
        Array.init n_relations (fun _ ->
            Mat.gaussian rng din width ~stddev:(1.5 /. sqrt (float_of_int din)));
      bias = Vec.gaussian rng width ~stddev:0.5;
    }
  in
  {
    layers = List.init depth (fun i -> layer (if i = 0 then label_dim else width));
    readout_w = Mat.gaussian rng width out_dim ~stddev:1.0;
  }

(* h'(v) = tanh(h(v) W_self + sum_r sum_{u in N_r(v)} h(u) W_r + b). *)
let vertex_embeddings model g =
  let n = Rgraph.n_vertices g in
  let h = ref (Array.init n (fun v -> Vec.copy (Rgraph.label g v))) in
  List.iter
    (fun layer ->
      let next =
        Array.init n (fun v ->
            let z = Vec.add (Mat.vec_mul !h.(v) layer.w_self) layer.bias in
            Array.iteri
              (fun r w_r ->
                Array.iter
                  (fun u -> Vec.add_inplace ~into:z (Mat.vec_mul !h.(u) w_r))
                  (Rgraph.neighbors g ~relation:r v))
              layer.w_rel;
            Activation.apply_vec Activation.Tanh z)
      in
      h := next)
    model.layers;
  !h

let graph_embedding model g =
  let h = vertex_embeddings model g in
  let pooled = Vec.zeros (Mat.rows model.readout_w) in
  Array.iter (fun v -> Vec.add_inplace ~into:pooled v) h;
  Mat.vec_mul pooled model.readout_w
