(** Relational colour refinement and R-GCN-style models (slide 74): the
    refinement keeps one neighbour multiset per relation type; the claim
    mirrored from the plain setting is rho(R-GNN) = rho(relational 1-WL). *)

module Vec = Glql_tensor.Vec

(** Joint relational colour refinement; stable colours per graph,
    comparable across the list. All graphs must agree on [n_relations]. *)
val run_joint : Rgraph.t list -> int array list

(** Canonical multiset signature of a colour array. *)
val graph_signature : int array -> string

val equivalent_graphs : Rgraph.t -> Rgraph.t -> bool

type model

(** Random-weight R-GCN-style model: per-relation weight matrices, tanh
    updates, sum readout. *)
val random_model :
  Glql_util.Rng.t ->
  label_dim:int ->
  n_relations:int ->
  width:int ->
  depth:int ->
  out_dim:int ->
  model

val vertex_embeddings : model -> Rgraph.t -> Vec.t array
val graph_embedding : model -> Rgraph.t -> Vec.t
