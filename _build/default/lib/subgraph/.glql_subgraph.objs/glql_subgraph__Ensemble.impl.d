lib/subgraph/ensemble.ml: Glql_gel Glql_graph Glql_tensor Glql_util Glql_wl List Policy
