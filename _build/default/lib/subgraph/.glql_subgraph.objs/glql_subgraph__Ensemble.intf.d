lib/subgraph/ensemble.mli: Glql_gel Glql_graph Glql_tensor Policy
