lib/subgraph/kset.ml: Array Glql_graph Glql_tensor Glql_wl Hashtbl List
