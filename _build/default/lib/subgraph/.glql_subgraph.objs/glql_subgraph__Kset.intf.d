lib/subgraph/kset.mli: Glql_graph
