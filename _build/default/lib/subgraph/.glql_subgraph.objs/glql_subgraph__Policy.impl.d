lib/subgraph/policy.ml: Array Fun Glql_graph Glql_tensor List Printf
