lib/subgraph/policy.mli: Glql_graph
