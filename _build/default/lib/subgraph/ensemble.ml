(* Subgraph-ensemble embeddings (slide 71).

   The method's value on G is the multiset, over vertex choices v, of the
   base embedding of policy(G, v).  With colour refinement as the base —
   the exact ceiling of any MPNN base, slide 52 — the ensemble's
   separation power is computed exactly: all transforms of both graphs
   are refined jointly so their stable colours are comparable, and each
   graph's signature is the multiset of its transforms' colour multisets.

   A tensor-level counterpart with a random-weight GNN 101 base is
   provided for consistency checks: the sampled family must never
   separate more than the CR-based ensemble. *)

module Graph = Glql_graph.Graph
module Cr = Glql_wl.Color_refinement
module Sig_hash = Glql_util.Sig_hash
module Vec = Glql_tensor.Vec

(* Joint signatures of a list of graphs under the ensemble with a CR base:
   one canonical string per input graph, comparable across the list. *)
let cr_signatures policy graphs =
  let transform_groups = List.map (Policy.transforms policy) graphs in
  let all = List.concat transform_groups in
  let result = Cr.run_joint all in
  let stable = Cr.stable_colors result in
  (* Split the flat colour list back into per-input-graph groups. *)
  let rec split groups colors =
    match groups with
    | [] -> []
    | group :: rest ->
        let k = List.length group in
        let rec take n acc colors =
          if n = 0 then (List.rev acc, colors)
          else
            match colors with
            | c :: cs -> take (n - 1) (c :: acc) cs
            | [] -> assert false
        in
        let mine, others = take k [] colors in
        mine :: split rest others
  in
  let groups = split transform_groups stable in
  List.map
    (fun transform_colors ->
      transform_colors
      |> List.map Cr.graph_signature
      |> List.sort compare
      |> Sig_hash.of_string_list)
    groups

(* Can the ensemble tell the two graphs apart? *)
let equivalent policy g h =
  match cr_signatures policy [ g; h ] with
  | [ a; b ] -> a = b
  | _ -> assert false

(* Tensor-level ensemble with a random-weight GNN 101 base: sum over
   vertex choices of the base graph embedding. The label dimension of the
   transforms depends on the policy (Mark/Ego append a column). *)
let gnn_embedding spec policy g =
  let out = ref None in
  List.iter
    (fun g' ->
      let e = Glql_gel.Compile_gnn.gnn101_graph_forward spec g' in
      match !out with
      | None -> out := Some (Vec.copy e)
      | Some acc -> Vec.add_inplace ~into:acc e)
    (Policy.transforms policy g);
  match !out with
  | Some v -> v
  | None -> invalid_arg "Ensemble.gnn_embedding: empty graph"

(* Input label dimension the GNN base must accept under a policy. *)
let base_in_dim policy g =
  match policy with
  | Policy.Mark | Policy.Ego _ -> Graph.label_dim g + 1
  | Policy.Delete -> Graph.label_dim g
