(** Subgraph-ensemble embeddings (slide 71): the multiset over vertex
    choices of a base embedding of the transformed graph. With a colour
    refinement base the separation power is computed exactly. *)

module Graph = Glql_graph.Graph

(** Canonical per-graph signatures, comparable across the input list. *)
val cr_signatures : Policy.t -> Graph.t list -> string list

(** Does the CR-based ensemble consider the two graphs equivalent? *)
val equivalent : Policy.t -> Graph.t -> Graph.t -> bool

(** Tensor-level ensemble with a random-weight GNN 101 base (sum over
    choices of the base graph embedding). *)
val gnn_embedding : Glql_gel.Compile_gnn.gnn101 -> Policy.t -> Graph.t -> Glql_tensor.Vec.t

(** Label dimension the base model must accept under the policy. *)
val base_in_dim : Policy.t -> Graph.t -> int
