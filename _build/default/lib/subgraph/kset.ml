(* Set-based 2-GNNs (the "k-GNNs" of Morris et al., AAAI 2019 — the
   seminal paper of slide 26, named in the zoo of slide 34).

   The method runs message passing over 2-element vertex *sets*: the
   derived graph has one vertex per unordered pair {u, v}, labelled by the
   isomorphism type of the pair (the multiset of endpoint labels plus the
   adjacency bit), with derived edges between sets sharing exactly one
   vertex. The separation power of the 2-GNN family equals colour
   refinement on this derived graph — computed exactly here, in the same
   style as the subgraph ensembles.

   The multiset of two one-hot endpoint labels is encoded invariantly as
   (l_u + l_v, l_u * l_v): sum and pointwise product determine an
   unordered pair of vectors. *)

module Graph = Glql_graph.Graph
module Vec = Glql_tensor.Vec
module Cr = Glql_wl.Color_refinement

(* The derived 2-set graph. Pairs are ordered (u < v) and indexed
   lexicographically. *)
let two_set_graph g =
  let n = Graph.n_vertices g in
  let index = Hashtbl.create (n * n / 2) in
  let pairs = ref [] in
  let count = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Hashtbl.add index (u, v) !count;
      pairs := (u, v) :: !pairs;
      incr count
    done
  done;
  let pairs = Array.of_list (List.rev !pairs) in
  let labels =
    Array.map
      (fun (u, v) ->
        let lu = Graph.label g u and lv = Graph.label g v in
        Vec.concat
          [ Vec.add lu lv; Vec.mul lu lv; [| (if Graph.has_edge g u v then 1.0 else 0.0) |] ])
      pairs
  in
  let edges = ref [] in
  Array.iteri
    (fun i (u, v) ->
      (* Neighbours: replace one endpoint by any w (sets sharing a vertex).
         Enumerate each derived edge once via i < j. *)
      for w = 0 to n - 1 do
        if w <> u && w <> v then begin
          let j1 = Hashtbl.find index (min u w, max u w) in
          let j2 = Hashtbl.find index (min v w, max v w) in
          if i < j1 then edges := (i, j1) :: !edges;
          if i < j2 then edges := (i, j2) :: !edges
        end
      done)
    pairs;
  Graph.create ~n:(Array.length pairs) ~edges:!edges ~labels

(* Exact separation power of the set-based 2-GNN family: CR-equivalence of
   the derived graphs. *)
let equivalent g h = Cr.equivalent_graphs (two_set_graph g) (two_set_graph h)
