(** Set-based 2-GNNs (Morris et al., AAAI 2019; the "k-GNNs" of slide 34):
    message passing over 2-element vertex sets. Their separation power is
    colour refinement on the derived 2-set graph, computed exactly. *)

module Graph = Glql_graph.Graph

(** The derived graph: unordered pairs as vertices (lexicographic order),
    invariant pair-type labels, edges between sets sharing a vertex. *)
val two_set_graph : Graph.t -> Graph.t

(** Does the set-based 2-GNN family consider the graphs equivalent? *)
val equivalent : Graph.t -> Graph.t -> bool
