(* Subgraph-selection policies (slide 71): the embedding methods between
   MPNN and 2-WL power — ID-aware GNNs, reconstruction GNNs, nested GNNs,
   ordered subgraph aggregation networks — all share one shape: transform
   the graph once per vertex choice, run a base embedding on each
   transform, and aggregate the multiset of results.

   A policy is the transform. *)

module Graph = Glql_graph.Graph
module Dist = Glql_graph.Dist
module Vec = Glql_tensor.Vec

type t =
  | Mark            (* ID-aware: append a 0/1 column marking the chosen vertex *)
  | Delete          (* reconstruction: delete the chosen vertex *)
  | Ego of int      (* nested: radius-r ego network with a marked centre *)

let name = function
  | Mark -> "id-aware (mark)"
  | Delete -> "reconstruction (delete)"
  | Ego r -> Printf.sprintf "nested (ego radius %d)" r

(* Append a marking column that is 1 exactly at [center]. *)
let mark_vertex g center =
  let n = Graph.n_vertices g in
  Graph.with_labels g
    (Array.init n (fun v ->
         Vec.concat [ Graph.label g v; [| (if v = center then 1.0 else 0.0) |] ]))

let apply policy g v =
  match policy with
  | Mark -> mark_vertex g v
  | Delete ->
      let keep = Array.of_list (List.filter (fun u -> u <> v) (List.init (Graph.n_vertices g) Fun.id)) in
      Graph.induced_subgraph g keep
  | Ego r ->
      let sub, center = Dist.ego_net g ~center:v ~radius:r in
      mark_vertex sub center

(* All transforms of a graph, one per vertex choice. *)
let transforms policy g = List.init (Graph.n_vertices g) (apply policy g)
