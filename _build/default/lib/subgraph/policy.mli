(** Subgraph-selection policies (slide 71): per-vertex graph transforms
    shared by ID-aware, reconstruction and nested GNNs. *)

module Graph = Glql_graph.Graph

type t =
  | Mark        (** ID-aware GNNs: mark the chosen vertex with an extra label column. *)
  | Delete      (** Reconstruction GNNs: delete the chosen vertex. *)
  | Ego of int  (** Nested GNNs: radius-r ego net with marked centre. *)

val name : t -> string

(** Transform for the choice of vertex [v]. *)
val apply : t -> Graph.t -> int -> Graph.t

(** One transform per vertex, in vertex order. *)
val transforms : t -> Graph.t -> Graph.t list
