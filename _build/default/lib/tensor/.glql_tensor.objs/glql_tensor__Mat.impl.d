lib/tensor/mat.ml: Array Buffer Float Glql_util List Vec
