lib/tensor/mat.mli: Glql_util Vec
