lib/tensor/vec.ml: Array Float Glql_util Printf String
