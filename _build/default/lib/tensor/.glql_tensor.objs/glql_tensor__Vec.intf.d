lib/tensor/vec.mli: Glql_util
