(* Dense float vectors. A vector is a plain [float array]; this module
   collects the operations the embedding languages and the neural-network
   substrate need, always allocating fresh results unless the name says
   otherwise. *)

type t = float array

let create n x = Array.make n x

let zeros n = Array.make n 0.0

let ones n = Array.make n 1.0

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let get (v : t) i = v.(i)

let set (v : t) i x = v.(i) <- x

let map = Array.map

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.map2: dim mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let mul a b = map2 ( *. ) a b

let scale s = Array.map (fun x -> s *. x)

let add_inplace ~into a =
  if Array.length into <> Array.length a then invalid_arg "Vec.add_inplace";
  for i = 0 to Array.length a - 1 do
    into.(i) <- into.(i) +. a.(i)
  done

let axpy_inplace ~into alpha a =
  if Array.length into <> Array.length a then invalid_arg "Vec.axpy_inplace";
  for i = 0 to Array.length a - 1 do
    into.(i) <- into.(i) +. (alpha *. a.(i))
  done

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: dim mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let sum (v : t) = Array.fold_left ( +. ) 0.0 v

let norm2 v = sqrt (dot v v)

let linf_dist a b =
  let d = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    d := Float.max !d (Float.abs (a.(i) -. b.(i)))
  done;
  !d

let concat vs = Array.concat vs

let max_elt (v : t) =
  if Array.length v = 0 then invalid_arg "Vec.max_elt: empty";
  Array.fold_left Float.max v.(0) v

let argmax (v : t) =
  if Array.length v = 0 then invalid_arg "Vec.argmax: empty";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

let softmax v =
  let m = max_elt v in
  let e = Array.map (fun x -> exp (x -. m)) v in
  let z = sum e in
  Array.map (fun x -> x /. z) e

let gaussian rng n ~stddev =
  Array.init n (fun _ -> stddev *. Glql_util.Rng.gaussian rng)

let equal_approx ?(tol = 1e-9) a b =
  Array.length a = Array.length b && linf_dist a b <= tol

let to_string ?(digits = 4) v =
  let parts = Array.to_list (Array.map (Printf.sprintf "%.*g" digits) v) in
  "[" ^ String.concat "; " parts ^ "]"
