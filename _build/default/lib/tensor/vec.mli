(** Dense float vectors ([float array]) with the operations used by the
    embedding languages and the neural-network substrate. All results are
    freshly allocated unless the function name ends in [_inplace]. *)

type t = float array

val create : int -> float -> t
val zeros : int -> t
val ones : int -> t
val init : int -> (int -> float) -> t
val dim : t -> int
val copy : t -> t
val of_list : float list -> t
val get : t -> int -> float
val set : t -> int -> float -> unit
val map : (float -> float) -> t -> t

(** Pointwise combine; raises on dimension mismatch. *)
val map2 : (float -> float -> float) -> t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t

(** Pointwise (Hadamard) product. *)
val mul : t -> t -> t

val scale : float -> t -> t

(** [add_inplace ~into a] accumulates [a] into [into]. *)
val add_inplace : into:t -> t -> unit

(** [axpy_inplace ~into alpha a] adds [alpha * a] into [into]. *)
val axpy_inplace : into:t -> float -> t -> unit

val dot : t -> t -> float
val sum : t -> float
val norm2 : t -> float

(** L-infinity distance. *)
val linf_dist : t -> t -> float

val concat : t list -> t
val max_elt : t -> float

(** Index of the (first) maximum entry. *)
val argmax : t -> int

(** Numerically stable softmax. *)
val softmax : t -> t

(** I.i.d. centred Gaussian entries with the given standard deviation. *)
val gaussian : Glql_util.Rng.t -> int -> stddev:float -> t

(** Equality up to [tol] in L-infinity (default [1e-9]). *)
val equal_approx : ?tol:float -> t -> t -> bool

val to_string : ?digits:int -> t -> string
