lib/util/rng.mli:
