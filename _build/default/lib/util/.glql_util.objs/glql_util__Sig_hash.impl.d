lib/util/sig_hash.ml: Array Buffer Float Hashtbl List Printf String
