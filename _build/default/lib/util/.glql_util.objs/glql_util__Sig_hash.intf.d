lib/util/sig_hash.mli:
