lib/util/tbl.ml: Array Float List Printf String
