lib/util/tbl.mli:
