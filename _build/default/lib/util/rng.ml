(* SplitMix64: deterministic, splittable pseudo-random generator.

   All randomness in glql flows through this module so that every
   experiment is reproducible bit-for-bit from its seed.  The algorithm
   follows Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* Uniform float in [0, 1): use the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = ref (float t) in
  while !u1 = 0.0 do
    u1 := float t
  done;
  let u2 = float t in
  sqrt (-2.0 *. log !u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Sample [k] distinct elements of [0, n). *)
let sample_without_replacement t ~n ~k =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.sub a 0 k

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
