(** Deterministic SplitMix64 pseudo-random generator.

    Every source of randomness in glql goes through this module, keyed by an
    explicit integer seed, so experiments replay exactly. *)

type t

(** [create seed] is a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** Independent copy sharing the current state. *)
val copy : t -> t

(** Raw 64-bit output; advances the state. *)
val next_int64 : t -> int64

(** [split t] derives an independent generator (and advances [t]).
    Useful for giving each sub-task its own stream. *)
val split : t -> t

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)
val int : t -> int -> int

(** Fair coin. *)
val bool : t -> bool

(** Standard normal deviate (Box-Muller). *)
val gaussian : t -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [sample_without_replacement t ~n ~k] is [k] distinct ints below [n]. *)
val sample_without_replacement : t -> n:int -> k:int -> int array

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a
