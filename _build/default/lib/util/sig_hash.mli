(** Collision-free canonical signatures and a string interner.

    WL refinement and separation-power partitions both reduce structured
    values (multisets of colours, rounded embedding vectors) to dense ids
    comparable across graphs; this module provides the canonical encodings
    and the shared interner. *)

(** Order-sensitive signature of an int list. *)
val of_int_list : int list -> string

(** Order-sensitive signature of an int array. *)
val of_int_array : int array -> string

(** Order-insensitive (multiset) signature; the input is not mutated. *)
val of_int_multiset : int array -> string

(** Join sub-signatures into a composite signature. *)
val of_string_list : string list -> string

(** Signature of a float vector rounded to [decimals] digits (default 6),
    so embeddings equal up to numerical noise intern identically. *)
val of_float_vector : ?decimals:int -> float array -> string

module Interner : sig
  type t

  val create : unit -> t

  (** [intern t key] is the dense id of [key], allocating the next free id
      on first sight. Ids start at 0 and are stable for the interner's
      lifetime. *)
  val intern : t -> string -> int

  (** Number of distinct keys interned so far. *)
  val size : t -> int
end
