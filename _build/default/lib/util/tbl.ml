(* Plain-text table rendering for experiment reports. *)

type t = { headers : string list; rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tbl.add_row: row width differs from header width";
  { t with rows = t.rows @ [ row ] }

let widths t =
  let ncols = List.length t.headers in
  let w = Array.make ncols 0 in
  let feed row = List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row in
  feed t.headers;
  List.iter feed t.rows;
  w

let pad s width = s ^ String.make (width - String.length s) ' '

let render_row w row =
  let cells = List.mapi (fun i cell -> pad cell w.(i)) row in
  "| " ^ String.concat " | " cells ^ " |"

let separator w =
  let dashes = Array.to_list (Array.map (fun n -> String.make n '-') w) in
  "|-" ^ String.concat "-|-" dashes ^ "-|"

let to_string t =
  let w = widths t in
  let lines =
    render_row w t.headers :: separator w :: List.map (render_row w) t.rows
  in
  String.concat "\n" lines

let print t = print_endline (to_string t)

let fmt_float ?(digits = 4) x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" digits x

let fmt_bool b = if b then "yes" else "no"
