(** Minimal aligned ASCII tables (GitHub-Markdown compatible) used by the
    experiment harness to print each reproduced "table" of the paper. *)

type t

(** A table with the given column headers and no rows. *)
val create : headers:string list -> t

(** Append a row; raises if its width differs from the header's. *)
val add_row : t -> string list -> t

(** Render to a markdown-style string. *)
val to_string : t -> string

(** Print to stdout followed by a newline. *)
val print : t -> unit

(** Compact float formatting for table cells. *)
val fmt_float : ?digits:int -> float -> string

(** "yes"/"no". *)
val fmt_bool : bool -> string
