lib/wl/color_refinement.ml: Array Glql_graph Glql_util Hashtbl List Partition
