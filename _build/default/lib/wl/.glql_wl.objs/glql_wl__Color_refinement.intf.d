lib/wl/color_refinement.mli: Glql_graph Partition
