lib/wl/kwl.ml: Array Buffer Glql_graph Glql_util Hashtbl List Partition
