lib/wl/kwl.mli: Glql_graph Partition
