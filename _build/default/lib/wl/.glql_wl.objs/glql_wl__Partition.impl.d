lib/wl/partition.ml: Array Glql_util Hashtbl List Option
