lib/wl/partition.mli:
