lib/wl/quotient.ml: Array Color_refinement Glql_graph Glql_tensor Hashtbl List
