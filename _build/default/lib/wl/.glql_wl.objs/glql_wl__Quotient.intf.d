lib/wl/quotient.mli: Glql_graph Glql_tensor
