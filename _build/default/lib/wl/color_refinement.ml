(* Colour refinement (1-dimensional Weisfeiler-Leman, slide 50).

   Joint runs: all graphs are refined together against one signature
   interner, so colours are comparable across graphs and rounds proceed in
   lockstep until the *joint* partition over all vertices stabilises.
   Because a vertex's refinement key only mentions its own graph, a joint
   run restricted to one graph equals a solo run of that graph — which is
   why comparing stable colourings of a joint run decides CR-equivalence. *)

module Sig_hash = Glql_util.Sig_hash
module Graph = Glql_graph.Graph

type result = {
  graphs : Graph.t list;
  history : int array list list;
  (* [history] is a list of rounds; each round is a list of per-graph colour
     arrays, in the order of [graphs]. Round 0 is the initial colouring. *)
  stable : int array list;
  rounds : int;
}

let initial_colors interner g =
  Array.init (Graph.n_vertices g) (fun v ->
      Sig_hash.Interner.intern interner ("L" ^ Sig_hash.of_float_vector (Graph.label g v)))

let refine_graph interner g colors =
  Array.init (Graph.n_vertices g) (fun v ->
      let nb = Array.map (fun u -> colors.(u)) (Graph.neighbors g v) in
      let key = string_of_int colors.(v) ^ "|" ^ Sig_hash.of_int_multiset nb in
      Sig_hash.Interner.intern interner key)

let joint_color_count colorings =
  let seen = Hashtbl.create 64 in
  List.iter (fun colors -> Array.iter (fun c -> Hashtbl.replace seen c ()) colors) colorings;
  Hashtbl.length seen

let run_joint ?max_rounds graphs =
  let interner = Sig_hash.Interner.create () in
  let current = ref (List.map (initial_colors interner) graphs) in
  let history = ref [ !current ] in
  let count = ref (joint_color_count !current) in
  let rounds = ref 0 in
  let limit =
    match max_rounds with
    | Some m -> m
    | None -> List.fold_left (fun acc g -> acc + Graph.n_vertices g) 1 graphs
  in
  let continue_ = ref true in
  while !continue_ && !rounds < limit do
    let next = List.map2 (refine_graph interner) graphs !current in
    let count' = joint_color_count next in
    current := next;
    history := next :: !history;
    incr rounds;
    if count' = !count then continue_ := false else count := count'
  done;
  { graphs; history = List.rev !history; stable = !current; rounds = !rounds }

let run ?max_rounds g = run_joint ?max_rounds [ g ]

let stable_colors result = result.stable

let graphs result = result.graphs

let history result = result.history

let rounds result = result.rounds

let graph_signature colors = Sig_hash.of_int_multiset colors

(* Graph-level CR-equivalence: equal stable colour multisets in a joint
   run (slide 50: "a graph gets a colour based on the multiset of colours
   of all its vertices"). *)
let equivalent_graphs g h =
  match (run_joint [ g; h ]).stable with
  | [ cg; ch ] -> graph_signature cg = graph_signature ch
  | _ -> assert false

(* Vertex-level CR-equivalence of (g, v) and (h, w). *)
let equivalent_vertices g v h w =
  match (run_joint [ g; h ]).stable with
  | [ cg; ch ] -> cg.(v) = ch.(w)
  | _ -> assert false

(* Partition a corpus of graphs by CR graph colour. *)
let graph_partition graphs =
  let result = run_joint graphs in
  let sigs = Array.of_list (List.map graph_signature result.stable) in
  Partition.group ~n:(Array.length sigs) (fun i -> sigs.(i))

(* Partition all (graph, vertex) items of a corpus by stable CR colour.
   Items are ordered graph-major: graph 0's vertices first, etc. *)
let vertex_partition graphs =
  let result = run_joint graphs in
  let all = Array.concat (List.map Array.copy result.stable) in
  Partition.group ~n:(Array.length all) (fun i -> string_of_int all.(i))

(* Number of refinement rounds needed to stabilise one graph. *)
let stable_round g = (run g).rounds
