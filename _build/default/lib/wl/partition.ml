(* Partitions of an indexed item set, used to represent the separation
   power rho(F) of an embedding class restricted to a finite corpus
   (slide 24): items are (graph, tuple) pairs; two items are in the same
   class iff no embedding in F separates them. *)

type t = int array

let of_classes classes = Array.copy classes

let size p = Array.length p

let n_classes p =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace seen c ()) p;
  Hashtbl.length seen

(* Canonicalise class ids to first-occurrence order so that partitions that
   induce the same grouping become structurally equal. *)
let normalize p =
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  Array.map
    (fun c ->
      match Hashtbl.find_opt remap c with
      | Some c' -> c'
      | None ->
          let c' = !next in
          incr next;
          Hashtbl.add remap c c';
          c')
    p

let equal p q = Array.length p = Array.length q && normalize p = normalize q

(* [refines p q]: every class of p is contained in a class of q, i.e. p
   separates at least as much as q (rho relation is a subset). *)
let refines p q =
  if Array.length p <> Array.length q then invalid_arg "Partition.refines: size mismatch";
  let rep = Hashtbl.create 16 in
  let ok = ref true in
  Array.iteri
    (fun i cp ->
      match Hashtbl.find_opt rep cp with
      | None -> Hashtbl.add rep cp q.(i)
      | Some cq -> if cq <> q.(i) then ok := false)
    p;
  !ok

let strictly_refines p q = refines p q && not (equal p q)

(* Common refinement: items are together iff together in both. *)
let meet p q =
  if Array.length p <> Array.length q then invalid_arg "Partition.meet: size mismatch";
  let interner = Glql_util.Sig_hash.Interner.create () in
  Array.init (Array.length p) (fun i ->
      Glql_util.Sig_hash.Interner.intern interner
        (string_of_int p.(i) ^ "," ^ string_of_int q.(i)))

(* Build a partition of [n] items from any keying function. *)
let group ~n key =
  let interner = Glql_util.Sig_hash.Interner.create () in
  Array.init n (fun i -> Glql_util.Sig_hash.Interner.intern interner (key i))

let same_class p i j = p.(i) = p.(j)

let classes p =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      Hashtbl.replace tbl c (i :: Option.value ~default:[] (Hashtbl.find_opt tbl c)))
    p;
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) tbl []
  |> List.sort compare
