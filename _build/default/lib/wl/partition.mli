(** Partitions of an indexed item set. The separation power rho(F) of an
    embedding class, restricted to a finite corpus (slide 24), is exactly a
    partition of the corpus items; comparing separation powers is comparing
    partitions by refinement. *)

type t = int array

(** Copy of a class-id array. *)
val of_classes : int array -> t

val size : t -> int
val n_classes : t -> int

(** Rename class ids to first-occurrence order (canonical form). *)
val normalize : t -> t

(** Same grouping, regardless of class-id names. *)
val equal : t -> t -> bool

(** [refines p q]: every [p]-class lies inside a [q]-class; i.e. [p]
    separates at least everything [q] separates. *)
val refines : t -> t -> bool

val strictly_refines : t -> t -> bool

(** Coarsest common refinement. *)
val meet : t -> t -> t

(** [group ~n key] partitions [0..n-1] by equal [key]. *)
val group : n:int -> (int -> string) -> t

val same_class : t -> int -> int -> bool

(** Sorted list of classes, each a sorted list of item indices. *)
val classes : t -> int list list
