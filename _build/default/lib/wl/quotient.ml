(* Colour-refinement quotients — compressed instances for MPNN-bounded
   queries.

   The stable CR colouring is an *equitable partition*: every vertex of
   class c has the same number of neighbours in class d. Message passing
   with shared weights therefore assigns identical features to all
   vertices of a class, so any MPNN-bounded embedding can be evaluated on
   the quotient — classes as vertices, the neighbour-count matrix as
   weighted adjacency, sizes as multiplicities — instead of the full
   graph. This is the database move of answering a query on a compressed
   instance, and the speed-up is |V| / #classes. *)

module Graph = Glql_graph.Graph
module Vec = Glql_tensor.Vec

type t = {
  n_classes : int;
  class_of : int array;          (* vertex -> class id in [0, n_classes) *)
  sizes : int array;             (* class -> number of vertices *)
  weights : int array array;     (* weights.(c).(d) = neighbours in d of a c-vertex *)
  class_labels : Vec.t array;    (* the (shared) label of each class *)
}

let of_graph g =
  let result = Color_refinement.run g in
  let colors = List.hd (Color_refinement.stable_colors result) in
  (* Dense class ids in first-occurrence order. *)
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let class_of =
    Array.map
      (fun c ->
        match Hashtbl.find_opt remap c with
        | Some i -> i
        | None ->
            let i = !next in
            incr next;
            Hashtbl.add remap c i;
            i)
      colors
  in
  let n_classes = !next in
  let sizes = Array.make n_classes 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) class_of;
  let weights = Array.make_matrix n_classes n_classes 0 in
  let representative = Array.make n_classes (-1) in
  for v = 0 to Graph.n_vertices g - 1 do
    if representative.(class_of.(v)) = -1 then begin
      representative.(class_of.(v)) <- v;
      Array.iter
        (fun u ->
          weights.(class_of.(v)).(class_of.(u)) <- weights.(class_of.(v)).(class_of.(u)) + 1)
        (Graph.neighbors g v)
    end
  done;
  let class_labels = Array.map (fun v -> Vec.copy (Graph.label g v)) representative in
  { n_classes; class_of; sizes; weights; class_labels }

(* Verify equitability: every vertex of class c has weights.(c).(d)
   neighbours in class d, for all d — the correctness certificate of the
   compression. *)
let is_equitable g q =
  let ok = ref true in
  for v = 0 to Graph.n_vertices g - 1 do
    let counts = Array.make q.n_classes 0 in
    Array.iter (fun u -> counts.(q.class_of.(u)) <- counts.(q.class_of.(u)) + 1) (Graph.neighbors g v);
    if counts <> q.weights.(q.class_of.(v)) then ok := false
  done;
  !ok

(* Generic message passing on the quotient: [update] receives the class's
   current feature and the weighted sum of neighbouring class features
   (with multiplicities). Returns per-class features after [rounds]. *)
let propagate q ~init ~update ~rounds =
  let h = ref (Array.init q.n_classes (fun c -> init q.class_labels.(c))) in
  for round = 0 to rounds - 1 do
    let prev = !h in
    h :=
      Array.init q.n_classes (fun c ->
          let agg = Vec.zeros (Vec.dim prev.(0)) in
          for d = 0 to q.n_classes - 1 do
            if q.weights.(c).(d) <> 0 then
              Vec.axpy_inplace ~into:agg (float_of_int q.weights.(c).(d)) prev.(d)
          done;
          update round prev.(c) agg)
  done;
  !h

(* Weighted (by class size) sum of per-class vectors: the quotient version
   of a sum readout. *)
let weighted_sum q per_class =
  let out = Vec.zeros (Vec.dim per_class.(0)) in
  Array.iteri (fun c v -> Vec.axpy_inplace ~into:out (float_of_int q.sizes.(c)) v) per_class;
  out

let compression_ratio g q =
  float_of_int (Graph.n_vertices g) /. float_of_int q.n_classes
