(** Colour-refinement quotients: the stable CR colouring is an equitable
    partition, so MPNN-bounded embeddings can be evaluated on the quotient
    (classes, neighbour-count matrix, multiplicities) instead of the full
    graph — query answering on a compressed instance. *)

module Graph = Glql_graph.Graph
module Vec = Glql_tensor.Vec

type t = {
  n_classes : int;
  class_of : int array;
  sizes : int array;
  weights : int array array;
  class_labels : Vec.t array;
}

val of_graph : Graph.t -> t

(** Certificate: every vertex of class [c] has [weights.(c).(d)]
    neighbours in class [d]. *)
val is_equitable : Graph.t -> t -> bool

(** Message passing on the quotient: [update round self agg] gets the
    0-based round, the class feature and the multiplicity-weighted sum of
    neighbour-class features. *)
val propagate :
  t ->
  init:(Vec.t -> Vec.t) ->
  update:(int -> Vec.t -> Vec.t -> Vec.t) ->
  rounds:int ->
  Vec.t array

(** Class-size-weighted sum — the quotient sum readout. *)
val weighted_sum : t -> Vec.t array -> Vec.t

(** [n / #classes]. *)
val compression_ratio : Graph.t -> t -> float
