test/helpers.ml: Alcotest Array Glql_graph Glql_tensor Glql_util Printf QCheck QCheck_alcotest
