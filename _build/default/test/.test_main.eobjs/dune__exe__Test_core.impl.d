test/test_core.ml: Alcotest Array Glql_core Glql_gel Glql_graph Glql_util Glql_wl Helpers List String
