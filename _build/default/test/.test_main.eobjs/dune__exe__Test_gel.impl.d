test/test_gel.ml: Alcotest Array Glql_gel Glql_graph Glql_hom Glql_logic Glql_tensor Glql_util Glql_wl Helpers List String
