test/test_gnn.ml: Alcotest Array Float Glql_gnn Glql_graph Glql_nn Glql_tensor Glql_util Helpers List
