test/test_graph.ml: Alcotest Array Char Glql_graph Glql_util Helpers List QCheck String
