test/test_hom.ml: Alcotest Array Glql_graph Glql_hom Glql_wl Helpers List Printf QCheck
