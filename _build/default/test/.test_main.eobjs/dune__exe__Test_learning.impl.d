test/test_learning.ml: Alcotest Array Float Glql_gnn Glql_graph Glql_learning Glql_logic Glql_nn Glql_util Glql_wl Helpers List
