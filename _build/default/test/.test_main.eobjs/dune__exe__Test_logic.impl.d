test/test_logic.ml: Alcotest Array Glql_graph Glql_logic Glql_util Glql_wl Helpers String
