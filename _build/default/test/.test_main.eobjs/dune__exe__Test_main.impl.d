test/test_main.ml: Alcotest Test_core Test_gel Test_gnn Test_graph Test_hom Test_learning Test_logic Test_nn Test_parser Test_properties Test_relational Test_subgraph Test_tensor Test_util Test_wl
