test/test_nn.ml: Alcotest Float Glql_nn Glql_tensor Glql_util Helpers List QCheck
