test/test_parser.ml: Alcotest Array Glql_gel Glql_graph Glql_tensor Glql_util Helpers List
