test/test_properties.ml: Array Glql_gel Glql_graph Glql_hom Glql_tensor Glql_util Glql_wl Helpers List Printf QCheck
