test/test_relational.ml: Alcotest Array Glql_graph Glql_relational Glql_tensor Glql_util Glql_wl Helpers List QCheck
