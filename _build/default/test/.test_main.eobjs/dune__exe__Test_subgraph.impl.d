test/test_subgraph.ml: Alcotest Array Glql_gel Glql_gnn Glql_graph Glql_subgraph Glql_tensor Glql_util Glql_wl Helpers List
