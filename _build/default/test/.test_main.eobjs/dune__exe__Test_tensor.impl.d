test/test_tensor.ml: Alcotest Array Float Glql_tensor Glql_util Helpers Printf QCheck
