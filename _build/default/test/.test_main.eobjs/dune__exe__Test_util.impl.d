test/test_util.ml: Alcotest Array Float Glql_util Helpers List QCheck String
