test/test_wl.ml: Alcotest Array Fun Glql_gel Glql_graph Glql_nn Glql_tensor Glql_util Glql_wl Helpers List
