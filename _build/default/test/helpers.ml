(* Shared test utilities: QCheck generators for graphs and the glue that
   registers QCheck properties as alcotest cases. *)

module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators

let qtest ?(count = 50) name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary prop)

let case name f = Alcotest.test_case name `Quick f

let check_bool name expected actual = Alcotest.(check bool) name expected actual

let check_int name expected actual = Alcotest.(check int) name expected actual

let check_float name ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) name expected actual

(* Random unlabelled graph described by (seed, n, edge density in %). *)
let graph_arbitrary ?(min_n = 1) ?(max_n = 10) () =
  let gen =
    QCheck.Gen.(
      map3
        (fun seed n density -> (seed, n, density))
        (int_bound 1_000_000) (int_range min_n max_n) (int_range 0 100))
  in
  let print (seed, n, density) = Printf.sprintf "graph(seed=%d,n=%d,density=%d%%)" seed n density in
  QCheck.make ~print gen

let graph_of (seed, n, density) =
  let rng = Rng.create seed in
  Generators.erdos_renyi rng ~n ~p:(float_of_int density /. 100.0)

(* Random labelled graph: colours from a small alphabet, one-hot encoded. *)
let labelled_graph_of ?(n_colors = 3) (seed, n, density) =
  let g = graph_of (seed, n, density) in
  let rng = Rng.create (seed + 7) in
  let colors = Array.init n (fun _ -> Rng.int rng n_colors) in
  Graph.with_one_hot_labels g colors ~n_colors

(* A random permutation of the graph's vertices, derived from the seed. *)
let permutation_of (seed, n, _) = Graph.random_permutation (Rng.create (seed + 13)) n

let vec_approx ?(tol = 1e-9) a b = Glql_tensor.Vec.equal_approx ~tol a b

(* Reset labels to the uniform all-ones labelling. *)
let unlabel g = Graph.with_labels g (Array.make (Graph.n_vertices g) [| 1.0 |])
