(* Tests for glql_core: separation-power toolkit and expressivity audit. *)

open Helpers
module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Partition = Glql_wl.Partition
module Cr = Glql_wl.Color_refinement
module Expr = Glql_gel.Expr
module B = Glql_gel.Builder
module Separation = Glql_core.Separation
module Audit = Glql_core.Audit

let count_family =
  (* One-member family: (n_vertices, n_edges) embedding. *)
  Separation.
    {
      gf_name = "counts";
      members =
        [
          (fun g ->
            [| float_of_int (Graph.n_vertices g); float_of_int (Graph.n_edges g) |]);
        ];
    }

let degree_family =
  Separation.
    {
      vf_name = "degree";
      vmembers =
        [
          (fun g ->
            Array.init (Graph.n_vertices g) (fun v -> [| float_of_int (Graph.degree g v) |]));
        ];
    }

let test_graph_partition () =
  let corpus = [ Generators.cycle 4; Generators.path 4; Generators.cycle 4; Generators.cycle 5 ] in
  let p = Separation.graph_partition count_family corpus in
  check_int "classes" 3 (Partition.n_classes p);
  check_bool "cycles together" true (Partition.same_class p 0 2);
  check_bool "path apart" false (Partition.same_class p 0 1)

let test_vertex_partition () =
  let corpus = [ Generators.star 2 ] in
  let p = Separation.vertex_partition degree_family corpus in
  (* Centre (degree 2) vs two leaves (degree 1). *)
  check_int "classes" 2 (Partition.n_classes p);
  check_bool "leaves together" true (Partition.same_class p 1 2)

let test_separates_graphs () =
  check_bool "separates by size" true
    (Separation.separates_graphs count_family (Generators.cycle 4) (Generators.cycle 5));
  check_bool "same counts not separated" false
    (Separation.separates_graphs count_family (Generators.cycle 4)
       (Graph.unlabelled ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 1) ]))

let test_rounding_tolerance () =
  let noisy_family eps =
    Separation.
      { gf_name = "noisy"; members = [ (fun g -> [| float_of_int (Graph.n_vertices g) +. eps |]) ] }
  in
  (* Both graphs get values differing by less than the rounding step. *)
  let g = Generators.cycle 4 and h = Generators.cycle 4 in
  check_bool "noise ignored" false
    (Separation.separates_graphs ~decimals:3 (noisy_family 1e-7) g h)

let test_compare_partitions () =
  let p = [| 0; 1; 2 |] and q = [| 0; 0; 1 |] in
  (match Separation.compare_partitions ~name_p:"fine" ~name_q:"coarse" p q with
  | [ v ] ->
      check_bool "not equal" false v.Separation.holds;
      check_bool "claim mentions rho" true (String.length v.Separation.claim > 0)
  | _ -> Alcotest.fail "expected one verdict");
  match Separation.compare_partitions ~name_p:"a" ~name_q:"b" p p with
  | [ v ] -> check_bool "equal to itself" true v.Separation.holds
  | _ -> Alcotest.fail "expected one verdict"

let test_bound_of_fragment () =
  check_bool "mpnn -> CR" true (Audit.bound_of_fragment Expr.Frag_mpnn = Audit.B_cr);
  check_bool "gel3 -> 2-FWL" true (Audit.bound_of_fragment (Expr.Frag_gel 3) = Audit.B_kwl 2);
  check_bool "names" true
    (Audit.bound_name Audit.B_cr = "colour refinement (1-WL)"
    && Audit.bound_name (Audit.B_kwl 2) = "2-FWL")

let test_audit_entry () =
  let e = Audit.audit ~architecture:"degree" (B.degree ~x:B.x1 ~y:B.x2) in
  check_bool "fragment" true (e.Audit.fragment = Expr.Frag_mpnn);
  check_int "agg depth" 1 e.Audit.agg_depth;
  check_bool "bound" true (e.Audit.bound = Audit.B_cr)

let test_standard_entries () =
  let entries = Audit.standard_entries (Rng.create 3) ~in_dim:1 in
  check_int "eight architectures" 8 (List.length entries);
  let mpnn_count =
    List.length (List.filter (fun e -> e.Audit.fragment = Expr.Frag_mpnn) entries)
  in
  check_int "six MPNN architectures" 6 mpnn_count

let test_consistency_check () =
  (* The degree expression cannot separate the CR-equivalent pair. *)
  let e = Audit.audit ~architecture:"degree" (B.degree ~x:B.x1 ~y:B.x2) in
  let c6 = Generators.cycle 6 in
  let c33 = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  check_bool "degree consistent" true (Audit.consistent_on_pair e c6 c33);
  (* The triangle counter does separate it. *)
  let t = Audit.audit ~architecture:"triangles" (B.triangles_at_x1 ()) in
  check_bool "triangles separate" false (Audit.consistent_on_pair t c6 c33);
  check_bool "and CR is indeed fooled" true (Cr.equivalent_graphs c6 c33)

let suite =
  ( "core",
    [
      case "graph partition" test_graph_partition;
      case "vertex partition" test_vertex_partition;
      case "separates graphs" test_separates_graphs;
      case "rounding tolerance" test_rounding_tolerance;
      case "compare partitions" test_compare_partitions;
      case "bound of fragment" test_bound_of_fragment;
      case "audit entry" test_audit_entry;
      case "standard entries" test_standard_entries;
      case "consistency check" test_consistency_check;
    ] )
