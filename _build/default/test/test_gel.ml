(* Tests for glql_gel: the embedding language itself — static analysis,
   evaluation, invariance, compilers, normal forms, WL simulations,
   views. *)

open Helpers
module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Cr = Glql_wl.Color_refinement
module Count = Glql_hom.Count
module Gml = Glql_logic.Gml
module Func = Glql_gel.Func
module Agg = Glql_gel.Agg
module Expr = Glql_gel.Expr
module B = Glql_gel.Builder
module Compile_gnn = Glql_gel.Compile_gnn
module Compile_gml = Glql_gel.Compile_gml
module Normal_form = Glql_gel.Normal_form
module Wl_sim = Glql_gel.Wl_sim
module Views = Glql_gel.Views

(* --- Func / Agg -------------------------------------------------------------- *)

let test_func_apply () =
  let f = Func.linear (Mat.of_rows [ [| 2.0 |]; [| 3.0 |] ]) [| 1.0 |] in
  check_bool "linear" true (Func.apply f [ [| 1.0; 1.0 |] ] = [| 6.0 |]);
  let c = Func.concat [ 1; 2 ] in
  check_bool "concat" true (Func.apply c [ [| 1.0 |]; [| 2.0; 3.0 |] ] = [| 1.0; 2.0; 3.0 |]);
  let p = Func.product 2 in
  check_bool "product" true (Func.apply p [ [| 2.0; 3.0 |]; [| 4.0; 5.0 |] ] = [| 8.0; 15.0 |])

let test_func_dim_check () =
  let f = Func.product 2 in
  check_bool "raises" true
    (try
       ignore (Func.apply f [ [| 1.0 |]; [| 1.0; 2.0 |] ]);
       false
     with Invalid_argument _ -> true)

let test_agg_basics () =
  let bag = [ [| 1.0; 2.0 |]; [| 3.0; 0.0 |] ] in
  check_bool "sum" true (Agg.apply (Agg.sum 2) bag = [| 4.0; 2.0 |]);
  check_bool "mean" true (Agg.apply (Agg.mean 2) bag = [| 2.0; 1.0 |]);
  check_bool "max" true (Agg.apply (Agg.max 2) bag = [| 3.0; 2.0 |]);
  check_bool "min" true (Agg.apply (Agg.min 2) bag = [| 1.0; 0.0 |]);
  check_bool "count" true (Agg.apply (Agg.count 2) bag = [| 2.0 |])

let test_agg_empty_bag () =
  check_bool "sum empty" true (Agg.apply (Agg.sum 2) [] = [| 0.0; 0.0 |]);
  check_bool "mean empty" true (Agg.apply (Agg.mean 2) [] = [| 0.0; 0.0 |]);
  check_bool "max empty" true (Agg.apply (Agg.max 2) [] = [| 0.0; 0.0 |]);
  check_bool "count empty" true (Agg.apply (Agg.count 2) [] = [| 0.0 |])

(* --- static analysis ---------------------------------------------------------- *)

let test_static_analysis () =
  let deg = B.degree ~x:B.x1 ~y:B.x2 in
  Alcotest.(check (list int)) "fv" [ 1 ] (Expr.free_vars deg);
  check_int "dim" 1 (Expr.dim deg);
  check_int "width" 2 (Expr.width deg);
  check_int "agg depth" 1 (Expr.agg_depth deg);
  check_bool "guarded" true (Expr.is_mpnn deg);
  let tri = B.triangle_count () in
  Alcotest.(check (list int)) "closed" [] (Expr.free_vars tri);
  check_int "width 3" 3 (Expr.width tri);
  check_bool "not mpnn" false (Expr.is_mpnn tri);
  check_bool "fragment names" true
    (Expr.fragment_name (Expr.fragment tri) = "GEL3"
    && Expr.fragment_name (Expr.fragment deg) = "MPNN")

let test_type_errors () =
  let bad = Expr.Apply (Func.product 2, [ B.const1 1.0; B.const [| 1.0; 2.0 |] ]) in
  check_bool "dim mismatch raises" true
    (try
       ignore (Expr.dim bad);
       false
     with Expr.Type_error _ -> true);
  let bad_agg = Expr.Agg (Agg.sum 2, [ B.x2 ], B.const1 1.0, B.edge B.x1 B.x2) in
  check_bool "agg dim mismatch raises" true
    (try
       ignore (Expr.dim bad_agg);
       false
     with Expr.Type_error _ -> true);
  check_bool "empty binder raises" true
    (try
       ignore (Expr.free_vars (Expr.Agg (Agg.sum 1, [], B.const1 1.0, B.const1 1.0)));
       false
     with Expr.Type_error _ -> true)

let test_n_nodes_shared () =
  let shared = B.degree ~x:B.x1 ~y:B.x2 in
  let e = B.add shared shared in
  (* Sharing counts once: degree has 3 nodes (agg, const, edge) + add. *)
  check_int "dag nodes" 4 (Expr.n_nodes e)

let test_to_string () =
  let s = Expr.to_string (B.degree ~x:B.x1 ~y:B.x2) in
  check_bool "prints" true (String.length s > 5)

(* --- evaluation --------------------------------------------------------------- *)

let test_eval_degree () =
  let g = unlabel (Generators.star 3) in
  let v = Expr.eval_vertexwise g (B.degree ~x:B.x1 ~y:B.x2) in
  check_float "centre" 3.0 v.(0).(0);
  check_float "leaf" 1.0 v.(1).(0)

let test_eval_two_walks () =
  let g = Generators.path 3 in
  let v = Expr.eval_vertexwise g (B.two_walks ~x:B.x1 ~y:B.x2) in
  (* Vertex 0: walks 0-1-0, 0-1-2 => deg sum over neighbours = 2. *)
  check_float "end" 2.0 v.(0).(0);
  check_float "middle" 2.0 v.(1).(0)

let test_eval_edge_and_cmp () =
  let g = Generators.path 2 in
  check_float "edge" 1.0 (Expr.eval_tuple g (B.edge B.x1 B.x2) [| 0; 1 |]).(0);
  check_float "eq diff" 0.0 (Expr.eval_tuple g (B.eq B.x1 B.x2) [| 0; 1 |]).(0);
  check_float "eq same" 1.0 (Expr.eval_tuple g (B.eq B.x1 B.x2) [| 1; 1 |]).(0);
  check_float "neq" 1.0 (Expr.eval_tuple g (B.neq B.x1 B.x2) [| 0; 1 |]).(0);
  (* E(x,x) is always false on simple graphs. *)
  check_float "self edge" 0.0 (Expr.eval_tuple g (B.edge B.x1 B.x1) [| 0 |]).(0)

let test_eval_triangles_at () =
  let g = Generators.complete 4 in
  let e = B.triangles_at_x1 () in
  let v = Expr.eval_vertexwise g e in
  (* Each K4 vertex lies on 3 triangles. *)
  Array.iter (fun row -> check_float "triangles at v" 3.0 row.(0)) v

let prop_triangle_count_matches_bruteforce =
  qtest ~count:25 "GEL3 triangle count = brute force" (graph_arbitrary ~max_n:8 ()) (fun input ->
      let g = graph_of input in
      (Expr.eval_closed g (B.triangle_count ())).(0) = Count.triangles g)

let test_common_neighbors () =
  let g = Generators.complete_bipartite 2 3 in
  let e = B.common_neighbors () in
  (* Two left vertices share all 3 right vertices. *)
  check_float "left pair" 3.0 (Expr.eval_tuple g e [| 0; 1 |]).(0);
  (* A left and a right vertex share none. *)
  check_float "cross pair" 0.0 (Expr.eval_tuple g e [| 0; 2 |]).(0)

let test_global_readout () =
  let g = Generators.cycle 5 in
  let e = B.readout_sum ~x:B.x1 (B.degree ~x:B.x1 ~y:B.x2) in
  check_float "sum of degrees" 10.0 (Expr.eval_closed g e).(0)

let test_mean_max_aggregations () =
  let g = unlabel (Generators.star 2) in
  let mean_deg = B.mean_neighbors ~x:B.x1 ~y:B.x2 (B.degree ~x:B.x2 ~y:B.x1) in
  let v = Expr.eval_vertexwise g mean_deg in
  (* Centre's neighbours have degree 1. *)
  check_float "centre" 1.0 v.(0).(0);
  (* Leaf's only neighbour (the centre) has degree 2. *)
  check_float "leaf" 2.0 v.(1).(0)

let test_eval_closed_rejects_open () =
  check_bool "raises on free vars" true
    (try
       ignore (Expr.eval_closed (Generators.path 2) (B.lab 0 B.x1));
       false
     with Invalid_argument _ -> true)

(* Invariance of the language semantics (slide 11). *)
let prop_gel_invariance =
  qtest ~count:25 "GEL semantics invariant under isomorphism"
    (graph_arbitrary ~max_n:7 ()) (fun input ->
      let g = labelled_graph_of input in
      let perm = permutation_of input in
      let h = Graph.permute g perm in
      let rng = Rng.create 99 in
      let e = Wl_sim.cr_expr rng ~label_dim:3 ~rounds:2 ~dim:4 in
      let vg = Expr.eval_vertexwise g e and vh = Expr.eval_vertexwise h e in
      let ok = ref true in
      Array.iteri (fun v value -> if not (vec_approx ~tol:1e-9 value vh.(perm.(v))) then ok := false) vg;
      !ok)

(* --- compilers ----------------------------------------------------------------- *)

let compare_expr_tensor g expr reference =
  let table = Expr.eval g expr in
  let ok = ref true in
  Array.iteri
    (fun v row -> if not (vec_approx ~tol:1e-7 row (Mat.row reference v)) then ok := false)
    table.Expr.tdata;
  !ok

let prop_gnn101_compiles =
  qtest ~count:15 "GNN101 expression = tensor forward" (graph_arbitrary ~min_n:1 ~max_n:7 ())
    (fun input ->
      let g = labelled_graph_of input in
      let rng = Rng.create 5 in
      let spec = Compile_gnn.random_gnn101 rng ~in_dim:3 ~width:4 ~depth:2 ~out_dim:3 in
      Expr.is_mpnn (Compile_gnn.gnn101_vertex_expr spec)
      && compare_expr_tensor g (Compile_gnn.gnn101_vertex_expr spec)
           (Compile_gnn.gnn101_vertex_forward spec g)
      && vec_approx ~tol:1e-7
           (Expr.eval_closed g (Compile_gnn.gnn101_graph_expr spec))
           (Compile_gnn.gnn101_graph_forward spec g))

let prop_gcn_compiles =
  qtest ~count:15 "GCN expression = tensor forward" (graph_arbitrary ~min_n:1 ~max_n:7 ())
    (fun input ->
      let g = labelled_graph_of input in
      let rng = Rng.create 6 in
      let spec = Compile_gnn.random_gcn rng ~in_dim:3 ~width:4 ~depth:2 in
      Expr.is_mpnn (Compile_gnn.gcn_vertex_expr spec)
      && compare_expr_tensor g (Compile_gnn.gcn_vertex_expr spec)
           (Compile_gnn.gcn_vertex_forward spec g))

let prop_gin_compiles =
  qtest ~count:15 "GIN expression = tensor forward" (graph_arbitrary ~min_n:1 ~max_n:7 ())
    (fun input ->
      let g = labelled_graph_of input in
      let rng = Rng.create 7 in
      let spec = Compile_gnn.random_gin rng ~in_dim:3 ~width:4 ~depth:2 in
      Expr.is_mpnn (Compile_gnn.gin_vertex_expr spec)
      && compare_expr_tensor g (Compile_gnn.gin_vertex_expr spec)
           (Compile_gnn.gin_vertex_forward spec g))

let prop_sage_compiles =
  qtest ~count:10 "SAGE expressions = tensor forward" (graph_arbitrary ~min_n:1 ~max_n:6 ())
    (fun input ->
      let g = labelled_graph_of input in
      List.for_all
        (fun agg ->
          let rng = Rng.create 8 in
          let spec = Compile_gnn.random_sage rng ~in_dim:3 ~width:3 ~depth:2 ~agg in
          Expr.is_mpnn (Compile_gnn.sage_vertex_expr spec)
          && compare_expr_tensor g (Compile_gnn.sage_vertex_expr spec)
               (Compile_gnn.sage_vertex_forward spec g))
        [ Compile_gnn.Sage_sum; Compile_gnn.Sage_mean; Compile_gnn.Sage_max ])

let prop_gat_compiles =
  qtest ~count:10 "GAT expression = tensor forward" (graph_arbitrary ~min_n:1 ~max_n:6 ())
    (fun input ->
      let g = labelled_graph_of input in
      let rng = Rng.create 9 in
      let spec = Compile_gnn.random_gat rng ~in_dim:3 ~width:3 ~depth:2 in
      Expr.is_mpnn (Compile_gnn.gat_vertex_expr spec)
      && compare_expr_tensor g (Compile_gnn.gat_vertex_expr spec)
           (Compile_gnn.gat_vertex_forward spec g))

let prop_gml_compiler_agrees =
  qtest ~count:40 "GML compiler = logic evaluator" (graph_arbitrary ~min_n:1 ~max_n:8 ())
    (fun input ->
      let seed, _, _ = input in
      let g = labelled_graph_of ~n_colors:3 input in
      let phi = Gml.random (Rng.create (seed + 1)) ~n_props:3 ~target_depth:3 ~max_count:3 in
      Compile_gml.agrees phi g)

let test_gml_compiled_is_mpnn () =
  let phi = Gml.Diamond (2, Gml.And (Gml.Prop 0, Gml.Not (Gml.Prop 1))) in
  check_bool "guarded" true (Expr.is_mpnn (Compile_gml.compile phi))

(* --- normal form ----------------------------------------------------------------- *)

let nf_cases rng =
  [
    ("gnn101-1", Compile_gnn.gnn101_vertex_expr (Compile_gnn.random_gnn101 rng ~in_dim:2 ~width:3 ~depth:1 ~out_dim:3));
    ("gnn101-2", Compile_gnn.gnn101_vertex_expr (Compile_gnn.random_gnn101 rng ~in_dim:2 ~width:3 ~depth:2 ~out_dim:3));
    ("gin", Compile_gnn.gin_vertex_expr (Compile_gnn.random_gin rng ~in_dim:2 ~width:3 ~depth:2));
    ("gcn", Compile_gnn.gcn_vertex_expr (Compile_gnn.random_gcn rng ~in_dim:2 ~width:3 ~depth:2));
    ("two-walks", B.two_walks ~x:B.x1 ~y:B.x2);
  ]

let prop_normal_form_preserves_semantics =
  qtest ~count:15 "normal form preserves semantics" (graph_arbitrary ~min_n:1 ~max_n:7 ())
    (fun input ->
      let g = labelled_graph_of ~n_colors:2 input in
      let rng = Rng.create 44 in
      List.for_all
        (fun (_name, e) ->
          let nf = Normal_form.of_vertex_expr e in
          Normal_form.max_deviation nf e g < 1e-9)
        (nf_cases rng))

let test_normal_form_expr_shape () =
  let rng = Rng.create 45 in
  let e =
    Compile_gnn.gnn101_vertex_expr (Compile_gnn.random_gnn101 rng ~in_dim:2 ~width:3 ~depth:2 ~out_dim:3)
  in
  let nf = Normal_form.of_vertex_expr e in
  let nfe = Normal_form.to_expr nf in
  check_bool "normal form is guarded" true (Expr.is_mpnn nfe);
  check_int "two layers per round" (2 * Normal_form.n_rounds nf) (Normal_form.n_layers nf);
  let g = Graph.with_one_hot_labels (Generators.cycle 5) [| 0; 1; 0; 1; 0 |] ~n_colors:2 in
  let a = Expr.eval_vertexwise g nfe in
  let b = Expr.eval_vertexwise g e in
  let ok = ref true in
  Array.iteri (fun i v -> if not (vec_approx ~tol:1e-9 v b.(i)) then ok := false) a;
  check_bool "nf expression evaluates equally" true !ok

let test_separation_step () =
  (* After separation every aggregation value mentions only its bound
     variable; two-walks is the classic mixed example. *)
  let e = B.two_walks ~x:B.x1 ~y:B.x2 in
  let sep = Normal_form.separate e in
  let g = Generators.path 4 in
  let a = Expr.eval_vertexwise g e and b = Expr.eval_vertexwise g sep in
  let ok = ref true in
  Array.iteri (fun i v -> if not (vec_approx v b.(i)) then ok := false) a;
  check_bool "separation preserves value" true !ok

let test_normal_form_rejects_mean () =
  let e = B.mean_neighbors ~x:B.x1 ~y:B.x2 (B.lab 0 B.x2) in
  check_bool "mean unsupported" true
    (try
       ignore (Normal_form.of_vertex_expr e);
       false
     with Normal_form.Unsupported _ -> true)

let test_normal_form_rejects_gel3 () =
  check_bool "triangles-at unsupported (not MPNN)" true
    (try
       ignore (Normal_form.of_vertex_expr (B.triangles_at_x1 ()));
       false
     with Normal_form.Unsupported _ -> true)

(* --- WL simulations ----------------------------------------------------------------- *)

let test_cr_sim_matches_cr_partition () =
  let corpus =
    [
      Generators.cycle 6;
      Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3);
      Generators.path 4;
      unlabel (Generators.star 3);
    ]
  in
  let cr = Cr.vertex_partition corpus in
  let e = Wl_sim.cr_expr (Rng.create 50) ~label_dim:1 ~rounds:6 ~dim:8 in
  let sigs =
    List.concat_map
      (fun g ->
        Array.to_list
          (Array.map (Glql_util.Sig_hash.of_float_vector ~decimals:9) (Expr.eval_vertexwise g e)))
      corpus
  in
  let sim = Glql_wl.Partition.group ~n:(List.length sigs) (List.nth sigs) in
  check_bool "partitions equal" true (Glql_wl.Partition.equal cr sim)

let test_fwl2_sim_verdicts () =
  let e g = Wl_sim.fwl2_expr (Rng.create 51) ~label_dim:(Graph.label_dim g) ~rounds:3 ~dim:6 in
  let sig_of g =
    let table = Expr.eval g (e g) in
    Array.to_list table.Expr.tdata
    |> List.map (Glql_util.Sig_hash.of_float_vector ~decimals:9)
    |> List.sort compare
  in
  let c6 = Generators.cycle 6 in
  let c33 = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  check_bool "separates C6 vs 2C3" false (sig_of c6 = sig_of c33);
  check_bool "fooled by SRG pair" true
    (sig_of (Generators.rook_4x4 ()) = sig_of (Generators.shrikhande ()))

(* --- views ---------------------------------------------------------------------------- *)

let test_views_augment () =
  let g = Generators.complete 3 in
  let g' = Views.augment [ Views.triangle_pattern () ] g in
  check_int "label dim grows" 2 (Graph.label_dim g');
  (* hom(K3 rooted, K3) per vertex = 2 (orderings of the other two). *)
  check_float "rooted triangle homs" 2.0 (Graph.label g' 0).(1)

let test_views_lift_power () =
  let c6 = Generators.cycle 6 in
  let c33 = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  check_bool "plain CR fooled" true (Cr.equivalent_graphs c6 c33);
  check_bool "view separates" false
    (Views.cr_equivalent_with_view [ Views.triangle_pattern () ] c6 c33)



(* --- optimizer --------------------------------------------------------------- *)

module Optimize = Glql_gel.Optimize

let test_constant_folding () =
  let e = B.add (B.const1 2.0) (B.const1 3.0) in
  (match Optimize.constant_fold e with
  | Expr.Const v -> check_float "folded" 5.0 v.(0)
  | _ -> Alcotest.fail "expected a constant");
  (* Unit rewrites. *)
  let x = B.lab 0 B.x1 in
  (match Optimize.constant_fold (B.scale 1.0 x) with
  | Expr.Lab _ -> ()
  | _ -> Alcotest.fail "scale-by-1 not removed")

let test_sharing_reduces_nodes () =
  (* Build the same degree expression twice without sharing. The two
     builds use distinct aggregator closures, which sharing conservatively
     keeps apart (payloads are compared physically); their constant and
     edge children do merge. Reusing one aggregator object shares fully. *)
  let deg () = B.degree ~x:B.x1 ~y:B.x2 in
  let e = B.add (deg ()) (deg ()) in
  let before = Expr.n_nodes e in
  let shared = Optimize.share e in
  check_int "children merged" 5 (Expr.n_nodes shared);
  check_bool "fewer nodes" true (Expr.n_nodes shared < before);
  let th = Agg.sum 1 in
  let deg' () = Expr.Agg (th, [ B.x2 ], B.const1 1.0, B.edge B.x1 B.x2) in
  let e' = B.add (deg' ()) (deg' ()) in
  check_int "fully shared" 4 (Expr.n_nodes (Optimize.share e'))

let prop_optimize_preserves_semantics =
  qtest ~count:20 "optimize preserves semantics" (graph_arbitrary ~min_n:1 ~max_n:6 ())
    (fun input ->
      let g = labelled_graph_of input in
      let rng = Rng.create 77 in
      let exprs =
        [
          Compile_gnn.gnn101_vertex_expr (Compile_gnn.random_gnn101 rng ~in_dim:3 ~width:3 ~depth:2 ~out_dim:3);
          B.two_walks ~x:B.x1 ~y:B.x2;
          B.add (B.degree ~x:B.x1 ~y:B.x2) (B.scale 1.0 (B.degree ~x:B.x1 ~y:B.x2));
        ]
      in
      List.for_all
        (fun e ->
          let e' = Optimize.optimize e in
          let a = Expr.eval_vertexwise g e and b = Expr.eval_vertexwise g e' in
          Expr.n_nodes e' <= Expr.n_nodes e
          && Array.for_all2 (fun u v -> vec_approx ~tol:1e-12 u v) a b)
        exprs)

let test_optimize_keeps_fragment () =
  let e = B.two_walks ~x:B.x1 ~y:B.x2 in
  check_bool "still guarded" true (Expr.is_mpnn (Optimize.optimize e))

let optimizer_cases =
  [
    case "constant folding" test_constant_folding;
    case "sharing reduces nodes" test_sharing_reduces_nodes;
    prop_optimize_preserves_semantics;
    case "optimize keeps fragment" test_optimize_keeps_fragment;
  ]

let suite =
  ( "gel",
    [
      case "func apply" test_func_apply;
      case "func dim check" test_func_dim_check;
      case "agg basics" test_agg_basics;
      case "agg empty bag" test_agg_empty_bag;
      case "static analysis" test_static_analysis;
      case "type errors" test_type_errors;
      case "dag node count" test_n_nodes_shared;
      case "to_string" test_to_string;
      case "eval degree" test_eval_degree;
      case "eval two walks" test_eval_two_walks;
      case "eval edge/cmp" test_eval_edge_and_cmp;
      case "eval triangles at" test_eval_triangles_at;
      prop_triangle_count_matches_bruteforce;
      case "common neighbours" test_common_neighbors;
      case "global readout" test_global_readout;
      case "mean/max aggregation" test_mean_max_aggregations;
      case "eval_closed rejects open" test_eval_closed_rejects_open;
      prop_gel_invariance;
      prop_gnn101_compiles;
      prop_gcn_compiles;
      prop_gin_compiles;
      prop_sage_compiles;
      prop_gat_compiles;
      prop_gml_compiler_agrees;
      case "gml compiled is mpnn" test_gml_compiled_is_mpnn;
      prop_normal_form_preserves_semantics;
      case "normal form shape" test_normal_form_expr_shape;
      case "separation step" test_separation_step;
      case "normal form rejects mean" test_normal_form_rejects_mean;
      case "normal form rejects GEL3" test_normal_form_rejects_gel3;
      case "cr-sim matches CR" test_cr_sim_matches_cr_partition;
      case "fwl2-sim verdicts" test_fwl2_sim_verdicts;
      case "views augment" test_views_augment;
      case "views lift power" test_views_lift_power;
    ]
    @ optimizer_cases )
