(* Tests for glql_gnn: propagation primitives, layers (with gradient
   checks through the graph structure), models and their invariance. *)

open Helpers
module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Propagate = Glql_gnn.Propagate
module Layer = Glql_gnn.Layer
module Model = Glql_gnn.Model
module Param = Glql_nn.Param
module Mlp = Glql_nn.Mlp
module Activation = Glql_nn.Activation

let small_graph () =
  (* Path 0-1-2 plus pendant 1-3. *)
  Graph.unlabelled ~n:4 ~edges:[ (0, 1); (1, 2); (1, 3) ]

let features () = Mat.of_rows [ [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 2.0; 2.0 |]; [| -1.0; 3.0 |] ]

let test_sum_neighbors () =
  let g = small_graph () in
  let out = Propagate.sum_neighbors g (features ()) in
  check_bool "vertex 0 = h1" true (Mat.row out 0 = [| 0.0; 1.0 |]);
  check_bool "vertex 1 = h0+h2+h3" true (Mat.row out 1 = [| 2.0; 5.0 |]);
  check_bool "vertex 2 = h1" true (Mat.row out 2 = [| 0.0; 1.0 |])

let test_mean_neighbors () =
  let g = small_graph () in
  let out = Propagate.mean_neighbors g (features ()) in
  check_bool "vertex 1 mean" true
    (vec_approx (Mat.row out 1) [| 2.0 /. 3.0; 5.0 /. 3.0 |])

let test_mean_isolated () =
  let g = Graph.unlabelled ~n:2 ~edges:[] in
  let out = Propagate.mean_neighbors g (Mat.of_rows [ [| 1.0 |]; [| 2.0 |] ]) in
  check_bool "isolated zero" true (Mat.row out 0 = [| 0.0 |])

let test_max_neighbors () =
  let g = small_graph () in
  let out, arg = Propagate.max_neighbors g (features ()) in
  check_bool "vertex 1 max" true (Mat.row out 1 = [| 2.0; 3.0 |]);
  check_int "argmax col 0" 2 arg.(1).(0);
  check_int "argmax col 1" 3 arg.(1).(1)

let test_sum_self_adjoint () =
  (* <A x, y> = <x, A y> for the undirected adjacency operator. *)
  let g = Generators.petersen () in
  let rng = Rng.create 4 in
  let x = Mat.gaussian rng 10 3 ~stddev:1.0 in
  let y = Mat.gaussian rng 10 3 ~stddev:1.0 in
  let dot a b =
    let acc = ref 0.0 in
    for i = 0 to Mat.rows a - 1 do
      for j = 0 to Mat.cols a - 1 do
        acc := !acc +. (Mat.get a i j *. Mat.get b i j)
      done
    done;
    !acc
  in
  check_float ~eps:1e-9 "self adjoint" (dot (Propagate.sum_neighbors g x) y)
    (dot x (Propagate.sum_neighbors g y));
  check_float ~eps:1e-9 "gcn self adjoint" (dot (Propagate.gcn_neighbors g x) y)
    (dot x (Propagate.gcn_neighbors g y))

let test_mean_adjoint () =
  let g = small_graph () in
  let rng = Rng.create 5 in
  let x = Mat.gaussian rng 4 2 ~stddev:1.0 in
  let y = Mat.gaussian rng 4 2 ~stddev:1.0 in
  let dot a b =
    let acc = ref 0.0 in
    for i = 0 to Mat.rows a - 1 do
      for j = 0 to Mat.cols a - 1 do
        acc := !acc +. (Mat.get a i j *. Mat.get b i j)
      done
    done;
    !acc
  in
  check_float ~eps:1e-9 "mean adjoint" (dot (Propagate.mean_neighbors g x) y)
    (dot x (Propagate.mean_neighbors_backward g y))

(* Scalar loss for gradient checks: weighted sum of the layer output. *)
let layer_loss g layer x =
  let y = Layer.forward g layer x in
  let acc = ref 0.0 in
  for i = 0 to Mat.rows y - 1 do
    for j = 0 to Mat.cols y - 1 do
      acc := !acc +. (Mat.get y i j *. float_of_int (((i * 3) + j) mod 4))
    done
  done;
  !acc

let layer_dout y = Mat.init (Mat.rows y) (Mat.cols y) (fun i j -> float_of_int (((i * 3) + j) mod 4))

let gradient_check_layer name make =
  let g = small_graph () in
  let rng = Rng.create 11 in
  let layer = make rng in
  let x = Mat.gaussian rng 4 2 ~stddev:1.0 in
  let y, cache = Layer.forward_cached g layer x in
  let dx = Layer.backward g layer cache ~dout:(layer_dout y) in
  List.iter
    (fun (p : Param.t) ->
      for i = 0 to Mat.rows p.Param.data - 1 do
        for j = 0 to Mat.cols p.Param.data - 1 do
          let h = 1e-5 in
          let orig = Mat.get p.Param.data i j in
          Mat.set p.Param.data i j (orig +. h);
          let up = layer_loss g layer x in
          Mat.set p.Param.data i j (orig -. h);
          let down = layer_loss g layer x in
          Mat.set p.Param.data i j orig;
          let fd = (up -. down) /. (2.0 *. h) in
          if Float.abs (fd -. Mat.get p.Param.grad i j) > 1e-3 *. (1.0 +. Float.abs fd) then
            Alcotest.failf "%s: param %s grad mismatch (%g vs %g)" name p.Param.name
              (Mat.get p.Param.grad i j) fd
        done
      done)
    (Layer.params layer);
  for i = 0 to Mat.rows x - 1 do
    for j = 0 to Mat.cols x - 1 do
      let h = 1e-5 in
      let orig = Mat.get x i j in
      Mat.set x i j (orig +. h);
      let up = layer_loss g layer x in
      Mat.set x i j (orig -. h);
      let down = layer_loss g layer x in
      Mat.set x i j orig;
      let fd = (up -. down) /. (2.0 *. h) in
      if Float.abs (fd -. Mat.get dx i j) > 1e-3 *. (1.0 +. Float.abs fd) then
        Alcotest.failf "%s: input grad mismatch at (%d,%d): %g vs %g" name i j (Mat.get dx i j) fd
    done
  done

let test_layer_gradients () =
  gradient_check_layer "gnn101" (fun rng -> Layer.gnn101 rng ~din:2 ~dout:3 ~act:Activation.Tanh);
  gradient_check_layer "gcn" (fun rng -> Layer.gcn rng ~din:2 ~dout:3 ~act:Activation.Sigmoid);
  gradient_check_layer "gin" (fun rng -> Layer.gin rng ~din:2 ~dout:3 ~hidden:4 ~eps:0.2);
  gradient_check_layer "sage-sum" (fun rng ->
      Layer.sage rng ~din:2 ~dout:3 ~agg:Layer.Sum ~act:Activation.Tanh);
  gradient_check_layer "sage-mean" (fun rng ->
      Layer.sage rng ~din:2 ~dout:3 ~agg:Layer.Mean ~act:Activation.Tanh);
  gradient_check_layer "sage-max" (fun rng ->
      Layer.sage rng ~din:2 ~dout:3 ~agg:Layer.Max ~act:Activation.Tanh)

let test_gat_forward_only () =
  let rng = Rng.create 3 in
  let layer = Layer.gat rng ~din:2 ~dout:3 ~act:Activation.Identity in
  check_bool "no backward" false (Layer.supports_backward layer);
  let g = small_graph () in
  let y = Layer.forward g layer (features ()) in
  check_int "output shape" 3 (Mat.cols y)

(* Model invariance (slide 11): graph embeddings agree on isomorphic
   graphs; vertex embeddings are equivariant. *)
let make_model rng readout =
  Model.create ~readout
    ~head:(Mlp.create rng ~sizes:[ 4; 3 ] ~act:Activation.Tanh ~out_act:Activation.Identity)
    [
      Layer.gnn101 rng ~din:3 ~dout:4 ~act:Activation.Sigmoid;
      Layer.gin rng ~din:4 ~dout:4 ~hidden:4 ~eps:0.1;
    ]

let prop_graph_embedding_invariant =
  qtest ~count:25 "graph embedding invariant" (graph_arbitrary ~max_n:8 ()) (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.permute g (permutation_of input) in
      let rng = Rng.create 9 in
      List.for_all
        (fun readout ->
          let model = make_model (Glql_util.Rng.copy rng) readout in
          vec_approx ~tol:1e-9 (Model.graph_embedding model g) (Model.graph_embedding model h))
        [ Model.RSum; Model.RMean; Model.RMax ])

let prop_vertex_embedding_equivariant =
  qtest ~count:25 "vertex embedding equivariant" (graph_arbitrary ~max_n:8 ()) (fun input ->
      let g = labelled_graph_of input in
      let perm = permutation_of input in
      let h = Graph.permute g perm in
      let rng = Rng.create 10 in
      let model =
        Model.create [ Layer.gnn101 rng ~din:3 ~dout:4 ~act:Activation.Sigmoid ]
      in
      let eg = Model.vertex_embeddings model g in
      let eh = Model.vertex_embeddings model h in
      let ok = ref true in
      for v = 0 to Graph.n_vertices g - 1 do
        if not (vec_approx ~tol:1e-9 (Mat.row eg v) (Mat.row eh perm.(v))) then ok := false
      done;
      !ok)

(* End-to-end gradient check through model + readout + head. *)
let test_model_graph_gradient () =
  let g = small_graph () in
  let g = Graph.with_one_hot_labels g [| 0; 1; 2; 0 |] ~n_colors:3 in
  List.iter
    (fun readout ->
      let rng = Rng.create 21 in
      let model = make_model rng readout in
      let out, cache = Model.forward_graph_cached model g in
      let dout = Vec.init (Vec.dim out) (fun i -> float_of_int (i + 1)) in
      Model.backward_graph model g cache ~dout;
      let loss () =
        let o = Model.graph_embedding model g in
        let acc = ref 0.0 in
        Array.iteri (fun i x -> acc := !acc +. (x *. float_of_int (i + 1))) o;
        !acc
      in
      List.iter
        (fun (p : Param.t) ->
          for i = 0 to Mat.rows p.Param.data - 1 do
            for j = 0 to Mat.cols p.Param.data - 1 do
              let h = 1e-5 in
              let orig = Mat.get p.Param.data i j in
              Mat.set p.Param.data i j (orig +. h);
              let up = loss () in
              Mat.set p.Param.data i j (orig -. h);
              let down = loss () in
              Mat.set p.Param.data i j orig;
              let fd = (up -. down) /. (2.0 *. h) in
              if Float.abs (fd -. Mat.get p.Param.grad i j) > 1e-3 *. (1.0 +. Float.abs fd) then
                Alcotest.failf "model(%s) param %s grad mismatch (%g vs %g)"
                  (Model.readout_name readout) p.Param.name (Mat.get p.Param.grad i j) fd
            done
          done;
          Param.zero_grad p)
        (Model.params model))
    [ Model.RSum; Model.RMean; Model.RMax ]

let test_initial_features () =
  let g = Graph.with_one_hot_labels (Generators.path 2) [| 1; 0 |] ~n_colors:2 in
  let f = Model.initial_features g in
  check_bool "row 0" true (Mat.row f 0 = [| 0.0; 1.0 |]);
  check_bool "row 1" true (Mat.row f 1 = [| 1.0; 0.0 |])

let test_stock_models () =
  let rng = Rng.create 31 in
  let g = Graph.with_one_hot_labels (Generators.cycle 5) [| 0; 1; 0; 1; 0 |] ~n_colors:2 in
  let gin = Model.gin_classifier rng ~in_dim:2 ~width:6 ~depth:2 ~n_classes:3 in
  check_int "gin logits" 3 (Vec.dim (Model.graph_embedding gin g));
  let gcn = Model.gcn_node_classifier rng ~in_dim:2 ~width:6 ~depth:2 ~n_classes:4 in
  let logits = Model.vertex_embeddings gcn g in
  check_int "gcn rows" 5 (Mat.rows logits);
  check_int "gcn cols" 4 (Mat.cols logits)

let suite =
  ( "gnn",
    [
      case "sum neighbors" test_sum_neighbors;
      case "mean neighbors" test_mean_neighbors;
      case "mean isolated" test_mean_isolated;
      case "max neighbors" test_max_neighbors;
      case "sum/gcn self-adjoint" test_sum_self_adjoint;
      case "mean adjoint" test_mean_adjoint;
      case "layer gradient checks" test_layer_gradients;
      case "gat forward only" test_gat_forward_only;
      prop_graph_embedding_invariant;
      prop_vertex_embedding_equivariant;
      case "model graph gradient" test_model_graph_gradient;
      case "initial features" test_initial_features;
      case "stock models" test_stock_models;
    ] )
