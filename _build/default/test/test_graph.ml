(* Tests for glql_graph: representation, generators, CFI, isomorphism,
   products, graph6. *)

open Helpers
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Iso = Glql_graph.Iso
module Cfi = Glql_graph.Cfi
module Product = Glql_graph.Product
module Graph6 = Glql_graph.Graph6
module Rng = Glql_util.Rng

let test_create_dedup () =
  let g = Graph.unlabelled ~n:3 ~edges:[ (0, 1); (1, 0); (0, 1); (2, 2) ] in
  check_int "edges deduped, self-loops dropped" 1 (Graph.n_edges g);
  check_bool "has edge" true (Graph.has_edge g 0 1);
  check_bool "symmetric" true (Graph.has_edge g 1 0);
  check_bool "no self loop" false (Graph.has_edge g 2 2)

let test_create_bad_edge () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.create: edge (0,5) out of range") (fun () ->
      ignore (Graph.unlabelled ~n:3 ~edges:[ (0, 5) ]))

let test_degrees () =
  let g = Generators.star 4 in
  check_int "centre degree" 4 (Graph.degree g 0);
  check_int "leaf degree" 1 (Graph.degree g 1);
  check_int "max degree" 4 (Graph.max_degree g);
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 4); (4, 1) ] (Graph.degree_histogram g)

let test_edges_sorted () =
  let g = Graph.unlabelled ~n:4 ~edges:[ (3, 2); (1, 0); (2, 0) ] in
  Alcotest.(check (list (pair int int))) "sorted edge list" [ (0, 1); (0, 2); (2, 3) ]
    (Graph.edges g)

let prop_has_edge_symmetric =
  qtest "has_edge symmetric" (graph_arbitrary ()) (fun input ->
      let g = graph_of input in
      let n = Graph.n_vertices g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Graph.has_edge g u v <> Graph.has_edge g v u then ok := false
        done
      done;
      !ok)

let prop_handshake =
  qtest "sum of degrees = 2m" (graph_arbitrary ()) (fun input ->
      let g = graph_of input in
      let sum = ref 0 in
      for v = 0 to Graph.n_vertices g - 1 do
        sum := !sum + Graph.degree g v
      done;
      !sum = 2 * Graph.n_edges g)

let prop_permute_isomorphic =
  qtest "permute yields isomorphic graph" (graph_arbitrary ~min_n:1 ~max_n:8 ()) (fun input ->
      let g = labelled_graph_of input in
      let perm = permutation_of input in
      let h = Graph.permute g perm in
      Iso.is_isomorphism g h perm && Iso.are_isomorphic g h)

let prop_complement_involution =
  qtest "complement involution" (graph_arbitrary ()) (fun input ->
      let g = graph_of input in
      Graph.equal_structure g (Graph.complement (Graph.complement g)))

let test_disjoint_union () =
  let g = Graph.disjoint_union (Generators.cycle 3) (Generators.path 2) in
  check_int "vertices" 5 (Graph.n_vertices g);
  check_int "edges" 4 (Graph.n_edges g);
  check_int "components" 2 (fst (Graph.connected_components g));
  check_bool "no cross edge" false (Graph.has_edge g 0 3)

let test_induced_subgraph () =
  let g = Generators.complete 4 in
  let h = Graph.induced_subgraph g [| 0; 2; 3 |] in
  check_int "vertices" 3 (Graph.n_vertices h);
  check_int "edges" 3 (Graph.n_edges h)

let test_connectivity () =
  check_bool "cycle connected" true (Graph.is_connected (Generators.cycle 5));
  check_bool "union disconnected" false
    (Graph.is_connected (Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3)))

let test_one_hot () =
  let g = Graph.with_one_hot_labels (Generators.path 3) [| 0; 2; 1 |] ~n_colors:3 in
  check_bool "vertex 1 label" true (Graph.label g 1 = [| 0.0; 0.0; 1.0 |]);
  check_int "label dim" 3 (Graph.label_dim g)

(* --- generators --------------------------------------------------------- *)

let test_classic_generators () =
  check_int "cycle edges" 5 (Graph.n_edges (Generators.cycle 5));
  check_int "complete edges" 10 (Graph.n_edges (Generators.complete 5));
  check_int "K_{2,3} edges" 6 (Graph.n_edges (Generators.complete_bipartite 2 3));
  check_int "grid 3x3 edges" 12 (Graph.n_edges (Generators.grid 3 3));
  check_int "petersen edges" 15 (Graph.n_edges (Generators.petersen ()));
  check_int "circulant C8(1,2) edges" 16 (Graph.n_edges (Generators.circulant 8 [ 1; 2 ]))

(* Strongly-regular check: every pair of adjacent vertices has lambda
   common neighbours, every non-adjacent pair mu. *)
let srg_parameters g =
  let n = Graph.n_vertices g in
  let common u v =
    let nu = Array.to_list (Graph.neighbors g u) in
    List.length (List.filter (fun w -> Graph.has_edge g v w) nu)
  in
  let lambdas = ref [] and mus = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Graph.has_edge g u v then lambdas := common u v :: !lambdas
      else mus := common u v :: !mus
    done
  done;
  (List.sort_uniq compare !lambdas, List.sort_uniq compare !mus)

let test_srg_pair () =
  List.iter
    (fun (name, g) ->
      check_int (name ^ " n") 16 (Graph.n_vertices g);
      Alcotest.(check (list (pair int int))) (name ^ " 6-regular") [ (6, 16) ]
        (Graph.degree_histogram g);
      let lambdas, mus = srg_parameters g in
      Alcotest.(check (list int)) (name ^ " lambda=2") [ 2 ] lambdas;
      Alcotest.(check (list int)) (name ^ " mu=2") [ 2 ] mus)
    [ ("rook", Generators.rook_4x4 ()); ("shrikhande", Generators.shrikhande ()) ];
  check_bool "non-isomorphic" false
    (Iso.are_isomorphic (Generators.rook_4x4 ()) (Generators.shrikhande ()))

let test_random_regular () =
  let g = Generators.random_regular (Rng.create 5) ~n:10 ~d:3 in
  Alcotest.(check (list (pair int int))) "3-regular" [ (3, 10) ] (Graph.degree_histogram g)

let test_random_tree () =
  let g = Generators.random_tree (Rng.create 5) ~n:12 in
  check_bool "connected" true (Graph.is_connected g);
  check_int "tree edges" 11 (Graph.n_edges g)

let test_sbm_blocks () =
  let g, blocks = Generators.sbm (Rng.create 5) ~sizes:[| 3; 4 |] ~p_in:1.0 ~p_out:0.0 ~labelled:true in
  check_int "n" 7 (Graph.n_vertices g);
  check_int "two cliques" (3 + 6) (Graph.n_edges g);
  check_int "components" 2 (fst (Graph.connected_components g));
  check_bool "block labels" true (Graph.label g 0 = [| 1.0; 0.0 |]);
  check_int "block of last" 1 blocks.(6)

let test_molecule () =
  let g, atoms = Generators.molecule (Rng.create 5) ~n:10 ~n_atom_types:3 ~ring_edges:2 in
  check_bool "connected" true (Graph.is_connected g);
  check_int "edges = tree + rings" (9 + 2) (Graph.n_edges g);
  check_int "atom count" 10 (Array.length atoms)

(* --- CFI ----------------------------------------------------------------- *)

let test_cfi_size () =
  let k3 = Generators.complete 3 in
  let c = Cfi.build k3 in
  check_int "predicted size" (Cfi.n_vertices_for_base k3) (Graph.n_vertices (Cfi.graph c));
  (* K3: 3 gadgets of degree 2 -> 2 middles + 4 ports each = 18. *)
  check_int "CFI(K3) size" 18 (Graph.n_vertices (Cfi.graph c))

let test_cfi_parity () =
  let k3 = Generators.complete 3 in
  let g0 = Cfi.graph (Cfi.build k3) in
  let g1 = Cfi.graph (Cfi.build ~twisted:[ 0 ] k3) in
  let g2 = Cfi.graph (Cfi.build ~twisted:[ 0; 1 ] k3) in
  let g3 = Cfi.graph (Cfi.build ~twisted:[ 0; 1; 2 ] k3) in
  check_bool "one twist differs" false (Iso.are_isomorphic g0 g1);
  check_bool "two twists isomorphic to none" true (Iso.are_isomorphic g0 g2);
  check_bool "three twists isomorphic to one" true (Iso.are_isomorphic g1 g3)

let test_cfi_regular_structure () =
  (* Over the degree-2 base K3, the untwisted CFI graph splits into the
     even and odd cycle-cover components (2 components); one twist merges
     them into a single doubled cycle — the classic picture. *)
  let k3 = Generators.complete 3 in
  check_int "untwisted components" 2
    (fst (Graph.connected_components (Cfi.graph (Cfi.build k3))));
  check_int "twisted components" 1
    (fst (Graph.connected_components (Cfi.graph (Cfi.build ~twisted:[ 0 ] k3))));
  (* A base of minimum degree 3 yields a connected CFI graph. *)
  check_bool "CFI(K4) connected" true
    (Graph.is_connected (Cfi.graph (Cfi.build (Generators.complete 4))));
  let c = Cfi.build k3 in
  match Cfi.kind c 0 with
  | Cfi.Middle (v, _) -> check_bool "middle of base vertex" true (v >= 0 && v < 3)
  | Cfi.Port _ -> ()

let test_cfi_disconnected_base_rejected () =
  let base = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  Alcotest.check_raises "rejects" (Invalid_argument "Cfi.build: base must be connected") (fun () ->
      ignore (Cfi.build base))

(* --- iso ------------------------------------------------------------------ *)

let test_iso_basic () =
  check_bool "C4 vs P4" false (Iso.are_isomorphic (Generators.cycle 4) (Generators.path 4));
  check_bool "C5 self" true (Iso.are_isomorphic (Generators.cycle 5) (Generators.cycle 5))

let test_iso_labels_matter () =
  let g = Generators.path 2 in
  let h = Graph.with_labels g [| [| 1.0 |]; [| 2.0 |] |] in
  check_bool "labelled differently" false (Iso.are_isomorphic g h)

let prop_iso_shuffle =
  qtest "shuffled copy isomorphic" (graph_arbitrary ~max_n:8 ()) (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.shuffle (Rng.create 77) g in
      match Iso.find_isomorphism g h with
      | Some perm -> Iso.is_isomorphism g h perm
      | None -> false)

let prop_iso_edge_removed =
  qtest "removing an edge breaks isomorphism" (graph_arbitrary ~min_n:3 ~max_n:8 ()) (fun input ->
      let g = graph_of input in
      match Graph.edges g with
      | [] -> QCheck.assume_fail ()
      | (u, v) :: _ ->
          let edges' = List.filter (fun e -> e <> (u, v)) (Graph.edges g) in
          let h = Graph.unlabelled ~n:(Graph.n_vertices g) ~edges:edges' in
          not (Iso.are_isomorphic g h))

(* --- products / graph6 ----------------------------------------------------- *)

let test_products () =
  let c3 = Generators.cycle 3 and k2 = Generators.complete 2 in
  let cart = Product.cartesian c3 k2 in
  check_int "prism vertices" 6 (Graph.n_vertices cart);
  check_int "prism edges" 9 (Graph.n_edges cart);
  Alcotest.(check (list (pair int int))) "prism 3-regular" [ (3, 6) ] (Graph.degree_histogram cart);
  let tens = Product.tensor c3 k2 in
  check_int "tensor vertices" 6 (Graph.n_vertices tens);
  (* C3 x K2 tensor product is C6. *)
  check_bool "tensor C3xK2 ~ C6" true (Iso.are_isomorphic (unlabel tens) (Generators.cycle 6))

let test_graph6_known () =
  (* Petersen's canonical graph6 encoding round-trips. *)
  let g = Generators.petersen () in
  let s = Graph6.encode g in
  let g' = Graph6.decode s in
  check_bool "roundtrip equal structure" true (Graph.equal_structure g g')

let test_graph6_long_form () =
  (* Graphs above 62 vertices use the 4-byte header. *)
  let g = graph_of (424242, 70, 10) in
  let s = Graph6.encode g in
  check_bool "long header" true (s.[0] = Char.chr 126);
  check_bool "roundtrip" true (Graph.equal_structure g (Graph6.decode s))

let test_empty_graph () =
  let g = Graph.unlabelled ~n:0 ~edges:[] in
  check_int "no vertices" 0 (Graph.n_vertices g);
  check_int "no edges" 0 (Graph.n_edges g);
  check_bool "empty connected by convention" true (Graph.is_connected g);
  check_bool "graph6 roundtrip" true (Graph.equal_structure g (Graph6.decode (Graph6.encode g)))

let prop_graph6_roundtrip =
  qtest "graph6 roundtrip" (graph_arbitrary ~min_n:1 ~max_n:20 ()) (fun input ->
      let g = graph_of input in
      Graph.equal_structure g (Graph6.decode (Graph6.encode g)))

let suite =
  ( "graph",
    [
      case "create dedup" test_create_dedup;
      case "create bad edge" test_create_bad_edge;
      case "degrees" test_degrees;
      case "edges sorted" test_edges_sorted;
      prop_has_edge_symmetric;
      prop_handshake;
      prop_permute_isomorphic;
      prop_complement_involution;
      case "disjoint union" test_disjoint_union;
      case "induced subgraph" test_induced_subgraph;
      case "connectivity" test_connectivity;
      case "one-hot labels" test_one_hot;
      case "classic generators" test_classic_generators;
      case "SRG(16,6,2,2) pair" test_srg_pair;
      case "random regular" test_random_regular;
      case "random tree" test_random_tree;
      case "sbm blocks" test_sbm_blocks;
      case "molecule" test_molecule;
      case "CFI size" test_cfi_size;
      case "CFI twist parity" test_cfi_parity;
      case "CFI structure" test_cfi_regular_structure;
      case "CFI disconnected base" test_cfi_disconnected_base_rejected;
      case "iso basics" test_iso_basic;
      case "iso labels" test_iso_labels_matter;
      prop_iso_shuffle;
      prop_iso_edge_removed;
      case "products" test_products;
      case "graph6 petersen" test_graph6_known;
      case "graph6 long form" test_graph6_long_form;
      case "empty graph" test_empty_graph;
      prop_graph6_roundtrip;
    ] )
