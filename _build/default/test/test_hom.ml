(* Tests for glql_hom: tree enumeration and homomorphism counting. *)

open Helpers
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Tree = Glql_hom.Tree
module Count = Glql_hom.Count
module Cr = Glql_wl.Color_refinement

let test_rooted_tree_counts () =
  (* OEIS A000081. *)
  List.iteri
    (fun i expected -> check_int (Printf.sprintf "rooted(%d)" (i + 1)) expected
        (List.length (Tree.rooted_trees (i + 1))))
    [ 1; 1; 2; 4; 9; 20; 48; 115; 286 ]

let test_free_tree_counts () =
  (* OEIS A000055. *)
  List.iteri
    (fun i expected -> check_int (Printf.sprintf "free(%d)" (i + 1)) expected
        (List.length (Tree.free_trees (i + 1))))
    [ 1; 1; 1; 2; 3; 6; 11; 23; 47 ]

let test_free_trees_are_trees () =
  List.iter
    (fun t -> check_bool "is a tree" true (Tree.is_tree t))
    (Tree.all_free_trees_up_to 8)

let test_free_trees_distinct () =
  let canons = List.map Tree.canon_free (Tree.free_trees 8) in
  check_int "pairwise distinct" (List.length canons)
    (List.length (List.sort_uniq compare canons))

let test_centroids () =
  Alcotest.(check (list int)) "path odd" [ 2 ] (Tree.centroids (Generators.path 5));
  Alcotest.(check (list int)) "path even" [ 1; 2 ] (Tree.centroids (Generators.path 4));
  Alcotest.(check (list int)) "star centre" [ 0 ] (Tree.centroids (Generators.star 4))

let test_canon_free_invariant () =
  let p = Generators.path 5 in
  let p' = Graph.permute p [| 4; 2; 0; 1; 3 |] in
  Alcotest.(check string) "permutation invariant" (Tree.canon_free p) (Tree.canon_free p')

let test_is_tree () =
  check_bool "path" true (Tree.is_tree (Generators.path 4));
  check_bool "cycle" false (Tree.is_tree (Generators.cycle 4));
  check_bool "forest" false
    (Tree.is_tree (Graph.disjoint_union (Generators.path 2) (Generators.path 2)))

(* --- hom counting ---------------------------------------------------------- *)

let test_hom_known_values () =
  let p2 = Generators.path 2 and p3 = Generators.path 3 in
  let k4 = Generators.complete 4 in
  check_float "hom(P2, G) = 2|E|" 12.0 (Count.hom p2 k4);
  check_float "hom(P3, K4)" 36.0 (Count.hom p3 k4);
  (* Single vertex pattern counts vertices. *)
  check_float "hom(K1, K4)" 4.0 (Count.hom (Generators.complete 1) k4);
  (* Edgeless target kills edge patterns. *)
  check_float "hom into edgeless" 0.0 (Count.hom p2 (Graph.unlabelled ~n:3 ~edges:[]))

let test_hom_cycles () =
  (* hom(C3, C3) = 6 (automorphisms, homs of C3 into C3 are exactly autos). *)
  check_float "hom(C3, C3)" 6.0 (Count.hom (Generators.cycle 3) (Generators.cycle 3));
  (* hom(C4, K3): closed walks of length 4 in K3 = trace(A^4) = 18. *)
  check_float "hom(C4, K3)" 18.0 (Count.hom (Generators.cycle 4) (Generators.complete 3))

let prop_tree_dp_equals_bruteforce =
  qtest ~count:30 "tree DP = brute force" (graph_arbitrary ~min_n:1 ~max_n:7 ()) (fun input ->
      let g = graph_of input in
      List.for_all
        (fun t -> Count.hom_tree t g = Count.hom_bruteforce t g)
        (Tree.all_free_trees_up_to 5))

let prop_hom_disjoint_union_additive =
  qtest ~count:25 "hom additive over disjoint union"
    QCheck.(pair (graph_arbitrary ~max_n:6 ()) (graph_arbitrary ~max_n:6 ()))
    (fun (i1, i2) ->
      let g = graph_of i1 and h = graph_of i2 in
      List.for_all
        (fun t -> Count.hom t (Graph.disjoint_union g h) = Count.hom t g +. Count.hom t h)
        (Tree.all_free_trees_up_to 4))

let prop_hom_invariant_under_iso =
  qtest ~count:25 "hom invariant under isomorphism" (graph_arbitrary ~max_n:7 ()) (fun input ->
      let g = graph_of input in
      let h = Graph.permute g (permutation_of input) in
      List.for_all (fun t -> Count.hom t g = Count.hom t h) (Tree.all_free_trees_up_to 5))

let test_rooted_hom_vector () =
  let star = Generators.star 3 in
  let p2 = Generators.path 2 in
  let v = Count.rooted_hom_vector p2 ~root:0 star in
  (* Rooted edge at centre: 3 ways; at a leaf: 1 way. *)
  check_float "centre" 3.0 v.(0);
  check_float "leaf" 1.0 v.(1);
  check_float "sum = hom" (Count.hom p2 star) (Array.fold_left ( +. ) 0.0 v)

let test_rooted_hom_vector_any_clique () =
  let rook = Generators.rook_4x4 () and shri = Generators.shrikhande () in
  let k4 = Generators.complete 4 in
  let rook_counts = Count.rooted_hom_vector_any k4 ~root:0 rook in
  let shri_counts = Count.rooted_hom_vector_any k4 ~root:0 shri in
  (* The rook's graph contains K4s (rows/columns); Shrikhande has none. *)
  check_bool "rook has K4s" true (Array.exists (fun c -> c > 0.0) rook_counts);
  check_bool "shrikhande K4-free" true (Array.for_all (fun c -> c = 0.0) shri_counts)

let test_automorphism_counts () =
  check_float "Aut(K3)" 6.0 (Count.automorphism_count (Generators.complete 3));
  check_float "Aut(P3)" 2.0 (Count.automorphism_count (Generators.path 3));
  check_float "Aut(C4)" 8.0 (Count.automorphism_count (Generators.cycle 4));
  check_float "Aut(C5)" 10.0 (Count.automorphism_count (Generators.cycle 5));
  check_float "Aut(star4)" 24.0 (Count.automorphism_count (Generators.star 4))

let test_subgraph_counts () =
  check_float "triangles in K4" 4.0 (Count.subgraph_count (Generators.complete 3) (Generators.complete 4));
  check_float "C4s in K4" 3.0 (Count.subgraph_count (Generators.cycle 4) (Generators.complete 4));
  check_float "edges in petersen" 15.0
    (Count.subgraph_count (Generators.path 2) (Generators.petersen ()))

let test_triangles () =
  check_float "C6" 0.0 (Count.triangles (Generators.cycle 6));
  check_float "K4" 4.0 (Count.triangles (Generators.complete 4));
  check_float "K5" 10.0 (Count.triangles (Generators.complete 5));
  check_float "rook" 32.0 (Count.triangles (Generators.rook_4x4 ()))

let prop_triangles_at_sum =
  qtest ~count:30 "per-vertex triangle counts sum to 3x total"
    (graph_arbitrary ~max_n:9 ()) (fun input ->
      let g = graph_of input in
      let per_vertex = Array.fold_left ( +. ) 0.0 (Count.triangles_at g) in
      per_vertex = 3.0 *. Count.triangles g)

let test_injective_hom () =
  (* Injective homs of P3 into C3: 3! orderings of distinct vertices with
     both edges present = 6. *)
  check_float "inj P3 -> C3" 6.0
    (Count.hom_bruteforce ~injective:true (Generators.path 3) (Generators.cycle 3))

let test_hom_label_compatible () =
  let g = Generators.path 3 in
  (* Only allow pattern vertex 0 to map to graph vertex 1 (the middle). *)
  let compatible pv gv = pv <> 0 || gv = 1 in
  check_float "pinned root" 2.0 (Count.hom ~compatible (Generators.path 2) g)

(* The Dell-Grohe-Rattan direction on random graphs: tree-hom profiles of
   CR-equivalent graphs agree (we test the contrapositive of slide 27). *)
let prop_cr_equiv_implies_tree_homs_equal =
  qtest ~count:20 "CR-equivalent implies equal tree homs"
    (graph_arbitrary ~max_n:7 ()) (fun input ->
      let g = graph_of input in
      let h = Graph.permute g (permutation_of input) in
      (not (Cr.equivalent_graphs g h))
      || Count.equal_profiles (Tree.all_free_trees_up_to 5) g h)

let suite =
  ( "hom",
    [
      case "rooted tree counts" test_rooted_tree_counts;
      case "free tree counts" test_free_tree_counts;
      case "free trees are trees" test_free_trees_are_trees;
      case "free trees distinct" test_free_trees_distinct;
      case "centroids" test_centroids;
      case "canonical form invariant" test_canon_free_invariant;
      case "is_tree" test_is_tree;
      case "hom known values" test_hom_known_values;
      case "hom cycles" test_hom_cycles;
      prop_tree_dp_equals_bruteforce;
      prop_hom_disjoint_union_additive;
      prop_hom_invariant_under_iso;
      case "rooted hom vector" test_rooted_hom_vector;
      case "rooted hom vector K4" test_rooted_hom_vector_any_clique;
      case "automorphism counts" test_automorphism_counts;
      case "subgraph counts" test_subgraph_counts;
      case "triangles" test_triangles;
      prop_triangles_at_sum;
      case "injective homs" test_injective_hom;
      case "compatible predicate" test_hom_label_compatible;
      prop_cr_equiv_implies_tree_homs_equal;
    ] )
