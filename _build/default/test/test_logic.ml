(* Tests for glql_logic: graded modal logic and counting FO. *)

open Helpers
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Gml = Glql_logic.Gml
module Fo = Glql_logic.Fo
module Cr = Glql_wl.Color_refinement
module Rng = Glql_util.Rng

let labelled_path () =
  (* P4 with colours 0,1,1,0 one-hot in 2 dims. *)
  Graph.with_one_hot_labels (Generators.path 4) [| 0; 1; 1; 0 |] ~n_colors:2

let test_gml_props () =
  let g = labelled_path () in
  Alcotest.(check (array bool)) "p0" [| true; false; false; true |] (Gml.eval (Gml.Prop 0) g);
  Alcotest.(check (array bool)) "p1" [| false; true; true; false |] (Gml.eval (Gml.Prop 1) g);
  Alcotest.(check (array bool)) "top" [| true; true; true; true |] (Gml.eval Gml.Top g)

let test_gml_connectives () =
  let g = labelled_path () in
  let both = Gml.And (Gml.Prop 0, Gml.Prop 1) in
  Alcotest.(check (array bool)) "and" [| false; false; false; false |] (Gml.eval both g);
  let either = Gml.Or (Gml.Prop 0, Gml.Prop 1) in
  Alcotest.(check (array bool)) "or" [| true; true; true; true |] (Gml.eval either g);
  Alcotest.(check (array bool)) "not" [| false; true; true; false |]
    (Gml.eval (Gml.Not (Gml.Prop 0)) g)

let test_gml_diamond () =
  let g = labelled_path () in
  (* At least one neighbour satisfying p1: true at 0, 1, 2, 3?
     N(0)={1}: yes. N(1)={0,2}: vertex 2 has p1: yes. N(2)={1,3}: yes.
     N(3)={2}: yes. *)
  Alcotest.(check (array bool)) "diamond1" [| true; true; true; true |]
    (Gml.eval (Gml.Diamond (1, Gml.Prop 1)) g);
  (* At least two neighbours satisfying p1: only vertices with both
     neighbours labelled 1 - none here (1's neighbours are 0 and 2). *)
  Alcotest.(check (array bool)) "diamond2" [| false; false; false; false |]
    (Gml.eval (Gml.Diamond (2, Gml.Prop 1)) g)

let test_gml_degree_formula () =
  (* Diamond(k, Top) = "degree >= k". *)
  let g = unlabel (Generators.star 3) in
  Alcotest.(check (array bool)) "deg >= 3" [| true; false; false; false |]
    (Gml.eval (Gml.Diamond (3, Gml.Top)) g)

let test_gml_depth_size () =
  let phi = Gml.Diamond (2, Gml.And (Gml.Prop 0, Gml.Diamond (1, Gml.Top))) in
  check_int "depth" 2 (Gml.depth phi);
  check_int "size" 5 (Gml.size phi);
  check_bool "printable" true (String.length (Gml.to_string phi) > 0)

let test_gml_random_depth () =
  let rng = Rng.create 3 in
  for d = 1 to 4 do
    let phi = Gml.random rng ~n_props:2 ~target_depth:d ~max_count:2 in
    check_bool "depth reached" true (Gml.depth phi >= d)
  done

(* Invariance (slide 11): GML truth is preserved by isomorphism. *)
let prop_gml_invariant =
  qtest ~count:30 "GML invariant under isomorphism" (graph_arbitrary ~max_n:8 ()) (fun input ->
      let seed, _, _ = input in
      let g = labelled_graph_of ~n_colors:2 input in
      let perm = permutation_of input in
      let h = Graph.permute g perm in
      let phi = Gml.random (Rng.create seed) ~n_props:2 ~target_depth:2 ~max_count:2 in
      let tg = Gml.eval phi g and th = Gml.eval phi h in
      Array.for_all (fun v -> tg.(v) = th.(perm.(v))) (Array.init (Graph.n_vertices g) (fun i -> i)))

(* The guarded-C2 connection (slide 51): CR-equivalent vertices satisfy the
   same GML formulas. *)
let prop_gml_bounded_by_cr =
  qtest ~count:25 "CR-equivalent vertices agree on GML"
    (graph_arbitrary ~min_n:2 ~max_n:8 ()) (fun input ->
      let seed, _, _ = input in
      let g = labelled_graph_of ~n_colors:2 input in
      let result = Cr.run g in
      match Cr.stable_colors result with
      | [ colors ] ->
          let phi = Gml.random (Rng.create (seed * 3)) ~n_props:2 ~target_depth:3 ~max_count:2 in
          let truth = Gml.eval phi g in
          let ok = ref true in
          let n = Graph.n_vertices g in
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              if colors.(u) = colors.(v) && truth.(u) <> truth.(v) then ok := false
            done
          done;
          !ok
      | _ -> false)

(* --- counting FO ------------------------------------------------------------ *)

let test_fo_degree () =
  (* "x0 has at least 2 neighbours": E>=2 x1. E(x0,x1). *)
  let phi = Fo.ExistsGeq (2, 1, Fo.Edge (0, 1)) in
  let g = unlabel (Generators.star 3) in
  Alcotest.(check (array bool)) "degree >= 2" [| true; false; false; false |]
    (Fo.eval_unary phi g ~x:0)

let test_fo_triangle () =
  (* "x0 lies on a triangle" with three variables. *)
  let phi =
    Fo.exists 1
      (Fo.exists 2
         (Fo.And (Fo.Edge (0, 1), Fo.And (Fo.Edge (1, 2), Fo.Edge (2, 0)))))
  in
  let tri_plus_tail = Graph.unlabelled ~n:4 ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  Alcotest.(check (array bool)) "triangle membership" [| true; true; true; false |]
    (Fo.eval_unary phi tri_plus_tail ~x:0);
  check_int "width 3" 3 (Fo.width phi)

let test_fo_sentence () =
  (* "There exist at least 2 vertices of degree >= 2". *)
  let phi = Fo.ExistsGeq (2, 0, Fo.ExistsGeq (2, 1, Fo.Edge (0, 1))) in
  check_bool "true on C3" true (Fo.eval_sentence phi (Generators.cycle 3));
  check_bool "false on star3" false (Fo.eval_sentence phi (unlabel (Generators.star 3)))

let test_fo_equality_and_labels () =
  let g = Graph.with_one_hot_labels (Generators.path 2) [| 0; 1 |] ~n_colors:2 in
  (* "Some vertex different from x0 has label 1". *)
  let phi = Fo.exists 1 (Fo.And (Fo.Not (Fo.Eq (0, 1)), Fo.Lab (1, 1))) in
  Alcotest.(check (array bool)) "other with label" [| true; false |] (Fo.eval_unary phi g ~x:0)

let test_fo_forall () =
  (* "All vertices adjacent to x0" — true only for a dominating vertex. *)
  let phi = Fo.forall 1 (Fo.Or (Fo.Eq (0, 1), Fo.Edge (0, 1))) in
  let g = unlabel (Generators.star 3) in
  Alcotest.(check (array bool)) "dominating" [| true; false; false; false |]
    (Fo.eval_unary phi g ~x:0)

let test_fo_free_vars () =
  let phi = Fo.ExistsGeq (1, 1, Fo.And (Fo.Edge (0, 1), Fo.Lab (0, 2))) in
  Alcotest.(check (list int)) "free vars" [ 0; 2 ] (Fo.free_vars phi);
  Alcotest.(check (list int)) "all vars" [ 0; 1; 2 ] (Fo.variables phi);
  check_bool "sentence rejects free vars" true
    (try
       ignore (Fo.eval_sentence phi (Generators.cycle 3));
       false
     with Invalid_argument _ -> true)

let suite =
  ( "logic",
    [
      case "gml props" test_gml_props;
      case "gml connectives" test_gml_connectives;
      case "gml diamond" test_gml_diamond;
      case "gml degree formula" test_gml_degree_formula;
      case "gml depth/size" test_gml_depth_size;
      case "gml random depth" test_gml_random_depth;
      prop_gml_invariant;
      prop_gml_bounded_by_cr;
      case "fo degree" test_fo_degree;
      case "fo triangle" test_fo_triangle;
      case "fo sentence" test_fo_sentence;
      case "fo equality+labels" test_fo_equality_and_labels;
      case "fo forall" test_fo_forall;
      case "fo free vars" test_fo_free_vars;
    ] )
