(* Tests for glql_nn: activations, MLPs with gradient checks, losses,
   optimizers. *)

open Helpers
module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Rng = Glql_util.Rng
module Activation = Glql_nn.Activation
module Mlp = Glql_nn.Mlp
module Param = Glql_nn.Param
module Loss = Glql_nn.Loss
module Optim = Glql_nn.Optim

let all_smooth = [ Activation.Sigmoid; Activation.Tanh; Activation.Identity ]

let all_acts =
  Activation.[ Relu; Sigmoid; Tanh; Identity; Sign; Trunc_relu; Leaky_relu ]

let test_activation_values () =
  check_float "relu(-1)" 0.0 (Activation.apply Activation.Relu (-1.0));
  check_float "relu(2)" 2.0 (Activation.apply Activation.Relu 2.0);
  check_float "sigmoid(0)" 0.5 (Activation.apply Activation.Sigmoid 0.0);
  check_float "trunc(2)" 1.0 (Activation.apply Activation.Trunc_relu 2.0);
  check_float "trunc(0.3)" 0.3 (Activation.apply Activation.Trunc_relu 0.3);
  check_float "sign(-3)" (-1.0) (Activation.apply Activation.Sign (-3.0));
  check_float "leaky(-1)" (-0.01) (Activation.apply Activation.Leaky_relu (-1.0))

(* Finite-difference check of activation derivatives at generic points. *)
let prop_activation_derivatives =
  qtest ~count:40 "activation derivative = finite difference"
    QCheck.(pair (int_bound 6) (float_range (-3.0) 3.0))
    (fun (which, x) ->
      let act = List.nth all_acts which in
      (* Skip points near the kinks of the piecewise activations. *)
      let near_kink = Float.abs x < 0.02 || Float.abs (x -. 1.0) < 0.02 in
      if near_kink then true
      else begin
        let h = 1e-6 in
        let fd =
          (Activation.apply act (x +. h) -. Activation.apply act (x -. h)) /. (2.0 *. h)
        in
        (* Sign has derivative 0 away from 0, like the others at plateaus. *)
        Float.abs (fd -. Activation.derivative act x) < 1e-4
      end)

let test_mlp_shapes () =
  let rng = Rng.create 1 in
  let m = Mlp.create rng ~sizes:[ 3; 5; 2 ] ~act:Activation.Tanh ~out_act:Activation.Identity in
  check_int "in_dim" 3 (Mlp.in_dim m);
  check_int "out_dim" 2 (Mlp.out_dim m);
  check_int "params" 4 (List.length (Mlp.params m));
  let y = Mlp.forward m (Mat.zeros 4 3) in
  check_int "batch rows" 4 (Mat.rows y);
  check_int "batch cols" 2 (Mat.cols y)

(* Gradient check: dL/dparam from backward equals finite differences of a
   scalar loss L = sum(output). *)
let mlp_loss m x =
  let y = Mlp.forward m x in
  let acc = ref 0.0 in
  for i = 0 to Mat.rows y - 1 do
    for j = 0 to Mat.cols y - 1 do
      acc := !acc +. (Mat.get y i j *. float_of_int ((i + (2 * j)) mod 3))
    done
  done;
  !acc

let dloss_dy y =
  Mat.init (Mat.rows y) (Mat.cols y) (fun i j -> float_of_int ((i + (2 * j)) mod 3))

let test_mlp_gradient_check () =
  List.iter
    (fun act ->
      let rng = Rng.create 7 in
      let m = Mlp.create rng ~sizes:[ 3; 4; 2 ] ~act ~out_act:Activation.Identity in
      let x = Mat.gaussian rng 5 3 ~stddev:1.0 in
      let y, cache = Mlp.forward_cached m x in
      let dx = Mlp.backward m cache ~dout:(dloss_dy y) in
      (* Parameter gradients. *)
      List.iter
        (fun (p : Param.t) ->
          let rows = Mat.rows p.Param.data and cols = Mat.cols p.Param.data in
          for i = 0 to rows - 1 do
            for j = 0 to cols - 1 do
              let h = 1e-5 in
              let orig = Mat.get p.Param.data i j in
              Mat.set p.Param.data i j (orig +. h);
              let up = mlp_loss m x in
              Mat.set p.Param.data i j (orig -. h);
              let down = mlp_loss m x in
              Mat.set p.Param.data i j orig;
              let fd = (up -. down) /. (2.0 *. h) in
              let analytic = Mat.get p.Param.grad i j in
              if Float.abs (fd -. analytic) > 1e-3 *. (1.0 +. Float.abs fd) then
                Alcotest.failf "param %s grad mismatch (%g vs %g)" p.Param.name analytic fd
            done
          done)
        (Mlp.params m);
      (* Input gradient. *)
      for i = 0 to Mat.rows x - 1 do
        for j = 0 to Mat.cols x - 1 do
          let h = 1e-5 in
          let orig = Mat.get x i j in
          Mat.set x i j (orig +. h);
          let up = mlp_loss m x in
          Mat.set x i j (orig -. h);
          let down = mlp_loss m x in
          Mat.set x i j orig;
          let fd = (up -. down) /. (2.0 *. h) in
          if Float.abs (fd -. Mat.get dx i j) > 1e-3 *. (1.0 +. Float.abs fd) then
            Alcotest.failf "input grad mismatch at (%d,%d)" i j
        done
      done)
    all_smooth

let test_mse () =
  let pred = Mat.of_rows [ [| 1.0; 2.0 |] ] in
  let target = Mat.of_rows [ [| 0.0; 4.0 |] ] in
  let loss, grad = Loss.mse ~pred ~target in
  check_float "loss" 2.5 loss;
  check_float "grad0" 1.0 (Mat.get grad 0 0);
  check_float "grad1" (-2.0) (Mat.get grad 0 1)

let test_cross_entropy_uniform () =
  let logits = Mat.zeros 1 4 in
  let loss, grad = Loss.softmax_cross_entropy ~logits ~labels:[| 2 |] in
  check_float "loss = log 4" (log 4.0) loss;
  check_float "grad wrong class" 0.25 (Mat.get grad 0 0);
  check_float "grad right class" (-0.75) (Mat.get grad 0 2)

let test_cross_entropy_gradient () =
  let rng = Rng.create 3 in
  let logits = Mat.gaussian rng 3 4 ~stddev:1.0 in
  let labels = [| 1; 3; 0 |] in
  let _, grad = Loss.softmax_cross_entropy ~logits ~labels in
  let h = 1e-5 in
  for i = 0 to 2 do
    for j = 0 to 3 do
      let orig = Mat.get logits i j in
      Mat.set logits i j (orig +. h);
      let up, _ = Loss.softmax_cross_entropy ~logits ~labels in
      Mat.set logits i j (orig -. h);
      let down, _ = Loss.softmax_cross_entropy ~logits ~labels in
      Mat.set logits i j orig;
      let fd = (up -. down) /. (2.0 *. h) in
      if Float.abs (fd -. Mat.get grad i j) > 1e-4 then
        Alcotest.failf "ce grad mismatch at (%d,%d)" i j
    done
  done

let test_binary_cross_entropy_gradient () =
  let logits = Mat.of_rows [ [| 0.7 |]; [| -1.2 |] ] in
  let targets = [| 1.0; 0.0 |] in
  let _, grad = Loss.binary_cross_entropy ~logits ~targets in
  let h = 1e-5 in
  for i = 0 to 1 do
    let orig = Mat.get logits i 0 in
    Mat.set logits i 0 (orig +. h);
    let up, _ = Loss.binary_cross_entropy ~logits ~targets in
    Mat.set logits i 0 (orig -. h);
    let down, _ = Loss.binary_cross_entropy ~logits ~targets in
    Mat.set logits i 0 orig;
    let fd = (up -. down) /. (2.0 *. h) in
    if Float.abs (fd -. Mat.get grad i 0) > 1e-4 then Alcotest.failf "bce grad mismatch at %d" i
  done

let test_accuracy () =
  let logits = Mat.of_rows [ [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 0.0 |] ] in
  check_float "accuracy" (2.0 /. 3.0) (Loss.accuracy ~logits ~labels:[| 0; 1; 1 |])

(* Optimizers minimise a simple quadratic: L(w) = sum (w - 3)^2. *)
let quadratic_step opt p =
  for i = 0 to Mat.rows p.Param.data - 1 do
    for j = 0 to Mat.cols p.Param.data - 1 do
      Mat.set p.Param.grad i j (2.0 *. (Mat.get p.Param.data i j -. 3.0))
    done
  done;
  Optim.step opt [ p ]

let test_sgd_converges () =
  let p = Param.create ~name:"w" (Mat.zeros 2 2) in
  let opt = Optim.sgd ~lr:0.1 in
  for _ = 1 to 200 do
    quadratic_step opt p
  done;
  check_bool "close to 3" true (Float.abs (Mat.get p.Param.data 0 0 -. 3.0) < 1e-6)

let test_adam_converges () =
  let p = Param.create ~name:"w" (Mat.zeros 2 2) in
  let opt = Optim.adam ~lr:0.1 () in
  for _ = 1 to 500 do
    quadratic_step opt p
  done;
  check_bool "close to 3" true (Float.abs (Mat.get p.Param.data 0 0 -. 3.0) < 1e-3)

let test_step_zeroes_grads () =
  let p = Param.create ~name:"w" (Mat.zeros 1 1) in
  Mat.set p.Param.grad 0 0 5.0;
  Optim.step (Optim.sgd ~lr:0.1) [ p ];
  check_float "grad cleared" 0.0 (Mat.get p.Param.grad 0 0);
  check_float "param moved" (-0.5) (Mat.get p.Param.data 0 0)

let suite =
  ( "nn",
    [
      case "activation values" test_activation_values;
      prop_activation_derivatives;
      case "mlp shapes" test_mlp_shapes;
      case "mlp gradient check" test_mlp_gradient_check;
      case "mse" test_mse;
      case "cross entropy uniform" test_cross_entropy_uniform;
      case "cross entropy gradient" test_cross_entropy_gradient;
      case "binary cross entropy gradient" test_binary_cross_entropy_gradient;
      case "accuracy" test_accuracy;
      case "sgd converges" test_sgd_converges;
      case "adam converges" test_adam_converges;
      case "step zeroes grads" test_step_zeroes_grads;
    ] )
