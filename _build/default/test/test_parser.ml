(* Tests for the GEL surface syntax: parsing, round-tripping with the
   printer, and error reporting. *)

open Helpers
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Expr = Glql_gel.Expr
module Parser = Glql_gel.Parser
module B = Glql_gel.Builder
module Rng = Glql_util.Rng
module Vec = Glql_tensor.Vec

let eval1 src g = Expr.eval_vertexwise g (Parser.parse src)

let test_parse_degree () =
  let g = unlabel (Generators.star 3) in
  let v = eval1 "agg_sum{x2}([1] | E(x1,x2))" g in
  check_float "centre" 3.0 v.(0).(0);
  check_float "leaf" 1.0 v.(1).(0)

let test_parse_atoms () =
  let g = Graph.with_one_hot_labels (Generators.path 2) [| 0; 1 |] ~n_colors:2 in
  check_float "lab" 1.0 (Expr.eval_tuple g (Parser.parse "lab1(x1)") [| 1 |]).(0);
  check_float "edge" 1.0 (Expr.eval_tuple g (Parser.parse "E(x1,x2)") [| 0; 1 |]).(0);
  check_float "eq" 1.0 (Expr.eval_tuple g (Parser.parse "1[x1=x2]") [| 1; 1 |]).(0);
  check_float "neq" 1.0 (Expr.eval_tuple g (Parser.parse "1[x1!=x2]") [| 0; 1 |]).(0)

let test_parse_constants () =
  (match Parser.parse "[1; -2.5; 3]" with
  | Expr.Const v -> check_bool "vector" true (v = [| 1.0; -2.5; 3.0 |])
  | _ -> Alcotest.fail "expected constant");
  match Parser.parse "concat([1], 2.5)" with
  | e -> check_int "scalar constant inside call" 2 (Expr.dim e)

let test_parse_functions () =
  let g = Generators.cycle 5 in
  let v = eval1 "relu(scale(-1)(agg_sum{x2}([1] | E(x1,x2))))" g in
  check_float "relu of negated degree" 0.0 v.(0).(0);
  let v = eval1 "add(agg_sum{x2}([1] | E(x1,x2)), [10])" g in
  check_float "add constant" 12.0 v.(0).(0);
  let v = eval1 "product(agg_sum{x2}([1] | E(x1,x2)), agg_sum{x2}([1] | E(x1,x2)))" g in
  check_float "degree squared" 4.0 v.(0).(0)

let test_parse_triangles () =
  let e =
    Parser.parse
      "scale(0.16666666666666666)(agg_sum{x1,x2,x3}(product(E(x1,x2), product(E(x2,x3), E(x3,x1))) | [1]))"
  in
  check_bool "GEL3 fragment" true (Expr.fragment e = Expr.Frag_gel 3);
  check_float "K4 triangles" 4.0 (Expr.eval_closed (Generators.complete 4) e).(0)

let test_parse_mean_max_count () =
  let g = unlabel (Generators.star 2) in
  let mean_deg = eval1 "agg_mean{x2}(agg_count{x1}([1] | E(x2,x1)) | E(x1,x2))" g in
  check_float "mean neighbour degree at leaf" 2.0 mean_deg.(1).(0);
  let max_lab = eval1 "agg_max{x2}(lab0(x2) | E(x1,x2))" g in
  check_float "max label" 1.0 max_lab.(0).(0)

let test_whitespace_insensitive () =
  let a = Parser.parse "agg_sum{x2}([1]|E(x1,x2))" in
  let b = Parser.parse "  agg_sum { x2 } ( [ 1 ] | E ( x1 , x2 ) )  " in
  Alcotest.(check string) "same print" (Expr.to_string a) (Expr.to_string b)

let test_parse_errors () =
  let fails src =
    match Parser.parse src with
    | _ -> Alcotest.failf "expected failure on %S" src
    | exception Parser.Parse_error _ -> ()
    | exception Expr.Type_error _ -> ()
  in
  List.iter fails
    [
      "";
      "agg_sum{}([1] | E(x1,x2))";
      "agg_typo{x2}([1] | E(x1,x2))";
      "E(x1)";
      "lab(x1)";
      "product([1], [1; 2])";
      "unknownfn([1])";
      "agg_sum{x2}([1] | E(x1,x2)) trailing";
      "[1; oops]";
    ]

(* Round trip: printing a parsed expression reproduces the source up to
   whitespace, and parsing the printer's output preserves semantics. *)
let printable_sources =
  [
    "agg_sum{x2}([1] | E(x1,x2))";
    "agg_mean{x2}(lab0(x2) | E(x1,x2))";
    "relu(concat(lab0(x1), agg_sum{x2}(lab0(x2) | E(x1,x2))))";
    "agg_sum{x2,x3}(product(E(x1,x2), product(E(x2,x3), E(x3,x1))) | [1])";
    "add(1[x1=x2], 1[x1!=x2])";
    "tanh(scale(2)(lab0(x1)))";
  ]

let test_round_trip_syntax () =
  List.iter
    (fun src ->
      let printed = Expr.to_string (Parser.parse src) in
      let reparsed = Expr.to_string (Parser.parse printed) in
      Alcotest.(check string) src printed reparsed)
    printable_sources

let prop_round_trip_semantics =
  qtest ~count:20 "parse(print(e)) has the same semantics" (graph_arbitrary ~min_n:1 ~max_n:6 ())
    (fun input ->
      let g = labelled_graph_of ~n_colors:2 input in
      List.for_all
        (fun src ->
          let e = Parser.parse src in
          let e' = Parser.parse (Expr.to_string e) in
          match Expr.free_vars e with
          | [] -> vec_approx (Expr.eval_closed g e) (Expr.eval_closed g e')
          | _ ->
              let t = Expr.eval g e and t' = Expr.eval g e' in
              Array.for_all2 (fun a b -> vec_approx a b) t.Expr.tdata t'.Expr.tdata)
        printable_sources)

let test_builder_prints_parseable () =
  (* Standard builder expressions print into the parseable fragment. *)
  List.iter
    (fun e ->
      let printed = Expr.to_string e in
      let reparsed = Parser.parse printed in
      Alcotest.(check string) printed printed (Expr.to_string reparsed))
    [
      B.degree ~x:B.x1 ~y:B.x2;
      B.two_walks ~x:B.x1 ~y:B.x2;
      B.triangle_count ();
      B.common_neighbors ();
      B.triangles_at_x1 ();
    ]

let suite =
  ( "parser",
    [
      case "degree" test_parse_degree;
      case "atoms" test_parse_atoms;
      case "constants" test_parse_constants;
      case "functions" test_parse_functions;
      case "triangles" test_parse_triangles;
      case "mean/max/count" test_parse_mean_max_count;
      case "whitespace insensitive" test_whitespace_insensitive;
      case "errors" test_parse_errors;
      case "round trip syntax" test_round_trip_syntax;
      prop_round_trip_semantics;
      case "builder prints parseable" test_builder_prints_parseable;
    ] )
