(* Cross-cutting property tests: relationships *between* the subsystems
   (WL variants, evaluator paths, optimizer/normal-form on randomly
   generated expressions, CFI ground truths). *)

open Helpers
module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Iso = Glql_graph.Iso
module Cfi = Glql_graph.Cfi
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module Partition = Glql_wl.Partition
module Expr = Glql_gel.Expr
module Func = Glql_gel.Func
module Agg = Glql_gel.Agg
module B = Glql_gel.Builder
module Optimize = Glql_gel.Optimize
module Normal_form = Glql_gel.Normal_form
module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat

(* --- WL variant relationships ------------------------------------------------ *)

let prop_folklore_refines_oblivious =
  qtest ~count:15 "2-FWL refines 2-OWL" (graph_arbitrary ~min_n:2 ~max_n:6 ()) (fun input ->
      let seed, n, density = input in
      let g = graph_of (seed, n, density) in
      let h = graph_of (seed + 1, n, density) in
      (* Folklore separating less than oblivious would violate the known
         ordering: if 2-FWL says equivalent, 2-OWL must as well. *)
      (not (Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore g h))
      || Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Oblivious g h)

let prop_2owl_refines_cr =
  qtest ~count:15 "2-OWL refines CR" (graph_arbitrary ~min_n:2 ~max_n:6 ()) (fun input ->
      let seed, n, density = input in
      let g = graph_of (seed, n, density) in
      let h = graph_of (seed + 1, n, density) in
      (not (Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Oblivious g h)) || Cr.equivalent_graphs g h)

let prop_oblivious_invariant =
  qtest ~count:12 "2-OWL invariant under isomorphism" (graph_arbitrary ~min_n:1 ~max_n:6 ())
    (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.permute g (permutation_of input) in
      Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Oblivious g h)

let test_cfi_k4_ground_truth () =
  let a, b = Cfi.pair (Generators.complete 4) in
  check_bool "CR fooled" true (Cr.equivalent_graphs a b);
  check_bool "non-isomorphic" false (Iso.are_isomorphic a b)

(* --- evaluator paths ----------------------------------------------------------- *)

(* The guarded aggregation takes an adjacency fast path; wrapping the same
   guard so it is no longer syntactically an edge atom forces the generic
   path. Both must agree. *)
let prop_fast_path_equals_generic =
  qtest ~count:25 "edge-guard fast path = generic path" (graph_arbitrary ~min_n:1 ~max_n:7 ())
    (fun input ->
      let g = graph_of input in
      let value = B.lab 0 B.x2 in
      let fast = Expr.Agg (Agg.sum 1, [ B.x2 ], value, B.edge B.x1 B.x2) in
      let wrapped_guard = Expr.Apply (Func.scale 1.0 1, [ B.edge B.x1 B.x2 ]) in
      let generic = Expr.Agg (Agg.sum 1, [ B.x2 ], value, wrapped_guard) in
      let a = Expr.eval_vertexwise g fast and b = Expr.eval_vertexwise g generic in
      Array.for_all2 (fun u v -> vec_approx u v) a b)

(* Nonzero-anywhere guard semantics: a guard vector with one nonzero
   component admits the assignment. *)
let test_guard_nonzero_semantics () =
  let g = Generators.path 3 in
  let guard = B.concat [ B.const1 0.0; B.edge B.x1 B.x2 ] in
  let e = Expr.Agg (Agg.sum 1, [ B.x2 ], B.const1 1.0, guard) in
  let v = Expr.eval_vertexwise g e in
  check_float "degree via vector guard" 2.0 v.(1).(0)

(* --- random guarded expressions ------------------------------------------------ *)

(* Generator for random MPNN(Omega, sum) expressions over two variables,
   used to fuzz the optimizer and the normal-form transformation. *)
let random_mpnn_expr rng ~label_dim ~depth =
  let rec go depth x y =
    let d = 1 + Rng.int rng 2 in
    if depth = 0 then
      match Rng.int rng 3 with
      | 0 -> B.lab (Rng.int rng label_dim) x
      | 1 -> B.const (Vec.init d (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
      | _ -> B.degree ~x ~y
    else
      match Rng.int rng 5 with
      | 0 ->
          let a = go (depth - 1) x y in
          B.linear
            (Mat.gaussian rng (Expr.dim a) d ~stddev:0.7)
            (Vec.gaussian rng d ~stddev:0.3) a
      | 1 ->
          let a = go (depth - 1) x y in
          let b = go (depth - 1) x y in
          B.concat [ a; b ]
      | 2 ->
          let a = go (depth - 1) x y in
          let b = go (depth - 1) x y in
          let da = Expr.dim a and db = Expr.dim b in
          if da = db then B.add a b else B.concat [ a; b ]
      | 3 ->
          let a = go (depth - 1) x y in
          B.scale (Rng.uniform rng ~lo:(-2.0) ~hi:2.0) a
      | _ ->
          (* Neighbourhood sum of an inner expression over the swapped
             variable pair. *)
          let inner = go (depth - 1) y x in
          B.sum_neighbors ~x ~y inner
  in
  let body = go depth B.x1 B.x2 in
  (* A constant-only draw is closed; anchor the top level to x1. *)
  if Expr.free_vars body = [ B.x1 ] then body else B.concat [ B.lab 0 B.x1; body ]

let expr_arb =
  QCheck.make
    ~print:(fun (seed, depth) -> Printf.sprintf "expr(seed=%d,depth=%d)" seed depth)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_range 1 4))

let prop_random_exprs_are_guarded =
  qtest ~count:40 "random expressions are in the MPNN fragment" expr_arb (fun (seed, depth) ->
      let e = random_mpnn_expr (Rng.create seed) ~label_dim:2 ~depth in
      Expr.is_mpnn e && Expr.free_vars e = [ B.x1 ])

let prop_optimizer_on_random_exprs =
  qtest ~count:30 "optimizer preserves random expressions" expr_arb (fun (seed, depth) ->
      let e = random_mpnn_expr (Rng.create seed) ~label_dim:2 ~depth in
      let e' = Optimize.optimize e in
      let g = labelled_graph_of ~n_colors:2 (seed, 6, 50) in
      let a = Expr.eval_vertexwise g e and b = Expr.eval_vertexwise g e' in
      Expr.n_nodes e' <= Expr.n_nodes e
      && Array.for_all2 (fun u v -> vec_approx ~tol:1e-9 u v) a b)

let prop_normal_form_on_random_exprs =
  qtest ~count:25 "normal form preserves random expressions" expr_arb (fun (seed, depth) ->
      let e = random_mpnn_expr (Rng.create seed) ~label_dim:2 ~depth in
      let g = labelled_graph_of ~n_colors:2 (seed + 1, 6, 50) in
      match Normal_form.of_vertex_expr e with
      | nf -> Normal_form.max_deviation nf e g < 1e-9
      | exception Normal_form.Unsupported _ ->
          (* The generator only emits sum aggregations and foldable
             function kinds, so separation must always succeed. *)
          false)

let prop_random_exprs_invariant =
  qtest ~count:20 "random expressions are invariant" expr_arb (fun (seed, depth) ->
      let e = random_mpnn_expr (Rng.create seed) ~label_dim:2 ~depth in
      let input = (seed + 2, 6, 50) in
      let g = labelled_graph_of ~n_colors:2 input in
      let perm = permutation_of input in
      let h = Graph.permute g perm in
      let a = Expr.eval_vertexwise g e and b = Expr.eval_vertexwise h e in
      let ok = ref true in
      Array.iteri (fun v value -> if not (vec_approx ~tol:1e-9 value b.(perm.(v))) then ok := false) a;
      !ok)

(* --- hom / WL interaction -------------------------------------------------------- *)

let prop_path_homs_equal_under_cr =
  qtest ~count:15 "CR-equivalent graphs have equal path counts"
    (graph_arbitrary ~min_n:2 ~max_n:7 ()) (fun input ->
      let seed, n, density = input in
      let g = graph_of (seed, n, density) in
      let h = graph_of (seed + 1, n, density) in
      (not (Cr.equivalent_graphs g h))
      || List.for_all
           (fun k -> Glql_hom.Count.hom (Generators.path k) g = Glql_hom.Count.hom (Generators.path k) h)
           [ 2; 3; 4; 5 ])

let suite =
  ( "properties",
    [
      prop_folklore_refines_oblivious;
      prop_2owl_refines_cr;
      prop_oblivious_invariant;
      case "CFI(K4) ground truth" test_cfi_k4_ground_truth;
      prop_fast_path_equals_generic;
      case "vector guard semantics" test_guard_nonzero_semantics;
      prop_random_exprs_are_guarded;
      prop_optimizer_on_random_exprs;
      prop_normal_form_on_random_exprs;
      prop_random_exprs_invariant;
      prop_path_homs_equal_under_cr;
    ] )
