(* Tests for glql_relational: typed graphs, relational colour refinement,
   R-GCN models. *)

open Helpers
module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Cr = Glql_wl.Color_refinement
module Rgraph = Glql_relational.Rgraph
module Rwl = Glql_relational.Rwl
module Vec = Glql_tensor.Vec

let typed_c4 types =
  let edges = List.mapi (fun i r -> (r, i, (i + 1) mod 4)) types in
  Rgraph.create ~n:4 ~n_relations:2 ~edges ~labels:(Array.make 4 [| 1.0 |])

let test_rgraph_basics () =
  let g = typed_c4 [ 0; 1; 0; 1 ] in
  check_int "vertices" 4 (Rgraph.n_vertices g);
  check_int "relations" 2 (Rgraph.n_relations g);
  check_int "edges" 4 (Rgraph.n_edges g);
  Alcotest.(check (array int)) "relation-0 neighbours of 0" [| 1 |]
    (Rgraph.neighbors g ~relation:0 0);
  Alcotest.(check (array int)) "relation-1 neighbours of 0" [| 3 |]
    (Rgraph.neighbors g ~relation:1 0)

let test_union_graph () =
  let g = typed_c4 [ 0; 1; 0; 1 ] in
  let u = Rgraph.union_graph g in
  check_int "union edges" 4 (Graph.n_edges u);
  check_bool "union is C4" true (Glql_graph.Iso.are_isomorphic u (Generators.cycle 4))

let test_of_graph_roundtrip () =
  let g = Generators.petersen () in
  let r = Rgraph.of_graph g in
  check_int "one relation" 1 (Rgraph.n_relations r);
  check_bool "union gives back structure" true (Graph.equal_structure g (Rgraph.union_graph r))

let test_relational_cr_sees_types () =
  let alternating = typed_c4 [ 0; 1; 0; 1 ] in
  let blocked = typed_c4 [ 0; 0; 1; 1 ] in
  check_bool "union CR fooled" true
    (Cr.equivalent_graphs (Rgraph.union_graph alternating) (Rgraph.union_graph blocked));
  check_bool "relational CR separates" false (Rwl.equivalent_graphs alternating blocked)

let test_relational_cr_on_single_relation () =
  (* With one relation, relational CR agrees with plain CR. *)
  let c6 = Generators.cycle 6 in
  let c33 = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  check_bool "matches plain CR (equiv pair)" true
    (Rwl.equivalent_graphs (Rgraph.of_graph c6) (Rgraph.of_graph c33));
  check_bool "matches plain CR (distinct pair)" false
    (Rwl.equivalent_graphs (Rgraph.of_graph (Generators.path 4))
       (Rgraph.of_graph (unlabel (Generators.star 3))))

let prop_relational_cr_invariant =
  qtest ~count:20 "relational CR invariant under isomorphism"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 8))
    (fun (seed, n) ->
      let g = Rgraph.random (Rng.create seed) ~n ~n_relations:2 ~p:0.5 in
      let perm = Graph.random_permutation (Rng.create (seed + 1)) n in
      Rwl.equivalent_graphs g (Rgraph.permute g perm))

let prop_rgnn_invariant =
  qtest ~count:15 "R-GNN invariant under isomorphism"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 7))
    (fun (seed, n) ->
      let g = Rgraph.random (Rng.create seed) ~n ~n_relations:2 ~p:0.5 in
      let perm = Graph.random_permutation (Rng.create (seed + 1)) n in
      let m = Rwl.random_model (Rng.create 5) ~label_dim:1 ~n_relations:2 ~width:6 ~depth:3 ~out_dim:4 in
      Vec.linf_dist (Rwl.graph_embedding m g) (Rwl.graph_embedding m (Rgraph.permute g perm)) < 1e-9)

let prop_rgnn_bounded_by_relational_cr =
  qtest ~count:15 "R-GNN bounded by relational CR"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 7))
    (fun (seed, n) ->
      let g = Rgraph.random (Rng.create seed) ~n ~n_relations:2 ~p:0.5 in
      let h = Rgraph.random (Rng.create (seed + 1)) ~n ~n_relations:2 ~p:0.5 in
      if not (Rwl.equivalent_graphs g h) then true
      else begin
        let m = Rwl.random_model (Rng.create 7) ~label_dim:1 ~n_relations:2 ~width:6 ~depth:4 ~out_dim:4 in
        Vec.linf_dist (Rwl.graph_embedding m g) (Rwl.graph_embedding m h) < 1e-8
      end)

let test_rgnn_uses_types () =
  let alternating = typed_c4 [ 0; 1; 0; 1 ] in
  let blocked = typed_c4 [ 0; 0; 1; 1 ] in
  let separated =
    List.exists
      (fun i ->
        let m =
          Rwl.random_model (Rng.create (50 + i)) ~label_dim:1 ~n_relations:2 ~width:6 ~depth:3
            ~out_dim:6
        in
        Vec.linf_dist (Rwl.graph_embedding m alternating) (Rwl.graph_embedding m blocked) > 1e-9)
      [ 0; 1; 2 ]
  in
  check_bool "random R-GNN separates typed pair" true separated

let suite =
  ( "relational",
    [
      case "rgraph basics" test_rgraph_basics;
      case "union graph" test_union_graph;
      case "of_graph roundtrip" test_of_graph_roundtrip;
      case "relational CR sees types" test_relational_cr_sees_types;
      case "single relation = plain CR" test_relational_cr_on_single_relation;
      prop_relational_cr_invariant;
      prop_rgnn_invariant;
      prop_rgnn_bounded_by_relational_cr;
      case "R-GNN uses types" test_rgnn_uses_types;
    ] )
