(* Tests for the slide-71 methods: distances/ego nets, subgraph policies,
   ensembles, and order-2 (invariant) graph networks. *)

open Helpers
module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Dist = Glql_graph.Dist
module Cr = Glql_wl.Color_refinement
module Policy = Glql_subgraph.Policy
module Ensemble = Glql_subgraph.Ensemble
module Ign = Glql_gnn.Ign
module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec
module Compile_gnn = Glql_gel.Compile_gnn

(* --- distances ------------------------------------------------------------- *)

let test_bfs () =
  let g = Generators.path 5 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] (Dist.bfs g 0);
  let disconnected = Graph.disjoint_union (Generators.path 2) (Generators.path 2) in
  Alcotest.(check (array int)) "unreachable = -1" [| 0; 1; -1; -1 |] (Dist.bfs disconnected 0)

let test_diameter () =
  check_int "petersen diameter" 2 (Dist.diameter (Generators.petersen ()));
  check_int "path diameter" 4 (Dist.diameter (Generators.path 5));
  check_int "complete diameter" 1 (Dist.diameter (Generators.complete 4))

let test_ball_and_ego () =
  let g = Generators.path 5 in
  Alcotest.(check (array int)) "radius-1 ball" [| 1; 2; 3 |] (Dist.ball g ~center:2 ~radius:1);
  let sub, c = Dist.ego_net g ~center:2 ~radius:1 in
  check_int "ego size" 3 (Graph.n_vertices sub);
  check_int "centre index" 1 c;
  check_int "ego edges" 2 (Graph.n_edges sub)

(* --- policies ---------------------------------------------------------------- *)

let test_policy_mark () =
  let g = Generators.cycle 4 in
  let g' = Policy.apply Policy.Mark g 2 in
  check_int "label dim grows" 2 (Graph.label_dim g');
  check_float "marked vertex" 1.0 (Graph.label g' 2).(1);
  check_float "other vertex" 0.0 (Graph.label g' 0).(1);
  check_int "same structure" (Graph.n_edges g) (Graph.n_edges g')

let test_policy_delete () =
  let g = Generators.star 3 in
  let no_centre = Policy.apply Policy.Delete g 0 in
  check_int "vertices" 3 (Graph.n_vertices no_centre);
  check_int "edges" 0 (Graph.n_edges no_centre)

let test_policy_ego () =
  let g = Generators.path 5 in
  let sub = Policy.apply (Policy.Ego 1) g 2 in
  check_int "ego vertices" 3 (Graph.n_vertices sub);
  check_int "mark column" 2 (Graph.label_dim sub)

let test_transforms_count () =
  let g = Generators.cycle 5 in
  check_int "one per vertex" 5 (List.length (Policy.transforms Policy.Mark g))

(* --- ensembles ---------------------------------------------------------------- *)

let c6_vs_2c3 () =
  (Generators.cycle 6, Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3))

let test_ensemble_breaks_cr_pairs () =
  let c6, c33 = c6_vs_2c3 () in
  check_bool "plain CR fooled" true (Cr.equivalent_graphs c6 c33);
  List.iter
    (fun policy ->
      check_bool (Policy.name policy ^ " separates") false (Ensemble.equivalent policy c6 c33))
    [ Policy.Mark; Policy.Delete; Policy.Ego 2 ]

let test_ensemble_fooled_by_srg () =
  let rook = Generators.rook_4x4 () and shri = Generators.shrikhande () in
  (* Subgraph-1 methods are bounded by 2-FWL, which cannot split this pair. *)
  List.iter
    (fun policy ->
      check_bool (Policy.name policy ^ " fooled") true (Ensemble.equivalent policy rook shri))
    [ Policy.Mark; Policy.Delete; Policy.Ego 2 ]

let prop_ensemble_invariant =
  qtest ~count:15 "ensemble invariant under isomorphism" (graph_arbitrary ~min_n:2 ~max_n:7 ())
    (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.permute g (permutation_of input) in
      List.for_all (fun policy -> Ensemble.equivalent policy g h)
        [ Policy.Mark; Policy.Delete; Policy.Ego 1 ])

let prop_gnn_ensemble_bounded_by_cr_ensemble =
  qtest ~count:10 "random-weight ensemble bounded by CR ensemble"
    (graph_arbitrary ~min_n:2 ~max_n:6 ()) (fun input ->
      let seed, n, density = input in
      let g = graph_of (seed, n, density) in
      let h = graph_of (seed + 1, n, density) in
      let policy = Policy.Mark in
      if not (Ensemble.equivalent policy g h) then true
      else begin
        (* CR-ensemble-equivalent: random-weight GNN ensembles must agree. *)
        let spec =
          Compile_gnn.random_gnn101 (Rng.create (seed + 5))
            ~in_dim:(Ensemble.base_in_dim policy g) ~width:6 ~depth:4 ~out_dim:6
        in
        Vec.linf_dist (Ensemble.gnn_embedding spec policy g) (Ensemble.gnn_embedding spec policy h)
        < 1e-8
      end)

(* --- 2-IGN / PPGN ---------------------------------------------------------------- *)

let test_basis_ops () =
  let x = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  check_bool "op0 identity" true (Mat.equal_approx (Ign.basis_op 0 x) x);
  check_bool "op1 transpose" true (Mat.equal_approx (Ign.basis_op 1 x) (Mat.transpose x));
  (* op12: total sum / n^2 broadcast = 10/4. *)
  check_float "op12 broadcast" 2.5 (Mat.get (Ign.basis_op 12 x) 0 1);
  (* op13: trace / n = 5/2 broadcast. *)
  check_float "op13 trace" 2.5 (Mat.get (Ign.basis_op 13 x) 1 0);
  (* op2: diagonal restriction. *)
  check_float "op2 off-diagonal" 0.0 (Mat.get (Ign.basis_op 2 x) 0 1);
  check_float "op2 diagonal" 4.0 (Mat.get (Ign.basis_op 2 x) 1 1)

let test_encode () =
  let g = Graph.with_one_hot_labels (Generators.path 2) [| 0; 1 |] ~n_colors:2 in
  let channels = Ign.encode g in
  check_int "channels" 3 (Array.length channels);
  check_float "adjacency" 1.0 (Mat.get channels.(0) 0 1);
  check_float "diag label" 1.0 (Mat.get channels.(1) 0 0);
  check_float "off-diag label" 0.0 (Mat.get channels.(1) 0 1)

let prop_ign_invariant =
  qtest ~count:15 "2-IGN invariant under isomorphism" (graph_arbitrary ~min_n:1 ~max_n:7 ())
    (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.permute g (permutation_of input) in
      let m = Ign.random (Rng.create 9) ~label_dim:3 ~width:4 ~depth:2 ~out_dim:4 in
      Vec.linf_dist (Ign.graph_embedding m g) (Ign.graph_embedding m h) < 1e-9)

let prop_ppgn_invariant =
  qtest ~count:10 "PPGN invariant under isomorphism" (graph_arbitrary ~min_n:1 ~max_n:6 ())
    (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.permute g (permutation_of input) in
      let m = Ign.random_ppgn (Rng.create 10) ~label_dim:3 ~width:4 ~depth:2 ~out_dim:4 in
      Vec.linf_dist (Ign.ppgn_graph_embedding m g) (Ign.ppgn_graph_embedding m h) < 1e-9)

let test_ppgn_separates_triangles () =
  let c6, c33 = c6_vs_2c3 () in
  let separated =
    List.exists
      (fun i ->
        let m = Ign.random_ppgn (Rng.create (100 + i)) ~label_dim:1 ~width:6 ~depth:3 ~out_dim:6 in
        Vec.linf_dist (Ign.ppgn_graph_embedding m c6) (Ign.ppgn_graph_embedding m c33) > 1e-9)
      [ 0; 1; 2 ]
  in
  check_bool "matrix products see triangles" true separated

let test_ppgn_fooled_by_srg () =
  (* rook vs Shrikhande is 2-FWL-equivalent; PPGN must not separate. *)
  let rook = Generators.rook_4x4 () and shri = Generators.shrikhande () in
  let m = Ign.random_ppgn (Rng.create 200) ~label_dim:1 ~width:6 ~depth:3 ~out_dim:6 in
  check_bool "fooled" true
    (Vec.linf_dist (Ign.ppgn_graph_embedding m rook) (Ign.ppgn_graph_embedding m shri) < 1e-9)

let test_ign_fooled_like_cr () =
  (* Linear 2-IGNs track colour refinement: fooled by C6 vs C3+C3. *)
  let c6, c33 = c6_vs_2c3 () in
  let m = Ign.random (Rng.create 300) ~label_dim:1 ~width:6 ~depth:3 ~out_dim:6 in
  check_bool "fooled" true
    (Vec.linf_dist (Ign.graph_embedding m c6) (Ign.graph_embedding m c33) < 1e-9)


(* --- set-based 2-GNNs -------------------------------------------------------- *)

module Kset = Glql_subgraph.Kset

let test_two_set_graph_shape () =
  let g = Generators.cycle 4 in
  let d = Kset.two_set_graph g in
  (* C(4,2) = 6 pair-vertices; each pair {u,v} meets 2(n-2) = 4 others. *)
  check_int "pair vertices" 6 (Graph.n_vertices d);
  Alcotest.(check (list (pair int int))) "4-regular derived graph" [ (4, 6) ]
    (Graph.degree_histogram d);
  (* Labels: sum + product of endpoint labels + adjacency bit. *)
  check_int "label dim" 3 (Graph.label_dim d)

let test_two_set_labels_distinguish_adjacency () =
  let g = Generators.path 3 in
  let d = Kset.two_set_graph g in
  (* Pairs in lexicographic order: (0,1) adjacent, (0,2) not, (1,2) adjacent. *)
  check_float "adjacent pair bit" 1.0 (Graph.label d 0).(2);
  check_float "non-adjacent pair bit" 0.0 (Graph.label d 1).(2)

let prop_kset_invariant =
  qtest ~count:15 "set-2-GNN power invariant under isomorphism"
    (graph_arbitrary ~min_n:2 ~max_n:7 ()) (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.permute g (permutation_of input) in
      Kset.equivalent g h)

let test_kset_measured_power () =
  (* Measured in E14: the *set* variant tracks colour refinement — it is
     fooled by the classic CR-equivalent pairs (the weakness motivating
     ordered-subgraph aggregation, slide 71) ... *)
  let c6, c33 = c6_vs_2c3 () in
  check_bool "fooled by C6 vs 2C3" true (Kset.equivalent c6 c33);
  check_bool "fooled by SRG pair" true
    (Kset.equivalent (Generators.rook_4x4 ()) (Generators.shrikhande ()));
  (* ... but it still separates what CR separates. *)
  check_bool "separates P4 vs star3" false
    (Kset.equivalent (Generators.path 4) (unlabel (Generators.star 3)))

let suite =
  ( "subgraph",
    [
      case "bfs" test_bfs;
      case "diameter" test_diameter;
      case "ball and ego" test_ball_and_ego;
      case "policy mark" test_policy_mark;
      case "policy delete" test_policy_delete;
      case "policy ego" test_policy_ego;
      case "transforms count" test_transforms_count;
      case "ensemble breaks CR pairs" test_ensemble_breaks_cr_pairs;
      case "ensemble fooled by SRG" test_ensemble_fooled_by_srg;
      prop_ensemble_invariant;
      prop_gnn_ensemble_bounded_by_cr_ensemble;
      case "ign basis ops" test_basis_ops;
      case "ign encode" test_encode;
      prop_ign_invariant;
      prop_ppgn_invariant;
      case "ppgn separates triangles" test_ppgn_separates_triangles;
      case "ppgn fooled by SRG" test_ppgn_fooled_by_srg;
      case "2-IGN fooled like CR" test_ign_fooled_like_cr;
      case "2-set graph shape" test_two_set_graph_shape;
      case "2-set labels" test_two_set_labels_distinguish_adjacency;
      prop_kset_invariant;
      case "set-2-GNN measured power" test_kset_measured_power;
    ] )
