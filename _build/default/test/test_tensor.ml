(* Tests for glql_tensor: vectors and matrices. *)

open Helpers
module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Rng = Glql_util.Rng

let vec_arb =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "vec(seed=%d,n=%d)" seed n)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_range 1 20))

let vec_of (seed, n) =
  let rng = Rng.create seed in
  Vec.init n (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0)

let test_vec_basic () =
  let v = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  check_float "sum" 6.0 (Vec.sum v);
  check_float "dot" 14.0 (Vec.dot v v);
  check_float "norm" (sqrt 14.0) (Vec.norm2 v);
  check_int "argmax" 2 (Vec.argmax v);
  check_float "max" 3.0 (Vec.max_elt v)

let test_vec_ops () =
  let a = [| 1.0; 2.0 |] and b = [| 3.0; 5.0 |] in
  check_bool "add" true (Vec.add a b = [| 4.0; 7.0 |]);
  check_bool "sub" true (Vec.sub b a = [| 2.0; 3.0 |]);
  check_bool "mul" true (Vec.mul a b = [| 3.0; 10.0 |]);
  check_bool "scale" true (Vec.scale 2.0 a = [| 2.0; 4.0 |]);
  check_bool "concat" true (Vec.concat [ a; b ] = [| 1.0; 2.0; 3.0; 5.0 |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "map2 raises" (Invalid_argument "Vec.map2: dim mismatch") (fun () ->
      ignore (Vec.add [| 1.0 |] [| 1.0; 2.0 |]))

let prop_softmax_normalised =
  qtest "softmax sums to 1" vec_arb (fun input ->
      let v = vec_of input in
      let s = Vec.softmax v in
      Float.abs (Vec.sum s -. 1.0) < 1e-9 && Array.for_all (fun x -> x >= 0.0) s)

let prop_softmax_shift_invariant =
  qtest "softmax shift invariant" vec_arb (fun input ->
      let v = vec_of input in
      let s1 = Vec.softmax v in
      let s2 = Vec.softmax (Vec.map (fun x -> x +. 100.0) v) in
      Vec.equal_approx ~tol:1e-9 s1 s2)

let prop_axpy =
  qtest "axpy = add of scaled" vec_arb (fun input ->
      let v = vec_of input in
      let into = Vec.copy v in
      Vec.axpy_inplace ~into 2.5 v;
      Vec.equal_approx into (Vec.add v (Vec.scale 2.5 v)))

let test_mat_identity () =
  let m = Mat.init 3 4 (fun i j -> float_of_int ((i * 4) + j)) in
  check_bool "I * m = m" true (Mat.equal_approx (Mat.mul (Mat.identity 3) m) m);
  check_bool "m * I = m" true (Mat.equal_approx (Mat.mul m (Mat.identity 4)) m)

let test_mat_mul_known () =
  let a = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  let b = Mat.of_rows [ [| 5.0; 6.0 |]; [| 7.0; 8.0 |] ] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let mat_arb =
  QCheck.make
    ~print:(fun (seed, r, c) -> Printf.sprintf "mat(seed=%d,%dx%d)" seed r c)
    QCheck.Gen.(triple (int_bound 1_000_000) (int_range 1 8) (int_range 1 8))

let mat_of (seed, r, c) = Mat.gaussian (Rng.create seed) r c ~stddev:1.0

let prop_transpose_involution =
  qtest "transpose involution" mat_arb (fun input ->
      let m = mat_of input in
      Mat.equal_approx m (Mat.transpose (Mat.transpose m)))

let prop_vec_mul_consistent =
  qtest "vec_mul row-by-row equals mul" mat_arb (fun input ->
      let seed, r, c = input in
      let m = mat_of input in
      let x = Vec.init r (fun i -> float_of_int (((seed + i) mod 7) - 3)) in
      let via_mul = Mat.mul (Mat.of_rows [ x ]) m in
      Vec.equal_approx ~tol:1e-9 (Mat.vec_mul x m) (Mat.row via_mul 0)
      && r > 0 && c > 0)

let prop_mul_vec_transpose =
  qtest "mul_vec m x = vec_mul x m^T" mat_arb (fun input ->
      let m = mat_of input in
      let x = Vec.init (Mat.cols m) (fun i -> float_of_int ((i mod 5) - 2)) in
      Vec.equal_approx ~tol:1e-9 (Mat.mul_vec m x) (Mat.vec_mul x (Mat.transpose m)))

let prop_mul_associative =
  qtest ~count:25 "matrix product associative" mat_arb (fun input ->
      let seed, r, c = input in
      let a = mat_of input in
      let b = Mat.gaussian (Rng.create (seed + 1)) c 5 ~stddev:1.0 in
      let d = Mat.gaussian (Rng.create (seed + 2)) 5 3 ~stddev:1.0 in
      ignore r;
      Mat.equal_approx ~tol:1e-6 (Mat.mul (Mat.mul a b) d) (Mat.mul a (Mat.mul b d)))

let test_mat_shape_mismatch () =
  Alcotest.check_raises "mul raises" (Invalid_argument "Mat.mul: shape mismatch") (fun () ->
      ignore (Mat.mul (Mat.zeros 2 3) (Mat.zeros 2 3)))

let test_of_rows_ragged () =
  Alcotest.check_raises "ragged rejected" (Invalid_argument "Mat.of_rows: ragged rows") (fun () ->
      ignore (Mat.of_rows [ [| 1.0 |]; [| 1.0; 2.0 |] ]))

let test_set_row () =
  let m = Mat.zeros 2 2 in
  Mat.set_row m 1 [| 3.0; 4.0 |];
  check_bool "row set" true (Mat.row m 1 = [| 3.0; 4.0 |]);
  check_bool "other row untouched" true (Mat.row m 0 = [| 0.0; 0.0 |])

let test_glorot_shape () =
  let m = Mat.glorot (Rng.create 5) 7 3 in
  check_int "rows" 7 (Mat.rows m);
  check_int "cols" 3 (Mat.cols m)

let suite =
  ( "tensor",
    [
      case "vec basics" test_vec_basic;
      case "vec ops" test_vec_ops;
      case "vec dim mismatch" test_vec_dim_mismatch;
      prop_softmax_normalised;
      prop_softmax_shift_invariant;
      prop_axpy;
      case "mat identity" test_mat_identity;
      case "mat mul known" test_mat_mul_known;
      prop_transpose_involution;
      prop_vec_mul_consistent;
      prop_mul_vec_transpose;
      prop_mul_associative;
      case "mat shape mismatch" test_mat_shape_mismatch;
      case "of_rows ragged" test_of_rows_ragged;
      case "set_row" test_set_row;
      case "glorot shape" test_glorot_shape;
    ] )
