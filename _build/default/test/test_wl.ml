(* Tests for glql_wl: partitions, colour refinement, k-WL. *)

open Helpers
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Iso = Glql_graph.Iso
module Partition = Glql_wl.Partition
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module Rng = Glql_util.Rng

(* --- partitions ----------------------------------------------------------- *)

let test_partition_basics () =
  let p = Partition.of_classes [| 5; 5; 9; 9; 5 |] in
  check_int "n_classes" 2 (Partition.n_classes p);
  check_bool "normalized" true (Partition.normalize p = [| 0; 0; 1; 1; 0 |]);
  check_bool "same_class" true (Partition.same_class p 0 4);
  check_bool "not same_class" false (Partition.same_class p 0 2)

let test_partition_equal () =
  check_bool "renamed ids equal" true
    (Partition.equal [| 0; 0; 1 |] [| 7; 7; 3 |]);
  check_bool "different groupings differ" false (Partition.equal [| 0; 0; 1 |] [| 0; 1; 1 |])

let test_partition_refines () =
  let fine = [| 0; 1; 2; 2 |] and coarse = [| 0; 0; 1; 1 |] in
  check_bool "fine refines coarse" true (Partition.refines fine coarse);
  check_bool "coarse does not refine fine" false (Partition.refines coarse fine);
  check_bool "strict" true (Partition.strictly_refines fine coarse);
  check_bool "self refines" true (Partition.refines fine fine)

let test_partition_meet () =
  let p = [| 0; 0; 1; 1 |] and q = [| 0; 1; 0; 1 |] in
  let m = Partition.meet p q in
  check_int "meet classes" 4 (Partition.n_classes m);
  check_bool "meet refines p" true (Partition.refines m p);
  check_bool "meet refines q" true (Partition.refines m q)

let test_partition_classes () =
  let p = [| 1; 0; 1 |] in
  Alcotest.(check (list (list int))) "classes" [ [ 0; 2 ]; [ 1 ] ] (Partition.classes p)

(* --- colour refinement ------------------------------------------------------ *)

let test_cr_known_pairs () =
  let c6 = Generators.cycle 6 in
  let c33 = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  check_bool "C6 ~ 2C3" true (Cr.equivalent_graphs c6 c33);
  check_bool "P4 vs star3" false
    (Cr.equivalent_graphs (Generators.path 4) (unlabel (Generators.star 3)));
  check_bool "rook ~ shrikhande" true
    (Cr.equivalent_graphs (Generators.rook_4x4 ()) (Generators.shrikhande ()))

let test_cr_path_colors () =
  (* On P5 the stable colouring groups vertices by distance to the ends. *)
  let result = Cr.run (Generators.path 5) in
  match Cr.stable_colors result with
  | [ colors ] ->
      check_bool "ends equal" true (colors.(0) = colors.(4));
      check_bool "second pair equal" true (colors.(1) = colors.(3));
      check_bool "middle distinct" false (colors.(2) = colors.(0));
      check_bool "end vs second" false (colors.(0) = colors.(1))
  | _ -> Alcotest.fail "expected one graph"

let test_cr_respects_labels () =
  let g = Generators.cycle 4 in
  let h = Graph.with_one_hot_labels g [| 0; 1; 0; 1 |] ~n_colors:2 in
  check_bool "labels break symmetry" false (Cr.equivalent_graphs g h)

let prop_cr_invariant_under_iso =
  qtest "CR invariant under isomorphism" (graph_arbitrary ~max_n:9 ()) (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.permute g (permutation_of input) in
      Cr.equivalent_graphs g h)

let prop_cr_rounds_monotone =
  qtest "refinement only splits classes" (graph_arbitrary ~max_n:9 ()) (fun input ->
      let g = graph_of input in
      let result = Cr.run g in
      let rounds = List.map (fun per_graph -> List.hd per_graph) (Cr.history result) in
      let rec check = function
        | a :: (b :: _ as rest) ->
            Partition.refines (Partition.of_classes b) (Partition.of_classes a) && check rest
        | _ -> true
      in
      check rounds)

let prop_cr_coarser_than_iso =
  qtest ~count:25 "isomorphic implies CR-equivalent" (graph_arbitrary ~max_n:8 ()) (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.shuffle (Rng.create 123) g in
      Cr.equivalent_graphs g h)

let test_cr_vertex_partition_sizes () =
  let corpus = [ Generators.cycle 3; Generators.path 3 ] in
  let p = Cr.vertex_partition corpus in
  check_int "total items" 6 (Partition.size p);
  (* C3 vertices form one class; P3 has ends and middle distinct from C3. *)
  check_int "classes" 3 (Partition.n_classes p)

let test_cr_stable_round () =
  (* [rounds] includes the final confirming round: P5 splits twice then
     confirms (3); a regular graph confirms immediately (1). *)
  check_int "path needs rounds" 3 (Cr.stable_round (Generators.path 5));
  check_int "regular graph stabilises immediately" 1 (Cr.stable_round (Generators.cycle 6))

(* --- k-WL ------------------------------------------------------------------- *)

let test_tuple_encoding () =
  let n = 5 and k = 3 in
  for idx = 0 to Kwl.tuple_count n k - 1 do
    let t = Kwl.decode_tuple ~n ~k idx in
    Alcotest.(check int) "roundtrip" idx (Kwl.encode_tuple ~n t)
  done

let test_kwl_known () =
  let c6 = Generators.cycle 6 in
  let c33 = Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3) in
  check_bool "2-FWL separates C6 vs 2C3" false
    (Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore c6 c33);
  check_bool "1-WL does not separate the regular pair" true
    (Kwl.equivalent_graphs ~k:1 ~variant:Kwl.Oblivious c6 c33);
  check_bool "2-FWL fooled by SRG pair" true
    (Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore (Generators.rook_4x4 ())
       (Generators.shrikhande ()))

let test_1owl_equals_cr () =
  (* Oblivious 1-WL is colour refinement. *)
  let graphs =
    [
      Generators.cycle 6;
      Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3);
      Generators.path 4;
      unlabel (Generators.star 3);
      Generators.petersen ();
    ]
  in
  let cr = Cr.graph_partition graphs in
  let owl1 = Kwl.graph_partition ~k:1 ~variant:Kwl.Oblivious graphs in
  check_bool "same partition" true (Partition.equal cr owl1)

let prop_kwl_invariant_under_iso =
  qtest ~count:20 "2-FWL invariant under isomorphism" (graph_arbitrary ~max_n:7 ()) (fun input ->
      let g = labelled_graph_of input in
      let h = Graph.permute g (permutation_of input) in
      Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore g h)

let prop_2fwl_refines_cr =
  qtest ~count:20 "2-FWL separates at least CR" (graph_arbitrary ~max_n:7 ()) (fun input ->
      let seed, n, density = input in
      let g = graph_of (seed, n, density) in
      let h = graph_of (seed + 1, n, density) in
      (* If 2-FWL deems them equivalent, CR must as well. *)
      (not (Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore g h)) || Cr.equivalent_graphs g h)

let prop_kwl_equiv_implies_not_distinguishable_by_iso_count =
  qtest ~count:15 "3-FWL equivalence implies isomorphism on tiny graphs"
    (graph_arbitrary ~min_n:2 ~max_n:5 ()) (fun input ->
      let seed, n, density = input in
      let g = graph_of (seed, n, density) in
      let h = graph_of (seed + 1, n, density) in
      (* On graphs with at most 5 vertices, 3-FWL decides isomorphism. *)
      Kwl.equivalent_graphs ~k:3 ~variant:Kwl.Folklore g h = Iso.are_isomorphic g h)

let test_kwl_cfi_hierarchy () =
  let a, b = Glql_graph.Cfi.pair (Generators.complete 3) in
  check_bool "CR fooled by CFI(K3)" true (Cr.equivalent_graphs a b);
  check_bool "2-FWL distinguishes CFI(K3)" false
    (Kwl.equivalent_graphs ~k:2 ~variant:Kwl.Folklore a b)

let test_kwl_accessors () =
  let r = Kwl.run_joint ~k:2 ~variant:Kwl.Folklore [ Generators.cycle 4 ] in
  check_int "dimension" 2 (Kwl.dimension r);
  check_bool "variant" true (Kwl.variant r = Kwl.Folklore);
  check_bool "rounds positive" true (Kwl.rounds r >= 1);
  (* Diagonal tuples of a vertex-transitive graph share a colour. *)
  let c00 = Kwl.tuple_color r 0 [| 0 |] in
  let c11 = Kwl.tuple_color r 0 [| 1 |] in
  check_int "diagonal colours equal" c00 c11


(* --- CR quotients --------------------------------------------------------- *)

module Quotient = Glql_wl.Quotient

let test_quotient_classes () =
  (* Regular graphs collapse to one class; P5 has 3. *)
  let q = Quotient.of_graph (Generators.petersen ()) in
  check_int "petersen classes" 1 q.Quotient.n_classes;
  check_int "petersen size" 10 q.Quotient.sizes.(0);
  check_int "petersen self-weight" 3 q.Quotient.weights.(0).(0);
  let q5 = Quotient.of_graph (Generators.path 5) in
  check_int "P5 classes" 3 q5.Quotient.n_classes

let prop_quotient_equitable =
  qtest ~count:25 "CR quotient is equitable" (graph_arbitrary ~min_n:1 ~max_n:9 ()) (fun input ->
      let g = labelled_graph_of input in
      Quotient.is_equitable g (Quotient.of_graph g))

let prop_quotient_sizes_sum =
  qtest ~count:20 "class sizes sum to n" (graph_arbitrary ~min_n:1 ~max_n:9 ()) (fun input ->
      let g = graph_of input in
      let q = Quotient.of_graph g in
      Array.fold_left ( + ) 0 q.Quotient.sizes = Graph.n_vertices g)

(* GNN evaluation on the quotient equals evaluation on the full graph. *)
let prop_quotient_preserves_gnn =
  qtest ~count:15 "quotient evaluation = full evaluation"
    (graph_arbitrary ~min_n:1 ~max_n:8 ()) (fun input ->
      let g = labelled_graph_of input in
      let module Compile_gnn = Glql_gel.Compile_gnn in
      let module Vec = Glql_tensor.Vec in
      let module Mat = Glql_tensor.Mat in
      let spec = Compile_gnn.random_gnn101 (Rng.create 55) ~in_dim:3 ~width:4 ~depth:2 ~out_dim:4 in
      let full = Compile_gnn.gnn101_graph_forward spec g in
      let q = Quotient.of_graph g in
      let layers = Array.of_list spec.Compile_gnn.layers in
      let per_class =
        Quotient.propagate q ~init:Fun.id
          ~update:(fun round self agg ->
            let l = layers.(round) in
            Glql_nn.Activation.apply_vec l.Compile_gnn.act
              (Vec.add
                 (Vec.add (Mat.vec_mul self l.Compile_gnn.w1) (Mat.vec_mul agg l.Compile_gnn.w2))
                 l.Compile_gnn.b))
          ~rounds:2
      in
      let pooled = Quotient.weighted_sum q per_class in
      let compressed =
        Glql_nn.Activation.apply_vec spec.Compile_gnn.readout_act
          (Vec.add (Mat.vec_mul pooled spec.Compile_gnn.readout_w) spec.Compile_gnn.readout_b)
      in
      Vec.linf_dist full compressed < 1e-9)

let suite =
  ( "wl",
    [
      case "partition basics" test_partition_basics;
      case "partition equal" test_partition_equal;
      case "partition refines" test_partition_refines;
      case "partition meet" test_partition_meet;
      case "partition classes" test_partition_classes;
      case "CR known pairs" test_cr_known_pairs;
      case "CR path colours" test_cr_path_colors;
      case "CR respects labels" test_cr_respects_labels;
      prop_cr_invariant_under_iso;
      prop_cr_rounds_monotone;
      prop_cr_coarser_than_iso;
      case "CR vertex partition" test_cr_vertex_partition_sizes;
      case "CR stable round" test_cr_stable_round;
      case "tuple encoding" test_tuple_encoding;
      case "kwl known verdicts" test_kwl_known;
      case "1-OWL = CR" test_1owl_equals_cr;
      prop_kwl_invariant_under_iso;
      prop_2fwl_refines_cr;
      prop_kwl_equiv_implies_not_distinguishable_by_iso_count;
      case "kwl CFI hierarchy" test_kwl_cfi_hierarchy;
      case "kwl accessors" test_kwl_accessors;
      case "quotient classes" test_quotient_classes;
      prop_quotient_equitable;
      prop_quotient_sizes_sum;
      prop_quotient_preserves_gnn;
    ] )
