#!/usr/bin/env python3
"""Fail when a fresh `bench --json` run regresses against the committed baseline.

Usage: check_regression.py BASELINE.json FRESH.json
           [--tolerance 0.30] [--min-ms 0.25] [--absolute]

Both files are the row lists `bench --json` writes: objects with a "name"
and a "time_ns" field (plus optional extras). Only rows present in both
files are compared; rows that exist on one side only are reported but
never fail the check (benchmarks come and go across PRs).

CI runners and the machine that produced the committed baseline run at
different speeds, so raw nanosecond comparisons would flag every row on a
slower runner. By default the check therefore normalises by the median
fresh/baseline ratio across all common rows — the machine-speed factor —
and fails on rows whose *normalised* ratio exceeds 1 + tolerance: a real
regression is a row that got slower relative to everything else. Pass
--absolute to compare raw ratios instead (useful when baseline and fresh
come from the same machine).

Rows whose baseline time is below --min-ms (default 0.25 ms) are
compared and printed but cannot fail the check: at that scale the
run-to-run noise of a timing harness on a shared runner is comparable
to the tolerance itself, so gating on them would flap. A real
regression in a micro-kernel still shows up in the larger rows that
call it.
"""

import json
import statistics
import sys


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    for row in rows:
        ns = row.get("time_ns")
        if isinstance(ns, (int, float)) and ns == ns and ns > 0:  # drop NaN / n-a rows
            out[row["name"]] = float(ns)
    return out


def main(argv):
    tolerance = 0.30
    min_ms = 0.25
    absolute = False
    args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--tolerance":
            tolerance = float(argv[i + 1])
            i += 2
        elif argv[i] == "--min-ms":
            min_ms = float(argv[i + 1])
            i += 2
        elif argv[i] == "--absolute":
            absolute = True
            i += 1
        else:
            args.append(argv[i])
            i += 1
    if len(args) != 2:
        sys.exit(__doc__.strip())

    baseline = load_rows(args[0])
    fresh = load_rows(args[1])
    common = sorted(set(baseline) & set(fresh))
    if not common:
        sys.exit("no common benchmark rows between baseline and fresh run")
    for name in sorted(set(baseline) ^ set(fresh)):
        side = "baseline" if name in baseline else "fresh"
        print(f"note: {name} only in {side} run, skipped")

    ratios = {name: fresh[name] / baseline[name] for name in common}
    speed = 1.0 if absolute else statistics.median(ratios.values())
    print(f"{len(common)} common rows; machine-speed factor {speed:.3f} "
          f"({'absolute' if absolute else 'median-normalised'}), tolerance {tolerance:.0%}")

    failed = []
    for name in common:
        normalised = ratios[name] / speed
        marker = ""
        if normalised > 1.0 + tolerance:
            if baseline[name] >= min_ms * 1e6:
                failed.append(name)
                marker = "  <-- REGRESSION"
            else:
                marker = "  (over tolerance, below floor — informational)"
        print(f"{name:45s} {baseline[name] / 1e6:12.3f}ms -> {fresh[name] / 1e6:12.3f}ms"
              f"  x{normalised:5.2f}{marker}")

    if failed:
        sys.exit(f"{len(failed)} row(s) regressed more than {tolerance:.0%}: "
                 + ", ".join(failed))
    print("no regression beyond tolerance")


if __name__ == "__main__":
    main(sys.argv)
