(* gelq — run GEL queries against graphs from the command line.

     dune exec bin/gelq.exe -- '<expression>' [graph]
     dune exec bin/gelq.exe -- --list-graphs

   where [graph] is any spec the server registry understands (see
   --list-graphs): fixed names like petersen or rook, sized patterns like
   cycle9 or grid3x4, and '+'-joined disjoint unions like cycle3+cycle3.

   Examples:

     gelq 'agg_sum{x2}([1] | E(x1,x2))'                        # degrees
     gelq 'agg_sum{x1,x2,x3}(product(E(x1,x2), product(E(x2,x3), E(x3,x1))) | [1])' rook
     gelq 'agg_max{x2}(agg_count{x1}([1] | E(x2,x1)) | E(x1,x2))' path7 *)

module Graph = Glql_graph.Graph
module Expr = Glql_gel.Expr
module Parser = Glql_gel.Parser
module Vec = Glql_tensor.Vec
module Registry = Glql_server.Registry

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("gelq: " ^ msg);
      exit 1)
    fmt

let list_graphs () =
  print_endline "fixed graphs:";
  List.iter (Printf.printf "  %s\n") Registry.generator_names;
  print_endline "sized patterns:";
  List.iter (Printf.printf "  %s\n") Registry.generator_patterns;
  print_endline "disjoint unions: join any of the above with '+', e.g. cycle3+cycle3"

let run query graph_name =
  let g =
    match Registry.graph_of_spec graph_name with Ok g -> g | Error msg -> die "%s" msg
  in
  let e =
    match Parser.parse query with
    | e -> e
    | exception Parser.Parse_error msg -> die "parse error: %s" msg
    | exception Expr.Type_error msg -> die "type error: %s" msg
  in
  Printf.printf "query    : %s\n" (Expr.to_string e);
  Printf.printf "fragment : %s | dimension %d | free variables [%s]\n"
    (Expr.fragment_name (Expr.fragment e))
    (Expr.dim e)
    (String.concat "; " (List.map (Printf.sprintf "x%d") (Expr.free_vars e)));
  Printf.printf "graph    : %s (%d vertices, %d edges)\n\n" graph_name (Graph.n_vertices g)
    (Graph.n_edges g);
  let table =
    match Glql_util.Trace.with_span "execute" (fun () -> Expr.eval g e) with
    | t -> t
    | exception Expr.Type_error msg -> die "type error: %s" msg
  in
  match table.Expr.tvars with
  | [] -> Printf.printf "value = %s\n" (Vec.to_string table.Expr.tdata.(0))
  | [ _ ] ->
      Array.iteri
        (fun v value -> Printf.printf "v%-3d -> %s\n" v (Vec.to_string value))
        table.Expr.tdata
  | vars ->
      let n = Graph.n_vertices g in
      Array.iteri
        (fun idx value ->
          let tuple = ref [] in
          let rest = ref idx in
          for _ = 1 to List.length vars do
            tuple := (!rest mod n) :: !tuple;
            rest := !rest / n
          done;
          (* Print only nonzero entries for readability on big tables. *)
          if Array.exists (fun x -> x <> 0.0) value then
            Printf.printf "(%s) -> %s\n"
              (String.concat ", " (List.map string_of_int !tuple))
              (Vec.to_string value))
        table.Expr.tdata

let () =
  (* GLQL_TRACE=<file> dumps parse/compile/execute spans in Chrome trace
     format, same as glqld. *)
  Glql_util.Trace.setup_from_env ();
  match Array.to_list Sys.argv with
  | _ :: "--list-graphs" :: _ -> list_graphs ()
  | _ :: query :: rest ->
      let graph_name = match rest with g :: _ -> g | [] -> "petersen" in
      run query graph_name
  | _ ->
      prerr_endline "usage: gelq '<expression>' [graph]";
      prerr_endline "  e.g. gelq 'agg_sum{x2}([1] | E(x1,x2))' petersen";
      prerr_endline "  gelq --list-graphs lists the known graph specs";
      exit 1
