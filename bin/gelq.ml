(* gelq — run GEL queries against graphs from the command line.

     dune exec bin/gelq.exe -- '<expression>' [graph]
     dune exec bin/gelq.exe -- --load snap.glqs '<expression>' [graph]
     dune exec bin/gelq.exe -- --save snap.glqs '<expression>' [graph]
     dune exec bin/gelq.exe -- --mutate 'ADD_EDGES 0 2' '<expression>' [graph]
     dune exec bin/gelq.exe -- --list-graphs

   where [graph] is any spec the server registry understands (see
   --list-graphs): fixed names like petersen or rook, sized patterns like
   cycle9 or grid3x4, and '+'-joined disjoint unions like cycle3+cycle3.

   --save/--load exercise the snapshot store: --save writes the graph and
   compiled plan to a snapshot after the query runs; --load seeds them
   from one first (reporting whether the plan cache was hit), so a
   saved-then-loaded query replays without recompilation.

   Examples:

     gelq 'agg_sum{x2}([1] | E(x1,x2))'                        # degrees
     gelq 'agg_sum{x1,x2,x3}(product(E(x1,x2), product(E(x2,x3), E(x3,x1))) | [1])' rook
     gelq 'agg_max{x2}(agg_count{x1}([1] | E(x2,x1)) | E(x1,x2))' path7 *)

module Graph = Glql_graph.Graph
module Expr = Glql_gel.Expr
module Parser = Glql_gel.Parser
module Vec = Glql_tensor.Vec
module Registry = Glql_server.Registry
module Cache = Glql_server.Cache
module Persist = Glql_server.Persist
module P = Glql_server.Protocol

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("gelq: " ^ msg);
      exit 1)
    fmt

let list_graphs () =
  print_endline "fixed graphs:";
  List.iter (Printf.printf "  %s\n") Registry.generator_names;
  print_endline "sized patterns:";
  List.iter (Printf.printf "  %s\n") Registry.generator_patterns;
  print_endline "disjoint unions: join any of the above with '+', e.g. cycle3+cycle3"

let print_header query_str g graph_name e =
  Printf.printf "query    : %s\n" query_str;
  Printf.printf "fragment : %s | dimension %d | free variables [%s]\n"
    (Expr.fragment_name (Expr.fragment e))
    (Expr.dim e)
    (String.concat "; " (List.map (Printf.sprintf "x%d") (Expr.free_vars e)));
  Printf.printf "graph    : %s (%d vertices, %d edges)\n" graph_name (Graph.n_vertices g)
    (Graph.n_edges g)

let print_table g table =
  match table.Expr.tvars with
  | [] -> Printf.printf "value = %s\n" (Vec.to_string table.Expr.tdata.(0))
  | [ _ ] ->
      Array.iteri
        (fun v value -> Printf.printf "v%-3d -> %s\n" v (Vec.to_string value))
        table.Expr.tdata
  | vars ->
      let n = Graph.n_vertices g in
      Array.iteri
        (fun idx value ->
          let tuple = ref [] in
          let rest = ref idx in
          for _ = 1 to List.length vars do
            tuple := (!rest mod n) :: !tuple;
            rest := !rest / n
          done;
          (* Print only nonzero entries for readability on big tables. *)
          if Array.exists (fun x -> x <> 0.0) value then
            Printf.printf "(%s) -> %s\n"
              (String.concat ", " (List.map string_of_int !tuple))
              (Vec.to_string value))
        table.Expr.tdata

let run query graph_name =
  let g =
    match Registry.graph_of_spec graph_name with Ok g -> g | Error msg -> die "%s" msg
  in
  let e =
    match Parser.parse query with
    | e -> e
    | exception Parser.Parse_error msg -> die "parse error: %s" msg
    | exception Expr.Type_error msg -> die "type error: %s" msg
  in
  print_header (Expr.to_string e) g graph_name e;
  print_newline ();
  let table =
    match Glql_util.Trace.with_span "execute" (fun () -> Expr.eval g e) with
    | t -> t
    | exception Expr.Type_error msg -> die "type error: %s" msg
  in
  print_table g table

(* --mutate OPS: parse the ops with the server's own MUTATE grammar and
   apply them through Registry.mutate, so the command line exercises the
   exact batch semantics of the wire protocol. *)
let apply_mutation registry graph_name ops_src =
  let ops =
    match Result.bind (P.tokenize ops_src) P.parse_mutations with
    | Ok ms ->
        List.map
          (function
            | P.M_add_edge (u, v) -> Registry.Add_edge (u, v)
            | P.M_del_edge (u, v) -> Registry.Del_edge (u, v)
            | P.M_set_label (v, fs) -> Registry.Set_label (v, fs))
          ms
    | Error msg -> die "--mutate: %s" msg
  in
  match Registry.mutate registry ~name:graph_name ops with
  | Error msg -> die "--mutate: %s" msg
  | Ok o ->
      Printf.printf "mutate   : +%d edges, -%d edges, %d labels (generation %d -> %d)\n"
        o.Registry.m_added o.Registry.m_deleted o.Registry.m_relabeled o.Registry.m_old_gen
        o.Registry.m_gen;
      List.iter
        (fun (r : Registry.rejected) ->
          Printf.printf "mutate   : rejected op %d (%s): %s\n" r.Registry.r_index
            r.Registry.r_op r.Registry.r_message)
        o.Registry.m_rejected;
      o.Registry.m_graph

(* The --save/--load/--mutate path: same query, but routed through the
   server's registry + plan cache so snapshots round-trip through the
   exact structures glqld persists (and mutations through the exact
   batch semantics glqld applies). *)
let run_cached ~load ~save ~mutate query graph_name =
  let registry = Registry.create () in
  let cache = Cache.create ~plan_capacity:64 ~coloring_capacity:16 () in
  (match load with
  | None -> ()
  | Some path -> (
      match Persist.restore ~registry ~cache ~metrics:None path with
      | Ok s ->
          Printf.printf "snapshot : loaded %s (%d graphs, %d plans, %d colorings)\n" path
            s.Persist.s_graphs s.Persist.s_plans s.Persist.s_colorings
      | Error msg -> die "%s: %s" path msg));
  let g = match Registry.find registry graph_name with Ok g -> g | Error msg -> die "%s" msg in
  let g =
    match mutate with None -> g | Some ops_src -> apply_mutation registry graph_name ops_src
  in
  let plan, hit =
    match Cache.plan cache query with Ok r -> r | Error msg -> die "%s" msg
  in
  print_header (Expr.to_string plan.Cache.expr) g graph_name plan.Cache.expr;
  Printf.printf "plan     : %s (plan cache %s)\n"
    (match plan.Cache.layered with Some _ -> "layered" | None -> "direct")
    (match hit with `Hit -> "hit" | `Miss -> "miss");
  print_newline ();
  let table =
    match Glql_util.Trace.with_span "execute" (fun () -> Expr.eval g plan.Cache.expr) with
    | t -> t
    | exception Expr.Type_error msg -> die "type error: %s" msg
  in
  print_table g table;
  match save with
  | None -> ()
  | Some path -> (
      match Persist.save ~registry ~cache ~metrics:None ~producer:"gelq" path with
      | Ok s ->
          Printf.printf "\nsnapshot : wrote %s (%d bytes, %d graphs, %d plans)\n" path
            s.Persist.s_bytes s.Persist.s_graphs s.Persist.s_plans
      | Error msg -> die "%s: %s" path msg)

let () =
  (* GLQL_TRACE=<file> dumps parse/compile/execute spans in Chrome trace
     format, same as glqld. *)
  Glql_util.Trace.setup_from_env ();
  let save = ref None in
  let load = ref None in
  let mutate = ref None in
  let rec strip = function
    | "--save" :: path :: rest ->
        save := Some path;
        strip rest
    | "--load" :: path :: rest ->
        load := Some path;
        strip rest
    | "--mutate" :: ops :: rest ->
        mutate := Some ops;
        strip rest
    | ("--save" | "--load" | "--mutate") :: [] ->
        die "%s expects an argument" "--save/--load/--mutate"
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  match strip (List.tl (Array.to_list Sys.argv)) with
  | "--list-graphs" :: _ -> list_graphs ()
  | query :: rest ->
      let graph_name = match rest with g :: _ -> g | [] -> "petersen" in
      if !save = None && !load = None && !mutate = None then run query graph_name
      else run_cached ~load:!load ~save:!save ~mutate:!mutate query graph_name
  | [] ->
      prerr_endline "usage: gelq [--save FILE] [--load FILE] [--mutate 'OPS'] '<expression>' [graph]";
      prerr_endline "  e.g. gelq 'agg_sum{x2}([1] | E(x1,x2))' petersen";
      prerr_endline "  gelq --list-graphs lists the known graph specs";
      prerr_endline "  --save/--load write/read a glqld-compatible snapshot";
      prerr_endline "  --mutate applies a MUTATE batch (e.g. 'ADD_EDGES 0 2 DEL_EDGES 0 1') first";
      exit 1
