(* gelq — run GEL queries against graphs from the command line.

     dune exec bin/gelq.exe -- '<expression>' [graph]
     dune exec bin/gelq.exe -- --load snap.glqs '<expression>' [graph]
     dune exec bin/gelq.exe -- --save snap.glqs '<expression>' [graph]
     dune exec bin/gelq.exe -- --mutate 'ADD_EDGES 0 2' '<expression>' [graph]
     dune exec bin/gelq.exe -- --featurize 'deg;wl;hom3' [graph]
     dune exec bin/gelq.exe -- --train 'm ON petersen WITH deg;label TARGET <expr>'
     dune exec bin/gelq.exe -- --predict 'm 0 1 2' [graph]
     dune exec bin/gelq.exe -- --list-graphs

   where [graph] is any spec the server registry understands (see
   --list-graphs): fixed names like petersen or rook, sized patterns like
   cycle9 or grid3x4, and '+'-joined disjoint unions like cycle3+cycle3.

   --save/--load exercise the snapshot store: --save writes the graph and
   compiled plan to a snapshot after the query runs; --load seeds them
   from one first (reporting whether the plan cache was hit), so a
   saved-then-loaded query replays without recompilation.

   Examples:

     gelq 'agg_sum{x2}([1] | E(x1,x2))'                        # degrees
     gelq 'agg_sum{x1,x2,x3}(product(E(x1,x2), product(E(x2,x3), E(x3,x1))) | [1])' rook
     gelq 'agg_max{x2}(agg_count{x1}([1] | E(x2,x1)) | E(x1,x2))' path7 *)

module Graph = Glql_graph.Graph
module Expr = Glql_gel.Expr
module Parser = Glql_gel.Parser
module Vec = Glql_tensor.Vec
module Registry = Glql_server.Registry
module Cache = Glql_server.Cache
module Persist = Glql_server.Persist
module Models = Glql_server.Models
module Featurize = Glql_server.Featurize
module P = Glql_server.Protocol

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("gelq: " ^ msg);
      exit 1)
    fmt

let list_graphs () =
  print_endline "fixed graphs:";
  List.iter (Printf.printf "  %s\n") Registry.generator_names;
  print_endline "sized patterns:";
  List.iter (Printf.printf "  %s\n") Registry.generator_patterns;
  print_endline "disjoint unions: join any of the above with '+', e.g. cycle3+cycle3"

let print_header query_str g graph_name e =
  Printf.printf "query    : %s\n" query_str;
  Printf.printf "fragment : %s | dimension %d | free variables [%s]\n"
    (Expr.fragment_name (Expr.fragment e))
    (Expr.dim e)
    (String.concat "; " (List.map (Printf.sprintf "x%d") (Expr.free_vars e)));
  Printf.printf "graph    : %s (%d vertices, %d edges)\n" graph_name (Graph.n_vertices g)
    (Graph.n_edges g)

let print_table g table =
  match table.Expr.tvars with
  | [] -> Printf.printf "value = %s\n" (Vec.to_string table.Expr.tdata.(0))
  | [ _ ] ->
      Array.iteri
        (fun v value -> Printf.printf "v%-3d -> %s\n" v (Vec.to_string value))
        table.Expr.tdata
  | vars ->
      let n = Graph.n_vertices g in
      Array.iteri
        (fun idx value ->
          let tuple = ref [] in
          let rest = ref idx in
          for _ = 1 to List.length vars do
            tuple := (!rest mod n) :: !tuple;
            rest := !rest / n
          done;
          (* Print only nonzero entries for readability on big tables. *)
          if Array.exists (fun x -> x <> 0.0) value then
            Printf.printf "(%s) -> %s\n"
              (String.concat ", " (List.map string_of_int !tuple))
              (Vec.to_string value))
        table.Expr.tdata

let run query graph_name =
  let g =
    match Registry.graph_of_spec graph_name with Ok g -> g | Error msg -> die "%s" msg
  in
  let e =
    match Parser.parse query with
    | e -> e
    | exception Parser.Parse_error msg -> die "parse error: %s" msg
    | exception Expr.Type_error msg -> die "type error: %s" msg
  in
  print_header (Expr.to_string e) g graph_name e;
  print_newline ();
  let table =
    match Glql_util.Trace.with_span "execute" (fun () -> Expr.eval g e) with
    | t -> t
    | exception Expr.Type_error msg -> die "type error: %s" msg
  in
  print_table g table

(* --mutate OPS: parse the ops with the server's own MUTATE grammar and
   apply them through Registry.mutate, so the command line exercises the
   exact batch semantics of the wire protocol. *)
let apply_mutation registry graph_name ops_src =
  let ops =
    match Result.bind (P.tokenize ops_src) P.parse_mutations with
    | Ok ms ->
        List.map
          (function
            | P.M_add_edge (u, v) -> Registry.Add_edge (u, v)
            | P.M_del_edge (u, v) -> Registry.Del_edge (u, v)
            | P.M_set_label (v, fs) -> Registry.Set_label (v, fs))
          ms
    | Error msg -> die "--mutate: %s" msg
  in
  match Registry.mutate registry ~name:graph_name ops with
  | Error msg -> die "--mutate: %s" msg
  | Ok o ->
      Printf.printf "mutate   : +%d edges, -%d edges, %d labels (generation %d -> %d)\n"
        o.Registry.m_added o.Registry.m_deleted o.Registry.m_relabeled o.Registry.m_old_gen
        o.Registry.m_gen;
      List.iter
        (fun (r : Registry.rejected) ->
          Printf.printf "mutate   : rejected op %d (%s): %s\n" r.Registry.r_index
            r.Registry.r_op r.Registry.r_message)
        o.Registry.m_rejected;
      o.Registry.m_graph

(* --featurize: 'RECIPE' or 'graph:RECIPE' / 'vertex:RECIPE'. The mode
   prefix is unambiguous: no column spec starts with either word. *)
let split_feat_mode arg =
  match String.index_opt arg ':' with
  | Some i -> (
      match P.feat_mode_of_token (String.sub arg 0 i) with
      | Ok mode -> (mode, String.sub arg (i + 1) (String.length arg - i - 1))
      | Error _ -> (P.Fm_vertex, arg))
  | None -> (P.Fm_vertex, arg)

let run_featurize registry cache graph_name arg =
  let mode, recipe = split_feat_mode arg in
  let g, gen =
    match Registry.find_entry registry graph_name with Ok e -> e | Error msg -> die "%s" msg
  in
  let cols =
    match Featurize.parse_recipe recipe with
    | Ok cols -> cols
    | Error msg -> die "ERR_BAD_RECIPE: %s" msg
  in
  match Featurize.build ~cache ~graph_name ~gen mode g cols with
  | Error (code, msg) -> die "%s: %s" code msg
  | Ok b ->
      Printf.printf "features : %s (%s mode): %d rows x %d cols\n" graph_name
        (P.feat_mode_name b.Featurize.b_mode)
        (Array.length b.Featurize.b_rows)
        b.Featurize.b_width;
      List.iter
        (fun (name, width) -> Printf.printf "  %-12s width %d\n" name width)
        b.Featurize.b_cols;
      Printf.printf "schema   : %s\n" (Featurize.schema_hash b.Featurize.b_schema);
      Printf.printf "digest   : %s\n" (Featurize.row_digest b.Featurize.b_rows)

(* --train: the argument is the TRAIN line minus the keyword, parsed by
   the server's own grammar ('NAME ON g WITH recipe TARGET expr ...'). *)
let run_train registry cache models arg =
  let spec =
    match P.tokenize arg with
    | Error msg -> die "--train: %s" msg
    | Ok [] -> die "--train: %s" P.train_usage
    | Ok (model :: rest) -> (
        match P.parse_train model rest with
        | Ok spec -> spec
        | Error msg -> die "--train: %s" msg)
  in
  match Models.train ~registry ~cache ~models spec with
  | Error (code, msg) -> die "%s: %s" code msg
  | Ok { Models.tr_stored = m; _ } ->
      Printf.printf "train    : %s (%s, %s mode) on [%s]: %d rows x %d features\n"
        m.Models.sm_name
        (Models.task_name m.Models.sm_task)
        (P.feat_mode_name m.Models.sm_mode)
        (String.concat "; " (List.map fst m.Models.sm_sources))
        m.Models.sm_rows (List.hd m.Models.sm_sizes);
      let losses = m.Models.sm_losses in
      let final = if Array.length losses = 0 then nan else losses.(Array.length losses - 1) in
      Printf.printf "           %d epochs, final loss %.6f, train %.4f, test %.4f\n"
        m.Models.sm_epochs final m.Models.sm_train_metric m.Models.sm_test_metric

(* --predict: 'MODEL [v1 v2 ...]' against the positional graph. *)
let run_predict registry cache models graph_name arg =
  let model, vertices =
    match P.tokenize arg with
    | Error msg -> die "--predict: %s" msg
    | Ok [] -> die "--predict: expected MODEL [vertices]"
    | Ok (model :: rest) ->
        ( model,
          List.map
            (fun tok ->
              match int_of_string_opt tok with
              | Some v -> v
              | None -> die "--predict: bad vertex %S" tok)
            rest )
  in
  match Models.predict ~registry ~cache ~models ~model ~graph:graph_name ~vertices () with
  | Error (code, msg) -> die "%s: %s" code msg
  | Ok p ->
      Printf.printf "predict  : %s on %s (%d rows)%s\n" model graph_name
        (Array.length p.Models.pr_rows)
        (if p.Models.pr_stale then " [stale: source graph mutated since training]" else "");
      let shown = min 20 (Array.length p.Models.pr_rows) in
      for i = 0 to shown - 1 do
        let row, score = p.Models.pr_rows.(i) in
        Printf.printf "  row %-4d -> %.6f\n" row score
      done;
      if shown < Array.length p.Models.pr_rows then
        Printf.printf "  ... %d more rows\n" (Array.length p.Models.pr_rows - shown)

(* The --save/--load/--mutate/--featurize/--train/--predict path: routed
   through the server's registry + plan cache + model registry so
   snapshots round-trip through the exact structures glqld persists
   (and mutations / training through the exact semantics glqld
   applies). [query] is optional: model operations stand alone. *)
let run_cached ~load ~save ~mutate ~featurize ~train ~predict query graph_name =
  let registry = Registry.create () in
  let cache = Cache.create ~plan_capacity:64 ~coloring_capacity:16 () in
  let models = Models.create () in
  (match load with
  | None -> ()
  | Some path -> (
      match Persist.restore ~registry ~cache ~models:(Some models) ~metrics:None path with
      | Ok s ->
          Printf.printf "snapshot : loaded %s (%d graphs, %d plans, %d colorings, %d models)\n"
            path s.Persist.s_graphs s.Persist.s_plans s.Persist.s_colorings s.Persist.s_models
      | Error msg -> die "%s: %s" path msg));
  (match mutate with
  | None -> ()
  | Some ops_src ->
      (match Registry.find registry graph_name with Ok _ -> () | Error msg -> die "%s" msg);
      ignore (apply_mutation registry graph_name ops_src));
  (match query with
  | None -> ()
  | Some query ->
      let g =
        match Registry.find registry graph_name with Ok g -> g | Error msg -> die "%s" msg
      in
      let plan, hit =
        match Cache.plan cache query with Ok r -> r | Error msg -> die "%s" msg
      in
      print_header (Expr.to_string plan.Cache.expr) g graph_name plan.Cache.expr;
      Printf.printf "plan     : %s (plan cache %s)\n"
        (match plan.Cache.layered with Some _ -> "layered" | None -> "direct")
        (match hit with `Hit -> "hit" | `Miss -> "miss");
      print_newline ();
      let table =
        match Glql_util.Trace.with_span "execute" (fun () -> Expr.eval g plan.Cache.expr) with
        | t -> t
        | exception Expr.Type_error msg -> die "type error: %s" msg
      in
      print_table g table);
  Option.iter (run_featurize registry cache graph_name) featurize;
  Option.iter (run_train registry cache models) train;
  Option.iter (run_predict registry cache models graph_name) predict;
  match save with
  | None -> ()
  | Some path -> (
      match
        Persist.save ~registry ~cache ~models:(Some models) ~metrics:None ~producer:"gelq" path
      with
      | Ok s ->
          Printf.printf "\nsnapshot : wrote %s (%d bytes, %d graphs, %d plans, %d models)\n" path
            s.Persist.s_bytes s.Persist.s_graphs s.Persist.s_plans s.Persist.s_models
      | Error msg -> die "%s: %s" path msg)

let () =
  (* GLQL_TRACE=<file> dumps parse/compile/execute spans in Chrome trace
     format, same as glqld. *)
  Glql_util.Trace.setup_from_env ();
  let save = ref None in
  let load = ref None in
  let mutate = ref None in
  let featurize = ref None in
  let train = ref None in
  let predict = ref None in
  let rec strip = function
    | "--save" :: path :: rest ->
        save := Some path;
        strip rest
    | "--load" :: path :: rest ->
        load := Some path;
        strip rest
    | "--mutate" :: ops :: rest ->
        mutate := Some ops;
        strip rest
    | "--featurize" :: recipe :: rest ->
        featurize := Some recipe;
        strip rest
    | "--train" :: spec :: rest ->
        train := Some spec;
        strip rest
    | "--predict" :: spec :: rest ->
        predict := Some spec;
        strip rest
    | (("--save" | "--load" | "--mutate" | "--featurize" | "--train" | "--predict") as flag) :: []
      ->
        die "%s expects an argument" flag
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let model_ops () = !featurize <> None || !train <> None || !predict <> None in
  match strip (List.tl (Array.to_list Sys.argv)) with
  | "--list-graphs" :: _ -> list_graphs ()
  | positional when model_ops () ->
      (* Model operations stand alone: the (optional) positional is the
         graph, not a query. *)
      let graph_name = match positional with g :: _ -> g | [] -> "petersen" in
      run_cached ~load:!load ~save:!save ~mutate:!mutate ~featurize:!featurize ~train:!train
        ~predict:!predict None graph_name
  | query :: rest ->
      let graph_name = match rest with g :: _ -> g | [] -> "petersen" in
      if !save = None && !load = None && !mutate = None then run query graph_name
      else
        run_cached ~load:!load ~save:!save ~mutate:!mutate ~featurize:None ~train:None
          ~predict:None (Some query) graph_name
  | [] ->
      prerr_endline
        "usage: gelq [--save FILE] [--load FILE] [--mutate 'OPS'] '<expression>' [graph]";
      prerr_endline "  e.g. gelq 'agg_sum{x2}([1] | E(x1,x2))' petersen";
      prerr_endline "  gelq --list-graphs lists the known graph specs";
      prerr_endline "  --save/--load write/read a glqld-compatible snapshot";
      prerr_endline "  --mutate applies a MUTATE batch (e.g. 'ADD_EDGES 0 2 DEL_EDGES 0 1') first";
      prerr_endline "  --featurize '[graph:|vertex:]RECIPE' prints the feature matrix shape/digest";
      prerr_endline "  --train 'NAME ON g WITH recipe TARGET expr' fits and registers a model";
      prerr_endline "  --predict 'NAME [v...]' scores a graph with a trained model";
      exit 1
