(* glql_client — send requests to a running glqld.

     glql_client [--socket PATH | --tcp HOST:PORT] <request words...>
     glql_client [--socket PATH | --tcp HOST:PORT]        # REPL on stdin
     glql_client [...] --mutate GRAPH [op words...]       # one MUTATE batch

   With request words, sends one request (words containing blanks are
   re-quoted, so a shell-quoted GEL expression survives) and prints the
   reply; exits 0 on an OK reply, 1 otherwise. Without words, reads
   requests line by line from stdin until EOF.

   --mutate GRAPH assembles one protocol-v5 MUTATE batch: the ops come
   from the remaining request words when given, otherwise one section
   per stdin line (e.g. "ADD_EDGES 0 1 1 2" / "SET_LABEL 3 1.0"), all
   sent as a single atomic batch. Unlike other one-shot requests a
   MUTATE is never replayed after a dropped connection — it is not
   idempotent, and the server may have applied it before dying.

   --featurize GRAPH / --train MODEL / --predict MODEL assemble the
   protocol-v6 model-serving commands the same way (FEATURIZE takes the
   recipe and optional VERTEX/GRAPH mode, TRAIN the ON/WITH/TARGET
   sections, PREDICT the graph and optional vertices). TRAIN writes to
   the model registry, so like MUTATE it is never replayed. *)

module P = Glql_server.Protocol

let connect ~socket ~tcp =
  match tcp with
  | Some (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith ("unknown host " ^ host)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd
  | None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      fd

(* A restarting server (the sharded router relaunching, a daemon
   rolling over) refuses connections for a moment; retry with linear
   backoff (0.2s, 0.4s, 0.6s) before giving up, so supervised restarts
   don't flake scripted clients. ENOENT covers a unix socket the server
   unlinked but has not re-bound yet. Any other failure — or exhausted
   retries — still exits 1 with the error on stderr. *)
let connect_with_retry ~socket ~tcp =
  let rec go attempt =
    match connect ~socket ~tcp with
    | fd -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT), _, _)
      when attempt < 3 ->
        let delay = 0.2 *. float_of_int attempt in
        Printf.eprintf "glql_client: connect failed, retrying in %.1fs\n%!" delay;
        ignore (Unix.select [] [] [] delay);
        go (attempt + 1)
  in
  go 1

(* Pull the integer after ["protocol_version":] out of a HELLO reply
   without a JSON parser (replies are one-line JSON objects). *)
let scan_protocol_version reply =
  let needle = "\"protocol_version\":" in
  let nl = String.length needle in
  let n = String.length reply in
  let rec find i =
    if i + nl > n then None
    else if String.sub reply i nl = needle then begin
      let j = ref (i + nl) in
      let start = !j in
      while !j < n && reply.[!j] >= '0' && reply.[!j] <= '9' do
        incr j
      done;
      if !j > start then int_of_string_opt (String.sub reply start (!j - start)) else None
    end
    else find (i + 1)
  in
  find 0

let quote_word w =
  if w = "" then "''"
  else if String.exists (fun c -> c = ' ' || c = '\t' || c = '\'' || c = '"') w then
    (* Prefer single quotes; fall back to double when the word has one. *)
    if String.contains w '\'' then "\"" ^ w ^ "\"" else "'" ^ w ^ "'"
  else w

let () =
  let socket = ref "glqld.sock" in
  let tcp = ref "" in
  let mutate = ref "" in
  let featurize = ref "" in
  let train = ref "" in
  let predict = ref "" in
  let words = ref [] in
  let spec =
    [
      ("--socket", Arg.Set_string socket, "PATH Unix-domain socket of glqld (default glqld.sock)");
      ("--tcp", Arg.Set_string tcp, "HOST:PORT connect over TCP instead");
      ( "--mutate",
        Arg.Set_string mutate,
        "GRAPH send one MUTATE batch (ops from remaining words, else one section per stdin line)"
      );
      ( "--featurize",
        Arg.Set_string featurize,
        "GRAPH send one FEATURIZE (recipe and optional mode from the remaining words)" );
      ( "--train",
        Arg.Set_string train,
        "MODEL send one TRAIN (ON/WITH/TARGET sections from remaining words or stdin lines)" );
      ( "--predict",
        Arg.Set_string predict,
        "MODEL send one PREDICT (graph and optional vertices from the remaining words)" );
    ]
  in
  let usage = "glql_client: talk to a glqld server.\nusage: glql_client [options] [request words]" in
  Arg.parse spec (fun w -> words := w :: !words) usage;
  let words = List.rev !words in
  let tcp_target =
    if !tcp = "" then None
    else
      match String.rindex_opt !tcp ':' with
      | Some i -> (
          let host = String.sub !tcp 0 i in
          match int_of_string_opt (String.sub !tcp (i + 1) (String.length !tcp - i - 1)) with
          | Some port -> Some ((if host = "" then "127.0.0.1" else host), port)
          | None ->
              prerr_endline "glql_client: --tcp expects HOST:PORT";
              exit 1)
      | None ->
          prerr_endline "glql_client: --tcp expects HOST:PORT";
          exit 1
  in
  (* Connect plus version handshake: HELLO first, compare the server's
     protocol_version with ours and warn (stderr only — stdout carries
     exactly the replies to the user's requests). *)
  let open_session () =
    let fd = connect_with_retry ~socket:!socket ~tcp:tcp_target in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try
       output_string oc "HELLO\n";
       flush oc;
       let reply = input_line ic in
       match scan_protocol_version reply with
       | Some v when v <> P.protocol_version ->
           Printf.eprintf
             "glql_client: warning: server speaks protocol v%d, client expects v%d\n%!" v
             P.protocol_version
       | Some _ -> ()
       | None ->
           Printf.eprintf
             "glql_client: warning: server did not report a protocol version (expected v%d)\n%!"
             P.protocol_version
     with End_of_file | Sys_error _ ->
       prerr_endline "glql_client: warning: server closed the connection during handshake");
    (fd, ic, oc)
  in
  match open_session () with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "glql_client: cannot connect (%s)\n" (Unix.error_message e);
      exit 1
  | exception Failure msg ->
      Printf.eprintf "glql_client: %s\n" msg;
      exit 1
  | fd, ic, oc -> (
      let roundtrip ic oc line =
        output_string oc (line ^ "\n");
        flush oc;
        match input_line ic with
        | reply ->
            print_endline reply;
            Some (P.is_ok reply)
        | exception End_of_file -> None
      in
      (* Assemble a one-command batch line (MUTATE / FEATURIZE / TRAIN /
         PREDICT): the tail comes from the request words when given,
         otherwise one section per non-blank stdin line. *)
      let gather flag =
        let ops =
          match words with
          | _ :: _ -> List.map quote_word words
          | [] ->
              let lines = ref [] in
              (try
                 while true do
                   let l = String.trim (input_line stdin) in
                   if l <> "" then lines := l :: !lines
                 done
               with End_of_file -> ());
              List.rev !lines
        in
        if ops = [] then begin
          Printf.eprintf "glql_client: %s needs request words (arguments or stdin lines)\n%!" flag;
          exit 1
        end;
        ops
      in
      let request =
        if !mutate <> "" then
          Some (String.concat " " ("MUTATE" :: quote_word !mutate :: gather "--mutate"), false)
        else if !train <> "" then
          (* Like MUTATE, a TRAIN is never replayed after a dropped
             connection: it writes to the model registry and the server
             may have committed it before dying. *)
          Some (String.concat " " ("TRAIN" :: quote_word !train :: gather "--train"), false)
        else if !featurize <> "" then
          Some
            (String.concat " " ("FEATURIZE" :: quote_word !featurize :: gather "--featurize"), true)
        else if !predict <> "" then
          Some (String.concat " " ("PREDICT" :: quote_word !predict :: gather "--predict"), true)
        else
          match words with
          | [] -> None
          | words -> Some (String.concat " " (List.map quote_word words), true)
      in
      match request with
      | None ->
          (* REPL: one request per stdin line until EOF. Requests the
             server died on are not replayed — a REPL stream may hold
             non-idempotent state the user must re-drive themselves. *)
          let ok = ref true in
          (try
             while true do
               let line = input_line stdin in
               if String.trim line <> "" then
                 match roundtrip ic oc line with
                 | Some r -> ok := r && !ok
                 | None ->
                     prerr_endline "glql_client: server closed the connection";
                     ok := false;
                     raise End_of_file
             done
           with End_of_file -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          exit (if !ok then 0 else 1)
      | Some (line, replayable) ->
          let ok =
            match roundtrip ic oc line with
            | Some r -> r
            | None when not replayable ->
                (* A MUTATE may have been applied before the connection
                   died; replaying could double-apply it. *)
                prerr_endline
                  "glql_client: server closed the connection (MUTATE is not replayed)";
                false
            | None -> (
                (* The server vanished mid-request (router restarting a
                   worker, daemon rolling over). One request is safe to
                   replay, so reconnect — with the same backoff — and
                   resend once. *)
                prerr_endline "glql_client: server closed the connection; resending once";
                (try Unix.close fd with Unix.Unix_error _ -> ());
                match open_session () with
                | exception Unix.Unix_error (e, _, _) ->
                    Printf.eprintf "glql_client: cannot reconnect (%s)\n" (Unix.error_message e);
                    false
                | fd2, ic2, oc2 ->
                    let r =
                      match roundtrip ic2 oc2 line with
                      | Some r -> r
                      | None ->
                          prerr_endline "glql_client: server closed the connection";
                          false
                    in
                    (try Unix.close fd2 with Unix.Unix_error _ -> ());
                    r)
          in
          (try Unix.close fd with Unix.Unix_error _ -> ());
          exit (if ok then 0 else 1))
