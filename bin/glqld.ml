(* glqld — the persistent GEL query server.

     dune exec bin/glqld.exe -- [--socket PATH] [--tcp PORT] [options]

   Speaks the newline-delimited protocol of Glql_server.Protocol over a
   Unix-domain socket (and optionally TCP on localhost). See README.md
   "Serving" for the protocol grammar and an example session. *)

module Server = Glql_server.Server
module Router = Glql_server.Router
module Shard = Glql_server.Shard

let () =
  let socket = ref "glqld.sock" in
  let no_socket = ref false in
  let tcp = ref 0 in
  let router = ref false in
  let workers = ref 3 in
  let respawn = ref false in
  let plan_cache = ref Server.default_config.Server.plan_cache_capacity in
  let coloring_cache = ref Server.default_config.Server.coloring_cache_capacity in
  let plan_cache_bytes = ref Server.default_config.Server.plan_cache_bytes in
  let coloring_cache_bytes = ref Server.default_config.Server.coloring_cache_bytes in
  let feature_cache_bytes = ref Server.default_config.Server.feature_cache_bytes in
  let retrain_stale = ref Server.default_config.Server.retrain_stale_s in
  let timeout = ref Server.default_config.Server.request_timeout_s in
  let max_cells = ref Server.default_config.Server.max_table_cells in
  let max_conns = ref Server.default_config.Server.max_connections in
  let max_line_bytes = ref Server.default_config.Server.max_line_bytes in
  let max_inbuf = ref Server.default_config.Server.max_inbuf_bytes in
  let metrics_file = ref "" in
  let snapshot_file = ref "" in
  let probe_interval = ref Router.default_config.Router.probe_interval_s in
  let probe_timeout = ref Router.default_config.Router.probe_timeout_s in
  let verbose = ref false in
  let spec =
    [
      ("--socket", Arg.Set_string socket, "PATH Unix-domain socket path (default glqld.sock)");
      ("--no-socket", Arg.Set no_socket, " do not listen on a Unix socket (TCP only)");
      ("--tcp", Arg.Set_int tcp, "PORT also listen on localhost TCP PORT");
      ("--plan-cache", Arg.Set_int plan_cache, "N compiled-plan LRU capacity (default 128)");
      ( "--coloring-cache",
        Arg.Set_int coloring_cache,
        "N per-graph colouring LRU capacity (default 64)" );
      ( "--plan-cache-bytes",
        Arg.Set_int plan_cache_bytes,
        "N plan-cache byte budget, 0 disables (default 32 MiB)" );
      ( "--coloring-cache-bytes",
        Arg.Set_int coloring_cache_bytes,
        "N colouring-cache byte budget, 0 disables (default 256 MiB)" );
      ( "--feature-cache-bytes",
        Arg.Set_int feature_cache_bytes,
        "N feature-matrix cache byte budget, 0 disables (default 64 MiB)" );
      ( "--retrain-stale",
        Arg.Set_float retrain_stale,
        "SECONDS refit models with drifted source generations from the idle loop, 0 disables \
         (default 0)" );
      ( "--timeout",
        Arg.Set_float timeout,
        "SECONDS cooperative per-request deadline, 0 disables (default 30)" );
      ("--max-cells", Arg.Set_int max_cells, "N reject queries materialising more table cells");
      ( "--max-conns",
        Arg.Set_int max_conns,
        "N refuse connections beyond this many concurrent clients (default 256)" );
      ( "--max-line-bytes",
        Arg.Set_int max_line_bytes,
        "N drop clients whose request line exceeds N bytes, 0 disables (default 1 MiB)" );
      ( "--max-inbuf",
        Arg.Set_int max_inbuf,
        "N drop clients buffering N bytes without a newline, 0 disables (default 8 MiB)" );
      ( "--router",
        Arg.Set router,
        " sharded mode: spawn worker glqlds and route protocol v4 to them by graph name" );
      ( "--workers",
        Arg.Set_int workers,
        "N shard count in --router mode (default 3); workers listen on SOCKET.shard<i>" );
      ( "--respawn",
        Arg.Set respawn,
        " in --router mode, restart a dead worker from its last snapshot" );
      ( "--probe-interval",
        Arg.Set_float probe_interval,
        "SECONDS health-probe PING cadence in --router mode, 0 disables (default 2)" );
      ( "--probe-timeout",
        Arg.Set_float probe_timeout,
        "SECONDS mark a worker down after an unanswered probe this old (default 15)" );
      ("--metrics-file", Arg.Set_string metrics_file, "PATH dump metrics JSON here on shutdown");
      ( "--snapshot",
        Arg.Set_string snapshot_file,
        "FILE restore this snapshot at boot (if present) and write it on shutdown" );
      ("--verbose", Arg.Set verbose, " log connections and lifecycle events to stderr");
    ]
  in
  let usage = "glqld: GEL query server.\nusage: glqld [options]" in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  (* GLQL_TRACE=<file> dumps every span to a Chrome-trace JSON file. *)
  Glql_util.Trace.setup_from_env ();
  let config =
    {
      Server.socket_path = (if !no_socket then None else Some !socket);
      tcp_port = (if !tcp > 0 then Some !tcp else None);
      plan_cache_capacity = max 1 !plan_cache;
      coloring_cache_capacity = max 1 !coloring_cache;
      plan_cache_bytes = max 0 !plan_cache_bytes;
      coloring_cache_bytes = max 0 !coloring_cache_bytes;
      feature_cache_bytes = max 0 !feature_cache_bytes;
      retrain_stale_s = max 0.0 !retrain_stale;
      request_timeout_s = !timeout;
      max_table_cells = max 1 !max_cells;
      max_connections = max 1 !max_conns;
      max_line_bytes = max 0 !max_line_bytes;
      max_inbuf_bytes = max 0 !max_inbuf;
      metrics_file = (if !metrics_file = "" then None else Some !metrics_file);
      snapshot_file = (if !snapshot_file = "" then None else Some !snapshot_file);
      verbose = !verbose;
    }
  in
  let run () =
    if not !router then Server.serve (Server.create config)
    else begin
      (* Router front: N worker glqlds on SOCKET.shard<i>, each with a
         snapshot path next to its socket (so --respawn and SIGTERM
         leave warm-restart state), governed by the same flags. *)
      let exe = Sys.executable_name in
      let base_socket = !socket in
      let extra =
        [
          "--plan-cache"; string_of_int !plan_cache;
          "--coloring-cache"; string_of_int !coloring_cache;
          "--plan-cache-bytes"; string_of_int !plan_cache_bytes;
          "--coloring-cache-bytes"; string_of_int !coloring_cache_bytes;
          "--feature-cache-bytes"; string_of_int !feature_cache_bytes;
          (* Every member (primary and replicas) runs the same
             deterministic refit locally — that IS the replica mirroring
             for retrained models (same spec + seed => same weights). *)
          "--retrain-stale"; Printf.sprintf "%g" !retrain_stale;
          "--timeout"; Printf.sprintf "%g" !timeout;
          "--max-cells"; string_of_int !max_cells;
          "--max-conns"; string_of_int !max_conns;
          "--max-line-bytes"; string_of_int !max_line_bytes;
          "--max-inbuf"; string_of_int !max_inbuf;
        ]
        @ (if !verbose then [ "--verbose" ] else [])
      in
      let specs = Shard.plan ~exe ~base_socket ~extra ~shards:(max 1 !workers) in
      let router_config =
        {
          Router.socket_path = (if !no_socket then None else Some !socket);
          tcp_port = (if !tcp > 0 then Some !tcp else None);
          shards = max 1 !workers;
          respawn = !respawn;
          max_connections = max 1 !max_conns;
          max_line_bytes = max 0 !max_line_bytes;
          max_inbuf_bytes = max 0 !max_inbuf;
          boot_timeout_s = Router.default_config.Router.boot_timeout_s;
          drain_timeout_s = Router.default_config.Router.drain_timeout_s;
          probe_interval_s = !probe_interval;
          probe_timeout_s = !probe_timeout;
          make_replica =
            Some (fun ~shard ~index -> Shard.replica_spec ~exe ~base_socket ~extra ~shard ~index);
          verbose = !verbose;
        }
      in
      Router.serve (Router.create router_config specs)
    end
  in
  match run () with
  | _served -> exit 0
  | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "glqld: %s(%s): %s\n" fn arg (Unix.error_message e);
      exit 1
  | exception Invalid_argument msg ->
      Printf.eprintf "glqld: %s\n" msg;
      exit 1
