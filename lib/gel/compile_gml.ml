(* Compiling graded modal logic into MPNN(Omega, Theta) expressions
   (slide 54, after Barcelo et al., ICLR 2020).

   Every GML formula maps to a dimension-1 MPNN expression over {0,1}
   using only linear combinations, summation aggregation and the truncated
   ReLU sigma(x) = min(max(x, 0), 1):

     [p_j]          = sigma(lab_j(x))
     [not phi]      = sigma(1 - [phi])
     [phi and psi]  = sigma([phi] + [psi] - 1)
     [phi or psi]   = sigma([phi] + [psi])
     [<>_k phi]     = sigma(sum_{y ~ x} [phi](y) - (k - 1))

   On Boolean inputs these are exact, so the compiled expression computes
   the same unary query as the logic evaluator — experiment E6 checks
   this on random formulas and graphs. *)

module Mat = Glql_tensor.Mat
module Gml = Glql_logic.Gml
module Graph = Glql_graph.Graph
module B = Builder

let affine coeffs bias args =
  (* coeffs.(i) * arg_i + bias, all dimension 1 *)
  let ws = List.map (fun c -> Mat.init 1 1 (fun _ _ -> c)) coeffs in
  Expr.Apply (Func.linear_multi ~name:"affine" ws [| bias |], args)

(* Compile with both variable orientations so Diamond can alternate the
   two variables and stay in the guarded fragment, exactly like GNN layer
   compilation. *)
let rec compile phi = Glql_util.Trace.with_span "compile.gml" (fun () -> compile_untraced phi)

and compile_untraced phi =
  let rec go phi ~x ~y =
    match phi with
    | Gml.Top -> B.const1 1.0
    | Gml.Prop j -> B.trunc_relu (B.lab j x)
    | Gml.Not psi -> B.trunc_relu (affine [ -1.0 ] 1.0 [ go psi ~x ~y ])
    | Gml.And (a, b) -> B.trunc_relu (affine [ 1.0; 1.0 ] (-1.0) [ go a ~x ~y; go b ~x ~y ])
    | Gml.Or (a, b) -> B.trunc_relu (affine [ 1.0; 1.0 ] 0.0 [ go a ~x ~y; go b ~x ~y ])
    | Gml.Diamond (k, psi) ->
        let inner = go psi ~x:y ~y:x in
        let summed = B.sum_neighbors ~x ~y inner in
        B.trunc_relu (affine [ 1.0 ] (-.float_of_int (k - 1)) [ summed ])
  in
  go phi ~x:B.x1 ~y:B.x2

(* Truth table of the compiled expression: value >= 0.5 counts as true. *)
let eval_compiled phi g =
  let e = compile phi in
  Array.map (fun v -> v.(0) >= 0.5) (Expr.eval_vertexwise g e)

(* Does the compiled expression agree with the logic evaluator everywhere
   on [g]? *)
let agrees phi g =
  let direct = Gml.eval phi g in
  let compiled = eval_compiled phi g in
  direct = compiled
