(* Casting GNN architectures as MPNN(Omega, Theta) expressions
   (slides 40, 48, 63: "their layer definitions translate naturally into
   expressions in our language").

   Each architecture is described by an explicit weight specification; from
   it we produce (a) the MPNN expression and (b) a direct tensor-level
   forward pass.  The two must agree to numerical precision — a property
   test the suite checks — which is what "GNN X is an MPNN" means
   concretely. *)

module Vec = Glql_tensor.Vec
module Mat = Glql_tensor.Mat
module Graph = Glql_graph.Graph
module Activation = Glql_nn.Activation
module Mlp = Glql_nn.Mlp
module B = Builder

(* --- GNN 101 (slide 13) ------------------------------------------------ *)

type gnn101_layer = { w1 : Mat.t; w2 : Mat.t; b : Vec.t; act : Activation.t }

type gnn101 = {
  in_dim : int;
  layers : gnn101_layer list;
  readout_w : Mat.t;
  readout_b : Vec.t;
  readout_act : Activation.t;
}

let random_gnn101 rng ~in_dim ~width ~depth ~out_dim =
  let layer din =
    {
      w1 = Mat.glorot rng din width;
      w2 = Mat.glorot rng din width;
      b = Vec.gaussian rng width ~stddev:0.1;
      act = Activation.Sigmoid;
    }
  in
  {
    in_dim;
    layers = List.init depth (fun i -> layer (if i = 0 then in_dim else width));
    readout_w = Mat.glorot rng width out_dim;
    readout_b = Vec.zeros out_dim;
    readout_act = Activation.Identity;
  }

(* Vertex expression: F(t)(x) = act(F(t-1)(x) W1 + sum_{y ~ x} F(t-1)(y) W2 + b). *)
let gnn101_vertex_expr spec =
  Glql_util.Trace.with_span "compile.gnn" @@ fun () ->
  let x = B.x1 and y = B.x2 in
  let layer_expr (prev_x, prev_y) (l : gnn101_layer) =
    (* Both orientations are built so that the roles of x1/x2 swap at each
       nesting level, staying inside the two-variable fragment. *)
    let step ~self ~other ~sv ~ov =
      let summed = B.agg_neighbors (Agg.sum (Expr.dim other)) ~x:sv ~y:ov other in
      Expr.Apply
        ( Func.activation l.act (Vec.dim l.b),
          [ Expr.Apply (Func.linear_multi [ l.w1; l.w2 ] l.b, [ self; summed ]) ] )
    in
    (step ~self:prev_x ~other:prev_y ~sv:x ~ov:y, step ~self:prev_y ~other:prev_x ~sv:y ~ov:x)
  in
  let init_x = B.labels ~dim:spec.in_dim x and init_y = B.labels ~dim:spec.in_dim y in
  let final_x, _ = List.fold_left layer_expr (init_x, init_y) spec.layers in
  final_x

(* Graph expression: readout = act(sum_v F(L)(v) W + b) (slide 14). *)
let gnn101_graph_expr spec =
  let vexpr = gnn101_vertex_expr spec in
  let pooled = B.readout_sum ~x:B.x1 vexpr in
  Expr.Apply
    ( Func.activation spec.readout_act (Vec.dim spec.readout_b),
      [ Expr.Apply (Func.linear spec.readout_w spec.readout_b, [ pooled ]) ] )

(* Tensor-level reference forward (one row per vertex). *)
let gnn101_vertex_forward spec g =
  let n = Graph.n_vertices g in
  let h = ref (Mat.of_rows (Array.to_list (Array.init n (fun v -> Graph.label g v)))) in
  List.iter
    (fun (l : gnn101_layer) ->
      let ah = Glql_gnn.Propagate.sum_neighbors g !h in
      let z = Mat.add (Mat.mul !h l.w1) (Mat.mul ah l.w2) in
      for i = 0 to n - 1 do
        for j = 0 to Mat.cols z - 1 do
          Mat.set z i j (Mat.get z i j +. l.b.(j))
        done
      done;
      h := Activation.apply_mat l.act z)
    spec.layers;
  !h

let gnn101_graph_forward spec g =
  let h = gnn101_vertex_forward spec g in
  let pooled = Vec.zeros (Mat.cols h) in
  for i = 0 to Mat.rows h - 1 do
    Vec.add_inplace ~into:pooled (Mat.row h i)
  done;
  Activation.apply_vec spec.readout_act (Vec.add (Mat.vec_mul pooled spec.readout_w) spec.readout_b)

(* --- GIN (slide 34) ----------------------------------------------------- *)

type gin_layer = { eps : float; mlp : Mlp.t }

type gin = { gin_in_dim : int; gin_layers : gin_layer list }

let random_gin rng ~in_dim ~width ~depth =
  {
    gin_in_dim = in_dim;
    gin_layers =
      List.init depth (fun i ->
          let din = if i = 0 then in_dim else width in
          {
            eps = 0.1;
            mlp =
              Mlp.create rng ~sizes:[ din; width; width ] ~act:Activation.Relu
                ~out_act:Activation.Tanh;
          });
  }

(* GIN layer: h'(x) = MLP((1 + eps) h(x) + sum_{y~x} h(y)). *)
let gin_vertex_expr spec =
  Glql_util.Trace.with_span "compile.gnn" @@ fun () ->
  let x = B.x1 and y = B.x2 in
  let layer_expr (prev_x, prev_y) (l : gin_layer) =
    let step ~self ~other ~sv ~ov =
      let d = Expr.dim self in
      let summed = B.agg_neighbors (Agg.sum d) ~x:sv ~y:ov other in
      let combined = B.add (B.scale (1.0 +. l.eps) self) summed in
      Expr.Apply (Func.mlp l.mlp, [ combined ])
    in
    (step ~self:prev_x ~other:prev_y ~sv:x ~ov:y, step ~self:prev_y ~other:prev_x ~sv:y ~ov:x)
  in
  let init_x = B.labels ~dim:spec.gin_in_dim x and init_y = B.labels ~dim:spec.gin_in_dim y in
  fst (List.fold_left layer_expr (init_x, init_y) spec.gin_layers)

let gin_vertex_forward spec g =
  let n = Graph.n_vertices g in
  let h = ref (Mat.of_rows (Array.to_list (Array.init n (fun v -> Graph.label g v)))) in
  List.iter
    (fun (l : gin_layer) ->
      let s = Mat.add (Mat.scale (1.0 +. l.eps) !h) (Glql_gnn.Propagate.sum_neighbors g !h) in
      h := Mlp.forward l.mlp s)
    spec.gin_layers;
  !h

(* --- GCN (slide 38, Kipf & Welling) -------------------------------------- *)

type gcn_layer = { gw : Mat.t; gact : Activation.t }

type gcn = { gcn_in_dim : int; gcn_layers : gcn_layer list }

let random_gcn rng ~in_dim ~width ~depth =
  {
    gcn_in_dim = in_dim;
    gcn_layers =
      List.init depth (fun i ->
          { gw = Mat.glorot rng (if i = 0 then in_dim else width) width; gact = Activation.Tanh });
  }

(* GCN needs 1/sqrt(deg + 1): deg is itself an MPNN aggregation, and the
   normalisation is function application — the architecture stays inside
   MPNN(Omega, Theta) (slide 48). *)
let inv_sqrt1p = Func.scalar "invsqrt1p" (fun d -> 1.0 /. sqrt (d +. 1.0))

let gcn_vertex_expr spec =
  Glql_util.Trace.with_span "compile.gnn" @@ fun () ->
  let x = B.x1 and y = B.x2 in
  let layer_expr (prev_x, prev_y) (l : gcn_layer) =
    let step ~self ~other ~sv ~ov =
      let d = Expr.dim self in
      let c v vo = Expr.Apply (inv_sqrt1p, [ B.degree ~x:v ~y:vo ]) in
      (* message from each neighbour: h(y) * c(y) *)
      let msg = Expr.Apply (Func.scale_by d, [ other; c ov sv ]) in
      let summed = B.agg_neighbors (Agg.sum d) ~x:sv ~y:ov msg in
      (* self loop contributes c(x)^2 h(x); neighbour sum is scaled by c(x) *)
      let cx = c sv ov in
      let self_term = Expr.Apply (Func.scale_by d, [ Expr.Apply (Func.scale_by d, [ self; cx ]); cx ]) in
      let nb_term = Expr.Apply (Func.scale_by d, [ summed; cx ]) in
      let z = Expr.Apply (Func.linear l.gw (Vec.zeros (Mat.cols l.gw)), [ B.add self_term nb_term ]) in
      Expr.Apply (Func.activation l.gact (Mat.cols l.gw), [ z ])
    in
    (step ~self:prev_x ~other:prev_y ~sv:x ~ov:y, step ~self:prev_y ~other:prev_x ~sv:y ~ov:x)
  in
  let init_x = B.labels ~dim:spec.gcn_in_dim x and init_y = B.labels ~dim:spec.gcn_in_dim y in
  fst (List.fold_left layer_expr (init_x, init_y) spec.gcn_layers)

let gcn_vertex_forward spec g =
  let n = Graph.n_vertices g in
  let h = ref (Mat.of_rows (Array.to_list (Array.init n (fun v -> Graph.label g v)))) in
  List.iter
    (fun (l : gcn_layer) ->
      let p = Glql_gnn.Propagate.gcn_neighbors g !h in
      h := Activation.apply_mat l.gact (Mat.mul p l.gw))
    spec.gcn_layers;
  !h

(* --- GraphSAGE (slide 34), with a choice of aggregator ------------------- *)

type sage_layer = { wself : Mat.t; wnb : Mat.t; sb : Vec.t; sact : Activation.t }

type sage_agg = Sage_sum | Sage_mean | Sage_max

type sage = { sage_in_dim : int; sage_agg : sage_agg; sage_layers : sage_layer list }

let random_sage rng ~in_dim ~width ~depth ~agg =
  {
    sage_in_dim = in_dim;
    sage_agg = agg;
    sage_layers =
      List.init depth (fun i ->
          let din = if i = 0 then in_dim else width in
          {
            wself = Mat.glorot rng din width;
            wnb = Mat.glorot rng din width;
            sb = Vec.gaussian rng width ~stddev:0.1;
            sact = Activation.Sigmoid;
          });
  }

let sage_aggregator agg d =
  match agg with Sage_sum -> Agg.sum d | Sage_mean -> Agg.mean d | Sage_max -> Agg.max d

let sage_vertex_expr spec =
  Glql_util.Trace.with_span "compile.gnn" @@ fun () ->
  let x = B.x1 and y = B.x2 in
  let layer_expr (prev_x, prev_y) (l : sage_layer) =
    let step ~self ~other ~sv ~ov =
      let d = Expr.dim self in
      let agged = B.agg_neighbors (sage_aggregator spec.sage_agg d) ~x:sv ~y:ov other in
      Expr.Apply
        ( Func.activation l.sact (Vec.dim l.sb),
          [ Expr.Apply (Func.linear_multi [ l.wself; l.wnb ] l.sb, [ self; agged ]) ] )
    in
    (step ~self:prev_x ~other:prev_y ~sv:x ~ov:y, step ~self:prev_y ~other:prev_x ~sv:y ~ov:x)
  in
  let init_x = B.labels ~dim:spec.sage_in_dim x and init_y = B.labels ~dim:spec.sage_in_dim y in
  fst (List.fold_left layer_expr (init_x, init_y) spec.sage_layers)

let sage_vertex_forward spec g =
  let n = Graph.n_vertices g in
  let h = ref (Mat.of_rows (Array.to_list (Array.init n (fun v -> Graph.label g v)))) in
  List.iter
    (fun (l : sage_layer) ->
      let agged =
        match spec.sage_agg with
        | Sage_sum -> Glql_gnn.Propagate.sum_neighbors g !h
        | Sage_mean -> Glql_gnn.Propagate.mean_neighbors g !h
        | Sage_max -> fst (Glql_gnn.Propagate.max_neighbors g !h)
      in
      let z = Mat.add (Mat.mul !h l.wself) (Mat.mul agged l.wnb) in
      for i = 0 to n - 1 do
        for j = 0 to Mat.cols z - 1 do
          Mat.set z i j (Mat.get z i j +. l.sb.(j))
        done
      done;
      h := Activation.apply_mat l.sact z)
    spec.sage_layers;
  !h

(* --- GAT (slide 34): attention as two MPNN aggregations ------------------ *)

type gat_layer = { gat_w : Mat.t; a_src : Vec.t; a_dst : Vec.t }

type gat = { gat_in_dim : int; gat_layers : gat_layer list }

let random_gat rng ~in_dim ~width ~depth =
  {
    gat_in_dim = in_dim;
    gat_layers =
      List.init depth (fun i ->
          let din = if i = 0 then in_dim else width in
          {
            gat_w = Mat.glorot rng din width;
            a_src = Vec.gaussian rng width ~stddev:0.5;
            a_dst = Vec.gaussian rng width ~stddev:0.5;
          });
  }

let leaky = Func.scalar "leaky-relu" (fun v -> if v >= 0.0 then v else 0.2 *. v)

let exp_f = Func.scalar "exp" exp

(* Softmax attention = (sum of exp-weighted messages) / (sum of exp
   weights): both sums are neighbourhood aggregations, the quotient is
   function application — so GAT lives in MPNN(Omega, Theta) too. *)
let gat_vertex_expr spec =
  Glql_util.Trace.with_span "compile.gnn" @@ fun () ->
  let x = B.x1 and y = B.x2 in
  let layer_expr (prev_x, prev_y) (l : gat_layer) =
    let step ~self ~other ~sv ~ov =
      let dout = Mat.cols l.gat_w in
      let hw e = Expr.Apply (Func.linear l.gat_w (Vec.zeros dout), [ e ]) in
      let dot a e = Expr.Apply (Func.linear (Mat.init dout 1 (fun i _ -> a.(i))) [| 0.0 |], [ e ]) in
      let score = B.add (dot l.a_src (hw other)) (dot l.a_dst (hw self)) in
      let weight = Expr.Apply (exp_f, [ Expr.Apply (leaky, [ score ]) ]) in
      let weighted_msg = Expr.Apply (Func.scale_by dout, [ hw other; weight ]) in
      let num = B.agg_neighbors (Agg.sum dout) ~x:sv ~y:ov weighted_msg in
      let den = B.agg_neighbors (Agg.sum 1) ~x:sv ~y:ov weight in
      Expr.Apply (Func.divide_by dout, [ num; den ])
    in
    (step ~self:prev_x ~other:prev_y ~sv:x ~ov:y, step ~self:prev_y ~other:prev_x ~sv:y ~ov:x)
  in
  let init_x = B.labels ~dim:spec.gat_in_dim x and init_y = B.labels ~dim:spec.gat_in_dim y in
  fst (List.fold_left layer_expr (init_x, init_y) spec.gat_layers)

let gat_vertex_forward spec g =
  let n = Graph.n_vertices g in
  let h = ref (Mat.of_rows (Array.to_list (Array.init n (fun v -> Graph.label g v)))) in
  List.iter
    (fun (l : gat_layer) ->
      let hw = Mat.mul !h l.gat_w in
      let d = Mat.cols hw in
      let src = Array.init n (fun v -> Vec.dot (Mat.row hw v) l.a_src) in
      let dst = Array.init n (fun v -> Vec.dot (Mat.row hw v) l.a_dst) in
      let lk v = if v >= 0.0 then v else 0.2 *. v in
      let out = Mat.zeros n d in
      for v = 0 to n - 1 do
        let nb = Graph.neighbors g v in
        let weights = Array.map (fun u -> exp (lk (src.(u) +. dst.(v)))) nb in
        let z = Array.fold_left ( +. ) 0.0 weights in
        if z > 0.0 then
          Array.iteri
            (fun i u ->
              for j = 0 to d - 1 do
                Mat.set out v j (Mat.get out v j +. (weights.(i) /. z *. Mat.get hw u j))
              done)
            nb
      done;
      h := out)
    spec.gat_layers;
  !h
