(* Normal forms for MPNN(Omega, sum) expressions (slide 55, after
   Geerts-Steegmans-Van den Bussche, FoIKS 2022).

   A normal-form MPNN alternates pure function application with one plain
   neighbourhood sum of the full feature vector:

       phi(t)(x1) = F(t)( phi(t-1)(x1), agg_sum_{x2}(phi(t-1)(x2) | E(x1,x2)) )

   The transformation proceeds in two steps:

   1. *Separation* (the linearity-of-sum step): every aggregation
      agg_sum_{y}(value | E(x,y)) whose value mixes both variables is
      rewritten so the value only mentions the bound variable, by pushing
      the sum through concatenation, linear maps, products with an
      x-only factor, etc.; a value not mentioning y at all becomes
      deg(x) * value. Opaque function kinds block this and raise
      [Unsupported] — matching the theorem's restriction to sum
      aggregation (mean/max aggregators are rejected too).

   2. *Layering*: each remaining aggregation node gets two feature slots —
      its per-vertex message and its aggregated result. Layer 2t-1
      computes the messages of all depth-t aggregations by function
      application; layer 2t reads their neighbourhood sums off the
      aggregated feature vector. The final expression value is a function
      of the last feature vector.

   The result evaluates layer-by-layer like a GNN (fast path) and can be
   exported back as a bona-fide normal-form expression. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Trace = Glql_util.Trace

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let is_sum (th : Agg.t) = th.Agg.name = "sum"

module Memo = Hashtbl.Make (struct
  type t = Expr.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let deg ~x ~y = Expr.Agg (Agg.sum 1, [ y ], Expr.Const [| 1.0 |], Expr.Edge (x, y))

(* --- step 1: separation ------------------------------------------------- *)

(* [push ~x ~y value] builds an expression over {x} equal to
   sum_{y in N(x)} value(x, y). *)
let rec push ~x ~y value =
  let fv = Expr.free_vars value in
  let d = Expr.dim value in
  if fv = [] || fv = [ x ] then
    (* Independent of y: the sum is deg(x) copies. *)
    Expr.Apply (Func.scale_by d, [ value; deg ~x ~y ])
  else if fv = [ y ] then Expr.Agg (Agg.sum d, [ y ], value, Expr.Edge (x, y))
  else begin
    match value with
    | Expr.Edge (a, b) when (a = x && b = y) || (a = y && b = x) ->
        (* sum_{y ~ x} E(x,y) = deg(x). *)
        deg ~x ~y
    | Expr.Cmp (Expr.Cneq, a, b) when (a = x && b = y) || (a = y && b = x) ->
        (* Neighbours are never equal on simple graphs. *)
        deg ~x ~y
    | Expr.Cmp (Expr.Ceq, a, b) when (a = x && b = y) || (a = y && b = x) ->
        Expr.Const [| 0.0 |]
    | Expr.Apply (f, args) -> push_apply ~x ~y f args
    | _ -> unsupported "cannot push sum through %s" (Expr.to_string value)
  end

and push_apply ~x ~y f args =
  let open Func in
  match (f.kind, args) with
  | K_concat, _ ->
      let pushed = List.map (push ~x ~y) args in
      Expr.Apply (Func.concat (List.map Expr.dim pushed), pushed)
  | K_linear (w, b), [ arg ] ->
      (* sum (a W + b) = (sum a) W + deg * b *)
      let bmat = Mat.init 1 (Vec.dim b) (fun _ j -> b.(j)) in
      Expr.Apply
        ( Func.linear_multi ~name:"pushed-linear" [ w; bmat ] (Vec.zeros (Vec.dim b)),
          [ push ~x ~y arg; deg ~x ~y ] )
  | K_linear_multi (ws, b), _ ->
      let bmat = Mat.init 1 (Vec.dim b) (fun _ j -> b.(j)) in
      Expr.Apply
        ( Func.linear_multi ~name:"pushed-linear-multi" (ws @ [ bmat ]) (Vec.zeros (Vec.dim b)),
          List.map (push ~x ~y) args @ [ deg ~x ~y ] )
  | K_add, [ a; b ] -> Expr.Apply (f, [ push ~x ~y a; push ~x ~y b ])
  | K_scale _, [ a ] -> Expr.Apply (f, [ push ~x ~y a ])
  | K_product, [ a; b ] ->
      let fa = Expr.free_vars a and fb = Expr.free_vars b in
      let dprod = Expr.dim a in
      if List.for_all (fun v -> v = x) fa then Expr.Apply (Func.product dprod, [ a; push ~x ~y b ])
      else if List.for_all (fun v -> v = x) fb then
        Expr.Apply (Func.product dprod, [ push ~x ~y a; b ])
      else unsupported "product mixes the bound variable on both sides"
  | K_scale_by, [ v; s ] ->
      let fvv = Expr.free_vars v and fvs = Expr.free_vars s in
      let dv = Expr.dim v in
      if List.for_all (fun w -> w = x) fvs then Expr.Apply (Func.scale_by dv, [ push ~x ~y v; s ])
      else if List.for_all (fun w -> w = x) fvv then
        Expr.Apply (Func.scale_by dv, [ v; push ~x ~y s ])
      else unsupported "scale-by mixes the bound variable on both sides"
  | _ -> unsupported "cannot push sum through opaque function %s" f.name

(* Rewrite so that every neighbourhood aggregation's value mentions only
   the bound variable. Memoised on physical identity to preserve DAG
   sharing. *)
let separate e =
  let memo = Memo.create 64 in
  let rec go e =
    match Memo.find_opt memo e with
    | Some e' -> e'
    | None ->
        let e' =
          match e with
          | Expr.Lab _ | Expr.Const _ -> e
          | Expr.Cmp (_, a, b) when a = b -> e
          | Expr.Edge _ | Expr.Cmp _ ->
              unsupported "naked binary atom %s outside a guard" (Expr.to_string e)
          | Expr.Apply (f, args) -> Expr.Apply (f, List.map go args)
          | Expr.Agg (th, [ y ], value, Expr.Edge (a, b)) when a <> b && (a = y || b = y) ->
              if not (is_sum th) then
                unsupported "normal form requires sum aggregation, got %s" th.Agg.name;
              let x = if a = y then b else a in
              push ~x ~y (go value)
          | Expr.Agg _ -> unsupported "unsupported aggregation shape %s" (Expr.to_string e)
        in
        Memo.add memo e e';
        e'
  in
  go e

(* --- step 2: layering ---------------------------------------------------- *)

type slot = { msg_off : int; res_off : int; sdim : int; message : Expr.t }

type t = {
  d0 : int;
  feature_dim : int;
  n_rounds : int;          (* aggregation depth L; the net has 2L layers *)
  layers : Func.t list;
  output : Func.t;
  normal_expr : Expr.t;    (* the expression in normal-form shape *)
  separated : Expr.t;
}

(* Gather all (separated) aggregation nodes, deduplicated physically. *)
let collect_aggs e =
  let memo = Memo.create 64 in
  let out = ref [] in
  let rec go e =
    if not (Memo.mem memo e) then begin
      Memo.add memo e ();
      match e with
      | Expr.Lab _ | Expr.Const _ | Expr.Edge _ | Expr.Cmp _ -> ()
      | Expr.Apply (_, args) -> List.iter go args
      | Expr.Agg (_, _, value, guard) ->
          go value;
          go guard;
          out := e :: !out
    end
  in
  go e;
  !out

let of_vertex_expr_untraced e =
  (match Expr.free_vars e with
  | [ _ ] -> ()
  | _ -> invalid_arg "Normal_form.of_vertex_expr: need exactly one free variable");
  if not (Expr.is_mpnn e) then unsupported "expression is not in the MPNN fragment";
  let sep = separate e in
  let d0 =
    (* Label dimension actually used: max lab index + 1. *)
    let memo = Memo.create 64 in
    let m = ref 0 in
    let rec go e =
      if not (Memo.mem memo e) then begin
        Memo.add memo e ();
        match e with
        | Expr.Lab (j, _) -> m := max !m (j + 1)
        | Expr.Const _ | Expr.Edge _ | Expr.Cmp _ -> ()
        | Expr.Apply (_, args) -> List.iter go args
        | Expr.Agg (_, _, v, g) ->
            go v;
            go g
      end
    in
    go sep;
    max 1 !m
  in
  let aggs = collect_aggs sep in
  (* Ignore the deg-guard constant aggregations?  No: all are genuine sum
     aggregations; each gets slots.  Assign offsets. *)
  let slots = Memo.create 16 in
  let next = ref d0 in
  let slot_list =
    List.filter_map
      (fun a ->
        match a with
        | Expr.Agg (_, _, value, _) ->
            let sdim = Expr.dim value in
            let s = { msg_off = !next; res_off = !next + sdim; sdim; message = value } in
            next := !next + (2 * sdim);
            Memo.add slots a s;
            Some (a, s)
        | _ -> None)
      aggs
  in
  let feature_dim = !next in
  let n_rounds = Expr.agg_depth sep in
  (* Interpreter of a separated single-variable expression against a
     feature vector of the vertex itself. *)
  let rec interp e (f : Vec.t) : Vec.t =
    match e with
    | Expr.Const v -> v
    | Expr.Lab (j, _) -> [| f.(j) |]
    | Expr.Cmp (Expr.Ceq, a, b) when a = b -> [| 1.0 |]
    | Expr.Cmp (Expr.Cneq, a, b) when a = b -> [| 0.0 |]
    | Expr.Apply (fn, args) -> fn.Func.apply (List.map (fun a -> interp a f) args)
    | Expr.Agg _ ->
        let s = Memo.find slots e in
        Array.sub f s.res_off s.sdim
    | _ -> assert false
  in
  (* Layers: for round t, a message layer then a collect layer. *)
  let depth_of = Memo.create 16 in
  List.iter (fun (a, _) -> Memo.add depth_of a (Expr.agg_depth a)) slot_list;
  let make_message_layer t =
    Func.custom ~name:(Printf.sprintf "nf-msg-%d" t) ~in_dims:[ feature_dim; feature_dim ]
      ~out_dim:feature_dim (fun args ->
        match args with
        | [ self; _nbsum ] ->
            let out = Vec.copy self in
            List.iter
              (fun (a, s) ->
                if Memo.find depth_of a = t then begin
                  let m = interp s.message self in
                  Array.blit m 0 out s.msg_off s.sdim
                end)
              slot_list;
            out
        | _ -> assert false)
  in
  let make_collect_layer t =
    Func.custom ~name:(Printf.sprintf "nf-col-%d" t) ~in_dims:[ feature_dim; feature_dim ]
      ~out_dim:feature_dim (fun args ->
        match args with
        | [ self; nbsum ] ->
            let out = Vec.copy self in
            List.iter
              (fun (a, s) ->
                if Memo.find depth_of a = t then
                  Array.blit (Array.sub nbsum s.msg_off s.sdim) 0 out s.res_off s.sdim)
              slot_list;
            out
        | _ -> assert false)
  in
  let layers =
    List.concat_map (fun t -> [ make_message_layer t; make_collect_layer t ])
      (List.init n_rounds (fun i -> i + 1))
  in
  let out_dim = Expr.dim sep in
  let output =
    Func.custom ~name:"nf-out" ~in_dims:[ feature_dim ] ~out_dim (fun args ->
        match args with [ f ] -> interp sep f | _ -> assert false)
  in
  (* Normal-form expression: embed labels, then alternate layers. *)
  let x = Builder.x1 and y = Builder.x2 in
  let embed =
    Func.custom ~name:"nf-embed" ~in_dims:[ d0 ] ~out_dim:feature_dim (fun args ->
        match args with
        | [ l ] ->
            let f = Vec.zeros feature_dim in
            Array.blit l 0 f 0 d0;
            f
        | _ -> assert false)
  in
  let init v = Expr.Apply (embed, [ Builder.labels ~dim:d0 v ]) in
  let rec stack layers (prev_x, prev_y) =
    match layers with
    | [] -> prev_x
    | layer :: rest ->
        let step ~self ~other ~sv ~ov =
          let nbsum = Expr.Agg (Agg.sum feature_dim, [ ov ], other, Expr.Edge (sv, ov)) in
          Expr.Apply (layer, [ self; nbsum ])
        in
        stack rest
          ( step ~self:prev_x ~other:prev_y ~sv:x ~ov:y,
            step ~self:prev_y ~other:prev_x ~sv:y ~ov:x )
  in
  let normal_expr = Expr.Apply (output, [ stack layers (init x, init y) ]) in
  { d0; feature_dim; n_rounds; layers; output; normal_expr; separated = sep }

let of_vertex_expr e = Trace.with_span "layer" (fun () -> of_vertex_expr_untraced e)

let to_expr nf = nf.normal_expr

let n_rounds nf = nf.n_rounds

let separated nf = nf.separated

let n_layers nf = List.length nf.layers

let feature_dim nf = nf.feature_dim

(* Fast layered evaluation: one row per vertex. *)
let eval_untraced nf g =
  let n = Graph.n_vertices g in
  let feat =
    Array.init n (fun v ->
        let f = Vec.zeros nf.feature_dim in
        let l = Graph.label g v in
        Array.blit l 0 f 0 (min (Vec.dim l) nf.d0);
        f)
  in
  let current = ref feat in
  List.iter
    (fun layer ->
      let prev = !current in
      let nbsum =
        Array.init n (fun v ->
            let acc = Vec.zeros nf.feature_dim in
            Array.iter (fun u -> Vec.add_inplace ~into:acc prev.(u)) (Graph.neighbors g v);
            acc)
      in
      current := Array.init n (fun v -> layer.Func.apply [ prev.(v); nbsum.(v) ]))
    nf.layers;
  Array.map (fun f -> nf.output.Func.apply [ f ]) !current

let eval nf g = Trace.with_span "execute.layered" (fun () -> eval_untraced nf g)

(* Largest deviation between the original expression and the normal form
   across all vertices of a graph. *)
let max_deviation nf e g =
  let original = Expr.eval_vertexwise g e in
  let normalised = eval nf g in
  let d = ref 0.0 in
  Array.iteri (fun v ov -> d := Float.max !d (Vec.linf_dist ov normalised.(v))) original;
  !d

(* --- canonical cache keys ------------------------------------------------ *)

(* The query server caches compiled plans keyed by a canonical rendering of
   the expression: variables are renamed to dense ids (free variables by
   sorted order, bound variables by first structural occurrence under their
   binder), the symmetric atoms E and 1[.=.] / 1[.!=.] print their
   endpoints in canonical-id order, and binder lists print sorted — so
   alpha-equivalent and reordered queries key identically while distinct
   queries cannot collide (the rendering is injective on the canonalised
   term). *)

module Sig_hash = Glql_util.Sig_hash

(* Functions whose parameters we cannot fingerprint (MLPs, opaque customs)
   fall back to a process-wide physical-identity id: sound — two distinct
   opaque functions never share a key — at the price of no cross-query
   sharing unless the nodes are physically shared. Parser-produced
   functions all have structural kinds and never take this path. *)
module Func_tbl = Hashtbl.Make (struct
  type t = Func.t

  let equal = ( == )
  let hash (f : Func.t) = Hashtbl.hash (f.Func.name, f.Func.in_dims, f.Func.out_dim)
end)

let opaque_mutex = Mutex.create ()

let opaque_ids : int Func_tbl.t = Func_tbl.create 16

let opaque_next = ref 0

let opaque_id f =
  Mutex.lock opaque_mutex;
  let id =
    match Func_tbl.find_opt opaque_ids f with
    | Some id -> id
    | None ->
        let id = !opaque_next in
        incr opaque_next;
        Func_tbl.add opaque_ids f id;
        id
  in
  Mutex.unlock opaque_mutex;
  id

let mat_fingerprint m =
  let open Func in
  Sig_hash.of_string_list
    (List.init (Mat.rows m) (fun i -> Sig_hash.of_float_vector ~decimals:12 (Mat.row m i)))

let func_token f =
  let open Func in
  let dims =
    Printf.sprintf "%s>%d"
      (String.concat ";" (List.map string_of_int f.in_dims))
      f.out_dim
  in
  match f.kind with
  | K_concat -> "cat:" ^ dims
  | K_add -> "add:" ^ dims
  | K_product -> "mul:" ^ dims
  | K_scale_by -> "sby:" ^ dims
  | K_scale c -> Printf.sprintf "sc[%.17g]:%s" c dims
  | K_proj j -> Printf.sprintf "pr[%d]:%s" j dims
  | K_activation a -> Printf.sprintf "act[%s]:%s" (Activation.name a) dims
  | K_linear (w, b) ->
      Printf.sprintf "lin[%s;%s]:%s" (mat_fingerprint w) (Sig_hash.of_float_vector ~decimals:12 b)
        dims
  | K_linear_multi (ws, b) ->
      Printf.sprintf "linm[%s;%s]:%s"
        (String.concat ";" (List.map mat_fingerprint ws))
        (Sig_hash.of_float_vector ~decimals:12 b)
        dims
  | K_mlp _ | K_opaque -> Printf.sprintf "opq[%s#%d]:%s" f.name (opaque_id f) dims

let rec cache_key e = Trace.with_span "normalize" (fun () -> cache_key_untraced e)

and cache_key_untraced e =
  let buf = Buffer.create 256 in
  let bpr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Variable environment: a stack of canonical ids per source variable,
     the head being the innermost binding. *)
  let env : (Expr.var, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let fresh = ref 0 in
  let next_id () =
    let id = !fresh in
    incr fresh;
    id
  in
  let push v id =
    let stack =
      match Hashtbl.find_opt env v with
      | Some s -> s
      | None ->
          let s = ref [] in
          Hashtbl.replace env v s;
          s
    in
    stack := id :: !stack
  in
  let pop v =
    match Hashtbl.find_opt env v with
    | Some ({ contents = _ :: rest } as s) -> s := rest
    | _ -> ()
  in
  let lookup v =
    match Hashtbl.find_opt env v with
    | Some { contents = id :: _ } -> id
    | _ -> assert false (* every variable is free (pre-pushed) or bound *)
  in
  (* First structural occurrence order of [ys] under this binder, walking
     guard before value and respecting shadowing by inner binders; bound
     variables that never occur are appended in source order (they never
     print, so their relative ids are irrelevant). *)
  let discover ys value guard =
    let seen = ref [] in
    let rec walk shadowed e =
      match e with
      | Expr.Lab (_, x) -> visit shadowed x
      | Expr.Edge (a, b) | Expr.Cmp (_, a, b) ->
          visit shadowed a;
          visit shadowed b
      | Expr.Const _ -> ()
      | Expr.Apply (_, args) -> List.iter (walk shadowed) args
      | Expr.Agg (_, ys', v, g) ->
          let shadowed' = ys' @ shadowed in
          walk shadowed' g;
          walk shadowed' v
    and visit shadowed x =
      if List.mem x ys && (not (List.mem x shadowed)) && not (List.mem x !seen) then
        seen := !seen @ [ x ]
    in
    walk [] guard;
    walk [] value;
    !seen @ List.filter (fun v -> not (List.mem v !seen)) ys
  in
  let rec render e =
    match e with
    | Expr.Lab (j, x) -> bpr "l%d(v%d)" j (lookup x)
    | Expr.Edge (a, b) ->
        let i = lookup a and j = lookup b in
        bpr "E(v%d,v%d)" (min i j) (max i j)
    | Expr.Cmp (op, a, b) ->
        let i = lookup a and j = lookup b in
        bpr "%s(v%d,v%d)" (match op with Expr.Ceq -> "eq" | Expr.Cneq -> "ne") (min i j) (max i j)
    | Expr.Const v ->
        Buffer.add_string buf "c[";
        Array.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            bpr "%.17g" x)
          v;
        Buffer.add_char buf ']'
    | Expr.Apply (f, args) ->
        bpr "%s(" (func_token f);
        List.iteri
          (fun i a ->
            if i > 0 then Buffer.add_char buf ',';
            render a)
          args;
        Buffer.add_char buf ')'
    | Expr.Agg (th, ys, value, guard) ->
        let order = discover ys value guard in
        let ids = List.map (fun v -> let id = next_id () in push v id; id) order in
        bpr "agg_%s/%d{%s}(" th.Agg.name th.Agg.in_dim
          (String.concat "," (List.map (Printf.sprintf "v%d") (List.sort compare ids)));
        render value;
        Buffer.add_char buf '|';
        render guard;
        Buffer.add_char buf ')';
        List.iter pop order
  in
  List.iter (fun v -> push v (next_id ())) (Expr.free_vars e);
  render e;
  Buffer.contents buf
