(** Normal forms of MPNN(Omega, sum) expressions (slide 55, after
    Geerts-Steegmans-Van den Bussche): rewrite any guarded expression into
    the layered shape

    [phi(t)(x1) = F(t)(phi(t-1)(x1), agg_sum_x2(phi(t-1)(x2) | E(x1,x2)))].

    Aggregators other than sum, and values that mix both variables under
    an opaque function, raise {!Unsupported} — matching the theorem's
    scope. *)

module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph

exception Unsupported of string

(** Separation step alone: rewrite so every aggregation's value mentions
    only the bound variable (linearity of sum). *)
val separate : Expr.t -> Expr.t

type t

(** Normalise a single-free-variable MPNN expression. *)
val of_vertex_expr : Expr.t -> t

(** The resulting expression, literally in normal-form shape. *)
val to_expr : t -> Expr.t

(** Number of layers of the normal form (2 per aggregation round). *)
val n_layers : t -> int

(** Aggregation depth of the source expression. *)
val n_rounds : t -> int

(** The separated intermediate expression. *)
val separated : t -> Expr.t

(** Width of the layered feature vector. *)
val feature_dim : t -> int

(** Fast layered evaluation, one output vector per vertex. *)
val eval : t -> Graph.t -> Vec.t array

(** Max |original - normalised| over all vertices of [g]. *)
val max_deviation : t -> Expr.t -> Graph.t -> float

(** Canonical cache key of an arbitrary GEL expression, used by the query
    server's compiled-plan cache. The key is invariant under renaming of
    bound variables (and order-preserving renaming of free variables),
    reordering of binder lists, and the argument order of the symmetric
    atoms [E] and [1\[.=.\]] / [1\[.!=.\]]; structurally different queries
    render to different keys. Weight-carrying functions are fingerprinted
    by their parameters (linear maps) or by physical identity (MLPs,
    opaque customs) — the latter never collide but only share across
    physically shared nodes. Never raises. *)
val cache_key : Expr.t -> string
