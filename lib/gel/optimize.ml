(* Expression optimisation — the database side of the "embedding methods
   are queries" view: GEL expressions are queries, so they deserve a
   little query optimiser.

   Two semantics-preserving passes:

   - [constant_fold]: evaluate graph-independent subexpressions
     ([Apply] on constants, trivial atoms like E(x,x) and 1[x = x]),
     and drop unit rewrites (scale by 1, concat of one).
   - [share]: hash-consing — structurally equal subexpressions are
     collapsed into one physical node, so the memoising evaluator
     computes each table once. Compilers already share layer outputs,
     but hand-written expressions usually do not.

   [optimize] runs folding then sharing. The test suite checks value
   preservation on random graphs and node-count reduction. *)


(* Physical-identity interner for the opaque payloads (Omega functions and
   Theta aggregators), so they can participate in structural keys. *)
module Phys (T : sig
  type t
end) =
struct
  module H = Hashtbl.Make (struct
    type t = T.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

  type t = { tbl : int H.t; mutable next : int }

  let create () = { tbl = H.create 32; next = 0 }

  let id t x =
    match H.find_opt t.tbl x with
    | Some i -> i
    | None ->
        let i = t.next in
        t.next <- i + 1;
        H.add t.tbl x i;
        i
end

module Func_ids = Phys (struct
  type t = Func.t
end)

module Agg_ids = Phys (struct
  type t = Agg.t
end)

module Memo = Hashtbl.Make (struct
  type t = Expr.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* --- constant folding ---------------------------------------------------- *)

let is_const = function Expr.Const _ -> true | _ -> false

let const_value = function Expr.Const v -> v | _ -> assert false

let constant_fold e =
  let memo = Memo.create 64 in
  let rec go e =
    match Memo.find_opt memo e with
    | Some e' -> e'
    | None ->
        let e' =
          match e with
          | Expr.Lab _ | Expr.Const _ -> e
          | Expr.Edge (x, y) when x = y ->
              (* No self-loops on simple graphs — but the atom still has a
                 free variable, so keep a variable-preserving form only if
                 needed; a constant 0 has the same value on every
                 assignment, and downstream dims/fv of enclosing nodes are
                 unions, so folding is safe whenever the variable also
                 occurs elsewhere. To stay conservative we keep the atom. *)
              e
          | Expr.Edge _ | Expr.Cmp _ -> e
          | Expr.Apply (f, args) ->
              let args = List.map go args in
              if List.for_all is_const args then
                Expr.Const (f.Func.apply (List.map const_value args))
              else begin
                match (f.Func.kind, args) with
                | Func.K_scale 1.0, [ a ] -> a
                | Func.K_concat, [ a ] -> a
                | _ -> Expr.Apply (f, args)
              end
          | Expr.Agg (th, ys, value, guard) -> Expr.Agg (th, ys, go value, go guard)
        in
        Memo.add memo e e';
        e'
  in
  go e

(* --- hash-consing ---------------------------------------------------------- *)

let share e =
  let func_ids = Func_ids.create () in
  let agg_ids = Agg_ids.create () in
  let node_ids = Memo.create 64 in
  let next_id = ref 0 in
  let canon : (string, Expr.t) Hashtbl.t = Hashtbl.create 64 in
  let memo = Memo.create 64 in
  let id_of node =
    match Memo.find_opt node_ids node with
    | Some i -> i
    | None ->
        let i = !next_id in
        incr next_id;
        Memo.add node_ids node i;
        i
  in
  let intern key node =
    match Hashtbl.find_opt canon key with
    | Some existing -> existing
    | None ->
        Hashtbl.add canon key node;
        ignore (id_of node);
        node
  in
  let rec go e =
    match Memo.find_opt memo e with
    | Some e' -> e'
    | None ->
        let e' =
          match e with
          | Expr.Lab (j, x) -> intern (Printf.sprintf "L%d,%d" j x) e
          | Expr.Edge (x, y) -> intern (Printf.sprintf "E%d,%d" x y) e
          | Expr.Cmp (op, x, y) ->
              let tag = match op with Expr.Ceq -> "=" | Expr.Cneq -> "!" in
              intern (Printf.sprintf "C%s%d,%d" tag x y) e
          | Expr.Const v -> intern ("K" ^ Glql_util.Sig_hash.of_float_vector ~decimals:12 v) e
          | Expr.Apply (f, args) ->
              let args = List.map go args in
              let key =
                Printf.sprintf "A%d(%s)" (Func_ids.id func_ids f)
                  (String.concat "," (List.map (fun a -> string_of_int (id_of a)) args))
              in
              intern key (Expr.Apply (f, args))
          | Expr.Agg (th, ys, value, guard) ->
              let value = go value and guard = go guard in
              let key =
                Printf.sprintf "G%d[%s](%d|%d)" (Agg_ids.id agg_ids th)
                  (String.concat "," (List.map string_of_int ys))
                  (id_of value) (id_of guard)
              in
              intern key (Expr.Agg (th, ys, value, guard))
        in
        Memo.add memo e e';
        e'
  in
  go e

let optimize e = Glql_util.Trace.with_span "optimize" (fun () -> share (constant_fold e))
