(* A concrete surface syntax for GEL(Omega, Theta) — it is a *query
   language*, so it gets one. The grammar covers the standard fragment
   (everything [Expr.to_string] prints except weight-carrying functions,
   whose matrices have no literal syntax):

     expr   ::= 'lab' INT '(' var ')'
              | 'E' '(' var ',' var ')'
              | '1[' var ('='|'!=') var ']'
              | vector                                  constants
              | 'agg_' NAME '{' var (',' var)* '}' '(' expr '|' expr ')'
              | 'concat' '(' expr (',' expr)* ')'
              | 'product' '(' expr ',' expr ')'
              | 'add' '(' expr ',' expr ')'
              | 'scale' '(' NUM ')' '(' expr ')'
              | ACT '(' expr ')'                        relu | sigmoid | ...
              | '(' expr ')'
     var    ::= 'x' INT
     vector ::= '[' NUM (';' NUM)* ']'
     NAME   ::= 'sum' | 'mean' | 'max' | 'min' | 'count'
     ACT    ::= 'relu' | 'sigmoid' | 'tanh' | 'id' | 'sign'
              | 'trunc-relu' | 'leaky-relu'

   [parse] is total on this fragment and round-trips with
   [Expr.to_string]: printing a parsed expression reproduces the source
   up to whitespace, and parsing a printed expression preserves
   semantics (property-tested). *)

module Activation = Glql_nn.Activation

exception Parse_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- lexer ---------------------------------------------------------------- *)

type token =
  | Tident of string
  | Tnumber of float
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tsemi
  | Tpipe
  | Teq
  | Tneq

let token_to_string = function
  | Tident s -> s
  | Tnumber x -> Printf.sprintf "%g" x
  | Tlparen -> "("
  | Trparen -> ")"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tlbracket -> "["
  | Trbracket -> "]"
  | Tcomma -> ","
  | Tsemi -> ";"
  | Tpipe -> "|"
  | Teq -> "="
  | Tneq -> "!="

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (push Tlparen; incr i)
    else if c = ')' then (push Trparen; incr i)
    else if c = '{' then (push Tlbrace; incr i)
    else if c = '}' then (push Trbrace; incr i)
    else if c = '[' then (push Tlbracket; incr i)
    else if c = ']' then (push Trbracket; incr i)
    else if c = ',' then (push Tcomma; incr i)
    else if c = ';' then (push Tsemi; incr i)
    else if c = '|' then (push Tpipe; incr i)
    else if c = '=' then (push Teq; incr i)
    else if c = '!' && !i + 1 < n && input.[!i + 1] = '=' then (push Tneq; i := !i + 2)
    else if is_digit c || (c = '-' && !i + 1 < n && (is_digit input.[!i + 1] || input.[!i + 1] = '.')) then begin
      (* Number: sign, digits, optional fraction and exponent. *)
      let start = !i in
      if c = '-' then incr i;
      while !i < n && (is_digit input.[!i] || input.[!i] = '.') do
        incr i
      done;
      if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
        incr i;
        if !i < n && (input.[!i] = '+' || input.[!i] = '-') then incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      let s = String.sub input start (!i - start) in
      match float_of_string_opt s with
      | Some x -> push (Tnumber x)
      | None -> error "bad number %S" s
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      push (Tident (String.sub input start (!i - start)))
    end
    else error "unexpected character %C at offset %d" c !i
  done;
  List.rev !tokens

(* --- parser ---------------------------------------------------------------- *)

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let next st =
  match st.tokens with
  | [] -> error "unexpected end of input"
  | t :: rest ->
      st.tokens <- rest;
      t

let expect st t =
  let got = next st in
  if got <> t then error "expected %S, got %S" (token_to_string t) (token_to_string got)

(* Identifiers of the form x<digits> are variables. *)
let var_of_ident s =
  if String.length s >= 2 && s.[0] = 'x' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some v when v >= 1 -> Some v
    | _ -> None
  else None

let parse_var st =
  match next st with
  | Tident s -> (
      match var_of_ident s with Some v -> v | None -> error "expected a variable, got %S" s)
  | t -> error "expected a variable, got %S" (token_to_string t)

let activation_of_name = function
  | "relu" -> Some Activation.Relu
  | "sigmoid" -> Some Activation.Sigmoid
  | "tanh" -> Some Activation.Tanh
  | "id" -> Some Activation.Identity
  | "sign" -> Some Activation.Sign
  | "trunc-relu" -> Some Activation.Trunc_relu
  | "leaky-relu" -> Some Activation.Leaky_relu
  | _ -> None

let aggregator_of_name name d =
  match name with
  | "sum" -> Some (Agg.sum d)
  | "mean" -> Some (Agg.mean d)
  | "max" -> Some (Agg.max d)
  | "min" -> Some (Agg.min d)
  | "count" -> Some (Agg.count d)
  | _ -> None

let rec parse_expr st =
  match next st with
  | Tlparen ->
      let e = parse_expr st in
      expect st Trparen;
      e
  | Tlbracket -> parse_vector st
  | Tnumber x ->
      (* A bare number followed by '[' is the indicator 1[...]; otherwise a
         scalar constant. *)
      if x = 1.0 && peek st = Some Tlbracket then begin
        ignore (next st);
        let a = parse_var st in
        let op =
          match next st with
          | Teq -> Expr.Ceq
          | Tneq -> Expr.Cneq
          | t -> error "expected = or != in indicator, got %S" (token_to_string t)
        in
        let b = parse_var st in
        expect st Trbracket;
        Expr.Cmp (op, a, b)
      end
      else Expr.Const [| x |]
  | Tident name -> parse_ident st name
  | t -> error "unexpected token %S" (token_to_string t)

and parse_vector st =
  (* '[' already consumed. *)
  let entries = ref [] in
  let rec go () =
    match next st with
    | Tnumber x -> (
        entries := x :: !entries;
        match next st with
        | Tsemi -> go ()
        | Trbracket -> ()
        | t -> error "expected ; or ] in vector, got %S" (token_to_string t))
    | Trbracket -> ()
    | t -> error "expected a number in vector, got %S" (token_to_string t)
  in
  go ();
  Expr.Const (Array.of_list (List.rev !entries))

and parse_args st =
  expect st Tlparen;
  let rec go acc =
    let e = parse_expr st in
    match next st with
    | Tcomma -> go (e :: acc)
    | Trparen -> List.rev (e :: acc)
    | t -> error "expected , or ) in argument list, got %S" (token_to_string t)
  in
  go []

and parse_ident st name =
  (* lab<j>(x<i>) *)
  if String.length name > 3 && String.sub name 0 3 = "lab" then begin
    match int_of_string_opt (String.sub name 3 (String.length name - 3)) with
    | Some j ->
        expect st Tlparen;
        let v = parse_var st in
        expect st Trparen;
        Expr.Lab (j, v)
    | None -> error "bad label atom %S" name
  end
  else if name = "E" then begin
    expect st Tlparen;
    let a = parse_var st in
    expect st Tcomma;
    let b = parse_var st in
    expect st Trparen;
    Expr.Edge (a, b)
  end
  else if String.length name > 4 && String.sub name 0 4 = "agg_" then begin
    let agg_name = String.sub name 4 (String.length name - 4) in
    expect st Tlbrace;
    let rec vars acc =
      let v = parse_var st in
      match next st with
      | Tcomma -> vars (v :: acc)
      | Trbrace -> List.rev (v :: acc)
      | t -> error "expected , or } in binder, got %S" (token_to_string t)
    in
    let ys = vars [] in
    expect st Tlparen;
    let value = parse_expr st in
    expect st Tpipe;
    let guard = parse_expr st in
    expect st Trparen;
    let d = Expr.dim value in
    (match aggregator_of_name agg_name d with
    | Some th -> Expr.Agg (th, ys, value, guard)
    | None -> error "unknown aggregator %S" agg_name)
  end
  else if name = "concat" then begin
    let args = parse_args st in
    Expr.Apply (Func.concat (List.map Expr.dim args), args)
  end
  else if name = "product" then begin
    match parse_args st with
    | [ a; b ] when Expr.dim a = Expr.dim b -> Expr.Apply (Func.product (Expr.dim a), [ a; b ])
    | [ _; _ ] -> error "product arguments have different dimensions"
    | _ -> error "product takes exactly two arguments"
  end
  else if name = "add" then begin
    match parse_args st with
    | [ a; b ] when Expr.dim a = Expr.dim b -> Expr.Apply (Func.add (Expr.dim a), [ a; b ])
    | [ _; _ ] -> error "add arguments have different dimensions"
    | _ -> error "add takes exactly two arguments"
  end
  else if name = "scale" then begin
    (* scale(<c>)(<expr>) — matches the printer. *)
    expect st Tlparen;
    let c = match next st with Tnumber x -> x | t -> error "expected a number, got %S" (token_to_string t) in
    expect st Trparen;
    expect st Tlparen;
    let e = parse_expr st in
    expect st Trparen;
    Expr.Apply (Func.scale c (Expr.dim e), [ e ])
  end
  else begin
    match activation_of_name name with
    | Some act -> (
        match parse_args st with
        | [ e ] -> Expr.Apply (Func.activation act (Expr.dim e), [ e ])
        | _ -> error "%s takes exactly one argument" name)
    | None -> error "unknown identifier %S" name
  end

let parse input =
  Glql_util.Trace.with_span "parse" (fun () ->
      let st = { tokens = lex input } in
      let e = parse_expr st in
      (match st.tokens with
      | [] -> ()
      | t :: _ -> error "trailing input starting at %S" (token_to_string t));
      (* Force a full well-formedness check. *)
      ignore (Expr.dim e);
      e)
