(* GNN layers over vertex-feature matrices (one row per vertex).

   Gnn101 is the architecture of slide 13:
     F(t) = sigma( F(t-1) W1 + A F(t-1) W2 + 1 b^T ).
   Gcn, Gin and Sage are the classical architectures named on slides 34/48;
   Gat is a single-head attention layer (forward-only: the experiments use
   it for expressivity audits, not training). *)

module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Mlp = Glql_nn.Mlp
module Param = Glql_nn.Param
module Activation = Glql_nn.Activation

type agg = Sum | Mean | Max

let agg_name = function Sum -> "sum" | Mean -> "mean" | Max -> "max"

type t =
  | Gnn101 of { w1 : Param.t; w2 : Param.t; b : Param.t; act : Activation.t }
  | Gcn of { w : Param.t; act : Activation.t }
  | Gin of { eps : float; mlp : Mlp.t }
  | Sage of { agg : agg; wself : Param.t; wnb : Param.t; b : Param.t; act : Activation.t }
  | Gat of { w : Param.t; a_src : Param.t; a_dst : Param.t; act : Activation.t }

type cache =
  | C_gnn101 of { h : Mat.t; ah : Mat.t; z : Mat.t }
  | C_gcn of { p : Mat.t; z : Mat.t }
  | C_gin of { mlp_cache : Mlp.cache }
  | C_sage of { h : Mat.t; agg_h : Mat.t; argmax : int array array option; z : Mat.t }
  | C_none

let gnn101 rng ~din ~dout ~act =
  Gnn101
    {
      w1 = Param.create ~name:"gnn101.w1" (Mat.glorot rng din dout);
      w2 = Param.create ~name:"gnn101.w2" (Mat.glorot rng din dout);
      b = Param.create ~name:"gnn101.b" (Mat.zeros 1 dout);
      act;
    }

let gcn rng ~din ~dout ~act =
  Gcn { w = Param.create ~name:"gcn.w" (Mat.glorot rng din dout); act }

let gin rng ~din ~dout ~hidden ~eps =
  Gin
    {
      eps;
      mlp =
        Mlp.create rng ~sizes:[ din; hidden; dout ] ~act:Activation.Relu
          ~out_act:Activation.Identity;
    }

let sage rng ~din ~dout ~agg ~act =
  Sage
    {
      agg;
      wself = Param.create ~name:"sage.wself" (Mat.glorot rng din dout);
      wnb = Param.create ~name:"sage.wnb" (Mat.glorot rng din dout);
      b = Param.create ~name:"sage.b" (Mat.zeros 1 dout);
      act;
    }

let gat rng ~din ~dout ~act =
  Gat
    {
      w = Param.create ~name:"gat.w" (Mat.glorot rng din dout);
      a_src = Param.create ~name:"gat.a_src" (Mat.glorot rng 1 dout);
      a_dst = Param.create ~name:"gat.a_dst" (Mat.glorot rng 1 dout);
      act;
    }

let params = function
  | Gnn101 { w1; w2; b; _ } -> [ w1; w2; b ]
  | Gcn { w; _ } -> [ w ]
  | Gin { mlp; _ } -> Mlp.params mlp
  | Sage { wself; wnb; b; _ } -> [ wself; wnb; b ]
  | Gat { w; a_src; a_dst; _ } -> [ w; a_src; a_dst ]

let supports_backward = function Gat _ -> false | _ -> true

let name = function
  | Gnn101 _ -> "gnn101"
  | Gcn _ -> "gcn"
  | Gin _ -> "gin"
  | Sage { agg; _ } -> "sage-" ^ agg_name agg
  | Gat _ -> "gat"

let add_bias z (b : Param.t) =
  for i = 0 to Mat.rows z - 1 do
    for j = 0 to Mat.cols z - 1 do
      Mat.set z i j (Mat.get z i j +. Mat.get b.Param.data 0 j)
    done
  done

let accumulate_bias_grad (b : Param.t) dz =
  for j = 0 to Mat.cols dz - 1 do
    let s = ref 0.0 in
    for i = 0 to Mat.rows dz - 1 do
      s := !s +. Mat.get dz i j
    done;
    Mat.set b.Param.grad 0 j (Mat.get b.Param.grad 0 j +. !s)
  done

let forward_cached g layer h =
  match layer with
  | Gnn101 { w1; w2; b; act } ->
      let ah = Propagate.sum_neighbors g h in
      let z = Mat.add (Mat.mul h w1.Param.data) (Mat.mul ah w2.Param.data) in
      add_bias z b;
      (Activation.apply_mat act z, C_gnn101 { h; ah; z })
  | Gcn { w; act } ->
      let p = Propagate.gcn_neighbors g h in
      let z = Mat.mul p w.Param.data in
      (Activation.apply_mat act z, C_gcn { p; z })
  | Gin { eps; mlp } ->
      let s = Mat.add (Mat.scale (1.0 +. eps) h) (Propagate.sum_neighbors g h) in
      let y, mlp_cache = Mlp.forward_cached mlp s in
      (y, C_gin { mlp_cache })
  | Sage { agg; wself; wnb; b; act } ->
      let agg_h, argmax =
        match agg with
        | Sum -> (Propagate.sum_neighbors g h, None)
        | Mean -> (Propagate.mean_neighbors g h, None)
        | Max ->
            let m, a = Propagate.max_neighbors g h in
            (m, Some a)
      in
      let z = Mat.add (Mat.mul h wself.Param.data) (Mat.mul agg_h wnb.Param.data) in
      add_bias z b;
      (Activation.apply_mat act z, C_sage { h; agg_h; argmax; z })
  | Gat { w; a_src; a_dst; act } ->
      let n = Graph.n_vertices g in
      let hw = Mat.mul h w.Param.data in
      let d = Mat.cols hw in
      let src_score = Array.init n (fun v -> Vec.dot (Mat.row hw v) (Mat.row a_src.Param.data 0)) in
      let dst_score = Array.init n (fun v -> Vec.dot (Mat.row hw v) (Mat.row a_dst.Param.data 0)) in
      let leaky x = if x >= 0.0 then x else 0.2 *. x in
      let out = Mat.zeros n d in
      for v = 0 to n - 1 do
        let nb = Graph.neighbors g v in
        if Array.length nb > 0 then begin
          let scores = Array.map (fun u -> leaky (src_score.(u) +. dst_score.(v))) nb in
          let alpha = Vec.softmax scores in
          Array.iteri
            (fun i u ->
              for j = 0 to d - 1 do
                Mat.set out v j (Mat.get out v j +. (alpha.(i) *. Mat.get hw u j))
              done)
            nb
        end
      done;
      (Activation.apply_mat act out, C_none)

let forward g layer h = fst (forward_cached g layer h)

let act_backward act z dout = Mat.map2 (fun dy zv -> dy *. Activation.derivative act zv) dout z

(* Backward passes use the fused Mat kernels: dW accumulates via
   add_mul_at_b (no transpose / product intermediates) and dX comes from
   mul_abt; neighbour sums accumulate in place via add_sum_neighbors. *)
let backward g layer cache ~dout =
  match (layer, cache) with
  | Gnn101 { w1; w2; b; act }, C_gnn101 { h; ah; z } ->
      let dz = act_backward act z dout in
      Mat.add_mul_at_b ~into:w1.Param.grad h dz;
      Mat.add_mul_at_b ~into:w2.Param.grad ah dz;
      accumulate_bias_grad b dz;
      let dh = Mat.mul_abt dz w1.Param.data in
      Propagate.add_sum_neighbors ~into:dh g (Mat.mul_abt dz w2.Param.data);
      dh
  | Gcn { w; act }, C_gcn { p; z } ->
      let dz = act_backward act z dout in
      Mat.add_mul_at_b ~into:w.Param.grad p dz;
      Propagate.gcn_neighbors g (Mat.mul_abt dz w.Param.data)
  | Gin { eps; mlp }, C_gin { mlp_cache } ->
      let ds = Mlp.backward mlp mlp_cache ~dout in
      let dh = Mat.scale (1.0 +. eps) ds in
      Propagate.add_sum_neighbors ~into:dh g ds;
      dh
  | Sage { agg; wself; wnb; b; act }, C_sage { h; agg_h; argmax; z } ->
      let dz = act_backward act z dout in
      Mat.add_mul_at_b ~into:wself.Param.grad h dz;
      Mat.add_mul_at_b ~into:wnb.Param.grad agg_h dz;
      accumulate_bias_grad b dz;
      let dh = Mat.mul_abt dz wself.Param.data in
      let dagg = Mat.mul_abt dz wnb.Param.data in
      (match (agg, argmax) with
      | Sum, _ -> Propagate.add_sum_neighbors ~into:dh g dagg
      | Mean, _ -> Mat.add_inplace ~into:dh (Propagate.mean_neighbors_backward g dagg)
      | Max, Some a -> Mat.add_inplace ~into:dh (Propagate.max_neighbors_backward g a dagg)
      | Max, None -> assert false);
      dh
  | Gat _, _ -> failwith "Layer.backward: Gat is forward-only"
  | _ -> invalid_arg "Layer.backward: cache does not match layer"

(* Shadow layer for race-free parallel backward passes: weights shared,
   gradient buffers private (see Param.shadow). *)
let shadow = function
  | Gnn101 { w1; w2; b; act } ->
      Gnn101 { w1 = Param.shadow w1; w2 = Param.shadow w2; b = Param.shadow b; act }
  | Gcn { w; act } -> Gcn { w = Param.shadow w; act }
  | Gin { eps; mlp } -> Gin { eps; mlp = Mlp.shadow mlp }
  | Sage { agg; wself; wnb; b; act } ->
      Sage
        {
          agg;
          wself = Param.shadow wself;
          wnb = Param.shadow wnb;
          b = Param.shadow b;
          act;
        }
  | Gat { w; a_src; a_dst; act } ->
      Gat { w = Param.shadow w; a_src = Param.shadow a_src; a_dst = Param.shadow a_dst; act }
