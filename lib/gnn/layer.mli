(** GNN layers over vertex-feature matrices (one row per vertex).
    [Gnn101] is the architecture of slide 13; [Gcn], [Gin], [Sage], [Gat]
    are the classical architectures named on slides 34/48. [Gat] is
    forward-only. *)

module Mat = Glql_tensor.Mat
module Graph = Glql_graph.Graph
module Param = Glql_nn.Param
module Activation = Glql_nn.Activation

type agg = Sum | Mean | Max

val agg_name : agg -> string

type t

type cache

(** F(t) = sigma(F(t-1) W1 + A F(t-1) W2 + 1 b^T). *)
val gnn101 : Glql_util.Rng.t -> din:int -> dout:int -> act:Activation.t -> t

(** Kipf-Welling graph convolution with symmetric normalisation. *)
val gcn : Glql_util.Rng.t -> din:int -> dout:int -> act:Activation.t -> t

(** Graph isomorphism network: MLP((1 + eps) h + sum of neighbours). *)
val gin : Glql_util.Rng.t -> din:int -> dout:int -> hidden:int -> eps:float -> t

(** GraphSAGE with a choice of aggregation. *)
val sage : Glql_util.Rng.t -> din:int -> dout:int -> agg:agg -> act:Activation.t -> t

(** Single-head graph attention layer (forward-only). *)
val gat : Glql_util.Rng.t -> din:int -> dout:int -> act:Activation.t -> t

val params : t -> Param.t list
val supports_backward : t -> bool
val name : t -> string

val forward_cached : Graph.t -> t -> Mat.t -> Mat.t * cache
val forward : Graph.t -> t -> Mat.t -> Mat.t

(** Accumulate parameter gradients; returns dL/d(input features). *)
val backward : Graph.t -> t -> cache -> dout:Mat.t -> Mat.t

(** Shadow layer sharing weights but owning private gradient buffers, for
    race-free parallel backward passes (see {!Glql_nn.Param.shadow}). *)
val shadow : t -> t
