(* A GNN model: a stack of message-passing layers, an optional global
   readout (slide 14: F = sigma(sum_v F(L)_v W + b) is Readout Sum + a
   head), and an optional MLP head.

   - Vertex embedding xi : G -> (V -> R^d): layers then head per vertex.
   - Graph embedding  xi : G -> R^d: layers, readout pooling, then head.

   Forward/backward is provided for both, so the same model type serves
   random-weight separation experiments (E1) and ERM training (E9/E10). *)

module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Mlp = Glql_nn.Mlp
module Param = Glql_nn.Param
module Activation = Glql_nn.Activation

type readout = RSum | RMean | RMax

let readout_name = function RSum -> "sum" | RMean -> "mean" | RMax -> "max"

type t = {
  layers : Layer.t list;
  readout : readout option;
  head : Mlp.t option;
}

let create ?readout ?head layers = { layers; readout; head }

(* Shadow model for per-graph parallel training: every parameter shares
   its weights with [t] but owns a private gradient buffer, so one
   forward/backward per domain runs race-free.  [params] of a shadow
   aligns index-wise with [params] of the original, which is what the
   deterministic gradient merge in Erm relies on. *)
let shadow t =
  { t with layers = List.map Layer.shadow t.layers; head = Option.map Mlp.shadow t.head }

let params t =
  List.concat_map Layer.params t.layers
  @ (match t.head with Some mlp -> Mlp.params mlp | None -> [])

let initial_features g =
  Mat.of_rows (Array.to_list (Array.init (Graph.n_vertices g) (fun v -> Graph.label g v)))

type cache = {
  layer_caches : Layer.cache list;
  final_h : Mat.t;
  pool_arg : int array option;  (* argmax vertices for RMax *)
  head_cache : Mlp.cache option;
}

let pool readout h =
  let n = Mat.rows h and d = Mat.cols h in
  match readout with
  | RSum ->
      let v = Vec.zeros d in
      for i = 0 to n - 1 do
        Vec.add_inplace ~into:v (Mat.row h i)
      done;
      (v, None)
  | RMean ->
      let v = Vec.zeros d in
      for i = 0 to n - 1 do
        Vec.add_inplace ~into:v (Mat.row h i)
      done;
      (Vec.scale (1.0 /. float_of_int (max 1 n)) v, None)
  | RMax ->
      let v = Vec.create d neg_infinity in
      let arg = Array.make d (-1) in
      for i = 0 to n - 1 do
        for j = 0 to d - 1 do
          if Mat.get h i j > v.(j) then begin
            v.(j) <- Mat.get h i j;
            arg.(j) <- i
          end
        done
      done;
      if n = 0 then (Vec.zeros d, Some arg) else (v, Some arg)

let run_layers t g =
  let h = ref (initial_features g) in
  let caches = ref [] in
  List.iter
    (fun layer ->
      let y, c = Layer.forward_cached g layer !h in
      caches := c :: !caches;
      h := y)
    t.layers;
  (!h, List.rev !caches)

(* Vertex embeddings: n x d matrix (head applied per row when present). *)
let vertex_embeddings t g =
  let h, _ = run_layers t g in
  match t.head with Some mlp -> Mlp.forward mlp h | None -> h

(* Graph embedding: pooled vector (head applied when present). *)
let graph_embedding t g =
  let h, _ = run_layers t g in
  match t.readout with
  | None -> invalid_arg "Model.graph_embedding: model has no readout"
  | Some r ->
      let v, _ = pool r h in
      (match t.head with Some mlp -> Mlp.apply_vec mlp v | None -> v)

(* --- training-mode forwards with caches ------------------------------- *)

let forward_vertices_cached t g =
  let h, layer_caches = run_layers t g in
  match t.head with
  | Some mlp ->
      let y, hc = Mlp.forward_cached mlp h in
      (y, { layer_caches; final_h = h; pool_arg = None; head_cache = Some hc })
  | None -> (h, { layer_caches; final_h = h; pool_arg = None; head_cache = None })

let forward_graph_cached t g =
  let h, layer_caches = run_layers t g in
  match t.readout with
  | None -> invalid_arg "Model.forward_graph_cached: model has no readout"
  | Some r ->
      let v, arg = pool r h in
      (match t.head with
      | Some mlp ->
          let y, hc = Mlp.forward_cached mlp (Mat.of_rows [ v ]) in
          (Mat.row y 0, { layer_caches; final_h = h; pool_arg = arg; head_cache = Some hc })
      | None -> (v, { layer_caches; final_h = h; pool_arg = arg; head_cache = None }))

let backward_layers t g caches dh =
  let pairs = List.combine t.layers caches in
  List.fold_right (fun (layer, c) d -> Layer.backward g layer c ~dout:d) pairs dh

(* Backward for vertex-level outputs: [dout] is n x out_dim. *)
let backward_vertices t g cache ~dout =
  let dh =
    match (t.head, cache.head_cache) with
    | Some mlp, Some hc -> Mlp.backward mlp hc ~dout
    | None, _ -> dout
    | Some _, None -> assert false
  in
  ignore (backward_layers t g cache.layer_caches dh)

(* Backward for graph-level outputs: [dout] is a vector. *)
let backward_graph t g cache ~dout =
  let dpooled =
    match (t.head, cache.head_cache) with
    | Some mlp, Some hc -> Mat.row (Mlp.backward mlp hc ~dout:(Mat.of_rows [ dout ])) 0
    | None, _ -> dout
    | Some _, None -> assert false
  in
  let n = Mat.rows cache.final_h and d = Mat.cols cache.final_h in
  let dh = Mat.zeros n d in
  (match t.readout with
  | None -> assert false
  | Some RSum ->
      for i = 0 to n - 1 do
        for j = 0 to d - 1 do
          Mat.set dh i j dpooled.(j)
        done
      done
  | Some RMean ->
      let inv = 1.0 /. float_of_int (max 1 n) in
      for i = 0 to n - 1 do
        for j = 0 to d - 1 do
          Mat.set dh i j (inv *. dpooled.(j))
        done
      done
  | Some RMax ->
      (match cache.pool_arg with
      | Some arg ->
          for j = 0 to d - 1 do
            if arg.(j) >= 0 then Mat.set dh arg.(j) j dpooled.(j)
          done
      | None -> assert false));
  ignore (backward_layers t g cache.layer_caches dh)

(* --- stock architectures ---------------------------------------------- *)

(* Random-weight GNN 101 stack (slide 13): [depth] layers of width [width],
   sigmoid activations for bounded, injective-ish features. *)
let random_gnn101 rng ~in_dim ~width ~depth ~out_dim =
  let sizes = List.init depth (fun i -> if i = 0 then (in_dim, width) else (width, width)) in
  let layers =
    List.map (fun (din, dout) -> Layer.gnn101 rng ~din ~dout ~act:Activation.Sigmoid) sizes
  in
  let head =
    Mlp.create rng ~sizes:[ width; out_dim ] ~act:Activation.Identity ~out_act:Activation.Identity
  in
  create ~head layers

let gin_classifier rng ~in_dim ~width ~depth ~n_classes =
  let layers =
    List.init depth (fun i ->
        Layer.gin rng ~din:(if i = 0 then in_dim else width) ~dout:width ~hidden:width ~eps:0.0)
  in
  let head =
    Mlp.create rng ~sizes:[ width; width; n_classes ] ~act:Activation.Relu
      ~out_act:Activation.Identity
  in
  create ~readout:RSum ~head layers

let gcn_node_classifier rng ~in_dim ~width ~depth ~n_classes =
  let layers =
    List.init depth (fun i ->
        Layer.gcn rng ~din:(if i = 0 then in_dim else width) ~dout:width ~act:Activation.Relu)
  in
  let head =
    Mlp.create rng ~sizes:[ width; n_classes ] ~act:Activation.Identity
      ~out_act:Activation.Identity
  in
  create ~head layers
