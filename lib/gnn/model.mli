(** GNN models: a stack of layers, an optional global readout (slide 14)
    and an optional MLP head; usable both as vertex embeddings
    [G -> (V -> R^d)] and graph embeddings [G -> R^d] (slides 7-8). *)

module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec
module Graph = Glql_graph.Graph
module Mlp = Glql_nn.Mlp
module Param = Glql_nn.Param

type readout = RSum | RMean | RMax

val readout_name : readout -> string

type t

type cache

val create : ?readout:readout -> ?head:Mlp.t -> Layer.t list -> t
val params : t -> Param.t list

(** Shadow model sharing weights but owning private gradient buffers;
    [params] of the shadow aligns index-wise with [params] of the
    original (the contract of the deterministic gradient merge). *)
val shadow : t -> t

(** Vertex labels as the initial feature matrix F(0). *)
val initial_features : Graph.t -> Mat.t

(** Vertex embedding of every vertex (one row each). *)
val vertex_embeddings : t -> Graph.t -> Mat.t

(** Graph embedding; raises if the model has no readout. *)
val graph_embedding : t -> Graph.t -> Vec.t

val forward_vertices_cached : t -> Graph.t -> Mat.t * cache
val forward_graph_cached : t -> Graph.t -> Vec.t * cache

(** Accumulate gradients for a vertex-level loss. *)
val backward_vertices : t -> Graph.t -> cache -> dout:Mat.t -> unit

(** Accumulate gradients for a graph-level loss. *)
val backward_graph : t -> Graph.t -> cache -> dout:Vec.t -> unit

(** Random-weight GNN 101 stack with a linear head (slide 13). *)
val random_gnn101 :
  Glql_util.Rng.t -> in_dim:int -> width:int -> depth:int -> out_dim:int -> t

(** GIN + sum readout + MLP head graph classifier. *)
val gin_classifier :
  Glql_util.Rng.t -> in_dim:int -> width:int -> depth:int -> n_classes:int -> t

(** GCN node classifier (no readout; per-vertex logits). *)
val gcn_node_classifier :
  Glql_util.Rng.t -> in_dim:int -> width:int -> depth:int -> n_classes:int -> t
