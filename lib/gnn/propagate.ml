(* Sparse message-passing primitives over the adjacency structure: the
   "sum over u in N_G(v)" of slide 13 and its mean/max/GCN-normalised
   variants, with the transposed operations needed for backpropagation.
   All graphs here are undirected, so A = A^T and sum/mean/GCN backward
   reuse the forward propagation with appropriate scaling.

   Every operation is written in gather form — output row v depends only
   on rows of the input — so rows parallelize over the domain pool with
   no write conflicts, and since one domain produces a whole row with the
   sequential loop order, results are bit-identical for every pool size.
   Adjacency lists are sorted, so the gather form of the mean backward
   also accumulates contributions in the same vertex order as the
   textbook scatter form.

   The kernels iterate the graph's flat CSR view and the matrices'
   row-major backing stores directly: neighbour rows are contiguous
   slices of [adjacency], matrix rows are [v*d ..] slices of [Mat.data],
   and all indices are in range by construction, so the inner loops are
   plain unsafe float-array arithmetic. Accumulation order (sorted
   neighbours outer, columns inner) is exactly the per-element order of
   the [Mat.get]/[Mat.set] formulation, keeping results bit-identical. *)

module Mat = Glql_tensor.Mat
module Graph = Glql_graph.Graph
module Pool = Glql_util.Pool

(* Below this many output cells the dispatch overhead dominates. *)
let par_cells = 2048

let rows_over n d f =
  if n * d >= par_cells then Pool.parallel_for ~n f
  else
    for v = 0 to n - 1 do
      f v
    done

(* (A H): row v becomes the sum of H's rows over v's neighbours,
   accumulated into [into] on top of its current contents. *)
let add_sum_neighbors ~into g h =
  let n = Graph.n_vertices g and d = Mat.cols h in
  if Mat.rows into <> n || Mat.cols into <> d then
    invalid_arg "Propagate.add_sum_neighbors: bad output shape";
  let csr = Graph.csr g in
  let offsets = csr.Graph.Csr.offsets and adjacency = csr.Graph.Csr.adjacency in
  let src = Mat.data h and dst = Mat.data into in
  rows_over n d (fun v ->
      let vb = v * d in
      for i = offsets.(v) to offsets.(v + 1) - 1 do
        let ub = Array.unsafe_get adjacency i * d in
        for j = 0 to d - 1 do
          Array.unsafe_set dst (vb + j)
            (Array.unsafe_get dst (vb + j) +. Array.unsafe_get src (ub + j))
        done
      done)

let sum_neighbors g h =
  let out = Mat.zeros (Graph.n_vertices g) (Mat.cols h) in
  add_sum_neighbors ~into:out g h;
  out

(* Mean over neighbours; isolated vertices get the zero vector. *)
let mean_neighbors g h =
  let out = sum_neighbors g h in
  let d = Mat.cols h in
  let degrees = (Graph.csr g).Graph.Csr.degrees in
  let dst = Mat.data out in
  for v = 0 to Graph.n_vertices g - 1 do
    let deg = degrees.(v) in
    if deg > 0 then begin
      let vb = v * d and fdeg = float_of_int deg in
      for j = 0 to d - 1 do
        Array.unsafe_set dst (vb + j) (Array.unsafe_get dst (vb + j) /. fdeg)
      done
    end
  done;
  out

(* Backward of mean: A D^{-1} dZ by symmetry of A, gathered per output
   row — out row u collects dZ row v / deg(v) over v in N(u). *)
let mean_neighbors_backward g dz =
  let n = Graph.n_vertices g and d = Mat.cols dz in
  let out = Mat.zeros n d in
  let csr = Graph.csr g in
  let offsets = csr.Graph.Csr.offsets
  and adjacency = csr.Graph.Csr.adjacency
  and degrees = csr.Graph.Csr.degrees in
  let src = Mat.data dz and dst = Mat.data out in
  rows_over n d (fun u ->
      let ub = u * d in
      for i = offsets.(u) to offsets.(u + 1) - 1 do
        let v = Array.unsafe_get adjacency i in
        let inv = 1.0 /. float_of_int (Array.unsafe_get degrees v) in
        let vb = v * d in
        for j = 0 to d - 1 do
          Array.unsafe_set dst (ub + j)
            (Array.unsafe_get dst (ub + j) +. (inv *. Array.unsafe_get src (vb + j)))
        done
      done);
  out

(* Max over neighbours with the argmax cache (first max wins); isolated
   vertices get zeros and argmax -1. *)
let max_neighbors g h =
  let n = Graph.n_vertices g and d = Mat.cols h in
  let out = Mat.zeros n d in
  let arg = Array.make_matrix n d (-1) in
  let csr = Graph.csr g in
  let offsets = csr.Graph.Csr.offsets and adjacency = csr.Graph.Csr.adjacency in
  let src = Mat.data h and dst = Mat.data out in
  rows_over n d (fun v ->
      let lo = offsets.(v) and hi = offsets.(v + 1) in
      if hi > lo then
        for j = 0 to d - 1 do
          let best = ref adjacency.(lo) in
          for i = lo to hi - 1 do
            let u = Array.unsafe_get adjacency i in
            if Array.unsafe_get src ((u * d) + j) > Array.unsafe_get src ((!best * d) + j)
            then best := u
          done;
          Array.unsafe_set dst ((v * d) + j) (Array.unsafe_get src ((!best * d) + j));
          arg.(v).(j) <- !best
        done);
  (out, arg)

(* Backward of max: route each output gradient to its argmax source.
   Scatter form (cheap: one add per cell); kept sequential. *)
let max_neighbors_backward g arg dz =
  let n = Graph.n_vertices g and d = Mat.cols dz in
  let out = Mat.zeros n d in
  for v = 0 to n - 1 do
    for j = 0 to d - 1 do
      let u = arg.(v).(j) in
      if u >= 0 then Mat.set out u j (Mat.get out u j +. Mat.get dz v j)
    done
  done;
  out

(* GCN propagation \hat A H with \hat A = D~^{-1/2} (A + I) D~^{-1/2}
   (Kipf & Welling; quoted on slide 38). Symmetric, so it is its own
   backward operator. *)
let gcn_neighbors g h =
  let n = Graph.n_vertices g and d = Mat.cols h in
  let csr = Graph.csr g in
  let offsets = csr.Graph.Csr.offsets
  and adjacency = csr.Graph.Csr.adjacency
  and degrees = csr.Graph.Csr.degrees in
  let inv_sqrt_deg = Array.init n (fun v -> 1.0 /. sqrt (float_of_int (degrees.(v) + 1))) in
  let out = Mat.zeros n d in
  let src = Mat.data h and dst = Mat.data out in
  rows_over n d (fun v ->
      let vb = v * d in
      let isd_v = Array.unsafe_get inv_sqrt_deg v in
      let self_coef = isd_v *. isd_v in
      for j = 0 to d - 1 do
        Array.unsafe_set dst (vb + j) (self_coef *. Array.unsafe_get src (vb + j))
      done;
      for i = offsets.(v) to offsets.(v + 1) - 1 do
        let u = Array.unsafe_get adjacency i in
        let coef = isd_v *. Array.unsafe_get inv_sqrt_deg u in
        let ub = u * d in
        for j = 0 to d - 1 do
          Array.unsafe_set dst (vb + j)
            (Array.unsafe_get dst (vb + j) +. (coef *. Array.unsafe_get src (ub + j)))
        done
      done);
  out
