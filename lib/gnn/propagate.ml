(* Sparse message-passing primitives over the adjacency structure: the
   "sum over u in N_G(v)" of slide 13 and its mean/max/GCN-normalised
   variants, with the transposed operations needed for backpropagation.
   All graphs here are undirected, so A = A^T and sum/mean/GCN backward
   reuse the forward propagation with appropriate scaling.

   Every operation is written in gather form — output row v depends only
   on rows of the input — so rows parallelize over the domain pool with
   no write conflicts, and since one domain produces a whole row with the
   sequential loop order, results are bit-identical for every pool size.
   Adjacency lists are sorted, so the gather form of the mean backward
   also accumulates contributions in the same vertex order as the
   textbook scatter form. *)

module Mat = Glql_tensor.Mat
module Graph = Glql_graph.Graph
module Pool = Glql_util.Pool

(* Below this many output cells the dispatch overhead dominates. *)
let par_cells = 2048

let rows_over n d f =
  if n * d >= par_cells then Pool.parallel_for ~n f
  else
    for v = 0 to n - 1 do
      f v
    done

(* (A H): row v becomes the sum of H's rows over v's neighbours,
   accumulated into [into] on top of its current contents. *)
let add_sum_neighbors ~into g h =
  let n = Graph.n_vertices g and d = Mat.cols h in
  if Mat.rows into <> n || Mat.cols into <> d then
    invalid_arg "Propagate.add_sum_neighbors: bad output shape";
  rows_over n d (fun v ->
      Array.iter
        (fun u ->
          for j = 0 to d - 1 do
            Mat.set into v j (Mat.get into v j +. Mat.get h u j)
          done)
        (Graph.neighbors g v))

let sum_neighbors g h =
  let out = Mat.zeros (Graph.n_vertices g) (Mat.cols h) in
  add_sum_neighbors ~into:out g h;
  out

(* Mean over neighbours; isolated vertices get the zero vector. *)
let mean_neighbors g h =
  let out = sum_neighbors g h in
  for v = 0 to Graph.n_vertices g - 1 do
    let deg = Graph.degree g v in
    if deg > 0 then
      for j = 0 to Mat.cols h - 1 do
        Mat.set out v j (Mat.get out v j /. float_of_int deg)
      done
  done;
  out

(* Backward of mean: A D^{-1} dZ by symmetry of A, gathered per output
   row — out row u collects dZ row v / deg(v) over v in N(u). *)
let mean_neighbors_backward g dz =
  let n = Graph.n_vertices g and d = Mat.cols dz in
  let out = Mat.zeros n d in
  rows_over n d (fun u ->
      Array.iter
        (fun v ->
          let inv = 1.0 /. float_of_int (Graph.degree g v) in
          for j = 0 to d - 1 do
            Mat.set out u j (Mat.get out u j +. (inv *. Mat.get dz v j))
          done)
        (Graph.neighbors g u));
  out

(* Max over neighbours with the argmax cache (first max wins); isolated
   vertices get zeros and argmax -1. *)
let max_neighbors g h =
  let n = Graph.n_vertices g and d = Mat.cols h in
  let out = Mat.zeros n d in
  let arg = Array.make_matrix n d (-1) in
  rows_over n d (fun v ->
      let nb = Graph.neighbors g v in
      if Array.length nb > 0 then
        for j = 0 to d - 1 do
          let best = ref nb.(0) in
          Array.iter (fun u -> if Mat.get h u j > Mat.get h !best j then best := u) nb;
          Mat.set out v j (Mat.get h !best j);
          arg.(v).(j) <- !best
        done);
  (out, arg)

(* Backward of max: route each output gradient to its argmax source.
   Scatter form (cheap: one add per cell); kept sequential. *)
let max_neighbors_backward g arg dz =
  let n = Graph.n_vertices g and d = Mat.cols dz in
  let out = Mat.zeros n d in
  for v = 0 to n - 1 do
    for j = 0 to d - 1 do
      let u = arg.(v).(j) in
      if u >= 0 then Mat.set out u j (Mat.get out u j +. Mat.get dz v j)
    done
  done;
  out

(* GCN propagation \hat A H with \hat A = D~^{-1/2} (A + I) D~^{-1/2}
   (Kipf & Welling; quoted on slide 38). Symmetric, so it is its own
   backward operator. *)
let gcn_neighbors g h =
  let n = Graph.n_vertices g and d = Mat.cols h in
  let inv_sqrt_deg = Array.init n (fun v -> 1.0 /. sqrt (float_of_int (Graph.degree g v + 1))) in
  let out = Mat.zeros n d in
  rows_over n d (fun v ->
      let self_coef = inv_sqrt_deg.(v) *. inv_sqrt_deg.(v) in
      for j = 0 to d - 1 do
        Mat.set out v j (self_coef *. Mat.get h v j)
      done;
      Array.iter
        (fun u ->
          let coef = inv_sqrt_deg.(v) *. inv_sqrt_deg.(u) in
          for j = 0 to d - 1 do
            Mat.set out v j (Mat.get out v j +. (coef *. Mat.get h u j))
          done)
        (Graph.neighbors g v));
  out
