(** Sparse message-passing primitives (the neighbourhood aggregations of
    slides 13 and 45) and their backward counterparts. *)

module Mat = Glql_tensor.Mat
module Graph = Glql_graph.Graph

(** [A H]: sum of neighbour rows. Self-adjoint, so it is also the backward
    operator for itself. *)
val sum_neighbors : Graph.t -> Mat.t -> Mat.t

(** [add_sum_neighbors ~into g h] accumulates [A H] on top of [into] —
    the allocation-free form used by the backward passes. *)
val add_sum_neighbors : into:Mat.t -> Graph.t -> Mat.t -> unit

(** Mean of neighbour rows; zero for isolated vertices. *)
val mean_neighbors : Graph.t -> Mat.t -> Mat.t

(** Adjoint of [mean_neighbors]. *)
val mean_neighbors_backward : Graph.t -> Mat.t -> Mat.t

(** Pointwise max over neighbour rows plus the argmax cache. *)
val max_neighbors : Graph.t -> Mat.t -> Mat.t * int array array

(** Backward of max: gradients go to the cached argmax sources. *)
val max_neighbors_backward : Graph.t -> int array array -> Mat.t -> Mat.t

(** GCN-normalised propagation [D~^{-1/2} (A+I) D~^{-1/2} H]; symmetric,
    hence self-adjoint. *)
val gcn_neighbors : Graph.t -> Mat.t -> Mat.t
