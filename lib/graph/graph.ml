(* Finite undirected vertex-labelled graphs G = (V, E, L) with
   L : V -> R^d (slide 6).  Vertices are [0 .. n-1]; adjacency lists are
   sorted and deduplicated so membership tests are binary searches and
   structural equality is meaningful.  Finite label alphabets are handled
   by one-hot encoding (see [with_one_hot_labels]). *)

module Vec = Glql_tensor.Vec

(* Flat CSR/SoA view: the compute core's input format. [offsets] has
   length n+1 and vertex v's sorted neighbours occupy
   [adjacency.(offsets.(v)) .. adjacency.(offsets.(v+1) - 1)]; labels are
   packed row-major into one Bigarray float matrix. Hot kernels (WL
   rounds, propagation, the hom-count tree DP) iterate these flat arrays
   instead of chasing the per-vertex [adj] rows, and the snapshot store
   serialises exactly the [offsets]/[adjacency] pair. *)
module Csr = struct
  type t = {
    offsets : int array;
    adjacency : int array;
    degrees : int array;
    labels : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t;
  }

  (* Binary-search membership on the flat row of [u]; vertices must be in
     range (out-of-range indices fail the array bounds check). *)
  let has_edge c u v =
    let lo = ref c.offsets.(u) and hi = ref c.offsets.(u + 1) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let w = c.adjacency.(mid) in
      if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
    done;
    !found
end

type t = {
  n : int;
  adj : int array array;
  labels : Vec.t array;
  label_dim : int;
  (* Lazily-built flat view, memoized per graph. The graph is immutable
     from the outside, so the memo can only go from None to Some of an
     equal value; a concurrent double-build is benign (last write wins,
     both values are correct). [with_labels] refreshes the label matrix
     but keeps the structural arrays. *)
  mutable csr_memo : Csr.t option;
}

let n_vertices g = g.n

let n_edges g =
  let deg_sum = Array.fold_left (fun acc nb -> acc + Array.length nb) 0 g.adj in
  deg_sum / 2

let neighbors g v = g.adj.(v)

let degree g v = Array.length g.adj.(v)

let label g v = g.labels.(v)

let label_dim g = g.label_dim

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    d := max !d (degree g v)
  done;
  !d

let validate_vertex g v name =
  if v < 0 || v >= g.n then invalid_arg (Printf.sprintf "Graph.%s: vertex %d out of range" name v)

let has_edge g u v =
  validate_vertex g u "has_edge";
  validate_vertex g v "has_edge";
  let nb = g.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if nb.(mid) = v then true
      else if nb.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length nb)

let normalize_adjacency n edges =
  let sets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.create: edge (%d,%d) out of range" u v);
      if u <> v then begin
        sets.(u) <- v :: sets.(u);
        sets.(v) <- u :: sets.(v)
      end)
    edges;
  Array.map
    (fun l ->
      let a = Array.of_list l in
      Array.sort compare a;
      (* Deduplicate the sorted list. *)
      let out = ref [] in
      Array.iteri (fun i x -> if i = 0 || a.(i - 1) <> x then out := x :: !out) a;
      Array.of_list (List.rev !out))
    sets

let create ~n ~edges ~labels =
  if Array.length labels <> n then invalid_arg "Graph.create: |labels| <> n";
  let label_dim = if n = 0 then 0 else Vec.dim labels.(0) in
  Array.iter
    (fun l -> if Vec.dim l <> label_dim then invalid_arg "Graph.create: ragged labels")
    labels;
  { n; adj = normalize_adjacency n edges; labels = Array.map Vec.copy labels; label_dim;
    csr_memo = None }

let unlabelled ~n ~edges =
  create ~n ~edges ~labels:(Array.make n [| 1.0 |])

(* Pack a label array into the CSR view's row-major float matrix. *)
let pack_labels n label_dim labels =
  let m = Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout n label_dim in
  for v = 0 to n - 1 do
    let lv = labels.(v) in
    for j = 0 to label_dim - 1 do
      Bigarray.Array2.unsafe_set m v j lv.(j)
    done
  done;
  m

let with_labels g labels =
  if Array.length labels <> g.n then invalid_arg "Graph.with_labels: |labels| <> n";
  let label_dim = if g.n = 0 then 0 else Vec.dim labels.(0) in
  Array.iter
    (fun l -> if Vec.dim l <> label_dim then invalid_arg "Graph.with_labels: ragged labels")
    labels;
  let copied = Array.map Vec.copy labels in
  (* The structure is unchanged, so a built flat view stays valid with a
     repacked label matrix; only a relabelling invalidates it. *)
  let csr_memo =
    match g.csr_memo with
    | Some c -> Some { c with Csr.labels = pack_labels g.n label_dim copied }
    | None -> None
  in
  { g with labels = copied; label_dim; csr_memo }

(* One-hot encode a finite colour alphabet (slide 6's "hot-one encoding"). *)
let with_one_hot_labels g colors ~n_colors =
  if Array.length colors <> g.n then invalid_arg "Graph.with_one_hot_labels";
  let labels =
    Array.map
      (fun c ->
        if c < 0 || c >= n_colors then invalid_arg "Graph.with_one_hot_labels: colour out of range";
        Vec.init n_colors (fun j -> if j = c then 1.0 else 0.0))
      colors
  in
  with_labels g labels

(* Build the flat view from the per-vertex rows: one offsets pass, one
   blit per row, labels packed into the float matrix. *)
let build_csr g =
  Glql_util.Trace.with_span
    ~args:[ ("n", string_of_int g.n) ]
    "csr.build"
  @@ fun () ->
  let offsets = Array.make (g.n + 1) 0 in
  for v = 0 to g.n - 1 do
    offsets.(v + 1) <- offsets.(v) + Array.length g.adj.(v)
  done;
  let adjacency = Array.make (max 1 offsets.(g.n)) 0 in
  let adjacency = if offsets.(g.n) = 0 then [||] else adjacency in
  for v = 0 to g.n - 1 do
    Array.blit g.adj.(v) 0 adjacency offsets.(v) (Array.length g.adj.(v))
  done;
  let degrees = Array.init g.n (fun v -> Array.length g.adj.(v)) in
  { Csr.offsets; adjacency; degrees; labels = pack_labels g.n g.label_dim g.labels }

let csr g =
  match g.csr_memo with
  | Some c -> c
  | None ->
      let c = build_csr g in
      g.csr_memo <- Some c;
      c

(* CSR view: [offsets] of length n+1 and the concatenation of all (sorted)
   neighbour lists — the packed form the snapshot store writes to disk.
   Served from the memoized flat view, so repeated calls are O(1); the
   returned arrays are that view and must not be mutated. *)
let to_csr g =
  let c = csr g in
  (c.Csr.offsets, c.Csr.adjacency)

(* Rebuild a graph from a CSR view, validating every representation
   invariant (the input may come from an untrusted snapshot file):
   monotone offsets covering the adjacency array exactly, rows strictly
   increasing (sorted, deduplicated, no self-loop), entries in range, and
   symmetry of the edge relation. Raises [Invalid_argument] otherwise.
   Rows are checked in place on the flat arrays (symmetry by binary
   search on the mirror row), with no intermediate structures built
   before validation passes. *)
let of_csr ~n ~offsets ~adjacency ~labels =
  if n < 0 then invalid_arg "Graph.of_csr: negative vertex count";
  if Array.length offsets <> n + 1 then invalid_arg "Graph.of_csr: |offsets| <> n+1";
  if n > 0 && offsets.(0) <> 0 then invalid_arg "Graph.of_csr: offsets must start at 0";
  for v = 0 to n - 1 do
    if offsets.(v + 1) < offsets.(v) then invalid_arg "Graph.of_csr: offsets not monotone"
  done;
  if (if n = 0 then Array.length adjacency <> 0 else offsets.(n) <> Array.length adjacency)
  then invalid_arg "Graph.of_csr: offsets do not cover the adjacency array";
  if Array.length labels <> n then invalid_arg "Graph.of_csr: |labels| <> n";
  let label_dim = if n = 0 then 0 else Vec.dim labels.(0) in
  Array.iter
    (fun l -> if Vec.dim l <> label_dim then invalid_arg "Graph.of_csr: ragged labels")
    labels;
  for v = 0 to n - 1 do
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    for i = lo to hi - 1 do
      let u = adjacency.(i) in
      if u < 0 || u >= n then invalid_arg "Graph.of_csr: neighbour out of range";
      if u = v then invalid_arg "Graph.of_csr: self-loop";
      if i > lo && adjacency.(i - 1) >= u then
        invalid_arg "Graph.of_csr: row not strictly increasing"
    done
  done;
  (* Symmetry: every (v, u) arc must have its mirror, located by binary
     search on u's flat row (rows are strictly increasing by now). *)
  let mirror u v =
    let lo = ref offsets.(u) and hi = ref offsets.(u + 1) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let w = adjacency.(mid) in
      if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
    done;
    !found
  in
  for v = 0 to n - 1 do
    for i = offsets.(v) to offsets.(v + 1) - 1 do
      if not (mirror adjacency.(i) v) then invalid_arg "Graph.of_csr: asymmetric edge"
    done
  done;
  let adj = Array.init n (fun v -> Array.sub adjacency offsets.(v) (offsets.(v + 1) - offsets.(v))) in
  (* The flat view is left to build lazily on first kernel use rather
     than seeded from the input here: copying the caller's arrays into a
     memo would bill every snapshot restore for views it may never
     touch. *)
  { n; adj; labels = Array.map Vec.copy labels; label_dim; csr_memo = None }

(* Batched functional mutation: returns a new graph that shares every
   untouched adjacency row (and every untouched label vector) with [g];
   only rows incident to an added/deleted edge are rebuilt. Edge ops use
   set semantics — adding a present edge or deleting an absent one is a
   no-op — so callers that validated against an evolving batch state can
   hand over the net delta. The memoized flat view is dropped
   ([csr_memo = None]): this is the CSR invalidate/rebuild path, the next
   kernel use rebuilds it lazily. *)
let mutate g ~add_edges ~del_edges ~set_labels =
  let check_edge (u, v) =
    if u < 0 || u >= g.n || v < 0 || v >= g.n then
      invalid_arg (Printf.sprintf "Graph.mutate: edge (%d,%d) out of range" u v);
    if u = v then invalid_arg (Printf.sprintf "Graph.mutate: self-loop (%d,%d)" u v)
  in
  List.iter check_edge add_edges;
  List.iter check_edge del_edges;
  (* Per touched vertex: neighbours to add and to drop. *)
  let delta : (int, int list ref * int list ref) Hashtbl.t = Hashtbl.create 16 in
  let cell v =
    match Hashtbl.find_opt delta v with
    | Some c -> c
    | None ->
        let c = (ref [], ref []) in
        Hashtbl.add delta v c;
        c
  in
  List.iter
    (fun (u, v) ->
      let au, _ = cell u and av, _ = cell v in
      au := v :: !au;
      av := u :: !av)
    add_edges;
  List.iter
    (fun (u, v) ->
      let _, du = cell u and _, dv = cell v in
      du := v :: !du;
      dv := u :: !dv)
    del_edges;
  let adj = Array.copy g.adj in
  Hashtbl.iter
    (fun v (adds, dels) ->
      let drop = Hashtbl.create 4 in
      List.iter (fun u -> Hashtbl.replace drop u ()) !dels;
      (* Deletions win over additions of the same endpoint only through
         set semantics on the final row: drop first, then union adds
         minus drops. *)
      let kept =
        Array.to_list adj.(v) |> List.filter (fun u -> not (Hashtbl.mem drop u))
      in
      let row = Array.of_list (List.rev_append !adds kept) in
      Array.sort compare row;
      let out = ref [] in
      Array.iteri (fun i x -> if i = 0 || row.(i - 1) <> x then out := x :: !out) row;
      adj.(v) <- Array.of_list (List.rev !out))
    delta;
  let labels =
    if set_labels = [] then g.labels
    else begin
      let labels = Array.copy g.labels in
      List.iter
        (fun (v, l) ->
          validate_vertex g v "mutate";
          if Vec.dim l <> g.label_dim then
            invalid_arg
              (Printf.sprintf "Graph.mutate: label dim %d <> %d" (Vec.dim l) g.label_dim);
          labels.(v) <- Vec.copy l)
        set_labels;
      labels
    end
  in
  { g with adj; labels; csr_memo = None }

let edges g =
  let out = ref [] in
  for u = g.n - 1 downto 0 do
    let nb = g.adj.(u) in
    for i = Array.length nb - 1 downto 0 do
      if u < nb.(i) then out := (u, nb.(i)) :: !out
    done
  done;
  !out

(* Relabel vertices along a permutation: vertex v of g becomes perm.(v).
   Labels travel with the vertices, so the result is isomorphic to g. *)
let permute g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.permute: bad permutation length";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= g.n || seen.(p) then invalid_arg "Graph.permute: not a permutation";
      seen.(p) <- true)
    perm;
  let labels = Array.make g.n [||] in
  for v = 0 to g.n - 1 do
    labels.(perm.(v)) <- g.labels.(v)
  done;
  let edges = List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g) in
  create ~n:g.n ~edges ~labels

let random_permutation rng n =
  let perm = Array.init n (fun i -> i) in
  Glql_util.Rng.shuffle rng perm;
  perm

let shuffle rng g = permute g (random_permutation rng g.n)

let disjoint_union g h =
  if g.label_dim <> h.label_dim && g.n > 0 && h.n > 0 then
    invalid_arg "Graph.disjoint_union: label dims differ";
  let n = g.n + h.n in
  let labels = Array.append g.labels h.labels in
  let edges =
    edges g @ List.map (fun (u, v) -> (u + g.n, v + g.n)) (edges h)
  in
  create ~n ~edges ~labels

let induced_subgraph g vs =
  let index = Hashtbl.create (Array.length vs) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let labels = Array.map (fun v -> g.labels.(v)) vs in
  let edges =
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
        | Some iu, Some iv -> Some (iu, iv)
        | _ -> None)
      (edges g)
  in
  create ~n:(Array.length vs) ~edges ~labels

let complement g =
  let edges = ref [] in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (has_edge g u v) then edges := (u, v) :: !edges
    done
  done;
  create ~n:g.n ~edges:!edges ~labels:g.labels

let connected_components g =
  let comp = Array.make g.n (-1) in
  let next = ref 0 in
  for start = 0 to g.n - 1 do
    if comp.(start) = -1 then begin
      let id = !next in
      incr next;
      let stack = ref [ start ] in
      comp.(start) <- id;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            Array.iter
              (fun u ->
                if comp.(u) = -1 then begin
                  comp.(u) <- id;
                  stack := u :: !stack
                end)
              g.adj.(v)
      done
    end
  done;
  (!next, comp)

let is_connected g = g.n = 0 || fst (connected_components g) = 1

let degree_histogram g =
  let h = Hashtbl.create 16 in
  for v = 0 to g.n - 1 do
    let d = degree g v in
    Hashtbl.replace h d (1 + Option.value ~default:0 (Hashtbl.find_opt h d))
  done;
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) h [])

let equal_structure g h =
  g.n = h.n && g.adj = h.adj
  && Array.for_all2 (fun a b -> Vec.equal_approx a b) g.labels h.labels

let to_string g =
  let edge_str =
    edges g |> List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) |> String.concat " "
  in
  Printf.sprintf "graph(n=%d, m=%d): %s" g.n (n_edges g) edge_str
