(** Finite undirected vertex-labelled graphs [G = (V, E, L)] with labels in
    [R^d] (paper, slide 6). Vertices are [0 .. n-1]. The representation is
    immutable from the outside; adjacency lists are sorted and deduplicated. *)

module Vec = Glql_tensor.Vec

(** Flat CSR/SoA view of a graph: structure as two packed int arrays,
    labels as one Bigarray-backed float matrix (row [v] is vertex [v]'s
    label vector). Built lazily once per graph and memoized, so every
    kernel iterating [adjacency.(offsets.(v)) .. offsets.(v+1) - 1]
    shares one build. The arrays are the memoized view itself — treat
    them as read-only. *)
module Csr : sig
  type t = {
    offsets : int array;  (** length [n+1]; row [v] spans [offsets.(v) .. offsets.(v+1) - 1] *)
    adjacency : int array;  (** all sorted neighbour rows, concatenated *)
    degrees : int array;  (** [degrees.(v) = offsets.(v+1) - offsets.(v)] *)
    labels : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t;
  }

  (** Binary-search membership on the flat rows; no bounds validation. *)
  val has_edge : t -> int -> int -> bool
end

type t

(** [create ~n ~edges ~labels] builds a simple undirected graph. Self-loops
    are dropped, parallel edges deduplicated, labels copied. All labels must
    share one dimension. *)
val create : n:int -> edges:(int * int) list -> labels:Vec.t array -> t

(** All-ones 1-dimensional labels (the "no information" labelling). *)
val unlabelled : n:int -> edges:(int * int) list -> t

(** Replace the labelling, keeping the structure. *)
val with_labels : t -> Vec.t array -> t

(** One-hot encode a finite colour alphabet as labels (slide 6). *)
val with_one_hot_labels : t -> int array -> n_colors:int -> t

val n_vertices : t -> int
val n_edges : t -> int

(** Sorted neighbour array of [v]. Do not mutate. *)
val neighbors : t -> int -> int array

val degree : t -> int -> int
val max_degree : t -> int
val label : t -> int -> Vec.t
val label_dim : t -> int

(** Binary-search membership test; raises on out-of-range vertices. *)
val has_edge : t -> int -> int -> bool

(** Edge list with [u < v], sorted lexicographically. *)
val edges : t -> (int * int) list

(** [mutate g ~add_edges ~del_edges ~set_labels] applies a batched
    structural mutation functionally: the result is a new graph sharing
    every untouched adjacency row and label vector with [g]; only rows
    incident to a changed edge are rebuilt (sorted, deduplicated). Edge
    ops use set semantics (adding a present edge / deleting an absent one
    is a no-op); replacement labels must have dimension [label_dim g].
    The memoized {!csr} view of the result is invalidated and rebuilt
    lazily on first kernel use. Raises [Invalid_argument] on out-of-range
    vertices, self-loops, or a label-dimension mismatch. *)
val mutate :
  t ->
  add_edges:(int * int) list ->
  del_edges:(int * int) list ->
  set_labels:(int * Vec.t) list ->
  t

(** The memoized flat view of [g]; built on first use (a [csr.build]
    trace span), O(1) afterwards. *)
val csr : t -> Csr.t

(** CSR view: [(offsets, adjacency)] where [offsets] has length [n+1]
    and vertex [v]'s sorted neighbours are
    [adjacency.(offsets.(v)) .. adjacency.(offsets.(v+1) - 1)]. The
    packed form the snapshot store serialises. Served from the memoized
    {!csr} view — repeated calls are O(1), and the returned arrays must
    not be mutated. *)
val to_csr : t -> int array * int array

(** Rebuild a graph from a CSR view. Every representation invariant is
    validated — monotone offsets, strictly increasing in-range rows, no
    self-loops, symmetric edges, rectangular labels — and violations
    raise [Invalid_argument], so a hostile snapshot cannot materialise a
    malformed graph. Round-trips [to_csr] bit-identically. *)
val of_csr : n:int -> offsets:int array -> adjacency:int array -> labels:Vec.t array -> t

(** [permute g perm] renames vertex [v] to [perm.(v)]; the result is
    isomorphic to [g] with labels travelling along. *)
val permute : t -> int array -> t

(** Uniformly random permutation of [0 .. n-1]. *)
val random_permutation : Glql_util.Rng.t -> int -> int array

(** Isomorphic copy under a uniformly random renaming (for invariance
    tests, slide 11). *)
val shuffle : Glql_util.Rng.t -> t -> t

val disjoint_union : t -> t -> t

(** Subgraph induced by the given (distinct) vertices, renumbered in array
    order. *)
val induced_subgraph : t -> int array -> t

val complement : t -> t

(** [(k, comp)] where [comp.(v)] is the component id of [v] in [0..k-1]. *)
val connected_components : t -> int * int array

val is_connected : t -> bool

(** Sorted [(degree, count)] pairs. *)
val degree_histogram : t -> (int * int) list

(** Structural equality: same vertex count, adjacency and (approximately)
    the same labels. Not isomorphism. *)
val equal_structure : t -> t -> bool

val to_string : t -> string
