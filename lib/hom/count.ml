(* Homomorphism and subgraph counting.

   hom(P, G) counts maps V_P -> V_G sending edges to edges (slide 27).
   For tree patterns we use the classical linear-time dynamic program over
   the tree; for general small patterns a pruned backtracking count.
   Labels are ignored by default; pass [compatible] to restrict the maps
   (e.g. label-preserving homomorphisms). *)

module Graph = Glql_graph.Graph
module Pool = Glql_util.Pool

let default_compatible _pattern_v _graph_v = true

(* DP for tree patterns rooted at [root]: down.(t).(v) = number of
   homomorphisms of the subtree rooted at t mapping t to v. *)
let hom_tree_rooted ?(compatible = default_compatible) pattern root g =
  if not (Tree.is_tree pattern) then invalid_arg "Count.hom_tree_rooted: pattern is not a tree";
  let n = Graph.n_vertices g in
  let csr = Graph.csr g in
  let offsets = csr.Graph.Csr.offsets and adjacency = csr.Graph.Csr.adjacency in
  let rec down t parent =
    let children = Array.to_list (Graph.neighbors pattern t) |> List.filter (fun u -> u <> parent) in
    let child_tables = List.map (fun c -> down c t) children in
    Array.init n (fun v ->
        if not (compatible t v) then 0.0
        else
          List.fold_left
            (fun acc table ->
              if acc = 0.0 then 0.0
              else begin
                (* Neighbour sum over v's flat CSR row, in the same
                   (sorted) order as the adjacency-list walk. *)
                let s = ref 0.0 in
                for i = offsets.(v) to offsets.(v + 1) - 1 do
                  s := !s +. Array.unsafe_get table (Array.unsafe_get adjacency i)
                done;
                acc *. !s
              end)
            1.0 child_tables)
  in
  down root (-1)

(* hom(T, G) for a tree pattern: root anywhere and sum over images. *)
let hom_tree ?compatible pattern g =
  let table = hom_tree_rooted ?compatible pattern 0 g in
  Array.fold_left ( +. ) 0.0 table

(* Vector of rooted-tree hom counts: entry v counts homomorphisms sending
   the pattern's root (vertex [root]) to v. Used by F-MPNN views (E13). *)
let rooted_hom_vector ?compatible pattern ~root g = hom_tree_rooted ?compatible pattern root g

(* Backtracking hom count for arbitrary small patterns. Pattern vertices
   are processed in a connectivity-aware order so edge constraints apply
   as early as possible. *)
let hom_bruteforce ?(compatible = default_compatible) ?(injective = false) pattern g =
  let np = Graph.n_vertices pattern in
  let n = Graph.n_vertices g in
  if np = 0 then 1.0
  else begin
    (* Order: greedy, always next a vertex with most already-ordered
       neighbours (ties by degree). *)
    let order = Array.make np (-1) in
    let placed = Array.make np false in
    for i = 0 to np - 1 do
      let best = ref (-1) in
      let best_key = ref (-1, -1) in
      for v = 0 to np - 1 do
        if not placed.(v) then begin
          let back = ref 0 in
          Array.iter (fun u -> if placed.(u) then incr back) (Graph.neighbors pattern v);
          let key = (!back, Graph.degree pattern v) in
          if key > !best_key then begin
            best_key := key;
            best := v
          end
        end
      done;
      order.(i) <- !best;
      placed.(!best) <- true
    done;
    let image = Array.make np (-1) in
    let used = Array.make n false in
    let count = ref 0.0 in
    let rec go i =
      if i = np then count := !count +. 1.0
      else begin
        let pv = order.(i) in
        for v = 0 to n - 1 do
          if compatible pv v && ((not injective) || not used.(v)) then begin
            let ok = ref true in
            Array.iter
              (fun pu -> if image.(pu) <> -1 && not (Graph.has_edge g v image.(pu)) then ok := false)
              (Graph.neighbors pattern pv);
            if !ok then begin
              image.(pv) <- v;
              if injective then used.(v) <- true;
              go (i + 1);
              image.(pv) <- -1;
              if injective then used.(v) <- false
            end
          end
        done
      end
    in
    go 0;
    !count
  end

(* hom(P, G) choosing the tree DP when possible. *)
let hom ?compatible pattern g =
  if Tree.is_tree pattern then hom_tree ?compatible pattern g
  else hom_bruteforce ?compatible pattern g

(* Number of subgraphs of G isomorphic to P = injective homs / |Aut(P)|. *)
let automorphism_count pattern =
  hom_bruteforce ~injective:true pattern pattern

let subgraph_count pattern g =
  let inj = hom_bruteforce ~injective:true pattern g in
  inj /. automorphism_count pattern

(* Triangle count: hom(K3, G) / 6. *)
let triangles g =
  let k3 = Glql_graph.Generators.complete 3 in
  hom_bruteforce k3 g /. 6.0

(* Per-vertex triangle membership counts, via neighbourhood intersections. *)
let triangles_at g =
  let n = Graph.n_vertices g in
  Array.init n (fun v ->
      let nb = Graph.neighbors g v in
      let c = ref 0 in
      Array.iter
        (fun u ->
          Array.iter (fun w -> if u < w && Graph.has_edge g u w then incr c) nb)
        nb;
      float_of_int !c)

(* Rooted hom-count vector for arbitrary patterns: the tree DP when the
   pattern is a tree, otherwise one pinned backtracking count per vertex
   (each pin is independent, so pins run on the domain pool). *)
let rooted_hom_vector_any pattern ~root g =
  if Tree.is_tree pattern then hom_tree_rooted pattern root g
  else begin
    let n = Graph.n_vertices g in
    let out = Array.make n 0.0 in
    Pool.parallel_for ~n (fun v ->
        out.(v) <- hom_bruteforce ~compatible:(fun pv gv -> pv <> root || gv = v) pattern g);
    out
  end

(* Homomorphism profile of G over a pattern list — the "hom count
   embedding" view of slide 27/72.  One pure count per pattern, run on
   the domain pool; entry order follows the pattern list, so the result
   is identical for every pool size. *)
let profile ?(deadline = None) patterns g =
  Glql_util.Trace.with_span
    ~args:[ ("patterns", string_of_int (List.length patterns)) ]
    "hom.profile"
  @@ fun () ->
  (* Warm the CSR memo before fanning out so the per-pattern tree DPs
     share one flat view build instead of racing to create it. *)
  ignore (Graph.csr g);
  (* The per-pattern deadline check makes a request timeout bound the
     profile's wall time: the pool records the raised Deadline_exceeded
     and re-raises it in the caller after the remaining (cheap, also
     cancelled) patterns drain. *)
  Pool.parallel_map_array
    (fun p ->
      Glql_util.Clock.check deadline;
      hom p g)
    (Array.of_list patterns)

(* Are G and H indistinguishable by hom counts from all the patterns?
   Both profiles are counted in one parallel sweep over the patterns. *)
let equal_profiles patterns g h =
  let agree = Pool.parallel_map_array (fun p -> hom p g = hom p h) (Array.of_list patterns) in
  Array.for_all (fun b -> b) agree
