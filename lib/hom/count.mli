(** Homomorphism and subgraph counting (slide 27: hom(T, G) for trees
    characterises colour refinement; slide 72: hom counts as views).

    Counts are returned as floats: they grow fast, and downstream code
    (embedding features, table cells) consumes floats anyway. *)

module Graph = Glql_graph.Graph

(** DP table for a tree pattern rooted at [root]: entry [v] counts the
    homomorphisms of the whole tree that send the root to [v]. *)
val hom_tree_rooted :
  ?compatible:(int -> int -> bool) -> Graph.t -> int -> Graph.t -> float array

(** hom(T, G) for a tree pattern, by the rooted DP. *)
val hom_tree : ?compatible:(int -> int -> bool) -> Graph.t -> Graph.t -> float

(** Rooted hom-count vector with a chosen root (F-MPNN view features). *)
val rooted_hom_vector :
  ?compatible:(int -> int -> bool) -> Graph.t -> root:int -> Graph.t -> float array

(** Backtracking count for arbitrary patterns; [injective] counts injective
    homomorphisms instead. *)
val hom_bruteforce :
  ?compatible:(int -> int -> bool) -> ?injective:bool -> Graph.t -> Graph.t -> float

(** hom(P, G), using the tree DP when [P] is a tree. *)
val hom : ?compatible:(int -> int -> bool) -> Graph.t -> Graph.t -> float

(** |Aut(P)| (as a float). *)
val automorphism_count : Graph.t -> float

(** Number of subgraphs of [g] isomorphic to [pattern]. *)
val subgraph_count : Graph.t -> Graph.t -> float

(** Number of triangles in [g]. *)
val triangles : Graph.t -> float

(** Per-vertex triangle membership counts. *)
val triangles_at : Graph.t -> float array

(** Rooted hom-count vector for arbitrary patterns (tree DP when possible,
    pinned backtracking otherwise). *)
val rooted_hom_vector_any : Graph.t -> root:int -> Graph.t -> float array

(** Hom-count profile of [g] over a pattern list. [deadline]
    ({!Glql_util.Clock} monotonic deadline) is checked before each
    pattern's count; when past, the profile aborts by raising
    [Glql_util.Clock.Deadline_exceeded]. *)
val profile : ?deadline:int64 option -> Graph.t list -> Graph.t -> float array

(** Equal hom profiles on all given patterns? *)
val equal_profiles : Graph.t list -> Graph.t -> Graph.t -> bool
