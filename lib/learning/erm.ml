(* Empirical risk minimisation (slides 19-20): pick the best hypothesis
   from a GNN hypothesis class by full-batch gradient descent on a loss.

   Three trainers cover the three embedding kinds: graph classification,
   semi-supervised node classification and link prediction, plus a scalar
   graph regressor for the approximation experiment (E9).

   The per-graph trainers run each minibatch graph's forward/backward on
   its own domain via the pool: graph t accumulates into its own shadow
   of the model (shared weights, private gradients), and after the sweep
   the shadow gradients and losses are folded into the real parameters
   strictly in minibatch index order.  Gradients therefore see exactly
   the same sequence of float additions for every pool size, and
   training is bit-identical to the sequential run. *)

module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec
module Model = Glql_gnn.Model
module Loss = Glql_nn.Loss
module Optim = Glql_nn.Optim
module Mlp = Glql_nn.Mlp
module Param = Glql_nn.Param
module Pool = Glql_util.Pool
module Clock = Glql_util.Clock

type history = { losses : float list; train_metric : float; test_metric : float }

(* Per-graph gradient accumulation state for one trainer call: one shadow
   model (and its params, aligned with the real params) per minibatch
   slot, plus that slot's loss. *)
type grad_slots = {
  slot_models : Model.t array;
  slot_params : Param.t list array;
  slot_losses : float array;
}

let make_slots model k =
  let slot_models = Array.init k (fun _ -> Model.shadow model) in
  {
    slot_models;
    slot_params = Array.map Model.params slot_models;
    slot_losses = Array.make k 0.0;
  }

(* Fold the shadows into [params] in index order and return the summed
   loss; re-zeroes the shadow gradients for the next epoch. *)
let merge_slots slots params =
  let total = ref 0.0 in
  Array.iteri
    (fun t sparams ->
      total := !total +. slots.slot_losses.(t);
      List.iter2
        (fun (p : Param.t) (s : Param.t) ->
          Mat.add_inplace ~into:p.Param.grad s.Param.grad;
          Mat.fill s.Param.grad 0.0)
        params sparams)
    slots.slot_params;
  !total

(* --- graph classification ------------------------------------------------ *)

let graph_logits model g = Model.graph_embedding model g

let eval_graph_classifier model (ds : Dataset.graph_classification) indices =
  match indices with
  | [] -> 0.0
  | _ ->
      let idxs = Array.of_list indices in
      let correct =
        Pool.parallel_reduce ~n:(Array.length idxs) ~init:0
          ~map:(fun t ->
            let i = idxs.(t) in
            let logits = graph_logits model ds.Dataset.graphs.(i) in
            if Vec.argmax logits = ds.Dataset.gc_labels.(i) then 1 else 0)
          ~combine:( + )
      in
      float_of_int correct /. float_of_int (Array.length idxs)

let train_graph_classifier ?(epochs = 60) ?(lr = 0.01) model (ds : Dataset.graph_classification)
    ~train_indices ~test_indices =
  let opt = Optim.adam ~lr () in
  let params = Model.params model in
  let idxs = Array.of_list train_indices in
  let k = Array.length idxs in
  let slots = make_slots model k in
  let losses = ref [] in
  for _epoch = 1 to epochs do
    Pool.parallel_for ~n:k (fun t ->
        let i = idxs.(t) in
        let g = ds.Dataset.graphs.(i) in
        let sh = slots.slot_models.(t) in
        let logits, cache = Model.forward_graph_cached sh g in
        let loss, dlogits =
          Loss.softmax_cross_entropy ~logits:(Mat.of_rows [ logits ])
            ~labels:[| ds.Dataset.gc_labels.(i) |]
        in
        slots.slot_losses.(t) <- loss;
        Model.backward_graph sh g cache ~dout:(Mat.row dlogits 0));
    let total = merge_slots slots params in
    Optim.step opt params;
    losses := (total /. float_of_int (max 1 k)) :: !losses
  done;
  {
    losses = List.rev !losses;
    train_metric = eval_graph_classifier model ds train_indices;
    test_metric = eval_graph_classifier model ds test_indices;
  }

(* --- node classification -------------------------------------------------- *)

let masked_cross_entropy ~logits ~labels ~mask =
  let rows = Mat.rows logits in
  let grad = Mat.zeros rows (Mat.cols logits) in
  let loss = ref 0.0 in
  let count = ref 0 in
  for i = 0 to rows - 1 do
    if mask.(i) then incr count
  done;
  let inv_n = 1.0 /. float_of_int (max 1 !count) in
  for i = 0 to rows - 1 do
    if mask.(i) then begin
      let p = Vec.softmax (Mat.row logits i) in
      let y = labels.(i) in
      loss := !loss -. log (Float.max 1e-12 p.(y));
      for j = 0 to Array.length p - 1 do
        let ind = if j = y then 1.0 else 0.0 in
        Mat.set grad i j ((p.(j) -. ind) *. inv_n)
      done
    end
  done;
  (!loss *. inv_n, grad)

let node_accuracy logits labels mask ~value =
  let n = Mat.rows logits in
  let correct = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    if mask.(i) = value then begin
      incr total;
      if Vec.argmax (Mat.row logits i) = labels.(i) then incr correct
    end
  done;
  if !total = 0 then 0.0 else float_of_int !correct /. float_of_int !total

let train_node_classifier ?(epochs = 120) ?(lr = 0.02) model (ds : Dataset.node_classification) =
  let opt = Optim.adam ~lr () in
  let params = Model.params model in
  let losses = ref [] in
  let g = ds.Dataset.graph in
  for _epoch = 1 to epochs do
    let logits, cache = Model.forward_vertices_cached model g in
    let loss, dlogits =
      masked_cross_entropy ~logits ~labels:ds.Dataset.nc_labels ~mask:ds.Dataset.train_mask
    in
    Model.backward_vertices model g cache ~dout:dlogits;
    Optim.step opt params;
    losses := loss :: !losses
  done;
  let logits = Model.vertex_embeddings model g in
  {
    losses = List.rev !losses;
    train_metric = node_accuracy logits ds.Dataset.nc_labels ds.Dataset.train_mask ~value:true;
    test_metric = node_accuracy logits ds.Dataset.nc_labels ds.Dataset.train_mask ~value:false;
  }

(* --- link prediction ------------------------------------------------------ *)

(* A 2-vertex embedding (slide 9) assembled from a vertex embedding: score
   the pair (u, v) by an MLP on the pointwise product h_u * h_v. *)
let pair_logit head h u v =
  (Mlp.apply_vec head (Vec.mul (Mat.row h u) (Mat.row h v))).(0)

let link_accuracy head h (ds : Dataset.link_prediction) ~value =
  let correct = ref 0 and total = ref 0 in
  Array.iteri
    (fun i (u, v) ->
      if ds.Dataset.lp_train_mask.(i) = value then begin
        incr total;
        let p = pair_logit head h u v in
        let predicted = if p >= 0.0 then 1.0 else 0.0 in
        if predicted = ds.Dataset.lp_targets.(i) then incr correct
      end)
    ds.Dataset.pairs;
  if !total = 0 then 0.0 else float_of_int !correct /. float_of_int !total

let train_link_predictor ?(epochs = 150) ?(lr = 0.02) model head (ds : Dataset.link_prediction) =
  let opt = Optim.adam ~lr () in
  let params = Model.params model @ Mlp.params head in
  let losses = ref [] in
  let g = ds.Dataset.lp_graph in
  let n_train =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ds.Dataset.lp_train_mask
  in
  for _epoch = 1 to epochs do
    let h, cache = Model.forward_vertices_cached model g in
    let dh = Mat.zeros (Mat.rows h) (Mat.cols h) in
    let total = ref 0.0 in
    Array.iteri
      (fun i (u, v) ->
        if ds.Dataset.lp_train_mask.(i) then begin
          let input = Vec.mul (Mat.row h u) (Mat.row h v) in
          let out, hcache = Mlp.forward_cached head (Mat.of_rows [ input ]) in
          let loss, dlogit =
            Loss.binary_cross_entropy ~logits:out ~targets:[| ds.Dataset.lp_targets.(i) |]
          in
          total := !total +. loss;
          let scale = 1.0 /. float_of_int (max 1 n_train) in
          let dinput = Mlp.backward head hcache ~dout:(Mat.scale scale dlogit) in
          let di = Mat.row dinput 0 in
          (* d(h_u * h_v)/dh_u = h_v and vice versa *)
          for j = 0 to Vec.dim di - 1 do
            Mat.set dh u j (Mat.get dh u j +. (di.(j) *. Mat.get h v j));
            Mat.set dh v j (Mat.get dh v j +. (di.(j) *. Mat.get h u j))
          done
        end)
      ds.Dataset.pairs;
    Model.backward_vertices model g cache ~dout:dh;
    Optim.step opt params;
    losses := (!total /. float_of_int (max 1 n_train)) :: !losses
  done;
  let h = Model.vertex_embeddings model g in
  {
    losses = List.rev !losses;
    train_metric = link_accuracy head h ds ~value:true;
    test_metric = link_accuracy head h ds ~value:false;
  }

(* A binary classifier over fixed (e.g. GEL-computed) feature vectors: the
   "view embedding" pattern of slide 72 — a complex fixed embedding
   followed by a simple learnable head. *)
let train_feature_classifier ?(epochs = 200) ?(lr = 0.05) ?(deadline = None) head ~features
    ~targets ~mask =
  let opt = Optim.adam ~lr () in
  let params = Mlp.params head in
  let losses = ref [] in
  let n = Array.length features in
  let n_train = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
  for _epoch = 1 to epochs do
    (* Epoch counts reach 10k through the server's TRAIN: honour the
       per-request deadline at every epoch boundary like the kernels do,
       so a timed-out fit aborts instead of wedging the worker. *)
    Clock.check deadline;
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      if mask.(i) then begin
        let out, cache = Mlp.forward_cached head (Mat.of_rows [ features.(i) ]) in
        let loss, dlogit = Loss.binary_cross_entropy ~logits:out ~targets:[| targets.(i) |] in
        total := !total +. loss;
        ignore (Mlp.backward head cache ~dout:(Mat.scale (1.0 /. float_of_int (max 1 n_train)) dlogit))
      end
    done;
    Optim.step opt params;
    losses := (!total /. float_of_int (max 1 n_train)) :: !losses
  done;
  let accuracy ~value =
    let correct = ref 0 and total = ref 0 in
    for i = 0 to n - 1 do
      if mask.(i) = value then begin
        incr total;
        let p = (Mlp.apply_vec head features.(i)).(0) in
        let predicted = if p >= 0.0 then 1.0 else 0.0 in
        if predicted = targets.(i) then incr correct
      end
    done;
    if !total = 0 then 0.0 else float_of_int !correct /. float_of_int !total
  in
  {
    losses = List.rev !losses;
    train_metric = accuracy ~value:true;
    test_metric = accuracy ~value:false;
  }

(* A scalar regressor over fixed feature vectors — the regression twin of
   train_feature_classifier, used by the server's model-serving layer for
   graph-mode recipes (one feature row per graph). *)
let train_feature_regressor ?(epochs = 200) ?(lr = 0.05) ?(deadline = None) head ~features
    ~targets ~mask =
  let opt = Optim.adam ~lr () in
  let params = Mlp.params head in
  let losses = ref [] in
  let n = Array.length features in
  let n_train = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
  for _epoch = 1 to epochs do
    Clock.check deadline;
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      if mask.(i) then begin
        let out, cache = Mlp.forward_cached head (Mat.of_rows [ features.(i) ]) in
        let loss, dpred = Loss.mse ~pred:out ~target:(Mat.of_rows [ [| targets.(i) |] ]) in
        total := !total +. loss;
        ignore (Mlp.backward head cache ~dout:(Mat.scale (1.0 /. float_of_int (max 1 n_train)) dpred))
      end
    done;
    Optim.step opt params;
    losses := (!total /. float_of_int (max 1 n_train)) :: !losses
  done;
  let mse ~value =
    let total = ref 0.0 and count = ref 0 in
    for i = 0 to n - 1 do
      if mask.(i) = value then begin
        incr count;
        let d = (Mlp.apply_vec head features.(i)).(0) -. targets.(i) in
        total := !total +. (d *. d)
      end
    done;
    if !count = 0 then 0.0 else !total /. float_of_int !count
  in
  { losses = List.rev !losses; train_metric = mse ~value:true; test_metric = mse ~value:false }

(* --- graph regression (E9) ------------------------------------------------ *)

let regression_mse model (rg : Dataset.regression) indices =
  match indices with
  | [] -> 0.0
  | _ ->
      let idxs = Array.of_list indices in
      let total =
        Pool.parallel_reduce ~n:(Array.length idxs) ~init:0.0
          ~map:(fun t ->
            let i = idxs.(t) in
            let out = (Model.graph_embedding model rg.Dataset.rg_graphs.(i)).(0) in
            let d = out -. rg.Dataset.rg_targets.(i) in
            d *. d)
          ~combine:( +. )
      in
      total /. float_of_int (Array.length idxs)

let train_graph_regressor ?(epochs = 200) ?(lr = 0.005) model (rg : Dataset.regression)
    ~train_indices ~test_indices =
  let opt = Optim.adam ~lr () in
  let params = Model.params model in
  let idxs = Array.of_list train_indices in
  let k = Array.length idxs in
  let slots = make_slots model k in
  let inv_n = 1.0 /. float_of_int (max 1 k) in
  let losses = ref [] in
  for _epoch = 1 to epochs do
    Pool.parallel_for ~n:k (fun t ->
        let i = idxs.(t) in
        let g = rg.Dataset.rg_graphs.(i) in
        let sh = slots.slot_models.(t) in
        let out, cache = Model.forward_graph_cached sh g in
        let target = rg.Dataset.rg_targets.(i) in
        let loss, dout =
          Loss.mse ~pred:(Mat.of_rows [ out ]) ~target:(Mat.of_rows [ [| target |] ])
        in
        slots.slot_losses.(t) <- loss;
        Model.backward_graph sh g cache ~dout:(Vec.scale inv_n (Mat.row dout 0)));
    let total = merge_slots slots params in
    Optim.step opt params;
    losses := (total /. float_of_int (max 1 k)) :: !losses
  done;
  {
    losses = List.rev !losses;
    train_metric = regression_mse model rg train_indices;
    test_metric = regression_mse model rg test_indices;
  }

(* Split 0..n-1 deterministically into train/test index lists. *)
let split rng ~n ~train_fraction =
  let idx = Array.init n (fun i -> i) in
  Glql_util.Rng.shuffle rng idx;
  let cut = int_of_float (train_fraction *. float_of_int n) in
  ( Array.to_list (Array.sub idx 0 cut),
    Array.to_list (Array.sub idx cut (n - cut)) )
