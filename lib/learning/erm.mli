(** Empirical risk minimisation (slides 19-20) over GNN hypothesis
    classes: full-batch Adam on cross-entropy / MSE losses, one trainer
    per embedding kind. *)

module Mat = Glql_tensor.Mat
module Model = Glql_gnn.Model
module Mlp = Glql_nn.Mlp

type history = { losses : float list; train_metric : float; test_metric : float }

(** Graph classification: metric is accuracy. The model must have a
    readout and a logits head. *)
val train_graph_classifier :
  ?epochs:int ->
  ?lr:float ->
  Model.t ->
  Dataset.graph_classification ->
  train_indices:int list ->
  test_indices:int list ->
  history

(** Semi-supervised node classification on the train mask; metric is
    accuracy (train/test = mask true/false). *)
val train_node_classifier :
  ?epochs:int -> ?lr:float -> Model.t -> Dataset.node_classification -> history

(** Link prediction: vertex-embedding model (no head) plus a pair-scoring
    MLP on the pointwise product of endpoint embeddings; metric is
    accuracy at threshold 0. *)
val train_link_predictor :
  ?epochs:int -> ?lr:float -> Model.t -> Mlp.t -> Dataset.link_prediction -> history

(** Binary classifier on fixed feature vectors (the "view embedding"
    pattern of slide 72: complex fixed embedding + simple learnable head);
    metric is accuracy at threshold 0. [deadline] is checked once per
    epoch and raises {!Glql_util.Clock.Deadline_exceeded} — the server's
    per-request timeout cancels a long fit cooperatively. *)
val train_feature_classifier :
  ?epochs:int ->
  ?lr:float ->
  ?deadline:int64 option ->
  Mlp.t ->
  features:Glql_tensor.Vec.t array ->
  targets:float array ->
  mask:bool array ->
  history

(** Scalar regressor on fixed feature vectors — the regression twin of
    {!train_feature_classifier} (same per-epoch [deadline] check);
    metric is MSE. *)
val train_feature_regressor :
  ?epochs:int ->
  ?lr:float ->
  ?deadline:int64 option ->
  Mlp.t ->
  features:Glql_tensor.Vec.t array ->
  targets:float array ->
  mask:bool array ->
  history

(** Scalar graph regression; metric is MSE. *)
val train_graph_regressor :
  ?epochs:int ->
  ?lr:float ->
  Model.t ->
  Dataset.regression ->
  train_indices:int list ->
  test_indices:int list ->
  history

(** Mean squared error of a trained regressor on given indices. *)
val regression_mse : Model.t -> Dataset.regression -> int list -> float

(** Deterministic train/test index split. *)
val split : Glql_util.Rng.t -> n:int -> train_fraction:float -> int list * int list
