(* Multilayer perceptrons F(t) = sigma(W(t) F(t-1) + b(t)) (slide 53,
   footnote 15), in batch form: inputs are matrices with one example per
   row, layers compute X W + 1 b^T followed by a pointwise activation.
   Backpropagation is hand-written; gradients accumulate into the layer
   parameters. *)

module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec

type layer = { w : Param.t; b : Param.t; act : Activation.t }

type t = { layers : layer list }

(* [sizes] = [d0; d1; ...; dL]; hidden layers use [act], the final layer
   [out_act]. *)
let create rng ~sizes ~act ~out_act =
  let rec build i = function
    | [] | [ _ ] -> []
    | din :: (dout :: _ as rest) ->
        let a = if List.length rest = 1 then out_act else act in
        let w = Param.create ~name:(Printf.sprintf "mlp.w%d" i) (Mat.glorot rng din dout) in
        let b = Param.create ~name:(Printf.sprintf "mlp.b%d" i) (Mat.zeros 1 dout) in
        { w; b; act = a } :: build (i + 1) rest
  in
  { layers = build 0 sizes }

let params t = List.concat_map (fun l -> [ l.w; l.b ]) t.layers

let in_dim t =
  match t.layers with [] -> invalid_arg "Mlp.in_dim: empty" | l :: _ -> Mat.rows l.w.Param.data

let out_dim t =
  match List.rev t.layers with
  | [] -> invalid_arg "Mlp.out_dim: empty"
  | l :: _ -> Mat.cols l.w.Param.data

(* One layer forward: Z = X W + 1 b^T, Y = act(Z). *)
let layer_forward l x =
  let z = Mat.mul x l.w.Param.data in
  for i = 0 to Mat.rows z - 1 do
    for j = 0 to Mat.cols z - 1 do
      Mat.set z i j (Mat.get z i j +. Mat.get l.b.Param.data 0 j)
    done
  done;
  let y = Activation.apply_mat l.act z in
  (z, y)

type cache = { inputs : Mat.t list; preacts : Mat.t list }
(* [inputs] holds the input to each layer, in layer order; [preacts] the
   corresponding pre-activations. *)

let forward t x =
  List.fold_left (fun acc l -> snd (layer_forward l acc)) x t.layers

let forward_cached t x =
  let rec go x layers inputs preacts =
    match layers with
    | [] -> (x, { inputs = List.rev inputs; preacts = List.rev preacts })
    | l :: rest ->
        let z, y = layer_forward l x in
        go y rest (x :: inputs) (z :: preacts)
  in
  go x t.layers [] []

(* Backward pass: accumulates dL/dW, dL/db into the params and returns
   dL/dX for the network input.  The matrix products are fused
   (Mat.add_mul_at_b / Mat.mul_abt), so no transpose or product
   intermediate is materialised, and below the top layer the incoming
   gradient buffer — owned by this loop — is reused in place as the dZ
   scratch. *)
let backward t cache ~dout =
  let layers = Array.of_list t.layers in
  let inputs = Array.of_list cache.inputs in
  let preacts = Array.of_list cache.preacts in
  let d = ref dout in
  for li = Array.length layers - 1 downto 0 do
    let l = layers.(li) in
    let z = preacts.(li) in
    let x = inputs.(li) in
    (* dZ = dY (.) act'(Z); never clobber the caller's dout. *)
    let dz =
      if li = Array.length layers - 1 then
        Mat.map2 (fun dy zv -> dy *. Activation.derivative l.act zv) !d z
      else begin
        Mat.map2_into ~into:!d (fun dy zv -> dy *. Activation.derivative l.act zv) !d z;
        !d
      end
    in
    (* dW += X^T dZ ; db += column sums of dZ ; dX = dZ W^T *)
    Mat.add_mul_at_b ~into:l.w.Param.grad x dz;
    for j = 0 to Mat.cols dz - 1 do
      let s = ref 0.0 in
      for i = 0 to Mat.rows dz - 1 do
        s := !s +. Mat.get dz i j
      done;
      Mat.set l.b.Param.grad 0 j (Mat.get l.b.Param.grad 0 j +. !s)
    done;
    d := Mat.mul_abt dz l.w.Param.data
  done;
  !d

(* Shadow network for race-free parallel backward passes: weights are
   shared, gradient buffers are private (see Param.shadow). *)
let shadow t =
  { layers = List.map (fun l -> { l with w = Param.shadow l.w; b = Param.shadow l.b }) t.layers }

(* Convenience single-vector application. *)
let apply_vec t v = Mat.row (forward t (Mat.of_rows [ v ])) 0

(* First-output-column scores for a single-layer net, straight off the
   row arrays: no batch matrix, no full output materialisation. Bit-for-
   bit equal to reading column 0 of [forward] — the accumulation walks k
   in the same order as [Mat.mul] including its zero-input skip, then
   adds the bias and applies the activation pointwise exactly as
   [layer_forward] does. Returns [None] for deeper nets, which need the
   real layer walk. *)
let scores t rows =
  match t.layers with
  | [ l ] ->
      let w = l.w.Param.data in
      let wd = Mat.data w in
      let dout = Mat.cols w in
      let b0 = Mat.get l.b.Param.data 0 0 in
      Some
        (Array.map
           (fun row ->
             let acc = ref 0.0 in
             Array.iteri (fun k v -> if v <> 0.0 then acc := !acc +. (v *. wd.(k * dout))) row;
             Activation.apply l.act (!acc +. b0))
           rows)
  | _ -> None
