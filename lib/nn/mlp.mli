(** Multilayer perceptrons (slide 53, footnote 15) in batch form: one
    example per matrix row, hand-written backpropagation. *)

module Mat = Glql_tensor.Mat
module Vec = Glql_tensor.Vec

type t

type cache

(** [create rng ~sizes ~act ~out_act] with [sizes = [d0; ...; dL]]; hidden
    layers use [act], the last layer [out_act]. *)
val create :
  Glql_util.Rng.t -> sizes:int list -> act:Activation.t -> out_act:Activation.t -> t

val params : t -> Param.t list
val in_dim : t -> int
val out_dim : t -> int

val forward : t -> Mat.t -> Mat.t

(** Forward keeping the caches needed by [backward]. *)
val forward_cached : t -> Mat.t -> Mat.t * cache

(** Accumulate parameter gradients given dL/d(output); returns dL/d(input). *)
val backward : t -> cache -> dout:Mat.t -> Mat.t

(** Apply to a single row vector. *)
val apply_vec : t -> Vec.t -> Vec.t

(** First-output-column scores straight off the row arrays, for
    single-layer nets only ([None] otherwise). Bit-identical to reading
    column 0 of [forward] on the same rows, without materialising the
    batch matrix or the full output. *)
val scores : t -> float array array -> float array option

(** Shadow network sharing weights but owning private gradient buffers,
    for race-free parallel backward passes (see {!Param.shadow}). *)
val shadow : t -> t
