(* A learnable parameter: a matrix (vectors are 1 x d) with its gradient
   accumulator and the Adam moment buffers. *)

module Mat = Glql_tensor.Mat

type t = {
  name : string;
  data : Mat.t;
  grad : Mat.t;
  moment1 : Mat.t;
  moment2 : Mat.t;
}

let create ~name data =
  let r = Mat.rows data and c = Mat.cols data in
  { name; data; grad = Mat.zeros r c; moment1 = Mat.zeros r c; moment2 = Mat.zeros r c }

let zero_grad p = Mat.fill p.grad 0.0

let n_elements p = Mat.rows p.data * Mat.cols p.data

let grad_norm p =
  let acc = ref 0.0 in
  for i = 0 to Mat.rows p.grad - 1 do
    for j = 0 to Mat.cols p.grad - 1 do
      let g = Mat.get p.grad i j in
      acc := !acc +. (g *. g)
    done
  done;
  sqrt !acc

(* A shadow of [p]: shares the (read-only during forward/backward) data
   matrix but owns a private zeroed gradient buffer, so concurrent
   backward passes on different domains never race.  The moment buffers
   are shared too — only the optimiser touches them, and it only ever
   runs on the original parameters. *)
let shadow p = { p with grad = Mat.zeros (Mat.rows p.grad) (Mat.cols p.grad) }
