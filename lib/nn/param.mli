(** A learnable parameter matrix with gradient and Adam moment buffers.
    All buffers are mutated in place by layers and optimizers. *)

module Mat = Glql_tensor.Mat

type t = {
  name : string;
  data : Mat.t;
  grad : Mat.t;
  moment1 : Mat.t;
  moment2 : Mat.t;
}

val create : name:string -> Mat.t -> t
val zero_grad : t -> unit
val n_elements : t -> int
val grad_norm : t -> float

(** A shadow parameter sharing [data] (read-only during forward/backward)
    but owning a private zeroed [grad], for race-free gradient
    accumulation on worker domains. *)
val shadow : t -> t
