(* Plan and colouring caches. Misses compute under the cache lock: plan
   compilation is microseconds, colourings are bounded by the registered
   graphs, and computing inside the lock means one compute per key even
   under concurrent identical requests — which also makes cache-hit
   accounting deterministic for the end-to-end tests. *)

module Expr = Glql_gel.Expr
module Parser = Glql_gel.Parser
module Optimize = Glql_gel.Optimize
module Normal_form = Glql_gel.Normal_form
module Graph = Glql_graph.Graph
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module Lru = Glql_util.Lru
module Trace = Glql_util.Trace

type plan = {
  key : string;
  src : string;
  expr : Expr.t;
  layered : Normal_form.t option;
}

(* A superseded-generation colouring kept briefly as the seed for
   incremental recolouring after a MUTATE: the pre-mutation result plus
   the accumulated touched-vertex frontier. Seeds live in the colouring
   LRU under "crseed:<gen>:<name>" keys — counted against the byte
   budget, inserted cold so they are evicted before any live entry, and
   invisible to snapshot export (see [parse_coloring_key]). *)
type seed = {
  seed_base : Cr.result;
  seed_touched_adj : int list;
  seed_touched_lab : int list;
}

type coloring = C_cr of Cr.result | C_kwl of Kwl.result | C_seed of seed

(* An assembled feature matrix, cached whole so a warm PREDICT (or a
   repeated FEATURIZE/TRAIN on an unchanged graph) skips column
   materialisation entirely. The record mirrors what Featurize.build
   produces, minus its per-build hit counters (Cache compiles before
   Featurize, so the type lives here). Keys embed the registry
   generation like colourings do: a MUTATE or LOAD that bumps the
   generation makes the cached matrix unreachable, and [note_mutation]
   reclaims the superseded entries eagerly. Feature matrices are never
   snapshotted — they are pure derived state, cheap to rebuild relative
   to their footprint. *)
type fm = {
  fm_cols : (string * int) list;
  fm_width : int;
  fm_rows : float array array;
  fm_schema : string;
}

(* (graph name, registry generation, mode, canonical recipe). *)
type feature_key = string * int * string * string

type t = {
  plans : (string, plan) Lru.t;
  colorings : (string, coloring) Lru.t;
  features : (feature_key, fm) Lru.t;
  mutex : Mutex.t;
  mutable incremental_recolors : int;
  mutable incremental_fallbacks : int;
}

let default_feature_capacity = 1024

let create ?(plan_bytes = 0) ?(coloring_bytes = 0) ?(feature_bytes = 0) ~plan_capacity
    ~coloring_capacity () =
  {
    plans = Lru.create ~max_bytes:plan_bytes ~capacity:plan_capacity ();
    colorings = Lru.create ~max_bytes:coloring_bytes ~capacity:coloring_capacity ();
    features = Lru.create ~max_bytes:feature_bytes ~capacity:default_feature_capacity ();
    mutex = Mutex.create ();
    incremental_recolors = 0;
    incremental_fallbacks = 0;
  }

(* Size estimates for the byte budgets. These are deliberately coarse —
   upper-bound-ish heap footprints, not exact word counts — because the
   budgets exist to keep eviction proportional to memory, not to meter
   allocations. Plans are dominated by their strings (the expression tree
   is a small multiple of the source); colourings by their int arrays
   (8 bytes a word, plus per-array overhead). *)

let plan_cost (p : plan) = 256 + String.length p.key + (16 * String.length p.src)

let int_array_cost a = 64 + (8 * Array.length a)

let rec coloring_cost = function
  | C_cr r ->
      List.fold_left
        (fun acc round -> List.fold_left (fun acc a -> acc + int_array_cost a) acc round)
        256 (Cr.history r)
  | C_kwl r -> List.fold_left (fun acc a -> acc + int_array_cost a) 256 (Kwl.stable_colors r)
  | C_seed s ->
      coloring_cost (C_cr s.seed_base)
      + (8 * List.length s.seed_touched_adj)
      + (8 * List.length s.seed_touched_lab)

(* ~8 bytes a cell plus per-row array overhead; the strings and column
   list are noise next to the rows but counted for honesty. *)
let feature_cost (m : fm) =
  Array.fold_left
    (fun acc row -> acc + 64 + (8 * Array.length row))
    (256 + String.length m.fm_schema
    + List.fold_left (fun acc (n, _) -> acc + 32 + String.length n) 0 m.fm_cols)
    m.fm_rows

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let compile key src e =
  Trace.with_span "compile" @@ fun () ->
  let expr = Optimize.optimize e in
  let layered =
    match Expr.free_vars expr with
    | [ _ ] -> ( try Some (Normal_form.of_vertex_expr expr) with _ -> None)
    | _ -> None
  in
  { key; src; expr; layered }

let plan t src =
  match Parser.parse src with
  | exception Parser.Parse_error msg -> Error ("parse error: " ^ msg)
  | exception Expr.Type_error msg -> Error ("type error: " ^ msg)
  | e -> (
      let key = Normal_form.cache_key e in
      Trace.with_span "cache_lookup" @@ fun () ->
      with_lock t (fun () ->
          match Lru.get t.plans key with
          | Some p ->
              Trace.annotate "result" "hit";
              Ok (p, `Hit)
          | None -> (
              Trace.annotate "result" "miss";
              match compile key src e with
              | exception Expr.Type_error msg -> Error ("type error: " ^ msg)
              | p ->
                  Lru.put ~bytes:(plan_cost p) t.plans key p;
                  Ok (p, `Miss))))

(* A compute that raises (notably Clock.Deadline_exceeded from the
   cooperative kernel checks) propagates out of with_lock's Fun.protect:
   the mutex is released and no partial entry is cached. *)
let coloring_entry t key compute =
  with_lock t (fun () ->
      match Lru.get t.colorings key with
      | Some c -> (c, `Hit)
      | None ->
          let c = compute () in
          Lru.put ~bytes:(coloring_cost c) t.colorings key c;
          (c, `Miss))

(* Colouring keys embed the registry generation: a LOAD that replaces a
   name bumps the generation, so entries computed on the old graph are
   unreachable (and age out of the LRU) rather than served stale. *)

let seed_key gen graph_name = Printf.sprintf "crseed:%d:%s" gen graph_name

let cr t ~graph_name ~gen ?(deadline = None) g =
  let key = Printf.sprintf "cr:%d:%s" gen graph_name in
  with_lock t (fun () ->
      match Lru.get t.colorings key with
      | Some (C_cr r) -> (r, `Hit)
      | Some _ -> assert false (* "cr:" keys only ever hold C_cr *)
      | None ->
          let skey = seed_key gen graph_name in
          let result =
            match Lru.peek t.colorings skey with
            | Some (C_seed s) ->
                (* A MUTATE left the superseded colouring as a seed:
                   recolour the frontier instead of refining cold. The
                   seed is consumed either way (on fallback it cannot
                   help this generation any more either). *)
                let r, incremental =
                  Cr.run_incremental ~deadline ~base:s.seed_base
                    ~touched_adj:s.seed_touched_adj ~touched_lab:s.seed_touched_lab g
                in
                Lru.remove t.colorings skey;
                if incremental then t.incremental_recolors <- t.incremental_recolors + 1
                else t.incremental_fallbacks <- t.incremental_fallbacks + 1;
                r
            | _ -> Cr.run ~deadline g
          in
          Lru.put ~bytes:(coloring_cost (C_cr result)) t.colorings key (C_cr result);
          (result, `Miss))

let kwl t ~graph_name ~gen ~k ?(deadline = None) g =
  match
    coloring_entry t
      (Printf.sprintf "kwl:%d:%d:%s" k gen graph_name)
      (fun () -> C_kwl (Kwl.run_joint ~deadline ~k ~variant:Kwl.Folklore [ g ]))
  with
  | C_kwl r, hit -> (r, hit)
  | (C_cr _ | C_seed _), _ -> assert false

(* Feature-matrix lookups are split find/store rather than
   compute-under-lock: a miss rebuilds the matrix through Featurize.build,
   which re-enters this cache for its column colourings and plans — the
   mutex is not reentrant, and column work is too expensive to serialise
   anyway. Lru.get still counts the hit/miss deterministically. *)

let feature_find t ~graph_name ~gen ~mode ~recipe =
  with_lock t (fun () -> Lru.get t.features (graph_name, gen, mode, recipe))

let feature_store t ~graph_name ~gen ~mode ~recipe m =
  with_lock t (fun () ->
      Lru.put ~bytes:(feature_cost m) t.features (graph_name, gen, mode, recipe) m)

(* --- snapshot export / seeding ------------------------------------------ *)

(* Exports read the LRU without touching recency or hit counters, so a
   SAVE is not observable in STATS beyond its own request. *)

let export_plans t =
  with_lock t (fun () ->
      List.map (fun (key, p) -> (key, p.src)) (Lru.bindings_mru_first t.plans))

type exported_coloring =
  | E_cr of { graph_name : string; gen : int; result : Cr.result }
  | E_kwl of { graph_name : string; gen : int; k : int; result : Kwl.result }

(* Colouring keys are "cr:<gen>:<name>" / "kwl:<k>:<gen>:<name>"; the
   name comes last so it may itself contain colons. *)
let parse_coloring_key key =
  match String.index_opt key ':' with
  | None -> None
  | Some i -> (
      let kind = String.sub key 0 i in
      let rest = String.sub key (i + 1) (String.length key - i - 1) in
      let split_int s =
        match String.index_opt s ':' with
        | None -> None
        | Some j ->
            Option.map
              (fun n -> (n, String.sub s (j + 1) (String.length s - j - 1)))
              (int_of_string_opt (String.sub s 0 j))
      in
      match kind with
      | "cr" -> Option.map (fun (gen, name) -> `Cr (gen, name)) (split_int rest)
      | "kwl" ->
          Option.bind (split_int rest) (fun (k, rest) ->
              Option.map (fun (gen, name) -> `Kwl (k, gen, name)) (split_int rest))
      | _ -> None)

(* --- mutation turnover ---------------------------------------------- *)

let merge_touched a b = List.sort_uniq compare (List.rev_append a b)

(* Generation turnover after a MUTATE: the superseded generation's CR
   entry (or an existing unconsumed seed — mutations can stack before
   anyone recolours) becomes the incremental seed for the new
   generation, re-inserted cold so it counts against the byte budget but
   is evicted before any live entry. Stale entries of the old generation
   are unreachable by key, so their bytes are reclaimed eagerly rather
   than left to age out. *)
let note_mutation t ~graph_name ~old_gen ~gen ~touched_adj ~touched_lab =
  with_lock t (fun () ->
      let old_cr = Printf.sprintf "cr:%d:%s" old_gen graph_name in
      let old_seed = seed_key old_gen graph_name in
      let seed =
        match Lru.peek t.colorings old_cr with
        | Some (C_cr r) ->
            Some
              {
                seed_base = r;
                seed_touched_adj = List.sort_uniq compare touched_adj;
                seed_touched_lab = List.sort_uniq compare touched_lab;
              }
        | _ -> (
            match Lru.peek t.colorings old_seed with
            | Some (C_seed s) ->
                Some
                  {
                    s with
                    seed_touched_adj = merge_touched s.seed_touched_adj touched_adj;
                    seed_touched_lab = merge_touched s.seed_touched_lab touched_lab;
                  }
            | _ -> None)
      in
      Lru.remove t.colorings old_cr;
      Lru.remove t.colorings old_seed;
      List.iter
        (fun key ->
          match parse_coloring_key key with
          | Some (`Kwl (_, g, n)) when g = old_gen && n = graph_name ->
              Lru.remove t.colorings key
          | _ -> ())
        (Lru.keys_mru_first t.colorings);
      List.iter
        (fun ((name, g, _, _) as key) ->
          if name = graph_name && g = old_gen then Lru.remove t.features key)
        (Lru.keys_mru_first t.features);
      match seed with
      | None -> ()
      | Some s ->
          let c = C_seed s in
          Lru.put_cold ~bytes:(coloring_cost c) t.colorings (seed_key gen graph_name) c)

let export_colorings t =
  with_lock t (fun () ->
      List.filter_map
        (fun (key, c) ->
          match (parse_coloring_key key, c) with
          | Some (`Cr (gen, graph_name)), C_cr result -> Some (E_cr { graph_name; gen; result })
          | Some (`Kwl (k, gen, graph_name)), C_kwl result ->
              Some (E_kwl { graph_name; gen; k; result })
          | _ -> None)
        (Lru.bindings_mru_first t.colorings))

(* Seeding is restore-side: insert without bumping hit/miss counters, and
   never clobber an entry the running server already computed. *)

let seed_plan t ~src =
  match Parser.parse src with
  | exception Parser.Parse_error msg -> Error ("parse error: " ^ msg)
  | exception Expr.Type_error msg -> Error ("type error: " ^ msg)
  | e -> (
      let key = Normal_form.cache_key e in
      match compile key src e with
      | exception Expr.Type_error msg -> Error ("type error: " ^ msg)
      | p ->
          with_lock t (fun () ->
              if not (Lru.mem t.plans key) then Lru.put ~bytes:(plan_cost p) t.plans key p);
          Ok key)

let seed_coloring t key c =
  with_lock t (fun () ->
      if not (Lru.mem t.colorings key) then Lru.put ~bytes:(coloring_cost c) t.colorings key c)

let seed_cr t ~graph_name ~gen result =
  seed_coloring t (Printf.sprintf "cr:%d:%s" gen graph_name) (C_cr result)

let seed_kwl t ~graph_name ~gen ~k result =
  seed_coloring t (Printf.sprintf "kwl:%d:%d:%s" k gen graph_name) (C_kwl result)

let stats t =
  with_lock t (fun () ->
      let seed_entries, seed_bytes =
        List.fold_left
          (fun (n, b) (_, c) ->
            match c with C_seed _ -> (n + 1, b + coloring_cost c) | _ -> (n, b))
          (0, 0)
          (Lru.bindings_mru_first t.colorings)
      in
      [
        ("plan_entries", Lru.length t.plans);
        ("plan_capacity", Lru.capacity t.plans);
        ("plan_hits", Lru.hits t.plans);
        ("plan_misses", Lru.misses t.plans);
        ("plan_evictions", Lru.evictions t.plans);
        ("plan_bytes", Lru.bytes_used t.plans);
        ("plan_byte_budget", Lru.max_bytes t.plans);
        ("coloring_entries", Lru.length t.colorings);
        ("coloring_capacity", Lru.capacity t.colorings);
        ("coloring_hits", Lru.hits t.colorings);
        ("coloring_misses", Lru.misses t.colorings);
        ("coloring_evictions", Lru.evictions t.colorings);
        ("coloring_bytes", Lru.bytes_used t.colorings);
        ("coloring_byte_budget", Lru.max_bytes t.colorings);
        ("feature_entries", Lru.length t.features);
        ("feature_capacity", Lru.capacity t.features);
        ("feature_hits", Lru.hits t.features);
        ("feature_misses", Lru.misses t.features);
        ("feature_evictions", Lru.evictions t.features);
        ("feature_bytes", Lru.bytes_used t.features);
        ("feature_byte_budget", Lru.max_bytes t.features);
        ("seed_entries", seed_entries);
        ("seed_bytes", seed_bytes);
        ("incremental_recolors", t.incremental_recolors);
        ("incremental_fallbacks", t.incremental_fallbacks);
      ])

let clear t =
  with_lock t (fun () ->
      Lru.clear t.plans;
      Lru.clear t.colorings;
      Lru.clear t.features)
