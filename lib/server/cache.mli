(** The server's two operator caches.

    {b Compiled-plan cache}: LRU from {!Glql_gel.Normal_form.cache_key}
    of the parsed query — so alpha-equivalent / reordered sources share
    one entry — to a compiled plan (optimised expression plus, for
    single-variable MPNN-sum queries, the layered normal form used by the
    fast evaluator).

    {b Colouring cache}: LRU from (graph name, registry generation) to
    stable colour-refinement / k-WL results, reused across requests and
    across round counts (a stable run answers every smaller-round request
    from its history). Keying by generation means a LOAD that replaces a
    name never has its colourings answered from the old graph's entries.

    All entry points are thread-safe; lookups that miss compute the value
    while holding the cache lock, so concurrent requests for the same key
    compute it once and the second request is an observable hit. *)

module Expr = Glql_gel.Expr
module Normal_form = Glql_gel.Normal_form
module Graph = Glql_graph.Graph
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl

type plan = {
  key : string;  (** canonical cache key of the source expression *)
  src : string;  (** the GEL source the plan was first compiled from *)
  expr : Expr.t;  (** optimised expression (constant-folded, shared) *)
  layered : Normal_form.t option;
      (** layered fast path when the query is single-variable MPNN-sum *)
}

(** An assembled feature matrix, cached whole so a warm PREDICT (or a
    repeated FEATURIZE / TRAIN on an unchanged graph) skips column
    materialisation entirely. Mirrors what {!Featurize.build} assembles
    (the type lives here because Cache compiles before Featurize).
    Feature matrices are never snapshotted — they are derived state. *)
type fm = {
  fm_cols : (string * int) list;  (** (column name, width) in recipe order *)
  fm_width : int;  (** total row width *)
  fm_rows : float array array;  (** one row per vertex (or one summary row) *)
  fm_schema : string;  (** canonical schema string of the matrix *)
}

type t

(** [plan_bytes] / [coloring_bytes] / [feature_bytes] add byte budgets on
    top of the entry capacities ([0] = none): entries carry coarse
    heap-size estimates and the LRU evicts by memory once a budget is
    exceeded. *)
val create :
  ?plan_bytes:int ->
  ?coloring_bytes:int ->
  ?feature_bytes:int ->
  plan_capacity:int ->
  coloring_capacity:int ->
  unit ->
  t

(** Parse, key, and compile (or fetch) the plan for a GEL source string.
    [`Hit] means the plan cache already held the canonical key. *)
val plan : t -> string -> (plan * [ `Hit | `Miss ], string) result

(** Stable colour refinement of the named graph, cached per
    (name, registry generation) — see {!Registry.find_entry}.
    [deadline] is threaded into the kernel on a miss; a cancelled
    compute raises [Glql_util.Clock.Deadline_exceeded] out of the
    lookup with the lock released and nothing cached.

    A miss first looks for an incremental seed left by {!note_mutation}
    for this generation: if one is present the colouring is rebuilt by
    frontier recolouring from the superseded result
    ({!Cr.run_incremental}) instead of cold refinement, the seed is
    consumed, and the lookup still reports [`Miss] (reply bytes are
    independent of how the colouring was computed). *)
val cr :
  t -> graph_name:string -> gen:int -> ?deadline:int64 option -> Graph.t ->
  Cr.result * [ `Hit | `Miss ]

(** Stable [k]-WL (folklore) of the named graph, cached per
    (name, generation, k). Deadline semantics as in {!cr}. *)
val kwl :
  t -> graph_name:string -> gen:int -> k:int -> ?deadline:int64 option -> Graph.t ->
  Kwl.result * [ `Hit | `Miss ]

(** Record a generation turnover after a successful MUTATE: the
    superseded generation's cached colouring (or its not-yet-consumed
    seed — mutations can stack) becomes the incremental-recolouring seed
    for [gen], stored cold under ["crseed:<gen>:<name>"] so it counts
    against the colouring byte budget but is evicted before any live
    entry. Stale entries keyed to [old_gen] are removed eagerly.
    [touched_adj] / [touched_lab] are the frontier vertices from
    {!Registry.mutation_outcome}. *)
val note_mutation :
  t ->
  graph_name:string ->
  old_gen:int ->
  gen:int ->
  touched_adj:int list ->
  touched_lab:int list ->
  unit

(** {2 Feature-matrix cache}

    Keyed on (graph name, registry generation, mode, canonical recipe).
    Lookups are split find/store rather than compute-under-lock: a miss
    rebuilds through {!Featurize.build}, which re-enters this cache for
    its column colourings and plans. A [feature_find] miss still counts
    deterministically in the [feature_misses] stat. {!note_mutation}
    eagerly removes the superseded generation's matrices; a LOAD's
    generation bump makes old entries unreachable so they age out. *)

val feature_find : t -> graph_name:string -> gen:int -> mode:string -> recipe:string -> fm option

val feature_store : t -> graph_name:string -> gen:int -> mode:string -> recipe:string -> fm -> unit

(** {2 Snapshot export / seeding}

    Exports read without touching LRU recency or hit counters; seeds
    insert without counting and never replace an entry the running
    server already holds. Used by {!Persist}. *)

(** Cached plans as (canonical key, source), most-recently used first. *)
val export_plans : t -> (string * string) list

type exported_coloring =
  | E_cr of { graph_name : string; gen : int; result : Cr.result }
  | E_kwl of { graph_name : string; gen : int; k : int; result : Kwl.result }

val export_colorings : t -> exported_coloring list

(** Parse and compile [src], seeding the plan cache under its canonical
    key (kept if already present). Returns the key. *)
val seed_plan : t -> src:string -> (string, string) result

val seed_cr : t -> graph_name:string -> gen:int -> Cr.result -> unit

val seed_kwl : t -> graph_name:string -> gen:int -> k:int -> Kwl.result -> unit

(** Counter snapshot: plan/coloring/feature hits, misses, evictions,
    sizes, byte gauges ([*_bytes] used vs [*_byte_budget]), the live
    incremental seeds ([seed_entries] / [seed_bytes], included in the
    coloring gauges), and how mutated graphs were recoloured
    ([incremental_recolors] vs [incremental_fallbacks]). *)
val stats : t -> (string * int) list

(** Empty both caches (counters survive); used by the cold-cache bench. *)
val clear : t -> unit
