(* Feature-recipe evaluator (protocol v6). A recipe is a ';'-separated
   list of column specs, each materializing a block of float columns for
   every row of the matrix — one row per vertex (Fm_vertex) or one
   summary row for the whole graph (Fm_graph). Columns are evaluated
   through the server's Cache, so WL/k-WL colorings and compiled GEL
   plans are shared with QUERY/WL/KWL traffic and across FEATURIZE /
   TRAIN requests in the same batch. *)

module P = Protocol
module Graph = Glql_graph.Graph
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module Tree = Glql_hom.Tree
module Count = Glql_hom.Count
module Expr = Glql_gel.Expr
module Clock = Glql_util.Clock

type column =
  | Col_label
  | Col_deg
  | Col_wl of int option  (* refinement round; None = stable *)
  | Col_kwl of int  (* k, graph mode only *)
  | Col_hom of int  (* all free trees up to this many vertices *)
  | Col_gel of string  (* GEL source; 1 free var (vertex) / closed (graph) *)

(* Graph-mode WL / k-WL histograms are a fixed-width summary (sorted
   class sizes, zero-padded) so the schema is stable across graphs of a
   training corpus even when their class counts differ. *)
let hist_width = 32
let max_columns = 64
let max_hom_size = 8

let column_name = function
  | Col_label -> "label"
  | Col_deg -> "deg"
  | Col_wl None -> "wl@stable"
  | Col_wl (Some r) -> Printf.sprintf "wl@%d" r
  | Col_kwl k -> Printf.sprintf "kwl%d" k
  | Col_hom s -> Printf.sprintf "hom%d" s
  | Col_gel src -> "gel:" ^ src

let parse_column spec =
  let starts p = String.length spec >= String.length p && String.sub spec 0 (String.length p) = p in
  let after p = String.sub spec (String.length p) (String.length spec - String.length p) in
  if spec = "label" then Ok Col_label
  else if spec = "deg" then Ok Col_deg
  else if spec = "wl" then Ok (Col_wl None)
  else if starts "wl@" then
    match int_of_string_opt (after "wl@") with
    | Some r when r >= 0 -> Ok (Col_wl (Some r))
    | _ -> Error (Printf.sprintf "wl@: expected a non-negative round, got %S" spec)
  else if starts "kwl" then
    match int_of_string_opt (after "kwl") with
    | Some k when k >= 2 && k <= 3 -> Ok (Col_kwl k)
    | _ -> Error (Printf.sprintf "kwl: k must be 2 or 3, got %S" spec)
  else if starts "hom" then
    match int_of_string_opt (after "hom") with
    | Some s when s >= 1 && s <= max_hom_size ->
        Ok (Col_hom s)
    | _ -> Error (Printf.sprintf "hom: size must be in 1..%d, got %S" max_hom_size spec)
  else if starts "gel:" then
    let src = after "gel:" in
    if String.trim src = "" then Error "gel: empty expression" else Ok (Col_gel src)
  else Error (Printf.sprintf "unknown column %S" spec)

let parse_recipe recipe =
  let specs =
    String.split_on_char ';' recipe |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  if specs = [] then Error "empty recipe"
  else if List.length specs > max_columns then
    Error (Printf.sprintf "recipe has more than %d columns" max_columns)
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> Result.bind (parse_column s) (fun c -> go (c :: acc) rest)
    in
    go [] specs

(* Does the recipe pull a (k-)WL coloring? Used by the server's batch
   planner to coalesce colorings across a pipelined request batch. *)
let wants_wl cols = List.exists (function Col_wl _ -> true | _ -> false) cols
let wants_kwl cols = List.filter_map (function Col_kwl k -> Some k | _ -> None) cols

type built = {
  b_mode : P.feat_mode;
  b_cols : (string * int) list;  (* column name, width *)
  b_width : int;
  b_rows : float array array;
  b_schema : string;  (* mode + per-column widths, the model contract *)
  b_cache_hits : int;
  b_cache_misses : int;
}

let schema_of_widths mode cols =
  P.feat_mode_name mode ^ "|"
  ^ String.concat ";" (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) cols)

let schema_hash schema = Digest.to_hex (Digest.string schema)

(* Stable digest of the matrix contents: row-major f64 bits. *)
let row_digest rows =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun row -> Array.iter (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x)) row)
    rows;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let sorted_class_histogram colors =
  let max_c = Array.fold_left max (-1) colors in
  let counts = Array.make (max_c + 1) 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) colors;
  Array.sort (fun a b -> compare b a) counts;
  let hist =
    Array.init hist_width (fun i -> if i < Array.length counts then float_of_int counts.(i) else 0.0)
  in
  (* More classes than buckets: fold the tail's mass into the final
     bucket so the row conserves total vertex count at fixed width,
     instead of silently dropping every class past hist_width. *)
  for i = hist_width to Array.length counts - 1 do
    hist.(hist_width - 1) <- hist.(hist_width - 1) +. float_of_int counts.(i)
  done;
  hist

(* Build one column block: [Ok (width, rows)] where [rows] has one entry
   per matrix row. Errors carry an (ERR_* code, message) pair.

   [check_cells width] is called the moment a column's width is known
   and BEFORE any row of the block is materialized: a vertex-mode wl
   one-hot is as wide as the stable class count — approaching n on a
   colour-diverse graph — so the cell budget must reject the block
   before the O(n·width) allocation it polices, not after. *)
let build_column ~cache ~graph_name ~gen ~deadline ~check_cells mode g col =
  let hits = ref 0 and misses = ref 0 in
  let note = function `Hit -> incr hits | `Miss -> incr misses in
  let n = Graph.n_vertices g in
  let bad fmt = Printf.ksprintf (fun m -> Error ("ERR_BAD_RECIPE", m)) fmt in
  let ( let* ) = Result.bind in
  let result =
    match (col, mode) with
    | Col_label, P.Fm_vertex ->
        let d = Graph.label_dim g in
        let* () = check_cells d in
        Ok (d, Array.init n (fun v -> Array.copy (Graph.label g v)))
    | Col_label, P.Fm_graph ->
        let d = Graph.label_dim g in
        let* () = check_cells d in
        let acc = Array.make d 0.0 in
        for v = 0 to n - 1 do
          let l = Graph.label g v in
          for j = 0 to d - 1 do
            acc.(j) <- acc.(j) +. l.(j)
          done
        done;
        Ok (d, [| acc |])
    | Col_deg, P.Fm_vertex ->
        let* () = check_cells 1 in
        Ok (1, Array.init n (fun v -> [| float_of_int (Graph.degree g v) |]))
    | Col_deg, P.Fm_graph ->
        let* () = check_cells 1 in
        Ok (1, [| [| float_of_int (2 * Graph.n_edges g) |] |])
    | Col_wl round, _ -> (
        let result, hit = Cache.cr cache ~graph_name ~gen ~deadline g in
        note hit;
        let colors =
          match round with
          | None -> List.hd (Cr.stable_colors result)
          | Some r -> List.hd (Cr.colors_at_round result (min r (Cr.rounds result)))
        in
        match mode with
        | P.Fm_graph ->
            let* () = check_cells hist_width in
            Ok (hist_width, [| sorted_class_histogram colors |])
        | P.Fm_vertex ->
            let width = 1 + Array.fold_left max (-1) colors in
            let* () = check_cells width in
            Ok
              ( width,
                Array.init n (fun v ->
                    let row = Array.make width 0.0 in
                    row.(colors.(v)) <- 1.0;
                    row) ))
    | Col_kwl _, P.Fm_vertex -> bad "%s: k-WL colors tuples; use GRAPH mode" (column_name col)
    | Col_kwl k, P.Fm_graph ->
        let* () = check_cells hist_width in
        let result, hit = Cache.kwl cache ~graph_name ~gen ~k ~deadline g in
        note hit;
        let colors = List.hd (Kwl.stable_colors result) in
        Ok (hist_width, [| sorted_class_histogram colors |])
    | Col_hom s, _ ->
        let patterns = Tree.all_free_trees_up_to s in
        let width = List.length patterns in
        let* () = check_cells width in
        let cols =
          List.map
            (fun pattern ->
              Clock.check deadline;
              Count.hom_tree_rooted pattern 0 g)
            patterns
        in
        (match mode with
        | P.Fm_vertex ->
            Ok (width, Array.init n (fun v -> Array.of_list (List.map (fun c -> c.(v)) cols)))
        | P.Fm_graph ->
            Ok (width, [| Array.of_list (List.map (Array.fold_left ( +. ) 0.0) cols) |]))
    | Col_gel src, _ -> (
        match Cache.plan cache src with
        | Error e -> bad "gel: %s" e
        | Ok (plan, hit) -> (
            note hit;
            match (mode, Expr.free_vars plan.Cache.expr) with
            | P.Fm_vertex, [ _ ] ->
                let* () = check_cells (Expr.dim plan.Cache.expr) in
                (* Layered fast path when the plan has one (single
                   propagation passes instead of the naive per-vertex
                   table evaluator — the difference between ms and
                   minutes on a million-edge graph). *)
                let vals =
                  match plan.Cache.layered with
                  | Some nf -> Glql_gel.Normal_form.eval nf g
                  | None -> Expr.eval_vertexwise g plan.Cache.expr
                in
                Ok (Expr.dim plan.Cache.expr, vals)
            | P.Fm_vertex, vars ->
                bad "gel: vertex mode needs exactly one free variable, expression has %d"
                  (List.length vars)
            | P.Fm_graph, [] ->
                let* () = check_cells (Expr.dim plan.Cache.expr) in
                Ok (Expr.dim plan.Cache.expr, [| Expr.eval_closed g plan.Cache.expr |])
            | P.Fm_graph, vars ->
                bad "gel: graph mode needs a closed expression, got %d free variables"
                  (List.length vars)))
  in
  match result with
  | Error _ as e -> e
  | Ok (width, rows) -> Ok (width, rows, !hits, !misses)

(* Canonical form of a parsed recipe: the feature-cache key component.
   Column names round-trip through parse_column, so trimming / blank
   sections normalize away and "deg; wl" keys the same entry as "deg;wl". *)
let canonical_recipe cols = String.concat ";" (List.map column_name cols)

let rec build ~cache ~graph_name ~gen ?(deadline = None) ?(max_cells = 0) mode g cols =
  let n_rows = match mode with P.Fm_vertex -> Graph.n_vertices g | P.Fm_graph -> 1 in
  match
    Cache.feature_find cache ~graph_name ~gen ~mode:(P.feat_mode_name mode)
      ~recipe:(canonical_recipe cols)
  with
  | Some m when max_cells > 0 && n_rows * m.Cache.fm_width > max_cells ->
      (* Same rejection a cold build would hit — a cached matrix must not
         smuggle an over-budget answer past --max-cells. *)
      Error
        ( "ERR_LIMIT_CELLS",
          Printf.sprintf "feature matrix %dx%d exceeds --max-cells %d" n_rows m.Cache.fm_width
            max_cells )
  | Some m ->
      (* Warm path: the whole matrix comes back without touching a
         column. One feature-level hit is reported; the column caches
         were never consulted. *)
      Ok
        {
          b_mode = mode;
          b_cols = m.Cache.fm_cols;
          b_width = m.Cache.fm_width;
          b_rows = m.Cache.fm_rows;
          b_schema = m.Cache.fm_schema;
          b_cache_hits = 1;
          b_cache_misses = 0;
        }
  | None -> build_cold ~cache ~graph_name ~gen ~deadline ~max_cells mode g cols n_rows

and build_cold ~cache ~graph_name ~gen ~deadline ~max_cells mode g cols n_rows =
  (* Running cell budget, enforced column by column before each block is
     materialized (see build_column): the accumulated matrix so far plus
     the candidate column's width must fit under max_cells, so the cap
     bounds peak allocation, not just the finished matrix. *)
  let acc_width = ref 0 in
  let check_cells w =
    let total = !acc_width + w in
    if max_cells > 0 && n_rows * total > max_cells then
      Error
        ( "ERR_LIMIT_CELLS",
          Printf.sprintf "feature matrix %dx%d exceeds --max-cells %d" n_rows total max_cells )
    else begin
      acc_width := total;
      Ok ()
    end
  in
  let rec go acc hits misses = function
    | [] -> Ok (List.rev acc, hits, misses)
    | col :: rest -> (
        Clock.check deadline;
        match build_column ~cache ~graph_name ~gen ~deadline ~check_cells mode g col with
        | Error _ as e -> e
        | Ok (width, rows, h, m) ->
            if Array.length rows <> n_rows then
              Error
                ( "ERR_INTERNAL",
                  Printf.sprintf "column %s produced %d rows, expected %d" (column_name col)
                    (Array.length rows) n_rows )
            else go ((column_name col, width, rows) :: acc) (hits + h) (misses + m) rest)
  in
  match go [] 0 0 cols with
  | Error _ as e -> e
  | Ok (blocks, hits, misses) ->
      let width = List.fold_left (fun acc (_, w, _) -> acc + w) 0 blocks in
      begin
        let rows =
          Array.init n_rows (fun i ->
              let row = Array.make width 0.0 in
              let off = ref 0 in
              List.iter
                (fun (_, w, block) ->
                  Array.blit block.(i) 0 row !off w;
                  off := !off + w)
                blocks;
              row)
        in
        let col_widths = List.map (fun (name, w, _) -> (name, w)) blocks in
        let schema = schema_of_widths mode col_widths in
        (* Cache the finished matrix under its generation so the next
           FEATURIZE / TRAIN / PREDICT on the unchanged graph skips
           column materialisation entirely. Rows are shared, not copied:
           every consumer treats them as read-only. *)
        Cache.feature_store cache ~graph_name ~gen ~mode:(P.feat_mode_name mode)
          ~recipe:(canonical_recipe cols)
          { Cache.fm_cols = col_widths; fm_width = width; fm_rows = rows; fm_schema = schema };
        Ok
          {
            b_mode = mode;
            b_cols = col_widths;
            b_width = width;
            b_rows = rows;
            b_schema = schema;
            b_cache_hits = hits;
            b_cache_misses = misses;
          }
      end
