(** Feature-recipe evaluator (protocol v6).

    A {b recipe} is a ';'-separated list of column specs; each spec
    materializes a block of float columns for every row of the feature
    matrix — one row per vertex ([Fm_vertex]) or a single summary row
    for the whole graph ([Fm_graph]):

    {v
    label        raw label columns (vertex: the label vector;
                 graph: componentwise sum over vertices)
    deg          degree (vertex) / total degree 2|E| (graph)
    wl[@r]       color refinement at round r (default: stable).
                 vertex: one-hot of the vertex's class (width = class
                 count, so the width is graph- and generation-dependent);
                 graph: sorted class-size histogram, zero-padded to a
                 fixed width so schemas agree across a training corpus
    kwl<k>       stable folklore k-WL (k = 2 or 3), graph mode only:
                 sorted tuple-class-size histogram, fixed width
    hom<s>       homomorphism counts of every free tree with <= s
                 vertices (vertex: rooted counts; graph: totals)
    gel:<expr>   GEL query columns (vertex: exactly one free variable;
                 graph: closed expression), compiled via the plan cache
    v}

    Colorings and plans are fetched through the server {!Cache}, so they
    are shared with WL/KWL/QUERY traffic and coalesced across a
    pipelined batch. *)

module P = Protocol
module Graph = Glql_graph.Graph

type column =
  | Col_label
  | Col_deg
  | Col_wl of int option
  | Col_kwl of int
  | Col_hom of int
  | Col_gel of string

(** Fixed width of graph-mode WL / k-WL class-size histograms. *)
val hist_width : int

val column_name : column -> string

(** Parse a recipe string. [Error] messages are suitable for an
    ERR_BAD_RECIPE reply. *)
val parse_recipe : string -> (column list, string) result

(** Recipe pulls a color refinement / k-WL colorings (the [k] list) —
    used by the server's batch planner for cross-request coalescing. *)
val wants_wl : column list -> bool

val wants_kwl : column list -> int list

(** Canonical form of a parsed recipe (';'-joined {!column_name}s) — the
    feature-cache key component, normal under whitespace and blank
    sections of the source recipe string. *)
val canonical_recipe : column list -> string

type built = {
  b_mode : P.feat_mode;
  b_cols : (string * int) list;  (** per-column (name, width) *)
  b_width : int;
  b_rows : float array array;
  b_schema : string;
      (** mode plus per-column names and widths — the contract a trained
          model checks at PREDICT time *)
  b_cache_hits : int;
  b_cache_misses : int;
}

val schema_hash : string -> string

(** Stable hex digest of the matrix contents (row-major f64 bits). *)
val row_digest : float array array -> string

(** Materialize the matrix. Errors are [(ERR_* code, message)]; a passed
    deadline raises {!Glql_util.Clock.Deadline_exceeded} like the other
    kernels. [max_cells] (0 = unlimited) bounds rows x width, enforced
    column by column as soon as each column's width is known and before
    its block is allocated — a recipe that would blow the budget (e.g. a
    vertex-mode [wl] one-hot as wide as the class count) is rejected
    without materializing it.

    The finished matrix is cached whole in the server {!Cache} under
    (graph, generation, mode, canonical recipe); a warm call returns it
    without touching a column and reports one feature-level cache hit
    ([b_cache_hits = 1], [b_cache_misses = 0]). The cell budget is
    re-checked on the warm path. Cached rows are shared, never copied —
    consumers treat them as read-only. *)
val build :
  cache:Cache.t ->
  graph_name:string ->
  gen:int ->
  ?deadline:int64 option ->
  ?max_cells:int ->
  P.feat_mode ->
  Graph.t ->
  column list ->
  (built, string * string) result
