(* Incremental newline framing for one connection.

   Replaces the old per-chunk [Buffer.contents]-and-rescan approach,
   which re-examined the whole buffer on every read — O(n^2) for a
   client pipelining n bytes of requests. Here a [scanned] offset
   records how far the buffered bytes have already been searched for
   '\n' (invariant: bytes [0, scanned) contain none), so each byte is
   scanned exactly once and complete lines are copied out exactly once.

   The same module enforces the per-connection input limits: a cap on a
   single line's length (a request that long is never legitimate) and a
   cap on the bytes buffered without any newline at all (the slow-loris
   flood). Once a limit trips the buffer is poisoned — every further
   feed reports the same error — and the server drops the peer. *)

type error =
  | Line_too_long of int  (** a single request line exceeded this many bytes *)
  | Buffer_overflow of int  (** buffered bytes without a newline exceeded this *)

type t = {
  buf : Buffer.t;
  mutable scanned : int;  (* bytes [0, scanned) are known '\n'-free *)
  max_line : int;  (* 0 = unlimited *)
  max_bytes : int;  (* 0 = unlimited *)
  mutable failed : error option;
}

let create ?(max_line_bytes = 0) ?(max_buf_bytes = 0) () =
  {
    buf = Buffer.create 256;
    scanned = 0;
    max_line = max_line_bytes;
    max_bytes = max_buf_bytes;
    failed = None;
  }

let pending_bytes t = Buffer.length t.buf

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let fail t e =
  t.failed <- Some e;
  Error e

(* Limit checks on the residue after extraction: [partial] is the byte
   count still buffered (all of it one incomplete line). Checking after
   extraction matters — a fast pipelining client may legitimately
   deliver a chunk whose *gross* size exceeds the caps, as long as its
   complete lines fit. *)
let check_partial t partial =
  if t.max_bytes > 0 && partial > t.max_bytes then fail t (Buffer_overflow t.max_bytes)
  else if t.max_line > 0 && partial > t.max_line then fail t (Line_too_long t.max_line)
  else Ok ()

let feed t bytes ~off ~len =
  match t.failed with
  | Some e -> Error e
  | None ->
      Buffer.add_subbytes t.buf bytes off len;
      let total = Buffer.length t.buf in
      (* Only the new region [scanned, total) can hold a newline. *)
      let last = ref (-1) in
      for i = total - 1 downto t.scanned do
        if !last < 0 && Buffer.nth t.buf i = '\n' then last := i
      done;
      if !last < 0 then begin
        t.scanned <- total;
        Result.map (fun () -> []) (check_partial t total)
      end
      else begin
        let head = Buffer.sub t.buf 0 !last in
        let tail = Buffer.sub t.buf (!last + 1) (total - !last - 1) in
        Buffer.clear t.buf;
        Buffer.add_string t.buf tail;
        t.scanned <- String.length tail;
        let lines = List.map strip_cr (String.split_on_char '\n' head) in
        if t.max_line > 0 && List.exists (fun l -> String.length l > t.max_line) lines then
          fail t (Line_too_long t.max_line)
        else Result.map (fun () -> lines) (check_partial t (String.length tail))
      end

let feed_string t s = feed t (Bytes.of_string s) ~off:0 ~len:(String.length s)
