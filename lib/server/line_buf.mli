(** Incremental newline framing for one connection, with input limits.

    Bytes are fed in as they arrive from the socket; complete lines come
    back out exactly once, with a trailing ['\r'] stripped (CRLF
    clients). A scan offset guarantees each byte is examined once, so
    framing is O(bytes) however the peer chunks its writes — the old
    whole-buffer rescan was quadratic for pipelining clients.

    Two limits guard the connection: [max_line_bytes] caps a single
    request line and [max_buf_bytes] caps bytes buffered without any
    newline (the slow-loris flood). [0] disables a limit. Once a limit
    trips, the buffer is poisoned: every subsequent [feed] returns the
    same error, and the server is expected to drop the peer. *)

type error =
  | Line_too_long of int  (** a single request line exceeded this many bytes *)
  | Buffer_overflow of int  (** buffered bytes without a newline exceeded this *)

type t

val create : ?max_line_bytes:int -> ?max_buf_bytes:int -> unit -> t

(** Bytes buffered but not yet returned (at most one incomplete line). *)
val pending_bytes : t -> int

(** [feed t bytes ~off ~len] appends a chunk and returns the complete
    lines it finished, oldest first (empty lines included — callers
    filter). Never raises. *)
val feed : t -> bytes -> off:int -> len:int -> (string list, error) result

(** [feed] for a whole string (tests, benches). *)
val feed_string : t -> string -> (string list, error) result
