(* Server metrics. Latencies go into a fixed ring of the most recent
   requests — quantiles are over that window, which keeps memory bounded
   on long-lived daemons while still answering "what is p99 right now". *)

module Clock = Glql_util.Clock

let window = 65536

(* Per-stage rings are much smaller than the request ring: there are a
   dozen-odd stages and their quantiles only need to be indicative. *)
let stage_window = 4096

type stage_stat = {
  mutable s_count : int;
  mutable s_total_ns : float;
  s_ring : int array;  (* ns; valid up to [min s_count stage_window] *)
  mutable s_next : int;
}

type t = {
  started_ns : int64;
  mutable requests : int;
  mutable errors : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  (* Governance counters live outside [counters] on purpose: [counters]
     is encoded into snapshots, so extending it would change the
     persisted format. Rejections/drops describe this process's life,
     not the service's, and are not carried across restarts. *)
  mutable conns_rejected : int;  (* accepts refused at the connection cap *)
  mutable conns_dropped : int;  (* peers dropped for input-limit violations *)
  mutable batch_coalesced : int;  (* requests answered from a shared batch pass *)
  by_command : (string, int) Hashtbl.t;
  by_stage : (string, stage_stat) Hashtbl.t;
  ring : int array;  (* latencies in ns; valid up to [min requests window] *)
  mutable ring_next : int;
  mutex : Mutex.t;
}

let create () =
  {
    started_ns = Clock.now_ns ();
    requests = 0;
    errors = 0;
    bytes_in = 0;
    bytes_out = 0;
    conns_rejected = 0;
    conns_dropped = 0;
    batch_coalesced = 0;
    by_command = Hashtbl.create 16;
    by_stage = Hashtbl.create 16;
    ring = Array.make window 0;
    ring_next = 0;
    mutex = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t ~command ~ok ~latency_ns =
  with_lock t (fun () ->
      t.requests <- t.requests + 1;
      if not ok then t.errors <- t.errors + 1;
      Hashtbl.replace t.by_command command
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_command command));
      t.ring.(t.ring_next) <- Int64.to_int latency_ns;
      t.ring_next <- (t.ring_next + 1) mod window)

(* Cumulative per-stage histogram feed: the server hands every finished
   trace span here, so STATS can report where query time goes even when
   no client ever asked for a TRACE reply. *)
let record_stage t ~stage ~dur_ns =
  with_lock t (fun () ->
      let st =
        match Hashtbl.find_opt t.by_stage stage with
        | Some st -> st
        | None ->
            let st =
              { s_count = 0; s_total_ns = 0.0; s_ring = Array.make stage_window 0; s_next = 0 }
            in
            Hashtbl.add t.by_stage stage st;
            st
      in
      st.s_count <- st.s_count + 1;
      st.s_total_ns <- st.s_total_ns +. float_of_int dur_ns;
      st.s_ring.(st.s_next) <- dur_ns;
      st.s_next <- (st.s_next + 1) mod stage_window)

let add_io t ~bytes_in ~bytes_out =
  with_lock t (fun () ->
      t.bytes_in <- t.bytes_in + bytes_in;
      t.bytes_out <- t.bytes_out + bytes_out)

let conn_rejected t = with_lock t (fun () -> t.conns_rejected <- t.conns_rejected + 1)

let conn_dropped t = with_lock t (fun () -> t.conns_dropped <- t.conns_dropped + 1)

let conns_rejected t = with_lock t (fun () -> t.conns_rejected)

let conns_dropped t = with_lock t (fun () -> t.conns_dropped)

(* Batch coalescing lives with the governance counters: a per-process
   fact about this life of the daemon, outside the persisted [counters]
   record so snapshots keep their format. *)
let add_coalesced t n = with_lock t (fun () -> t.batch_coalesced <- t.batch_coalesced + n)

let batch_coalesced t = with_lock t (fun () -> t.batch_coalesced)

type counters = {
  c_requests : int;
  c_errors : int;
  c_bytes_in : int;
  c_bytes_out : int;
  c_by_command : (string * int) list;
}

let export_counters t =
  with_lock t (fun () ->
      {
        c_requests = t.requests;
        c_errors = t.errors;
        c_bytes_in = t.bytes_in;
        c_bytes_out = t.bytes_out;
        c_by_command =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_command [] |> List.sort compare;
      })

(* Restore-side: fold a previous life's counters into this one. Latency
   rings are deliberately not carried over — quantiles describe the
   current process, counters the service. *)
let absorb t c =
  with_lock t (fun () ->
      t.requests <- t.requests + c.c_requests;
      t.errors <- t.errors + c.c_errors;
      t.bytes_in <- t.bytes_in + c.c_bytes_in;
      t.bytes_out <- t.bytes_out + c.c_bytes_out;
      List.iter
        (fun (cmd, n) ->
          Hashtbl.replace t.by_command cmd
            (n + Option.value ~default:0 (Hashtbl.find_opt t.by_command cmd)))
        c.c_by_command)

let requests t = with_lock t (fun () -> t.requests)

let errors t = with_lock t (fun () -> t.errors)

let ring_percentile ring ~filled p =
  if filled = 0 then Float.nan
  else begin
    let sorted = Array.sub ring 0 filled in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int filled)) in
    let idx = max 0 (min (filled - 1) (rank - 1)) in
    float_of_int sorted.(idx)
  end

let percentile_ns_locked t p = ring_percentile t.ring ~filled:(min t.requests window) p

let percentile_ms t p = with_lock t (fun () -> percentile_ns_locked t p /. 1e6)

let to_json t ~extra =
  let open Protocol in
  let fields =
    with_lock t (fun () ->
        let p50 = percentile_ns_locked t 50.0 /. 1e6 in
        let p99 = percentile_ns_locked t 99.0 /. 1e6 in
        [
          ("uptime_s", Float (Clock.ns_to_s (Clock.elapsed_ns t.started_ns)));
          ("requests", Int t.requests);
          ("errors", Int t.errors);
          ("bytes_in", Int t.bytes_in);
          ("bytes_out", Int t.bytes_out);
          ("conns_rejected", Int t.conns_rejected);
          ("conns_dropped", Int t.conns_dropped);
          ("batch_coalesced", Int t.batch_coalesced);
          ("latency_p50_ms", Float p50);
          ("latency_p99_ms", Float p99);
          ( "by_command",
            Obj
              (Hashtbl.fold (fun k v acc -> (k, Int v) :: acc) t.by_command []
              |> List.sort compare) );
          ( "stages",
            Obj
              (Hashtbl.fold
                 (fun name st acc ->
                   let filled = min st.s_count stage_window in
                   ( name,
                     Obj
                       [
                         ("count", Int st.s_count);
                         ("total_ms", Float (st.s_total_ns /. 1e6));
                         ("p50_ms", Float (ring_percentile st.s_ring ~filled 50.0 /. 1e6));
                         ("p99_ms", Float (ring_percentile st.s_ring ~filled 99.0 /. 1e6));
                       ] )
                   :: acc)
                 t.by_stage []
              |> List.sort compare) );
        ])
  in
  Obj (fields @ extra)

let write_file t ~extra path =
  let oc = open_out path in
  output_string oc (Protocol.json_to_string (to_json t ~extra));
  output_char oc '\n';
  close_out oc
