(** Request counters and latency quantiles of the server: requests served
    (per command and total), errors, bytes in/out, p50/p99 latency over a
    sliding window, uptime. Thread-safe; sampled by the [STATS] command
    and dumped to [--metrics-file] on shutdown. *)

type t

(** Size of the sliding latency window (exposed for boundary tests). *)
val window : int

val create : unit -> t

(** Count one finished request. *)
val record : t -> command:string -> ok:bool -> latency_ns:int64 -> unit

(** Feed one finished pipeline-stage duration into the cumulative
    per-stage histograms reported by [STATS] under ["stages"]. *)
val record_stage : t -> stage:string -> dur_ns:int -> unit

(** Count raw socket traffic. *)
val add_io : t -> bytes_in:int -> bytes_out:int -> unit

(** Count one accept refused at the connection cap. Per-process only —
    deliberately not part of {!counters}, so the snapshot format is
    untouched and restarts reset it. *)
val conn_rejected : t -> unit

(** Count one peer dropped for an input-limit violation (over-long line,
    newline-less flood, or reply-backlog overflow). Per-process only. *)
val conn_dropped : t -> unit

val conns_rejected : t -> int

val conns_dropped : t -> int

(** Count [n] requests answered from a shared batch pass (the select
    loop coalesced same-graph queries into one refinement/profile).
    Per-process only, like the connection-governance counters. *)
val add_coalesced : t -> int -> unit

val batch_coalesced : t -> int

(** A copyable view of the cumulative counters, for snapshots. *)
type counters = {
  c_requests : int;
  c_errors : int;
  c_bytes_in : int;
  c_bytes_out : int;
  c_by_command : (string * int) list;
}

val export_counters : t -> counters

(** Fold a restored snapshot's counters into this instance (totals and
    per-command counts add; latency windows are not carried over). *)
val absorb : t -> counters -> unit

val requests : t -> int

val errors : t -> int

(** Latency percentile in milliseconds over the recent-request window
    ([p] in [0..100]; [nan] before the first request). *)
val percentile_ms : t -> float -> float

(** Snapshot as JSON fields (uptime, totals, quantiles, per-command
    counts); [extra] fields are appended — the server passes cache and
    registry gauges. *)
val to_json : t -> extra:(string * Protocol.json) list -> Protocol.json

(** Write the JSON snapshot (plus [extra]) to a file, one object. *)
val write_file : t -> extra:(string * Protocol.json) list -> string -> unit
