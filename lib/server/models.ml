(* Named-model registry and the TRAIN / PREDICT engine (protocol v6).

   A trained model is a small MLP head over a feature matrix declared by
   a recipe (see Featurize): vertex-mode recipes train a binary
   classifier over the vertices of one graph, graph-mode recipes train a
   scalar regressor over a corpus of graphs (one feature row each).
   Models are plain data — recipe, target, schema, source generations,
   seed and the trained weight matrices — so they snapshot byte-exactly
   and a rebooted daemon answers PREDICT warm.

   Staleness: a model remembers the registry generation of every source
   graph at fit time. PREDICT on a source graph whose generation has
   moved on (MUTATE, re-LOAD) still answers, but carries stale:true —
   an explicit signal instead of a silently wrong answer. *)

module P = Protocol
module Mlp = Glql_nn.Mlp
module Param = Glql_nn.Param
module Activation = Glql_nn.Activation
module Mat = Glql_tensor.Mat
module Rng = Glql_util.Rng
module Clock = Glql_util.Clock
module Erm = Glql_learning.Erm

type task = Classify | Regress

let task_name = function Classify -> "classify" | Regress -> "regress"

type stored = {
  sm_name : string;
  sm_task : task;
  sm_mode : P.feat_mode;
  sm_recipe : string;
  sm_target : string;
  sm_schema : string;
  sm_sources : (string * int) list;  (* graph name, generation at fit time *)
  sm_sizes : int list;
  sm_seed : int;
  sm_params : (int * int * float array) list;  (* rows, cols, row-major data *)
  sm_rows : int;  (* training rows *)
  sm_epochs : int;
  sm_lr : float;
  sm_split : float;
  sm_losses : float array;
  sm_train_metric : float;
  sm_test_metric : float;
}

type t = { lock : Mutex.t; table : (string, stored) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add t stored = locked t (fun () -> Hashtbl.replace t.table stored.sm_name stored)
let find t name = locked t (fun () -> Hashtbl.find_opt t.table name)
let count t = locked t (fun () -> Hashtbl.length t.table)

let list t =
  locked t (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) t.table [])
  |> List.sort (fun a b -> compare a.sm_name b.sm_name)

let export = list

let import t models =
  locked t (fun () -> List.iter (fun m -> Hashtbl.replace t.table m.sm_name m) models)

(* --- the MLP head ------------------------------------------------------- *)

(* The head architecture is fixed (Tanh hidden layers, identity output),
   so (sizes, seed, params) fully determines the network. *)
let make_head ~seed ~sizes = Mlp.create (Rng.create seed) ~sizes ~act:Activation.Tanh ~out_act:Activation.Identity

let params_of_head head =
  List.map
    (fun p ->
      let m = p.Param.data in
      (Mat.rows m, Mat.cols m, Array.copy (Mat.data m)))
    (Mlp.params head)

let head_of stored =
  let head = make_head ~seed:stored.sm_seed ~sizes:stored.sm_sizes in
  let params = Mlp.params head in
  if List.length params <> List.length stored.sm_params then
    Error "model params do not match the stored architecture"
  else begin
    let ok = ref true in
    List.iter2
      (fun p (rows, cols, data) ->
        let m = p.Param.data in
        if Mat.rows m <> rows || Mat.cols m <> cols || Array.length data <> rows * cols then
          ok := false
        else Array.blit data 0 (Mat.data m) 0 (rows * cols))
      params stored.sm_params;
    if !ok then Ok head else Error "model params do not match the stored architecture"
  end

(* --- TRAIN -------------------------------------------------------------- *)

let default_epochs = 100
let max_epochs = 10_000
let default_lr = 0.05
let default_seed = 1
let default_split = 0.8

let fail code fmt = Printf.ksprintf (fun m -> Error (code, m)) fmt
let ( let* ) r f = Result.bind r f

(* Per-row training targets from the TARGET expression, evaluated through
   the plan cache like any query. Vertex mode wants one value per vertex
   (one free variable), graph mode one value per graph (closed). *)
let target_values ~cache mode g src =
  match Cache.plan cache src with
  | Error e -> fail "ERR_QUERY" "TARGET: %s" e
  | Ok (plan, _) -> (
      let expr = plan.Cache.expr in
      (* A TARGET must be scalar: a head is fit against one value per
         row. Truncating a wider expression to component 0 would fit
         against a silently wrong target, so reject it by dimension. *)
      let* () =
        let d = Glql_gel.Expr.dim expr in
        if d <> 1 then
          fail "ERR_QUERY" "TARGET: expected a scalar expression, got dimension %d" d
        else Ok ()
      in
      match (mode, Glql_gel.Expr.free_vars expr) with
      | P.Fm_vertex, [ _ ] ->
          (* Layered fast path when available, like the QUERY handler:
             propagation passes instead of the per-vertex table
             evaluator, which is minutes on a million-edge graph. *)
          let rows =
            match plan.Cache.layered with
            | Some nf -> Glql_gel.Normal_form.eval nf g
            | None -> Glql_gel.Expr.eval_vertexwise g expr
          in
          Ok (Array.map (fun v -> v.(0)) rows)
      | P.Fm_graph, [] -> Ok [| (Glql_gel.Expr.eval_closed g expr).(0) |]
      | _, vars ->
          fail "ERR_QUERY" "TARGET: expected %s, got %d free variables"
            (match mode with P.Fm_vertex -> "one free variable" | P.Fm_graph -> "a closed expression")
            (List.length vars))

(* The exact TRAIN spec a stored model was fit from — every fit
   hyperparameter is persisted, so a RETRAIN-on-stale refit through the
   normal train path is deterministic: same seed, same split, same head. *)
let spec_of_stored (m : stored) : P.train_spec =
  {
    P.t_model = m.sm_name;
    t_graphs = List.map fst m.sm_sources;
    t_recipe = m.sm_recipe;
    t_target = m.sm_target;
    t_mode = Some m.sm_mode;
    t_epochs = Some m.sm_epochs;
    t_lr = Some m.sm_lr;
    t_seed = Some m.sm_seed;
    t_split = Some m.sm_split;
  }

type trained = { tr_stored : stored; tr_hits : int; tr_misses : int }

let train ~registry ~cache ~models ?(deadline = None) ?(max_cells = 0) (spec : P.train_spec) =
  let mode =
    match spec.t_mode with
    | Some m -> m
    | None -> if List.length spec.t_graphs = 1 then P.Fm_vertex else P.Fm_graph
  in
  let epochs = Option.value spec.t_epochs ~default:default_epochs in
  let lr = Option.value spec.t_lr ~default:default_lr in
  let seed = Option.value spec.t_seed ~default:default_seed in
  let split = Option.value spec.t_split ~default:default_split in
  let* () =
    if epochs > max_epochs then fail "ERR_BAD_ARG" "EPOCHS: capped at %d" max_epochs
    else if mode = P.Fm_vertex && List.length spec.t_graphs <> 1 then
      fail "ERR_BAD_ARG" "vertex-mode TRAIN takes exactly one source graph"
    else Ok ()
  in
  let* cols = Result.map_error (fun m -> ("ERR_BAD_RECIPE", m)) (Featurize.parse_recipe spec.t_recipe) in
  (* Featurize every source graph and collect its per-row targets. *)
  let rec featurize_all acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest ->
        Clock.check deadline;
        let* g, gen =
          Result.map_error (fun m -> ("ERR_UNKNOWN_GRAPH", m)) (Registry.find_entry registry name)
        in
        let* built = Featurize.build ~cache ~graph_name:name ~gen ~deadline ~max_cells mode g cols in
        let* targets = target_values ~cache mode g spec.t_target in
        if Array.length targets <> Array.length built.Featurize.b_rows then
          fail "ERR_INTERNAL" "TARGET produced %d values for %d rows" (Array.length targets)
            (Array.length built.Featurize.b_rows)
        else featurize_all ((name, gen, built, targets) :: acc) rest
  in
  let* parts = featurize_all [] spec.t_graphs in
  let schema = match parts with (_, _, b, _) :: _ -> b.Featurize.b_schema | [] -> "" in
  let* () =
    match List.find_opt (fun (_, _, b, _) -> b.Featurize.b_schema <> schema) parts with
    | Some (name, _, b, _) ->
        fail "ERR_SCHEMA_MISMATCH" "graph %s produces schema %S, first graph %S" name
          b.Featurize.b_schema schema
    | None -> Ok ()
  in
  let features = Array.concat (List.map (fun (_, _, b, _) -> b.Featurize.b_rows) parts) in
  let raw_targets = Array.concat (List.map (fun (_, _, _, t) -> t) parts) in
  let n = Array.length features in
  let* () = if n = 0 then fail "ERR_BAD_ARG" "no training rows" else Ok () in
  let width = (List.hd parts |> fun (_, _, b, _) -> b.Featurize.b_width) in
  let* () = if width = 0 then fail "ERR_BAD_RECIPE" "recipe produces zero columns" else Ok () in
  let task = match mode with P.Fm_vertex -> Classify | P.Fm_graph -> Regress in
  let targets =
    match task with
    | Classify -> Array.map (fun v -> if v > 0.0 then 1.0 else 0.0) raw_targets
    | Regress -> raw_targets
  in
  let train_idx, _test_idx = Erm.split (Rng.create seed) ~n ~train_fraction:split in
  let mask = Array.make n false in
  List.iter (fun i -> mask.(i) <- true) train_idx;
  (* A split that leaves the train side empty (tiny n) trains on all rows. *)
  if not (Array.exists Fun.id mask) then Array.fill mask 0 n true;
  Clock.check deadline;
  let sizes = [ width; 1 ] in
  let head = make_head ~seed ~sizes in
  let history =
    match task with
    | Classify -> Erm.train_feature_classifier ~epochs ~lr ~deadline head ~features ~targets ~mask
    | Regress -> Erm.train_feature_regressor ~epochs ~lr ~deadline head ~features ~targets ~mask
  in
  let stored =
    {
      sm_name = spec.t_model;
      sm_task = task;
      sm_mode = mode;
      sm_recipe = spec.t_recipe;
      sm_target = spec.t_target;
      sm_schema = schema;
      sm_sources = List.map (fun (name, gen, _, _) -> (name, gen)) parts;
      sm_sizes = sizes;
      sm_seed = seed;
      sm_params = params_of_head head;
      sm_rows = n;
      sm_epochs = epochs;
      sm_lr = lr;
      sm_split = split;
      sm_losses = Array.of_list history.Erm.losses;
      sm_train_metric = history.Erm.train_metric;
      sm_test_metric = history.Erm.test_metric;
    }
  in
  add models stored;
  let hits = List.fold_left (fun acc (_, _, b, _) -> acc + b.Featurize.b_cache_hits) 0 parts in
  let misses = List.fold_left (fun acc (_, _, b, _) -> acc + b.Featurize.b_cache_misses) 0 parts in
  Ok { tr_stored = stored; tr_hits = hits; tr_misses = misses }

(* --- PREDICT ------------------------------------------------------------ *)

type prediction = {
  pr_model : stored;
  pr_stale : bool;
  pr_unseen : bool;  (* graph was not a training source of the model *)
  pr_rows : (int * float) array;  (* row index (vertex or 0), score *)
  pr_hits : int;
  pr_misses : int;
}

let predict ~registry ~cache ~models ?(deadline = None) ?(max_cells = 0) ~model ~graph ~vertices ()
    =
  let* stored =
    match find models model with
    | Some m -> Ok m
    | None -> fail "ERR_UNKNOWN_MODEL" "unknown model %S (TRAIN it first, or see MODELS)" model
  in
  let* g, gen =
    Result.map_error (fun m -> ("ERR_UNKNOWN_GRAPH", m)) (Registry.find_entry registry graph)
  in
  let* cols =
    Result.map_error (fun m -> ("ERR_BAD_RECIPE", m)) (Featurize.parse_recipe stored.sm_recipe)
  in
  let* built =
    Featurize.build ~cache ~graph_name:graph ~gen ~deadline ~max_cells stored.sm_mode g cols
  in
  let* () =
    if built.Featurize.b_schema <> stored.sm_schema then
      fail "ERR_SCHEMA_MISMATCH"
        "graph %s featurizes to schema %S but model %S was trained on %S" graph
        built.Featurize.b_schema model stored.sm_schema
    else Ok ()
  in
  let* head = Result.map_error (fun m -> ("ERR_INTERNAL", m)) (head_of stored) in
  let n = Array.length built.Featurize.b_rows in
  let* indices =
    match vertices with
    | [] -> Ok (Array.init n Fun.id)
    | vs ->
        let rec check = function
          | [] -> Ok (Array.of_list vs)
          | v :: rest ->
              if v < 0 || v >= n then fail "ERR_BAD_ARG" "row %d out of range 0..%d" v (n - 1)
              else check rest
        in
        check vs
  in
  (* Score all requested rows in one pass instead of a per-row
     [Mlp.apply_vec] loop. Single-layer heads (every head [train] fits
     today) go through [Mlp.scores], which skips the batch-matrix copy
     entirely; deeper heads pay one batched [forward]. Both are
     bit-identical to the per-row loop: each output row of a matrix
     product is an independent dot-product with the same summation
     order as the single-row case. *)
  let rows =
    if Array.length indices = 0 then [||]
    else
      let selected = Array.map (fun i -> built.Featurize.b_rows.(i)) indices in
      match Mlp.scores head selected with
      | Some s -> Array.mapi (fun k i -> (i, s.(k))) indices
      | None ->
          let out = Mlp.forward head (Mat.of_rows (Array.to_list selected)) in
          Array.mapi (fun k i -> (i, Mat.get out k 0)) indices
  in
  (* A graph the model never saw is not "fresh": it is flagged unseen so
     a corpus PREDICT can tell drifted sources from foreign graphs. The
     stale bit still means exactly "a training source whose generation
     moved on". *)
  let stale, unseen =
    match List.assoc_opt graph stored.sm_sources with
    | Some g0 -> (g0 <> gen, false)
    | None -> (false, true)
  in
  Ok
    {
      pr_model = stored;
      pr_stale = stale;
      pr_unseen = unseen;
      pr_rows = rows;
      pr_hits = built.Featurize.b_cache_hits;
      pr_misses = built.Featurize.b_cache_misses;
    }
