(** Named-model registry and the TRAIN / PREDICT engine (protocol v6).

    Vertex-mode recipes fit a binary classifier over the vertices of one
    graph ({!Glql_learning.Erm.train_feature_classifier}); graph-mode
    recipes fit a scalar regressor over a corpus of graphs, one feature
    row each ({!Glql_learning.Erm.train_feature_regressor}). Models are
    plain data (recipe, target, schema, source generations, seed and
    trained weight matrices), so they snapshot byte-exactly and a warm
    restart answers PREDICT with byte-identical replies.

    A model remembers the registry generation of each source graph at
    fit time; a PREDICT against a source graph whose generation has
    moved on (MUTATE / re-LOAD) answers with [stale = true] rather than
    silently serving a prediction the training set no longer matches. *)

module P = Protocol

type task = Classify | Regress

val task_name : task -> string

type stored = {
  sm_name : string;
  sm_task : task;
  sm_mode : P.feat_mode;
  sm_recipe : string;
  sm_target : string;
  sm_schema : string;
  sm_sources : (string * int) list;  (** graph name, generation at fit time *)
  sm_sizes : int list;
  sm_seed : int;
  sm_params : (int * int * float array) list;  (** rows, cols, row-major data *)
  sm_rows : int;
  sm_epochs : int;
  sm_lr : float;
  sm_split : float;
  sm_losses : float array;
  sm_train_metric : float;
  sm_test_metric : float;
}

type t

val create : unit -> t
val add : t -> stored -> unit
val find : t -> string -> stored option
val count : t -> int

(** Sorted by name. *)
val list : t -> stored list

(** Snapshot export / seeding (see {!Persist}). *)
val export : t -> stored list

val import : t -> stored list -> unit

(** Rebuild the MLP head of a stored model (deterministic from sizes and
    seed, weights overwritten from [sm_params]). *)
val head_of : stored -> (Glql_nn.Mlp.t, string) result

(** The exact TRAIN spec a stored model was fit from. Every fit
    hyperparameter is persisted, so refitting through {!train} (the
    RETRAIN-on-stale policy) is deterministic: same seed, split, epochs
    and learning rate yield the same head on unchanged sources. *)
val spec_of_stored : stored -> P.train_spec

type trained = { tr_stored : stored; tr_hits : int; tr_misses : int }

(** Featurize the source graphs, fit a head, and register the model
    under its name (replacing any previous model). Errors are
    [(ERR_* code, message)]; a passed deadline raises
    {!Glql_util.Clock.Deadline_exceeded}. *)
val train :
  registry:Registry.t ->
  cache:Cache.t ->
  models:t ->
  ?deadline:int64 option ->
  ?max_cells:int ->
  P.train_spec ->
  (trained, string * string) result

type prediction = {
  pr_model : stored;
  pr_stale : bool;  (** a training source whose generation moved on *)
  pr_unseen : bool;  (** the graph was never a training source of the model *)
  pr_rows : (int * float) array;  (** row index (vertex, or 0 for graph mode), score *)
  pr_hits : int;
  pr_misses : int;
}

val predict :
  registry:Registry.t ->
  cache:Cache.t ->
  models:t ->
  ?deadline:int64 option ->
  ?max_cells:int ->
  model:string ->
  graph:string ->
  vertices:int list ->
  unit ->
  (prediction, string * string) result
