(* Save/restore glue between the live server structures and the pure
   Snapshot codecs. Save only exports colourings whose generation still
   matches the registry binding (anything else is stale by definition);
   restore registers graphs under fresh generations and rekeys the
   colourings accordingly, so generation-based staleness checks keep
   working across process lives. *)

module Snapshot = Glql_store.Snapshot
module Trace = Glql_util.Trace

type summary = {
  s_graphs : int;
  s_colorings : int;
  s_plans : int;
  s_models : int;
  s_bytes : int;
  s_saved_at : float;
}

(* --- model conversion (Models.stored <-> Snapshot.model_entry) ---------- *)

let model_to_snapshot (m : Models.stored) =
  {
    Snapshot.m_name = m.Models.sm_name;
    m_task = (match m.Models.sm_task with Models.Classify -> 0 | Models.Regress -> 1);
    m_mode = (match m.Models.sm_mode with Protocol.Fm_vertex -> 0 | Protocol.Fm_graph -> 1);
    m_recipe = m.Models.sm_recipe;
    m_target = m.Models.sm_target;
    m_schema = m.Models.sm_schema;
    m_sources = m.Models.sm_sources;
    m_sizes = m.Models.sm_sizes;
    m_seed = m.Models.sm_seed;
    m_params = m.Models.sm_params;
    m_rows = m.Models.sm_rows;
    m_epochs = m.Models.sm_epochs;
    m_lr = m.Models.sm_lr;
    m_split = m.Models.sm_split;
    m_losses = m.Models.sm_losses;
    m_train_metric = m.Models.sm_train_metric;
    m_test_metric = m.Models.sm_test_metric;
  }

let model_of_snapshot ~rekey (m : Snapshot.model_entry) =
  {
    Models.sm_name = m.Snapshot.m_name;
    sm_task = (if m.Snapshot.m_task = 0 then Models.Classify else Models.Regress);
    sm_mode = (if m.Snapshot.m_mode = 0 then Protocol.Fm_vertex else Protocol.Fm_graph);
    sm_recipe = m.Snapshot.m_recipe;
    sm_target = m.Snapshot.m_target;
    sm_schema = m.Snapshot.m_schema;
    sm_sources = List.map rekey m.Snapshot.m_sources;
    sm_sizes = m.Snapshot.m_sizes;
    sm_seed = m.Snapshot.m_seed;
    sm_params = m.Snapshot.m_params;
    sm_rows = m.Snapshot.m_rows;
    sm_epochs = m.Snapshot.m_epochs;
    sm_lr = m.Snapshot.m_lr;
    sm_split = m.Snapshot.m_split;
    sm_losses = m.Snapshot.m_losses;
    sm_train_metric = m.Snapshot.m_train_metric;
    sm_test_metric = m.Snapshot.m_test_metric;
  }

let counters_to_snapshot (c : Metrics.counters) =
  {
    Snapshot.m_requests = c.Metrics.c_requests;
    m_errors = c.Metrics.c_errors;
    m_bytes_in = c.Metrics.c_bytes_in;
    m_bytes_out = c.Metrics.c_bytes_out;
    m_by_command = c.Metrics.c_by_command;
  }

let counters_of_snapshot (m : Snapshot.metrics_counters) =
  {
    Metrics.c_requests = m.Snapshot.m_requests;
    c_errors = m.Snapshot.m_errors;
    c_bytes_in = m.Snapshot.m_bytes_in;
    c_bytes_out = m.Snapshot.m_bytes_out;
    c_by_command = m.Snapshot.m_by_command;
  }

let save ~registry ~cache ~models ~metrics ~producer path =
  Trace.with_span ~args:[ ("path", path) ] "store.save" @@ fun () ->
  let entries = Registry.entries registry in
  let gen_of = List.map (fun (name, _, gen, _) -> (name, gen)) entries in
  let current name gen = List.assoc_opt name gen_of = Some gen in
  let graphs =
    List.map
      (fun (g_name, g_spec, g_gen, g_graph) -> { Snapshot.g_name; g_spec; g_gen; g_graph })
      entries
  in
  let colorings =
    Cache.export_colorings cache
    |> List.filter_map (function
         | Cache.E_cr { graph_name; gen; result } ->
             if current graph_name gen then
               Some { Snapshot.c_name = graph_name; c_data = Snapshot.Cr_data result }
             else None
         | Cache.E_kwl { graph_name; gen; k; result } ->
             if current graph_name gen then
               Some { Snapshot.c_name = graph_name; c_data = Snapshot.Kwl_data (k, result) }
             else None)
  in
  let plans = Cache.export_plans cache in
  let model_entries =
    match models with None -> [] | Some ms -> List.map model_to_snapshot (Models.export ms)
  in
  let saved_at = Unix.gettimeofday () in
  let snap =
    {
      Snapshot.producer;
      saved_at;
      graphs;
      colorings;
      plans;
      models = model_entries;
      metrics = Option.map (fun m -> counters_to_snapshot (Metrics.export_counters m)) metrics;
    }
  in
  match Snapshot.write_file path snap with
  | Error _ as e -> e
  | Ok bytes ->
      Ok
        {
          s_graphs = List.length graphs;
          s_colorings = List.length colorings;
          s_plans = List.length plans;
          s_models = List.length model_entries;
          s_bytes = bytes;
          s_saved_at = saved_at;
        }

let restore ~registry ~cache ~models ~metrics path =
  Trace.with_span ~args:[ ("path", path) ] "store.restore" @@ fun () ->
  match Snapshot.read_file path with
  | Error _ as e -> e
  | Ok snap ->
      (* The decode above validated everything; only now touch live state. *)
      let gens =
        List.map
          (fun e ->
            ( e.Snapshot.g_name,
              Registry.register_prebuilt registry ~name:e.Snapshot.g_name
                ~spec:e.Snapshot.g_spec e.Snapshot.g_graph ))
          snap.Snapshot.graphs
      in
      (* Exports are MRU-first; seed in reverse so LRU recency carries
         over into the new process. *)
      let colorings_seeded = ref 0 in
      List.iter
        (fun ce ->
          match List.assoc_opt ce.Snapshot.c_name gens with
          | None -> () (* decode guarantees this cannot happen; belt and braces *)
          | Some gen ->
              incr colorings_seeded;
              (match ce.Snapshot.c_data with
              | Snapshot.Cr_data r -> Cache.seed_cr cache ~graph_name:ce.Snapshot.c_name ~gen r
              | Snapshot.Kwl_data (k, r) ->
                  Cache.seed_kwl cache ~graph_name:ce.Snapshot.c_name ~gen ~k r))
        (List.rev snap.Snapshot.colorings);
      let plans_seeded = ref 0 in
      List.iter
        (fun (key, src) ->
          (* Recompile from source; a plan whose recomputed canonical key
             no longer matches the recorded one was produced by a
             different compiler and is silently skipped. *)
          match Cache.seed_plan cache ~src with
          | Ok key' when key' = key -> incr plans_seeded
          | Ok _ | Error _ -> ())
        (List.rev snap.Snapshot.plans);
      (* Models are rekeyed like colourings: a source that was current at
         save time (its stored generation equals the graph entry's) maps
         to the graph's fresh generation, so a warm restart is not
         spuriously stale; a source that was already stale — or whose
         graph is gone from the snapshot — maps to the -1 sentinel, which
         can never equal a live generation. *)
      let models_seeded = ref 0 in
      (match models with
      | None -> ()
      | Some ms ->
          let saved_gen_of name =
            Option.map
              (fun e -> e.Snapshot.g_gen)
              (List.find_opt (fun e -> e.Snapshot.g_name = name) snap.Snapshot.graphs)
          in
          let rekey (name, gen) =
            match (saved_gen_of name, List.assoc_opt name gens) with
            | Some saved, Some fresh when saved = gen -> (name, fresh)
            | _ -> (name, -1)
          in
          let restored = List.map (model_of_snapshot ~rekey) snap.Snapshot.models in
          models_seeded := List.length restored;
          Models.import ms restored);
      (match (metrics, snap.Snapshot.metrics) with
      | Some m, Some c -> Metrics.absorb m (counters_of_snapshot c)
      | _ -> ());
      let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
      Ok
        {
          s_graphs = List.length snap.Snapshot.graphs;
          s_colorings = !colorings_seeded;
          s_plans = !plans_seeded;
          s_models = !models_seeded;
          s_bytes = bytes;
          s_saved_at = snap.Snapshot.saved_at;
        }
