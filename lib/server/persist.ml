(* Save/restore glue between the live server structures and the pure
   Snapshot codecs. Save only exports colourings whose generation still
   matches the registry binding (anything else is stale by definition);
   restore registers graphs under fresh generations and rekeys the
   colourings accordingly, so generation-based staleness checks keep
   working across process lives. *)

module Snapshot = Glql_store.Snapshot
module Trace = Glql_util.Trace

type summary = {
  s_graphs : int;
  s_colorings : int;
  s_plans : int;
  s_bytes : int;
  s_saved_at : float;
}

let counters_to_snapshot (c : Metrics.counters) =
  {
    Snapshot.m_requests = c.Metrics.c_requests;
    m_errors = c.Metrics.c_errors;
    m_bytes_in = c.Metrics.c_bytes_in;
    m_bytes_out = c.Metrics.c_bytes_out;
    m_by_command = c.Metrics.c_by_command;
  }

let counters_of_snapshot (m : Snapshot.metrics_counters) =
  {
    Metrics.c_requests = m.Snapshot.m_requests;
    c_errors = m.Snapshot.m_errors;
    c_bytes_in = m.Snapshot.m_bytes_in;
    c_bytes_out = m.Snapshot.m_bytes_out;
    c_by_command = m.Snapshot.m_by_command;
  }

let save ~registry ~cache ~metrics ~producer path =
  Trace.with_span ~args:[ ("path", path) ] "store.save" @@ fun () ->
  let entries = Registry.entries registry in
  let gen_of = List.map (fun (name, _, gen, _) -> (name, gen)) entries in
  let current name gen = List.assoc_opt name gen_of = Some gen in
  let graphs =
    List.map
      (fun (g_name, g_spec, g_gen, g_graph) -> { Snapshot.g_name; g_spec; g_gen; g_graph })
      entries
  in
  let colorings =
    Cache.export_colorings cache
    |> List.filter_map (function
         | Cache.E_cr { graph_name; gen; result } ->
             if current graph_name gen then
               Some { Snapshot.c_name = graph_name; c_data = Snapshot.Cr_data result }
             else None
         | Cache.E_kwl { graph_name; gen; k; result } ->
             if current graph_name gen then
               Some { Snapshot.c_name = graph_name; c_data = Snapshot.Kwl_data (k, result) }
             else None)
  in
  let plans = Cache.export_plans cache in
  let saved_at = Unix.gettimeofday () in
  let snap =
    {
      Snapshot.producer;
      saved_at;
      graphs;
      colorings;
      plans;
      metrics = Option.map (fun m -> counters_to_snapshot (Metrics.export_counters m)) metrics;
    }
  in
  match Snapshot.write_file path snap with
  | Error _ as e -> e
  | Ok bytes ->
      Ok
        {
          s_graphs = List.length graphs;
          s_colorings = List.length colorings;
          s_plans = List.length plans;
          s_bytes = bytes;
          s_saved_at = saved_at;
        }

let restore ~registry ~cache ~metrics path =
  Trace.with_span ~args:[ ("path", path) ] "store.restore" @@ fun () ->
  match Snapshot.read_file path with
  | Error _ as e -> e
  | Ok snap ->
      (* The decode above validated everything; only now touch live state. *)
      let gens =
        List.map
          (fun e ->
            ( e.Snapshot.g_name,
              Registry.register_prebuilt registry ~name:e.Snapshot.g_name
                ~spec:e.Snapshot.g_spec e.Snapshot.g_graph ))
          snap.Snapshot.graphs
      in
      (* Exports are MRU-first; seed in reverse so LRU recency carries
         over into the new process. *)
      let colorings_seeded = ref 0 in
      List.iter
        (fun ce ->
          match List.assoc_opt ce.Snapshot.c_name gens with
          | None -> () (* decode guarantees this cannot happen; belt and braces *)
          | Some gen ->
              incr colorings_seeded;
              (match ce.Snapshot.c_data with
              | Snapshot.Cr_data r -> Cache.seed_cr cache ~graph_name:ce.Snapshot.c_name ~gen r
              | Snapshot.Kwl_data (k, r) ->
                  Cache.seed_kwl cache ~graph_name:ce.Snapshot.c_name ~gen ~k r))
        (List.rev snap.Snapshot.colorings);
      let plans_seeded = ref 0 in
      List.iter
        (fun (key, src) ->
          (* Recompile from source; a plan whose recomputed canonical key
             no longer matches the recorded one was produced by a
             different compiler and is silently skipped. *)
          match Cache.seed_plan cache ~src with
          | Ok key' when key' = key -> incr plans_seeded
          | Ok _ | Error _ -> ())
        (List.rev snap.Snapshot.plans);
      (match (metrics, snap.Snapshot.metrics) with
      | Some m, Some c -> Metrics.absorb m (counters_of_snapshot c)
      | _ -> ());
      let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
      Ok
        {
          s_graphs = List.length snap.Snapshot.graphs;
          s_colorings = !colorings_seeded;
          s_plans = !plans_seeded;
          s_bytes = bytes;
          s_saved_at = snap.Snapshot.saved_at;
        }
