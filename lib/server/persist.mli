(** Save/restore between the live server structures (registry, caches,
    metrics) and {!Glql_store.Snapshot} files.

    Invariants: {!save} exports only colourings whose generation still
    matches the current registry binding for their graph name; {!restore}
    validates the whole file first (a malformed snapshot returns [Error]
    with registry, caches and metrics untouched), then registers the
    graphs under {e fresh} generations and seeds the colourings under
    those, so the server's generation-based staleness rules hold across
    restarts. Plans are recompiled from their saved sources; one whose
    recomputed canonical key differs from the recorded key is skipped.
    Both directions run under [store.save] / [store.restore] trace
    spans (plus per-section spans from the codecs). *)

type summary = {
  s_graphs : int;
  s_colorings : int;
  s_plans : int;  (** on restore: plans seeded with matching canonical keys *)
  s_models : int;  (** v6 model registry entries saved / seeded *)
  s_bytes : int;  (** snapshot file size in bytes *)
  s_saved_at : float;  (** Unix time the snapshot was written *)
}

(** Trained models travel with the snapshot when [models] is passed:
    {!save} exports the whole registry; {!restore} rekeys each model's
    source generations to the fresh registry generations when the source
    was current at save time, and to the [-1] never-matching sentinel
    otherwise (so a model already stale at save time stays stale). *)

val save :
  registry:Registry.t ->
  cache:Cache.t ->
  models:Models.t option ->
  metrics:Metrics.t option ->
  producer:string ->
  string ->
  (summary, string) result

val restore :
  registry:Registry.t ->
  cache:Cache.t ->
  models:Models.t option ->
  metrics:Metrics.t option ->
  string ->
  (summary, string) result
