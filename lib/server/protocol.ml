(* Text protocol of glqld. Requests are one line each; the tokenizer
   honours single and double quotes so GEL expressions (which contain
   blanks and parentheses) travel as one argument. Replies are one line:
   "OK <json>" or "ERR <json-object>". Keeping the framing line-based
   makes the protocol usable from netcat and trivial to parse in tests. *)

(* Wire-format revision. Bump whenever the reply shapes or the command
   set change incompatibly; clients compare it in the HELLO reply.
   v1: initial protocol. v2: EXPLAIN/VERSION commands, TRACE option,
   protocol_version + stage histograms in STATS. v3: SAVE/RESTORE
   commands and the "restored" section in STATS. v4: ERR replies carry a
   machine-readable {"code","message"} object instead of a bare string
   (resource-governance limits need errors clients can branch on).
   v5: the MUTATE command family — batched ADD_EDGES / DEL_EDGES /
   SET_LABEL applied atomically with a generation bump; every v4
   read-path reply is byte-unchanged. *)
let protocol_version = 5

(* The JSON tree lives in Glql_util.Json so bench, metrics and trace
   output share one printer; the aliased constructors keep P.Obj /
   P.Str call sites working unchanged. *)
type json = Glql_util.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let json_to_string = Glql_util.Json.to_string

let ok j = "OK " ^ json_to_string j

(* Machine-readable errors (v4): every ERR line carries a stable
   ERR_*-code so clients and the fault harness can branch on the failure
   class without scraping prose. The codes in use:

     ERR_PARSE           malformed request line (tokenizer / grammar)
     ERR_BAD_ARG         argument out of its accepted range
     ERR_UNKNOWN_GRAPH   graph name not registered and not a spec
     ERR_BAD_SPEC        graph spec rejected (syntax or size caps)
     ERR_QUERY           GEL parse/type error
     ERR_LIMIT_CELLS     --max-cells table guard
     ERR_LIMIT_COST      estimated kernel cost over the cell budget
     ERR_LIMIT_LINE      request line over --max-line-bytes
     ERR_LIMIT_INBUF     connection buffered too many bytes, no newline
     ERR_LIMIT_CONNS     connection-count cap reached
     ERR_DEADLINE        per-request --timeout deadline passed
     ERR_SNAPSHOT        SAVE/RESTORE failure
     ERR_INTERNAL        unexpected exception *)
type error = { code : string; message : string }

let error ~code message = { code; message }

let err_line e = "ERR " ^ json_to_string (Obj [ ("code", Str e.code); ("message", Str e.message) ])

(* Legacy helper: an ERR line with no more specific classification. *)
let err msg = err_line (error ~code:"ERR_INTERNAL" msg)

(* Exactly "OK" or "OK <json>" — a reply like "OKRA" is not a success,
   and clients exit nonzero on anything else. *)
let is_ok line =
  line = "OK" || (String.length line >= 3 && String.sub line 0 3 = "OK ")

(* One mutation op inside a MUTATE batch (v5). *)
type mutation =
  | M_add_edge of int * int
  | M_del_edge of int * int
  | M_set_label of int * float array

type request =
  | Hello
  | Ping
  | Version
  | Load of string * string
  | Graphs
  | Generators
  | Query of string * string
  | Explain of string * string
  | Wl of string * int option
  | Kwl of string * int
  | Hom of string * int
  | Mutate of string * mutation list
  | Save of string option
  | Restore of string option
  | Stats
  | Quit
  | Shutdown

type parsed = { req : request; traced : bool }

let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let buf = Buffer.create 32 in
  let in_token = ref false in
  let flush_token () =
    if !in_token then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf;
      in_token := false
    end
  in
  let rec go i =
    if i >= n then begin
      flush_token ();
      Ok (List.rev !tokens)
    end
    else
      match line.[i] with
      | ' ' | '\t' | '\r' ->
          flush_token ();
          go (i + 1)
      | ('\'' | '"') as q -> in_quote q (i + 1)
      | c ->
          in_token := true;
          Buffer.add_char buf c;
          go (i + 1)
  and in_quote q i =
    if i >= n then Error "unbalanced quote"
    else if line.[i] = q then begin
      (* A quoted span always yields a token, even when empty. *)
      in_token := true;
      go (i + 1)
    end
    else begin
      Buffer.add_char buf line.[i];
      in_quote q (i + 1)
    end
  in
  go 0

let int_arg name s =
  match int_of_string_opt s with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let mutate_usage =
  "usage: MUTATE <graph> { ADD_EDGES <u> <v> ... | DEL_EDGES <u> <v> ... | \
   SET_LABEL <v> <float> ... } ..."

(* Parse the op tokens of a MUTATE batch: a sequence of sections, each
   opened by a (case-insensitive) keyword — ADD_EDGES / DEL_EDGES take
   vertex pairs, SET_LABEL takes a vertex and its full replacement label
   vector. Sections may repeat; the batch must contain at least one op.
   Shared with the offline clients' scriptable --mutate syntax. *)
let parse_mutations tokens =
  let keyword t =
    match String.uppercase_ascii t with
    | ("ADD_EDGES" | "DEL_EDGES" | "SET_LABEL") as k -> Some k
    | _ -> None
  in
  let take_section tokens =
    let rec go acc = function
      | t :: _ as rest when keyword t <> None -> (List.rev acc, rest)
      | t :: rest -> go (t :: acc) rest
      | [] -> (List.rev acc, [])
    in
    go [] tokens
  in
  let rec ints name acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
        match int_arg name t with
        | Ok k -> ints name (k :: acc) rest
        | Error e -> Error e)
  in
  let rec floats name acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
        match float_of_string_opt t with
        | Some f -> floats name (f :: acc) rest
        | None -> Error (Printf.sprintf "%s: expected a float, got %S" name t))
  in
  let rec pair_up mk acc = function
    | u :: v :: rest -> pair_up mk (mk u v :: acc) rest
    | _ -> List.rev acc (* even length checked by the caller *)
  in
  let rec sections acc tokens =
    match tokens with
    | [] ->
        if acc = [] then Error "MUTATE: at least one mutation op required"
        else Ok (List.rev acc)
    | kw :: rest -> (
        match keyword kw with
        | None -> Error (Printf.sprintf "MUTATE: expected a section keyword, got %S" kw)
        | Some k -> (
            let body, remaining = take_section rest in
            match k with
            | "ADD_EDGES" | "DEL_EDGES" -> (
                let mk =
                  if k = "ADD_EDGES" then fun u v -> M_add_edge (u, v)
                  else fun u v -> M_del_edge (u, v)
                in
                if body = [] then Error (k ^ ": expected vertex pairs")
                else if List.length body mod 2 <> 0 then
                  Error (k ^ ": odd number of vertex tokens")
                else
                  match ints k [] body with
                  | Error e -> Error e
                  | Ok vs -> sections (List.rev_append (pair_up mk [] vs) acc) remaining)
            | _ -> (
                (* SET_LABEL *)
                match body with
                | v :: (_ :: _ as fs) -> (
                    match int_arg "SET_LABEL vertex" v with
                    | Error e -> Error e
                    | Ok vtx -> (
                        match floats "SET_LABEL value" [] fs with
                        | Error e -> Error e
                        | Ok fl ->
                            sections (M_set_label (vtx, Array.of_list fl) :: acc) remaining))
                | _ -> Error "SET_LABEL: expected <vertex> <float> ...")))
  in
  sections [] tokens

(* A trailing bare TRACE token on any command asks for the per-request
   span breakdown in the reply; it is an option, not an argument, so it
   is stripped before command dispatch. *)
let split_trace args =
  match List.rev args with
  | last :: rest when String.uppercase_ascii last = "TRACE" -> (List.rev rest, true)
  | _ -> (args, false)

let parse_request line =
  match tokenize line with
  | Error e -> Error e
  | Ok [] -> Error "empty request"
  | Ok (cmd :: args) ->
      let args, traced = split_trace args in
      let with_trace = Result.map (fun req -> { req; traced }) in
      with_trace
        (match (String.uppercase_ascii cmd, args) with
        | "HELLO", [] -> Ok Hello
        | "PING", [] -> Ok Ping
        | "VERSION", [] -> Ok Version
        | "LOAD", [ name; spec ] -> Ok (Load (name, spec))
        | "LOAD", _ -> Error "usage: LOAD <name> <graph-spec>"
        | "GRAPHS", [] -> Ok Graphs
        | "GENERATORS", [] -> Ok Generators
        | "QUERY", [ graph; src ] -> Ok (Query (graph, src))
        | "QUERY", _ -> Error "usage: QUERY <graph> '<gel-expression>'"
        | "EXPLAIN", [ graph; src ] -> Ok (Explain (graph, src))
        | "EXPLAIN", _ -> Error "usage: EXPLAIN <graph> '<gel-expression>'"
        | "WL", [ graph ] -> Ok (Wl (graph, None))
        | "WL", [ graph; rounds ] ->
            Result.map (fun r -> Wl (graph, Some r)) (int_arg "rounds" rounds)
        | "WL", _ -> Error "usage: WL <graph> [rounds]"
        | "KWL", [ graph; k ] -> Result.map (fun k -> Kwl (graph, k)) (int_arg "k" k)
        | "KWL", _ -> Error "usage: KWL <graph> <k>"
        | "HOM", [ graph; size ] ->
            Result.map (fun s -> Hom (graph, s)) (int_arg "max-tree-size" size)
        | "HOM", _ -> Error "usage: HOM <graph> <max-tree-size>"
        | "MUTATE", graph :: (_ :: _ as ops) ->
            Result.map (fun ms -> Mutate (graph, ms)) (parse_mutations ops)
        | "MUTATE", _ -> Error mutate_usage
        | "SAVE", [] -> Ok (Save None)
        | "SAVE", [ path ] -> Ok (Save (Some path))
        | "SAVE", _ -> Error "usage: SAVE [path]"
        | "RESTORE", [] -> Ok (Restore None)
        | "RESTORE", [ path ] -> Ok (Restore (Some path))
        | "RESTORE", _ -> Error "usage: RESTORE [path]"
        | "STATS", [] -> Ok Stats
        | "QUIT", [] -> Ok Quit
        | "SHUTDOWN", [] -> Ok Shutdown
        | c, _ -> Error (Printf.sprintf "unknown command %S" c))

let command_name = function
  | Hello -> "HELLO"
  | Ping -> "PING"
  | Version -> "VERSION"
  | Load _ -> "LOAD"
  | Graphs -> "GRAPHS"
  | Generators -> "GENERATORS"
  | Query _ -> "QUERY"
  | Explain _ -> "EXPLAIN"
  | Wl _ -> "WL"
  | Kwl _ -> "KWL"
  | Hom _ -> "HOM"
  | Mutate _ -> "MUTATE"
  | Save _ -> "SAVE"
  | Restore _ -> "RESTORE"
  | Stats -> "STATS"
  | Quit -> "QUIT"
  | Shutdown -> "SHUTDOWN"
