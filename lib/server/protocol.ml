(* Text protocol of glqld. Requests are one line each; the tokenizer
   honours single and double quotes so GEL expressions (which contain
   blanks and parentheses) travel as one argument. Replies are one line:
   "OK <json>" or "ERR <json-object>". Keeping the framing line-based
   makes the protocol usable from netcat and trivial to parse in tests. *)

(* Wire-format revision. Bump whenever the reply shapes or the command
   set change incompatibly; clients compare it in the HELLO reply.
   v1: initial protocol. v2: EXPLAIN/VERSION commands, TRACE option,
   protocol_version + stage histograms in STATS. v3: SAVE/RESTORE
   commands and the "restored" section in STATS. v4: ERR replies carry a
   machine-readable {"code","message"} object instead of a bare string
   (resource-governance limits need errors clients can branch on).
   v5: the MUTATE command family — batched ADD_EDGES / DEL_EDGES /
   SET_LABEL applied atomically with a generation bump; every v4
   read-path reply is byte-unchanged.
   v6: model serving — FEATURIZE / TRAIN / PREDICT / MODELS, backed by a
   server-side feature-recipe evaluator and a persisted model registry;
   the v5 reply grammar is byte-unchanged, three error codes are added
   (ERR_UNKNOWN_MODEL, ERR_BAD_RECIPE, ERR_SCHEMA_MISMATCH).
   Still v6 (additive): the batched "PREDICT <model> ON g1,g2,..." form
   and the "unseen" field in PREDICT replies — single-graph PREDICT
   lines and their replies are byte-unchanged apart from that
   deterministic field. *)
let protocol_version = 6

(* The JSON tree lives in Glql_util.Json so bench, metrics and trace
   output share one printer; the aliased constructors keep P.Obj /
   P.Str call sites working unchanged. *)
type json = Glql_util.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let json_to_string = Glql_util.Json.to_string

let ok j = "OK " ^ json_to_string j

(* Machine-readable errors (v4): every ERR line carries a stable
   ERR_*-code so clients and the fault harness can branch on the failure
   class without scraping prose. The codes in use:

     ERR_PARSE           malformed request line (tokenizer / grammar)
     ERR_BAD_ARG         argument out of its accepted range
     ERR_UNKNOWN_GRAPH   graph name not registered and not a spec
     ERR_BAD_SPEC        graph spec rejected (syntax or size caps)
     ERR_QUERY           GEL parse/type error
     ERR_LIMIT_CELLS     --max-cells table guard
     ERR_LIMIT_COST      estimated kernel cost over the cell budget
     ERR_LIMIT_LINE      request line over --max-line-bytes
     ERR_LIMIT_INBUF     connection buffered too many bytes, no newline
     ERR_LIMIT_CONNS     connection-count cap reached
     ERR_DEADLINE        per-request --timeout deadline passed
     ERR_SNAPSHOT        SAVE/RESTORE failure
     ERR_UNKNOWN_MODEL   model name not in the model registry (v6)
     ERR_BAD_RECIPE      feature recipe rejected (syntax or mode) (v6)
     ERR_SCHEMA_MISMATCH features no longer match a model's schema (v6)
     ERR_INTERNAL        unexpected exception *)
type error = { code : string; message : string }

let error ~code message = { code; message }

let err_line e = "ERR " ^ json_to_string (Obj [ ("code", Str e.code); ("message", Str e.message) ])

(* Legacy helper: an ERR line with no more specific classification. *)
let err msg = err_line (error ~code:"ERR_INTERNAL" msg)

(* Exactly "OK" or "OK <json>" — a reply like "OKRA" is not a success,
   and clients exit nonzero on anything else. *)
let is_ok line =
  line = "OK" || (String.length line >= 3 && String.sub line 0 3 = "OK ")

(* One mutation op inside a MUTATE batch (v5). *)
type mutation =
  | M_add_edge of int * int
  | M_del_edge of int * int
  | M_set_label of int * float array

(* Featurization scope (v6): one row per vertex, or one summary row for
   the whole graph. *)
type feat_mode = Fm_vertex | Fm_graph

(* A parsed TRAIN command (v6). [t_mode = None] means auto: vertex mode
   for a single source graph, graph mode for several. *)
type train_spec = {
  t_model : string;
  t_graphs : string list;
  t_recipe : string;
  t_target : string;
  t_mode : feat_mode option;
  t_epochs : int option;
  t_lr : float option;
  t_seed : int option;
  t_split : float option;
}

type request =
  | Hello
  | Ping
  | Version
  | Load of string * string
  | Graphs
  | Generators
  | Query of string * string
  | Explain of string * string
  | Wl of string * int option
  | Kwl of string * int
  | Hom of string * int
  | Mutate of string * mutation list
  | Featurize of string * string * feat_mode
  | Train of train_spec
  | Predict of string * string * int list
  | Predict_batch of string * string list  (* PREDICT <model> ON g1,g2,... *)
  | Models
  | Save of string option
  | Restore of string option
  | Stats
  | Quit
  | Shutdown

type parsed = { req : request; traced : bool }

let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let buf = Buffer.create 32 in
  let in_token = ref false in
  let flush_token () =
    if !in_token then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf;
      in_token := false
    end
  in
  let rec go i =
    if i >= n then begin
      flush_token ();
      Ok (List.rev !tokens)
    end
    else
      match line.[i] with
      | ' ' | '\t' | '\r' ->
          flush_token ();
          go (i + 1)
      | ('\'' | '"') as q -> in_quote q (i + 1)
      | c ->
          in_token := true;
          Buffer.add_char buf c;
          go (i + 1)
  and in_quote q i =
    if i >= n then Error "unbalanced quote"
    else if line.[i] = q then begin
      (* A quoted span always yields a token, even when empty. *)
      in_token := true;
      go (i + 1)
    end
    else begin
      Buffer.add_char buf line.[i];
      in_quote q (i + 1)
    end
  in
  go 0

let int_arg name s =
  match int_of_string_opt s with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let mutate_usage =
  "usage: MUTATE <graph> { ADD_EDGES <u> <v> ... | DEL_EDGES <u> <v> ... | \
   SET_LABEL <v> <float> ... } ..."

(* Parse the op tokens of a MUTATE batch: a sequence of sections, each
   opened by a (case-insensitive) keyword — ADD_EDGES / DEL_EDGES take
   vertex pairs, SET_LABEL takes a vertex and its full replacement label
   vector. Sections may repeat; the batch must contain at least one op.
   Shared with the offline clients' scriptable --mutate syntax. *)
let parse_mutations tokens =
  let keyword t =
    match String.uppercase_ascii t with
    | ("ADD_EDGES" | "DEL_EDGES" | "SET_LABEL") as k -> Some k
    | _ -> None
  in
  let take_section tokens =
    let rec go acc = function
      | t :: _ as rest when keyword t <> None -> (List.rev acc, rest)
      | t :: rest -> go (t :: acc) rest
      | [] -> (List.rev acc, [])
    in
    go [] tokens
  in
  let rec ints name acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
        match int_arg name t with
        | Ok k -> ints name (k :: acc) rest
        | Error e -> Error e)
  in
  let rec floats name acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
        match float_of_string_opt t with
        | Some f -> floats name (f :: acc) rest
        | None -> Error (Printf.sprintf "%s: expected a float, got %S" name t))
  in
  let rec pair_up mk acc = function
    | u :: v :: rest -> pair_up mk (mk u v :: acc) rest
    | _ -> List.rev acc (* even length checked by the caller *)
  in
  let rec sections acc tokens =
    match tokens with
    | [] ->
        if acc = [] then Error "MUTATE: at least one mutation op required"
        else Ok (List.rev acc)
    | kw :: rest -> (
        match keyword kw with
        | None -> Error (Printf.sprintf "MUTATE: expected a section keyword, got %S" kw)
        | Some k -> (
            let body, remaining = take_section rest in
            match k with
            | "ADD_EDGES" | "DEL_EDGES" -> (
                let mk =
                  if k = "ADD_EDGES" then fun u v -> M_add_edge (u, v)
                  else fun u v -> M_del_edge (u, v)
                in
                if body = [] then Error (k ^ ": expected vertex pairs")
                else if List.length body mod 2 <> 0 then
                  Error (k ^ ": odd number of vertex tokens")
                else
                  match ints k [] body with
                  | Error e -> Error e
                  | Ok vs -> sections (List.rev_append (pair_up mk [] vs) acc) remaining)
            | _ -> (
                (* SET_LABEL *)
                match body with
                | v :: (_ :: _ as fs) -> (
                    match int_arg "SET_LABEL vertex" v with
                    | Error e -> Error e
                    | Ok vtx -> (
                        match floats "SET_LABEL value" [] fs with
                        | Error e -> Error e
                        | Ok fl ->
                            sections (M_set_label (vtx, Array.of_list fl) :: acc) remaining))
                | _ -> Error "SET_LABEL: expected <vertex> <float> ...")))
  in
  sections [] tokens

let feat_mode_of_token t =
  match String.uppercase_ascii t with
  | "VERTEX" -> Ok Fm_vertex
  | "GRAPH" -> Ok Fm_graph
  | _ -> Error (Printf.sprintf "expected VERTEX or GRAPH, got %S" t)

let feat_mode_name = function Fm_vertex -> "vertex" | Fm_graph -> "graph"

let train_usage =
  "usage: TRAIN <model> ON <graph>[,<graph>...] WITH '<recipe>' TARGET \
   '<gel-expression>' [MODE VERTEX|GRAPH] [EPOCHS <n>] [LR <f>] [SEED <n>] \
   [SPLIT <f>]"

(* Parse the tokens of a TRAIN command after the model name: a sequence
   of (case-insensitive) keyword/value sections, same style as
   parse_mutations. ON and WITH and TARGET are mandatory; the option
   sections may appear in any order but at most once each. *)
let parse_train model tokens =
  let split_on_comma s = String.split_on_char ',' s |> List.filter (fun x -> x <> "") in
  let rec go spec = function
    | [] ->
        if spec.t_graphs = [] then Error "TRAIN: missing ON <graph> section"
        else if spec.t_recipe = "" then Error "TRAIN: missing WITH '<recipe>' section"
        else if spec.t_target = "" then Error "TRAIN: missing TARGET '<gel-expression>' section"
        else Ok spec
    | kw :: value :: rest -> (
        match String.uppercase_ascii kw with
        | "ON" ->
            let graphs = split_on_comma value in
            if graphs = [] then Error "TRAIN ON: expected at least one graph name"
            else go { spec with t_graphs = graphs } rest
        | "WITH" -> go { spec with t_recipe = value } rest
        | "TARGET" -> go { spec with t_target = value } rest
        | "MODE" ->
            Result.bind (feat_mode_of_token value) (fun m ->
                go { spec with t_mode = Some m } rest)
        | "EPOCHS" ->
            Result.bind (int_arg "EPOCHS" value) (fun n ->
                if n < 1 then Error "EPOCHS: must be >= 1"
                else go { spec with t_epochs = Some n } rest)
        | "SEED" ->
            Result.bind (int_arg "SEED" value) (fun n -> go { spec with t_seed = Some n } rest)
        | "LR" -> (
            match float_of_string_opt value with
            | Some f when f > 0.0 -> go { spec with t_lr = Some f } rest
            | _ -> Error (Printf.sprintf "LR: expected a positive float, got %S" value))
        | "SPLIT" -> (
            match float_of_string_opt value with
            | Some f when f > 0.0 && f <= 1.0 -> go { spec with t_split = Some f } rest
            | _ -> Error (Printf.sprintf "SPLIT: expected a fraction in (0,1], got %S" value))
        | _ -> Error (Printf.sprintf "TRAIN: unknown section keyword %S" kw))
    | [ kw ] -> Error (Printf.sprintf "TRAIN: section %S is missing its value" kw)
  in
  go
    {
      t_model = model;
      t_graphs = [];
      t_recipe = "";
      t_target = "";
      t_mode = None;
      t_epochs = None;
      t_lr = None;
      t_seed = None;
      t_split = None;
    }
    tokens

(* A trailing bare TRACE token on any command asks for the per-request
   span breakdown in the reply; it is an option, not an argument, so it
   is stripped before command dispatch. *)
let split_trace args =
  match List.rev args with
  | last :: rest when String.uppercase_ascii last = "TRACE" -> (List.rev rest, true)
  | _ -> (args, false)

let parse_request line =
  match tokenize line with
  | Error e -> Error e
  | Ok [] -> Error "empty request"
  | Ok (cmd :: args) ->
      let args, traced = split_trace args in
      let with_trace = Result.map (fun req -> { req; traced }) in
      with_trace
        (match (String.uppercase_ascii cmd, args) with
        | "HELLO", [] -> Ok Hello
        | "PING", [] -> Ok Ping
        | "VERSION", [] -> Ok Version
        | "LOAD", [ name; spec ] -> Ok (Load (name, spec))
        | "LOAD", _ -> Error "usage: LOAD <name> <graph-spec>"
        | "GRAPHS", [] -> Ok Graphs
        | "GENERATORS", [] -> Ok Generators
        | "QUERY", [ graph; src ] -> Ok (Query (graph, src))
        | "QUERY", _ -> Error "usage: QUERY <graph> '<gel-expression>'"
        | "EXPLAIN", [ graph; src ] -> Ok (Explain (graph, src))
        | "EXPLAIN", _ -> Error "usage: EXPLAIN <graph> '<gel-expression>'"
        | "WL", [ graph ] -> Ok (Wl (graph, None))
        | "WL", [ graph; rounds ] ->
            Result.map (fun r -> Wl (graph, Some r)) (int_arg "rounds" rounds)
        | "WL", _ -> Error "usage: WL <graph> [rounds]"
        | "KWL", [ graph; k ] -> Result.map (fun k -> Kwl (graph, k)) (int_arg "k" k)
        | "KWL", _ -> Error "usage: KWL <graph> <k>"
        | "HOM", [ graph; size ] ->
            Result.map (fun s -> Hom (graph, s)) (int_arg "max-tree-size" size)
        | "HOM", _ -> Error "usage: HOM <graph> <max-tree-size>"
        | "MUTATE", graph :: (_ :: _ as ops) ->
            Result.map (fun ms -> Mutate (graph, ms)) (parse_mutations ops)
        | "MUTATE", _ -> Error mutate_usage
        | "FEATURIZE", [ graph; recipe ] -> Ok (Featurize (graph, recipe, Fm_vertex))
        | "FEATURIZE", [ graph; recipe; mode ] ->
            Result.map (fun m -> Featurize (graph, recipe, m)) (feat_mode_of_token mode)
        | "FEATURIZE", _ -> Error "usage: FEATURIZE <graph> '<recipe>' [VERTEX|GRAPH]"
        | "TRAIN", model :: (_ :: _ as rest) -> Result.map (fun s -> Train s) (parse_train model rest)
        | "TRAIN", _ -> Error train_usage
        | "PREDICT", [ model; on; graphs ] when String.uppercase_ascii on = "ON" -> (
            (* Batched corpus form: one reply with a per-graph payload
               list, same order as the (comma-separated) graph list. *)
            match String.split_on_char ',' graphs |> List.filter (fun g -> g <> "") with
            | [] -> Error "PREDICT ON: expected at least one graph name"
            | gs -> Ok (Predict_batch (model, gs)))
        | "PREDICT", _ :: on :: _ when String.uppercase_ascii on = "ON" ->
            Error "usage: PREDICT <model> ON <graph>[,<graph>...]"
        | "PREDICT", model :: graph :: vertices -> (
            let rec ints acc = function
              | [] -> Ok (List.rev acc)
              | t :: rest -> Result.bind (int_arg "vertex" t) (fun v -> ints (v :: acc) rest)
            in
            match ints [] vertices with
            | Ok vs -> Ok (Predict (model, graph, vs))
            | Error e -> Error e)
        | "PREDICT", _ ->
            Error "usage: PREDICT <model> <graph> [vertex ...] | PREDICT <model> ON <graph>[,...]"
        | "MODELS", [] -> Ok Models
        | "SAVE", [] -> Ok (Save None)
        | "SAVE", [ path ] -> Ok (Save (Some path))
        | "SAVE", _ -> Error "usage: SAVE [path]"
        | "RESTORE", [] -> Ok (Restore None)
        | "RESTORE", [ path ] -> Ok (Restore (Some path))
        | "RESTORE", _ -> Error "usage: RESTORE [path]"
        | "STATS", [] -> Ok Stats
        | "QUIT", [] -> Ok Quit
        | "SHUTDOWN", [] -> Ok Shutdown
        | c, _ -> Error (Printf.sprintf "unknown command %S" c))

let command_name = function
  | Hello -> "HELLO"
  | Ping -> "PING"
  | Version -> "VERSION"
  | Load _ -> "LOAD"
  | Graphs -> "GRAPHS"
  | Generators -> "GENERATORS"
  | Query _ -> "QUERY"
  | Explain _ -> "EXPLAIN"
  | Wl _ -> "WL"
  | Kwl _ -> "KWL"
  | Hom _ -> "HOM"
  | Mutate _ -> "MUTATE"
  | Featurize _ -> "FEATURIZE"
  | Train _ -> "TRAIN"
  | Predict _ | Predict_batch _ -> "PREDICT"
  | Models -> "MODELS"
  | Save _ -> "SAVE"
  | Restore _ -> "RESTORE"
  | Stats -> "STATS"
  | Quit -> "QUIT"
  | Shutdown -> "SHUTDOWN"
