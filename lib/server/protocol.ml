(* Text protocol of glqld. Requests are one line each; the tokenizer
   honours single and double quotes so GEL expressions (which contain
   blanks and parentheses) travel as one argument. Replies are one line:
   "OK <json>" or "ERR <json-string>". Keeping the framing line-based
   makes the protocol usable from netcat and trivial to parse in tests. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let json_to_string j =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_nan f then Buffer.add_string buf "null"
        else if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s -> escape_to buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_to buf k;
            Buffer.add_char buf ':';
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

let ok j = "OK " ^ json_to_string j

let err msg = "ERR " ^ json_to_string (Str msg)

let is_ok line = String.length line >= 2 && String.sub line 0 2 = "OK"

type request =
  | Hello
  | Ping
  | Load of string * string
  | Graphs
  | Generators
  | Query of string * string
  | Wl of string * int option
  | Kwl of string * int
  | Hom of string * int
  | Stats
  | Quit
  | Shutdown

let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let buf = Buffer.create 32 in
  let in_token = ref false in
  let flush_token () =
    if !in_token then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf;
      in_token := false
    end
  in
  let rec go i =
    if i >= n then begin
      flush_token ();
      Ok (List.rev !tokens)
    end
    else
      match line.[i] with
      | ' ' | '\t' | '\r' ->
          flush_token ();
          go (i + 1)
      | ('\'' | '"') as q -> in_quote q (i + 1)
      | c ->
          in_token := true;
          Buffer.add_char buf c;
          go (i + 1)
  and in_quote q i =
    if i >= n then Error "unbalanced quote"
    else if line.[i] = q then begin
      (* A quoted span always yields a token, even when empty. *)
      in_token := true;
      go (i + 1)
    end
    else begin
      Buffer.add_char buf line.[i];
      in_quote q (i + 1)
    end
  in
  go 0

let int_arg name s =
  match int_of_string_opt s with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let parse_request line =
  match tokenize line with
  | Error e -> Error e
  | Ok [] -> Error "empty request"
  | Ok (cmd :: args) -> (
      match (String.uppercase_ascii cmd, args) with
      | "HELLO", [] -> Ok Hello
      | "PING", [] -> Ok Ping
      | "LOAD", [ name; spec ] -> Ok (Load (name, spec))
      | "LOAD", _ -> Error "usage: LOAD <name> <graph-spec>"
      | "GRAPHS", [] -> Ok Graphs
      | "GENERATORS", [] -> Ok Generators
      | "QUERY", [ graph; src ] -> Ok (Query (graph, src))
      | "QUERY", _ -> Error "usage: QUERY <graph> '<gel-expression>'"
      | "WL", [ graph ] -> Ok (Wl (graph, None))
      | "WL", [ graph; rounds ] ->
          Result.map (fun r -> Wl (graph, Some r)) (int_arg "rounds" rounds)
      | "WL", _ -> Error "usage: WL <graph> [rounds]"
      | "KWL", [ graph; k ] -> Result.map (fun k -> Kwl (graph, k)) (int_arg "k" k)
      | "KWL", _ -> Error "usage: KWL <graph> <k>"
      | "HOM", [ graph; size ] -> Result.map (fun s -> Hom (graph, s)) (int_arg "max-tree-size" size)
      | "HOM", _ -> Error "usage: HOM <graph> <max-tree-size>"
      | "STATS", [] -> Ok Stats
      | "QUIT", [] -> Ok Quit
      | "SHUTDOWN", [] -> Ok Shutdown
      | c, _ -> Error (Printf.sprintf "unknown command %S" c))

let command_name = function
  | Hello -> "HELLO"
  | Ping -> "PING"
  | Load _ -> "LOAD"
  | Graphs -> "GRAPHS"
  | Generators -> "GENERATORS"
  | Query _ -> "QUERY"
  | Wl _ -> "WL"
  | Kwl _ -> "KWL"
  | Hom _ -> "HOM"
  | Stats -> "STATS"
  | Quit -> "QUIT"
  | Shutdown -> "SHUTDOWN"
