(** Wire protocol of [glqld]: newline-delimited text requests, one-line
    JSON-tagged replies.

    Request grammar (tokens split on blanks; single or double quotes group
    a token containing blanks, so GEL expressions travel quoted):

    {v
    HELLO
    PING
    LOAD <name> <graph-spec>
    GRAPHS
    GENERATORS
    QUERY <graph> '<gel-expression>'
    WL <graph> [rounds]
    KWL <graph> <k>
    HOM <graph> <max-tree-size>
    STATS
    QUIT
    SHUTDOWN
    v}

    Command words are case-insensitive. Replies are a single line: either
    [OK <json>] or [ERR "<message>"]. *)

(** Minimal JSON tree, rendered on one line. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string

(** [OK <json>] reply line (no trailing newline). *)
val ok : json -> string

(** [ERR "<message>"] reply line (no trailing newline). *)
val err : string -> string

(** Is this reply line an [OK]? *)
val is_ok : string -> bool

type request =
  | Hello
  | Ping
  | Load of string * string  (** name, graph spec *)
  | Graphs
  | Generators
  | Query of string * string  (** graph name, GEL source *)
  | Wl of string * int option  (** graph name, max rounds *)
  | Kwl of string * int  (** graph name, k *)
  | Hom of string * int  (** graph name, max tree size *)
  | Stats
  | Quit
  | Shutdown

(** Split a raw line into tokens, honouring quotes. [Error] on unbalanced
    quotes. *)
val tokenize : string -> (string list, string) result

(** Parse one request line; never raises. *)
val parse_request : string -> (request, string) result

(** The command word of a request, for metrics labels. *)
val command_name : request -> string
