(** Wire protocol of [glqld]: newline-delimited text requests, one-line
    JSON-tagged replies.

    Request grammar (tokens split on blanks; single or double quotes group
    a token containing blanks, so GEL expressions travel quoted):

    {v
    HELLO
    PING
    VERSION
    LOAD <name> <graph-spec>
    GRAPHS
    GENERATORS
    QUERY <graph> '<gel-expression>'
    EXPLAIN <graph> '<gel-expression>'
    WL <graph> [rounds]
    KWL <graph> <k>
    HOM <graph> <max-tree-size>
    MUTATE <graph> { ADD_EDGES <u> <v> ... | DEL_EDGES <u> <v> ... | SET_LABEL <v> <float> ... } ...
    FEATURIZE <graph> '<recipe>' [VERTEX|GRAPH]
    TRAIN <model> ON <graph>[,<graph>...] WITH '<recipe>' TARGET '<gel>' [MODE VERTEX|GRAPH] [EPOCHS <n>] [LR <f>] [SEED <n>] [SPLIT <f>]
    PREDICT <model> <graph> [vertex ...]
    PREDICT <model> ON <graph>[,<graph>...]
    MODELS
    SAVE [path]
    RESTORE [path]
    STATS
    QUIT
    SHUTDOWN
    v}

    Command words are case-insensitive. Any command may carry a trailing
    bare [TRACE] token, which asks the server to attach the per-request
    span breakdown to the reply. Replies are a single line: either
    [OK <json>] or (since v4) [ERR {"code":"ERR_*","message":"..."}],
    where the code is a stable machine-readable classification of the
    failure (see {!error}). *)

(** Wire-format revision, reported by HELLO/VERSION/STATS. *)
val protocol_version : int

(** Minimal JSON tree, rendered on one line. An alias of
    {!Glql_util.Json.t} so server replies, metrics dumps, bench output and
    trace files share one printer. *)
type json = Glql_util.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string

(** [OK <json>] reply line (no trailing newline). *)
val ok : json -> string

(** A classified failure: [code] is one of the stable [ERR_*] codes
    (ERR_PARSE, ERR_BAD_ARG, ERR_UNKNOWN_GRAPH, ERR_BAD_SPEC, ERR_QUERY,
    ERR_LIMIT_CELLS, ERR_LIMIT_COST, ERR_LIMIT_LINE, ERR_LIMIT_INBUF,
    ERR_LIMIT_CONNS, ERR_DEADLINE, ERR_SNAPSHOT, ERR_SHARD_DOWN,
    ERR_UNKNOWN_MODEL, ERR_BAD_RECIPE, ERR_SCHEMA_MISMATCH,
    ERR_INTERNAL) and [message] is human-readable prose.

    [ERR_SHARD_DOWN] is emitted only by the sharded router front
    ({!Router}): the worker owning the named graph's shard is dead or
    still (re)connecting, while other shards keep serving. The code —
    like the rest of the v4 reply grammar — is unchanged in v5: a
    single-process glqld simply never has a shard to lose.

    v6 adds the model-serving codes: [ERR_UNKNOWN_MODEL] (PREDICT on a
    name the model registry does not hold), [ERR_BAD_RECIPE] (a feature
    recipe that fails to parse or whose columns are illegal for the
    requested mode), and [ERR_SCHEMA_MISMATCH] (a model applied to a
    graph whose featurization no longer produces the schema the model
    was trained on — e.g. a WL one-hot whose class count changed). *)
type error = { code : string; message : string }

val error : code:string -> string -> error

(** [ERR {"code":...,"message":...}] reply line (no trailing newline). *)
val err_line : error -> string

(** [err msg] is [err_line] with code [ERR_INTERNAL] — the pre-v4 entry
    point, kept for callers with no finer classification. *)
val err : string -> string

(** Is this reply line an [OK]? *)
val is_ok : string -> bool

(** One mutation op of a v5 MUTATE batch. [M_set_label] carries the full
    replacement label vector of the vertex. *)
type mutation =
  | M_add_edge of int * int
  | M_del_edge of int * int
  | M_set_label of int * float array

(** Featurization scope (v6): one feature row per vertex, or one summary
    row for the whole graph. *)
type feat_mode = Fm_vertex | Fm_graph

val feat_mode_of_token : string -> (feat_mode, string) result
val feat_mode_name : feat_mode -> string

(** A parsed TRAIN command (v6). [t_mode = None] means auto: vertex mode
    when [t_graphs] is a single graph, graph mode otherwise. *)
type train_spec = {
  t_model : string;
  t_graphs : string list;
  t_recipe : string;
  t_target : string;  (** GEL source producing per-row targets *)
  t_mode : feat_mode option;
  t_epochs : int option;
  t_lr : float option;
  t_seed : int option;
  t_split : float option;  (** train fraction of the row split *)
}

type request =
  | Hello
  | Ping
  | Version
  | Load of string * string  (** name, graph spec *)
  | Graphs
  | Generators
  | Query of string * string  (** graph name, GEL source *)
  | Explain of string * string  (** graph name, GEL source *)
  | Wl of string * int option  (** graph name, max rounds *)
  | Kwl of string * int  (** graph name, k *)
  | Hom of string * int  (** graph name, max tree size *)
  | Mutate of string * mutation list  (** graph name, atomic op batch (v5) *)
  | Featurize of string * string * feat_mode  (** graph, recipe, mode (v6) *)
  | Train of train_spec  (** fit a named model server-side (v6) *)
  | Predict of string * string * int list
      (** model, graph, vertex subset (empty = all rows) (v6) *)
  | Predict_batch of string * string list
      (** batched corpus form [PREDICT <model> ON g1,g2,...]: one reply
          whose ["batch"] list holds the per-graph payloads in request
          order. Additive v6 grammar — single-graph replies are
          byte-unchanged. A graph named literally ["ON"] must use the
          batched form to be addressable. *)
  | Models  (** list the model registry (v6) *)
  | Save of string option  (** snapshot path; defaults to [--snapshot] *)
  | Restore of string option  (** snapshot path; defaults to [--snapshot] *)
  | Stats
  | Quit
  | Shutdown

(** A parsed request line: the command plus whether the trailing [TRACE]
    option was present. *)
type parsed = { req : request; traced : bool }

(** Split a raw line into tokens, honouring quotes. [Error] on unbalanced
    quotes. *)
val tokenize : string -> (string list, string) result

(** Parse one request line; never raises. *)
val parse_request : string -> (parsed, string) result

(** Parse the op tokens of a MUTATE batch (everything after the graph
    name): keyword-opened sections, repeatable, at least one op overall.
    Shared by the wire grammar and the clients' scriptable [--mutate]
    syntax. *)
val parse_mutations : string list -> (mutation list, string) result

(** Parse the tokens of a TRAIN command after the model name
    (ON/WITH/TARGET plus options, any order). Shared by the wire grammar
    and the clients' scriptable [--train] syntax. *)
val parse_train : string -> string list -> (train_spec, string) result

(** One-line TRAIN grammar, for usage errors. *)
val train_usage : string

(** The command word of a request, for metrics labels. *)
val command_name : request -> string
