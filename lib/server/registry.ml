(* The server's graph registry and the generator-name table shared with
   bin/gelq. Specs are deterministic by construction (no random families),
   so a spec names the same graph in every process. Each registration also
   gets a monotonically increasing generation number: the colouring cache
   keys entries by (name, generation), so re-LOADing a name can never
   serve a colouring computed on the replaced graph.

   Spec sizes are checked *before* construction: a `LOAD g complete20000`
   is rejected upfront instead of materialising ~2e8 edges and then
   running unbounded WL on them. *)

module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators

let fixed : (string * (unit -> Graph.t)) list =
  [
    ("petersen", Generators.petersen);
    ("rook", Generators.rook_4x4);
    ("shrikhande", Generators.shrikhande);
    ("decalin", Generators.decalin);
    ("bicyclopentyl", Generators.bicyclopentyl);
    ("two-triangles", fun () -> Graph.disjoint_union (Generators.cycle 3) (Generators.cycle 3));
    ("hexagon", fun () -> Generators.cycle 6);
  ]

let generator_names = List.map fst fixed

let generator_patterns =
  [ "cycle<N>"; "path<N>"; "complete<N>"; "star<N>"; "grid<R>x<C>"; "circulant<N>c<S>c<S>..." ]

(* The default caps are env-overridable so benchmark and stress setups
   can serve corpus-scale graphs (million-edge SBM/ER and beyond) from
   the same daemon without a rebuild; a non-positive or malformed value
   falls back to the built-in default. *)
let env_cap var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some v when v > 0 -> v | _ -> default)

let default_max_vertices = env_cap "GLQL_SPEC_MAX_VERTICES" 100_000

let default_max_edges = env_cap "GLQL_SPEC_MAX_EDGES" 4_000_000

(* Reject oversized specs before building anything. [ne] is a thunk: edge
   formulas like n*(n-1)/2 can overflow for absurd [n], so they are only
   evaluated once the vertex bound (which also bounds the formula inputs)
   has passed. *)
let sized_guard ~max_vertices ~max_edges name ~nv ~ne make =
  if nv < 0 || nv > max_vertices then
    Error
      (Printf.sprintf "%s: %d vertices exceed the %d-vertex spec limit" name nv max_vertices)
  else
    let ne = ne () in
    if ne > max_edges then
      Error (Printf.sprintf "%s: %d edges exceed the %d-edge spec limit" name ne max_edges)
    else Ok (make ())

let sized name ~prefix =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

let atom_of_name ~max_vertices ~max_edges name =
  let guard = sized_guard ~max_vertices ~max_edges name in
  match List.assoc_opt name fixed with
  | Some make -> Ok (make ())
  | None -> (
      match
        ( sized name ~prefix:"cycle",
          sized name ~prefix:"path",
          sized name ~prefix:"complete",
          sized name ~prefix:"star" )
      with
      | Some n, _, _, _ when n >= 3 ->
          guard ~nv:n ~ne:(fun () -> n) (fun () -> Generators.cycle n)
      | Some n, _, _, _ -> Error (Printf.sprintf "cycle%d: cycles need at least 3 vertices" n)
      | _, Some n, _, _ when n >= 1 ->
          guard ~nv:n ~ne:(fun () -> n - 1) (fun () -> Generators.path n)
      | _, _, Some n, _ when n >= 1 ->
          guard ~nv:n ~ne:(fun () -> n * (n - 1) / 2) (fun () -> Generators.complete n)
      | _, _, _, Some n when n >= 1 ->
          guard ~nv:(n + 1) ~ne:(fun () -> n) (fun () ->
              (* Star labels mark every vertex so degree queries see leaves. *)
              let g = Generators.star n in
              Graph.with_labels g (Array.make (Graph.n_vertices g) [| 1.0 |]))
      | _ -> (
          let grid_spec =
            if String.length name > 4 && String.sub name 0 4 = "grid" then
              match String.index_opt name 'x' with
              | Some i -> (
                  match
                    ( int_of_string_opt (String.sub name 4 (i - 4)),
                      int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) )
                  with
                  | Some r, Some c when r >= 1 && c >= 1 -> Some (r, c)
                  | _ -> None)
              | None -> None
            else None
          in
          match grid_spec with
          | Some (r, c) ->
              (* Check the sides before multiplying so r*c cannot wrap. *)
              if r > max_vertices || c > max_vertices then
                Error
                  (Printf.sprintf "%s: grid side exceeds the %d-vertex spec limit" name
                     max_vertices)
              else
                guard ~nv:(r * c)
                  ~ne:(fun () -> (r * (c - 1)) + (c * (r - 1)))
                  (fun () -> Generators.grid r c)
          | None -> (
              if String.length name > 9 && String.sub name 0 9 = "circulant" then
                match String.split_on_char 'c' (String.sub name 9 (String.length name - 9)) with
                | n_str :: offsets when offsets <> [] -> (
                    match
                      ( int_of_string_opt n_str,
                        List.map int_of_string_opt offsets )
                    with
                    | Some n, offs when n >= 3 && List.for_all Option.is_some offs ->
                        guard ~nv:n
                          ~ne:(fun () -> n * List.length offs)
                          (fun () -> Generators.circulant n (List.map Option.get offs))
                    | _ -> Error (Printf.sprintf "bad circulant spec %S" name)
                  )
                | _ -> Error (Printf.sprintf "bad circulant spec %S" name)
              else
                Error
                  (Printf.sprintf
                     "unknown graph %S (known: %s; patterns: %s; combine with '+')" name
                     (String.concat ", " generator_names)
                     (String.concat ", " generator_patterns)))))

let graph_of_spec ?(max_vertices = default_max_vertices) ?(max_edges = default_max_edges) spec =
  match String.split_on_char '+' (String.trim spec) with
  | [] | [ "" ] -> Error "empty graph spec"
  | atoms ->
      let union_guard g =
        if Graph.n_vertices g > max_vertices then
          Error (Printf.sprintf "union exceeds the %d-vertex spec limit" max_vertices)
        else if Graph.n_edges g > max_edges then
          Error (Printf.sprintf "union exceeds the %d-edge spec limit" max_edges)
        else Ok g
      in
      let rec build acc = function
        | [] -> Ok acc
        | a :: rest -> (
            match atom_of_name ~max_vertices ~max_edges (String.trim a) with
            | Error _ as e -> e
            | Ok g -> (
                match union_guard (Graph.disjoint_union acc g) with
                | Error _ as e -> e
                | Ok u -> build u rest))
      in
      (match atoms with
      | first :: rest -> (
          match atom_of_name ~max_vertices ~max_edges (String.trim first) with
          | Error _ as e -> e
          | Ok g -> build g rest)
      | [] -> assert false)

(* Canonical form of a spec string: atoms trimmed of surrounding blanks,
   joined with a bare '+'. The fallback path of [find_entry] caches under
   this form, so "sbm10 + path3" and "sbm10+path3" share one entry (and
   one generation, hence one set of colouring-cache keys). *)
let canonical_spec spec =
  String.split_on_char '+' (String.trim spec) |> List.map String.trim |> String.concat "+"

type entry = { graph : Graph.t; spec : string; gen : int }

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable next_gen : int;
  mutex : Mutex.t;
}

let create () = { tbl = Hashtbl.create 16; next_gen = 0; mutex = Mutex.create () }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let register t ~name ~spec =
  Glql_util.Trace.with_span ~args:[ ("spec", spec) ] "load.graph" @@ fun () ->
  match graph_of_spec spec with
  | Error _ as e -> e
  | Ok g ->
      with_lock t (fun () ->
          let gen = t.next_gen in
          t.next_gen <- gen + 1;
          Hashtbl.replace t.tbl name { graph = g; spec = canonical_spec spec; gen });
      Ok g

(* Bind an already-constructed graph (the snapshot-restore path: the
   graph was decoded from disk, not built from its spec). *)
let register_prebuilt t ~name ~spec g =
  with_lock t (fun () ->
      let gen = t.next_gen in
      t.next_gen <- gen + 1;
      Hashtbl.replace t.tbl name { graph = g; spec; gen };
      gen)

let find_entry t name =
  let lookup key = Hashtbl.find_opt t.tbl key in
  let canonical = canonical_spec name in
  match with_lock t (fun () -> match lookup name with Some e -> Some e | None -> lookup canonical) with
  | Some e -> Ok (e.graph, e.gen)
  | None -> (
      (* Fall back to reading the name itself as a spec, caching the
         result under its canonical whitespace-normalised form so
         spellings of one spec share one graph (and its colouring cache
         entries). *)
      match graph_of_spec canonical with
      | Error _ ->
          Error
            (Printf.sprintf "no graph named %S (LOAD one, or use a generator spec)" name)
      | Ok g ->
          Ok
            (with_lock t (fun () ->
                 (* Another domain may have registered the name meanwhile;
                    keep its binding so both callers share one generation. *)
                 match lookup canonical with
                 | Some e -> (e.graph, e.gen)
                 | None ->
                     let gen = t.next_gen in
                     t.next_gen <- gen + 1;
                     Hashtbl.replace t.tbl canonical { graph = g; spec = canonical; gen };
                     (g, gen))))

let find t name = Result.map fst (find_entry t name)

(* --- v5 mutations ---------------------------------------------------- *)

type op =
  | Add_edge of int * int
  | Del_edge of int * int
  | Set_label of int * float array

type rejected = { r_index : int; r_op : string; r_code : string; r_message : string }

type mutation_outcome = {
  m_graph : Graph.t;
  m_old_gen : int;
  m_gen : int;
  m_added : int;
  m_deleted : int;
  m_relabeled : int;
  m_rejected : rejected list;
  m_touched_adj : int list;
  m_touched_lab : int list;
}

let op_name = function
  | Add_edge _ -> "ADD_EDGE"
  | Del_edge _ -> "DEL_EDGE"
  | Set_label _ -> "SET_LABEL"

(* Apply one MUTATE batch atomically: ops validate sequentially against
   the evolving edge/label state (so ADD (u,v) then DEL (u,v) in one
   batch is two applied ops), invalid ops are skipped and reported with
   their index, and the binding advances in place to a fresh generation
   iff at least one op applied — the explicit replacement for the old
   "re-LOAD the name" shadow idiom, which rebuilt from scratch and threw
   every cached colouring away. Everything runs under the registry lock,
   so concurrent MUTATE/LOAD/find interleave at batch granularity. *)
let mutate t ~name ops =
  with_lock t @@ fun () ->
  let found =
    match Hashtbl.find_opt t.tbl name with
    | Some e -> Some (name, e)
    | None -> (
        let canonical = canonical_spec name in
        match Hashtbl.find_opt t.tbl canonical with
        | Some e -> Some (canonical, e)
        | None -> None)
  in
  match found with
  | None ->
      Error (Printf.sprintf "no graph named %S (LOAD it first; MUTATE does not build specs)" name)
  | Some (key, e) ->
      let g = e.graph in
      let n = Graph.n_vertices g in
      let dim = Graph.label_dim g in
      let norm u v = if u < v then (u, v) else (v, u) in
      (* Evolving overlay state: edge presence and pending labels. *)
      let edge_delta : (int * int, bool) Hashtbl.t = Hashtbl.create 16 in
      let lab_delta : (int, float array) Hashtbl.t = Hashtbl.create 16 in
      let present u v =
        match Hashtbl.find_opt edge_delta (norm u v) with
        | Some b -> b
        | None -> Graph.has_edge g u v
      in
      let rejected = ref [] in
      let added = ref 0 and deleted = ref 0 and relabeled = ref 0 in
      let reject i op msg =
        rejected :=
          { r_index = i; r_op = op_name op; r_code = "ERR_BAD_ARG"; r_message = msg }
          :: !rejected
      in
      List.iteri
        (fun i op ->
          match op with
          | Add_edge (u, v) ->
              if u < 0 || u >= n || v < 0 || v >= n then
                reject i op (Printf.sprintf "edge (%d,%d): vertex out of range [0,%d)" u v n)
              else if u = v then reject i op (Printf.sprintf "edge (%d,%d): self-loop" u v)
              else if present u v then
                reject i op (Printf.sprintf "edge (%d,%d) already present" u v)
              else begin
                Hashtbl.replace edge_delta (norm u v) true;
                incr added
              end
          | Del_edge (u, v) ->
              if u < 0 || u >= n || v < 0 || v >= n then
                reject i op (Printf.sprintf "edge (%d,%d): vertex out of range [0,%d)" u v n)
              else if u = v then reject i op (Printf.sprintf "edge (%d,%d): self-loop" u v)
              else if not (present u v) then
                reject i op (Printf.sprintf "edge (%d,%d) not present" u v)
              else begin
                Hashtbl.replace edge_delta (norm u v) false;
                incr deleted
              end
          | Set_label (v, l) ->
              if v < 0 || v >= n then
                reject i op (Printf.sprintf "vertex %d out of range [0,%d)" v n)
              else if Array.length l <> dim then
                reject i op
                  (Printf.sprintf "label dimension %d <> graph label dimension %d"
                     (Array.length l) dim)
              else begin
                Hashtbl.replace lab_delta v l;
                incr relabeled
              end)
        ops;
      let rejected = List.rev !rejected in
      if !added + !deleted + !relabeled = 0 then
        Ok
          {
            m_graph = g;
            m_old_gen = e.gen;
            m_gen = e.gen;
            m_added = 0;
            m_deleted = 0;
            m_relabeled = 0;
            m_rejected = rejected;
            m_touched_adj = [];
            m_touched_lab = [];
          }
      else begin
        (* Net structural delta against the base graph (a batch that adds
           then deletes one edge nets out to nothing). *)
        let add_edges = ref [] and del_edges = ref [] in
        Hashtbl.iter
          (fun (u, v) want ->
            let have = Graph.has_edge g u v in
            if want && not have then add_edges := (u, v) :: !add_edges
            else if (not want) && have then del_edges := (u, v) :: !del_edges)
          edge_delta;
        let set_labels = Hashtbl.fold (fun v l acc -> (v, l) :: acc) lab_delta [] in
        let g' = Graph.mutate g ~add_edges:!add_edges ~del_edges:!del_edges ~set_labels in
        let gen = t.next_gen in
        t.next_gen <- gen + 1;
        (* The stored spec no longer describes the graph; mark it so
           snapshots and operators see an honest provenance string. *)
        let spec =
          if String.length e.spec >= 8 && String.sub e.spec 0 8 = "mutated:" then e.spec
          else "mutated:" ^ e.spec
        in
        Hashtbl.replace t.tbl key { graph = g'; spec; gen };
        let touched_adj =
          List.sort_uniq compare
            (List.concat_map (fun (u, v) -> [ u; v ]) (!add_edges @ !del_edges))
        in
        let touched_lab = List.sort_uniq compare (List.map fst set_labels) in
        Ok
          {
            m_graph = g';
            m_old_gen = e.gen;
            m_gen = gen;
            m_added = !added;
            m_deleted = !deleted;
            m_relabeled = !relabeled;
            m_rejected = rejected;
            m_touched_adj = touched_adj;
            m_touched_lab = touched_lab;
          }
      end

let list t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun name e acc -> (name, Graph.n_vertices e.graph, Graph.n_edges e.graph) :: acc)
        t.tbl [])
  |> List.sort compare

let entries t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name e acc -> (name, e.spec, e.gen, e.graph) :: acc) t.tbl [])
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

let n_graphs t = with_lock t (fun () -> Hashtbl.length t.tbl)
