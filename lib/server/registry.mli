(** Named-graph registry of the query server, and the generator-name table
    it shares with [bin/gelq].

    A {e graph spec} is a ['+']-separated list of atoms, each atom either a
    fixed generator name ([petersen], [rook], ...) or a sized pattern
    ([cycle<N>], [path<N>], [complete<N>], [star<N>], [grid<R>x<C>],
    [circulant<N>c<S1>c<S2>...]); the graphs of a multi-atom spec are
    combined by disjoint union ([cycle3+cycle3]). *)

module Graph = Glql_graph.Graph

(** Fixed generator names accepted in specs. *)
val generator_names : string list

(** Human-readable sized-pattern forms accepted in specs. *)
val generator_patterns : string list

(** Build the graph a spec describes; [Error] explains what was wrong.
    Never raises. Specs whose predicted size exceeds [max_vertices]
    (default 100k) or [max_edges] (default 4M) are rejected {e before}
    any construction, so an oversized spec costs nothing. The defaults
    are overridable per process via the [GLQL_SPEC_MAX_VERTICES] and
    [GLQL_SPEC_MAX_EDGES] environment variables (read once at startup),
    so bench and stress rigs can serve corpus-scale graphs without a
    rebuild. *)
val graph_of_spec :
  ?max_vertices:int -> ?max_edges:int -> string -> (Graph.t, string) result

(** Whitespace-normalised form of a spec: atoms trimmed, joined with a
    bare ['+'] — so ["sbm10 + path3"] and ["sbm10+path3"] canonicalise
    identically. The spec-fallback path of {!find_entry} caches under
    this form, giving every spelling of a spec one shared entry (and one
    generation). *)
val canonical_spec : string -> string

(** Thread-safe name → graph registry. *)
type t

val create : unit -> t

(** Build [spec] and bind it to [name] (replacing any previous binding
    under a fresh generation). Returns the graph.

    Re-LOADing a bound name still works but is {e deprecated} as an
    update mechanism: it rebuilds from scratch and discards the old
    graph's cached colourings. Use {!mutate} to evolve a bound graph in
    place — it advances the generation and leaves the old colouring
    usable as an incremental seed. *)
val register : t -> name:string -> spec:string -> (Graph.t, string) result

(** Bind an already-constructed graph to [name] under a fresh generation
    (the snapshot-restore path, where the graph came off disk rather
    than from its spec). Returns the new generation. *)
val register_prebuilt : t -> name:string -> spec:string -> Graph.t -> int

(** [find t name] is the registered graph, falling back to interpreting
    [name] itself as a spec (and caching the result under it) — so
    clients can say [QUERY petersen ...] without a LOAD. *)
val find : t -> string -> (Graph.t, string) result

(** [find_entry t name] is [find] plus the binding's {e generation}: a
    registry-wide counter bumped on every (re-)registration. Cache keys
    derived from a graph name must include the generation, so a LOAD that
    replaces the name can never be answered from entries computed on the
    old graph. *)
val find_entry : t -> string -> (Graph.t * int, string) result

(** One mutation op of a MUTATE batch, in registry terms. *)
type op =
  | Add_edge of int * int
  | Del_edge of int * int
  | Set_label of int * float array

(** An op the batch skipped: its position in the batch, the op kind
    ([ADD_EDGE] / [DEL_EDGE] / [SET_LABEL]), a v4-style error code
    (always [ERR_BAD_ARG] today) and prose. *)
type rejected = { r_index : int; r_op : string; r_code : string; r_message : string }

(** Result of an applied MUTATE batch. [m_gen = m_old_gen] means nothing
    applied (every op rejected) and the binding was left untouched.
    [m_touched_adj] / [m_touched_lab] are the sorted, deduplicated
    vertices whose adjacency row / label actually changed versus the
    pre-batch graph — the incremental-recolouring frontier. *)
type mutation_outcome = {
  m_graph : Graph.t;
  m_old_gen : int;
  m_gen : int;
  m_added : int;
  m_deleted : int;
  m_relabeled : int;
  m_rejected : rejected list;
  m_touched_adj : int list;
  m_touched_lab : int list;
}

(** [mutate t ~name ops] applies one batch atomically under the registry
    lock: ops validate {e sequentially against the evolving state} (an
    edge added earlier in the batch can be deleted later in it), invalid
    ops are skipped and reported, and the binding advances {e in place}
    to a fresh generation iff at least one op applied. [Error] only when
    [name] is not bound (MUTATE never builds specs). *)
val mutate : t -> name:string -> op list -> (mutation_outcome, string) result

(** Registered names with vertex/edge counts, sorted by name. *)
val list : t -> (string * int * int) list

(** Full bindings — (name, spec, generation, graph) — sorted by name;
    what a snapshot save exports. *)
val entries : t -> (string * string * int * Graph.t) list

val n_graphs : t -> int
