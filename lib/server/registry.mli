(** Named-graph registry of the query server, and the generator-name table
    it shares with [bin/gelq].

    A {e graph spec} is a ['+']-separated list of atoms, each atom either a
    fixed generator name ([petersen], [rook], ...) or a sized pattern
    ([cycle<N>], [path<N>], [complete<N>], [star<N>], [grid<R>x<C>],
    [circulant<N>c<S1>c<S2>...]); the graphs of a multi-atom spec are
    combined by disjoint union ([cycle3+cycle3]). *)

module Graph = Glql_graph.Graph

(** Fixed generator names accepted in specs. *)
val generator_names : string list

(** Human-readable sized-pattern forms accepted in specs. *)
val generator_patterns : string list

(** Build the graph a spec describes; [Error] explains what was wrong.
    Never raises. *)
val graph_of_spec : string -> (Graph.t, string) result

(** Thread-safe name → graph registry. *)
type t

val create : unit -> t

(** Build [spec] and bind it to [name] (replacing any previous binding).
    Returns the graph. *)
val register : t -> name:string -> spec:string -> (Graph.t, string) result

(** [find t name] is the registered graph, falling back to interpreting
    [name] itself as a spec (and caching the result under it) — so
    clients can say [QUERY petersen ...] without a LOAD. *)
val find : t -> string -> (Graph.t, string) result

(** Registered names with vertex/edge counts, sorted by name. *)
val list : t -> (string * int * int) list

val n_graphs : t -> int
