(** Named-graph registry of the query server, and the generator-name table
    it shares with [bin/gelq].

    A {e graph spec} is a ['+']-separated list of atoms, each atom either a
    fixed generator name ([petersen], [rook], ...) or a sized pattern
    ([cycle<N>], [path<N>], [complete<N>], [star<N>], [grid<R>x<C>],
    [circulant<N>c<S1>c<S2>...]); the graphs of a multi-atom spec are
    combined by disjoint union ([cycle3+cycle3]). *)

module Graph = Glql_graph.Graph

(** Fixed generator names accepted in specs. *)
val generator_names : string list

(** Human-readable sized-pattern forms accepted in specs. *)
val generator_patterns : string list

(** Build the graph a spec describes; [Error] explains what was wrong.
    Never raises. Specs whose predicted size exceeds [max_vertices]
    (default 100k) or [max_edges] (default 4M) are rejected {e before}
    any construction, so an oversized spec costs nothing. The defaults
    are overridable per process via the [GLQL_SPEC_MAX_VERTICES] and
    [GLQL_SPEC_MAX_EDGES] environment variables (read once at startup),
    so bench and stress rigs can serve corpus-scale graphs without a
    rebuild. *)
val graph_of_spec :
  ?max_vertices:int -> ?max_edges:int -> string -> (Graph.t, string) result

(** Whitespace-normalised form of a spec: atoms trimmed, joined with a
    bare ['+'] — so ["sbm10 + path3"] and ["sbm10+path3"] canonicalise
    identically. The spec-fallback path of {!find_entry} caches under
    this form, giving every spelling of a spec one shared entry (and one
    generation). *)
val canonical_spec : string -> string

(** Thread-safe name → graph registry. *)
type t

val create : unit -> t

(** Build [spec] and bind it to [name] (replacing any previous binding
    under a fresh generation). Returns the graph. *)
val register : t -> name:string -> spec:string -> (Graph.t, string) result

(** Bind an already-constructed graph to [name] under a fresh generation
    (the snapshot-restore path, where the graph came off disk rather
    than from its spec). Returns the new generation. *)
val register_prebuilt : t -> name:string -> spec:string -> Graph.t -> int

(** [find t name] is the registered graph, falling back to interpreting
    [name] itself as a spec (and caching the result under it) — so
    clients can say [QUERY petersen ...] without a LOAD. *)
val find : t -> string -> (Graph.t, string) result

(** [find_entry t name] is [find] plus the binding's {e generation}: a
    registry-wide counter bumped on every (re-)registration. Cache keys
    derived from a graph name must include the generation, so a LOAD that
    replaces the name can never be answered from entries computed on the
    old graph. *)
val find_entry : t -> string -> (Graph.t * int, string) result

(** Registered names with vertex/edge counts, sorted by name. *)
val list : t -> (string * int * int) list

(** Full bindings — (name, spec, generation, graph) — sorted by name;
    what a snapshot save exports. *)
val entries : t -> (string * string * int * Graph.t) list

val n_graphs : t -> int
