(* The router front of the sharded glqld topology.

   Speaks the worker protocol *unchanged* to clients on one select loop
   and multiplexes every request onto persistent nonblocking connections
   to N shard workers (each a full glqld owning the graph names that
   stable-hash to its shard, see {!Shard}). Graph-keyed commands (LOAD /
   MUTATE / QUERY / EXPLAIN / WL / KWL / HOM / FEATURIZE / TRAIN /
   PREDICT) forward verbatim to the owning shard, so their replies are
   byte-identical to a single-process glqld holding the same registry —
   with one placement caveat: a model lives on the shard of its first
   TRAIN source graph, so PREDICT requires its feature graph to co-hash
   with that source (the same constraint multi-graph TRAIN already has);
   a cross-shard PREDICT is rejected up front with the constraint
   spelled out rather than forwarded into a misleading
   ERR_UNKNOWN_MODEL.
   Registry-wide commands (GRAPHS / STATS / VERSION / SAVE / RESTORE /
   MODELS) fan out and the replies are merged by the pure functions
   below. The router also health-probes up members with periodic PINGs
   so a wedged worker is detected without waiting for an EOF.

   Ordering: a client's replies must come back in request order even
   though shards answer at their own pace, so every request takes a
   [slot] in the client's FIFO; replies land in their slot and the queue
   flushes head-first. Upstream, each member connection keeps its own
   FIFO of reply destinations — workers answer in request order on one
   connection, which pairs replies to destinations with no tagging and
   no protocol change.

   Failure: a member EOF/write-error marks it down and fails its
   in-flight destinations with ERR_SHARD_DOWN; requests for that shard's
   graphs keep failing fast while every other shard keeps serving. With
   [respawn] the router relaunches the worker from its argv — the worker
   boots from its last snapshot ([--snapshot] is in the argv) — and
   reconnects asynchronously; reads for the shard resume once it is up.

   Read replicas: REPLICA <shard> ships a snapshot (SAVE on the primary
   to the replica's snapshot path), spawns a fresh worker booting from
   it, and adds it to the shard's member list; read commands round-robin
   across primary + live replicas, and LOAD / RESTORE broadcast to
   replicas so they stay in sync. *)

module P = Protocol
module Json = Glql_util.Json
module Clock = Glql_util.Clock

type config = {
  socket_path : string option;  (** front unix socket clients connect to *)
  tcp_port : int option;
  shards : int;
  respawn : bool;  (** relaunch dead managed workers from their argv *)
  max_connections : int;
  max_line_bytes : int;
  max_inbuf_bytes : int;
  boot_timeout_s : float;  (** window for a spawned worker to accept *)
  drain_timeout_s : float;  (** shutdown window for in-flight replies *)
  probe_interval_s : float;  (** health-probe PING cadence; <= 0 disables *)
  probe_timeout_s : float;  (** unanswered-probe window before marking down *)
  make_replica : (shard:int -> index:int -> Shard.spec) option;
      (** builds the spec of a fresh replica; [None] disables REPLICA *)
  verbose : bool;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    shards = 3;
    respawn = false;
    max_connections = 256;
    max_line_bytes = 1024 * 1024;
    max_inbuf_bytes = 8 * 1024 * 1024;
    boot_timeout_s = 15.0;
    drain_timeout_s = 3.0;
    probe_interval_s = 2.0;
    probe_timeout_s = 15.0;
    make_replica = None;
    verbose = false;
  }

let shard_down_code = "ERR_SHARD_DOWN"

let shard_down_line shard =
  P.err_line (P.error ~code:shard_down_code (Printf.sprintf "shard %d is down" shard))

(* --- pure reply merging -------------------------------------------------- *)

(* Fan-out merges are pure (json in, json out) so the unit tests cover
   them without sockets or processes. *)

(* GRAPHS: concatenate the per-shard lists and re-sort by (name,
   vertices, edges) — the exact order [Registry.list] yields in a
   single process, so the merged reply is byte-identical to one. *)
let merge_graphs parts =
  let entries =
    List.concat_map (function P.List items -> items | other -> [ other ]) parts
  in
  let key = function
    | P.Obj _ as o ->
        let str k = match Json.member k o with Some (P.Str s) -> s | _ -> "" in
        let int k = match Json.int_member k o with Some i -> i | None -> 0 in
        (str "name", int "vertices", int "edges")
    | _ -> ("", 0, 0)
  in
  P.List (List.sort (fun a b -> compare (key a) (key b)) entries)

(* MODELS: per-shard registries are disjoint under router-driven TRAIN
   (a model lives on the shard of its first source graph), so the merge
   is a plain union re-sorted by model name — the order [Models.list]
   yields in a single process. Duplicates (same name trained directly
   against two workers behind the router's back) keep their first
   occurrence. *)
let merge_models parts =
  let entries =
    List.concat_map (function P.List items -> items | other -> [ other ]) parts
  in
  let name = function
    | P.Obj _ as o -> ( match Json.member "name" o with Some (P.Str s) -> s | _ -> "")
    | _ -> ""
  in
  let sorted = List.stable_sort (fun a b -> compare (name a) (name b)) entries in
  let rec dedup = function
    | a :: b :: rest when name a = name b -> dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  P.List (dedup sorted)

(* STATS: the per-shard primaries' integer counters sum field-by-field
   (in the first primary's field order, so the merged layout is stable),
   "by_command" sums key-by-key, and non-summable fields (latency
   percentiles, stages, restored) stay per-member under "members".
   [protocol_version] is consensus, not a sum. Replica counters are
   reported per-member but excluded from the sums: a replica serves
   copies of its primary's graphs, so summing it would double-count
   registry-shaped fields like [graphs_registered]. *)
let merge_stats ~router ~shards ~parts =
  let primaries =
    List.filter_map
      (fun (_, role, j) -> match j with Some j when role = "primary" -> Some j | _ -> None)
      parts
  in
  let int_field j k = match Json.int_member k j with Some i -> i | None -> 0 in
  let summed =
    match primaries with
    | [] -> []
    | first :: _ ->
        let fields = match first with P.Obj fs -> fs | _ -> [] in
        List.filter_map
          (fun (k, v) ->
            match (k, v) with
            | "protocol_version", v -> Some (k, v)
            | "by_command", P.Obj _ ->
                let keys =
                  List.concat_map
                    (fun j ->
                      match Json.member "by_command" j with
                      | Some (P.Obj fs) -> List.map fst fs
                      | _ -> [])
                    primaries
                in
                let keys = List.sort_uniq compare keys in
                Some
                  ( k,
                    P.Obj
                      (List.map
                         (fun cmd ->
                           ( cmd,
                             P.Int
                               (List.fold_left
                                  (fun acc j ->
                                    match Json.member "by_command" j with
                                    | Some bc -> acc + int_field bc cmd
                                    | None -> acc)
                                  0 primaries) ))
                         keys) )
            | _, P.Int _ ->
                Some (k, P.Int (List.fold_left (fun acc j -> acc + int_field j k) 0 primaries))
            | _ -> None)
          fields
  in
  let member_json (shard, role, j) =
    P.Obj
      [
        ("shard", P.Int shard);
        ("role", P.Str role);
        ("up", P.Bool (j <> None));
        ("stats", match j with Some j -> j | None -> P.Null);
      ]
  in
  P.Obj
    (summed
    @ [
        ("shards", P.Int shards);
        ("router", router);
        ("members", P.List (List.map member_json parts));
      ])

(* SAVE / RESTORE: per-shard summaries listed under "shards", size
   counters summed at the top level. *)
let merge_snapshots parts =
  let sum k =
    List.fold_left
      (fun acc (_, j) -> acc + match Json.int_member k j with Some i -> i | None -> 0)
      0 parts
  in
  let entry (shard, j) =
    let fields = match j with P.Obj fs -> fs | other -> [ ("value", other) ] in
    P.Obj (("shard", P.Int shard) :: fields)
  in
  P.Obj
    [
      ("shards", P.List (List.map entry parts));
      ("bytes", P.Int (sum "bytes"));
      ("graphs", P.Int (sum "graphs"));
      ("colorings", P.Int (sum "colorings"));
      ("plans", P.Int (sum "plans"));
    ]

(* --- topology state ------------------------------------------------------ *)

type up = {
  u_fd : Unix.file_descr;
  u_lines : Line_buf.t;  (* reply framing from the worker *)
  u_out : Buffer.t;  (* request bytes the worker socket has not accepted *)
}

type mstate =
  | Down
  | Connecting of int64  (* give-up deadline *)
  | Up of up

type client = {
  c_fd : Unix.file_descr;
  c_lines : Line_buf.t;
  c_out : Buffer.t;
  mutable c_closing : bool;  (* QUIT / EOF: close once slots drain *)
  mutable c_dead : bool;  (* dropped: discard any late replies *)
  c_slots : slot Queue.t;  (* replies owed, in request order *)
}

and slot = {
  mutable s_reply : string option;
  s_client : client;
  s_cmd : string;
  s_t0 : int64;
}

type dest =
  | To_slot of slot  (* forward the worker's reply line verbatim *)
  | Write_primary of slot * mirror_group
      (* primary leg of a mirrored write: the reply forwards verbatim to
         the client and settles the group's deferred mirror failures *)
  | Part of agg * int  (* one piece of a fan-out *)
  | Mirror of mirror_group  (* replica leg of a mirrored write *)
  | Discard  (* reply checked for nothing (SHUTDOWN, replica RESTORE) *)
  | Replica_save of slot * Shard.spec  (* SAVE-on-primary step of REPLICA *)
  | Probe  (* router-originated health PING; the pong clears the timer *)

and agg = {
  a_slot : slot;
  a_parts : (int * string * string option) array;  (* shard, role, raw reply *)
  mutable a_remaining : int;
  a_finish : (int * string * string option) array -> string;
}

(* One LOAD / MUTATE / TRAIN fanned to a primary plus its replicas. The
   primary's verdict decides what a replica's ERR reply means: primary
   applied the write but the replica did not → the replica has silently
   diverged (a TRAIN it missed leaves later round-robined PREDICTs
   failing intermittently), so it is marked down — with [respawn] it
   reboots from its snapshot instead of serving as a diverged copy. Both
   rejected the request (bad recipe, invalid batch) → still in sync,
   nothing to do. Mirror replies can land before the primary's on
   another connection, so early failures are deferred until the
   primary's verdict arrives. *)
and mirror_group = {
  mutable mg_primary_ok : bool option;  (* None until the primary replies *)
  mutable mg_deferred : member list;  (* mirrors that failed before the verdict *)
}

and member = {
  m_spec : Shard.spec;
  mutable m_pid : int option;
  mutable m_state : mstate;
  mutable m_respawns : int;
  m_pending : dest Queue.t;
  mutable m_notify : slot option;  (* REPLICA caller waiting for first accept *)
  (* Health probing: the router PINGs each up member every
     [probe_interval_s]; workers answer strictly in request order, so
     the pong lands behind whatever real work is queued ahead of it.
     [m_probe_sent] is the start of the unanswered-probe window, and it
     slides forward while real (non-probe) requests are pending on the
     member — a TRAIN with big EPOCHS or a cold kwl3 legitimately holds
     the pong up for minutes, and a busy worker must never read as a
     wedged one. The [probe_timeout_s] clock therefore only runs while
     the probe is the member's whole queue: a worker with nothing to do
     but answer a PING, and hasn't. *)
  mutable m_probe_sent : int64 option;
  mutable m_last_probe : int64;  (* last probe send time, 0 = never *)
  mutable m_last_pong : int64;  (* last pong receive time, 0 = never *)
  mutable m_probes_sent : int;
  mutable m_pongs : int;
}

type group = {
  g_shard : int;
  mutable g_members : member list;  (* primary first, then replicas *)
  mutable g_rr : int;  (* read round-robin cursor *)
}

type t = {
  config : config;
  groups : group array;
  metrics : Metrics.t;
  stop_flag : bool Atomic.t;
  (* Model name → owning shard, learned when a TRAIN passes through: a
     model lives on the shard of its first source graph, and a worker
     can only featurize graphs it owns — so a PREDICT whose graph hashes
     elsewhere can never be served and is rejected up front with a
     routing error instead of the owning-graph shard's misleading
     ERR_UNKNOWN_MODEL. Models the router never saw TRAINed (snapshot
     restores, out-of-band fits) are absent and route by graph as
     before. *)
  model_shards : (string, int) Hashtbl.t;
}

let create config specs =
  if config.shards <= 0 then invalid_arg "Router.create: shards must be positive";
  let groups =
    Array.init config.shards (fun i -> { g_shard = i; g_members = []; g_rr = 0 })
  in
  List.iter
    (fun spec ->
      let m =
        {
          m_spec = spec;
          m_pid = None;
          m_state = Down;
          m_respawns = 0;
          m_pending = Queue.create ();
          m_notify = None;
          m_probe_sent = None;
          m_last_probe = 0L;
          m_last_pong = 0L;
          m_probes_sent = 0;
          m_pongs = 0;
        }
      in
      let g = groups.(spec.Shard.sp_shard) in
      (* Keep the primary at the head regardless of spec order. *)
      match spec.Shard.sp_role with
      | Shard.Primary -> g.g_members <- (m :: g.g_members)
      | Shard.Replica _ -> g.g_members <- g.g_members @ [ m ])
    specs;
  Array.iter
    (fun g ->
      let primaries, replicas =
        List.partition (fun m -> m.m_spec.Shard.sp_role = Shard.Primary) g.g_members
      in
      g.g_members <- primaries @ replicas;
      if primaries = [] then
        invalid_arg (Printf.sprintf "Router.create: shard %d has no primary" g.g_shard))
    groups;
  {
    config;
    groups;
    metrics = Metrics.create ();
    stop_flag = Atomic.make false;
    model_shards = Hashtbl.create 16;
  }

let stop t = Atomic.set t.stop_flag true

let log t fmt =
  Printf.ksprintf (fun s -> if t.config.verbose then Printf.eprintf "glqld-router: %s\n%!" s) fmt

let all_members t =
  Array.to_list t.groups |> List.concat_map (fun g -> g.g_members)

let is_up m = match m.m_state with Up _ -> true | _ -> false

let role_label m = Shard.role_label m.m_spec.Shard.sp_role

(* --- client side --------------------------------------------------------- *)

(* Identical push-what-the-socket-accepts discipline as the server's
   client loop: one slow reader can never wedge the select loop. *)
let flush_buffer t fd buf ~on_fail =
  let pending = Buffer.length buf in
  if pending > 0 then begin
    let s = Buffer.contents buf in
    let written = ref 0 in
    let failed = ref false in
    let stop_ = ref false in
    while (not !stop_) && !written < pending do
      match Unix.write_substring fd s !written (pending - !written) with
      | 0 -> stop_ := true
      | n -> written := !written + n
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
          stop_ := true
      | exception Unix.Unix_error _ ->
          failed := true;
          stop_ := true
    done;
    if !written > 0 then Metrics.add_io t.metrics ~bytes_in:0 ~bytes_out:!written;
    Buffer.clear buf;
    if !failed then on_fail ()
    else if !written < pending then Buffer.add_string buf (String.sub s !written (pending - !written))
  end

let max_client_outbuf = 8 * 1024 * 1024

let flush_client t c =
  flush_buffer t c.c_fd c.c_out ~on_fail:(fun () ->
      c.c_dead <- true;
      c.c_closing <- true)

(* Move completed head slots into the outbuf; later slots wait their turn. *)
let pump_client t c =
  if not c.c_dead then begin
    let moved = ref false in
    let continue_ = ref true in
    while !continue_ do
      match Queue.peek_opt c.c_slots with
      | Some { s_reply = Some line; _ } ->
          ignore (Queue.pop c.c_slots);
          Buffer.add_string c.c_out line;
          Buffer.add_char c.c_out '\n';
          moved := true
      | _ -> continue_ := false
    done;
    if !moved then begin
      flush_client t c;
      if Buffer.length c.c_out > max_client_outbuf then begin
        log t "dropping client with %d unsent reply bytes (not reading)" (Buffer.length c.c_out);
        Metrics.conn_dropped t.metrics;
        Buffer.clear c.c_out;
        c.c_dead <- true;
        c.c_closing <- true
      end
    end
  end

let fill_slot t slot line =
  if slot.s_reply = None then begin
    slot.s_reply <- Some line;
    Metrics.record t.metrics ~command:slot.s_cmd ~ok:(P.is_ok line)
      ~latency_ns:(Int64.sub (Clock.now_ns ()) slot.s_t0);
    pump_client t slot.s_client
  end

let new_slot c cmd =
  let slot = { s_reply = None; s_client = c; s_cmd = cmd; s_t0 = Clock.now_ns () } in
  Queue.push slot c.c_slots;
  slot

(* --- upstream side ------------------------------------------------------- *)

(* Worker replies are single lines but can be large (query tables up to
   the cell cap); the upstream framing caps are deliberately generous. *)
let upstream_line_cap = 256 * 1024 * 1024

let complete_part t agg i reply =
  let shard, role, _ = agg.a_parts.(i) in
  agg.a_parts.(i) <- (shard, role, reply);
  agg.a_remaining <- agg.a_remaining - 1;
  if agg.a_remaining = 0 then fill_slot t agg.a_slot (agg.a_finish agg.a_parts)

let fail_dest t shard dest =
  match dest with
  | To_slot slot -> fill_slot t slot (shard_down_line shard)
  | Write_primary (slot, mg) ->
      (* Dead primary: no verdict to audit mirrors against. *)
      mg.mg_primary_ok <- Some false;
      mg.mg_deferred <- [];
      fill_slot t slot (shard_down_line shard)
  | Part (agg, i) -> complete_part t agg i None
  | Mirror _ -> ()
  | Discard -> ()
  | Probe -> ()
  | Replica_save (slot, _) ->
      fill_slot t slot
        (P.err_line
           (P.error ~code:shard_down_code
              (Printf.sprintf "shard %d primary died during replica snapshot" shard)))

let rec member_down t m reason =
  (match m.m_state with
  | Up u -> ( try Unix.close u.u_fd with Unix.Unix_error _ -> ())
  | _ -> ());
  m.m_state <- Down;
  let shard = m.m_spec.Shard.sp_shard in
  log t "shard %d %s down: %s (%d in-flight failed)" shard (role_label m) reason
    (Queue.length m.m_pending);
  Queue.iter (fun dest -> fail_dest t shard dest) m.m_pending;
  Queue.clear m.m_pending;
  m.m_probe_sent <- None;
  m.m_last_probe <- 0L;
  (match m.m_notify with
  | Some slot ->
      m.m_notify <- None;
      fill_slot t slot
        (P.err_line (P.error ~code:shard_down_code (Printf.sprintf "shard %d member died booting" shard)))
  | None -> ());
  if t.config.respawn && m.m_spec.Shard.sp_argv <> None && m.m_respawns < 5 then begin
    m.m_respawns <- m.m_respawns + 1;
    let argv = Option.get m.m_spec.Shard.sp_argv in
    let pid = Shard.spawn argv in
    m.m_pid <- Some pid;
    m.m_state <-
      Connecting (Int64.add (Clock.now_ns ()) (Int64.of_float (t.config.boot_timeout_s *. 1e9)));
    log t "shard %d %s respawned as pid %d (attempt %d)" shard (role_label m) pid m.m_respawns
  end

and flush_member t m =
  match m.m_state with
  | Up u ->
      flush_buffer t u.u_fd u.u_out ~on_fail:(fun () -> member_down t m "write failed")
  | _ -> ()

let send_upstream t m line dest =
  match m.m_state with
  | Up u ->
      Buffer.add_string u.u_out line;
      Buffer.add_char u.u_out '\n';
      Queue.push dest m.m_pending;
      flush_member t m
  | _ -> fail_dest t m.m_spec.Shard.sp_shard dest

(* One nonblocking connection attempt per tick while Connecting. *)
let try_connect t m =
  match m.m_state with
  | Connecting deadline ->
      let sock = m.m_spec.Shard.sp_socket in
      let connected =
        if Sys.file_exists sock then begin
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect fd (Unix.ADDR_UNIX sock) with
          | () ->
              Unix.set_nonblock fd;
              m.m_state <-
                Up
                  {
                    u_fd = fd;
                    u_lines =
                      Line_buf.create ~max_line_bytes:upstream_line_cap
                        ~max_buf_bytes:upstream_line_cap ();
                    u_out = Buffer.create 256;
                  };
              log t "shard %d %s up on %s" m.m_spec.Shard.sp_shard (role_label m) sock;
              (match m.m_notify with
              | Some slot ->
                  m.m_notify <- None;
                  fill_slot t slot
                    (P.ok
                       (P.Obj
                          [
                            ("shard", P.Int m.m_spec.Shard.sp_shard);
                            ("role", P.Str (role_label m));
                            ("socket", P.Str sock);
                          ]))
              | None -> ());
              true
          | exception Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              false
        end
        else false
      in
      if (not connected) && Int64.compare (Clock.now_ns ()) deadline > 0 then begin
        m.m_state <- Down;
        log t "shard %d %s failed to come up within %.1fs" m.m_spec.Shard.sp_shard (role_label m)
          t.config.boot_timeout_s;
        match m.m_notify with
        | Some slot ->
            m.m_notify <- None;
            fill_slot t slot
              (P.err_line
                 (P.error ~code:shard_down_code
                    (Printf.sprintf "shard %d replica failed to start" m.m_spec.Shard.sp_shard)))
        | None -> ()
      end
  | _ -> ()

(* Reap exited children so a killed worker can't linger as a zombie. *)
let reap t =
  List.iter
    (fun m ->
      match m.m_pid with
      | Some pid -> (
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, _ -> m.m_pid <- None
          | exception Unix.Unix_error _ -> m.m_pid <- None)
      | None -> ())
    (all_members t)

(* --- request routing ----------------------------------------------------- *)

let quote_word w =
  if w <> "" && String.for_all (fun c -> c <> ' ' && c <> '\'' && c <> '"') w then w
  else "\"" ^ w ^ "\""

let pick_read g =
  let ups = List.filter is_up g.g_members in
  match ups with
  | [] -> None
  | _ ->
      let m = List.nth ups (g.g_rr mod List.length ups) in
      g.g_rr <- g.g_rr + 1;
      Some m

let group_for t name = t.groups.(Shard.id_of_name ~shards:t.config.shards name)

let member_json m =
  P.Obj
    [
      ("shard", P.Int m.m_spec.Shard.sp_shard);
      ("role", P.Str (role_label m));
      ("socket", P.Str m.m_spec.Shard.sp_socket);
      ("pid", match m.m_pid with Some pid -> P.Int pid | None -> P.Null);
      ( "state",
        P.Str (match m.m_state with Up _ -> "up" | Connecting _ -> "connecting" | Down -> "down")
      );
      ("pending", P.Int (Queue.length m.m_pending));
      ("probes_sent", P.Int m.m_probes_sent);
      ("pongs", P.Int m.m_pongs);
      ( "last_pong_ms",
        if Int64.equal m.m_last_pong 0L then P.Null
        else P.Int (Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) m.m_last_pong) 1_000_000L))
      );
    ]

let topology_json t =
  P.Obj
    [
      ("shards", P.Int t.config.shards);
      ("respawn", P.Bool t.config.respawn);
      ("members", P.List (List.map member_json (all_members t)));
    ]

let router_stats_json t =
  Metrics.to_json t.metrics
    ~extra:
      [
        ("protocol_version", P.Int P.protocol_version);
        ("role", P.Str "router");
        ("shards", P.Int t.config.shards);
      ]

(* Fan one request line (or a per-target rewrite of it) to [targets];
   down members contribute a [None] part immediately. *)
let fanout t slot targets ~line_for ~finish =
  match targets with
  | [] -> fill_slot t slot (P.err_line (P.error ~code:shard_down_code "no shards are up"))
  | _ ->
      let parts =
        Array.of_list
          (List.map (fun m -> (m.m_spec.Shard.sp_shard, role_label m, None)) targets)
      in
      let agg = { a_slot = slot; a_parts = parts; a_remaining = List.length targets; a_finish = finish } in
      List.iteri
        (fun i m ->
          match m.m_state with
          | Up _ -> send_upstream t m (line_for m) (Part (agg, i))
          | _ -> complete_part t agg i None)
        targets

(* Parse the payload of an OK reply line; None for ERR / absent / unparsable. *)
let payload_of = function
  | None -> None
  | Some line ->
      if P.is_ok line && String.length line > 3 then
        match Json.parse (String.sub line 3 (String.length line - 3)) with
        | Ok j -> Some j
        | Error _ -> None
      else None

let finish_version parts =
  let oks = Array.to_list parts |> List.filter_map (fun (_, _, r) -> r) |> List.filter P.is_ok in
  match oks with
  | [] -> P.err_line (P.error ~code:shard_down_code "no shards are up")
  | first :: rest ->
      if List.for_all (( = ) first) rest then first
      else
        (* Mixed worker builds mid-upgrade: expose the disagreement. *)
        P.ok
          (P.Obj
             [
               ( "shards",
                 P.List
                   (Array.to_list parts
                   |> List.map (fun (shard, _, r) ->
                          P.Obj
                            [
                              ("shard", P.Int shard);
                              ("version", match payload_of r with Some j -> j | None -> P.Null);
                            ])) );
             ])

let finish_graphs parts =
  let payloads = Array.to_list parts |> List.filter_map (fun (_, _, r) -> payload_of r) in
  if payloads = [] then P.err_line (P.error ~code:shard_down_code "no shards are up")
  else P.ok (merge_graphs payloads)

let finish_stats t parts =
  let jparts =
    Array.to_list parts |> List.map (fun (shard, role, r) -> (shard, role, payload_of r))
  in
  P.ok (merge_stats ~router:(router_stats_json t) ~shards:t.config.shards ~parts:jparts)

let finish_snapshots parts =
  (* Any failing shard fails the whole operation: a partial snapshot set
     silently missing a shard would restore into silent data loss. The
     first failure line (already a classified ERR) forwards verbatim. *)
  let first_err =
    Array.to_list parts
    |> List.find_map (fun (shard, _, r) ->
           match r with
           | None -> Some (shard_down_line shard)
           | Some line when not (P.is_ok line) -> Some line
           | Some _ -> None)
  in
  match first_err with
  | Some line -> line
  | None ->
      let payloads =
        Array.to_list parts
        |> List.filter_map (fun (shard, _, r) ->
               match payload_of r with Some j -> Some (shard, j) | None -> None)
      in
      P.ok (merge_snapshots payloads)

(* Merge the sub-batch replies of a fanned batched PREDICT. Chunks are
   contiguous in request order, so forwarding the first failing part
   verbatim reproduces the single daemon's first-error semantics (its
   whole reply is the first failing graph's classified error); otherwise
   the per-member ["batch"] arrays concatenate back into request order
   and the envelope is rebuilt in the worker's exact field order, which
   round-trips byte-identically through {!Json}. *)
let finish_predict_batch model ~graphs parts =
  let first_err =
    Array.to_list parts
    |> List.find_map (fun (shard, _, r) ->
           match r with
           | None -> Some (shard_down_line shard)
           | Some line when not (P.is_ok line) -> Some line
           | Some _ -> None)
  in
  match first_err with
  | Some line -> line
  | None ->
      let payloads = Array.to_list parts |> List.filter_map (fun (_, _, r) -> payload_of r) in
      let field name p = match p with P.Obj fields -> List.assoc_opt name fields | _ -> None in
      let batch =
        List.concat_map
          (fun p -> match field "batch" p with Some (P.List items) -> items | _ -> [])
          payloads
      in
      if List.length batch <> graphs then
        P.err_line
          (P.error ~code:"ERR_INTERNAL"
             (Printf.sprintf "batched PREDICT merge produced %d of %d rows" (List.length batch)
                graphs))
      else
        let first name =
          match payloads with
          | p :: _ -> Option.value ~default:P.Null (field name p)
          | [] -> P.Null
        in
        P.ok
          (P.Obj
             [
               ("model", P.Str model);
               ("task", first "task");
               ("mode", first "mode");
               ("graphs", P.Int graphs);
               ("batch", P.List batch);
             ])

let primaries t = Array.to_list t.groups |> List.map (fun g -> List.hd g.g_members)

let start_replica t slot shard =
  if shard < 0 || shard >= t.config.shards then
    fill_slot t slot
      (P.err_line
         (P.error ~code:"ERR_BAD_ARG" (Printf.sprintf "no such shard %d (0..%d)" shard (t.config.shards - 1))))
  else
    match t.config.make_replica with
    | None ->
        fill_slot t slot
          (P.err_line (P.error ~code:"ERR_BAD_ARG" "replica spawning is not available here"))
    | Some make ->
        let g = t.groups.(shard) in
        let primary = List.hd g.g_members in
        if not (is_up primary) then fill_slot t slot (shard_down_line shard)
        else begin
          let index = List.length (List.tl g.g_members) + 1 in
          let spec = make ~shard ~index in
          match spec.Shard.sp_snapshot with
          | None ->
              fill_slot t slot
                (P.err_line (P.error ~code:"ERR_INTERNAL" "replica spec has no snapshot path"))
          | Some snap ->
              (* Snapshot shipping: SAVE on the primary straight into the
                 replica's boot snapshot path, then spawn the replica on
                 it. The reply waits until the replica accepts. *)
              send_upstream t primary
                (Printf.sprintf "SAVE %s" (quote_word snap))
                (Replica_save (slot, spec))
        end

let handle_replica_saved t slot spec line =
  if not (P.is_ok line) then fill_slot t slot line
  else begin
    let m =
      {
        m_spec = spec;
        m_pid = None;
        m_state = Down;
        m_respawns = 0;
        m_pending = Queue.create ();
        m_notify = Some slot;
        m_probe_sent = None;
        m_last_probe = 0L;
        m_last_pong = 0L;
        m_probes_sent = 0;
        m_pongs = 0;
      }
    in
    (match spec.Shard.sp_argv with
    | Some argv ->
        let pid = Shard.spawn argv in
        m.m_pid <- Some pid;
        m.m_state <-
          Connecting (Int64.add (Clock.now_ns ()) (Int64.of_float (t.config.boot_timeout_s *. 1e9)));
        log t "shard %d %s spawning as pid %d" spec.Shard.sp_shard (Shard.role_label spec.Shard.sp_role) pid
    | None ->
        m.m_state <-
          Connecting (Int64.add (Clock.now_ns ()) (Int64.of_float (t.config.boot_timeout_s *. 1e9))));
    let g = t.groups.(spec.Shard.sp_shard) in
    g.g_members <- g.g_members @ [ m ]
  end

let mirror_diverged = "mirrored write failed where the primary succeeded"

let dispatch_reply t m dest line =
  match dest with
  | To_slot slot -> fill_slot t slot line
  | Write_primary (slot, mg) ->
      fill_slot t slot line;
      let ok = P.is_ok line in
      mg.mg_primary_ok <- Some ok;
      let deferred = mg.mg_deferred in
      mg.mg_deferred <- [];
      if ok then List.iter (fun r -> if is_up r then member_down t r mirror_diverged) deferred
  | Part (agg, i) -> complete_part t agg i (Some line)
  | Mirror mg ->
      if not (P.is_ok line) then (
        match mg.mg_primary_ok with
        | Some true -> member_down t m mirror_diverged
        | Some false -> ()  (* the primary rejected it too: still in sync *)
        | None -> mg.mg_deferred <- m :: mg.mg_deferred)
  | Discard -> ()
  | Probe ->
      m.m_probe_sent <- None;
      m.m_last_pong <- Clock.now_ns ();
      m.m_pongs <- m.m_pongs + 1
  | Replica_save (slot, spec) -> handle_replica_saved t slot spec line

(* Router-local commands (TOPOLOGY / ROUTE / REPLICA) are deliberately
   *not* in {!Protocol}: the client protocol is v4 unchanged, and these
   are operator commands of the topology layer only. *)
type router_cmd = Topology | Route of string | Replica_of of int

let router_cmd_of_tokens = function
  | [ cmd ] when String.uppercase_ascii cmd = "TOPOLOGY" -> Some Topology
  | [ cmd; name ] when String.uppercase_ascii cmd = "ROUTE" -> Some (Route name)
  | [ cmd; shard ] when String.uppercase_ascii cmd = "REPLICA" -> (
      match int_of_string_opt shard with Some s -> Some (Replica_of s) | None -> None)
  | _ -> None

(* Route a write line to its owning group: the primary answers the
   client, live replicas apply the same line so the group stays in sync,
   and their replies are audited against the primary's verdict (see
   {!mirror_group}) instead of discarded. *)
let route_write t slot g line =
  let primary = List.hd g.g_members in
  let mg = { mg_primary_ok = None; mg_deferred = [] } in
  List.iter (fun m -> if is_up m then send_upstream t m line (Mirror mg)) (List.tl g.g_members);
  send_upstream t primary line (Write_primary (slot, mg))

let handle_client_line t c line =
  let cmd_label =
    match String.index_opt line ' ' with
    | Some i -> String.uppercase_ascii (String.sub line 0 i)
    | None -> String.uppercase_ascii line
  in
  let slot = new_slot c cmd_label in
  let local reply = fill_slot t slot reply in
  match P.tokenize line with
  | Error msg -> local (P.err_line (P.error ~code:"ERR_PARSE" msg))
  | Ok tokens -> (
      match router_cmd_of_tokens tokens with
      | Some Topology -> local (P.ok (topology_json t))
      | Some (Route name) ->
          let shard = Shard.id_of_name ~shards:t.config.shards name in
          local
            (P.ok
               (P.Obj
                  [
                    ("graph", P.Str name);
                    ("shard", P.Int shard);
                    ("members", P.List (List.map member_json t.groups.(shard).g_members));
                  ]))
      | Some (Replica_of shard) -> start_replica t slot shard
      | None -> (
          match P.parse_request line with
          | Error msg -> local (P.err_line (P.error ~code:"ERR_PARSE" msg))
          | Ok { P.req; _ } -> (
              match req with
              | P.Hello ->
                  local
                    (P.ok
                       (P.Obj
                          [
                            ("server", P.Str "glqld");
                            ("version", P.Str Server.version);
                            ("protocol_version", P.Int P.protocol_version);
                            ("role", P.Str "router");
                            ("shards", P.Int t.config.shards);
                          ]))
              | P.Ping -> local (P.ok (P.Str "pong"))
              | P.Quit ->
                  local (P.ok (P.Str "bye"));
                  c.c_closing <- true
              | P.Shutdown ->
                  List.iter
                    (fun m -> if is_up m then send_upstream t m "SHUTDOWN" Discard)
                    (all_members t);
                  local (P.ok (P.Str "shutting down"));
                  Atomic.set t.stop_flag true
              | P.Version ->
                  fanout t slot (primaries t) ~line_for:(fun _ -> "VERSION") ~finish:finish_version
              | P.Graphs ->
                  fanout t slot (primaries t) ~line_for:(fun _ -> "GRAPHS") ~finish:finish_graphs
              | P.Stats ->
                  fanout t slot (all_members t) ~line_for:(fun _ -> "STATS")
                    ~finish:(fun parts -> finish_stats t parts)
              | P.Generators -> (
                  match List.find_opt is_up (all_members t) with
                  | Some m -> send_upstream t m line (To_slot slot)
                  | None ->
                      local (P.err_line (P.error ~code:shard_down_code "no shards are up")))
              | P.Load (name, _) ->
                  (* Mirror writes to live replicas so they stay in sync;
                     the client's reply is the primary's, verbatim. *)
                  route_write t slot (group_for t name) line
              | P.Mutate (name, _) ->
                  (* MUTATE is a write like LOAD: the primary answers, live
                     replicas apply the same batch so their generation and
                     graph state advance in lockstep. *)
                  route_write t slot (group_for t name) line
              | P.Query (name, _) | P.Explain (name, _) | P.Wl (name, _) | P.Kwl (name, _)
              | P.Hom (name, _)
              | P.Featurize (name, _, _) -> (
                  (* FEATURIZE is a read keyed by the graph, round-robin
                     like QUERY. *)
                  let g = group_for t name in
                  match pick_read g with
                  | Some m -> send_upstream t m line (To_slot slot)
                  | None -> local (shard_down_line g.g_shard))
              | P.Predict (model, name, _) -> (
                  (* PREDICT needs the model AND the feature graph on one
                     worker (a worker can only featurize graphs it owns,
                     and the model lives on the shard of its first TRAIN
                     source). When the router saw that TRAIN it knows the
                     model's shard and rejects a cross-shard PREDICT up
                     front with the actual constraint; otherwise it
                     routes by graph and round-robins across the group,
                     whose replicas mirrored the TRAIN. *)
                  let g = group_for t name in
                  match Hashtbl.find_opt t.model_shards model with
                  | Some owner when owner <> g.g_shard ->
                      local
                        (P.err_line
                           (P.error ~code:"ERR_BAD_ARG"
                              (Printf.sprintf
                                 "model %S lives on shard %d but graph %S hashes to shard %d: \
                                  PREDICT through the router needs the graph co-hashed with the \
                                  model's first TRAIN source"
                                 model owner name g.g_shard)))
                  | _ -> (
                      match pick_read g with
                      | Some m -> send_upstream t m line (To_slot slot)
                      | None -> local (shard_down_line g.g_shard)))
              | P.Predict_batch (model, graphs) -> (
                  (* Batched PREDICT fans the read across the owning
                     group's live members: the graph list splits into
                     contiguous chunks, each member answers its sub-batch
                     with the same wire form, and the router concatenates
                     the ["batch"] arrays back into request order (see
                     {!finish_predict_batch}). Every graph must co-hash
                     with the model, like single PREDICT. *)
                  let shards_hit =
                    List.sort_uniq compare
                      (List.map (fun g -> Shard.id_of_name ~shards:t.config.shards g) graphs)
                  in
                  match shards_hit with
                  | [] -> local (P.err_line (P.error ~code:"ERR_BAD_ARG" "PREDICT ON: empty graph list"))
                  | _ :: _ :: _ ->
                      local
                        (P.err_line
                           (P.error ~code:"ERR_BAD_ARG"
                              (Printf.sprintf
                                 "batched PREDICT through the router needs every graph on one \
                                  shard, but these hash to shards %s: co-hash the graph names \
                                  with the model's first TRAIN source"
                                 (String.concat ", " (List.map string_of_int shards_hit)))))
                  | [ shard ] -> (
                      let g = t.groups.(shard) in
                      match Hashtbl.find_opt t.model_shards model with
                      | Some owner when owner <> shard ->
                          local
                            (P.err_line
                               (P.error ~code:"ERR_BAD_ARG"
                                  (Printf.sprintf
                                     "model %S lives on shard %d but the graphs hash to shard %d: \
                                      PREDICT through the router needs the graph co-hashed with \
                                      the model's first TRAIN source"
                                     model owner shard)))
                      | _ -> (
                          match List.filter is_up g.g_members with
                          | [] -> local (shard_down_line shard)
                          | [ _ ] -> (
                              (* One live member: forward verbatim (keeps
                                 any TRACE suffix, trivially byte-equal). *)
                              match pick_read g with
                              | Some m -> send_upstream t m line (To_slot slot)
                              | None -> local (shard_down_line shard))
                          | ups ->
                              let n = List.length graphs in
                              let k = min (List.length ups) n in
                              let chunk_size = (n + k - 1) / k in
                              let rec chunks = function
                                | [] -> []
                                | xs ->
                                    let rec take i = function
                                      | x :: rest when i < chunk_size ->
                                          let hd, tl = take (i + 1) rest in
                                          (x :: hd, tl)
                                      | rest -> ([], rest)
                                    in
                                    let hd, tl = take 0 xs in
                                    hd :: chunks tl
                              in
                              let parts_graphs = chunks graphs in
                              let targets =
                                List.filteri (fun i _ -> i < List.length parts_graphs) ups
                              in
                              let assignments = List.combine targets parts_graphs in
                              fanout t slot targets
                                ~line_for:(fun m ->
                                  Printf.sprintf "PREDICT %s ON %s" (quote_word model)
                                    (quote_word (String.concat "," (List.assq m assignments))))
                                ~finish:(finish_predict_batch model ~graphs:n))))
              | P.Train spec -> (
                  (* TRAIN is a write keyed by its *first* source graph:
                     the primary answers and live replicas run the same
                     fit so PREDICT can round-robin across the group. A
                     multi-graph TRAIN needs all its graphs on one shard
                     (co-hashing names); a graph living elsewhere fails
                     naturally with ERR_UNKNOWN_GRAPH from the worker. *)
                  match spec.P.t_graphs with
                  | [] -> local (P.err_line (P.error ~code:"ERR_BAD_ARG" "TRAIN needs ON <graphs>"))
                  | name :: _ ->
                      let g = group_for t name in
                      Hashtbl.replace t.model_shards spec.P.t_model g.g_shard;
                      route_write t slot g line)
              | P.Models ->
                  fanout t slot (primaries t) ~line_for:(fun _ -> "MODELS")
                    ~finish:(fun parts ->
                      let payloads =
                        Array.to_list parts |> List.filter_map (fun (_, _, r) -> payload_of r)
                      in
                      if payloads = [] then
                        P.err_line (P.error ~code:shard_down_code "no shards are up")
                      else P.ok (merge_models payloads))
              | P.Save requested ->
                  (* Each shard snapshots to its own file: <path>.shardI
                     when a path was given, the worker's own --snapshot
                     default otherwise. Primaries only — a replica
                     writing the same per-shard file would race it. *)
                  fanout t slot (primaries t)
                    ~line_for:(fun m ->
                      match requested with
                      | Some path ->
                          Printf.sprintf "SAVE %s"
                            (quote_word (Printf.sprintf "%s.shard%d" path m.m_spec.Shard.sp_shard))
                      | None -> "SAVE")
                    ~finish:finish_snapshots
              | P.Restore requested ->
                  (* Replicas restore the same per-shard file so the whole
                     shard group converges on the restored state. *)
                  let line_for m =
                    match requested with
                    | Some path ->
                        Printf.sprintf "RESTORE %s"
                          (quote_word (Printf.sprintf "%s.shard%d" path m.m_spec.Shard.sp_shard))
                    | None -> "RESTORE"
                  in
                  List.iter
                    (fun m ->
                      if m.m_spec.Shard.sp_role <> Shard.Primary && is_up m then
                        send_upstream t m (line_for m) Discard)
                    (all_members t);
                  fanout t slot (primaries t) ~line_for ~finish:finish_snapshots)))

(* --- select loop --------------------------------------------------------- *)

let spawn_managed t =
  List.iter
    (fun m ->
      (match m.m_spec.Shard.sp_argv with
      | Some argv ->
          let pid = Shard.spawn argv in
          m.m_pid <- Some pid;
          log t "shard %d %s spawned as pid %d" m.m_spec.Shard.sp_shard (role_label m) pid
      | None -> ());
      m.m_state <-
        Connecting (Int64.add (Clock.now_ns ()) (Int64.of_float (t.config.boot_timeout_s *. 1e9))))
    (all_members t)

(* Block until every member is up (or its boot deadline passed) before
   opening the front socket: a client that can connect should find the
   topology serving, not racing its own boot. *)
let wait_boot t =
  let rec loop () =
    List.iter (fun m -> try_connect t m) (all_members t);
    if List.exists (fun m -> match m.m_state with Connecting _ -> true | _ -> false) (all_members t)
    then begin
      ignore (Unix.select [] [] [] 0.05);
      loop ()
    end
  in
  loop ()

let terminate_children t =
  List.iter
    (fun m ->
      match m.m_pid with
      | Some pid -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      | None -> ())
    (all_members t);
  let deadline = Clock.deadline_after 10.0 in
  let rec wait_all () =
    reap t;
    if List.exists (fun m -> m.m_pid <> None) (all_members t) then
      if Clock.expired deadline then
        List.iter
          (fun m ->
            match m.m_pid with
            | Some pid ->
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
                m.m_pid <- None
            | None -> ())
          (all_members t)
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait_all ()
      end
  in
  wait_all ()

let serve t =
  let prev_handlers =
    List.map
      (fun signal ->
        (signal, Sys.signal signal (Sys.Signal_handle (fun _ -> Atomic.set t.stop_flag true))))
      [ Sys.sigint; Sys.sigterm ]
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  spawn_managed t;
  wait_boot t;
  let listeners = ref [] in
  (match t.config.socket_path with
  | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      listeners := fd :: !listeners;
      log t "routing on unix socket %s" path
  | None -> ());
  (match t.config.tcp_port with
  | Some port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      listeners := fd :: !listeners;
      log t "routing on tcp port %d" port
  | None -> ());
  if !listeners = [] then invalid_arg "Router.serve: no socket_path and no tcp_port";
  let conns : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let chunk = Bytes.create 65536 in
  let member_fd m = match m.m_state with Up u -> Some u.u_fd | _ -> None in
  let member_by_fd fd =
    List.find_opt (fun m -> member_fd m = Some fd) (all_members t)
  in
  let read_member m =
    match m.m_state with
    | Up u -> (
        match Unix.read u.u_fd chunk 0 (Bytes.length chunk) with
        | 0 -> member_down t m "EOF"
        | nread -> (
            Metrics.add_io t.metrics ~bytes_in:nread ~bytes_out:0;
            match Line_buf.feed u.u_lines chunk ~off:0 ~len:nread with
            | Ok lines ->
                List.iter
                  (fun line ->
                    match Queue.take_opt m.m_pending with
                    | Some dest -> dispatch_reply t m dest line
                    | None -> log t "shard %d sent an unsolicited line" m.m_spec.Shard.sp_shard)
                  lines
            | Error _ -> member_down t m "reply overflowed the framing caps")
        | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
        | exception Unix.Unix_error _ -> member_down t m "read failed")
    | _ -> ()
  in
  let read_client c =
    match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> c.c_closing <- true
    | nread -> (
        Metrics.add_io t.metrics ~bytes_in:nread ~bytes_out:0;
        match Line_buf.feed c.c_lines chunk ~off:0 ~len:nread with
        | Ok lines ->
            List.iter (fun line -> if String.trim line <> "" then handle_client_line t c line) lines
        | Error e ->
            let err =
              match e with
              | Line_buf.Line_too_long limit ->
                  P.error ~code:"ERR_LIMIT_LINE"
                    (Printf.sprintf "request line exceeds the %d-byte limit" limit)
              | Line_buf.Buffer_overflow limit ->
                  P.error ~code:"ERR_LIMIT_INBUF"
                    (Printf.sprintf "connection buffered more than %d bytes without a newline" limit)
            in
            Metrics.conn_dropped t.metrics;
            Buffer.add_string c.c_out (P.err_line err ^ "\n");
            flush_client t c;
            Buffer.clear c.c_out;
            c.c_dead <- true;
            c.c_closing <- true)
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ ->
        c.c_dead <- true;
        c.c_closing <- true
  in
  let accept_on fd =
    match Unix.accept fd with
    | client_fd, _ ->
        if Hashtbl.length conns >= t.config.max_connections then begin
          Metrics.conn_rejected t.metrics;
          let line =
            P.err_line
              (P.error ~code:"ERR_LIMIT_CONNS"
                 (Printf.sprintf "router is at its %d-connection limit" t.config.max_connections))
            ^ "\n"
          in
          (try ignore (Unix.write_substring client_fd line 0 (String.length line))
           with Unix.Unix_error _ -> ());
          try Unix.close client_fd with Unix.Unix_error _ -> ()
        end
        else begin
          Unix.set_nonblock client_fd;
          Hashtbl.replace conns client_fd
            {
              c_fd = client_fd;
              c_lines =
                Line_buf.create ~max_line_bytes:t.config.max_line_bytes
                  ~max_buf_bytes:t.config.max_inbuf_bytes ();
              c_out = Buffer.create 256;
              c_closing = false;
              c_dead = false;
              c_slots = Queue.create ();
            }
        end
    | exception Unix.Unix_error _ -> ()
  in
  let one_tick ~accepting =
    let watched_read =
      (if accepting then !listeners else [])
      @ Hashtbl.fold (fun fd c acc -> if c.c_closing then acc else fd :: acc) conns []
      @ List.filter_map member_fd (all_members t)
    in
    let watched_write =
      Hashtbl.fold (fun fd c acc -> if Buffer.length c.c_out > 0 then fd :: acc else acc) conns []
      @ List.filter_map
          (fun m ->
            match m.m_state with
            | Up u when Buffer.length u.u_out > 0 -> Some u.u_fd
            | _ -> None)
          (all_members t)
    in
    let readable, writable =
      match Unix.select watched_read watched_write [] 0.25 with
      | readable, writable, _ -> (readable, writable)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt conns fd with
        | Some c -> flush_client t c
        | None -> ( match member_by_fd fd with Some m -> flush_member t m | None -> ()))
      writable;
    List.iter
      (fun fd ->
        if accepting && List.mem fd !listeners then accept_on fd
        else
          match Hashtbl.find_opt conns fd with
          | Some c -> read_client c
          | None -> ( match member_by_fd fd with Some m -> read_member m | None -> ()))
      readable;
    reap t;
    List.iter (fun m -> try_connect t m) (all_members t);
    (* Health probes: PING each up member on a cadence and mark it down
       when the oldest pong is overdue. Probing pauses during the drain
       phase so probe destinations can't keep the drain loop spinning. *)
    if accepting && t.config.probe_interval_s > 0.0 then begin
      let now = Clock.now_ns () in
      let interval_ns = Int64.of_float (t.config.probe_interval_s *. 1e9) in
      let timeout_ns = Int64.of_float (t.config.probe_timeout_s *. 1e9) in
      List.iter
        (fun m ->
          if is_up m then
            match m.m_probe_sent with
            | Some sent ->
                (* In-order workers queue the pong behind real work, so
                   an unanswered probe only counts against the timeout
                   while nothing else is pending: slide the window
                   whenever the member is busy with actual requests. *)
                let busy =
                  Queue.fold
                    (fun acc d -> acc || match d with Probe -> false | _ -> true)
                    false m.m_pending
                in
                if busy then m.m_probe_sent <- Some now
                else if Int64.compare (Int64.sub now sent) timeout_ns > 0 then
                  member_down t m
                    (Printf.sprintf "health probe unanswered for %.1fs" t.config.probe_timeout_s)
            | None ->
                if Int64.compare (Int64.sub now m.m_last_probe) interval_ns >= 0 then begin
                  m.m_probe_sent <- Some now;
                  m.m_last_probe <- now;
                  m.m_probes_sent <- m.m_probes_sent + 1;
                  send_upstream t m "PING" Probe
                end)
        (all_members t)
    end;
    (* Reap clients whose replies are fully delivered. *)
    let dead =
      Hashtbl.fold
        (fun fd c acc ->
          let finished = c.c_dead || (c.c_closing && Queue.is_empty c.c_slots) in
          if finished && Buffer.length c.c_out = 0 then (fd, c) :: acc else acc)
        conns []
    in
    List.iter
      (fun (fd, c) ->
        (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
        Hashtbl.remove conns fd)
      dead
  in
  while not (Atomic.get t.stop_flag) do
    one_tick ~accepting:true
  done;
  (* Drain: stop accepting, give in-flight shard replies a bounded window
     to land in their slots and flush, then fail the stragglers. *)
  let drain_deadline = Clock.deadline_after t.config.drain_timeout_s in
  let in_flight () = List.exists (fun m -> not (Queue.is_empty m.m_pending)) (all_members t) in
  while in_flight () && not (Clock.expired drain_deadline) do
    one_tick ~accepting:false
  done;
  List.iter
    (fun m ->
      Queue.iter (fun dest -> fail_dest t m.m_spec.Shard.sp_shard dest) m.m_pending;
      Queue.clear m.m_pending)
    (all_members t);
  (* Last flush of client outbufs, bounded like the server's. *)
  let flush_deadline = Clock.deadline_after 2.0 in
  let rec flush_remaining () =
    let waiting =
      Hashtbl.fold
        (fun fd c acc -> if Buffer.length c.c_out > 0 then (fd, c) :: acc else acc)
        conns []
    in
    if waiting <> [] && not (Clock.expired flush_deadline) then begin
      (match Unix.select [] (List.map fst waiting) [] 0.1 with
      | _, writable, _ ->
          List.iter (fun (fd, c) -> if List.mem fd writable then flush_client t c) waiting
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      flush_remaining ()
    end
  in
  flush_remaining ();
  Hashtbl.iter (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) conns;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !listeners;
  (match t.config.socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter
    (fun m -> match m.m_state with Up u -> (try Unix.close u.u_fd with Unix.Unix_error _ -> ()) | _ -> ())
    (all_members t);
  terminate_children t;
  List.iter (fun (signal, h) -> try Sys.set_signal signal h with Invalid_argument _ -> ()) prev_handlers;
  let served = Metrics.requests t.metrics in
  Printf.eprintf "glqld-router: routed %d requests (%d errors), shutting down cleanly\n%!" served
    (Metrics.errors t.metrics);
  served
