(** The router front of the sharded glqld topology ([glqld --router]).

    One select loop that speaks the worker protocol {e unchanged} to
    clients and multiplexes requests over persistent nonblocking
    connections to N shard workers (each a full glqld, see {!Shard}).
    Graph-keyed commands — including v6 [FEATURIZE] and [PREDICT] as
    reads and [TRAIN] as a write keyed by its first source graph —
    forward verbatim to the owning shard (replies are byte-identical to
    a single-process glqld with the same registry); GRAPHS / STATS /
    VERSION / SAVE / RESTORE / MODELS fan out and merge. A dead worker
    yields [ERR_SHARD_DOWN] for its shard's graphs while every other
    shard keeps serving; with [respawn] the worker is relaunched from
    its last snapshot. The router also health-probes every up member
    (periodic PING on the same ordered connection), so a
    wedged-but-alive worker is marked down after [probe_timeout_s] even
    though its socket never reports EOF. Read replicas are added at
    runtime with the operator command [REPLICA <shard>] (snapshot
    shipping: SAVE on the primary, boot the replica from the file) and
    reads round-robin across primary + replicas; TRAIN mirrors to
    replicas like LOAD / MUTATE so PREDICT can fan out across the whole
    group.

    Operator commands answered by the router itself: [TOPOLOGY] (member
    table with pids and states), [ROUTE <name>] (shard placement of a
    graph name), [REPLICA <shard>]. *)

type config = {
  socket_path : string option;  (** front unix socket clients connect to *)
  tcp_port : int option;
  shards : int;
  respawn : bool;  (** relaunch dead managed workers from their argv *)
  max_connections : int;
  max_line_bytes : int;
  max_inbuf_bytes : int;
  boot_timeout_s : float;  (** window for a spawned worker to accept *)
  drain_timeout_s : float;  (** shutdown window for in-flight replies *)
  probe_interval_s : float;
      (** health-probe cadence: the router PINGs each up member this
          often so a wedged-but-connected worker is detected before an
          EOF would surface it; [<= 0] disables probing *)
  probe_timeout_s : float;
      (** window for the oldest unanswered probe before the member is
          marked down. Workers answer strictly in order, so a pong
          queues behind in-flight work — keep this generous (well above
          the slowest legitimate request). *)
  make_replica : (shard:int -> index:int -> Shard.spec) option;
      (** builds the spec of a fresh replica; [None] disables REPLICA *)
  verbose : bool;
}

val default_config : config

(** Merged GRAPHS payload: per-shard lists concatenated and sorted by
    (name, vertices, edges) — byte-identical to a single registry. *)
val merge_graphs : Protocol.json list -> Protocol.json

(** Merged MODELS payload: per-shard model summaries unioned and sorted
    by name (first occurrence wins on a duplicate name), matching the
    single-process [Models.list] order. *)
val merge_models : Protocol.json list -> Protocol.json

(** Merged STATS payload. [parts] is [(shard, role, stats)] per member
    ([None] = down). Integer counters of {e primary} parts sum
    field-by-field (and "by_command" key-by-key) in the first primary's
    field order; [protocol_version] is consensus; per-member raw stats
    ride along under "members". *)
val merge_stats :
  router:Protocol.json ->
  shards:int ->
  parts:(int * string * Protocol.json option) list ->
  Protocol.json

(** Merged SAVE/RESTORE payload: per-shard summaries under "shards",
    byte/graph/coloring/plan counters summed. *)
val merge_snapshots : (int * Protocol.json) list -> Protocol.json

type t

(** [create config specs] builds a router over the given members. Every
    shard in [0 .. shards-1] needs exactly one {!Shard.Primary} spec;
    members with [sp_argv = Some argv] are spawned (and respawned) by
    the router, [None] marks externally managed workers it only
    connects to. *)
val create : config -> Shard.spec list -> t

(** Ask the loop to stop (signal-safe). *)
val stop : t -> unit

(** Spawn/connect the members, open the front socket, route until
    SIGINT/SIGTERM/SHUTDOWN, then drain in-flight replies, terminate
    managed workers (SIGTERM, escalating to SIGKILL), and return the
    number of requests routed. *)
val serve : t -> int
