(** The router front of the sharded glqld topology ([glqld --router]).

    One select loop that speaks protocol v4 {e unchanged} to clients and
    multiplexes requests over persistent nonblocking connections to N
    shard workers (each a full glqld, see {!Shard}). Graph-keyed
    commands forward verbatim to the owning shard (replies are
    byte-identical to a single-process glqld with the same registry);
    GRAPHS / STATS / VERSION / SAVE / RESTORE fan out and merge. A dead
    worker yields [ERR_SHARD_DOWN] for its shard's graphs while every
    other shard keeps serving; with [respawn] the worker is relaunched
    from its last snapshot. Read replicas are added at runtime with the
    operator command [REPLICA <shard>] (snapshot shipping: SAVE on the
    primary, boot the replica from the file) and reads round-robin
    across primary + replicas.

    Operator commands answered by the router itself: [TOPOLOGY] (member
    table with pids and states), [ROUTE <name>] (shard placement of a
    graph name), [REPLICA <shard>]. *)

type config = {
  socket_path : string option;  (** front unix socket clients connect to *)
  tcp_port : int option;
  shards : int;
  respawn : bool;  (** relaunch dead managed workers from their argv *)
  max_connections : int;
  max_line_bytes : int;
  max_inbuf_bytes : int;
  boot_timeout_s : float;  (** window for a spawned worker to accept *)
  drain_timeout_s : float;  (** shutdown window for in-flight replies *)
  make_replica : (shard:int -> index:int -> Shard.spec) option;
      (** builds the spec of a fresh replica; [None] disables REPLICA *)
  verbose : bool;
}

val default_config : config

(** Merged GRAPHS payload: per-shard lists concatenated and sorted by
    (name, vertices, edges) — byte-identical to a single registry. *)
val merge_graphs : Protocol.json list -> Protocol.json

(** Merged STATS payload. [parts] is [(shard, role, stats)] per member
    ([None] = down). Integer counters of {e primary} parts sum
    field-by-field (and "by_command" key-by-key) in the first primary's
    field order; [protocol_version] is consensus; per-member raw stats
    ride along under "members". *)
val merge_stats :
  router:Protocol.json ->
  shards:int ->
  parts:(int * string * Protocol.json option) list ->
  Protocol.json

(** Merged SAVE/RESTORE payload: per-shard summaries under "shards",
    byte/graph/coloring/plan counters summed. *)
val merge_snapshots : (int * Protocol.json) list -> Protocol.json

type t

(** [create config specs] builds a router over the given members. Every
    shard in [0 .. shards-1] needs exactly one {!Shard.Primary} spec;
    members with [sp_argv = Some argv] are spawned (and respawned) by
    the router, [None] marks externally managed workers it only
    connects to. *)
val create : config -> Shard.spec list -> t

(** Ask the loop to stop (signal-safe). *)
val stop : t -> unit

(** Spawn/connect the members, open the front socket, route until
    SIGINT/SIGTERM/SHUTDOWN, then drain in-flight replies, terminate
    managed workers (SIGTERM, escalating to SIGKILL), and return the
    number of requests routed. *)
val serve : t -> int
