(* The glqld request loop.

   Concurrency model: the main domain owns all sockets and runs a select
   loop; each iteration reads whatever complete request lines arrived on
   any connection and dispatches the whole batch through
   Pool.parallel_map_array, so requests from concurrent clients run on
   the domain pool in parallel while replies are written back in arrival
   order per connection. Client sockets are nonblocking with a
   per-connection output buffer flushed via the select write set, so a
   client that stops reading stalls only itself (and is dropped once its
   backlog passes [max_conn_outbuf]). Handlers are pure apart from the mutex-guarded
   caches/metrics/registry, and any Pool entry point a kernel reaches from
   a worker domain degrades to its sequential fallback (the pool's nesting
   rule), so batch dispatch is safe for every pool size.

   Timeouts are cooperative at two granularities: the deadline is
   checked between pipeline stages (after plan lookup, before
   evaluation), and threaded into the long kernels themselves — colour
   refinement and k-WL check it once per round, hom profiles once per
   pattern — so a request that blows --timeout inside a kernel aborts
   with ERR_DEADLINE instead of running to completion. The
   [max_table_cells] guard rejects queries whose materialisation is
   hopeless upfront, and HOM carries an analogous cost estimate.

   Resource governance: accepts beyond [max_connections] are refused
   with ERR_LIMIT_CONNS; per-connection input framing (Line_buf) caps a
   single request line ([max_line_bytes]) and the bytes a peer may
   buffer without ever sending a newline ([max_inbuf_bytes]) — an
   over-limit peer gets one structured error line, best-effort, and is
   dropped. Caches evict by byte budgets on top of entry capacities.

   Shutdown: SIGINT/SIGTERM (or the SHUTDOWN command) set a flag; the
   loop stops accepting, drains request lines already buffered, writes
   every pending reply, dumps the metrics file, and exits cleanly. *)

module Graph = Glql_graph.Graph
module Expr = Glql_gel.Expr
module Normal_form = Glql_gel.Normal_form
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module Tree = Glql_hom.Tree
module Count = Glql_hom.Count
module Pool = Glql_util.Pool
module Clock = Glql_util.Clock
module Trace = Glql_util.Trace
module P = Protocol

type config = {
  socket_path : string option;
  tcp_port : int option;
  plan_cache_capacity : int;
  coloring_cache_capacity : int;
  plan_cache_bytes : int;
  coloring_cache_bytes : int;
  feature_cache_bytes : int;
  retrain_stale_s : float;  (* 0 = RETRAIN-on-stale disabled *)
  request_timeout_s : float;
  max_table_cells : int;
  max_connections : int;
  max_line_bytes : int;
  max_inbuf_bytes : int;
  metrics_file : string option;
  snapshot_file : string option;
  verbose : bool;
}

let default_config =
  {
    socket_path = Some "glqld.sock";
    tcp_port = None;
    plan_cache_capacity = 128;
    coloring_cache_capacity = 64;
    plan_cache_bytes = 32 * 1024 * 1024;
    coloring_cache_bytes = 256 * 1024 * 1024;
    feature_cache_bytes = 64 * 1024 * 1024;
    retrain_stale_s = 0.0;
    request_timeout_s = 30.0;
    max_table_cells = 4_000_000;
    max_connections = 256;
    max_line_bytes = 1024 * 1024;
    max_inbuf_bytes = 8 * 1024 * 1024;
    metrics_file = None;
    snapshot_file = None;
    verbose = false;
  }

(* What the last successful RESTORE (or boot-time snapshot load) brought
   in; surfaced under "restored" in STATS so a warm start is observable. *)
type restored_info = {
  r_file : string;
  r_saved_at : float;
  r_graphs : int;
  r_colorings : int;
  r_plans : int;
  r_models : int;
}

type t = {
  config : config;
  registry : Registry.t;
  cache : Cache.t;
  models : Models.t;
  metrics : Metrics.t;
  stop_flag : bool Atomic.t;
  restored : restored_info option Atomic.t;
  retrains : int Atomic.t;  (* models refit by the RETRAIN-on-stale policy *)
}

let create config =
  {
    config;
    registry = Registry.create ();
    cache =
      Cache.create ~plan_bytes:config.plan_cache_bytes
        ~coloring_bytes:config.coloring_cache_bytes
        ~feature_bytes:config.feature_cache_bytes
        ~plan_capacity:config.plan_cache_capacity
        ~coloring_capacity:config.coloring_cache_capacity ();
    models = Models.create ();
    metrics = Metrics.create ();
    stop_flag = Atomic.make false;
    restored = Atomic.make None;
    retrains = Atomic.make 0;
  }

let caches t = t.cache

let metrics t = t.metrics

let stop t = Atomic.set t.stop_flag true

let version = "0.4"

let producer = "glqld " ^ version

(* --- snapshot persistence ------------------------------------------------ *)

let snapshot_path t requested =
  match (requested, t.config.snapshot_file) with
  | Some path, _ -> Ok path
  | None, Some path -> Ok path
  | None, None -> Error "no snapshot path (give one, or start glqld with --snapshot FILE)"

let save_snapshot t path =
  Result.map
    (fun (s : Persist.summary) -> (path, s))
    (Persist.save ~registry:t.registry ~cache:t.cache ~models:(Some t.models)
       ~metrics:(Some t.metrics) ~producer path)

let restore_snapshot t path =
  match
    Persist.restore ~registry:t.registry ~cache:t.cache ~models:(Some t.models)
      ~metrics:(Some t.metrics) path
  with
  | Error _ as e -> e
  | Ok (s : Persist.summary) ->
      Atomic.set t.restored
        (Some
           {
             r_file = path;
             r_saved_at = s.Persist.s_saved_at;
             r_graphs = s.Persist.s_graphs;
             r_colorings = s.Persist.s_colorings;
             r_plans = s.Persist.s_plans;
             r_models = s.Persist.s_models;
           });
      Ok (path, s)

(* --- request handlers --------------------------------------------------- *)

let hit_tag = function `Hit -> P.Str "hit" | `Miss -> P.Str "miss"

let vec_json v = P.List (Array.to_list (Array.map (fun x -> P.Float x) v))

(* Handlers work in [(json, P.error) result]: every failure carries a
   stable ERR_* code. [fail] builds one; [tag] classifies the plain
   string errors of Registry/Cache/Persist at the call site. *)
let fail code fmt = Printf.ksprintf (fun message -> Error (P.error ~code message)) fmt

let tag code = Result.map_error (fun message -> P.error ~code message)

let check_deadline deadline stage =
  if Clock.expired deadline then
    fail "ERR_DEADLINE" "deadline exceeded before %s (request timeout)" stage
  else Ok ()

let ( let* ) r f = Result.bind r f

let max_listed_cells = 4096

let query_result t deadline graph_name src =
  let* g = tag "ERR_UNKNOWN_GRAPH" (Registry.find t.registry graph_name) in
  let* plan, hit = tag "ERR_QUERY" (Cache.plan t.cache src) in
  let n = Graph.n_vertices g in
  let fv = Expr.free_vars plan.Cache.expr in
  let p = List.length fv in
  (* Compare in float: n^p easily exceeds max_int, and int_of_float of an
     out-of-range double is unspecified — rounding down to int would let
     exactly the most hopeless queries slip past the guard. *)
  let cells = float_of_int n ** float_of_int p in
  let* () =
    if p > 0 && cells > float_of_int t.config.max_table_cells then
      fail "ERR_LIMIT_CELLS" "query would materialise %.0f cells (limit %d)" cells
        t.config.max_table_cells
    else Ok ()
  in
  let* () = check_deadline deadline "evaluation" in
  let plan_kind, values =
    match plan.Cache.layered with
    | Some nf ->
        let rows = Trace.with_span "execute" (fun () -> Normal_form.eval nf g) in
        ( "layered",
          Trace.with_span "materialize" (fun () ->
              P.List (Array.to_list (Array.map vec_json rows))) )
    | None ->
        let table = Trace.with_span "execute" (fun () -> Expr.eval g plan.Cache.expr) in
        ( "direct",
          Trace.with_span "materialize" (fun () ->
              match table.Expr.tvars with
              | [] -> vec_json table.Expr.tdata.(0)
              | [ _ ] -> P.List (Array.to_list (Array.map vec_json table.Expr.tdata))
              | vars ->
                  (* Multi-variable tables list nonzero entries only, capped. *)
                  let width = List.length vars in
                  let entries = ref [] in
                  let listed = ref 0 in
                  let truncated = ref false in
                  Array.iteri
                    (fun idx v ->
                      if Array.exists (fun x -> x <> 0.0) v then begin
                        if !listed >= max_listed_cells then truncated := true
                        else begin
                          incr listed;
                          let tuple = Array.make width 0 in
                          let rest = ref idx in
                          for pos = width - 1 downto 0 do
                            tuple.(pos) <- !rest mod table.Expr.tn;
                            rest := !rest / table.Expr.tn
                          done;
                          entries :=
                            P.Obj
                              [
                                ("t", P.List (Array.to_list (Array.map (fun i -> P.Int i) tuple)));
                                ("v", vec_json v);
                              ]
                            :: !entries
                        end
                      end)
                    table.Expr.tdata;
                  P.Obj
                    [
                      ("nonzero", P.List (List.rev !entries));
                      ("truncated", P.Bool !truncated);
                    ]) )
  in
  Ok
    (P.Obj
       [
         ("graph", P.Str graph_name);
         ("n", P.Int n);
         ("fragment", P.Str (Expr.fragment_name (Expr.fragment plan.Cache.expr)));
         ("dim", P.Int (Expr.dim plan.Cache.expr));
         ("free_vars", P.List (List.map (fun v -> P.Int v) fv));
         ("plan", P.Str plan_kind);
         ("plan_cache", hit_tag hit);
         ("values", values);
       ])

let wl_result t deadline graph_name rounds =
  let* g, gen = tag "ERR_UNKNOWN_GRAPH" (Registry.find_entry t.registry graph_name) in
  let* () = check_deadline deadline "colour refinement" in
  let result, hit = Cache.cr t.cache ~graph_name ~gen ~deadline g in
  let stable_rounds = Cr.rounds result in
  let colors =
    match rounds with
    | None -> List.hd (Cr.stable_colors result)
    | Some r -> List.hd (Cr.colors_at_round result r)
  in
  let distinct =
    let seen = Hashtbl.create 64 in
    Array.iter (fun c -> Hashtbl.replace seen c ()) colors;
    Hashtbl.length seen
  in
  Ok
    (P.Obj
       [
         ("graph", P.Str graph_name);
         ("n", P.Int (Graph.n_vertices g));
         ("rounds_to_stable", P.Int stable_rounds);
         ("rounds_used", P.Int (match rounds with None -> stable_rounds | Some r -> min (max 0 r) stable_rounds));
         ("classes", P.Int distinct);
         ("signature", P.Str (Digest.to_hex (Digest.string (Cr.graph_signature colors))));
         ( "colors",
           if Array.length colors <= max_listed_cells then
             P.List (Array.to_list (Array.map (fun c -> P.Int c) colors))
           else P.Null );
         ("coloring_cache", hit_tag hit);
       ])

let kwl_result t deadline graph_name k =
  let* g, gen = tag "ERR_UNKNOWN_GRAPH" (Registry.find_entry t.registry graph_name) in
  let* () =
    if k < 1 || k > 3 then fail "ERR_BAD_ARG" "KWL: k must be between 1 and 3" else Ok ()
  in
  let n = Graph.n_vertices g in
  let tuples = Kwl.tuple_count n k in
  let* () =
    if tuples > t.config.max_table_cells then
      fail "ERR_LIMIT_CELLS" "KWL: %d^%d tuples exceed the cell limit" n k
    else Ok ()
  in
  let* () = check_deadline deadline "k-WL refinement" in
  let result, hit = Cache.kwl t.cache ~graph_name ~gen ~k ~deadline g in
  let colors = List.hd (Kwl.stable_colors result) in
  let distinct =
    let seen = Hashtbl.create 64 in
    Array.iter (fun c -> Hashtbl.replace seen c ()) colors;
    Hashtbl.length seen
  in
  Ok
    (P.Obj
       [
         ("graph", P.Str graph_name);
         ("k", P.Int k);
         ("variant", P.Str "folklore");
         ("rounds", P.Int (Kwl.rounds result));
         ("tuple_classes", P.Int distinct);
         ("signature", P.Str (Digest.to_hex (Digest.string (Kwl.graph_signature colors))));
         ("coloring_cache", hit_tag hit);
       ])

(* Hom profiles computed once for a whole select-loop batch: graph name
   -> (generation, max tree size, full profile at that size).
   [Tree.all_free_trees_up_to] enumerates patterns in size order, so the
   profile for any smaller size is a prefix of a stored larger one. The
   table is built before the batch fans out and only read afterwards, so
   the parallel handlers share it without locking. *)
type shared = (string, int * int * float array) Hashtbl.t

let empty_shared : shared = Hashtbl.create 0

let hom_result t deadline ~(shared : shared) graph_name max_size =
  let* g, gen = tag "ERR_UNKNOWN_GRAPH" (Registry.find_entry t.registry graph_name) in
  let* () =
    if max_size < 1 || max_size > 9 then
      fail "ERR_BAD_ARG" "HOM: max tree size must be between 1 and 9"
    else Ok ()
  in
  let patterns = Tree.all_free_trees_up_to max_size in
  (* Cost guard, in the same spirit (and against the same knob) as the
     QUERY cell limit: each tree pattern costs one DP sweep of
     O(pattern-size * (n + 2m)) table-cell updates, and large registered
     graphs make the full profile hopeless — reject upfront rather than
     letting the deadline burn 30 s first. Float arithmetic for the same
     overflow reason as the n^p guard above. *)
  let n = Graph.n_vertices g in
  let work = float_of_int (n + (2 * Graph.n_edges g)) in
  let npat = List.length patterns in
  let cost = float_of_int npat *. float_of_int max_size *. work in
  let* () =
    if cost > float_of_int t.config.max_table_cells then
      fail "ERR_LIMIT_COST"
        "HOM would traverse ~%.0f DP cells (%d patterns x size %d x %.0f vertex+edge slots; \
         limit %d)"
        cost npat max_size work t.config.max_table_cells
    else Ok ()
  in
  let* () = check_deadline deadline "hom-profile computation" in
  let profile =
    match Hashtbl.find_opt shared graph_name with
    | Some (sgen, ssize, full) when sgen = gen && ssize >= max_size ->
        (* Same graph generation and the shared pass covered at least
           this size: the requested profile is a prefix. *)
        Array.sub full 0 (List.length patterns)
    | _ -> Count.profile ~deadline patterns g
  in
  Ok
    (P.Obj
       [
         ("graph", P.Str graph_name);
         ("max_tree_size", P.Int max_size);
         ("patterns", P.Int (List.length patterns));
         ("profile", vec_json profile);
       ])

(* --- model serving (v6) --------------------------------------------------- *)

let model_summary_json (m : Models.stored) =
  P.Obj
    [
      ("name", P.Str m.Models.sm_name);
      ("task", P.Str (Models.task_name m.Models.sm_task));
      ("mode", P.Str (P.feat_mode_name m.Models.sm_mode));
      ("recipe", P.Str m.Models.sm_recipe);
      ("target", P.Str m.Models.sm_target);
      ("schema_hash", P.Str (Featurize.schema_hash m.Models.sm_schema));
      ( "sources",
        P.List
          (List.map
             (fun (name, gen) -> P.Obj [ ("graph", P.Str name); ("generation", P.Int gen) ])
             m.Models.sm_sources) );
      ("rows", P.Int m.Models.sm_rows);
      ("epochs", P.Int m.Models.sm_epochs);
      ("train_metric", P.Float m.Models.sm_train_metric);
      ("test_metric", P.Float m.Models.sm_test_metric);
    ]

let featurize_result t deadline graph_name recipe mode =
  let* g, gen = tag "ERR_UNKNOWN_GRAPH" (Registry.find_entry t.registry graph_name) in
  let* cols = tag "ERR_BAD_RECIPE" (Featurize.parse_recipe recipe) in
  let* () = check_deadline deadline "featurization" in
  let* b =
    Result.map_error
      (fun (code, message) -> P.error ~code message)
      (Trace.with_span "featurize" (fun () ->
           Featurize.build ~cache:t.cache ~graph_name ~gen ~deadline
             ~max_cells:t.config.max_table_cells mode g cols))
  in
  Ok
    (P.Obj
       [
         ("graph", P.Str graph_name);
         ("mode", P.Str (P.feat_mode_name mode));
         ("rows", P.Int (Array.length b.Featurize.b_rows));
         ("cols", P.Int b.Featurize.b_width);
         ( "columns",
           P.List
             (List.map
                (fun (name, w) -> P.Obj [ ("name", P.Str name); ("width", P.Int w) ])
                b.Featurize.b_cols) );
         ("schema_hash", P.Str (Featurize.schema_hash b.Featurize.b_schema));
         ("digest", P.Str (Featurize.row_digest b.Featurize.b_rows));
         ("cache_hits", P.Int b.Featurize.b_cache_hits);
         ("cache_misses", P.Int b.Featurize.b_cache_misses);
       ])

(* Downsample a loss history for the reply: all of it when short, else an
   even stride that always keeps the final loss. *)
let losses_json losses =
  let n = Array.length losses in
  let cap = 100 in
  let picked =
    if n <= cap then Array.to_list losses
    else
      List.init cap (fun i ->
          if i = cap - 1 then losses.(n - 1) else losses.(i * n / cap))
  in
  P.List (List.map (fun l -> P.Float l) picked)

let train_result t deadline (spec : P.train_spec) =
  let* () = check_deadline deadline "training" in
  let* trained =
    Result.map_error
      (fun (code, message) -> P.error ~code message)
      (Trace.with_span "train" (fun () ->
           Models.train ~registry:t.registry ~cache:t.cache ~models:t.models ~deadline
             ~max_cells:t.config.max_table_cells spec))
  in
  let m = trained.Models.tr_stored in
  let losses = m.Models.sm_losses in
  let final = if Array.length losses = 0 then 0.0 else losses.(Array.length losses - 1) in
  Ok
    (P.Obj
       [
         ("model", P.Str m.Models.sm_name);
         ("task", P.Str (Models.task_name m.Models.sm_task));
         ("mode", P.Str (P.feat_mode_name m.Models.sm_mode));
         ( "sources",
           P.List
             (List.map
                (fun (name, gen) -> P.Obj [ ("graph", P.Str name); ("generation", P.Int gen) ])
                m.Models.sm_sources) );
         ("rows", P.Int m.Models.sm_rows);
         ("cols", P.Int (List.hd m.Models.sm_sizes));
         ("schema_hash", P.Str (Featurize.schema_hash m.Models.sm_schema));
         ("epochs", P.Int m.Models.sm_epochs);
         ("losses", losses_json losses);
         ("loss_final", P.Float final);
         ("train_metric", P.Float m.Models.sm_train_metric);
         ("test_metric", P.Float m.Models.sm_test_metric);
         ("cache_hits", P.Int trained.Models.tr_hits);
         ("cache_misses", P.Int trained.Models.tr_misses);
       ])

let predict_result t deadline model graph vertices =
  let* () = check_deadline deadline "prediction" in
  let* p =
    Result.map_error
      (fun (code, message) -> P.error ~code message)
      (Trace.with_span "predict" (fun () ->
           Models.predict ~registry:t.registry ~cache:t.cache ~models:t.models ~deadline
             ~max_cells:t.config.max_table_cells ~model ~graph ~vertices ()))
  in
  let m = p.Models.pr_model in
  let rows = p.Models.pr_rows in
  let truncated = Array.length rows > max_listed_cells in
  let listed = if truncated then Array.sub rows 0 max_listed_cells else rows in
  let row_json (i, score) =
    P.Obj
      ([ ("row", P.Int i); ("score", P.Float score) ]
      @
      match m.Models.sm_task with
      | Models.Classify -> [ ("label", P.Int (if score >= 0.0 then 1 else 0)) ]
      | Models.Regress -> [])
  in
  Ok
    (P.Obj
       [
         ("model", P.Str model);
         ("graph", P.Str graph);
         ("task", P.Str (Models.task_name m.Models.sm_task));
         ("mode", P.Str (P.feat_mode_name m.Models.sm_mode));
         ("stale", P.Bool p.Models.pr_stale);
         ("unseen", P.Bool p.Models.pr_unseen);
         ("n", P.Int (Array.length rows));
         ("predictions", P.List (Array.to_list (Array.map row_json listed)));
         ("truncated", P.Bool truncated);
       ])

(* Batched corpus PREDICT: every graph's payload is the exact object a
   single PREDICT would return (so the router can split the list across
   shard replicas and re-concatenate the parts byte-identically). The
   batch is atomic on errors: the first failing graph's classified error
   is the whole reply, matching what a client-side loop would hit. *)
let predict_batch_result t deadline model graphs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | graph :: rest ->
        let* payload = predict_result t deadline model graph [] in
        go (payload :: acc) rest
  in
  let* payloads = go [] graphs in
  let first field =
    match payloads with
    | P.Obj fields :: _ -> Option.value ~default:P.Null (List.assoc_opt field fields)
    | _ -> P.Null
  in
  Ok
    (P.Obj
       [
         ("model", P.Str model);
         ("task", first "task");
         ("mode", first "mode");
         ("graphs", P.Int (List.length payloads));
         ("batch", P.List payloads);
       ])

let models_result t =
  Ok (P.List (List.map model_summary_json (Models.list t.models)))

let restored_json t =
  match Atomic.get t.restored with
  | None -> P.Null
  | Some r ->
      P.Obj
        [
          ("file", P.Str r.r_file);
          ("saved_at", P.Float r.r_saved_at);
          ("graphs", P.Int r.r_graphs);
          ("colorings", P.Int r.r_colorings);
          ("plans", P.Int r.r_plans);
          ("models", P.Int r.r_models);
        ]

let stats_json t =
  let cache_fields = List.map (fun (k, v) -> (k, P.Int v)) (Cache.stats t.cache) in
  Metrics.to_json t.metrics
    ~extra:
      (cache_fields
      @ [
          ("protocol_version", P.Int P.protocol_version);
          ("graphs_registered", P.Int (Registry.n_graphs t.registry));
          ("models_registered", P.Int (Models.count t.models));
          ("retrains_stale", P.Int (Atomic.get t.retrains));
          ("pool_domains", P.Int (Pool.size ()));
          ("restored", restored_json t);
        ])

(* --- EXPLAIN stage summary ----------------------------------------------- *)

(* The canonical pipeline stages of a QUERY, in execution order. The
   summary always lists all of them (a warm-cache request reports
   compile as 0 ms / cached), plus a synthetic "other" bucket holding
   the unattributed remainder — so the stage timings sum to total_ms
   exactly. *)
let canonical_stages = [ "parse"; "normalize"; "cache_lookup"; "compile"; "execute"; "materialize" ]

let plan_cache_hit spans =
  List.exists
    (fun (sp : Trace.span) ->
      sp.Trace.name = "cache_lookup" && List.assoc_opt "result" sp.Trace.args = Some "hit")
    spans

let stage_summary ~t0 spans =
  let sum name =
    List.fold_left
      (fun acc (sp : Trace.span) ->
        if sp.Trace.name = name then Int64.add acc sp.Trace.dur_ns else acc)
      0L spans
  in
  (* "compile" runs nested inside "cache_lookup" (misses compute under
     the cache lock), so report the lookup's exclusive time to keep the
     stage buckets disjoint. *)
  let compile_ns = sum "compile" in
  let stage_ns = function
    | "cache_lookup" -> Int64.max 0L (Int64.sub (sum "cache_lookup") compile_ns)
    | name -> sum name
  in
  let hit = plan_cache_hit spans in
  let named = List.map (fun name -> (name, stage_ns name)) canonical_stages in
  let accounted = List.fold_left (fun acc (_, ns) -> Int64.add acc ns) 0L named in
  let other = Int64.max 0L (Int64.sub (Clock.elapsed_ns t0) accounted) in
  let all = named @ [ ("other", other) ] in
  let total_ns = Int64.add accounted other in
  let stage_obj (name, ns) =
    P.Obj
      ([ ("stage", P.Str name); ("ms", P.Float (Clock.ns_to_ms ns)) ]
      @ if name = "compile" then [ ("cached", P.Bool hit) ] else [])
  in
  ( P.Float (Clock.ns_to_ms total_ns),
    P.List (List.map stage_obj all) )

let explain_json ~t0 spans reply =
  let fields = match reply with P.Obj fields -> fields | _ -> [] in
  let get k = Option.value ~default:P.Null (List.assoc_opt k fields) in
  let total_ms, stages = stage_summary ~t0 spans in
  P.Obj
    [
      ("graph", get "graph");
      ("n", get "n");
      ("fragment", get "fragment");
      ("dim", get "dim");
      ("plan", get "plan");
      ("plan_cache", get "plan_cache");
      ("total_ms", total_ms);
      ("stages", stages);
    ]

let dispatch t deadline ~shared ~sink ~t0 req =
  match req with
  | P.Hello ->
      Ok
        (P.Obj
           [
             ("server", P.Str "glqld");
             ("version", P.Str version);
             ("protocol_version", P.Int P.protocol_version);
             ("pool_domains", P.Int (Pool.size ()));
           ])
  | P.Version ->
      Ok
        (P.Obj
           [
             ("server", P.Str "glqld");
             ("version", P.Str version);
             ("protocol_version", P.Int P.protocol_version);
           ])
  | P.Ping -> Ok (P.Str "pong")
  | P.Load (name, spec) ->
      let* g = tag "ERR_BAD_SPEC" (Registry.register t.registry ~name ~spec) in
      Ok
        (P.Obj
           [
             ("name", P.Str name);
             ("spec", P.Str spec);
             ("vertices", P.Int (Graph.n_vertices g));
             ("edges", P.Int (Graph.n_edges g));
           ])
  | P.Graphs ->
      Ok
        (P.List
           (List.map
              (fun (name, nv, ne) ->
                P.Obj [ ("name", P.Str name); ("vertices", P.Int nv); ("edges", P.Int ne) ])
              (Registry.list t.registry)))
  | P.Generators ->
      Ok
        (P.Obj
           [
             ("names", P.List (List.map (fun s -> P.Str s) Registry.generator_names));
             ("patterns", P.List (List.map (fun s -> P.Str s) Registry.generator_patterns));
             ("union", P.Str "join atoms with '+' for disjoint unions");
           ])
  | P.Query (graph, src) -> query_result t deadline graph src
  | P.Explain (graph, src) ->
      (* Run the full query pipeline, then report where its time went
         instead of the values. *)
      let* reply = query_result t deadline graph src in
      Ok (explain_json ~t0 (Trace.spans sink) reply)
  | P.Wl (graph, rounds) -> wl_result t deadline graph rounds
  | P.Kwl (graph, k) -> kwl_result t deadline graph k
  | P.Hom (graph, size) -> hom_result t deadline ~shared graph size
  | P.Featurize (graph, recipe, mode) -> featurize_result t deadline graph recipe mode
  | P.Train spec -> train_result t deadline spec
  | P.Predict (model, graph, vertices) -> predict_result t deadline model graph vertices
  | P.Predict_batch (model, graphs) -> predict_batch_result t deadline model graphs
  | P.Models -> models_result t
  | P.Mutate (graph, ops) ->
      let ops =
        List.map
          (function
            | P.M_add_edge (u, v) -> Registry.Add_edge (u, v)
            | P.M_del_edge (u, v) -> Registry.Del_edge (u, v)
            | P.M_set_label (v, fs) -> Registry.Set_label (v, fs))
          ops
      in
      let* o = tag "ERR_UNKNOWN_GRAPH" (Registry.mutate t.registry ~name:graph ops) in
      if o.Registry.m_gen <> o.Registry.m_old_gen then
        Cache.note_mutation t.cache ~graph_name:graph ~old_gen:o.Registry.m_old_gen
          ~gen:o.Registry.m_gen ~touched_adj:o.Registry.m_touched_adj
          ~touched_lab:o.Registry.m_touched_lab;
      Ok
        (P.Obj
           [
             ("graph", P.Str graph);
             ("generation", P.Int o.Registry.m_gen);
             ("vertices", P.Int (Graph.n_vertices o.Registry.m_graph));
             ("edges", P.Int (Graph.n_edges o.Registry.m_graph));
             ( "applied",
               P.Obj
                 [
                   ("add_edges", P.Int o.Registry.m_added);
                   ("del_edges", P.Int o.Registry.m_deleted);
                   ("set_labels", P.Int o.Registry.m_relabeled);
                 ] );
             ( "rejected",
               P.List
                 (List.map
                    (fun (r : Registry.rejected) ->
                      P.Obj
                        [
                          ("index", P.Int r.r_index);
                          ("op", P.Str r.r_op);
                          ("code", P.Str r.r_code);
                          ("message", P.Str r.r_message);
                        ])
                    o.Registry.m_rejected) );
           ])
  | P.Save requested ->
      let* path = tag "ERR_SNAPSHOT" (snapshot_path t requested) in
      let* path, s = tag "ERR_SNAPSHOT" (save_snapshot t path) in
      Ok
        (P.Obj
           [
             ("file", P.Str path);
             ("bytes", P.Int s.Persist.s_bytes);
             ("graphs", P.Int s.Persist.s_graphs);
             ("colorings", P.Int s.Persist.s_colorings);
             ("plans", P.Int s.Persist.s_plans);
             ("models", P.Int s.Persist.s_models);
           ])
  | P.Restore requested ->
      let* path = tag "ERR_SNAPSHOT" (snapshot_path t requested) in
      let* path, s = tag "ERR_SNAPSHOT" (restore_snapshot t path) in
      Ok
        (P.Obj
           [
             ("file", P.Str path);
             ("saved_at", P.Float s.Persist.s_saved_at);
             ("graphs", P.Int s.Persist.s_graphs);
             ("colorings", P.Int s.Persist.s_colorings);
             ("plans", P.Int s.Persist.s_plans);
             ("models", P.Int s.Persist.s_models);
           ])
  | P.Stats -> Ok (stats_json t)
  | P.Quit -> Ok (P.Str "bye")
  | P.Shutdown ->
      stop t;
      Ok (P.Str "shutting down")

let attach_trace ~t0 sink j =
  let trace = Trace.spans_to_json ~origin_ns:t0 (Trace.spans sink) in
  match j with
  | P.Obj fields -> P.Obj (fields @ [ ("trace", trace) ])
  | other -> P.Obj [ ("value", other); ("trace", trace) ]

let handle_line_with t ~shared line =
  let t0 = Clock.now_ns () in
  let deadline = Clock.deadline_after t.config.request_timeout_s in
  (* Every request gets a span sink: it feeds the cumulative per-stage
     histograms in STATS, answers the TRACE option, and gives EXPLAIN
     its stage breakdown. Spans opened on pool workers land here too
     (Pool propagates the trace context). *)
  let sink =
    Trace.make_sink ~keep_spans:true
      ~on_span:(fun sp ->
        Metrics.record_stage t.metrics ~stage:sp.Trace.name
          ~dur_ns:(Int64.to_int sp.Trace.dur_ns))
      ()
  in
  let reply, command, ok =
    match P.parse_request line with
    | Error e -> (P.err_line (P.error ~code:"ERR_PARSE" e), "INVALID", false)
    | Ok { P.req; traced } -> (
        let command = P.command_name req in
        let run () =
          Trace.with_sink sink (fun () ->
              Trace.with_span ~args:[ ("command", command) ] "request" (fun () ->
                  dispatch t deadline ~shared ~sink ~t0 req))
        in
        match run () with
        | Ok j ->
            let j = if traced then attach_trace ~t0 sink j else j in
            (P.ok j, command, true)
        | Error e -> (P.err_line e, command, false)
        | exception Clock.Deadline_exceeded ->
            (* A kernel hit its per-round/per-pattern check: the request
               timeout cancelled the evaluation mid-flight. *)
            ( P.err_line
                (P.error ~code:"ERR_DEADLINE"
                   "deadline exceeded during evaluation (request timeout)"),
              command,
              false )
        | exception e ->
            ( P.err_line (P.error ~code:"ERR_INTERNAL" ("internal error: " ^ Printexc.to_string e)),
              command,
              false ))
  in
  Metrics.record t.metrics ~command ~ok ~latency_ns:(Clock.elapsed_ns t0);
  reply

let handle_line t line = handle_line_with t ~shared:empty_shared line

(* --- server-side query batching ------------------------------------------ *)

(* Scan a batch of request lines and coalesce the requests that share a
   graph pass: two or more WL requests on one graph need one refinement
   (every round is answered from the refinement history), two or more
   KWL requests on one (graph, k) need one k-WL run, and HOM requests on
   one graph share a single profile at the largest requested size. The
   shared passes run here, before the batch fans out — WL/k-WL land in
   the coloring cache (so the per-request handlers hit), profiles go
   into the returned [shared] table. Groups of one are left alone: the
   request computes (and reports its cache tag) exactly as before.

   Guards mirror the per-request handlers — a pass that any member would
   reject (k range, cell/cost limits) is not prewarmed, and failures
   (unknown graph, deadline) are swallowed so each request still
   produces its own structured error. Correctness does not depend on
   this phase at all: it only warms caches the handlers consult under
   their own (name, generation) keys. *)
let plan_batch t lines =
  let wl = Hashtbl.create 4 and kwl = Hashtbl.create 4 and hom = Hashtbl.create 4 in
  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  (* FEATURIZE / TRAIN / PREDICT requests whose recipe pulls colorings
     join the WL/k-WL groups: a batch of featurizations over one graph —
     or a WL request next to a FEATURIZE that one-hots the same coloring
     — runs one refinement. PREDICT recipes come from the model registry
     (a batched PREDICT contributes every graph of its corpus); an
     unknown model simply contributes nothing. *)
  let bump_recipe names recipe =
    match Featurize.parse_recipe recipe with
    | Error _ -> ()
    | Ok cols ->
        List.iter
          (fun name ->
            if Featurize.wants_wl cols then bump wl name;
            List.iter (fun k -> bump kwl (name, k)) (Featurize.wants_kwl cols))
          names
  in
  Array.iter
    (fun line ->
      match P.parse_request line with
      | Ok { P.req = P.Wl (name, _); _ } -> bump wl name
      | Ok { P.req = P.Kwl (name, k); _ } -> bump kwl (name, k)
      | Ok { P.req = P.Hom (name, size); _ } ->
          let count, max_size = Option.value ~default:(0, 0) (Hashtbl.find_opt hom name) in
          Hashtbl.replace hom name (count + 1, max size max_size)
      | Ok { P.req = P.Featurize (name, recipe, _); _ } -> bump_recipe [ name ] recipe
      | Ok { P.req = P.Train spec; _ } -> bump_recipe spec.P.t_graphs spec.P.t_recipe
      | Ok { P.req = P.Predict (model, name, _); _ } -> (
          match Models.find t.models model with
          | Some m -> bump_recipe [ name ] m.Models.sm_recipe
          | None -> ())
      | Ok { P.req = P.Predict_batch (model, names); _ } -> (
          match Models.find t.models model with
          | Some m -> bump_recipe names m.Models.sm_recipe
          | None -> ())
      | _ -> ())
    lines;
  let sorted_groups tbl keep =
    Hashtbl.fold (fun k v acc -> if keep v then (k, v) :: acc else acc) tbl []
    |> List.sort compare
  in
  let wl_groups = sorted_groups wl (fun count -> count >= 2) in
  let kwl_groups = sorted_groups kwl (fun count -> count >= 2) in
  let hom_groups = sorted_groups hom (fun (count, _) -> count >= 2) in
  let shared : shared = Hashtbl.create 4 in
  let coalesced =
    List.fold_left (fun acc (_, c) -> acc + c) 0 wl_groups
    + List.fold_left (fun acc (_, c) -> acc + c) 0 kwl_groups
    + List.fold_left (fun acc (_, (c, _)) -> acc + c) 0 hom_groups
  in
  if coalesced > 0 then begin
    let deadline = Clock.deadline_after t.config.request_timeout_s in
    (* Skippable by design: any failure (unknown graph, guard, deadline)
       leaves the corresponding requests to run — and report — solo. *)
    let attempt f = try f () with _ -> () in
    (* The prewarm runs outside any per-request sink, so give it one:
       kernel spans (wl.refine, kwl.refine, hom.profile, csr.build) must
       land in the STATS stage histograms exactly like per-request work. *)
    let sink =
      Trace.make_sink
        ~on_span:(fun sp ->
          Metrics.record_stage t.metrics ~stage:sp.Trace.name
            ~dur_ns:(Int64.to_int sp.Trace.dur_ns))
        ()
    in
    Trace.with_sink sink (fun () ->
        Trace.with_span
          ~args:
            [
              ("requests", string_of_int coalesced);
              ( "passes",
                string_of_int
                  (List.length wl_groups + List.length kwl_groups + List.length hom_groups) );
            ]
          "batch.coalesce"
        @@ fun () ->
        List.iter
          (fun (name, _) ->
            attempt (fun () ->
                match Registry.find_entry t.registry name with
                | Ok (g, gen) -> ignore (Cache.cr t.cache ~graph_name:name ~gen ~deadline g)
                | Error _ -> ()))
          wl_groups;
        List.iter
          (fun ((name, k), _) ->
            attempt (fun () ->
                if k >= 1 && k <= 3 then
                  match Registry.find_entry t.registry name with
                  | Ok (g, gen) ->
                      if Kwl.tuple_count (Graph.n_vertices g) k <= t.config.max_table_cells
                      then ignore (Cache.kwl t.cache ~graph_name:name ~gen ~k ~deadline g)
                  | Error _ -> ()))
          kwl_groups;
        List.iter
          (fun (name, (_, max_size)) ->
            attempt (fun () ->
                if max_size >= 1 && max_size <= 9 then
                  match Registry.find_entry t.registry name with
                  | Ok (g, gen) ->
                      let patterns = Tree.all_free_trees_up_to max_size in
                      let work = float_of_int (Graph.n_vertices g + (2 * Graph.n_edges g)) in
                      let cost =
                        float_of_int (List.length patterns) *. float_of_int max_size *. work
                      in
                      if cost <= float_of_int t.config.max_table_cells then
                        Hashtbl.replace shared name
                          (gen, max_size, Count.profile ~deadline patterns g)
                  | Error _ -> ()))
          hom_groups);
    Metrics.add_coalesced t.metrics coalesced
  end;
  shared

(* One select-loop batch: coalesce shared passes, then fan the lines out
   on the pool. Replies come back in input order. *)
let handle_lines t lines =
  let shared = plan_batch t lines in
  Pool.parallel_map_array (fun line -> handle_line_with t ~shared line) lines

(* --- socket loop --------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  lines : Line_buf.t;  (* incremental framing + input limits *)
  outbuf : Buffer.t;  (* reply bytes the socket has not yet accepted *)
  mutable closing : bool;
}

let log t fmt =
  Printf.ksprintf (fun s -> if t.config.verbose then Printf.eprintf "glqld: %s\n%!" s) fmt

(* --- RETRAIN-on-stale ----------------------------------------------------- *)

(* Periodic idle-loop policy (--retrain-stale SECS): refit any model
   whose source generations drifted — a MUTATE or re-LOAD bumped them,
   or a restore rekeyed them to the -1 sentinel — off the request path.
   The refit goes through the normal Models.train with the persisted
   spec (same sources, seed, split, lr, epochs), so the refreshed model
   is exactly what a client-issued re-TRAIN would produce; in the
   sharded deployment every member runs the same deterministic refit
   locally, which keeps primary and replicas byte-identical without a
   mirroring protocol. A model whose source graph no longer exists
   cannot be refit and is left as-is (it keeps answering stale). *)
let retrain_stale_pass t =
  List.iter
    (fun (m : Models.stored) ->
      let states =
        List.map
          (fun (name, g0) ->
            match Registry.find_entry t.registry name with
            | Ok (_, gen) -> `Live (g0 <> gen)
            | Error _ -> `Gone)
          m.Models.sm_sources
      in
      let all_live = List.for_all (function `Live _ -> true | `Gone -> false) states in
      let drifted = List.exists (function `Live d -> d | `Gone -> false) states in
      if all_live && drifted then begin
        let deadline = Clock.deadline_after t.config.request_timeout_s in
        match
          Models.train ~registry:t.registry ~cache:t.cache ~models:t.models ~deadline
            ~max_cells:t.config.max_table_cells (Models.spec_of_stored m)
        with
        | Ok _ ->
            Atomic.incr t.retrains;
            log t "retrain-stale: refit model %S" m.Models.sm_name
        | Error (code, msg) ->
            log t "retrain-stale: refit of %S failed: %s (%s)" m.Models.sm_name msg code
        | exception Clock.Deadline_exceeded ->
            log t "retrain-stale: refit of %S hit the request timeout" m.Models.sm_name
        | exception e ->
            log t "retrain-stale: refit of %S raised %s" m.Models.sm_name (Printexc.to_string e)
      end)
    (Models.list t.models)

(* Client sockets are nonblocking: push as much of [outbuf] as the socket
   accepts and keep the rest for the select write set, so one client that
   stops reading (full send buffer) can never wedge the dispatch loop. *)
let flush_out t conn =
  let pending = Buffer.length conn.outbuf in
  if pending > 0 then begin
    (* Visible in the Chrome trace only (no request sink is installed on
       the select loop), closing the request lifecycle: read -> dispatch
       -> reply flush. *)
    Trace.with_span ~args:[ ("bytes", string_of_int pending) ] "reply.flush" @@ fun () ->
    let s = Buffer.contents conn.outbuf in
    let written = ref 0 in
    let failed = ref false in
    let stop = ref false in
    while (not !stop) && !written < pending do
      match Unix.write_substring conn.fd s !written (pending - !written) with
      | 0 -> stop := true
      | n -> written := !written + n
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
          stop := true
      | exception Unix.Unix_error _ ->
          (* Peer is gone (EPIPE etc.): drop the unsent tail and reap. *)
          failed := true;
          stop := true
    done;
    if !written > 0 then Metrics.add_io t.metrics ~bytes_in:0 ~bytes_out:!written;
    Buffer.clear conn.outbuf;
    if !failed then conn.closing <- true
    else if !written < pending then
      Buffer.add_string conn.outbuf (String.sub s !written (pending - !written))
  end

(* A reader this far behind is not coming back; cap the memory it can pin. *)
let max_conn_outbuf = 8 * 1024 * 1024

let queue_reply t conn s =
  Buffer.add_string conn.outbuf s;
  flush_out t conn;
  if Buffer.length conn.outbuf > max_conn_outbuf then begin
    log t "dropping client with %d unsent reply bytes (not reading)" (Buffer.length conn.outbuf);
    Metrics.conn_dropped t.metrics;
    Buffer.clear conn.outbuf;
    conn.closing <- true
  end

(* Drop a peer for a governance violation: one structured error line,
   best-effort (whatever one flush pushes out), then close. The unsent
   tail is discarded so a peer that never reads cannot pin the
   connection in "closing" forever. *)
let drop_conn t conn err =
  Metrics.conn_dropped t.metrics;
  log t "dropping client: %s (%s)" err.P.message err.P.code;
  Buffer.add_string conn.outbuf (P.err_line err ^ "\n");
  flush_out t conn;
  Buffer.clear conn.outbuf;
  conn.closing <- true

let serve t =
  (* Graceful shutdown on SIGINT/SIGTERM; ignore SIGPIPE so writes to a
     vanished client surface as EPIPE (handled in flush_out). Handlers
     are installed before the boot-time snapshot restore: a signal that
     lands during a long restore must set the stop flag (the serve loop
     is then skipped and the shutdown path still writes metrics and the
     exit snapshot) rather than kill the process with no cleanup. *)
  let prev_handlers =
    List.map
      (fun signal ->
        (signal, Sys.signal signal (Sys.Signal_handle (fun _ -> Atomic.set t.stop_flag true))))
      [ Sys.sigint; Sys.sigterm ]
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Warm start: restore the snapshot before opening any socket, so the
     first client already sees the previous life's graphs and caches. A
     bad or missing snapshot is logged and the server comes up cold —
     boot must never fail because of yesterday's file. *)
  (match t.config.snapshot_file with
  | Some path when Sys.file_exists path -> (
      match restore_snapshot t path with
      | Ok (_, s) ->
          log t "restored snapshot %s (%d graphs, %d colorings, %d plans)" path
            s.Persist.s_graphs s.Persist.s_colorings s.Persist.s_plans
      | Error e -> Printf.eprintf "glqld: ignoring snapshot %s: %s\n%!" path e)
  | Some path -> log t "snapshot %s not present yet; starting cold" path
  | None -> ());
  let listeners = ref [] in
  (match t.config.socket_path with
  | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      listeners := fd :: !listeners;
      log t "listening on unix socket %s" path
  | None -> ());
  (match t.config.tcp_port with
  | Some port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      listeners := fd :: !listeners;
      log t "listening on tcp port %d" port
  | None -> ());
  if !listeners = [] then invalid_arg "Server.serve: no socket_path and no tcp_port";
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let chunk = Bytes.create 65536 in
  (* RETRAIN-on-stale runs from this loop (never from a request handler):
     at most one scan per interval, after the batch of the iteration has
     been dispatched and its replies queued, so a refit delays no reply
     that was already in flight. *)
  let last_retrain_scan = ref (Unix.gettimeofday ()) in
  let maybe_retrain () =
    if t.config.retrain_stale_s > 0.0 then begin
      let now = Unix.gettimeofday () in
      if now -. !last_retrain_scan >= t.config.retrain_stale_s then begin
        last_retrain_scan := now;
        retrain_stale_pass t
      end
    end
  in
  (* Run one batch of request lines through the coalescing planner and
     the pool, and write replies back in arrival order. *)
  let process_batch pending =
    match pending with
    | [] -> ()
    | _ ->
        let batch = Array.of_list pending in
        let replies = handle_lines t (Array.map snd batch) in
        Array.iteri
          (fun i reply ->
            let conn, line = batch.(i) in
            queue_reply t conn (reply ^ "\n");
            match P.parse_request line with
            | Ok { P.req = P.Quit; _ } -> conn.closing <- true
            | Ok { P.req = P.Shutdown; _ } -> Atomic.set t.stop_flag true
            | _ -> ())
          replies
  in
  let drain_and_close () =
    (* Complete lines are framed (and dispatched) at read time, so at
       this point connections hold at most a partial trailing line —
       nothing left to process, only replies to flush. *)
    (* Give queued replies a bounded window to drain before closing. *)
    let drain_deadline = Clock.deadline_after 2.0 in
    let rec flush_remaining () =
      let waiting =
        Hashtbl.fold
          (fun fd conn acc -> if Buffer.length conn.outbuf > 0 then (fd, conn) :: acc else acc)
          conns []
      in
      if waiting <> [] && not (Clock.expired drain_deadline) then begin
        (match Unix.select [] (List.map fst waiting) [] 0.1 with
        | _, writable, _ ->
            List.iter (fun (fd, conn) -> if List.mem fd writable then flush_out t conn) waiting
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        flush_remaining ()
      end
    in
    flush_remaining ();
    Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ()) conns;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !listeners;
    (match t.config.socket_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ())
  in
  while not (Atomic.get t.stop_flag) do
    let watched_read =
      !listeners @ Hashtbl.fold (fun fd conn acc -> if conn.closing then acc else fd :: acc) conns []
    in
    let watched_write =
      Hashtbl.fold
        (fun fd conn acc -> if Buffer.length conn.outbuf > 0 then fd :: acc else acc)
        conns []
    in
    let readable, writable =
      match Unix.select watched_read watched_write [] 0.25 with
      | readable, writable, _ -> (readable, writable)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt conns fd with Some conn -> flush_out t conn | None -> ())
      writable;
    let pending = ref [] in
    List.iter
      (fun fd ->
        if List.mem fd !listeners then begin
          match Unix.accept fd with
          | client, _ ->
              if Hashtbl.length conns >= t.config.max_connections then begin
                (* Refuse above the cap: one structured error, then
                   close. The fresh fd is still blocking, but a ~60-byte
                   write into an empty send buffer cannot block. *)
                Metrics.conn_rejected t.metrics;
                log t "rejecting connection (%d live, cap %d)" (Hashtbl.length conns)
                  t.config.max_connections;
                let line =
                  P.err_line
                    (P.error ~code:"ERR_LIMIT_CONNS"
                       (Printf.sprintf "server is at its %d-connection limit"
                          t.config.max_connections))
                  ^ "\n"
                in
                (try ignore (Unix.write_substring client line 0 (String.length line))
                 with Unix.Unix_error _ -> ());
                try Unix.close client with Unix.Unix_error _ -> ()
              end
              else begin
                Unix.set_nonblock client;
                Hashtbl.replace conns client
                  {
                    fd = client;
                    lines =
                      Line_buf.create ~max_line_bytes:t.config.max_line_bytes
                        ~max_buf_bytes:t.config.max_inbuf_bytes ();
                    outbuf = Buffer.create 256;
                    closing = false;
                  };
                log t "client connected (%d live)" (Hashtbl.length conns)
              end
          | exception Unix.Unix_error _ -> ()
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some conn -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> conn.closing <- true
              | nread -> (
                  Metrics.add_io t.metrics ~bytes_in:nread ~bytes_out:0;
                  match Line_buf.feed conn.lines chunk ~off:0 ~len:nread with
                  | Ok lines ->
                      List.iter
                        (fun line ->
                          if String.trim line <> "" then pending := (conn, line) :: !pending)
                        lines
                  | Error e ->
                      let err =
                        match e with
                        | Line_buf.Line_too_long limit ->
                            P.error ~code:"ERR_LIMIT_LINE"
                              (Printf.sprintf "request line exceeds the %d-byte limit" limit)
                        | Line_buf.Buffer_overflow limit ->
                            P.error ~code:"ERR_LIMIT_INBUF"
                              (Printf.sprintf
                                 "connection buffered more than %d bytes without a newline"
                                 limit)
                      in
                      drop_conn t conn err)
              | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
                -> ()
              | exception Unix.Unix_error _ -> conn.closing <- true))
      readable;
    process_batch (List.rev !pending);
    maybe_retrain ();
    (* Close connections that hit EOF, errored, or sent QUIT — once their
       queued replies have drained. *)
    let dead =
      Hashtbl.fold
        (fun fd conn acc ->
          if conn.closing && Buffer.length conn.outbuf = 0 then (fd, conn) :: acc else acc)
        conns []
    in
    List.iter
      (fun (fd, conn) ->
        (try Unix.close conn.fd with Unix.Unix_error _ -> ());
        Hashtbl.remove conns fd)
      dead
  done;
  drain_and_close ();
  List.iter (fun (signal, h) -> try Sys.set_signal signal h with Invalid_argument _ -> ()) prev_handlers;
  (* Persist alongside the metrics dump, so a SIGTERM'd daemon restarted
     with the same --snapshot comes back warm. *)
  (match t.config.snapshot_file with
  | Some path -> (
      match save_snapshot t path with
      | Ok (_, s) -> log t "snapshot written to %s (%d bytes)" path s.Persist.s_bytes
      | Error e -> Printf.eprintf "glqld: snapshot save failed: %s\n%!" e)
  | None -> ());
  let served = Metrics.requests t.metrics in
  (match t.config.metrics_file with
  | Some path ->
      Metrics.write_file t.metrics path
        ~extra:
          (List.map (fun (k, v) -> (k, P.Int v)) (Cache.stats t.cache)
          @ [ ("graphs_registered", P.Int (Registry.n_graphs t.registry)) ]);
      log t "metrics written to %s" path
  | None -> ());
  Printf.eprintf "glqld: served %d requests (%d errors), shutting down cleanly\n%!" served
    (Metrics.errors t.metrics);
  served
