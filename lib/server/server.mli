(** The [glqld] request loop: a long-lived daemon serving the
    {!Protocol} commands over a Unix-domain socket (and optionally TCP),
    with an LRU compiled-plan cache, a per-graph colouring cache, and
    request batches dispatched onto the {!Glql_util.Pool} domain pool so
    concurrent clients are served in parallel.

    [handle_line] is the full request pipeline without any socket — the
    unit tests and the bench drive it directly. *)

type config = {
  socket_path : string option;  (** Unix-domain listening socket *)
  tcp_port : int option;  (** optional TCP listener on localhost *)
  plan_cache_capacity : int;
  coloring_cache_capacity : int;
  plan_cache_bytes : int;  (** plan-cache byte budget; 0 = entries only *)
  coloring_cache_bytes : int;  (** colouring-cache byte budget; 0 = entries only *)
  feature_cache_bytes : int;
      (** feature-matrix cache byte budget; 0 = entries only. Cached
          matrices are keyed by (graph, generation, mode, recipe) and
          make a warm FEATURIZE / TRAIN / PREDICT skip column
          materialisation entirely; they are never snapshotted *)
  retrain_stale_s : float;
      (** RETRAIN-on-stale scan interval in seconds; 0 disables it. When
          set, the serve loop periodically refits (off the request path,
          with the model's persisted spec — deterministic) every model
          whose source generations drifted, so a subsequent PREDICT
          answers [stale:false] again *)
  request_timeout_s : float;
      (** cooperative per-request deadline; 0 = none. Checked between
          pipeline stages and inside the WL / k-WL / hom kernels
          (per round / per pattern), so overruns abort with
          [ERR_DEADLINE] instead of running to completion *)
  max_table_cells : int;
      (** reject queries materialising more cells; also bounds the k-WL
          tuple count and the HOM profile's DP-cost estimate *)
  max_connections : int;  (** accepts beyond this are refused ([ERR_LIMIT_CONNS]) *)
  max_line_bytes : int;  (** cap on one request line; 0 = unlimited ([ERR_LIMIT_LINE]) *)
  max_inbuf_bytes : int;
      (** cap on bytes a peer may buffer without a newline; 0 = unlimited
          ([ERR_LIMIT_INBUF] — the slow-loris guard) *)
  metrics_file : string option;  (** metrics JSON dumped here on shutdown *)
  snapshot_file : string option;
      (** snapshot restored at boot (if present) and written on shutdown;
          also the default path of the SAVE/RESTORE commands *)
  verbose : bool;
}

val default_config : config

(** Server build version, reported by HELLO/VERSION (and echoed by the
    sharded router so front and workers report one version). *)
val version : string

type t

val create : config -> t

(** Handle one request line (no trailing newline) and return the reply
    line; never raises, always records metrics. *)
val handle_line : t -> string -> string

(** Handle one select-loop batch of request lines: requests sharing a
    graph pass are coalesced first — one WL/k-WL refinement (or one hom
    profile at the largest requested size) serves every matching request
    in the batch, counted by the [batch_coalesced] STATS counter and
    traced as a [batch.coalesce] span — then the lines fan out on the
    domain pool. Replies are returned in input order; replies are
    byte-identical to serving each line alone (modulo cache-hit tags,
    which report the shared pass as a hit). *)
val handle_lines : t -> string array -> string array

(** The server's caches (for stats inspection and bench cache-clearing). *)
val caches : t -> Cache.t

val metrics : t -> Metrics.t

(** Ask a running [serve] loop to stop after draining in-flight work. *)
val stop : t -> unit

(** Run the socket loop until [stop], [SHUTDOWN], SIGINT, or SIGTERM; then
    drain buffered requests, write the snapshot and metrics files (if
    configured), close sockets, and return the number of requests served.
    With [snapshot_file] set and the file present, the registry, caches
    and metrics are restored {e before} the sockets open (a malformed
    snapshot is logged and ignored — boot never fails on it). *)
val serve : t -> int
