(* Shard placement and worker-process plumbing for the sharded topology.

   A shard is one full glqld worker process owning a slice of the graph
   namespace. Placement is a pure function of the graph name: the
   FNV-1a stable hash of the *canonical spec form* of the name, so the
   two spellings of one spec-as-name ("sbm10 + path3" / "sbm10+path3")
   land on the same worker, and the mapping survives restarts and is
   reproducible by external tooling. *)

let id_of_name ~shards name = Glql_util.Stable_hash.shard ~shards (Registry.canonical_spec name)

(* Path conventions: everything hangs off the router's front socket
   path, so one --socket flag names the whole topology on disk. *)

let worker_socket ~base ~shard = Printf.sprintf "%s.shard%d" base shard
let replica_socket ~base ~shard ~index = Printf.sprintf "%s.shard%dr%d" base shard index
let snapshot_of_socket sock = sock ^ ".glqs"

type role = Primary | Replica of int

let role_label = function
  | Primary -> "primary"
  | Replica i -> Printf.sprintf "replica%d" i

type spec = {
  sp_shard : int;
  sp_role : role;
  sp_socket : string;
  sp_snapshot : string option;
  sp_argv : string array option;
      (* argv to (re)spawn the worker; [None] marks an externally managed
         member the router only connects to (bench rigs). *)
}

(* Worker argv: a plain glqld serving one unix socket, with a snapshot
   path so SIGTERM leaves warm-restart state behind and --respawn can
   recover it. [extra] forwards governance flags from the router's own
   command line (timeouts, cache budgets, limits). *)
let worker_argv ~exe ~socket ~snapshot ~extra =
  let snap = match snapshot with Some p -> [ "--snapshot"; p ] | None -> [] in
  Array.of_list ((exe :: "--socket" :: socket :: snap) @ extra)

let plan ~exe ~base_socket ~extra ~shards =
  List.init shards (fun i ->
      let socket = worker_socket ~base:base_socket ~shard:i in
      let snapshot = snapshot_of_socket socket in
      {
        sp_shard = i;
        sp_role = Primary;
        sp_socket = socket;
        sp_snapshot = Some snapshot;
        sp_argv = Some (worker_argv ~exe ~socket ~snapshot:(Some snapshot) ~extra);
      })

let replica_spec ~exe ~base_socket ~extra ~shard ~index =
  let socket = replica_socket ~base:base_socket ~shard ~index in
  let snapshot = snapshot_of_socket socket in
  {
    sp_shard = shard;
    sp_role = Replica index;
    sp_socket = socket;
    sp_snapshot = Some snapshot;
    sp_argv = Some (worker_argv ~exe ~socket ~snapshot:(Some snapshot) ~extra);
  }

(* Spawn a worker; stdio is inherited so worker logs interleave with the
   router's (each worker tags nothing — keep them quiet unless
   --verbose was forwarded). Stale sockets from a previous unclean run
   are unlinked first or bind would fail. *)
let spawn argv =
  let sock_idx = ref (-1) in
  Array.iteri (fun i a -> if a = "--socket" then sock_idx := i + 1) argv;
  if !sock_idx >= 0 && !sock_idx < Array.length argv then
    (try Unix.unlink argv.(!sock_idx) with Unix.Unix_error _ -> ());
  Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
