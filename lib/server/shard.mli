(** Shard placement and worker-process plumbing for the sharded glqld
    topology ([glqld --router]).

    Placement is deterministic: graph name → canonical spec form →
    FNV-1a stable hash → shard id. Every component (router, tests,
    external tooling) computes the same mapping for a fixed worker
    count. *)

(** [id_of_name ~shards name] is the owning shard of [name] in
    [0 .. shards-1]. Uses {!Registry.canonical_spec} so alternate
    spellings of a spec-as-name co-locate. *)
val id_of_name : shards:int -> string -> int

(** [base.shardI] — the unix socket of shard [I]'s primary. *)
val worker_socket : base:string -> shard:int -> string

(** [base.shardIrJ] — the unix socket of replica [J] of shard [I]. *)
val replica_socket : base:string -> shard:int -> index:int -> string

(** Snapshot path conventionally paired with a worker socket. *)
val snapshot_of_socket : string -> string

type role = Primary | Replica of int

val role_label : role -> string

(** One member of the topology: a worker process (or an externally
    managed endpoint when [sp_argv = None]) serving one unix socket. *)
type spec = {
  sp_shard : int;
  sp_role : role;
  sp_socket : string;
  sp_snapshot : string option;
  sp_argv : string array option;
}

(** argv for one worker glqld process. [extra] carries forwarded
    governance flags. *)
val worker_argv :
  exe:string -> socket:string -> snapshot:string option -> extra:string list -> string array

(** Primary specs for an [shards]-way topology rooted at [base_socket]. *)
val plan : exe:string -> base_socket:string -> extra:string list -> shards:int -> spec list

(** Spec for a fresh read replica of [shard]. *)
val replica_spec :
  exe:string -> base_socket:string -> extra:string list -> shard:int -> index:int -> spec

(** Fork+exec a worker from its argv; returns the pid. Unlinks the
    worker's stale socket first. *)
val spawn : string array -> int
