(* The checksummed section container. Framing errors are reported with
   enough context to tell truncation, version skew and bit-rot apart —
   the tests assert on these prefixes. *)

module Bin_io = Glql_util.Bin_io
module Crc32 = Glql_util.Crc32
module W = Bin_io.Writer
module R = Bin_io.Reader

let magic = "GLQS"

let format_version = 1

(* The checksum covers the tag as well as the payload: a flipped byte in
   the tag would otherwise parse as a valid container with a renamed
   section (which a reader tolerating unknown tags would silently drop). *)
let section_crc tag payload =
  let c = Crc32.update Crc32.init tag ~pos:0 ~len:(String.length tag) in
  Crc32.finish (Crc32.update c payload ~pos:0 ~len:(String.length payload))

let to_string sections =
  let w = W.create () in
  W.raw w magic;
  W.u32 w format_version;
  W.u32 w (List.length sections);
  List.iter
    (fun (tag, payload) ->
      W.str w tag;
      W.u32 w (String.length payload);
      W.u32 w (section_crc tag payload);
      W.raw w payload)
    sections;
  W.contents w

let of_string s =
  Bin_io.decode s (fun r ->
      let m = R.take r (String.length magic) in
      if m <> magic then Bin_io.corrupt "bad magic %S (not a glql snapshot)" m;
      let v = R.u32 r in
      if v <> format_version then
        Bin_io.corrupt "unsupported snapshot format version %d (this build reads version %d)" v
          format_version;
      let count = R.u32 r in
      let sections =
        List.init count (fun _ ->
            let tag = R.str r in
            let len = R.u32 r in
            let crc = R.u32 r in
            let payload = R.take r len in
            if section_crc tag payload <> crc then
              Bin_io.corrupt "checksum mismatch in section %S (corrupt snapshot)" tag;
            (tag, payload))
      in
      R.expect_end r;
      sections)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": unreadable (concurrent truncation?)")

(* Write via a temp file in the destination directory plus an atomic
   rename, so a crash mid-save can never leave a half-written snapshot
   where a later boot would try to restore it. *)
let write_file path sections =
  let data = to_string sections in
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data);
    Sys.rename tmp path
  with
  | () -> Ok (String.length data)
  | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error msg
