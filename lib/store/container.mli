(** The sectioned binary container underneath snapshots.

    Layout (all integers little-endian):

    {v
    "GLQS"                magic, 4 bytes
    u32 format_version    currently 1
    u32 section_count
    per section:
      str  tag            u32 length + bytes, e.g. "GRPH"
      u32  payload length
      u32  CRC-32 of tag bytes ++ payload (IEEE, zlib-compatible)
      payload bytes
    v}

    Decoding rejects bad magic, unknown (future) versions, truncation
    anywhere, and per-section checksum mismatches — always with a clean
    [Error], never an exception or a partially decoded value. Unknown
    section tags are preserved by {!of_string} so a newer minor writer
    stays readable; incompatible changes must bump {!format_version}. *)

val magic : string

val format_version : int

(** Serialise sections in order. *)
val to_string : (string * string) list -> string

(** Parse a container; inverse of {!to_string}. *)
val of_string : string -> ((string * string) list, string) result

(** [write_file path sections] writes atomically (temp file + rename in
    the target directory) and returns the byte size written. *)
val write_file : string -> (string * string) list -> (int, string) result

val read_file : string -> ((string * string) list, string) result
