(* Snapshot codecs over the section container. Decoding builds the whole
   value up front — through the validating constructors Graph.of_csr,
   Cr.of_parts and Kwl.of_parts — and only then returns, so a malformed
   file yields [Error] and zero observable effect. *)

module Bin_io = Glql_util.Bin_io
module Trace = Glql_util.Trace
module Graph = Glql_graph.Graph
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module W = Bin_io.Writer
module R = Bin_io.Reader

type coloring_data = Cr_data of Cr.result | Kwl_data of int * Kwl.result

type graph_entry = { g_name : string; g_spec : string; g_gen : int; g_graph : Graph.t }

type coloring_entry = { c_name : string; c_data : coloring_data }

type metrics_counters = {
  m_requests : int;
  m_errors : int;
  m_bytes_in : int;
  m_bytes_out : int;
  m_by_command : (string * int) list;
}

(* A trained model (v6): pure data — architecture, seed, weight
   matrices, recipe/target/schema strings and source-graph generations —
   so the store does not depend on the nn layer. *)
type model_entry = {
  m_name : string;
  m_task : int;  (* 0 = classifier, 1 = regressor *)
  m_mode : int;  (* 0 = vertex rows, 1 = graph rows *)
  m_recipe : string;
  m_target : string;
  m_schema : string;
  m_sources : (string * int) list;
  m_sizes : int list;
  m_seed : int;
  m_params : (int * int * float array) list;
  m_rows : int;
  m_epochs : int;
  m_lr : float;
  m_split : float;
  m_losses : float array;
  m_train_metric : float;
  m_test_metric : float;
}

type t = {
  producer : string;
  saved_at : float;
  graphs : graph_entry list;
  colorings : coloring_entry list;
  plans : (string * string) list;
  models : model_entry list;
  metrics : metrics_counters option;
}

(* Section tags. *)
let s_meta = "META"

let s_graphs = "GRPH"

let s_colorings = "COLR"

let s_plans = "PLAN"

(* Models were first snapshotted as "MODL"; "MOD2" extends the record
   with the fit hyperparameters (lr, split) a RETRAIN-on-stale refit
   needs. Writers emit MOD2 only; readers take MOD2 when present and
   fall back to the legacy MODL codec with the historical defaults. *)
let s_models = "MODL"

let s_models2 = "MOD2"

(* The TRAIN defaults in force when MODL was current (see Models). *)
let legacy_lr = 0.05

let legacy_split = 0.8

let s_metrics = "MTRC"

(* Adjacency data is bounded by the registry's spec limits (u32-sized);
   writing it 4 bytes per entry halves snapshots versus i64. *)
let w_u32_array w a =
  W.u32 w (Array.length a);
  Array.iter (fun v -> W.u32 w v) a

let r_u32_array r =
  let n = R.u32 r in
  if R.remaining r < n * 4 then Bin_io.corrupt "truncated u32 array";
  Array.init n (fun _ -> R.u32 r)

(* --- graph codec --------------------------------------------------------- *)

let w_graph w g =
  let n = Graph.n_vertices g in
  let offsets, adjacency = Graph.to_csr g in
  W.u32 w n;
  W.u32 w (Graph.label_dim g);
  w_u32_array w offsets;
  w_u32_array w adjacency;
  for v = 0 to n - 1 do
    Array.iter (fun x -> W.f64 w x) (Graph.label g v)
  done

let r_graph r =
  let n = R.u32 r in
  let label_dim = R.u32 r in
  let offsets = r_u32_array r in
  let adjacency = r_u32_array r in
  if R.remaining r < n * label_dim * 8 then Bin_io.corrupt "truncated label block";
  let labels = Array.init n (fun _ -> Array.init label_dim (fun _ -> R.f64 r)) in
  Graph.of_csr ~n ~offsets ~adjacency ~labels

(* --- colouring codec ----------------------------------------------------- *)

(* Colour ids are interner indices; i64 keeps them exact whatever the
   interner produced. Cache entries are always solo runs, so the codec
   fixes one graph per entry and stores the full history (CR) or the
   stable colouring plus round count (k-WL). *)
let w_coloring w entry =
  W.str w entry.c_name;
  match entry.c_data with
  | Cr_data result ->
      W.u8 w 0;
      let history = List.map (function [ c ] -> c | _ -> invalid_arg "joint CR in cache") (Cr.history result) in
      W.u32 w (List.length history);
      List.iter (fun colors -> W.int_array w colors) history
  | Kwl_data (k, result) ->
      W.u8 w 1;
      W.u8 w k;
      W.u32 w (Kwl.rounds result);
      (match Kwl.stable_colors result with
      | [ colors ] -> W.int_array w colors
      | _ -> invalid_arg "joint k-WL in cache")

let r_coloring ~graph_of_name r =
  let name = R.str r in
  let g =
    match graph_of_name name with
    | Some g -> g
    | None -> Bin_io.corrupt "colouring references unknown graph %S" name
  in
  let data =
    match R.u8 r with
    | 0 ->
        let rounds = R.u32 r in
        let history = List.init rounds (fun _ -> [ R.int_array r ]) in
        Cr_data (Cr.of_parts ~graphs:[ g ] ~history)
    | 1 ->
        let k = R.u8 r in
        let rounds = R.u32 r in
        let stable = R.int_array r in
        Kwl_data (k, Kwl.of_parts ~k ~variant:Kwl.Folklore ~graphs:[ g ] ~stable:[ stable ] ~rounds)
    | kind -> Bin_io.corrupt "unknown colouring kind %d" kind
  in
  { c_name = name; c_data = data }

(* --- model codec ---------------------------------------------------------- *)

let w_model w m =
  W.str w m.m_name;
  W.u8 w m.m_task;
  W.u8 w m.m_mode;
  W.str w m.m_recipe;
  W.str w m.m_target;
  W.str w m.m_schema;
  W.u32 w (List.length m.m_sources);
  List.iter
    (fun (name, gen) ->
      W.str w name;
      W.i64 w gen)
    m.m_sources;
  W.int_array w (Array.of_list m.m_sizes);
  W.i64 w m.m_seed;
  W.u32 w (List.length m.m_params);
  List.iter
    (fun (rows, cols, data) ->
      W.u32 w rows;
      W.u32 w cols;
      if Array.length data <> rows * cols then invalid_arg "model param size mismatch";
      W.float_array w data)
    m.m_params;
  W.u32 w m.m_rows;
  W.u32 w m.m_epochs;
  W.f64 w m.m_lr;
  W.f64 w m.m_split;
  W.float_array w m.m_losses;
  W.f64 w m.m_train_metric;
  W.f64 w m.m_test_metric

let r_model ~v2 r =
  let m_name = R.str r in
  let m_task = R.u8 r in
  let m_mode = R.u8 r in
  if m_task > 1 || m_mode > 1 then Bin_io.corrupt "unknown model task/mode";
  let m_recipe = R.str r in
  let m_target = R.str r in
  let m_schema = R.str r in
  let n_sources = R.u32 r in
  let m_sources =
    List.init n_sources (fun _ ->
        let name = R.str r in
        let gen = R.i64 r in
        (name, gen))
  in
  let m_sizes = Array.to_list (R.int_array r) in
  let m_seed = R.i64 r in
  let n_params = R.u32 r in
  let m_params =
    List.init n_params (fun _ ->
        let rows = R.u32 r in
        let cols = R.u32 r in
        let data = R.float_array r in
        if Array.length data <> rows * cols then Bin_io.corrupt "model param size mismatch";
        (rows, cols, data))
  in
  let m_rows = R.u32 r in
  let m_epochs = R.u32 r in
  let m_lr = if v2 then R.f64 r else legacy_lr in
  let m_split = if v2 then R.f64 r else legacy_split in
  let m_losses = R.float_array r in
  let m_train_metric = R.f64 r in
  let m_test_metric = R.f64 r in
  {
    m_name;
    m_task;
    m_mode;
    m_recipe;
    m_target;
    m_schema;
    m_sources;
    m_sizes;
    m_seed;
    m_params;
    m_rows;
    m_epochs;
    m_lr;
    m_split;
    m_losses;
    m_train_metric;
    m_test_metric;
  }

(* --- sections ------------------------------------------------------------ *)

let encode_section tag f =
  Trace.with_span ("store.encode." ^ String.lowercase_ascii tag) @@ fun () ->
  let w = W.create () in
  f w;
  (tag, W.contents w)

let encode_sections snap =
  let meta =
    encode_section s_meta (fun w ->
        W.str w snap.producer;
        W.f64 w snap.saved_at)
  in
  let graphs =
    encode_section s_graphs (fun w ->
        W.u32 w (List.length snap.graphs);
        List.iter
          (fun e ->
            W.str w e.g_name;
            W.str w e.g_spec;
            W.i64 w e.g_gen;
            w_graph w e.g_graph)
          snap.graphs)
  in
  let colorings =
    encode_section s_colorings (fun w ->
        W.u32 w (List.length snap.colorings);
        List.iter (fun entry -> w_coloring w entry) snap.colorings)
  in
  let plans =
    encode_section s_plans (fun w ->
        W.u32 w (List.length snap.plans);
        List.iter
          (fun (key, src) ->
            W.str w key;
            W.str w src)
          snap.plans)
  in
  (* The models section is emitted only when there are models, so pre-v6
     snapshot bytes are unchanged for model-free state; old readers
     ignore the unknown tag via the container either way. Writers emit
     the MOD2 codec only — legacy MODL is read-side compatibility. *)
  let models =
    match snap.models with
    | [] -> []
    | ms ->
        [
          encode_section s_models2 (fun w ->
              W.u32 w (List.length ms);
              List.iter (fun m -> w_model w m) ms);
        ]
  in
  let metrics =
    match snap.metrics with
    | None -> []
    | Some m ->
        [
          encode_section s_metrics (fun w ->
              W.i64 w m.m_requests;
              W.i64 w m.m_errors;
              W.i64 w m.m_bytes_in;
              W.i64 w m.m_bytes_out;
              W.u32 w (List.length m.m_by_command);
              List.iter
                (fun (cmd, count) ->
                  W.str w cmd;
                  W.i64 w count)
                m.m_by_command);
        ]
  in
  [ meta; graphs; colorings; plans ] @ models @ metrics

let encode snap = Container.to_string (encode_sections snap)

let decode_section sections tag f ~default =
  match List.assoc_opt tag sections with
  | None -> default ()
  | Some payload ->
      Trace.with_span ("store.decode." ^ String.lowercase_ascii tag) @@ fun () ->
      let r = R.of_string payload in
      let v = f r in
      R.expect_end r;
      v

let decode s =
  match Container.of_string s with
  | Error _ as e -> e
  | Ok sections -> (
      match
        let producer, saved_at =
          decode_section sections s_meta
            ~default:(fun () -> Bin_io.corrupt "missing %s section" s_meta)
            (fun r ->
              let producer = R.str r in
              let saved_at = R.f64 r in
              (producer, saved_at))
        in
        let graphs =
          decode_section sections s_graphs
            ~default:(fun () -> Bin_io.corrupt "missing %s section" s_graphs)
            (fun r ->
              let count = R.u32 r in
              List.init count (fun _ ->
                  let g_name = R.str r in
                  let g_spec = R.str r in
                  let g_gen = R.i64 r in
                  let g_graph = r_graph r in
                  { g_name; g_spec; g_gen; g_graph }))
        in
        let graph_of_name name =
          Option.map (fun e -> e.g_graph) (List.find_opt (fun e -> e.g_name = name) graphs)
        in
        let colorings =
          decode_section sections s_colorings
            ~default:(fun () -> [])
            (fun r ->
              let count = R.u32 r in
              List.init count (fun _ -> r_coloring ~graph_of_name r))
        in
        let plans =
          decode_section sections s_plans
            ~default:(fun () -> [])
            (fun r ->
              let count = R.u32 r in
              List.init count (fun _ ->
                  let key = R.str r in
                  let src = R.str r in
                  (key, src)))
        in
        let models =
          decode_section sections s_models2
            ~default:(fun () ->
              decode_section sections s_models
                ~default:(fun () -> [])
                (fun r ->
                  let count = R.u32 r in
                  List.init count (fun _ -> r_model ~v2:false r)))
            (fun r ->
              let count = R.u32 r in
              List.init count (fun _ -> r_model ~v2:true r))
        in
        let metrics =
          decode_section sections s_metrics
            ~default:(fun () -> None)
            (fun r ->
              let m_requests = R.i64 r in
              let m_errors = R.i64 r in
              let m_bytes_in = R.i64 r in
              let m_bytes_out = R.i64 r in
              let count = R.u32 r in
              let m_by_command =
                List.init count (fun _ ->
                    let cmd = R.str r in
                    let n = R.i64 r in
                    (cmd, n))
              in
              Some { m_requests; m_errors; m_bytes_in; m_bytes_out; m_by_command })
        in
        { producer; saved_at; graphs; colorings; plans; models; metrics }
      with
      | snap -> Ok snap
      | exception Bin_io.Corrupt msg -> Error msg
      | exception Invalid_argument msg -> Error ("invalid snapshot data: " ^ msg)
      | exception Failure msg -> Error ("invalid snapshot data: " ^ msg))

let write_file path snap = Container.write_file path (encode_sections snap)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> decode contents
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": unreadable (concurrent truncation?)")
