(** Typed snapshots: what a warm [glqld] knows, as pure data with binary
    codecs over the {!Container} format.

    A snapshot holds the registered graphs (name, spec, generation, and
    the graph itself in CSR form), the stable WL / k-WL colourings of
    the server's cache (referenced by graph name, so a restore can rekey
    them under fresh registry generations), the {e sources} of cached
    plans keyed by their canonical {!Glql_gel.Normal_form.cache_key}
    (plans are recompiled on restore — deterministic and microseconds —
    so compiled closures never hit the disk), and the cumulative metrics
    counters.

    Encoding/decoding is pure: {!decode} either returns a fully
    validated snapshot or an [Error]; it never returns partial state and
    never raises, so callers can mutate live structures only after a
    decode has succeeded in full. *)

module Graph = Glql_graph.Graph
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl

type coloring_data =
  | Cr_data of Cr.result  (** full history, so smaller-round requests stay answerable *)
  | Kwl_data of int * Kwl.result  (** [k] and the stable folklore run *)

type graph_entry = {
  g_name : string;
  g_spec : string;  (** canonical generator spec, informational *)
  g_gen : int;  (** registry generation at save time, informational *)
  g_graph : Graph.t;
}

type coloring_entry = {
  c_name : string;  (** name of the registered graph the colouring belongs to *)
  c_data : coloring_data;
}

type metrics_counters = {
  m_requests : int;
  m_errors : int;
  m_bytes_in : int;
  m_bytes_out : int;
  m_by_command : (string * int) list;
}

type t = {
  producer : string;  (** e.g. ["glqld 0.4"] *)
  saved_at : float;  (** Unix time of the save *)
  graphs : graph_entry list;
  colorings : coloring_entry list;
  plans : (string * string) list;  (** (canonical cache key, GEL source) *)
  metrics : metrics_counters option;
}

val encode : t -> string

val decode : string -> (t, string) result

(** Atomic write; returns the byte size of the snapshot file. *)
val write_file : string -> t -> (int, string) result

val read_file : string -> (t, string) result
