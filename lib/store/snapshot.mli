(** Typed snapshots: what a warm [glqld] knows, as pure data with binary
    codecs over the {!Container} format.

    A snapshot holds the registered graphs (name, spec, generation, and
    the graph itself in CSR form), the stable WL / k-WL colourings of
    the server's cache (referenced by graph name, so a restore can rekey
    them under fresh registry generations), the {e sources} of cached
    plans keyed by their canonical {!Glql_gel.Normal_form.cache_key}
    (plans are recompiled on restore — deterministic and microseconds —
    so compiled closures never hit the disk), and the cumulative metrics
    counters.

    Encoding/decoding is pure: {!decode} either returns a fully
    validated snapshot or an [Error]; it never returns partial state and
    never raises, so callers can mutate live structures only after a
    decode has succeeded in full. *)

module Graph = Glql_graph.Graph
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl

type coloring_data =
  | Cr_data of Cr.result  (** full history, so smaller-round requests stay answerable *)
  | Kwl_data of int * Kwl.result  (** [k] and the stable folklore run *)

type graph_entry = {
  g_name : string;
  g_spec : string;  (** canonical generator spec, informational *)
  g_gen : int;  (** registry generation at save time, informational *)
  g_graph : Graph.t;
}

type coloring_entry = {
  c_name : string;  (** name of the registered graph the colouring belongs to *)
  c_data : coloring_data;
}

type metrics_counters = {
  m_requests : int;
  m_errors : int;
  m_bytes_in : int;
  m_bytes_out : int;
  m_by_command : (string * int) list;
}

(** A trained model of the v6 serving layer, as pure data: the head is
    fully determined by [m_sizes], [m_seed] and the weight matrices, so
    the store does not depend on the nn layer. Written to a dedicated
    MOD2 section — emitted only when models exist, ignored by pre-v6
    readers, defaulted to [[]] when absent — so snapshot compatibility
    is two-way. The legacy MODL section (which predates [m_lr] /
    [m_split]) is still read, defaulting those fields to the TRAIN
    defaults in force when it was current (lr 0.05, split 0.8). *)
type model_entry = {
  m_name : string;
  m_task : int;  (** 0 = classifier, 1 = regressor *)
  m_mode : int;  (** 0 = vertex rows, 1 = graph rows *)
  m_recipe : string;
  m_target : string;
  m_schema : string;
  m_sources : (string * int) list;  (** graph name, generation at fit time *)
  m_sizes : int list;
  m_seed : int;
  m_params : (int * int * float array) list;  (** rows, cols, row-major f64 data *)
  m_rows : int;
  m_epochs : int;
  m_lr : float;  (** fit learning rate, kept for RETRAIN-on-stale refits *)
  m_split : float;  (** fit train fraction, ditto *)
  m_losses : float array;
  m_train_metric : float;
  m_test_metric : float;
}

type t = {
  producer : string;  (** e.g. ["glqld 0.4"] *)
  saved_at : float;  (** Unix time of the save *)
  graphs : graph_entry list;
  colorings : coloring_entry list;
  plans : (string * string) list;  (** (canonical cache key, GEL source) *)
  models : model_entry list;  (** v6 model registry *)
  metrics : metrics_counters option;
}

val encode : t -> string

val decode : string -> (t, string) result

(** Atomic write; returns the byte size of the snapshot file. *)
val write_file : string -> t -> (int, string) result

val read_file : string -> (t, string) result
