(* Dense row-major matrices. Small and BLAS-free: the corpora in this
   repository keep dimensions in the tens to low hundreds, where a cache
   friendly triple loop is plenty.

   Products above [par_flops] multiply-adds are row-blocked over the
   domain pool.  Each output row is produced start-to-finish by exactly
   one domain with the same inner loops as the sequential code, so
   results are bit-identical for every pool size. *)

module Pool = Glql_util.Pool

type t = { rows : int; cols : int; data : float array }

(* Below this many multiply-adds the dispatch overhead outweighs the
   parallelism; MLP-sized products stay sequential. *)
let par_flops = 16_384

let create rows cols x = { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let rows m = m.rows

let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let data m = m.data

let of_rows rows_list =
  match rows_list with
  | [] -> invalid_arg "Mat.of_rows: empty"
  | first :: _ ->
      let cols = Array.length first in
      let rows = List.length rows_list in
      let m = zeros rows cols in
      List.iteri
        (fun i r ->
          if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows";
          Array.blit r 0 m.data (i * cols) cols)
        rows_list;
      m

let row m i = Array.sub m.data (i * m.cols) m.cols

let set_row m i (v : Vec.t) =
  if Array.length v <> m.cols then invalid_arg "Mat.set_row: dim mismatch";
  Array.blit v 0 m.data (i * m.cols) m.cols

let map f m = { m with data = Array.map f m.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.map2: shape mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

(* into = f a b pointwise; [into] may alias [a] or [b], which lets the
   backward passes reuse a gradient buffer as scratch. *)
let map2_into ~into f a b =
  if a.rows <> b.rows || a.cols <> b.cols || into.rows <> a.rows || into.cols <> a.cols then
    invalid_arg "Mat.map2_into: shape mismatch";
  for k = 0 to Array.length a.data - 1 do
    into.data.(k) <- f a.data.(k) b.data.(k)
  done

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let scale s m = map (fun x -> s *. x) m

let transpose m =
  init m.cols m.rows (fun i j -> get m j i)

(* y = x * m for a row vector x (the convention of the paper: F W),
   accumulated into a caller-owned buffer. *)
let vec_mul_into ~into (x : Vec.t) m =
  if Array.length x <> m.rows then invalid_arg "Mat.vec_mul_into: dim mismatch";
  if Array.length into <> m.cols then invalid_arg "Mat.vec_mul_into: bad output dim";
  let y = into in
  Array.fill y 0 m.cols 0.0;
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then begin
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (xi *. m.data.(base + j))
      done
    end
  done

let vec_mul (x : Vec.t) m =
  let y = Array.make m.cols 0.0 in
  vec_mul_into ~into:y x m;
  y

(* m * x for a column vector x. *)
let mul_vec m (x : Vec.t) =
  if Array.length x <> m.cols then invalid_arg "Mat.mul_vec: dim mismatch";
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. x.(j))
      done;
      !acc)

(* C = A B written into a caller-owned (scratch) matrix; row-blocked over
   the pool when big enough. *)
let mul_into ~into a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul_into: shape mismatch";
  if into.rows <> a.rows || into.cols <> b.cols then invalid_arg "Mat.mul_into: bad output shape";
  if into.data == a.data || into.data == b.data then invalid_arg "Mat.mul_into: aliased output";
  let c = into in
  let do_row i =
    let cbase = i * c.cols in
    Array.fill c.data cbase c.cols 0.0;
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then begin
        let bbase = k * b.cols in
        for j = 0 to b.cols - 1 do
          c.data.(cbase + j) <- c.data.(cbase + j) +. (aik *. b.data.(bbase + j))
        done
      end
    done
  in
  if a.rows * a.cols * b.cols >= par_flops then Pool.parallel_for ~n:a.rows do_row
  else
    for i = 0 to a.rows - 1 do
      do_row i
    done

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: shape mismatch";
  let c = zeros a.rows b.cols in
  mul_into ~into:c a b;
  c

(* into += A^T B, without materialising the transpose or the product —
   the dW accumulation of every backward pass. *)
let add_mul_at_b ~into a b =
  if a.rows <> b.rows then invalid_arg "Mat.add_mul_at_b: shape mismatch";
  if into.rows <> a.cols || into.cols <> b.cols then
    invalid_arg "Mat.add_mul_at_b: bad output shape";
  for k = 0 to a.rows - 1 do
    let abase = k * a.cols and bbase = k * b.cols in
    for i = 0 to a.cols - 1 do
      let aki = a.data.(abase + i) in
      if aki <> 0.0 then begin
        let cbase = i * into.cols in
        for j = 0 to b.cols - 1 do
          into.data.(cbase + j) <- into.data.(cbase + j) +. (aki *. b.data.(bbase + j))
        done
      end
    done
  done

(* C = A B^T without materialising the transpose — the dX computation of
   every backward pass (both operands are walked along rows). *)
let mul_abt a b =
  if a.cols <> b.cols then invalid_arg "Mat.mul_abt: shape mismatch";
  let c = zeros a.rows b.rows in
  let do_row i =
    let abase = i * a.cols and cbase = i * c.cols in
    for j = 0 to b.rows - 1 do
      let bbase = j * b.cols in
      let acc = ref 0.0 in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (a.data.(abase + k) *. b.data.(bbase + k))
      done;
      c.data.(cbase + j) <- !acc
    done
  in
  if a.rows * a.cols * b.rows >= par_flops then Pool.parallel_for ~n:a.rows do_row
  else
    for i = 0 to a.rows - 1 do
      do_row i
    done;
  c

let add_inplace ~into a =
  if into.rows <> a.rows || into.cols <> a.cols then invalid_arg "Mat.add_inplace";
  for k = 0 to Array.length a.data - 1 do
    into.data.(k) <- into.data.(k) +. a.data.(k)
  done

let axpy_inplace ~into alpha a =
  if into.rows <> a.rows || into.cols <> a.cols then invalid_arg "Mat.axpy_inplace";
  for k = 0 to Array.length a.data - 1 do
    into.data.(k) <- into.data.(k) +. (alpha *. a.data.(k))
  done

let fill m x = Array.fill m.data 0 (Array.length m.data) x

let gaussian rng rows cols ~stddev =
  init rows cols (fun _ _ -> stddev *. Glql_util.Rng.gaussian rng)

(* Glorot/Xavier initialisation used by the GNN substrate. *)
let glorot rng rows cols =
  let stddev = sqrt (2.0 /. float_of_int (rows + cols)) in
  gaussian rng rows cols ~stddev

let frobenius_dist a b =
  let acc = ref 0.0 in
  for k = 0 to Array.length a.data - 1 do
    let d = a.data.(k) -. b.data.(k) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let equal_approx ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  (* Short-circuits on the first out-of-tolerance element. *)
  let n = Array.length a.data in
  let rec ok k = k >= n || ((not (Float.abs (a.data.(k) -. b.data.(k)) > tol)) && ok (k + 1)) in
  ok 0

let to_string ?(digits = 4) m =
  let buf = Buffer.create 128 in
  for i = 0 to m.rows - 1 do
    Buffer.add_string buf (Vec.to_string ~digits (row m i));
    if i < m.rows - 1 then Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
