(** Dense row-major float matrices. BLAS-free; sized for the small corpora
    used throughout the reproduction.  Large products are row-blocked over
    the {!Glql_util.Pool} domain pool; each output row is produced by one
    domain with the sequential inner loops, so results are bit-identical
    for every pool size. *)

type t

val create : int -> int -> float -> t
val zeros : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t

(** The matrix's row-major backing store (row [i] starts at [i * cols]);
    the array itself, not a copy. Flat kernels read and write it
    directly to skip per-element bounds/closure overhead — only touch it
    for a matrix the caller owns. *)
val data : t -> float array

(** Build from a non-empty list of equal-length rows. *)
val of_rows : float array list -> t

(** Fresh copy of row [i]. *)
val row : t -> int -> Vec.t

val set_row : t -> int -> Vec.t -> unit
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

(** Pointwise [into = f a b]; [into] may alias [a] or [b], letting
    backward passes reuse a gradient buffer as scratch. *)
val map2_into : into:t -> (float -> float -> float) -> t -> t -> unit
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val transpose : t -> t

(** [vec_mul x m] is the row-vector product [x · m] (the paper's [F W]
    convention). *)
val vec_mul : Vec.t -> t -> Vec.t

(** [vec_mul_into ~into x m] computes [x · m] into the caller-owned
    buffer [into] (overwritten), avoiding the allocation of [vec_mul]. *)
val vec_mul_into : into:Vec.t -> Vec.t -> t -> unit

(** [mul_vec m x] is the column-vector product [m · x]. *)
val mul_vec : t -> Vec.t -> Vec.t

val mul : t -> t -> t

(** [mul_into ~into a b] computes [a · b] into the caller-owned matrix
    [into] (overwritten; must not alias an operand). *)
val mul_into : into:t -> t -> t -> unit

(** [add_mul_at_b ~into a b] accumulates [aᵀ · b] into [into] without
    materialising the transpose or the product — the dW update of the
    backward passes. *)
val add_mul_at_b : into:t -> t -> t -> unit

(** [mul_abt a b] is [a · bᵀ] without materialising the transpose — the
    dX computation of the backward passes. *)
val mul_abt : t -> t -> t
val add_inplace : into:t -> t -> unit

(** [axpy_inplace ~into alpha a] adds [alpha * a] into [into]. *)
val axpy_inplace : into:t -> float -> t -> unit

val fill : t -> float -> unit

(** I.i.d. centred Gaussian entries. *)
val gaussian : Glql_util.Rng.t -> int -> int -> stddev:float -> t

(** Glorot/Xavier initialisation. *)
val glorot : Glql_util.Rng.t -> int -> int -> t

val frobenius_dist : t -> t -> float
val equal_approx : ?tol:float -> t -> t -> bool
val to_string : ?digits:int -> t -> string
