(* Little-endian binary writer/reader. The reader is deliberately
   paranoid: every primitive checks the cursor against the end of input,
   and every length prefix is validated against the remaining byte count
   before allocating, so corrupt input degrades to a [Corrupt] exception
   the store layer turns into a clean [Error]. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 4096

  let length = Buffer.length

  let u8 b v =
    if v < 0 || v > 0xFF then invalid_arg "Bin_io.Writer.u8: out of range";
    Buffer.add_char b (Char.chr v)

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Bin_io.Writer.u32: out of range";
    Buffer.add_int32_le b (Int32.of_int v)

  let i64 b v = Buffer.add_int64_le b (Int64.of_int v)

  let f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    u32 b (Array.length a);
    Array.iter (fun v -> i64 b v) a

  let float_array b a =
    u32 b (Array.length a);
    Array.iter (fun v -> f64 b v) a

  let raw = Buffer.add_string

  let contents = Buffer.contents
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }

  let pos r = r.pos

  let remaining r = String.length r.src - r.pos

  let need r n what =
    if n < 0 || remaining r < n then
      corrupt "truncated input: needed %d byte(s) for %s, %d left" n what (remaining r)

  let u8 r =
    need r 1 "u8";
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u32 r =
    need r 4 "u32";
    let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xFFFFFFFF in
    r.pos <- r.pos + 4;
    v

  let i64 r =
    need r 8 "i64";
    let v64 = String.get_int64_le r.src r.pos in
    let v = Int64.to_int v64 in
    if Int64.of_int v <> v64 then corrupt "i64 value %Ld exceeds the native int range" v64;
    r.pos <- r.pos + 8;
    v

  let f64 r =
    need r 8 "f64";
    let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let take r n =
    need r n "raw bytes";
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let str r =
    let n = u32 r in
    need r n "string body";
    take r n

  (* Length prefixes of arrays are checked against the minimum encoded
     size before any allocation: a flipped length byte must fail cleanly
     instead of attempting a gigabyte [Array.make]. *)
  let int_array r =
    let n = u32 r in
    need r (n * 8) "int array body";
    Array.init n (fun _ -> i64 r)

  let float_array r =
    let n = u32 r in
    need r (n * 8) "float array body";
    Array.init n (fun _ -> f64 r)

  let expect_end r =
    if remaining r <> 0 then corrupt "trailing garbage: %d byte(s) past the end of data" (remaining r)
end

let decode s f =
  match f (Reader.of_string s) with
  | v -> Ok v
  | exception Corrupt msg -> Error msg
  | exception Invalid_argument msg -> Error ("invalid data: " ^ msg)
  | exception Failure msg -> Error ("invalid data: " ^ msg)
