(** Little-endian binary encoding with bounds-checked decoding, the
    byte-level substrate of the snapshot store.

    The writer is an append-only buffer; the reader is a cursor over an
    immutable string. Every read checks its bounds and every length
    prefix is validated against the bytes actually remaining, so a
    truncated or corrupted input can never trigger an out-of-range
    access or an absurd allocation — it raises {!Corrupt}, which
    {!decode} converts into a clean [Error]. *)

(** Raised by reader operations on malformed input. Callers inside the
    store layer let it propagate to {!decode}; it never escapes a
    [decode] call. *)
exception Corrupt of string

(** [corrupt fmt ...] raises {!Corrupt} with a formatted message. *)
val corrupt : ('a, unit, string, 'b) format4 -> 'a

module Writer : sig
  type t

  val create : unit -> t

  (** Bytes appended so far. *)
  val length : t -> int

  (** Unsigned byte; raises [Invalid_argument] outside [0 .. 255]. *)
  val u8 : t -> int -> unit

  (** Unsigned 32-bit little-endian; raises [Invalid_argument] outside
      [0 .. 0xFFFFFFFF]. *)
  val u32 : t -> int -> unit

  (** OCaml int as a signed 64-bit little-endian word. *)
  val i64 : t -> int -> unit

  (** IEEE-754 double, bit-exact. *)
  val f64 : t -> float -> unit

  (** Length-prefixed ([u32]) byte string. *)
  val str : t -> string -> unit

  (** Length-prefixed ([u32]) array of [i64]. *)
  val int_array : t -> int array -> unit

  (** Length-prefixed ([u32]) array of [f64], bit-exact. *)
  val float_array : t -> float array -> unit

  (** Append the raw bytes of another writer (no length prefix). *)
  val raw : t -> string -> unit

  val contents : t -> string
end

module Reader : sig
  type t

  val of_string : string -> t

  (** Current cursor position (bytes consumed). *)
  val pos : t -> int

  (** Bytes left between the cursor and the end of input. *)
  val remaining : t -> int

  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int
  val f64 : t -> float

  (** Length-prefixed byte string; the prefix is checked against
      {!remaining} before any allocation. *)
  val str : t -> string

  val int_array : t -> int array
  val float_array : t -> float array

  (** Raw [n] bytes. *)
  val take : t -> int -> string

  (** Raises {!Corrupt} unless the input is fully consumed. *)
  val expect_end : t -> unit
end

(** [decode s f] runs decoder [f] over [s], converting {!Corrupt} (and
    any [Invalid_argument] or [Failure] escaping domain validation)
    into [Error msg]. *)
val decode : string -> (Reader.t -> 'a) -> ('a, string) result
