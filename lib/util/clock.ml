(* Monotonic time. Bechamel's monotonic_clock sub-library is a single
   dependency-free C stub over clock_gettime(CLOCK_MONOTONIC); reusing it
   avoids hand-rolling stubs while keeping glql_util light. *)

let now_ns () = Monotonic_clock.now ()

let elapsed_ns t0 = Int64.sub (now_ns ()) t0

let ns_to_ms ns = Int64.to_float ns /. 1e6

let ns_to_s ns = Int64.to_float ns /. 1e9

let deadline_after timeout_s =
  if timeout_s <= 0.0 then None
  else Some (Int64.add (now_ns ()) (Int64.of_float (timeout_s *. 1e9)))

let expired = function
  | None -> false
  | Some d -> Int64.compare (now_ns ()) d > 0

(* Cooperative cancellation: long kernels (WL rounds, hom-count patterns)
   call [check] at their natural step boundaries so a per-request timeout
   bounds wall time instead of merely being noticed once the kernel is
   already done. *)
exception Deadline_exceeded

let check d = if expired d then raise Deadline_exceeded
