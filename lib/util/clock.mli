(** Monotonic-clock helpers for latency measurement (server metrics,
    per-request deadlines). Backed by [CLOCK_MONOTONIC] via bechamel's
    dependency-free stub, so readings never jump with wall-clock
    adjustments. *)

(** Nanoseconds from an arbitrary fixed origin. *)
val now_ns : unit -> int64

(** Nanoseconds elapsed since an earlier [now_ns] reading. *)
val elapsed_ns : int64 -> int64

val ns_to_ms : int64 -> float

val ns_to_s : int64 -> float

(** Deadline [timeout_s] seconds from now ([None] when [timeout_s <= 0],
    meaning no deadline). *)
val deadline_after : float -> int64 option

(** Has the deadline passed? [None] never expires. *)
val expired : int64 option -> bool

(** Raised by [check] when a deadline has passed — the cooperative
    cancellation signal threaded through the long kernels (per-round in
    colour refinement / k-WL, per-pattern in hom-count profiles). *)
exception Deadline_exceeded

(** [check d] raises {!Deadline_exceeded} when [d] has passed; a cheap
    monotonic-clock read, safe to call at every kernel step boundary. *)
val check : int64 option -> unit
