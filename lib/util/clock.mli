(** Monotonic-clock helpers for latency measurement (server metrics,
    per-request deadlines). Backed by [CLOCK_MONOTONIC] via bechamel's
    dependency-free stub, so readings never jump with wall-clock
    adjustments. *)

(** Nanoseconds from an arbitrary fixed origin. *)
val now_ns : unit -> int64

(** Nanoseconds elapsed since an earlier [now_ns] reading. *)
val elapsed_ns : int64 -> int64

val ns_to_ms : int64 -> float

val ns_to_s : int64 -> float

(** Deadline [timeout_s] seconds from now ([None] when [timeout_s <= 0],
    meaning no deadline). *)
val deadline_after : float -> int64 option

(** Has the deadline passed? [None] never expires. *)
val expired : int64 option -> bool
