(* CRC-32 (IEEE 802.3), reflected, polynomial 0xEDB88320 — the variant
   used by zlib, gzip and PNG, so snapshot checksums can be verified with
   any standard tool. The 256-entry table is built once at module load. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

type t = int (* the running register, already pre/post-conditioned by init/finish *)

let init = 0xFFFFFFFF

let update t s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref t in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c

let finish t = t lxor 0xFFFFFFFF

let of_string s = finish (update init s ~pos:0 ~len:(String.length s))
