(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), the checksum guarding
    every section of the binary snapshot container. Table-driven,
    allocation-free per byte, and incremental: feed chunks through
    {!update} or hash a whole string with {!of_string}. Results match
    zlib's [crc32] (e.g. [of_string "123456789" = 0xCBF43926]). *)

(** Running state of an incremental checksum. *)
type t

(** Fresh checksum state (all-ones register). *)
val init : t

(** [update t s ~pos ~len] extends the checksum over a substring; raises
    [Invalid_argument] when the range is out of bounds. *)
val update : t -> string -> pos:int -> len:int -> t

(** Finalise to the 32-bit checksum value (in [0 .. 0xFFFFFFFF]). *)
val finish : t -> int

(** One-shot checksum of a whole string. *)
val of_string : string -> int
