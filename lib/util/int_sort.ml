(* In-place ascending int sort without a comparator closure (Array.sort
   pays an indirect call per comparison): insertion sort for short rows,
   median-of-three quicksort above. Ints have no distinguishable
   duplicates, so every correct ascending sort produces the identical
   array — output-equivalent to [Array.sort Int.compare].

   Hoisted out of the WL colour-refinement kernel so the k-WL tuple-key
   path (Sig_hash.of_int_multiset) shares the same closure-free sort. *)

let rec qsort (a : int array) lo hi =
  if hi - lo < 16 then
    for i = lo + 1 to hi do
      let x = Array.unsafe_get a i in
      let j = ref (i - 1) in
      while !j >= lo && Array.unsafe_get a !j > x do
        Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
        decr j
      done;
      Array.unsafe_set a (!j + 1) x
    done
  else begin
    let swap i j =
      let t = Array.unsafe_get a i in
      Array.unsafe_set a i (Array.unsafe_get a j);
      Array.unsafe_set a j t
    in
    let mid = (lo + hi) / 2 in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi) < a.(lo) then swap hi lo;
    if a.(hi) < a.(mid) then swap hi mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while Array.unsafe_get a !i < pivot do incr i done;
      while Array.unsafe_get a !j > pivot do decr j done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    qsort a lo !j;
    qsort a !i hi
  end

let sort a = if Array.length a > 1 then qsort a 0 (Array.length a - 1)

let sorted_copy a =
  let c = Array.copy a in
  sort c;
  c
