(** Closure-free in-place ascending sort for [int array].

    Output-equivalent to [Array.sort Int.compare] (ints have no
    distinguishable duplicates, so any correct ascending sort yields the
    identical array) but avoids the indirect comparator call per
    comparison — the difference is measurable on the WL/k-WL hot paths
    where millions of short neighbour/tuple rows are sorted per round. *)

(** Sort [a] in place, ascending. *)
val sort : int array -> unit

(** Ascending-sorted copy; the argument is left untouched. *)
val sorted_copy : int array -> int array
