(* Shared JSON tree + printer (extracted from the server protocol so the
   metrics dump, bench rows and trace output use the same emitter). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* nan AND ±inf map to null: JSON has no non-finite tokens, and
         %.17g would print the invalid literal "inf". *)
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 128 in
  to_buffer buf j;
  Buffer.contents buf

(* Recursive-descent parser, the inverse of the printer above. The
   router needs it to merge per-shard replies; keeping it next to the
   printer means round-trips preserve field order (objects are assoc
   lists in document order). Numbers without '.', 'e' or 'E' parse as
   [Int] when they fit, so printer output round-trips exactly. *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          let c = s.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              (* Only the escapes the printer emits (< 0x20) need exact
                 round-trips; other code points decode as UTF-8. *)
              let v = hex4 () in
              if v < 0x80 then Buffer.add_char b (Char.chr v)
              else if v < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (v lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (v lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
              end
          | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let is_float = ref false in
    let continue_ = ref true in
    while !continue_ && !pos < n do
      match s.[!pos] with
      | '0' .. '9' -> incr pos
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          incr pos
      | _ -> continue_ := false
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let int_member key j =
  match member key j with
  | Some (Int i) -> Some i
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
