(** The one JSON tree and printer of the whole system. The server wire
    protocol, the metrics dumps, the bench [--json] rows and the trace
    output all render through this module, so the escaping and float
    rules cannot drift between emitters.

    Rendering is single-line and deterministic. Non-finite floats (nan,
    ±infinity) print as [null] — JSON has no token for them, and [inf]
    would corrupt the stream for any standards-compliant reader. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Append the rendering of one value to [buf]. *)
val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

(** Append a quoted, escaped JSON string literal to [buf]. *)
val escape_to : Buffer.t -> string -> unit

(** Parse one JSON document (the whole string; trailing garbage is an
    error). Objects keep their fields in document order, so
    [to_string] of a parsed value preserves the original field layout —
    the property the sharded router relies on when it re-renders merged
    per-shard replies. Numbers without a fraction or exponent parse as
    [Int]. *)
val parse : string -> (t, string) result

(** [member k j] is field [k] of object [j], if present. *)
val member : string -> t -> t option

(** [int_member k j] is field [k] of [j] when it is an integer. *)
val int_member : string -> t -> int option
