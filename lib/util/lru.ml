(* Bounded LRU map: a hash table from keys to nodes of a doubly-linked
   recency list, [first] being most- and [last] least-recently used. All
   operations are O(1) expected. *)

type ('k, 'v) node = {
  nkey : 'k;
  mutable nvalue : 'v;
  mutable prev : ('k, 'v) node option;  (* towards [first] (more recent) *)
  mutable next : ('k, 'v) node option;  (* towards [last] (less recent) *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;
  mutable last : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be at least 1";
  {
    cap = capacity;
    tbl = Hashtbl.create (min capacity 64);
    first = None;
    last = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let touch t n =
  match t.first with
  | Some f when f == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let get t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some n.nvalue
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.tbl k

let evict_last t =
  match t.last with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.nkey;
      t.evictions <- t.evictions + 1

let put t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.nvalue <- v;
      touch t n
  | None ->
      let n = { nkey = k; nvalue = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      if Hashtbl.length t.tbl > t.cap then evict_last t

let find_or_add t k ~compute =
  match get t k with
  | Some v -> v
  | None ->
      let v = compute () in
      put t k v;
      v

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let clear t =
  Hashtbl.reset t.tbl;
  t.first <- None;
  t.last <- None

let keys_mru_first t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.nkey :: acc) n.next
  in
  walk [] t.first

let bindings_mru_first t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.nkey, n.nvalue) :: acc) n.next
  in
  walk [] t.first
