(* Bounded LRU map: a hash table from keys to nodes of a doubly-linked
   recency list, [first] being most- and [last] least-recently used. All
   operations are O(1) expected.

   Besides the entry-count capacity, a cache can carry an optional byte
   budget: [put ~bytes] records the caller's size estimate per entry and
   eviction then also runs while the byte total is over budget, so caches
   of wildly differently-sized values (compiled plans vs. full colouring
   histories) are bounded by memory rather than cardinality. *)

type ('k, 'v) node = {
  nkey : 'k;
  mutable nvalue : 'v;
  mutable nbytes : int;
  mutable prev : ('k, 'v) node option;  (* towards [first] (more recent) *)
  mutable next : ('k, 'v) node option;  (* towards [last] (less recent) *)
}

type ('k, 'v) t = {
  cap : int;
  max_bytes : int;  (* 0 = no byte budget *)
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;
  mutable last : ('k, 'v) node option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_bytes = 0) ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be at least 1";
  if max_bytes < 0 then invalid_arg "Lru.create: max_bytes must be >= 0";
  {
    cap = capacity;
    max_bytes;
    tbl = Hashtbl.create (min capacity 64);
    first = None;
    last = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

let max_bytes t = t.max_bytes

let length t = Hashtbl.length t.tbl

let bytes_used t = t.bytes

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let push_back t n =
  n.prev <- t.last;
  n.next <- None;
  (match t.last with Some l -> l.next <- Some n | None -> t.first <- Some n);
  t.last <- Some n

let touch t n =
  match t.first with
  | Some f when f == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let get t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some n.nvalue
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.tbl k

(* Lookup touching neither recency nor the hit/miss counters. *)
let peek t k = Option.map (fun n -> n.nvalue) (Hashtbl.find_opt t.tbl k)

let drop t n =
  unlink t n;
  Hashtbl.remove t.tbl n.nkey;
  t.bytes <- t.bytes - n.nbytes;
  t.evictions <- t.evictions + 1

let evict_last t = match t.last with None -> () | Some n -> drop t n

let over_budget t =
  Hashtbl.length t.tbl > t.cap || (t.max_bytes > 0 && t.bytes > t.max_bytes)

(* [cold:true] inserts (or demotes) the binding at the LRU end instead of
   the front: the entry counts fully against capacity and the byte budget
   but is first in line for eviction — the home of second-class entries
   like superseded-generation colouring seeds. Inserting cold while over
   budget can evict the new entry itself; that is the intended
   semantics (a seed must never displace live entries). *)
let put_at ~cold ?(bytes = 0) t k v =
  let bytes = if bytes < 0 then 0 else bytes in
  if t.max_bytes > 0 && bytes > t.max_bytes then
    (* A value larger than the whole budget is not cacheable; drop any
       stale binding under the key rather than flushing unrelated
       entries to make room that can never suffice. *)
    match Hashtbl.find_opt t.tbl k with Some n -> drop t n | None -> ()
  else begin
    (match Hashtbl.find_opt t.tbl k with
    | Some n ->
        n.nvalue <- v;
        t.bytes <- t.bytes - n.nbytes + bytes;
        n.nbytes <- bytes;
        if cold then begin
          unlink t n;
          push_back t n
        end
        else touch t n
    | None ->
        let n = { nkey = k; nvalue = v; nbytes = bytes; prev = None; next = None } in
        Hashtbl.replace t.tbl k n;
        if cold then push_back t n else push_front t n;
        t.bytes <- t.bytes + bytes);
    while over_budget t && Hashtbl.length t.tbl > 0 do
      evict_last t
    done
  end

let put ?bytes t k v = put_at ~cold:false ?bytes t k v

let put_cold ?bytes t k v = put_at ~cold:true ?bytes t k v

(* Remove a binding without counting a capacity eviction (the caller is
   retiring the entry deliberately, e.g. rekeying a seed). *)
let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.nkey;
      t.bytes <- t.bytes - n.nbytes

let find_or_add t k ~compute =
  match get t k with
  | Some v -> v
  | None ->
      let v = compute () in
      put t k v;
      v

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let clear t =
  Hashtbl.reset t.tbl;
  t.first <- None;
  t.last <- None;
  t.bytes <- 0

let keys_mru_first t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.nkey :: acc) n.next
  in
  walk [] t.first

let bindings_mru_first t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.nkey, n.nvalue) :: acc) n.next
  in
  walk [] t.first
