(** A small bounded LRU map with hit/miss/eviction counters, shared by the
    query server's compiled-plan cache and per-graph colouring cache.

    Not thread-safe: callers that share one cache across domains (the
    server's request handlers) must bring their own lock. Keys are compared
    with structural equality and hashed with [Hashtbl.hash]. *)

type ('k, 'v) t

(** [create ~capacity ()] is an empty cache holding at most [capacity]
    bindings; raises [Invalid_argument] when [capacity < 1].
    [max_bytes] adds a byte budget (default [0] = none): entries inserted
    with [put ~bytes] count towards it and the least-recently-used
    entries are evicted while the total exceeds it. *)
val create : ?max_bytes:int -> capacity:int -> unit -> ('k, 'v) t

val capacity : ('k, 'v) t -> int

(** The byte budget given at [create] ([0] = unbounded). *)
val max_bytes : ('k, 'v) t -> int

(** Number of live bindings. *)
val length : ('k, 'v) t -> int

(** Sum of the [~bytes] estimates of the live bindings. *)
val bytes_used : ('k, 'v) t -> int

(** [get t k] is the value bound to [k], marking it most-recently used and
    counting a hit; [None] counts a miss. *)
val get : ('k, 'v) t -> 'k -> 'v option

(** Membership test that touches neither recency nor the counters. *)
val mem : ('k, 'v) t -> 'k -> bool

(** Lookup that touches neither recency nor the counters. *)
val peek : ('k, 'v) t -> 'k -> 'v option

(** [put t k v] binds [k] to [v] as the most-recently-used entry,
    replacing any previous binding and evicting least-recently-used
    entries while over capacity or over the byte budget. [bytes]
    (default [0]) is the caller's size estimate for this entry. A value
    whose [bytes] alone exceeds the budget is not inserted at all (and
    any stale binding under the key is dropped) — a fitting new entry,
    by contrast, always survives its own insertion. *)
val put : ?bytes:int -> ('k, 'v) t -> 'k -> 'v -> unit

(** [put_cold t k v] is {!put} except the binding lands at the
    least-recently-used end: it counts fully against capacity and the
    byte budget but is the first candidate for eviction (and may be
    evicted by its own insertion when the cache is already full) — for
    second-class entries such as superseded-generation colouring seeds
    that must never displace live entries. *)
val put_cold : ?bytes:int -> ('k, 'v) t -> 'k -> 'v -> unit

(** Remove a binding (no-op when absent) {e without} counting a capacity
    eviction — deliberate retirement, not pressure. *)
val remove : ('k, 'v) t -> 'k -> unit

(** [find_or_add t k ~compute] is [get] with [compute ()] inserted (and
    returned) on a miss. *)
val find_or_add : ('k, 'v) t -> 'k -> compute:(unit -> 'v) -> 'v

(** Successful [get]s (and [find_or_add] hits) since creation. *)
val hits : ('k, 'v) t -> int

(** Failed lookups since creation. *)
val misses : ('k, 'v) t -> int

(** Entries dropped by capacity eviction since creation. *)
val evictions : ('k, 'v) t -> int

(** Drop all bindings; counters are kept. *)
val clear : ('k, 'v) t -> unit

(** Keys from most- to least-recently used (for tests and introspection). *)
val keys_mru_first : ('k, 'v) t -> 'k list

(** Bindings from most- to least-recently used, touching neither recency
    nor the counters (the snapshot store exports caches through this). *)
val bindings_mru_first : ('k, 'v) t -> ('k * 'v) list
