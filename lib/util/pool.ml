(* A fork-join domain pool for the hot kernels (WL refinement, hom-count
   profiles, GNN training, matrix products).

   One process-wide pool is created lazily on the first parallel call.  Its
   size comes from the GLQL_DOMAINS environment variable when set, and from
   [Domain.recommended_domain_count] otherwise; size 1 is a guaranteed
   sequential fallback that never spawns a domain, so single-core behaviour
   is exactly the plain loop.

   Scheduling is work-sharing with an atomic chunk cursor: every
   participant (the caller plus [size - 1] resident worker domains) claims
   contiguous index chunks with a fetch-and-add until the range is
   exhausted, so uneven per-item costs balance out.  Determinism is the
   caller's contract and is easy to keep: items are independent and write
   to caller-owned slots keyed by index, so the output never depends on
   which domain ran which item.

   Nested parallel regions degrade to sequential execution (a domain-local
   flag marks "already inside the pool"), which both avoids deadlock and
   keeps nested kernels bit-identical to their sequential runs. *)

type job = {
  gen : int;
  f : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  mutable err : exn option;
  trace_ctx : Trace.context;
      (* The submitting domain's trace context: workers install it while
         running this job's chunks, so spans opened inside pooled kernels
         land in the sink of the request that dispatched the work. *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  has_job : Condition.t;
  job_done : Condition.t;
  mutable job : job option;
  mutable gen : int;
  mutable quit : bool;
  mutable workers : unit Domain.t list;
}

(* True on worker domains and inside an active parallel region or
   [sequential] block: any pool entry point called there runs inline. *)
let busy_key = Domain.DLS.new_key (fun () -> false)

let requested_size () =
  match Sys.getenv_opt "GLQL_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> min k 128
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let size_memo = lazy (requested_size ())

let size () = Lazy.force size_memo

let record_error pool j e =
  Mutex.lock pool.mutex;
  (match j.err with None -> j.err <- Some e | Some _ -> ());
  Mutex.unlock pool.mutex

(* Claim and run chunks until the cursor passes [n]; count what we ran and
   wake the caller when the job's last item completes.  An exception stops
   the current chunk but still counts it, so the caller never hangs. *)
let process_chunks pool j =
  let finished = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let lo = Atomic.fetch_and_add j.next j.chunk in
    if lo >= j.n then continue_ := false
    else begin
      let hi = min j.n (lo + j.chunk) in
      (try
         for i = lo to hi - 1 do
           j.f i
         done
       with e -> record_error pool j e);
      finished := !finished + (hi - lo)
    end
  done;
  if !finished > 0 then begin
    let before = Atomic.fetch_and_add j.completed !finished in
    if before + !finished = j.n then begin
      Mutex.lock pool.mutex;
      Condition.broadcast pool.job_done;
      Mutex.unlock pool.mutex
    end
  end

let worker pool =
  Domain.DLS.set busy_key true;
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while
      (not pool.quit)
      && (match pool.job with Some j -> j.gen = !last_gen | None -> true)
    do
      Condition.wait pool.has_job pool.mutex
    done;
    if pool.quit then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let j = match pool.job with Some j -> j | None -> assert false in
      Mutex.unlock pool.mutex;
      last_gen := j.gen;
      Trace.with_context j.trace_ctx (fun () -> process_chunks pool j)
    end
  done

let instance = ref None

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.quit <- true;
  Condition.broadcast pool.has_job;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let get_pool () =
  match !instance with
  | Some p -> p
  | None ->
      let p =
        {
          size = size ();
          mutex = Mutex.create ();
          has_job = Condition.create ();
          job_done = Condition.create ();
          job = None;
          gen = 0;
          quit = false;
          workers = [];
        }
      in
      if p.size > 1 then begin
        p.workers <- List.init (p.size - 1) (fun _ -> Domain.spawn (fun () -> worker p));
        at_exit (fun () -> shutdown p)
      end;
      instance := Some p;
      p

let run_seq ~n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for ?chunk ~n f =
  if n <= 0 then ()
  else if size () = 1 || Domain.DLS.get busy_key || n = 1 then run_seq ~n f
  else begin
    let pool = get_pool () in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (pool.size * 8))
    in
    let j =
      {
        gen = pool.gen + 1;
        f;
        n;
        chunk;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        err = None;
        trace_ctx = Trace.current_context ();
      }
    in
    Mutex.lock pool.mutex;
    pool.gen <- j.gen;
    pool.job <- Some j;
    Condition.broadcast pool.has_job;
    Mutex.unlock pool.mutex;
    (* The caller is a participant too; mark it busy so nested parallel
       calls inside [f] run inline. *)
    Domain.DLS.set busy_key true;
    process_chunks pool j;
    Domain.DLS.set busy_key false;
    Mutex.lock pool.mutex;
    while Atomic.get j.completed < j.n do
      Condition.wait pool.job_done pool.mutex
    done;
    pool.job <- None;
    Mutex.unlock pool.mutex;
    match j.err with Some e -> raise e | None -> ()
  end

let parallel_map_array f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ~n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map (function Some x -> x | None -> assert false) out
  end

let parallel_reduce ~n ~init ~map ~combine =
  if n <= 0 then init
  else begin
    let out = Array.make n None in
    parallel_for ~n (fun i -> out.(i) <- Some (map i));
    (* Combine strictly in index order: float reductions stay bit-identical
       to the sequential left fold no matter the pool size. *)
    Array.fold_left
      (fun acc slot -> match slot with Some x -> combine acc x | None -> assert false)
      init out
  end

let sequential f =
  let prev = Domain.DLS.get busy_key in
  Domain.DLS.set busy_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set busy_key prev) f
