(** Fork-join domain pool used by the hot kernels (WL refinement, hom-count
    profiles, GNN training, matrix products).

    The process-wide pool is created lazily on first use.  Its size is
    [GLQL_DOMAINS] when that environment variable holds a positive integer,
    and [Domain.recommended_domain_count ()] otherwise.  Size 1 is a
    guaranteed sequential fallback: no domain is ever spawned and every
    entry point runs the plain loop.

    Determinism contract: items of one parallel region must be independent
    and write only to slots keyed by their own index.  Under that contract
    every combinator below produces bit-identical results for every pool
    size, including 1 ([parallel_reduce] combines in index order).

    Entry points must be called from the main domain; parallel regions do
    not nest — a nested call (or any call inside [sequential]) runs
    inline, sequentially. *)

(** Number of domains the pool will use (>= 1). *)
val size : unit -> int

(** [parallel_for ~n f] runs [f 0 .. f (n-1)], splitting indices into
    chunks claimed dynamically by the caller and the resident workers.
    [chunk] overrides the chunk size (default [n / (size * 8)], at least
    1).  The first exception raised by [f] is re-raised in the caller
    after the region completes. *)
val parallel_for : ?chunk:int -> n:int -> (int -> unit) -> unit

(** [parallel_map_array f a] is [Array.map f a] with the applications of
    [f] distributed over the pool. *)
val parallel_map_array : ('a -> 'b) -> 'a array -> 'b array

(** [parallel_reduce ~n ~init ~map ~combine] computes [map i] for each
    index in parallel, then folds [combine] over the results strictly in
    index order — so float reductions match the sequential fold bit for
    bit. *)
val parallel_reduce :
  n:int -> init:'a -> map:(int -> 'b) -> combine:('a -> 'b -> 'a) -> 'a

(** [sequential f] runs [f ()] with every pool entry point forced to the
    sequential fallback — the reference against which parallel runs are
    compared in tests. *)
val sequential : (unit -> 'a) -> 'a
