(* Canonical string signatures for structured values.

   Weisfeiler-Leman style algorithms and the separation-power toolkit both
   need to intern "signatures" (multisets of colours, rounded float vectors,
   tuples of colours) into dense integer ids that are *comparable across
   graphs*.  We build explicit canonical strings rather than relying on
   [Hashtbl.hash], which could collide silently and corrupt a refinement. *)

let of_int_list ints =
  let b = Buffer.create 32 in
  List.iter
    (fun i ->
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b ',')
    ints;
  Buffer.contents b

let of_int_array ints =
  let b = Buffer.create 32 in
  Array.iter
    (fun i ->
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b ',')
    ints;
  Buffer.contents b

(* Multiset signature: sort a *copy* so callers keep their order. The
   closure-free sort is output-equivalent to [Array.sort compare] on
   ints, so signatures — and every colouring interned from them — stay
   bit-identical. *)
let of_int_multiset ints = of_int_array (Int_sort.sorted_copy ints)

let of_string_list parts = String.concat ";" parts

(* Float vectors rounded to a tolerance, so numerically-equal embeddings
   intern to the same id.  [decimals] digits after the point. *)
let of_float_vector ?(decimals = 6) v =
  let b = Buffer.create 64 in
  Array.iter
    (fun x ->
      let r = Float.round (x *. (10.0 ** float_of_int decimals)) in
      (* Normalise -0. to 0. so that signatures match. *)
      let r = if r = 0.0 then 0.0 else r in
      Buffer.add_string b (Printf.sprintf "%.0f" r);
      Buffer.add_char b ',')
    v;
  Buffer.contents b

(* Interner: canonical string -> dense id, shared across graphs. *)
module Interner = struct
  type t = { tbl : (string, int) Hashtbl.t; mutable next : int }

  let create () = { tbl = Hashtbl.create 256; next = 0 }

  let intern t key =
    match Hashtbl.find_opt t.tbl key with
    | Some id -> id
    | None ->
        let id = t.next in
        t.next <- id + 1;
        Hashtbl.add t.tbl key id;
        id

  let size t = t.next
end
