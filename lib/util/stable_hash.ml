(* Process-independent string hashing for placement decisions.

   [Hashtbl.hash] is free to change across compiler releases and says
   nothing about its value being stable, which would silently re-shard a
   registry across an upgrade. FNV-1a over the bytes is fully specified,
   trivially reimplementable in any client, and well-mixed enough for
   shard balancing over human-chosen graph names. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash64 s =
  let h = ref fnv_offset in
  for i = 0 to String.length s - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s i)));
    h := Int64.mul !h fnv_prime
  done;
  !h

(* Fold to a nonnegative OCaml int (drop the sign bit), then reduce. *)
let to_nonneg h = Int64.to_int (Int64.logand h 0x3fff_ffff_ffff_ffffL)

let shard ~shards s =
  if shards <= 0 then invalid_arg "Stable_hash.shard: shards must be positive";
  to_nonneg (hash64 s) mod shards
