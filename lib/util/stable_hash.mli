(** Stable (process- and run-independent) string hashing for placement.

    Used to map graph names to shard ids in the sharded server topology:
    the assignment must survive daemon restarts and be reproducible by
    external tooling, which rules out [Hashtbl.hash]. The function is
    FNV-1a 64-bit over the raw bytes. *)

(** FNV-1a 64-bit hash of the string's bytes. *)
val hash64 : string -> int64

(** [shard ~shards s] maps [s] to a shard id in [0 .. shards-1].
    Deterministic for a fixed [shards]. Raises [Invalid_argument] when
    [shards <= 0]. *)
val shard : shards:int -> string -> int
