(* Nestable timed spans. Disabled-mode cost is one Domain.DLS read plus
   one atomic load per [with_span]; everything heavier happens only when
   a sink is installed or a Chrome-trace file is open.

   Per-domain state is the open-span stack and the installed sink. The
   sink itself is shared mutable state (mutex-guarded append) so that
   work dispatched through the Pool — whose worker domains receive the
   caller's context via [current_context]/[with_context] — collects into
   the same request sink from several domains at once. *)

type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  domain : int;
  depth : int;
  args : (string * string) list;
}

type sink = {
  keep : bool;
  on_span : (span -> unit) option;
  mutable collected : span list;  (* completion order, newest first *)
  smutex : Mutex.t;
}

type frame = { fname : string; ft0 : int64; mutable fargs : (string * string) list }

type dstate = { mutable sink : sink option; mutable stack : frame list }

let state_key = Domain.DLS.new_key (fun () -> { sink = None; stack = [] })

(* --- chrome-trace file sink ---------------------------------------------- *)

let chrome_on = Atomic.make false

let chrome_mutex = Mutex.create ()

(* (channel, origin_ns, first_event_pending) — all under chrome_mutex. *)
let chrome_state : (out_channel * int64 * bool ref) option ref = ref None

let chrome_enabled () = Atomic.get chrome_on

let flush_chrome () =
  Mutex.lock chrome_mutex;
  (match !chrome_state with
  | Some (oc, _, _) ->
      Atomic.set chrome_on false;
      chrome_state := None;
      (try
         output_string oc "\n]\n";
         close_out oc
       with Sys_error _ -> ())
  | None -> ());
  Mutex.unlock chrome_mutex

let enable_chrome path =
  flush_chrome ();
  let oc = open_out path in
  output_string oc "[";
  Mutex.lock chrome_mutex;
  chrome_state := Some (oc, Monotonic_clock.now (), ref true);
  Atomic.set chrome_on true;
  Mutex.unlock chrome_mutex;
  at_exit flush_chrome

let setup_from_env () =
  match Sys.getenv_opt "GLQL_TRACE" with
  | Some path when String.trim path <> "" -> enable_chrome (String.trim path)
  | _ -> ()

let us_of ~origin ns = Int64.to_float (Int64.sub ns origin) /. 1e3

let chrome_emit sp =
  Mutex.lock chrome_mutex;
  (match !chrome_state with
  | Some (oc, origin, first) ->
      let event =
        Json.Obj
          [
            ("name", Json.Str sp.name);
            ("cat", Json.Str "glql");
            ("ph", Json.Str "X");
            ("ts", Json.Float (us_of ~origin sp.start_ns));
            ("dur", Json.Float (Int64.to_float sp.dur_ns /. 1e3));
            ("pid", Json.Int 1);
            ("tid", Json.Int sp.domain);
            ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) sp.args));
          ]
      in
      (try
         output_string oc (if !first then "\n" else ",\n");
         first := false;
         output_string oc (Json.to_string event)
       with Sys_error _ -> ())
  | None -> ());
  Mutex.unlock chrome_mutex

(* --- spans ---------------------------------------------------------------- *)

let enabled () =
  (Domain.DLS.get state_key).sink <> None || Atomic.get chrome_on

let annotate k v =
  let st = Domain.DLS.get state_key in
  match st.stack with
  | fr :: _ -> fr.fargs <- (k, v) :: fr.fargs
  | [] -> ()

let with_span ?(args = []) name f =
  let st = Domain.DLS.get state_key in
  if st.sink = None && not (Atomic.get chrome_on) then f ()
  else begin
    let fr = { fname = name; ft0 = Monotonic_clock.now (); fargs = args } in
    st.stack <- fr :: st.stack;
    let depth = List.length st.stack in
    let finish () =
      let dur = Int64.sub (Monotonic_clock.now ()) fr.ft0 in
      (match st.stack with
      | top :: rest when top == fr -> st.stack <- rest
      | stack -> st.stack <- List.filter (fun f' -> f' != fr) stack);
      let sp =
        {
          name = fr.fname;
          start_ns = fr.ft0;
          dur_ns = dur;
          domain = (Domain.self () :> int);
          depth;
          args = List.rev fr.fargs;
        }
      in
      (match st.sink with
      | Some s ->
          (match s.on_span with Some cb -> ( try cb sp with _ -> ()) | None -> ());
          if s.keep then begin
            Mutex.lock s.smutex;
            s.collected <- sp :: s.collected;
            Mutex.unlock s.smutex
          end
      | None -> ());
      if Atomic.get chrome_on then chrome_emit sp
    in
    Fun.protect ~finally:finish f
  end

(* --- sinks and contexts --------------------------------------------------- *)

let make_sink ?(keep_spans = false) ?on_span () =
  { keep = keep_spans; on_span; collected = []; smutex = Mutex.create () }

let with_sink sink f =
  let st = Domain.DLS.get state_key in
  let prev = st.sink in
  st.sink <- Some sink;
  Fun.protect ~finally:(fun () -> st.sink <- prev) f

let spans sink =
  Mutex.lock sink.smutex;
  let collected = sink.collected in
  Mutex.unlock sink.smutex;
  List.stable_sort (fun a b -> Int64.compare a.start_ns b.start_ns) (List.rev collected)

type context = sink option

let current_context () = (Domain.DLS.get state_key).sink

let with_context ctx f =
  let st = Domain.DLS.get state_key in
  let prev_sink = st.sink and prev_stack = st.stack in
  st.sink <- ctx;
  st.stack <- [];
  Fun.protect
    ~finally:(fun () ->
      st.sink <- prev_sink;
      st.stack <- prev_stack)
    f

let spans_to_json ~origin_ns spans =
  Json.List
    (List.map
       (fun sp ->
         Json.Obj
           [
             ("name", Json.Str sp.name);
             ("start_us", Json.Float (us_of ~origin:origin_ns sp.start_ns));
             ("dur_us", Json.Float (Int64.to_float sp.dur_ns /. 1e3));
             ("domain", Json.Int sp.domain);
             ("depth", Json.Int sp.depth);
             ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) sp.args));
           ])
       spans)
