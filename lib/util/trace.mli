(** Pipeline tracing: lightweight nestable spans with monotonic-clock
    timing, threaded through the whole query pipeline (parser,
    normalisation, plan compilation, WL refinement, hom counting, the
    server request lifecycle).

    Cost model: when nothing is listening — no per-request sink on the
    current domain and no process-wide Chrome-trace file — [with_span]
    is a domain-local read plus one atomic load and then calls the
    thunk directly, so instrumented kernels run at full speed.

    Domain safety: the span stack is domain-local, and {!Pool}
    propagates the active {!context} to its worker domains, so spans
    opened inside [Pool.parallel_for] / [parallel_map_array] land in
    the sink of the request that dispatched the work. A sink may
    therefore collect from several domains at once; appends are
    mutex-guarded.

    Two outputs:
    - a per-request {!sink} ([with_sink] + [spans]) feeding the
      server's [EXPLAIN] / [TRACE] replies and per-stage histograms;
    - a process-wide Chrome-trace file ([enable_chrome], or
      [setup_from_env] reading [GLQL_TRACE=<file>]) loadable in
      chrome://tracing or Perfetto. *)

type span = {
  name : string;
  start_ns : int64;  (** monotonic clock at span open *)
  dur_ns : int64;
  domain : int;  (** id of the domain that ran the span *)
  depth : int;  (** nesting depth on that domain, 1 = outermost *)
  args : (string * string) list;
}

(** [with_span name f] times [f] as one span (recorded even when [f]
    raises). [args] annotate the span; prefer {!annotate} for values
    only known after the work ran. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach a key/value to the innermost open span of this domain (e.g.
    cache hit/miss, known only after the lookup). No-op outside any
    span or when tracing is off. *)
val annotate : string -> string -> unit

(** Is anything listening on this domain right now? *)
val enabled : unit -> bool

(** A collector of finished spans. [on_span] fires for every finished
    span (the server feeds per-stage metrics this way); [keep_spans]
    additionally retains them for {!spans}. *)
type sink

val make_sink : ?keep_spans:bool -> ?on_span:(span -> unit) -> unit -> sink

(** Run [f] with [sink] installed on this domain (and, via {!Pool}, on
    any worker domain running work dispatched inside [f]). Restores the
    previous sink afterwards; nestable. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** Collected spans, sorted by start time. *)
val spans : sink -> span list

(** The installed sink of this domain, for propagation across domain
    boundaries (used by {!Pool}; pair with [with_context]). *)
type context

val current_context : unit -> context

val with_context : context -> (unit -> 'a) -> 'a

(** Start appending every finished span of every domain to [path] in
    Chrome trace format (a JSON array, one complete event per line).
    The file is finalised by {!flush_chrome}, which also runs at
    process exit. *)
val enable_chrome : string -> unit

val chrome_enabled : unit -> bool

(** Finalise and close the Chrome-trace file; idempotent. *)
val flush_chrome : unit -> unit

(** [enable_chrome path] when [GLQL_TRACE=path] is set and non-empty. *)
val setup_from_env : unit -> unit

(** Render spans for a structured reply: a list of
    [{name, start_us, dur_us, domain, depth, args}] objects with starts
    relative to [origin_ns]. *)
val spans_to_json : origin_ns:int64 -> span list -> Json.t
