(* Colour refinement (1-dimensional Weisfeiler-Leman, slide 50).

   Joint runs: all graphs are refined together against one signature
   interner, so colours are comparable across graphs and rounds proceed in
   lockstep until the *joint* partition over all vertices stabilises.
   Because a vertex's refinement key only mentions its own graph, a joint
   run restricted to one graph equals a solo run of that graph — which is
   why comparing stable colourings of a joint run decides CR-equivalence.

   Each round runs in two phases so a corpus refines in parallel without
   losing determinism: phase one builds every vertex's signature key
   (pure, embarrassingly parallel over all (graph, vertex) items via the
   domain pool); phase two interns the keys sequentially in graph-major
   vertex order.  Interned ids depend only on the first-encounter order of
   distinct keys, which phase two fixes, so colourings are identical for
   every pool size.

   Signature keys are binary: a '\001' tag byte, the vertex's own colour
   as little-endian 64-bit, then the sorted neighbour colours likewise —
   a fixed-width injective encoding of exactly the (own colour, neighbour
   multiset) pair the old decimal strings spelled out, read straight off
   the graph's flat CSR view. Two keys are equal iff the old string keys
   were (round-0 label keys keep their 'L' prefix, disjoint from the
   tag), so interned colour sequences — and hence colourings — are
   bit-identical to the string implementation. *)

module Sig_hash = Glql_util.Sig_hash
module Graph = Glql_graph.Graph
module Pool = Glql_util.Pool
module Trace = Glql_util.Trace
module Clock = Glql_util.Clock

(* Closure-free ascending int sort, shared with the k-WL tuple-key path
   via [Glql_util.Int_sort] — output-equivalent to [Array.sort
   Int.compare], so colourings are unchanged. *)
let sort_ints = Glql_util.Int_sort.sort

type result = {
  graphs : Graph.t list;
  history : int array list list;
  (* [history] is a list of rounds; each round is a list of per-graph colour
     arrays, in the order of [graphs]. Round 0 is the initial colouring. *)
  stable : int array list;
  rounds : int;
}

let joint_color_count colorings =
  let seen = Hashtbl.create 64 in
  List.iter (fun colors -> Array.iter (fun c -> Hashtbl.replace seen c ()) colors) colorings;
  Hashtbl.length seen

let run_joint ?max_rounds ?(deadline = None) graphs =
  Trace.with_span "wl.refine" @@ fun () ->
  let garr = Array.of_list graphs in
  let ng = Array.length garr in
  let offsets = Array.make (ng + 1) 0 in
  for i = 0 to ng - 1 do
    offsets.(i + 1) <- offsets.(i) + Graph.n_vertices garr.(i)
  done;
  let total = offsets.(ng) in
  (* owner.(idx) = index of the graph holding flat item idx. *)
  let owner = Array.make total 0 in
  for i = 0 to ng - 1 do
    Array.fill owner offsets.(i) (Graph.n_vertices garr.(i)) i
  done;
  let interner = Sig_hash.Interner.create () in
  let keys = Array.make total "" in
  (* Intern this round's keys in flat (graph-major) order into fresh
     per-graph colour arrays — the sequential phase of each round. *)
  let intern_all () =
    let out = Array.init ng (fun gi -> Array.make (Graph.n_vertices garr.(gi)) 0) in
    for idx = 0 to total - 1 do
      let gi = owner.(idx) in
      out.(gi).(idx - offsets.(gi)) <- Sig_hash.Interner.intern interner keys.(idx)
    done;
    Array.to_list out
  in
  (* Flat views, built (or fetched from the memo) once per run. *)
  let csrs = Array.map Graph.csr garr in
  Pool.parallel_for ~n:total (fun idx ->
      let gi = owner.(idx) in
      let v = idx - offsets.(gi) in
      keys.(idx) <- "L" ^ Sig_hash.of_float_vector (Graph.label garr.(gi) v));
  let current = ref (intern_all ()) in
  let history = ref [ !current ] in
  let count = ref (joint_color_count !current) in
  let rounds = ref 0 in
  let limit = match max_rounds with Some m -> m | None -> total + 1 in
  let continue_ = ref true in
  while !continue_ && !rounds < limit do
    (* Cooperative cancellation: one clock read per round keeps a
       per-request timeout binding on arbitrarily deep refinements. *)
    Clock.check deadline;
    Trace.with_span ~args:[ ("round", string_of_int !rounds) ] "wl.round" @@ fun () ->
    let colors = Array.of_list !current in
    Pool.parallel_for ~n:total (fun idx ->
        let gi = owner.(idx) in
        let v = idx - offsets.(gi) in
        let c = colors.(gi) in
        let csr = csrs.(gi) in
        let row = csr.Graph.Csr.offsets.(v) in
        let deg = csr.Graph.Csr.offsets.(v + 1) - row in
        let nb = Array.make deg 0 in
        for j = 0 to deg - 1 do
          nb.(j) <- Array.unsafe_get c (Array.unsafe_get csr.Graph.Csr.adjacency (row + j))
        done;
        sort_ints nb;
        let b = Bytes.create (9 + (8 * deg)) in
        Bytes.unsafe_set b 0 '\001';
        Bytes.set_int64_le b 1 (Int64.of_int c.(v));
        for j = 0 to deg - 1 do
          Bytes.set_int64_le b (9 + (8 * j)) (Int64.of_int (Array.unsafe_get nb j))
        done;
        keys.(idx) <- Bytes.unsafe_to_string b);
    let next = intern_all () in
    let count' = joint_color_count next in
    current := next;
    history := next :: !history;
    incr rounds;
    if count' = !count then continue_ := false else count := count'
  done;
  { graphs; history = List.rev !history; stable = !current; rounds = !rounds }

let run ?max_rounds ?deadline g = run_joint ?max_rounds ?deadline [ g ]

(* ------------------------------------------------------------------ *)
(* Incremental frontier recoloring (DESIGN §13).

   A cold solo run's colour ids have a rigid structure: every round's
   keys are fresh strings (round-0 keys carry the 'L' prefix; a round-r+1
   key embeds the vertex's own round-r colour, and own-colour blocks are
   disjoint across rounds), so the shared interner hands round r a
   contiguous id block [B_r, B_r + k_r) with B_0 = 0 and
   B_{r+1} = B_r + k_r, and within the round a class's id is B_r plus the
   first-encounter rank of the class in vertex order.  Reproducing a cold
   run bit-identically therefore reduces to reproducing each round's
   partition plus that canonical rank assignment — no interner needed.

   Given the old result and the touched vertices of a mutation batch, the
   per-round dirty cover is D = T_adj ∪ Δ ∪ N(Δ): vertices with changed
   adjacency (their key is built from a different neighbour set every
   round), vertices whose class failed to match the old partition last
   round, and their new-graph neighbours (their key mentions an unmatched
   colour).  Every other vertex is clean: its new key is the image of its
   old key under the (bijective on matched classes) colour
   correspondence, so its class can be read off the old round's colouring
   without materialising the key.  Keys are built only for D, plus one
   key per clean class whose (own colour, degree) signature collides with
   some dirty vertex — equal keys force equal signatures, so
   non-colliding clean classes take a fresh id without any key at all. *)

exception Fall_back

(* Round-(r+1) signature key of [v] from colours [cur] — byte-identical
   to the key [run_joint] builds in its parallel phase. *)
let build_key csr cur v =
  let row = csr.Graph.Csr.offsets.(v) in
  let deg = csr.Graph.Csr.offsets.(v + 1) - row in
  let nb = Array.make deg 0 in
  for j = 0 to deg - 1 do
    nb.(j) <- Array.unsafe_get cur (Array.unsafe_get csr.Graph.Csr.adjacency (row + j))
  done;
  sort_ints nb;
  let b = Bytes.create (9 + (8 * deg)) in
  Bytes.unsafe_set b 0 '\001';
  Bytes.set_int64_le b 1 (Int64.of_int cur.(v));
  for j = 0 to deg - 1 do
    Bytes.set_int64_le b (9 + (8 * j)) (Int64.of_int (Array.unsafe_get nb j))
  done;
  Bytes.unsafe_to_string b

let run_incremental ?max_rounds ?(deadline = None) ?(frontier_limit = 0.25) ~base
    ~touched_adj ~touched_lab g =
  let full () = (run ?max_rounds ~deadline g, false) in
  let n = Graph.n_vertices g in
  match base.graphs with
  | [ g0 ] when Graph.n_vertices g0 = n && n >= 64 -> (
      try
        Trace.with_span ~args:[ ("n", string_of_int n) ] "wl.refine.incremental"
        @@ fun () ->
        (* Old history as per-round arrays, with the block structure
           validated and (B_r, k_r) recovered; anything ill-formed (a
           foreign or corrupt result) falls back to a full run. *)
        let oldh =
          Array.of_list
            (List.map (function [ c ] -> c | _ -> raise Fall_back) base.history)
        in
        let nrounds_old = Array.length oldh in
        if nrounds_old = 0 then raise Fall_back;
        let oldB = Array.make nrounds_old 0 and oldk = Array.make nrounds_old 0 in
        let next_base = ref 0 in
        for r = 0 to nrounds_old - 1 do
          let c = oldh.(r) in
          if Array.length c <> n then raise Fall_back;
          let b = !next_base in
          let seen = Array.make n false in
          let k = ref 0 in
          Array.iter
            (fun id ->
              let off = id - b in
              if off < 0 || off >= n then raise Fall_back;
              if not seen.(off) then begin
                if off <> !k then raise Fall_back;
                seen.(off) <- true;
                incr k
              end)
            c;
          oldB.(r) <- b;
          oldk.(r) <- !k;
          next_base := b + !k
        done;
        let csr = Graph.csr g in
        let t_adj = Array.make n false in
        List.iter
          (fun v -> if v >= 0 && v < n then t_adj.(v) <- true else raise Fall_back)
          touched_adj;
        let t_lab = Array.make n false in
        List.iter
          (fun v -> if v >= 0 && v < n then t_lab.(v) <- true else raise Fall_back)
          touched_lab;
        let cap = max 64 (int_of_float (frontier_limit *. float_of_int n)) in
        (* Image matching between an old round and a new round.  Each old
           class gets at most one {e image} — the new colour its clean
           members were transported to, or the unanimous new colour when
           the class is wholly dirty (clean members of one class always
           share a colour by construction, so only dirty members can
           stray).  A vertex is marked Δ iff its own colour is not its
           class's image, or the image is ill-defined, or two old classes
           claim the same image (the correspondence must stay injective
           for clean-key transport to be invertible).  Marking strays
           per-vertex instead of whole split classes is what keeps the
           frontier proportional to the mutation, not to class sizes. *)
        let match_classes ~dirty ~clean_map oldc ob okk newc =
          let image = Array.make okk (-2) in
          (* -2 = unseen, -1 = poisoned (members disagree) *)
          Array.iteri (fun oc id -> if id >= 0 then image.(oc) <- id) clean_map;
          for v = 0 to n - 1 do
            let oc = oldc.(v) - ob in
            if dirty.(v) && clean_map.(oc) < 0 then
              if image.(oc) = -2 then image.(oc) <- newc.(v)
              else if image.(oc) <> newc.(v) then image.(oc) <- -1
          done;
          let claims = Hashtbl.create (max 16 okk) in
          Array.iter
            (fun id ->
              if id >= 0 then
                Hashtbl.replace claims id (1 + Option.value ~default:0 (Hashtbl.find_opt claims id)))
            image;
          let un = Array.make n false in
          for v = 0 to n - 1 do
            let oc = oldc.(v) - ob in
            let im = image.(oc) in
            un.(v) <-
              im < 0 || newc.(v) <> im
              || Option.value ~default:0 (Hashtbl.find_opt claims im) > 1
          done;
          un
        in
        (* Round 0: label keys.  Unchanged labels keep their old class
           (the old round-0 partition is exactly the label-key partition),
           so one key per clean class plus one per touched vertex
           suffices; ids are first-encounter ranks from 0. *)
        let newc0, k0, delta0 =
          if touched_lab = [] then (Array.copy oldh.(0), oldk.(0), Array.make n false)
          else begin
            let tbl = Hashtbl.create 64 in
            let clean_map = Array.make oldk.(0) (-1) in
            let nextid = ref 0 in
            let c = Array.make n 0 in
            let key_of v = "L" ^ Sig_hash.of_float_vector (Graph.label g v) in
            let intern key =
              match Hashtbl.find_opt tbl key with
              | Some id -> id
              | None ->
                  let id = !nextid in
                  incr nextid;
                  Hashtbl.add tbl key id;
                  id
            in
            for v = 0 to n - 1 do
              if t_lab.(v) then c.(v) <- intern (key_of v)
              else begin
                let oc = oldh.(0).(v) - oldB.(0) in
                let id = clean_map.(oc) in
                if id >= 0 then c.(v) <- id
                else begin
                  let id = intern (key_of v) in
                  clean_map.(oc) <- id;
                  c.(v) <- id
                end
              end
            done;
            (c, !nextid, match_classes ~dirty:t_lab ~clean_map oldh.(0) oldB.(0) oldk.(0) c)
          end
        in
        let limit = match max_rounds with Some m -> m | None -> n + 1 in
        let hist = ref [ newc0 ] in
        let cur = ref newc0 and curk = ref k0 and curb = ref 0 in
        let delta = ref delta0 in
        let rounds = ref 0 in
        let continue_ = ref true in
        while !continue_ && !rounds < limit do
          Clock.check deadline;
          let r = !rounds in
          let refr = min (r + 1) (nrounds_old - 1) in
          let oldc = oldh.(refr) and ob = oldB.(refr) and okk = oldk.(refr) in
          (* Dirty cover for this round. *)
          let dirty = Array.make n false in
          let ndirty = ref 0 in
          let mark v =
            if not dirty.(v) then begin
              dirty.(v) <- true;
              incr ndirty
            end
          in
          let d = !delta in
          for v = 0 to n - 1 do
            if t_adj.(v) then mark v;
            if d.(v) then begin
              mark v;
              let row = csr.Graph.Csr.offsets.(v) in
              let deg = csr.Graph.Csr.offsets.(v + 1) - row in
              for j = 0 to deg - 1 do
                mark csr.Graph.Csr.adjacency.(row + j)
              done
            end
          done;
          if !ndirty > cap then raise Fall_back;
          let dverts = Array.make !ndirty 0 in
          let dpos = Array.make n (-1) in
          let di = ref 0 in
          for v = 0 to n - 1 do
            if dirty.(v) then begin
              dverts.(!di) <- v;
              dpos.(v) <- !di;
              incr di
            end
          done;
          let cur_c = !cur in
          (* Phase 1 (parallel, like run_joint): keys for dirty vertices
             only.  Pure writes to disjoint slots — deterministic for any
             pool size. *)
          let dkeys = Array.make !ndirty "" in
          Pool.parallel_for ~n:!ndirty (fun i ->
              dkeys.(i) <- build_key csr cur_c dverts.(i));
          (* Two-level collision probe for clean classes: (own colour,
             degree), then additionally the sum of neighbour colours.
             Equal keys force equal triples, so a clean class missing at
             either level is provably distinct from every dirty key and
             needs no key materialised.  The first level alone is too
             coarse early on — right after round 0 the colours are only
             degree classes, so nearly every clean class shares a
             (colour, degree) with some dirty vertex and the recolor
             would degenerate into building almost all n keys. *)
          let nbsum v =
            let row = csr.Graph.Csr.offsets.(v) in
            let deg = csr.Graph.Csr.offsets.(v + 1) - row in
            let s = ref 0 in
            for j = 0 to deg - 1 do
              let c = Array.unsafe_get cur_c (Array.unsafe_get csr.Graph.Csr.adjacency (row + j)) in
              (* Commutative but well-spread: raw colour sums cluster in
                 a narrow band early on (few distinct colours, similar
                 degrees), so mix each colour non-linearly before
                 summing — a linear map would preserve exactly the raw
                 sums' collisions.  Wrap-around is fine; the sum only
                 ever gates whether a full key is built. *)
              let x = (c + 1) * 0x2545F4914F6CDD1D in
              s := !s + (x lxor (x lsr 29))
            done;
            !s
          in
          let dsig = Hashtbl.create (max 16 !ndirty) in
          let dsig2 = Hashtbl.create (max 16 !ndirty) in
          Array.iter
            (fun v ->
              let cd = (cur_c.(v), csr.Graph.Csr.degrees.(v)) in
              Hashtbl.replace dsig cd ();
              Hashtbl.replace dsig2 (cur_c.(v), csr.Graph.Csr.degrees.(v), nbsum v) ())
            dverts;
          (* Phase 2 (sequential): canonical id assignment in vertex
             order from B_{r+1} = B_r + k_r. *)
          let nb = !curb + !curk in
          let tbl = Hashtbl.create (max 16 (2 * !ndirty)) in
          let clean_map = Array.make okk (-1) in
          let nextid = ref nb in
          let newc = Array.make n 0 in
          for v = 0 to n - 1 do
            if dirty.(v) then begin
              let key = dkeys.(dpos.(v)) in
              match Hashtbl.find_opt tbl key with
              | Some id -> newc.(v) <- id
              | None ->
                  let id = !nextid in
                  incr nextid;
                  Hashtbl.add tbl key id;
                  newc.(v) <- id
            end
            else begin
              let oc = oldc.(v) - ob in
              let id = clean_map.(oc) in
              if id >= 0 then newc.(v) <- id
              else begin
                let id =
                  if
                    Hashtbl.mem dsig (cur_c.(v), csr.Graph.Csr.degrees.(v))
                    && Hashtbl.mem dsig2 (cur_c.(v), csr.Graph.Csr.degrees.(v), nbsum v)
                  then begin
                    (* A dirty key could collide: settle it by string. *)
                    let key = build_key csr cur_c v in
                    match Hashtbl.find_opt tbl key with
                    | Some id -> id
                    | None ->
                        let id = !nextid in
                        incr nextid;
                        Hashtbl.add tbl key id;
                        id
                  end
                  else begin
                    (* No dirty vertex shares this (colour, degree,
                       neighbour-colour-sum) and distinct clean classes
                       have distinct keys, so the class is provably
                       fresh — no key materialised. *)
                    let id = !nextid in
                    incr nextid;
                    id
                  end
                in
                clean_map.(oc) <- id;
                newc.(v) <- id
              end
            end
          done;
          let newk = !nextid - nb in
          let un = match_classes ~dirty ~clean_map oldc ob okk newc in
          let prevk = !curk in
          cur := newc;
          curk := newk;
          curb := nb;
          delta := un;
          hist := newc :: !hist;
          incr rounds;
          if newk = prevk then continue_ := false
        done;
        let history = List.rev_map (fun c -> [ c ]) !hist in
        ({ graphs = [ g ]; history; stable = [ !cur ]; rounds = !rounds }, true)
      with Fall_back -> full ())
  | _ -> full ()

let stable_colors result = result.stable

let graphs result = result.graphs

let history result = result.history

let rounds result = result.rounds

let graph_signature colors = Sig_hash.of_int_multiset colors

(* Graph-level CR-equivalence: equal stable colour multisets in a joint
   run (slide 50: "a graph gets a colour based on the multiset of colours
   of all its vertices"). *)
let equivalent_graphs g h =
  match (run_joint [ g; h ]).stable with
  | [ cg; ch ] -> graph_signature cg = graph_signature ch
  | _ -> assert false

(* Vertex-level CR-equivalence of (g, v) and (h, w). *)
let equivalent_vertices g v h w =
  match (run_joint [ g; h ]).stable with
  | [ cg; ch ] -> cg.(v) = ch.(w)
  | _ -> assert false

(* Partition a corpus of graphs by CR graph colour. *)
let graph_partition graphs =
  let result = run_joint graphs in
  let sigs = Array.of_list (List.map graph_signature result.stable) in
  Partition.group ~n:(Array.length sigs) (fun i -> sigs.(i))

(* Partition all (graph, vertex) items of a corpus by stable CR colour.
   Items are ordered graph-major: graph 0's vertices first, etc. *)
let vertex_partition graphs =
  let result = run_joint graphs in
  let all = Array.concat (List.map Array.copy result.stable) in
  Partition.group ~n:(Array.length all) (fun i -> string_of_int all.(i))

(* Number of refinement rounds needed to stabilise one graph. *)
let stable_round g = (run g).rounds

(* Rebuild a result from its persisted parts (the snapshot store's
   decode path). The stable colouring is the last round of the history,
   so only the history travels; shape mismatches raise so a corrupt
   snapshot cannot produce a result the accessors would crash on. *)
let of_parts ~graphs ~history =
  (match history with
  | [] -> invalid_arg "Color_refinement.of_parts: empty history"
  | _ -> ());
  let sizes = List.map Graph.n_vertices graphs in
  List.iter
    (fun round ->
      if List.length round <> List.length graphs then
        invalid_arg "Color_refinement.of_parts: round arity mismatch";
      List.iter2
        (fun colors n ->
          if Array.length colors <> n then
            invalid_arg "Color_refinement.of_parts: colour array length mismatch")
        round sizes)
    history;
  let rounds = List.length history - 1 in
  let stable = List.nth history rounds in
  { graphs; history; stable; rounds }

(* Reusable-handle accessors: a cached [result] can answer any
   smaller-round request from its history without recomputation. *)
let n_classes result = joint_color_count result.stable

let colors_at_round result round =
  let r = max 0 (min round result.rounds) in
  List.nth result.history r
