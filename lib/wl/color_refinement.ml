(* Colour refinement (1-dimensional Weisfeiler-Leman, slide 50).

   Joint runs: all graphs are refined together against one signature
   interner, so colours are comparable across graphs and rounds proceed in
   lockstep until the *joint* partition over all vertices stabilises.
   Because a vertex's refinement key only mentions its own graph, a joint
   run restricted to one graph equals a solo run of that graph — which is
   why comparing stable colourings of a joint run decides CR-equivalence.

   Each round runs in two phases so a corpus refines in parallel without
   losing determinism: phase one builds every vertex's signature key
   (pure, embarrassingly parallel over all (graph, vertex) items via the
   domain pool); phase two interns the keys sequentially in graph-major
   vertex order.  Interned ids depend only on the first-encounter order of
   distinct keys, which phase two fixes, so colourings are identical for
   every pool size.

   Signature keys are binary: a '\001' tag byte, the vertex's own colour
   as little-endian 64-bit, then the sorted neighbour colours likewise —
   a fixed-width injective encoding of exactly the (own colour, neighbour
   multiset) pair the old decimal strings spelled out, read straight off
   the graph's flat CSR view. Two keys are equal iff the old string keys
   were (round-0 label keys keep their 'L' prefix, disjoint from the
   tag), so interned colour sequences — and hence colourings — are
   bit-identical to the string implementation. *)

module Sig_hash = Glql_util.Sig_hash
module Graph = Glql_graph.Graph
module Pool = Glql_util.Pool
module Trace = Glql_util.Trace
module Clock = Glql_util.Clock

(* Closure-free ascending int sort, shared with the k-WL tuple-key path
   via [Glql_util.Int_sort] — output-equivalent to [Array.sort
   Int.compare], so colourings are unchanged. *)
let sort_ints = Glql_util.Int_sort.sort

type result = {
  graphs : Graph.t list;
  history : int array list list;
  (* [history] is a list of rounds; each round is a list of per-graph colour
     arrays, in the order of [graphs]. Round 0 is the initial colouring. *)
  stable : int array list;
  rounds : int;
}

let joint_color_count colorings =
  let seen = Hashtbl.create 64 in
  List.iter (fun colors -> Array.iter (fun c -> Hashtbl.replace seen c ()) colors) colorings;
  Hashtbl.length seen

let run_joint ?max_rounds ?(deadline = None) graphs =
  Trace.with_span "wl.refine" @@ fun () ->
  let garr = Array.of_list graphs in
  let ng = Array.length garr in
  let offsets = Array.make (ng + 1) 0 in
  for i = 0 to ng - 1 do
    offsets.(i + 1) <- offsets.(i) + Graph.n_vertices garr.(i)
  done;
  let total = offsets.(ng) in
  (* owner.(idx) = index of the graph holding flat item idx. *)
  let owner = Array.make total 0 in
  for i = 0 to ng - 1 do
    Array.fill owner offsets.(i) (Graph.n_vertices garr.(i)) i
  done;
  let interner = Sig_hash.Interner.create () in
  let keys = Array.make total "" in
  (* Intern this round's keys in flat (graph-major) order into fresh
     per-graph colour arrays — the sequential phase of each round. *)
  let intern_all () =
    let out = Array.init ng (fun gi -> Array.make (Graph.n_vertices garr.(gi)) 0) in
    for idx = 0 to total - 1 do
      let gi = owner.(idx) in
      out.(gi).(idx - offsets.(gi)) <- Sig_hash.Interner.intern interner keys.(idx)
    done;
    Array.to_list out
  in
  (* Flat views, built (or fetched from the memo) once per run. *)
  let csrs = Array.map Graph.csr garr in
  Pool.parallel_for ~n:total (fun idx ->
      let gi = owner.(idx) in
      let v = idx - offsets.(gi) in
      keys.(idx) <- "L" ^ Sig_hash.of_float_vector (Graph.label garr.(gi) v));
  let current = ref (intern_all ()) in
  let history = ref [ !current ] in
  let count = ref (joint_color_count !current) in
  let rounds = ref 0 in
  let limit = match max_rounds with Some m -> m | None -> total + 1 in
  let continue_ = ref true in
  while !continue_ && !rounds < limit do
    (* Cooperative cancellation: one clock read per round keeps a
       per-request timeout binding on arbitrarily deep refinements. *)
    Clock.check deadline;
    Trace.with_span ~args:[ ("round", string_of_int !rounds) ] "wl.round" @@ fun () ->
    let colors = Array.of_list !current in
    Pool.parallel_for ~n:total (fun idx ->
        let gi = owner.(idx) in
        let v = idx - offsets.(gi) in
        let c = colors.(gi) in
        let csr = csrs.(gi) in
        let row = csr.Graph.Csr.offsets.(v) in
        let deg = csr.Graph.Csr.offsets.(v + 1) - row in
        let nb = Array.make deg 0 in
        for j = 0 to deg - 1 do
          nb.(j) <- Array.unsafe_get c (Array.unsafe_get csr.Graph.Csr.adjacency (row + j))
        done;
        sort_ints nb;
        let b = Bytes.create (9 + (8 * deg)) in
        Bytes.unsafe_set b 0 '\001';
        Bytes.set_int64_le b 1 (Int64.of_int c.(v));
        for j = 0 to deg - 1 do
          Bytes.set_int64_le b (9 + (8 * j)) (Int64.of_int (Array.unsafe_get nb j))
        done;
        keys.(idx) <- Bytes.unsafe_to_string b);
    let next = intern_all () in
    let count' = joint_color_count next in
    current := next;
    history := next :: !history;
    incr rounds;
    if count' = !count then continue_ := false else count := count'
  done;
  { graphs; history = List.rev !history; stable = !current; rounds = !rounds }

let run ?max_rounds ?deadline g = run_joint ?max_rounds ?deadline [ g ]

let stable_colors result = result.stable

let graphs result = result.graphs

let history result = result.history

let rounds result = result.rounds

let graph_signature colors = Sig_hash.of_int_multiset colors

(* Graph-level CR-equivalence: equal stable colour multisets in a joint
   run (slide 50: "a graph gets a colour based on the multiset of colours
   of all its vertices"). *)
let equivalent_graphs g h =
  match (run_joint [ g; h ]).stable with
  | [ cg; ch ] -> graph_signature cg = graph_signature ch
  | _ -> assert false

(* Vertex-level CR-equivalence of (g, v) and (h, w). *)
let equivalent_vertices g v h w =
  match (run_joint [ g; h ]).stable with
  | [ cg; ch ] -> cg.(v) = ch.(w)
  | _ -> assert false

(* Partition a corpus of graphs by CR graph colour. *)
let graph_partition graphs =
  let result = run_joint graphs in
  let sigs = Array.of_list (List.map graph_signature result.stable) in
  Partition.group ~n:(Array.length sigs) (fun i -> sigs.(i))

(* Partition all (graph, vertex) items of a corpus by stable CR colour.
   Items are ordered graph-major: graph 0's vertices first, etc. *)
let vertex_partition graphs =
  let result = run_joint graphs in
  let all = Array.concat (List.map Array.copy result.stable) in
  Partition.group ~n:(Array.length all) (fun i -> string_of_int all.(i))

(* Number of refinement rounds needed to stabilise one graph. *)
let stable_round g = (run g).rounds

(* Rebuild a result from its persisted parts (the snapshot store's
   decode path). The stable colouring is the last round of the history,
   so only the history travels; shape mismatches raise so a corrupt
   snapshot cannot produce a result the accessors would crash on. *)
let of_parts ~graphs ~history =
  (match history with
  | [] -> invalid_arg "Color_refinement.of_parts: empty history"
  | _ -> ());
  let sizes = List.map Graph.n_vertices graphs in
  List.iter
    (fun round ->
      if List.length round <> List.length graphs then
        invalid_arg "Color_refinement.of_parts: round arity mismatch";
      List.iter2
        (fun colors n ->
          if Array.length colors <> n then
            invalid_arg "Color_refinement.of_parts: colour array length mismatch")
        round sizes)
    history;
  let rounds = List.length history - 1 in
  let stable = List.nth history rounds in
  { graphs; history; stable; rounds }

(* Reusable-handle accessors: a cached [result] can answer any
   smaller-round request from its history without recomputation. *)
let n_classes result = joint_color_count result.stable

let colors_at_round result round =
  let r = max 0 (min round result.rounds) in
  List.nth result.history r
