(** Colour refinement — 1-dimensional Weisfeiler-Leman (slide 50).

    All runs are "joint": the given graphs are refined in lockstep against
    a shared signature interner, making colours comparable across graphs.
    Restricting a joint run to one graph coincides with a solo run, so
    stable joint colourings decide CR-equivalence. *)

module Graph = Glql_graph.Graph

type result

(** Refine the given graphs together until the joint vertex partition is
    stable (or [max_rounds] is hit; default: total vertex count).
    [deadline] is a monotonic-clock deadline in the sense of
    {!Glql_util.Clock}: it is checked once per round and refinement is
    aborted by raising [Glql_util.Clock.Deadline_exceeded] when past. *)
val run_joint : ?max_rounds:int -> ?deadline:int64 option -> Graph.t list -> result

(** Solo run. *)
val run : ?max_rounds:int -> ?deadline:int64 option -> Graph.t -> result

(** [run_incremental ~base ~touched_adj ~touched_lab g] recolours the
    mutated graph [g] starting from [base], a cached solo result for the
    pre-mutation graph (same vertex count): per round only the dirty
    frontier — vertices with changed adjacency ([touched_adj]), changed
    labels ([touched_lab]), vertices whose colour class failed to match
    the old partition, and their neighbours — has its signature key
    rebuilt; every other vertex's colour is transported from [base].
    The returned result is bit-identical to [run g] (same colour ids,
    history, and round count), and the boolean is [true] when the
    incremental path was taken. Falls back to a full run (returning
    [false]) when [base] is not a well-formed solo result for an
    [n]-vertex graph, when [n < 64], or when the frontier exceeds
    [frontier_limit] (default 0.25) of the vertices in some round. *)
val run_incremental :
  ?max_rounds:int ->
  ?deadline:int64 option ->
  ?frontier_limit:float ->
  base:result ->
  touched_adj:int list ->
  touched_lab:int list ->
  Graph.t ->
  result * bool

(** Stable colour array per graph, in input order. *)
val stable_colors : result -> int array list

(** The graphs of the joint run, in input order. *)
val graphs : result -> Graph.t list

(** Colourings per round (round 0 = initial labels), each a per-graph list. *)
val history : result -> int array list list

(** Number of refinement rounds executed until stability. *)
val rounds : result -> int

(** Canonical multiset signature of a colour array (the graph's colour). *)
val graph_signature : int array -> string

(** Graph-level CR-equivalence: same stable colour multiset. *)
val equivalent_graphs : Graph.t -> Graph.t -> bool

(** Vertex-level CR-equivalence of [(g,v)] and [(h,w)]. *)
val equivalent_vertices : Graph.t -> int -> Graph.t -> int -> bool

(** Partition of a graph corpus by CR graph colour. *)
val graph_partition : Graph.t list -> Partition.t

(** Partition of all (graph, vertex) items, graph-major order. *)
val vertex_partition : Graph.t list -> Partition.t

(** Rounds to stabilise a single graph. *)
val stable_round : Graph.t -> int

(** Rebuild a result from persisted parts: the graphs of the joint run
    and the full per-round history (round 0 first; the last round is the
    stable colouring). Validates shapes and raises [Invalid_argument] on
    mismatch — the snapshot store's decode path. *)
val of_parts : graphs:Graph.t list -> history:int array list list -> result

(** Number of colour classes in the stable joint partition. *)
val n_classes : result -> int

(** Joint colouring after the given number of rounds, clamped to
    [\[0, rounds\]] — so one cached stable run answers every
    smaller-round request (the query server's colouring cache relies on
    this). *)
val colors_at_round : result -> int -> int array list
