(* k-dimensional Weisfeiler-Leman (slide 65), in both flavours:

   - Oblivious k-WL: the new colour of a k-tuple records, for each position
     j separately, the multiset over w of the colour of the tuple with
     position j replaced by w.
   - Folklore k-FWL: the new colour records one multiset over w of the
     *vector* of k colours obtained by substituting w into each position.

   Known relation (reproduced by the tests): k-FWL is as strong as
   (k+1)-oblivious-WL, and 1-OWL coincides with colour refinement.

   Tuples of V^k are indexed row-major.  Joint runs share one signature
   interner so tuple colours are comparable across graphs, and refinement
   proceeds in lockstep until the joint partition over all tuples of all
   graphs stabilises. *)

module Sig_hash = Glql_util.Sig_hash
module Graph = Glql_graph.Graph
module Pool = Glql_util.Pool

type variant = Oblivious | Folklore

type result = {
  k : int;
  variant : variant;
  graphs : Graph.t list;
  stable : int array list;
  rounds : int;
}

(* Colours are packed k-at-a-time into a single int during folklore
   refinement; 20 bits each limits a run to ~1M distinct colours, far above
   anything the corpora here produce. *)
let pack_bits = 20

let pack_limit = 1 lsl pack_bits

let tuple_count n k =
  let rec go acc i = if i = 0 then acc else go (acc * n) (i - 1) in
  go 1 k

(* Decode tuple index into vertex array, most-significant position first. *)
let decode_tuple ~n ~k idx =
  let t = Array.make k 0 in
  let rest = ref idx in
  for pos = k - 1 downto 0 do
    t.(pos) <- !rest mod n;
    rest := !rest / n
  done;
  t

let encode_tuple ~n t = Array.fold_left (fun acc v -> (acc * n) + v) 0 t

(* Strides for substituting position j of a tuple index. *)
let strides ~n ~k =
  let s = Array.make k 1 in
  for pos = k - 2 downto 0 do
    s.(pos) <- s.(pos + 1) * n
  done;
  s

(* Atomic type (initial colour) of a tuple: per-position label classes plus
   the equality and adjacency pattern among positions (slide 65: the
   "isomorphism type" of the tuple). *)
let atomic_key csr label_color t =
  let buf = Buffer.create 32 in
  Buffer.add_char buf 'A';
  Array.iter
    (fun v ->
      Buffer.add_string buf (string_of_int label_color.(v));
      Buffer.add_char buf ',')
    t;
  let k = Array.length t in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      Buffer.add_char buf (if t.(i) = t.(j) then '=' else '.');
      Buffer.add_char buf (if Graph.Csr.has_edge csr t.(i) t.(j) then 'E' else '-')
    done
  done;
  Buffer.contents buf

let initial_colors interner label_interner g k =
  let n = Graph.n_vertices g in
  let csr = Graph.csr g in
  let label_color =
    Array.init n (fun v ->
        Sig_hash.Interner.intern label_interner (Sig_hash.of_float_vector (Graph.label g v)))
  in
  Array.init (tuple_count n k) (fun idx ->
      Sig_hash.Interner.intern interner (atomic_key csr label_color (decode_tuple ~n ~k idx)))

(* Each refinement runs in two phases, mirroring [Color_refinement]: the
   key strings are built in parallel over tuple indices (pure), then
   interned sequentially in increasing index order — the exact call
   sequence the one-phase implementation made, so interned ids (and
   hence colourings) are identical for every pool size. *)
let refine_graph interner variant g k colors =
  let n = Graph.n_vertices g in
  let csr = Graph.csr g in
  let adjacency = csr.Graph.Csr.adjacency and coffsets = csr.Graph.Csr.offsets in
  if k = 1 then (
    (* For k = 1 the substitution scheme would aggregate over *all*
       vertices and learn nothing; both variants are defined to be colour
       refinement (slide 65's convention rho(CR) ⊇ rho(1-WL)). *)
    let keys = Array.make n "" in
    Pool.parallel_for ~n (fun v ->
        let row = coffsets.(v) in
        let deg = coffsets.(v + 1) - row in
        let nb = Array.make deg 0 in
        for j = 0 to deg - 1 do
          nb.(j) <- colors.(adjacency.(row + j))
        done;
        keys.(v) <- string_of_int colors.(v) ^ "|" ^ Sig_hash.of_int_multiset nb);
    let out = Array.make n 0 in
    for v = 0 to n - 1 do
      out.(v) <- Sig_hash.Interner.intern interner keys.(v)
    done;
    out)
  else
    let st = strides ~n ~k in
    let count = tuple_count n k in
    let keys = Array.make count "" in
    Pool.parallel_for ~n:count (fun idx ->
        let t = decode_tuple ~n ~k idx in
        let buf = Buffer.create 64 in
        Buffer.add_string buf (string_of_int colors.(idx));
        Buffer.add_char buf '|';
        (match variant with
        | Oblivious ->
            (* Per-position multisets. *)
            for j = 0 to k - 1 do
              let base = idx - (t.(j) * st.(j)) in
              let ms = Array.init n (fun w -> colors.(base + (w * st.(j)))) in
              Buffer.add_string buf (Sig_hash.of_int_multiset ms);
              Buffer.add_char buf '|'
            done
        | Folklore ->
            (* One multiset of k-vectors, packed into ints. *)
            let ms =
              Array.init n (fun w ->
                  let packed = ref 0 in
                  for j = 0 to k - 1 do
                    let c = colors.(idx - (t.(j) * st.(j)) + (w * st.(j))) in
                    if c >= pack_limit then failwith "Kwl: colour space exceeded packing limit";
                    packed := (!packed lsl pack_bits) lor c
                  done;
                  !packed)
            in
            Buffer.add_string buf (Sig_hash.of_int_multiset ms));
        keys.(idx) <- Buffer.contents buf);
    let out = Array.make count 0 in
    for idx = 0 to count - 1 do
      out.(idx) <- Sig_hash.Interner.intern interner keys.(idx)
    done;
    out

let joint_color_count colorings =
  let seen = Hashtbl.create 1024 in
  List.iter (fun colors -> Array.iter (fun c -> Hashtbl.replace seen c ()) colors) colorings;
  Hashtbl.length seen

let run_joint ?max_rounds ?(deadline = None) ~k ~variant graphs =
  if k < 1 then invalid_arg "Kwl.run_joint: k must be >= 1";
  Glql_util.Trace.with_span ~args:[ ("k", string_of_int k) ] "kwl.refine" @@ fun () ->
  let interner = Sig_hash.Interner.create () in
  let label_interner = Sig_hash.Interner.create () in
  let current = ref (List.map (fun g -> initial_colors interner label_interner g k) graphs) in
  let count = ref (joint_color_count !current) in
  let rounds = ref 0 in
  let limit =
    match max_rounds with
    | Some m -> m
    | None -> 1 + List.fold_left (fun acc g -> acc + tuple_count (Graph.n_vertices g) k) 0 graphs
  in
  let continue_ = ref true in
  while !continue_ && !rounds < limit do
    (* Cooperative cancellation: rounds cost O(n^{k+1}) each, so a
       per-round check is the coarsest granularity that still lets a
       request timeout bound wall time. *)
    Glql_util.Clock.check deadline;
    let next = List.map (fun (g, colors) -> refine_graph interner variant g k colors)
        (List.combine graphs !current)
    in
    let count' = joint_color_count next in
    current := next;
    incr rounds;
    if count' = !count then continue_ := false else count := count'
  done;
  { k; variant; graphs; stable = !current; rounds = !rounds }

let stable_colors result = result.stable

let graphs result = result.graphs

(* Rebuild a result from its persisted parts (snapshot decode); shape
   mismatches raise so accessors never see an inconsistent result. *)
let of_parts ~k ~variant ~graphs ~stable ~rounds =
  if k < 1 then invalid_arg "Kwl.of_parts: k must be >= 1";
  if rounds < 0 then invalid_arg "Kwl.of_parts: negative round count";
  if List.length stable <> List.length graphs then
    invalid_arg "Kwl.of_parts: stable arity mismatch";
  List.iter2
    (fun colors g ->
      if Array.length colors <> tuple_count (Graph.n_vertices g) k then
        invalid_arg "Kwl.of_parts: colour array is not |V|^k")
    stable graphs;
  { k; variant; graphs; stable; rounds }

let rounds result = result.rounds

let variant result = result.variant

let dimension result = result.k

let graph_signature colors = Sig_hash.of_int_multiset colors

let equivalent_graphs ~k ~variant g h =
  match (run_joint ~k ~variant [ g; h ]).stable with
  | [ cg; ch ] -> graph_signature cg = graph_signature ch
  | _ -> assert false

(* Colour of the p-tuple [t] (p <= k): pad by repeating the last entry,
   the usual embedding of p-tuples into k-tuples. *)
let tuple_color result graph_index t =
  let g = List.nth result.graphs graph_index in
  let n = Graph.n_vertices g in
  let p = Array.length t in
  if p > result.k then invalid_arg "Kwl.tuple_color: tuple longer than k";
  let padded = Array.init result.k (fun i -> if i < p then t.(i) else t.(p - 1)) in
  (List.nth result.stable graph_index).(encode_tuple ~n padded)

(* Partition a corpus of graphs by k-WL graph colour. *)
let graph_partition ~k ~variant graphs =
  let result = run_joint ~k ~variant graphs in
  let sigs = Array.of_list (List.map graph_signature result.stable) in
  Partition.group ~n:(Array.length sigs) (fun i -> sigs.(i))
