(** k-dimensional Weisfeiler-Leman (slide 65), oblivious and folklore
    flavours, over k-tuples of vertices indexed row-major. Joint runs make
    colours comparable across graphs. *)

module Graph = Glql_graph.Graph

type variant = Oblivious | Folklore

type result

(** Refine all graphs jointly until the tuple partition stabilises.
    Cost is O(n^k) tuples per graph and O(n^{k+1}) work per round.
    [deadline] ({!Glql_util.Clock} monotonic deadline) is checked once
    per round; when past, refinement aborts by raising
    [Glql_util.Clock.Deadline_exceeded]. *)
val run_joint :
  ?max_rounds:int -> ?deadline:int64 option -> k:int -> variant:variant -> Graph.t list -> result

(** Stable tuple-colour array per graph (index = row-major tuple index). *)
val stable_colors : result -> int array list

(** The graphs of the joint run, in input order. *)
val graphs : result -> Graph.t list

(** Rebuild a result from persisted parts; validates that each colour
    array has [|V|^k] entries and raises [Invalid_argument] on mismatch —
    the snapshot store's decode path. *)
val of_parts :
  k:int -> variant:variant -> graphs:Graph.t list -> stable:int array list -> rounds:int -> result

val rounds : result -> int

(** Flavour the run used. *)
val variant : result -> variant

(** The run's [k]. *)
val dimension : result -> int

(** Number of k-tuples over [n] vertices. *)
val tuple_count : int -> int -> int

(** Row-major index of a k-tuple. *)
val encode_tuple : n:int -> int array -> int

(** Inverse of [encode_tuple]. *)
val decode_tuple : n:int -> k:int -> int -> int array

(** Canonical multiset signature of a colour array (the graph's colour). *)
val graph_signature : int array -> string

(** Graph-level k-WL equivalence. *)
val equivalent_graphs : k:int -> variant:variant -> Graph.t -> Graph.t -> bool

(** Stable colour of a p-tuple ([p <= k]) in graph [graph_index] of the
    joint run, padding by repetition of the last entry. *)
val tuple_color : result -> int -> int array -> int

(** Partition of a graph corpus by k-WL graph colour. *)
val graph_partition : k:int -> variant:variant -> Graph.t list -> Partition.t
